// Iodma: coherent I/O without a cache. A DMA engine (a "processor
// without cache", the ** rows of Table 1) reads and writes the shared
// address space directly on the bus. It never snoops and never retains
// data, yet it always sees and produces a coherent image, because:
//
//   - its reads appear to caches as column 7 (~CA,~IM,~BC): an owning
//     cache intervenes (DI) and supplies the dirty line, so the DMA
//     device reads data that memory does not have yet;
//   - its writes appear as column 9 (~CA,IM,~BC): an owning cache
//     captures the write (DI) and stays owner, so the new data lands in
//     the one place the system treats as authoritative.
//
// This is how a standard bus supports cheap boards and sophisticated
// copy-back caches simultaneously (§1, §3.3).
//
// Run with: go run ./examples/iodma
package main

import (
	"fmt"
	"log"

	"futurebus/internal/bus"
	"futurebus/internal/cache"
	"futurebus/internal/memory"
	"futurebus/internal/protocols"
)

func main() {
	const lineSize = 32
	mem := memory.New(lineSize)
	b := bus.New(mem, bus.Config{LineSize: lineSize})

	cpu := cache.New(0, b, protocols.MOESI(), cache.Config{Sets: 16, Ways: 2})
	dma := cache.NewUncached(1, b, false, nil)

	const line = bus.Addr(0x40)

	// The CPU computes into the line: miss to E, silent write to M.
	must(cpu.WriteWord(line, 0, 0xDEADBEEF))
	fmt.Printf("CPU wrote %#x; cache state=%s, memory word0=%#x (stale!)\n",
		0xDEADBEEF, cpu.State(line), peek(mem, line, 0))

	// DMA reads the line for an outbound transfer. Memory is stale, but
	// the owning cache intervenes and supplies the data (column 7,
	// "M,CH?,DI" — the cache stays Modified).
	v, err := dma.ReadWord(line, 0)
	must(err)
	fmt.Printf("DMA read  %#x via cache intervention; cache state=%s (unchanged)\n",
		v, cpu.State(line))
	if v != 0xDEADBEEF {
		log.Fatalf("DMA read stale data %#x", v)
	}

	// DMA writes an inbound buffer into the same line. The owner
	// captures the write (column 9, "M,CH?,DI") — memory is preempted,
	// the cache merges the word and remains the owner.
	must(dma.WriteWord(line, 1, 0x10C0FFEE))
	fmt.Printf("DMA wrote %#x; captured by owner, cache state=%s, memory word1=%#x (still stale)\n",
		0x10C0FFEE, cpu.State(line), peek(mem, line, 1))

	// The CPU sees the DMA's data immediately — it owns the line.
	got, err := cpu.ReadWord(line, 1)
	must(err)
	fmt.Printf("CPU reads %#x back from its own (owned) copy\n", got)
	if got != 0x10C0FFEE {
		log.Fatalf("CPU lost the DMA write: %#x", got)
	}

	// Flush pushes everything to memory; now a raw memory peek agrees.
	must(cpu.Flush(line))
	fmt.Printf("after flush: cache state=%s, memory word0=%#x word1=%#x\n",
		cpu.State(line), peek(mem, line, 0), peek(mem, line, 1))

	st := cpu.Stats()
	fmt.Printf("\ncache stats: interventions supplied=%d, writes captured=%d\n",
		st.InterventionsSupplied, st.WritesCaptured)
}

func peek(m *memory.Memory, addr bus.Addr, word int) uint32 {
	line := m.Peek(addr)
	return uint32(line[word*4]) | uint32(line[word*4+1])<<8 |
		uint32(line[word*4+2])<<16 | uint32(line[word*4+3])<<24
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
