// Multibus: the §6 future-work question — "how one might implement a
// system with multiple buses and still maintain consistency" — answered
// with a two-level Futurebus tree: four clusters of four processors,
// each cluster a local bus bridged onto a global bus that holds main
// memory.
//
// The bridge keeps its cluster honest by asserting CH on every local
// transaction (so no cluster cache ever reaches E or M — every write is
// broadcast locally and the bridge's copy stays current), acts as the
// cluster's memory, and is itself a MOESI cache on the global bus,
// intervening when another cluster needs data this one owns.
//
// Run with: go run ./examples/multibus
package main

import (
	"fmt"
	"log"

	"futurebus/internal/hierarchy"
	"futurebus/internal/workload"
)

func main() {
	const clusters, procs = 4, 4
	sys, err := hierarchy.New(hierarchy.Config{
		Clusters:        clusters,
		ProcsPerCluster: procs,
		CacheSets:       32,
		CacheWays:       2,
		Shadow:          true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Cluster-heavy sharing: 25% of references hit lines shared within
	// the cluster, 5% cross clusters.
	gens := make([][]workload.Generator, clusters)
	for ci := 0; ci < clusters; ci++ {
		for pi := 0; pi < procs; pi++ {
			m := hierarchy.ClusterModel{
				Cluster: ci, Proc: pi,
				GlobalSharedLines:  16,
				ClusterSharedLines: 24,
				PrivateLines:       48,
				PGlobal:            0.05,
				PCluster:           0.25,
				PWrite:             0.3,
				WordsPerLine:       sys.Global.LineSize() / 4,
			}
			gens[ci] = append(gens[ci], m.NewGenerator(1986))
		}
	}

	const refs = 5000
	if err := hierarchy.Run(sys, gens, refs); err != nil {
		log.Fatal(err)
	}
	fmt.Println("two-level consistency verified:")
	fmt.Println("  global level: MOESI invariants over the four bridges + golden image")
	fmt.Println("  cluster level: no E/M below a bridge, inclusion, bridge currency")
	fmt.Println()

	st := sys.CollectStats()
	total := float64(refs * clusters * procs)
	fmt.Printf("%d processors, %d references each:\n", clusters*procs, refs)
	fmt.Printf("  local buses:  %.4f transactions/ref (spread over %d buses)\n",
		float64(st.LocalTransactions)/total, clusters)
	fmt.Printf("  global bus:   %.4f transactions/ref\n", float64(st.GlobalTransactions)/total)
	fmt.Printf("  bridge work:  %d global fetches, %d absorbs, %d cluster invalidations\n",
		st.GlobalFetches, st.Absorbs, st.ClusterInvalidations)
	fmt.Println()
	for _, cl := range sys.Clusters {
		bs := cl.Bridge.Stats()
		fmt.Printf("  cluster %d bridge: fills=%d fetches=%d absorbs=%d inclusions=%d\n",
			cl.ID, bs.LocalFills, bs.GlobalFetches, bs.Absorbs, bs.Inclusions)
	}
	fmt.Println()
	fmt.Println("a single bus saturates near 16 processors (see fbsweep -exp P1);")
	fmt.Println("here the global bus carries only the cross-cluster residue.")
}
