// Quickstart: build a two-processor Futurebus system running the
// paper's preferred MOESI protocol, and walk one line through the
// states the protocol is named after — I, E, M, O, S — printing the
// state of both caches after every step.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"futurebus/internal/bus"
	"futurebus/internal/cache"
	"futurebus/internal/memory"
	"futurebus/internal/protocols"
)

func main() {
	const lineSize = 32
	mem := memory.New(lineSize)
	b := bus.New(mem, bus.Config{LineSize: lineSize})

	// Each cache gets its own policy instance; here both run the
	// preferred MOESI protocol.
	c0 := cache.New(0, b, protocols.MOESI(), cache.Config{Sets: 16, Ways: 2})
	c1 := cache.New(1, b, protocols.MOESI(), cache.Config{Sets: 16, Ways: 2})

	const line = bus.Addr(0x1000)
	show := func(step string) {
		fmt.Printf("%-46s cache0=%-9s cache1=%-9s memory[0]=%#x\n",
			step, c0.State(line), c1.State(line), mem.Peek(line)[:4])
	}

	show("power-on (memory is the default owner)")

	// 1. A read miss with no other holder loads Exclusive: the CH line
	// stayed high, so cache 0 knows it has the only copy.
	must(rd(c0, line))
	show("cache0 reads (miss, no CH)")

	// 2. A write to an E line is silent — no bus transaction at all
	// (the M/E pair of Figure 4) — and dirties it to Modified.
	must(c0.WriteWord(line, 0, 0xAAAA0001))
	show("cache0 writes (silent E->M upgrade)")

	// 3. Cache 1 reads: cache 0 intervenes (DI) because memory is
	// stale, supplies the line, and keeps it as Owned; cache 1 loads
	// Shared. Memory is NOT updated — ownership tracks that.
	must(rd(c1, line))
	show("cache1 reads (cache0 intervenes, M->O)")

	// 4. Cache 1 writes: the preferred protocol broadcasts the word
	// (CA,IM,BC); cache 0 connects (SL), updates its copy and yields
	// ownership; cache 1 becomes the Owner.
	must(c1.WriteWord(line, 1, 0xBBBB0002))
	show("cache1 writes (broadcast update, takes O)")

	// 5. Cache 1 flushes: the push writes memory, ownership returns to
	// memory, cache 0's copy (it saw column 7) stays Shared and valid.
	must(c1.Flush(line))
	show("cache1 flushes (push; memory owns again)")

	// Both caches and memory agree on the data.
	v0, err := c0.ReadWord(line, 1)
	must(err)
	fmt.Printf("\ncache0 reads word 1 back: %#x (written by cache1, delivered by broadcast)\n", v0)
}

func rd(c *cache.Cache, line bus.Addr) error {
	_, err := c.ReadWord(line, 0)
	return err
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
