// Liveobs: run a short four-processor MOESI workload with the embedded
// observability server attached, then scrape our own /metrics endpoint
// over real HTTP and decompose where the bus time went — arbitration
// wait versus actual data transfer — the split §6 of the paper cares
// about when it argues for the distributed arbiter.
//
// Run with: go run ./examples/liveobs
package main

import (
	"bufio"
	"fmt"
	"log"
	"net/http"
	"strings"

	"futurebus/internal/obs"
	"futurebus/internal/obs/obshttp"
	"futurebus/internal/sim"
	"futurebus/internal/workload"
)

func main() {
	// The Service bundles all live-observability sinks: the metrics
	// registry, the phase-attribution view and the SSE event stream.
	svc := obshttp.NewService(8)
	rec := obs.New(svc.Sinks()...)

	cfg := sim.Homogeneous("moesi", 4)
	cfg.Obs = rec
	sys, err := sim.New(cfg)
	must(err)
	for i := range sys.Boards {
		svc.Attr.SetProcLabel(i, "moesi")
	}
	sys.RegisterLiveGauges(svc.Registry, 0)

	// ":0" binds an ephemeral port; URL() reports where we landed.
	srv, err := svc.Serve("127.0.0.1:0")
	must(err)
	defer srv.Close()
	fmt.Printf("observability endpoint: %s\n\n", srv.URL())

	// Drive a write-heavy shared workload through the concurrent
	// engine: four goroutines contending for the bus is what makes
	// arbitration wait non-trivial.
	gens := sys.Generators(func(proc int) workload.Generator {
		return workload.MustModel(workload.Model{
			Proc: proc, SharedLines: 16, PrivateLines: 32,
			WordsPerLine: sys.WordsPerLine(),
			PShared:      0.5, PWrite: 0.4, Locality: 0.5,
		}, 1986)
	})
	m, err := sim.RunConcurrent(sys, gens, 5000)
	must(err)
	rec.Drain() // deliver everything buffered before we scrape

	// Scrape ourselves exactly like Prometheus would.
	resp, err := http.Get(srv.URL() + "/metrics")
	must(err)
	defer resp.Body.Close()
	fmt.Println("self-scraped /metrics (phase latency and utilization series):")
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, obshttp.MetricPhaseLatency+"{") ||
			strings.HasPrefix(line, "futurebus_bus_utilization") ||
			strings.HasPrefix(line, "futurebus_bus_transactions_total") {
			fmt.Println("  " + line)
		}
	}
	must(sc.Err())

	// The attribution sink answers the §6 question directly: of all
	// the time processors spent on the bus, how much was waiting for
	// the arbiter versus actually moving data?
	arb, transfer := svc.Attr.ArbVsTransfer()
	fmt.Printf("\nbus time decomposition over %d refs (%d transactions):\n",
		m.Refs, m.Bus.Transactions)
	fmt.Printf("  arbitration wait: %12d ns\n", arb)
	fmt.Printf("  data transfer:    %12d ns\n", transfer)
	if transfer > 0 {
		fmt.Printf("  wait/transfer:    %12.3f\n", float64(arb)/float64(transfer))
	}

	fmt.Println("\nslowest transactions and where their time went:")
	for _, span := range svc.Attr.Slowest()[:3] {
		fmt.Printf("  proc %d %s addr %#x: %d ns (addr=%d data=%d intv=%d mem=%d retry=%d, waited %d)\n",
			span.Proc, span.Op, span.Addr, span.Dur,
			span.Phases[obs.PhaseAddr], span.Phases[obs.PhaseData],
			span.Phases[obs.PhaseIntervention], span.Phases[obs.PhaseMemory],
			span.Phases[obs.PhaseRetry], span.Phases[obs.PhaseArb])
	}

	must(rec.Close())
	must(srv.Close())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
