// Mixedbus: the paper's headline capability — boards running DIFFERENT
// consistency protocols share one Futurebus and stay consistent,
// because each only ever picks actions from the compatible class
// (§3.4: "different boards on the bus can implement different
// protocols, provided that each comes from this class").
//
// This example puts six boards on one bus:
//
//	MOESI (preferred, update-style)   — copy-back
//	MOESI-invalidate                  — copy-back
//	Berkeley (Table 3)                — copy-back, no E state
//	Dragon (Table 4)                  — copy-back, update-style
//	write-through                     — V≡S, not capable of ownership
//	uncached DMA                      — never snoops, columns 7/9
//
// drives them with a sharing-heavy workload, verifies all six
// consistency invariants, and prints per-board protocol costs.
//
// Run with: go run ./examples/mixedbus
package main

import (
	"fmt"
	"log"

	"futurebus/internal/sim"
	"futurebus/internal/workload"
)

func main() {
	cfg := sim.Config{
		Boards: []sim.BoardSpec{
			{Protocol: "moesi"},
			{Protocol: "moesi-invalidate"},
			{Protocol: "berkeley"},
			{Protocol: "dragon"},
			{Protocol: "write-through"},
			{Protocol: "uncached"},
		},
		Shadow: true, // track the golden image for the checker
	}
	sys, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	gens := sys.Generators(func(proc int) workload.Generator {
		return workload.MustModel(workload.Model{
			Proc:         proc,
			SharedLines:  24,
			PrivateLines: 64,
			WordsPerLine: sys.WordsPerLine(),
			PShared:      0.35,
			PWrite:       0.3,
			Locality:     0.4,
		}, 1986)
	})

	eng := sim.Engine{Sys: sys, Gens: gens}
	m, err := eng.Run(25000)
	if err != nil {
		log.Fatal(err)
	}

	if err := sys.Checker().MustPass(); err != nil {
		log.Fatalf("MIXED BUS INCONSISTENT: %v", err)
	}
	fmt.Println("mixed bus is consistent: unique ownership, real exclusivity,")
	fmt.Println("single-valued image, memory valid when unowned, golden image matches.")
	fmt.Println()
	fmt.Printf("system: %s\n", m.System)
	fmt.Printf("refs=%d missRatio=%.4f trans/ref=%.4f bytes/ref=%.2f busUtil=%.3f\n",
		m.Refs, m.MissRatio(), m.TransPerRef(), m.BytesPerRef(), m.BusUtilization())
	fmt.Println()

	fmt.Println("per-board view (same bus, different protocols, different costs):")
	fmt.Printf("  %-18s %8s %8s %8s %9s %9s %9s\n",
		"protocol", "hits", "misses", "upgrades", "inv.rcvd", "upd.rcvd", "intervene")
	for i, c := range sys.Caches {
		s := c.Stats()
		fmt.Printf("  %-18s %8d %8d %8d %9d %9d %9d\n",
			sys.Boards[i].Describe(),
			s.ReadHits+s.WriteHits, s.ReadMisses+s.WriteMisses, s.WriteUpgrades,
			s.InvalidationsReceived, s.UpdatesReceived, s.InterventionsSupplied)
	}
	fmt.Println()
	fmt.Println("note how the Dragon/MOESI boards receive updates (their copies stay")
	fmt.Println("live) while the invalidate-style boards receive invalidations, and")
	fmt.Println("the write-through board never intervenes: V≡S cannot own a line.")
}
