// Randomprotocol: the paper's most striking claim, §3.4 — "As an
// extreme case, it would introduce no errors if a board were to select
// an action at each instant from the available set using a random
// number generator or a selection algorithm such as round robin."
//
// Four boards choose a fresh, uniformly random legal action from the
// full class tables on EVERY local event and EVERY snooped bus event,
// under a write-heavy, sharing-heavy workload designed to make any
// incompatibility lose a write. The consistency checker then verifies
// the shared memory image against the golden record of all 40,000+
// stores.
//
// Run with: go run ./examples/randomprotocol
package main

import (
	"fmt"
	"log"

	"futurebus/internal/sim"
	"futurebus/internal/workload"
)

func main() {
	for trial, mix := range [][]sim.BoardSpec{
		{{Protocol: "random"}, {Protocol: "random"}, {Protocol: "random"}, {Protocol: "random"}},
		{{Protocol: "round-robin"}, {Protocol: "round-robin"}, {Protocol: "round-robin"}, {Protocol: "round-robin"}},
		{{Protocol: "random"}, {Protocol: "round-robin"}, {Protocol: "moesi"}, {Protocol: "write-through"}},
	} {
		sys, err := sim.New(sim.Config{Boards: mix, Shadow: true})
		if err != nil {
			log.Fatal(err)
		}
		gens := sys.Generators(func(proc int) workload.Generator {
			return workload.MustModel(workload.Model{
				Proc:         proc,
				SharedLines:  16, // few lines -> constant collisions
				PrivateLines: 48,
				WordsPerLine: sys.WordsPerLine(),
				PShared:      0.5,
				PWrite:       0.45,
				Locality:     0.3,
			}, uint64(trial)*7919+13)
		})
		eng := sim.Engine{Sys: sys, Gens: gens}
		m, err := eng.Run(10000)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Checker().MustPass(); err != nil {
			log.Fatalf("trial %d INCONSISTENT: %v", trial, err)
		}
		fmt.Printf("trial %d (%s):\n", trial+1, m.System)
		fmt.Printf("  %d refs, %d stores verified against the golden image — consistent\n",
			m.Refs, sys.Shadow.Writes())
		fmt.Printf("  cost of anarchy: trans/ref=%.4f bytes/ref=%.2f efficiency=%.3f\n",
			m.TransPerRef(), m.BytesPerRef(), m.Efficiency())
	}
	fmt.Println()
	fmt.Println("randomly mixing broadcast writes, invalidations, RFOs, Read>Write,")
	fmt.Println("silent upgrades and self-invalidations never corrupts the shared")
	fmt.Println("image — the class guarantees compatibility, not efficiency.")
}
