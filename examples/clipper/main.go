// Clipper: §3.4's selective use of the class — "a given cache can make
// some pages copy back, some write through, and some uncacheable (as
// with the Fairchild CLIPPER [Cho86])". One cache, three address
// regions, three behaviours, all class members, all coherent with a
// second plain MOESI board on the same bus.
//
// Run with: go run ./examples/clipper
package main

import (
	"fmt"
	"log"

	"futurebus/internal/bus"
	"futurebus/internal/cache"
	"futurebus/internal/memory"
	"futurebus/internal/protocols"
)

const (
	heapLine = bus.Addr(0x010) // copy-back (default policy)
	logLine  = bus.Addr(0x110) // write-through region
	mmioLine = bus.Addr(0x210) // uncacheable region
)

func main() {
	mem := memory.New(32)
	b := bus.New(mem, bus.Config{LineSize: 32})

	clipper := cache.New(0, b, protocols.MOESI(), cache.Config{
		Sets: 16, Ways: 2,
		Regions: []cache.Region{
			{Start: 0x100, End: 0x200, Policy: protocols.WriteThrough(protocols.WriteThroughConfig{})},
			{Start: 0x200, End: 0x300, Policy: protocols.NonCaching(false)},
		},
	})
	other := cache.New(1, b, protocols.MOESI(), cache.Config{Sets: 16, Ways: 2})

	memByte := func(addr bus.Addr) byte { return mem.Peek(addr)[0] }

	// Heap page: copy-back. The write stays in the cache as Modified;
	// memory is stale until eviction or flush.
	must(clipper.WriteWord(heapLine, 0, 0x11))
	fmt.Printf("heap  (copy-back):     state=%-8s memory=0x%02x  (dirty in cache)\n",
		clipper.State(heapLine), memByte(heapLine))

	// Log page: write-through. V≡S, every store reaches memory at once
	// — the right policy for data another agent tails.
	if _, err := clipper.ReadWord(logLine, 0); err != nil {
		log.Fatal(err)
	}
	must(clipper.WriteWord(logLine, 0, 0x22))
	fmt.Printf("log   (write-through): state=%-8s memory=0x%02x  (memory always current)\n",
		clipper.State(logLine), memByte(logLine))

	// MMIO page: uncacheable. Nothing is ever retained; every access is
	// a fresh bus transaction — device registers must not be cached.
	must(clipper.WriteWord(mmioLine, 0, 0x33))
	v, err := clipper.ReadWord(mmioLine, 0)
	must(err)
	fmt.Printf("mmio  (uncacheable):   state=%-8s memory=0x%02x  (read %#x fresh from the bus)\n",
		clipper.State(mmioLine), memByte(mmioLine), v)

	// All three regions stay coherent with the other board.
	for _, addr := range []bus.Addr{heapLine, logLine, mmioLine} {
		got, err := other.ReadWord(addr, 0)
		must(err)
		fmt.Printf("board 1 reads %#03x -> %#x\n", uint64(addr), got)
	}
	fmt.Println("\none cache, three protocols from the class, one coherent bus.")

	st := clipper.Stats()
	fmt.Printf("clipper stats: hits=%d misses=%d upgrades=%d\n",
		st.ReadHits+st.WriteHits, st.ReadMisses+st.WriteMisses, st.WriteUpgrades)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
