// Falseshare: why §5.1's standard line size is a performance decision,
// not just a compatibility one. Two processors each increment their own
// private counter — but in configuration A the counters live in the
// SAME line (false sharing: every write fights the other processor for
// the line), while in configuration B they live in different lines (no
// coherence traffic at all after warm-up).
//
// The effect is protocol-dependent, so both an invalidate-style and an
// update-style member are measured: invalidation turns false sharing
// into a miss ping-pong; update turns it into a broadcast per write —
// cheaper, but still pure overhead.
//
// Run with: go run ./examples/falseshare
package main

import (
	"fmt"
	"log"

	"futurebus/internal/bus"
	"futurebus/internal/cache"
	"futurebus/internal/memory"
	"futurebus/internal/protocols"
)

const iterations = 5000

// run measures bus transactions for two counters at the given (line,
// word) placements.
func run(protocol string, a0, a1 bus.Addr, w0, w1 int) (trans int64, bytes int64) {
	mem := memory.New(32)
	b := bus.New(mem, bus.Config{LineSize: 32})
	p0, err := protocols.New(protocol)
	must(err)
	p1, err := protocols.New(protocol)
	must(err)
	c0 := cache.New(0, b, p0, cache.Config{Sets: 16, Ways: 2})
	c1 := cache.New(1, b, p1, cache.Config{Sets: 16, Ways: 2})

	for i := 0; i < iterations; i++ {
		v0, err := c0.ReadWord(a0, w0)
		must(err)
		must(c0.WriteWord(a0, w0, v0+1))
		v1, err := c1.ReadWord(a1, w1)
		must(err)
		must(c1.WriteWord(a1, w1, v1+1))
	}
	st := b.Stats()
	return st.Transactions, st.BytesTransferred
}

func main() {
	fmt.Printf("%d increments per processor, two private counters:\n\n", iterations)
	fmt.Printf("%-18s | %-22s | %-22s\n", "protocol", "same line (false shr)", "separate lines")
	fmt.Printf("%s\n", "-------------------+------------------------+----------------------")
	for _, protocol := range []string{"moesi-invalidate", "moesi"} {
		shT, shB := run(protocol, 0x10, 0x10, 0, 1) // same line, words 0 and 1
		okT, okB := run(protocol, 0x10, 0x11, 0, 0) // adjacent lines
		fmt.Printf("%-18s | %6d txns %8dB | %6d txns %8dB\n",
			protocol, shT, shB, okT, okB)
	}
	fmt.Println()
	fmt.Println("separate lines: a handful of cold misses, then silence — each")
	fmt.Println("processor owns its counter's line in M and increments silently.")
	fmt.Println("same line: every increment is a coherence event. The invalidate")
	fmt.Println("protocol re-fetches the whole line per round trip; the update")
	fmt.Println("protocol broadcasts single words (cheaper, still pure overhead).")
	fmt.Println("\nthe layout decision is invisible to the programmer but worth")
	fmt.Println("orders of magnitude — one reason §5.1 treats line size as a")
	fmt.Println("system-wide design parameter.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
