// Spinlock: a working parallel program on the coherent memory image.
// The paper motivates multiprocessors on a backplane bus (§1); this
// example shows the machinery actually carrying one: four processors
// (goroutines with private MOESI caches) increment a shared counter
// 2,000 times each under a test-and-set spinlock, both built from
// bus-locked read-modify-write operations on the shared address space.
//
// Watch the protocol work in the stats: the lock and counter lines
// ping-pong between the caches as M/O copies; not a single increment is
// lost.
//
// Run with: go run ./examples/spinlock
package main

import (
	"fmt"
	"log"
	"sync"

	"futurebus/internal/bus"
	"futurebus/internal/cache"
	"futurebus/internal/core"
	"futurebus/internal/memory"
	"futurebus/internal/protocols"
)

const (
	lockLine    = bus.Addr(0x10)
	counterLine = bus.Addr(0x20)
	procs       = 4
	perProc     = 2000
)

// acquire spins on a test-and-set built from CompareAndSwap.
func acquire(c *cache.Cache) error {
	for {
		ok, err := c.CompareAndSwap(lockLine, 0, 0, 1)
		if err != nil || ok {
			return err
		}
		// Spin on a local read: while the lock is held, our copy sits
		// in S and costs no bus traffic until the holder's release
		// write reaches us — the classic reason snooping caches make
		// spinlocks viable on a shared bus.
		if _, err := c.ReadWord(lockLine, 0); err != nil {
			return err
		}
	}
}

func release(c *cache.Cache) error {
	return c.WriteWord(lockLine, 0, 0)
}

func main() {
	mem := memory.New(32)
	b := bus.New(mem, bus.Config{LineSize: 32})
	caches := make([]*cache.Cache, procs)
	for i := range caches {
		caches[i] = cache.New(i, b, protocols.MOESI(), cache.Config{Sets: 16, Ways: 2})
	}

	var wg sync.WaitGroup
	for _, c := range caches {
		wg.Add(1)
		go func(c *cache.Cache) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				if err := acquire(c); err != nil {
					log.Fatal(err)
				}
				// Critical section: a plain (non-atomic!) read-modify-
				// write. The lock makes it safe; the protocol makes the
				// lock safe.
				v, err := c.ReadWord(counterLine, 0)
				if err != nil {
					log.Fatal(err)
				}
				if err := c.WriteWord(counterLine, 0, v+1); err != nil {
					log.Fatal(err)
				}
				if err := release(c); err != nil {
					log.Fatal(err)
				}
			}
		}(c)
	}
	wg.Wait()

	final, err := caches[0].ReadWord(counterLine, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counter = %d (want %d)\n", final, procs*perProc)
	if final != procs*perProc {
		log.Fatal("LOST UPDATES — the protocol failed")
	}

	st := b.Stats()
	fmt.Printf("bus: %d transactions, %d interventions, %d updates\n",
		st.Transactions, st.Interventions, st.Updates)
	for i, c := range caches {
		cs := c.Stats()
		fmt.Printf("cache %d: invalidations=%d updates=%d interventions=%d M→O handoffs=%d\n",
			i, cs.InvalidationsReceived, cs.UpdatesReceived, cs.InterventionsSupplied,
			cs.Transitions[core.Modified][core.Owned])
	}
	fmt.Println("\nevery increment survived: mutual exclusion built on MOESI alone.")
}
