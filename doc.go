// Package futurebus is a Go reproduction of Sweazey & Smith, "A Class
// of Compatible Cache Consistency Protocols and their Support by the
// IEEE Futurebus" (ISCA 1986) — the paper that defined the MOESI
// taxonomy of cache-line states.
//
// The implementation lives under internal/:
//
//   - internal/core — the MOESI states, Futurebus consistency signals,
//     the class of compatible protocols (Tables 1–2 with their
//     relaxations), and the class-membership validator;
//   - internal/bus — the simulated Futurebus: broadcast address cycles,
//     wired-OR response lines, DI intervention, BS abort/retry, and the
//     timing model (including the 25 ns broadcast handshake penalty);
//   - internal/memory, internal/cache — the main-memory module and the
//     policy-driven snooping cache (plus uncached masters);
//   - internal/protocols — MOESI variants, Berkeley, Dragon, Write-Once,
//     Illinois, Firefly, write-through, and the random/round-robin
//     choosers of §3.4;
//   - internal/workload, internal/sim, internal/check, internal/tablegen
//     — synthetic workloads, the simulation engines, the consistency
//     checker, and the table-regeneration machinery.
//
// The runnable entry points are under cmd/ (moesi-tables, fbsim,
// fbsweep, fbtrace) and examples/ (quickstart, mixedbus,
// randomprotocol, iodma). The benchmark harness regenerating every
// table and figure of the paper is bench_test.go in this directory; see
// DESIGN.md and EXPERIMENTS.md for the experiment index and results.
package futurebus
