package sim

import (
	"fmt"
	"strings"

	"futurebus/internal/bus"
	"futurebus/internal/cache"
	"futurebus/internal/core"
	"futurebus/internal/memory"
	"futurebus/internal/obs"
	"futurebus/internal/obs/perf"
)

// Metrics aggregates the result of one simulation run.
type Metrics struct {
	// System is the board-mix description.
	System string
	// Procs is the number of boards driven.
	Procs int
	// Refs is the total references executed.
	Refs int64
	// ElapsedNanos is the simulated completion time (the slowest
	// board's clock in the deterministic engine).
	ElapsedNanos int64
	// HitLatency is the per-reference processor cost assumed.
	HitLatency int64
	// Bus, Memory and Cache are the substrate counters.
	Bus    bus.Stats
	Memory memory.Stats
	Cache  cache.Stats // summed over all caches
	// Hist carries latency/stall/retry distribution summaries when the
	// run had an obs.HistogramSink attached (nil otherwise). Keys are
	// the obs.Metric* names.
	Hist map[string]obs.Summary `json:",omitempty"`
	// Perf carries saturation telemetry — arbitration-wait/tenure/
	// retry/memory-service quantiles and per-shard queue-depth stats —
	// when the run had a perf.Sink attached (nil otherwise). It is the
	// per-epoch window, so each run in a sweep sharing one recorder
	// reports only its own telemetry.
	Perf *perf.Snapshot `json:",omitempty"`
}

// histSummaries drains the recorder and digests its histogram sink, if
// any. Safe on a nil recorder or a recorder without a HistogramSink.
func histSummaries(rec *obs.Recorder) map[string]obs.Summary {
	if rec == nil {
		return nil
	}
	rec.Drain()
	h := obs.FindHistogram(rec)
	if h == nil {
		return nil
	}
	return h.Summaries()
}

// perfSnapshot drains the recorder and digests its perf sink's
// per-epoch window, if any. Safe on a nil recorder or a recorder
// without a perf sink.
func perfSnapshot(rec *obs.Recorder) *perf.Snapshot {
	if rec == nil {
		return nil
	}
	rec.Drain()
	p := perf.FindSink(rec)
	if p == nil {
		return nil
	}
	return p.EpochSnapshot()
}

// aggregate sums per-cache stats via cache.Stats.Add, folding
// sector-cache counters in through SectorStats.AsStats — both live next
// to the Stats definitions, so a new counter cannot be silently dropped
// here.
func aggregate(caches []*cache.Cache, sectors []*cache.SectorCache) cache.Stats {
	var total cache.Stats
	for _, sc := range sectors {
		total.Add(sc.Stats().AsStats())
	}
	for _, c := range caches {
		total.Add(c.Stats())
	}
	return total
}

// TransitionTable renders the aggregated state-transition counts in
// M,O,E,S,I order — the instrumentation view of how a protocol actually
// moves lines around the MOESI diagram.
func (m Metrics) TransitionTable() string {
	order := []core.State{core.Modified, core.Owned, core.Exclusive, core.Shared, core.Invalid}
	var b strings.Builder
	b.WriteString("from\\to      M        O        E        S        I\n")
	for _, from := range order {
		fmt.Fprintf(&b, "%-5s", from.Letter())
		for _, to := range order {
			fmt.Fprintf(&b, " %8d", m.Cache.Transitions[from][to])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TotalTransitions sums the aggregated MOESI transition matrix.
func (m Metrics) TotalTransitions() int64 {
	var t int64
	for _, row := range m.Cache.Transitions {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// InvalidationsPerRef is transitions into Invalid per reference — the
// coherence churn an invalidation-based protocol pays for writes.
func (m Metrics) InvalidationsPerRef() float64 {
	if m.Refs == 0 {
		return 0
	}
	var inv int64
	for from := range m.Cache.Transitions {
		if core.State(from) == core.Invalid {
			continue
		}
		inv += m.Cache.Transitions[from][core.Invalid]
	}
	return float64(inv) / float64(m.Refs)
}

// OwnedShare is the fraction of transitions that land a line in an
// owned state (M or O) — how write-biased the protocol's traffic is.
func (m Metrics) OwnedShare() float64 {
	total := m.TotalTransitions()
	if total == 0 {
		return 0
	}
	var owned int64
	for from := range m.Cache.Transitions {
		owned += m.Cache.Transitions[from][core.Modified] + m.Cache.Transitions[from][core.Owned]
	}
	return float64(owned) / float64(total)
}

// MissRatio is misses over references (cached boards only).
func (m Metrics) MissRatio() float64 {
	refs := m.Cache.Reads + m.Cache.Writes
	if refs == 0 {
		return 0
	}
	return float64(m.Cache.ReadMisses+m.Cache.WriteMisses) / float64(refs)
}

// TransPerRef is bus transactions per reference — the paper's central
// cost: caches exist to cut the bus bandwidth demand (§1).
func (m Metrics) TransPerRef() float64 {
	if m.Refs == 0 {
		return 0
	}
	return float64(m.Bus.Transactions) / float64(m.Refs)
}

// BytesPerRef is bus data bytes moved per reference.
func (m Metrics) BytesPerRef() float64 {
	if m.Refs == 0 {
		return 0
	}
	return float64(m.Bus.BytesTransferred) / float64(m.Refs)
}

// BusUtilization is the fraction of elapsed time the bus was busy. It
// is NOT clamped: a value above 1.0 means the accounting model was
// overcommitted (BusyNanos exceeded the elapsed clock — e.g. the
// concurrent engine's wall-clock elapsed time undercounting simulated
// bus time) and should be surfaced, not hidden. See Overcommitted.
func (m Metrics) BusUtilization() float64 {
	if m.ElapsedNanos == 0 {
		return 0
	}
	return float64(m.Bus.BusyNanos) / float64(m.ElapsedNanos)
}

// Efficiency is processor efficiency in the [Arch85] sense: the
// fraction of a processor's time spent executing rather than stalled on
// the bus. 1.0 means every reference hit. Like BusUtilization it is
// unclamped; >1 indicates an inconsistent elapsed-time model.
func (m Metrics) Efficiency() float64 {
	if m.ElapsedNanos == 0 || m.Procs == 0 {
		return 0
	}
	useful := float64(m.Refs) * float64(m.HitLatency)
	total := float64(m.ElapsedNanos) * float64(m.Procs)
	if total == 0 {
		return 0
	}
	return useful / total
}

// Overcommitted reports whether either derived ratio exceeds 1.0 —
// i.e. the run's time accounting is internally inconsistent and the
// ratios should be read as model diagnostics, not physical fractions.
func (m Metrics) Overcommitted() bool {
	return m.BusUtilization() > 1 || m.Efficiency() > 1
}

// SystemPower is Procs × Efficiency: the effective number of
// processors' worth of work the machine delivers ([Arch85] reports this
// curve; it saturates when the bus does).
func (m Metrics) SystemPower() float64 { return float64(m.Procs) * m.Efficiency() }

func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d refs, miss=%.4f trans/ref=%.4f bytes/ref=%.2f",
		m.System, m.Refs, m.MissRatio(), m.TransPerRef(), m.BytesPerRef())
	fmt.Fprintf(&b, " util=%.3f eff=%.3f power=%.2f", m.BusUtilization(), m.Efficiency(), m.SystemPower())
	fmt.Fprintf(&b, " inv=%d upd=%d int=%d abrt=%d",
		m.Cache.InvalidationsReceived, m.Cache.UpdatesReceived,
		m.Cache.InterventionsSupplied, m.Bus.Aborts)
	return b.String()
}
