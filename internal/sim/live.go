package sim

import (
	"fmt"

	"futurebus/internal/bus"
	"futurebus/internal/obs/obshttp"
)

// LiveMetrics is a mid-run snapshot built only from race-safe sources:
// the bus counters (taken under the arbiter lock), the engines' atomic
// reference counter, and the recorder. Unlike Metrics it carries no
// cache counters — those live on engine goroutines and are only
// consistent at quiescence.
type LiveMetrics struct {
	// Refs is references completed so far across all boards.
	Refs int64 `json:"refs"`
	// Procs is the board count.
	Procs int `json:"procs"`
	// HitLatency is the assumed per-reference processor cost.
	HitLatency int64 `json:"hit_latency"`
	// Bus is the bus counter snapshot.
	Bus bus.Stats `json:"bus"`
	// Dropped is the recorder's post-close discard count (0 mid-run).
	Dropped int64 `json:"dropped"`
}

// ElapsedEstimate reconstructs elapsed simulated time the same way the
// concurrent engine does at quiescence: total bus occupancy plus the
// processors' hit-time share of the completed references.
func (m LiveMetrics) ElapsedEstimate() int64 {
	procs := int64(m.Procs)
	if procs == 0 {
		procs = 1
	}
	return m.Bus.BusyNanos + m.Refs*m.HitLatency/procs
}

// BusUtilization is the live busy fraction against the elapsed
// estimate.
func (m LiveMetrics) BusUtilization() float64 {
	el := m.ElapsedEstimate()
	if el == 0 {
		return 0
	}
	return float64(m.Bus.BusyNanos) / float64(el)
}

// LiveMetrics snapshots the system's progress. hitLatency 0 uses
// DefaultHitLatency. Safe to call from any goroutine while either
// engine is running.
func (s *System) LiveMetrics(hitLatency int64) LiveMetrics {
	if hitLatency == 0 {
		hitLatency = DefaultHitLatency
	}
	return LiveMetrics{
		Refs:       s.RefsDone(),
		Procs:      len(s.Boards),
		HitLatency: hitLatency,
		Bus:        s.Bus.Stats(),
		Dropped:    s.Obs.Dropped(),
	}
}

// RegisterLiveGauges exposes the system's live progress on an obshttp
// registry: bus utilization, busy time, bytes moved, references
// completed, and recorder discards. Every gauge callback pulls a fresh
// LiveMetrics, so the scrape always reflects the current run state.
func (s *System) RegisterLiveGauges(reg *obshttp.Registry, hitLatency int64) {
	reg.GaugeFunc("futurebus_bus_utilization", "",
		"Live bus busy fraction against the elapsed-time estimate.",
		func() float64 { return s.LiveMetrics(hitLatency).BusUtilization() })
	reg.GaugeFunc("futurebus_bus_busy_ns", "",
		"Cumulative bus occupancy in simulated ns.",
		func() float64 { return float64(s.Bus.Stats().BusyNanos) })
	reg.GaugeFunc("futurebus_bus_bytes", "",
		"Cumulative data-phase bytes moved on the bus.",
		func() float64 { return float64(s.Bus.Stats().BytesTransferred) })
	reg.GaugeFunc("futurebus_refs_done", "",
		"References completed across all boards.",
		func() float64 { return float64(s.RefsDone()) })
	reg.GaugeFunc("futurebus_recorder_dropped_events", "",
		"Events discarded because they were emitted after recorder close.",
		func() float64 { return float64(s.Obs.Dropped()) })
	// Per-shard arbitration queue occupancy, polled from the arbiter at
	// scrape time (no hot-path publishing). Labelled by the shard's
	// ObsID so the series line up with the perf sink's reconstruction.
	for i := 0; i < s.Bus.Shards(); i++ {
		shard := s.Bus.Shard(i)
		reg.GaugeFunc("futurebus_arb_queue_live", fmt.Sprintf("bus=%q", fmt.Sprint(shard.ObsID())),
			"Instantaneous arbitration queue occupancy (master plus waiters), per fabric shard.",
			func() float64 { return float64(shard.ArbQueueDepth()) })
	}
}
