package sim

import (
	"testing"

	"futurebus/internal/faults"
	"futurebus/internal/obs"
	"futurebus/internal/obs/watch"
	"futurebus/internal/protocols"
)

// runWatched assembles a 4-board moesi system (board 0 optionally
// faulted), runs it with a sharing-heavy workload under the given
// engine and shard count, and returns the monitor's report.
func runWatched(t *testing.T, fault, engine string, shards, refs int) *watch.Report {
	t.Helper()
	mon := watch.New(watch.Config{})
	rec := obs.New(mon)
	// The invalidation-style base never issues broadcast writes
	// (column 8), whose Table 2 cells are undefined for M/E snoopers:
	// once a fault has broken coherence, an update-style base would
	// panic the substrate on those cells before the monitor's verdict
	// matters.
	cfg := Homogeneous("moesi-invalidate", 4)
	cfg.Boards[0].Fault = fault
	cfg.CacheSets = 8 // small cache: replacement traffic exercises Flush
	cfg.CacheWays = 2
	cfg.Shards = shards
	cfg.Obs = rec
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gens := abGens(sys, 0.5, 0.4, 7)
	switch engine {
	case "det":
		eng := Engine{Sys: sys, Gens: gens}
		_, err = eng.Run(refs)
	case "conc":
		_, err = RunConcurrent(sys, gens, refs)
	default:
		t.Fatalf("unknown engine %q", engine)
	}
	if err != nil {
		if fault == "" {
			t.Fatalf("%s run: %v", engine, err)
		}
		// A faulted system may also trip a substrate error (e.g. the
		// bus rejecting duplicate DI) and end the run early; the
		// monitor must still have flagged the bug from the events that
		// led up to it.
		t.Logf("%s run ended early (expected under fault %s): %v", engine, fault, err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return mon.Report()
}

// TestWatchDetectsEveryFault is the fault-injection proof: every fault
// class in the internal/faults catalog must be caught by the runtime
// monitor with the invariant the catalog names, on both engines, at 1
// and 4 shards.
func TestWatchDetectsEveryFault(t *testing.T) {
	for _, f := range faults.Catalog() {
		for _, engine := range []string{"det", "conc"} {
			for _, shards := range []int{1, 4} {
				f, engine, shards := f, engine, shards
				t.Run(f.Name+"/"+engine+"/shards="+string(rune('0'+shards)), func(t *testing.T) {
					rep := runWatched(t, f.Name, engine, shards, 3000)
					if rep.Total == 0 {
						t.Fatalf("fault %s went undetected (%d states, %d txs checked)",
							f.Name, rep.States, rep.Txs)
					}
					if rep.ByInvariant[watch.Invariant(f.Expect)] == 0 {
						t.Fatalf("fault %s detected, but not as %s: by-invariant %v (first: %v)",
							f.Name, f.Expect, rep.ByInvariant, rep.First)
					}
				})
			}
		}
	}
}

// TestWatchCleanEveryProtocol: a correct homogeneous system of every
// registered protocol produces zero violations under the deterministic
// engine.
func TestWatchCleanEveryProtocol(t *testing.T) {
	for _, name := range protocols.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			mon := watch.New(watch.Config{})
			rec := obs.New(mon)
			cfg := Homogeneous(name, 4)
			cfg.CacheSets = 8
			cfg.CacheWays = 2
			cfg.Obs = rec
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			eng := Engine{Sys: sys, Gens: abGens(sys, 0.4, 0.3, 11)}
			if _, err := eng.Run(2000); err != nil {
				t.Fatal(err)
			}
			if err := rec.Close(); err != nil {
				t.Fatal(err)
			}
			if rep := mon.Report(); rep.Total != 0 {
				t.Fatalf("clean %s run flagged %d violations; first: %v",
					name, rep.Total, rep.First)
			} else if rep.States == 0 {
				t.Fatalf("monitor saw no state events — instrumentation broken?")
			}
		})
	}
}

// TestWatchCleanMixedAndSharded: compatible-protocol mixes, uncached
// masters, sector caches and sharded fabrics all stay clean, under both
// engines.
func TestWatchCleanMixedAndSharded(t *testing.T) {
	boards := []BoardSpec{
		{Protocol: "moesi"},
		{Protocol: "berkeley"},
		{Protocol: "moesi", SectorSubs: 4},
		{Protocol: "write-through"},
		{Protocol: "uncached"},
	}
	for _, engine := range []string{"det", "conc"} {
		for _, shards := range []int{1, 4} {
			engine, shards := engine, shards
			t.Run(engine+"/shards="+string(rune('0'+shards)), func(t *testing.T) {
				mon := watch.New(watch.Config{})
				rec := obs.New(mon)
				// 16 sets: the sector boards interleave at granularity 4,
				// so sets must be a multiple of granularity × shards.
				cfg := Config{
					Boards: boards, CacheSets: 16, CacheWays: 2,
					Shards: shards, Obs: rec,
				}
				sys, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				gens := abGens(sys, 0.4, 0.3, 13)
				if engine == "det" {
					eng := Engine{Sys: sys, Gens: gens}
					_, err = eng.Run(2000)
				} else {
					_, err = RunConcurrent(sys, gens, 2000)
				}
				if err != nil {
					t.Fatal(err)
				}
				if err := rec.Close(); err != nil {
					t.Fatal(err)
				}
				if rep := mon.Report(); rep.Total != 0 {
					t.Fatalf("clean mixed run flagged %d violations; first: %v",
						rep.Total, rep.First)
				}
			})
		}
	}
}

// TestWatchSurvivesSweepEpochs: two systems sharing one recorder are
// separated by KindEpoch, so residual shadow state from the first run
// is not misread as violations in the second.
func TestWatchSurvivesSweepEpochs(t *testing.T) {
	mon := watch.New(watch.Config{})
	rec := obs.New(mon)
	for i := 0; i < 2; i++ {
		cfg := Homogeneous("moesi", 4)
		cfg.CacheSets = 8
		cfg.CacheWays = 2
		cfg.Obs = rec
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng := Engine{Sys: sys, Gens: abGens(sys, 0.5, 0.4, uint64(17+i))}
		if _, err := eng.Run(1500); err != nil {
			t.Fatal(err)
		}
		rec.Drain()
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if rep := mon.Report(); rep.Total != 0 {
		t.Fatalf("back-to-back systems flagged %d violations; first: %v", rep.Total, rep.First)
	}
}
