package sim

import (
	"fmt"
	"strings"
)

// Report is one experiment's output: a titled table of result rows plus
// free-form notes (the paper-vs-measured commentary). The json tags
// are the fbsweep -json wire format the run ledger ingests (see
// internal/obs/ledger), so they are load-bearing: renaming one breaks
// every ledger that recorded the old key.
type Report struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// AddNote appends a commentary line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render formats the report for terminal output.
func (r *Report) Render() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	total := 0
	for _, w := range widths {
		total += w + 3
	}
	b.WriteString(strings.Repeat("-", maxInt(total-3, 1)))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString(" | ")
			}
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w, cell)
		}
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// CSV renders the report as comma-separated values (header row first),
// for plotting the experiment series outside the terminal.
func (r *Report) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Columns, ","))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		quoted := make([]string, len(row))
		for i, cell := range row {
			if strings.ContainsAny(cell, ",\"") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			quoted[i] = cell
		}
		b.WriteString(strings.Join(quoted, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// f formats a float for report cells.
func f(v float64) string { return fmt.Sprintf("%.4f", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// d formats an integer for report cells.
func d(v int64) string { return fmt.Sprintf("%d", v) }
