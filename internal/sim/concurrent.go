package sim

import (
	"fmt"
	"sync"

	"futurebus/internal/bus"
	"futurebus/internal/workload"
)

// busAddr converts a workload line number to a bus address.
func busAddr(line uint64) bus.Addr { return bus.Addr(line) }

// RunConcurrent drives every board from its own goroutine — the natural
// Go mapping of concurrent cache agents — until each has executed
// refsPerProc references, then quiesces and runs the consistency
// checker. Interleavings are scheduler-dependent, so metrics vary
// between runs; correctness (the checker) must not.
func RunConcurrent(sys *System, gens []workload.Generator, refsPerProc int) (Metrics, error) {
	if len(gens) != len(sys.Boards) {
		return Metrics{}, fmt.Errorf("sim: %d generators for %d boards", len(gens), len(sys.Boards))
	}
	errs := make([]error, len(sys.Boards))
	var wg sync.WaitGroup
	for i, board := range sys.Boards {
		wg.Add(1)
		go func(i int, board Board, gen workload.Generator) {
			defer wg.Done()
			for n := 0; n < refsPerProc; n++ {
				ref := gen.Next()
				var err error
				if ref.Write {
					err = board.Write(busAddr(ref.Line), ref.Word, ref.Val)
				} else {
					_, err = board.Read(busAddr(ref.Line), ref.Word)
				}
				if err != nil {
					errs[i] = fmt.Errorf("board %d ref %s: %w", i, ref, err)
					return
				}
				sys.noteRef()
			}
		}(i, board, gens[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Metrics{}, err
		}
	}
	// Retire any split-mode responses still pending before snapshotting
	// stats, so every owed data tenure is accounted.
	sys.Bus.DrainPending()

	m := Metrics{
		System:     sys.Describe(),
		Procs:      len(sys.Boards),
		Refs:       int64(refsPerProc) * int64(len(sys.Boards)),
		HitLatency: DefaultHitLatency,
		Bus:        sys.Bus.Stats(),
		Memory:     sys.Memory.Stats(),
		Cache:      aggregate(sys.Caches, sys.SectorCaches),
		Hist:       histSummaries(sys.Obs),
		Perf:       perfSnapshot(sys.Obs),
	}
	// Shards serve transactions in parallel, so the backplane's
	// contribution to completion time is the busiest shard, not the sum.
	var busiest int64
	for i := 0; i < sys.Bus.Shards(); i++ {
		if busy := sys.Bus.Shard(i).Stats().BusyNanos; busy > busiest {
			busiest = busy
		}
	}
	m.ElapsedNanos = busiest + m.Refs*DefaultHitLatency/int64(max(1, len(sys.Boards)))

	if err := sys.Checker().MustPass(); err != nil {
		return m, err
	}
	return m, nil
}
