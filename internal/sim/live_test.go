package sim

import (
	"strings"
	"testing"
	"time"

	"futurebus/internal/obs"
	"futurebus/internal/obs/obshttp"
	"futurebus/internal/workload"
)

// TestLiveMetricsDuringRun polls LiveMetrics from a second goroutine
// while the concurrent engine runs — under -race this is the proof the
// snapshot only touches race-safe state — then checks the final
// snapshot agrees with the engine's Metrics.
func TestLiveMetricsDuringRun(t *testing.T) {
	svc := obshttp.NewService(4)
	rec := obs.New(svc.Sinks()...)
	cfg := Homogeneous("moesi", 4)
	cfg.Obs = rec
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.RegisterLiveGauges(svc.Registry, 0)

	stop := make(chan struct{})
	polled := make(chan LiveMetrics, 1)
	go func() {
		var last LiveMetrics
		for {
			select {
			case <-stop:
				polled <- last
				return
			default:
				last = sys.LiveMetrics(0)
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	const refsPerProc = 2000
	gens := sys.Generators(func(proc int) workload.Generator {
		return workload.MustModel(workload.Model{
			Proc: proc, SharedLines: 16, PrivateLines: 32,
			WordsPerLine: sys.WordsPerLine(),
			PShared:      0.3, PWrite: 0.3, Locality: 0.5,
		}, 42)
	})
	m, err := RunConcurrent(sys, gens, refsPerProc)
	if err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-polled

	live := sys.LiveMetrics(0)
	if live.Refs != m.Refs {
		t.Errorf("live refs = %d, metrics refs = %d", live.Refs, m.Refs)
	}
	if live.Bus.Transactions != m.Bus.Transactions {
		t.Errorf("live tx = %d, metrics tx = %d", live.Bus.Transactions, m.Bus.Transactions)
	}
	if live.ElapsedEstimate() != m.ElapsedNanos {
		t.Errorf("elapsed estimate %d != concurrent-engine elapsed %d",
			live.ElapsedEstimate(), m.ElapsedNanos)
	}
	if u := live.BusUtilization(); u <= 0 || u > 1 {
		t.Errorf("live utilization = %v", u)
	}

	// The registered gauges render into the exposition.
	var b strings.Builder
	if err := svc.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"futurebus_bus_utilization ",
		"futurebus_refs_done 8000",
		"futurebus_recorder_dropped_events 0",
		obshttp.MetricPhaseLatency + `{phase="arb",quantile="0.5"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLiveMetricsDeterministic: the deterministic engine feeds the same
// counter.
func TestLiveMetricsDeterministic(t *testing.T) {
	sys, err := New(Homogeneous("moesi", 2))
	if err != nil {
		t.Fatal(err)
	}
	gens := sys.Generators(func(proc int) workload.Generator {
		return workload.MustModel(workload.Model{
			Proc: proc, SharedLines: 8, PrivateLines: 16,
			WordsPerLine: sys.WordsPerLine(),
			PShared:      0.2, PWrite: 0.3, Locality: 0.5,
		}, 7)
	})
	eng := Engine{Sys: sys, Gens: gens}
	m, err := eng.Run(500)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.RefsDone(); got != m.Refs {
		t.Errorf("RefsDone = %d, want %d", got, m.Refs)
	}
	live := sys.LiveMetrics(0)
	if live.Dropped != 0 {
		t.Errorf("dropped = %d", live.Dropped)
	}
}
