package sim

import (
	"strconv"
	"testing"
)

// TestP9GlobalTrafficShrinksWithClustering: the §6 multi-bus shape —
// the global bus's transactions per reference fall monotonically as the
// 16 processors are split into more clusters.
func TestP9GlobalTrafficShrinksWithClustering(t *testing.T) {
	rep, err := MultiBusScaling(ExperimentOpts{RefsPerProc: 4000, Seed: 1986})
	if err != nil {
		t.Fatal(err)
	}
	g := column(t, rep, "globalTrans/ref")
	if len(g) != 4 {
		t.Fatalf("rows = %d", len(g))
	}
	for i := 1; i < len(g); i++ {
		if g[i] >= g[i-1] {
			t.Fatalf("global traffic not shrinking: %v", g)
		}
	}
	// With 8 clusters the global bus carries well under half of the
	// single-bus load.
	if g[3] > g[0]/2 {
		t.Errorf("8-cluster global load %.4f not under half of %.4f", g[3], g[0])
	}
}

// TestP10SectorMatchesBigTagBudget: the §5.1 shape — at 64 tags the
// sector cache performs like the 256-tag plain cache, not like the
// 64-tag plain cache.
func TestP10SectorMatchesBigTagBudget(t *testing.T) {
	rep, err := SectorVsPlain(ExperimentOpts{RefsPerProc: 4000, Seed: 1986})
	if err != nil {
		t.Fatal(err)
	}
	miss := map[string]float64{}
	for _, row := range rep.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		miss[row[0]] = v
	}
	starved := miss["plain 16B, 64 tags"]
	sector := miss["sector 4×16B, 64 tags"]
	baseline := miss["plain 16B, 256 tags"]
	if sector >= starved/2 {
		t.Errorf("sector miss %.4f not well below tag-starved %.4f", sector, starved)
	}
	if sector > baseline*1.5 {
		t.Errorf("sector miss %.4f far above the 256-tag baseline %.4f", sector, baseline)
	}
}
