package sim

import (
	"strings"
	"testing"

	"futurebus/internal/workload"
)

// TestEngineDeterminism: two identically-configured runs produce
// identical metrics, transaction counts and elapsed times.
func TestEngineDeterminism(t *testing.T) {
	run := func() Metrics {
		cfg := Homogeneous("moesi", 4)
		cfg.Shadow = true
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng := Engine{Sys: sys, Gens: abGens(sys, 0.3, 0.3, 321)}
		m, err := eng.Run(2000)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.Bus != b.Bus || a.ElapsedNanos != b.ElapsedNanos || a.Cache != b.Cache {
		t.Errorf("runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestEngineSeedsMatter: a different workload seed changes the run.
func TestEngineSeedsMatter(t *testing.T) {
	run := func(seed uint64) Metrics {
		sys, err := New(Homogeneous("moesi", 2))
		if err != nil {
			t.Fatal(err)
		}
		eng := Engine{Sys: sys, Gens: abGens(sys, 0.3, 0.3, seed)}
		m, err := eng.Run(2000)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if run(1).Bus == run(2).Bus {
		t.Error("different seeds gave identical bus stats")
	}
}

// TestEngineBusSerialisation: simulated bus busy time never exceeds
// elapsed wall time (the bus is a single shared resource).
func TestEngineBusSerialisation(t *testing.T) {
	sys, err := New(Homogeneous("moesi", 8))
	if err != nil {
		t.Fatal(err)
	}
	eng := Engine{Sys: sys, Gens: abGens(sys, 0.4, 0.3, 5)}
	m, err := eng.Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Bus.BusyNanos > m.ElapsedNanos {
		t.Errorf("bus busy %d > elapsed %d", m.Bus.BusyNanos, m.ElapsedNanos)
	}
	if m.BusUtilization() <= 0 || m.BusUtilization() > 1 {
		t.Errorf("utilization = %f", m.BusUtilization())
	}
}

// TestEngineGeneratorMismatch is a configuration error.
func TestEngineGeneratorMismatch(t *testing.T) {
	sys, err := New(Homogeneous("moesi", 2))
	if err != nil {
		t.Fatal(err)
	}
	eng := Engine{Sys: sys, Gens: abGens(sys, 0.2, 0.2, 1)[:1]}
	if _, err := eng.Run(10); err == nil {
		t.Error("generator mismatch accepted")
	}
}

// TestMetricsDerivations: the derived figures behave sensibly on a
// constructed Metrics value.
func TestMetricsDerivations(t *testing.T) {
	var m Metrics
	if m.MissRatio() != 0 || m.TransPerRef() != 0 || m.Efficiency() != 0 {
		t.Error("zero metrics not zero")
	}
	m.Refs = 1000
	m.Procs = 2
	m.HitLatency = 50
	m.ElapsedNanos = 100000
	m.Bus.Transactions = 100
	m.Bus.BytesTransferred = 3200
	m.Bus.BusyNanos = 50000
	m.Cache.Reads = 800
	m.Cache.Writes = 200
	m.Cache.ReadMisses = 80
	m.Cache.WriteMisses = 20
	if got := m.MissRatio(); got != 0.1 {
		t.Errorf("miss ratio = %f", got)
	}
	if got := m.TransPerRef(); got != 0.1 {
		t.Errorf("trans/ref = %f", got)
	}
	if got := m.BytesPerRef(); got != 3.2 {
		t.Errorf("bytes/ref = %f", got)
	}
	if got := m.BusUtilization(); got != 0.5 {
		t.Errorf("utilization = %f", got)
	}
	if got := m.Efficiency(); got != 0.25 {
		t.Errorf("efficiency = %f", got)
	}
	if got := m.SystemPower(); got != 0.5 {
		t.Errorf("power = %f", got)
	}
	if s := m.String(); !strings.Contains(s, "miss=0.1000") {
		t.Errorf("metrics string %q", s)
	}
}

// TestSystemConfigErrors: bad configurations are rejected up front.
func TestSystemConfigErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty board list accepted")
	}
	if _, err := New(Config{Boards: []BoardSpec{{Protocol: "no-such"}}}); err == nil {
		t.Error("unknown protocol accepted")
	}
}

// TestSystemDescribe groups identical boards.
func TestSystemDescribe(t *testing.T) {
	sys, err := New(Config{Boards: []BoardSpec{
		{Protocol: "moesi"}, {Protocol: "moesi"}, {Protocol: "uncached"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Describe(); got != "2×moesi+1×uncached" {
		t.Errorf("describe = %q", got)
	}
}

// TestUncachedBoardsInEngine: a mixed cached/uncached system runs to
// completion under the deterministic engine.
func TestUncachedBoardsInEngine(t *testing.T) {
	cfg := Config{Boards: []BoardSpec{
		{Protocol: "moesi"}, {Protocol: "moesi"}, {Protocol: "uncached-broadcast"},
	}, Shadow: true}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := Engine{Sys: sys, Gens: abGens(sys, 0.5, 0.5, 17)}
	if _, err := eng.Run(2000); err != nil {
		t.Fatal(err)
	}
	if err := sys.Checker().MustPass(); err != nil {
		t.Fatal(err)
	}
}

// TestLineSizeMismatchRejected is experiment P7's negative case: §5.1
// — a board writing lines of the wrong size is refused by the bus.
func TestLineSizeMismatchRejected(t *testing.T) {
	sys, err := New(Homogeneous("moesi", 1))
	if err != nil {
		t.Fatal(err)
	}
	eng := Engine{Sys: sys, Gens: sys.Generators(func(int) workload.Generator {
		return workload.NewReplay(workload.Trace{{Line: 1, Word: 20, Write: true, Val: 1}})
	})}
	if _, err := eng.Run(1); err == nil {
		t.Error("out-of-line word survived the standard-line-size check")
	}
}

// TestTransitionTableRendering: the instrumentation view renders and
// reflects actual traffic.
func TestTransitionTableRendering(t *testing.T) {
	sys, err := New(Homogeneous("moesi", 2))
	if err != nil {
		t.Fatal(err)
	}
	eng := Engine{Sys: sys, Gens: abGens(sys, 0.4, 0.4, 3)}
	m, err := eng.Run(1500)
	if err != nil {
		t.Fatal(err)
	}
	out := m.TransitionTable()
	if !strings.Contains(out, "from\\to") {
		t.Errorf("header missing:\n%s", out)
	}
	if m.Cache.Transitions[2][4] == 0 { // E→M silent upgrades
		t.Error("no E→M transitions recorded under a write-heavy workload")
	}
}

// TestReportCSV: the CSV form quotes commas and carries all rows.
func TestReportCSV(t *testing.T) {
	rep := &Report{ID: "X", Title: "t", Columns: []string{"a", "b"}}
	rep.AddRow("1,5", `say "hi"`)
	rep.AddRow("2", "plain")
	got := rep.CSV()
	want := "a,b\n\"1,5\",\"say \"\"hi\"\"\"\n2,plain\n"
	if got != want {
		t.Errorf("CSV:\n%q\nwant\n%q", got, want)
	}
}

// TestSectorBoardsInEngine: §5.1 sector caches run as first-class sim
// boards, mixed with plain caches, consistently.
func TestSectorBoardsInEngine(t *testing.T) {
	cfg := Config{
		Boards: []BoardSpec{
			{Protocol: "moesi", SectorSubs: 4},
			{Protocol: "moesi"},
			{Protocol: "dragon", SectorSubs: 2},
		},
		Shadow: true,
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Describe(); !strings.Contains(got, "moesi/sector4") {
		t.Errorf("describe = %q", got)
	}
	eng := Engine{Sys: sys, Gens: abGens(sys, 0.4, 0.3, 77)}
	m, err := eng.Run(2500)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Checker().MustPass(); err != nil {
		t.Fatal(err)
	}
	if m.Cache.Reads == 0 || m.MissRatio() == 0 {
		t.Errorf("sector stats not aggregated: %+v", m.Cache)
	}
}
