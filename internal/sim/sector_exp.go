package sim

import (
	"fmt"

	"futurebus/internal/bus"
	"futurebus/internal/cache"
	"futurebus/internal/check"
	"futurebus/internal/memory"
	"futurebus/internal/protocols"
	"futurebus/internal/workload"
)

// SectorVsPlain is experiment P10: the §5.1 sector-cache discussion
// made quantitative. A sector cache exists to stretch a fixed TAG
// budget ([Hill84]: on-chip tag storage is the scarce resource), so the
// comparison holds the tag count fixed at 64 and varies organisation:
//
//   - plain/16B, 64 tags: 64 small lines = 1 KiB of data — the tag
//     budget strangles capacity;
//   - sector 4×16B, 64 tags: 64 sectors × 4 sub-sectors = 4 KiB of
//     data, 16-byte transfers, consistency state per sub-sector;
//   - plain/64B, 64 tags: also 4 KiB, but transfer and consistency
//     granularity is the whole 64 bytes (more bytes per miss, coarser
//     write sharing);
//   - plain/16B, 256 tags: the unconstrained baseline (4× the tag
//     hardware).
//
// The workload re-walks a 2.5 KiB shared buffer with sparse writes, so
// reuse fits the 4 KiB organisations but not the tag-starved one.
func SectorVsPlain(opts ExperimentOpts) (*Report, error) {
	rep := &Report{
		ID:      "P10",
		Title:   "sector cache vs plain caches at a fixed tag budget (§5.1, [Hill84])",
		Columns: []string{"organisation", "tags", "data", "miss", "trans/ref", "bytes/ref", "invalidations"},
	}
	const procs = 4
	refs := opts.RefsPerProc

	type shape struct {
		name     string
		lineSize int
		sector   int // sub-sectors per sector; 0 = plain cache
		capacity int // bytes per cache
	}
	for _, sh := range []shape{
		{"plain 16B, 64 tags", 16, 0, 1024},
		{"sector 4×16B, 64 tags", 16, 4, 4096},
		{"plain 64B, 64 tags", 64, 0, 4096},
		{"plain 16B, 256 tags", 16, 0, 4096},
	} {
		mem := memory.New(sh.lineSize)
		if opts.Obs != nil {
			mem.SetObs(opts.Obs)
		}
		b := bus.New(mem, bus.Config{LineSize: sh.lineSize, Obs: opts.Obs})
		shadow := check.NewShadow(sh.lineSize)

		capacity := sh.capacity
		var sources []check.LineSource
		type board interface {
			ReadWord(bus.Addr, int) (uint32, error)
			WriteWord(bus.Addr, int, uint32) error
		}
		var boards []board
		var tags int
		// stats sums the arm's caches through the one shared aggregate
		// helper; with the RFO write-miss policy used here, derived
		// misses equal the sector cache's SubMisses+SectorMisses.
		var stats func() cache.Stats

		if sh.sector == 0 {
			lines := capacity / sh.lineSize
			var caches []*cache.Cache
			for i := 0; i < procs; i++ {
				c := cache.New(i, b, protocols.MOESI(), cache.Config{
					Sets: lines / 2, Ways: 2, OnWrite: shadow.OnWrite,
				})
				caches = append(caches, c)
				boards = append(boards, c)
				sources = append(sources, c)
			}
			tags = lines
			stats = func() cache.Stats { return aggregate(caches, nil) }
		} else {
			sectors := capacity / (sh.lineSize * sh.sector)
			var caches []*cache.SectorCache
			for i := 0; i < procs; i++ {
				c := cache.NewSector(i, b, protocols.MOESI(), cache.SectorConfig{
					Sets: sectors / 2, Ways: 2, SubSectors: sh.sector, OnWrite: shadow.OnWrite,
				})
				caches = append(caches, c)
				boards = append(boards, c)
				sources = append(sources, c)
			}
			tags = sectors
			stats = func() cache.Stats { return aggregate(nil, caches) }
		}

		// A 2.5 KiB shared buffer, re-walked: reuse fits 4 KiB caches
		// but not the tag-starved 1 KiB organisation.
		gens := make([]workload.Generator, procs)
		for i := range gens {
			gens[i] = workload.NewSequential(i, 640, sh.lineSize/4, 0.02, opts.Seed)
		}
		for n := 0; n < refs; n++ {
			for pi, bd := range boards {
				ref := gens[pi].Next()
				var err error
				if ref.Write {
					err = bd.WriteWord(bus.Addr(ref.Line), ref.Word, ref.Val)
				} else {
					_, err = bd.ReadWord(bus.Addr(ref.Line), ref.Word)
				}
				if err != nil {
					return nil, fmt.Errorf("P10 %s: %w", sh.name, err)
				}
			}
		}
		checker := &check.Checker{Caches: sources, Memory: mem, Shadow: shadow}
		if err := checker.MustPass(); err != nil {
			return nil, fmt.Errorf("P10 %s: %w", sh.name, err)
		}

		st := b.Stats()
		cs := stats()
		total := float64(refs * procs)
		rep.AddRow(sh.name, d(int64(tags)), fmt.Sprintf("%dB", capacity),
			f(float64(cs.ReadMisses+cs.WriteMisses)/total),
			f(float64(st.Transactions)/total),
			f2(float64(st.BytesTransferred)/total),
			d(cs.InvalidationsReceived))
	}
	rep.AddNote("shape: at a fixed tag budget the sector organisation recovers almost all of the 4× data capacity the plain small-line cache forfeits, while keeping 16-byte transfers and per-sub-sector consistency state — \"consistency status also appears to be necessarily associated with the transfer subsector\" (§5.1)")
	return rep, nil
}
