// Package sim assembles complete Futurebus systems — processors with
// policy-driven caches, uncached I/O masters, shared memory, the bus —
// and drives them with synthetic workloads under two engines: a
// deterministic discrete-event engine for reproducible experiments, and
// a concurrent engine with one goroutine per processor that exercises
// the same protocol machinery under real interleavings.
package sim

import (
	"fmt"
	"strings"
	"sync/atomic"

	"futurebus/internal/bus"
	"futurebus/internal/cache"
	"futurebus/internal/check"
	"futurebus/internal/faults"
	"futurebus/internal/memory"
	"futurebus/internal/obs"
	"futurebus/internal/protocols"
	"futurebus/internal/workload"
)

// Board is a bus master the engines drive with references: a cached
// processor or an uncached I/O master.
type Board interface {
	ID() int
	Read(addr bus.Addr, word int) (uint32, error)
	Write(addr bus.Addr, word int, val uint32) error
	// UsesBusNext predicts whether the given access needs the bus (for
	// event ordering in the deterministic engine).
	UsesBusNext(addr bus.Addr, write bool) bool
	// Stall returns cumulative simulated bus time this board has spent.
	Stall() int64
	// Describe names the board's protocol.
	Describe() string
}

// BoardSpec configures one board. Protocol is a protocols registry name
// or one of the pseudo-protocols "uncached" / "uncached-broadcast".
type BoardSpec struct {
	Protocol string
	// SectorSubs, when non-zero, makes the board a §5.1 sector cache
	// with that many sub-sectors per tag (its data capacity stays
	// CacheSets × CacheWays × SectorSubs × line size).
	SectorSubs int
	// Fault names an internal/faults wrapper to inject into this
	// board's policy — a deliberate protocol bug for testing the
	// runtime invariant monitor. Empty = correct policy. fbsim exposes
	// it as the "protocol+fault" spec syntax.
	Fault string
}

// Config assembles a System.
type Config struct {
	// LineSize in bytes; 0 = bus.DefaultLineSize. §5.1: one standard
	// line size for the whole system.
	LineSize int
	// CacheSets and CacheWays give every cache's geometry.
	CacheSets, CacheWays int
	// Timing overrides the bus cost model (zero = default).
	Timing bus.Timing
	// Boards lists the masters, in bus-id order.
	Boards []BoardSpec
	// Shadow enables golden-image tracking for the consistency checker
	// (small overhead per write).
	Shadow bool
	// Paranoid enables per-response class validation on the bus
	// (bus.Config.Paranoid).
	Paranoid bool
	// Obs, when non-nil, instruments the whole system: the bus, every
	// cache and memory emit structured events into it. Nil = tracing
	// off (the fast path).
	Obs *obs.Recorder
	// ObsID tags the bus segment in emitted events (0 for a single-bus
	// system; hierarchies number clusters 1..N). An interleaved fabric
	// numbers its shards ObsID..ObsID+Shards-1.
	ObsID int
	// Shards selects the fabric: 1 (or 0) builds the classic single
	// Futurebus; N>1 builds an address-interleaved backplane of N
	// independent buses, each with its own arbiter and memory module.
	// The interleave granularity is the largest SectorSubs among the
	// boards (1 if none), so a whole sector is always homed on one
	// shard; every board's SectorSubs must divide it.
	Shards int
	// Tenure selects the bus-tenure policy: "" or "atomic" (one grant
	// covers address, data and memory service), or "split" (address and
	// data phases are decoupled grants; see bus.TenurePolicy).
	Tenure string
	// PendingTable bounds the split-mode per-shard pending-transaction
	// table (0 = bus.DefaultPendingTable). Ignored in atomic mode.
	PendingTable int
	// Discipline names the arbitration grant order per shard: "" or
	// "fcfs", "rr", "priority", "bounded" (see bus.NewDiscipline).
	Discipline string
}

// System is an assembled machine.
type System struct {
	Bus    bus.Fabric
	Memory *memory.Sharded
	Boards []Board
	// Caches lists the plain cached boards (subset of Boards) for the
	// checker and reports; SectorCaches the sector-organised ones.
	Caches       []*cache.Cache
	SectorCaches []*cache.SectorCache
	Shadow       *check.Shadow
	// Obs is the recorder the system was built with (nil if untraced).
	Obs *obs.Recorder

	// refsDone counts references completed by any engine — the only
	// engine-side progress counter safe to read mid-run (LiveMetrics).
	refsDone atomic.Int64

	// split records whether the fabric runs split-transaction tenures —
	// the deterministic engine switches its occupancy accounting on it.
	split bool
	// disc is the configured arbitration-discipline factory (nil =
	// FCFS); the deterministic engine instantiates one per shard to
	// order its deferred-access queue the same way the concurrent
	// engine's arbiter does.
	disc bus.DisciplineFactory
}

// Split reports whether the system runs split-transaction bus tenures.
func (s *System) Split() bool { return s.split }

// noteRef records one completed reference for live progress reporting.
func (s *System) noteRef() { s.refsDone.Add(1) }

// RefsDone returns how many references the engines have completed so
// far. Safe from any goroutine at any time.
func (s *System) RefsDone() int64 { return s.refsDone.Load() }

// cachedBoard adapts cache.Cache to Board.
type cachedBoard struct {
	*cache.Cache
	name string
}

func (b *cachedBoard) Read(addr bus.Addr, word int) (uint32, error) { return b.ReadWord(addr, word) }
func (b *cachedBoard) Write(addr bus.Addr, word int, val uint32) error {
	return b.WriteWord(addr, word, val)
}
func (b *cachedBoard) UsesBusNext(addr bus.Addr, write bool) bool { return b.WouldUseBus(addr, write) }
func (b *cachedBoard) Stall() int64                               { return b.Stats().StallNanos }
func (b *cachedBoard) Describe() string                           { return b.name }

// sectorBoard adapts cache.SectorCache to Board.
type sectorBoard struct {
	*cache.SectorCache
	name string
}

func (b *sectorBoard) Read(addr bus.Addr, word int) (uint32, error) { return b.ReadWord(addr, word) }
func (b *sectorBoard) Write(addr bus.Addr, word int, val uint32) error {
	return b.WriteWord(addr, word, val)
}
func (b *sectorBoard) UsesBusNext(addr bus.Addr, write bool) bool { return b.WouldUseBus(addr, write) }
func (b *sectorBoard) Stall() int64                               { return b.Stats().StallNanos }
func (b *sectorBoard) Describe() string                           { return b.name }

// uncachedBoard adapts cache.Uncached to Board.
type uncachedBoard struct {
	*cache.Uncached
	name string
}

func (b *uncachedBoard) Read(addr bus.Addr, word int) (uint32, error) { return b.ReadWord(addr, word) }
func (b *uncachedBoard) Write(addr bus.Addr, word int, val uint32) error {
	return b.WriteWord(addr, word, val)
}
func (b *uncachedBoard) UsesBusNext(bus.Addr, bool) bool { return true }
func (b *uncachedBoard) Stall() int64                    { return b.Stats().StallNanos }
func (b *uncachedBoard) Describe() string                { return b.name }

// New builds a system from the config.
func New(cfg Config) (*System, error) {
	if len(cfg.Boards) == 0 {
		return nil, fmt.Errorf("sim: no boards configured")
	}
	lineSize := cfg.LineSize
	if lineSize == 0 {
		lineSize = bus.DefaultLineSize
	}
	if cfg.CacheSets == 0 {
		cfg.CacheSets = 64
	}
	if cfg.CacheWays == 0 {
		cfg.CacheWays = 2
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = 1
	}
	if shards < 1 {
		return nil, fmt.Errorf("sim: invalid shard count %d", cfg.Shards)
	}
	// The interleave granularity is the largest sector size on any
	// board, so every sector (and its write-backs) is homed on one
	// shard; smaller sector sizes must divide it.
	gran := 1
	for _, spec := range cfg.Boards {
		if spec.SectorSubs > gran {
			gran = spec.SectorSubs
		}
	}
	if shards > 1 {
		for i, spec := range cfg.Boards {
			if spec.SectorSubs > 0 && gran%spec.SectorSubs != 0 {
				return nil, fmt.Errorf("sim: board %d sector size %d does not divide interleave granularity %d",
					i, spec.SectorSubs, gran)
			}
		}
	}
	mem := memory.NewSharded(lineSize, shards, gran)
	if cfg.Obs != nil {
		mem.SetObs(cfg.Obs)
	}
	tenure, err := bus.NewTenure(cfg.Tenure, cfg.PendingTable)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	var disc bus.DisciplineFactory
	if cfg.Discipline != "" {
		if disc, err = bus.NewDiscipline(cfg.Discipline); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	busCfg := bus.Config{
		LineSize: lineSize, Timing: cfg.Timing, Paranoid: cfg.Paranoid,
		Obs: cfg.Obs, ObsID: cfg.ObsID,
		Tenure: tenure, Discipline: disc,
	}
	var b bus.Fabric
	if shards == 1 {
		b = bus.New(mem.Shard(0), busCfg)
	} else {
		b = bus.NewInterleaved(mem.Ports(), bus.InterleavedConfig{
			Config: busCfg, Shards: shards, Granularity: gran,
		})
	}
	sys := &System{Bus: b, Memory: mem, Obs: cfg.Obs, split: tenure.TableSize() > 0, disc: disc}
	if cfg.Obs != nil {
		// Mark the system boundary on the stream: sweeps reuse one
		// recorder across many systems, and stateful sinks (the runtime
		// invariant monitor) reset their per-line shadow here. Cause
		// carries the effective arbitration discipline so downstream
		// analysis (causal's per-discipline blame table) can label the
		// waits that follow.
		discName := cfg.Discipline
		if discName == "" {
			discName = "fcfs" // the bus default grant order
		}
		cfg.Obs.Emit(obs.Event{TS: cfg.Obs.Clock(), Kind: obs.KindEpoch, Bus: cfg.ObsID, Proc: -1, Cause: discName})
	}
	if cfg.Shadow {
		sys.Shadow = check.NewShadow(lineSize)
	}
	var onWrite func(bus.Addr, int, uint32)
	if sys.Shadow != nil {
		onWrite = sys.Shadow.OnWrite
	}

	for i, spec := range cfg.Boards {
		switch spec.Protocol {
		case "uncached", "uncached-broadcast":
			u := cache.NewUncached(i, b, spec.Protocol == "uncached-broadcast", onWrite)
			sys.Boards = append(sys.Boards, &uncachedBoard{Uncached: u, name: spec.Protocol})
		default:
			p, err := protocols.New(spec.Protocol)
			if err != nil {
				return nil, fmt.Errorf("sim: board %d: %w", i, err)
			}
			if p, err = faults.Wrap(spec.Fault, p); err != nil {
				return nil, fmt.Errorf("sim: board %d: %w", i, err)
			}
			if spec.SectorSubs > 0 {
				c := cache.NewSector(i, b, p, cache.SectorConfig{
					Sets: cfg.CacheSets, Ways: cfg.CacheWays,
					SubSectors: spec.SectorSubs, OnWrite: onWrite,
				})
				sys.SectorCaches = append(sys.SectorCaches, c)
				sys.Boards = append(sys.Boards, &sectorBoard{
					SectorCache: c,
					name:        fmt.Sprintf("%s/sector%d", spec.Protocol, spec.SectorSubs),
				})
				continue
			}
			c := cache.New(i, b, p, cache.Config{
				Sets: cfg.CacheSets, Ways: cfg.CacheWays, OnWrite: onWrite,
			})
			sys.Caches = append(sys.Caches, c)
			sys.Boards = append(sys.Boards, &cachedBoard{Cache: c, name: spec.Protocol})
		}
	}
	return sys, nil
}

// Homogeneous returns a Config with n identical cached boards.
func Homogeneous(protocol string, n int) Config {
	boards := make([]BoardSpec, n)
	for i := range boards {
		boards[i] = BoardSpec{Protocol: protocol}
	}
	return Config{Boards: boards}
}

// Checker returns a consistency checker over the system. Run it only
// when the system is quiesced.
func (s *System) Checker() *check.Checker {
	sources := make([]check.LineSource, 0, len(s.Caches)+len(s.SectorCaches))
	for _, c := range s.Caches {
		sources = append(sources, c)
	}
	for _, c := range s.SectorCaches {
		sources = append(sources, c)
	}
	return &check.Checker{Caches: sources, Memory: s.Memory, Shadow: s.Shadow}
}

// Describe summarises the board mix ("4×moesi" or "2×moesi+1×dragon").
func (s *System) Describe() string {
	counts := make(map[string]int)
	var order []string
	for _, b := range s.Boards {
		if counts[b.Describe()] == 0 {
			order = append(order, b.Describe())
		}
		counts[b.Describe()]++
	}
	parts := make([]string, len(order))
	for i, name := range order {
		parts[i] = fmt.Sprintf("%d×%s", counts[name], name)
	}
	return strings.Join(parts, "+")
}

// WordsPerLine returns the number of 32-bit words per line.
func (s *System) WordsPerLine() int { return s.Bus.LineSize() / 4 }

// Generators builds one workload generator per board from a factory.
func (s *System) Generators(f func(proc int) workload.Generator) []workload.Generator {
	gens := make([]workload.Generator, len(s.Boards))
	for i := range gens {
		gens[i] = f(i)
	}
	return gens
}
