package sim

import (
	"bytes"
	"reflect"
	"testing"

	"futurebus/internal/obs"
	"futurebus/internal/obs/causal"
	"futurebus/internal/workload"
)

// recordRun executes one engine run with a RecordSink (plus any extra
// sinks) attached and returns the raw .fbt bytes.
func recordRun(t *testing.T, protocol string, boards, refs int, engine string,
	gens func(sys *System) []workload.Generator, extra ...obs.Sink) []byte {
	t.Helper()
	var buf bytes.Buffer
	sinks := append([]obs.Sink{obs.NewRecordSink(&buf, obs.TraceMeta{Fingerprint: "test"})}, extra...)
	rec := obs.New(sinks...)
	cfg := Homogeneous(protocol, boards)
	cfg.Obs = rec
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	switch engine {
	case "det":
		eng := Engine{Sys: sys, Gens: gens(sys)}
		_, err = eng.Run(refs)
	case "conc":
		_, err = RunConcurrent(sys, gens(sys), refs)
	default:
		t.Fatalf("unknown engine %q", engine)
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func analyzeTrace(t *testing.T, raw []byte) *causal.Analysis {
	t.Helper()
	var a causal.Analyzer
	if _, _, err := obs.ReplayTrace(bytes.NewReader(raw), &a); err != nil {
		t.Fatal(err)
	}
	return a.Analyze()
}

// TestRecordReplayAttributionParity: replaying a recorded run through a
// fresh AttributionSink must reproduce exactly the per-phase histogram
// totals the live sink saw — the codec loses no attribution-relevant
// information.
func TestRecordReplayAttributionParity(t *testing.T) {
	live := obs.NewAttributionSink(8)
	raw := recordRun(t, "moesi", 4, 2000, "det",
		func(sys *System) []workload.Generator { return abGens(sys, 0.3, 0.3, 1986) }, live)

	replayed := obs.NewAttributionSink(8)
	if _, _, err := obs.ReplayTrace(bytes.NewReader(raw), replayed); err != nil {
		t.Fatal(err)
	}
	liveSum, replaySum := live.PhaseSummaries(), replayed.PhaseSummaries()
	if !reflect.DeepEqual(liveSum, replaySum) {
		t.Errorf("phase summaries diverged after replay:\nlive:   %+v\nreplay: %+v", liveSum, replaySum)
	}
	la, lt := live.ArbVsTransfer()
	ra, rt := replayed.ArbVsTransfer()
	if la != ra || lt != rt {
		t.Errorf("arb/transfer split diverged: live %d/%d, replay %d/%d", la, lt, ra, rt)
	}
}

// TestCausalDiffSameSeedDeterministic: two recordings of the same
// seeded deterministic run are byte-identical and diff with zero
// regressions (the CI gate's contract).
func TestCausalDiffSameSeedDeterministic(t *testing.T) {
	gens := func(sys *System) []workload.Generator { return abGens(sys, 0.3, 0.3, 1986) }
	a := recordRun(t, "moesi", 4, 1500, "det", gens)
	b := recordRun(t, "moesi", 4, 1500, "det", gens)
	if !bytes.Equal(a, b) {
		t.Error("same-seed deterministic recordings are not byte-identical")
	}
	report := causal.Diff(analyzeTrace(t, a), analyzeTrace(t, b), causal.DefaultThresholds)
	if report.Regressions != 0 {
		t.Errorf("self-diff reported %d regressions", report.Regressions)
	}
}

// TestCausalBSRetryAttribution: a migratory workload on a BS-adapted
// protocol (write-once recovers via Busy aborts) must show bs-retry
// cost that a Berkeley-only run (no BS in its class) does not — the
// per-cause table discriminates the protocol mixes.
func TestCausalBSRetryAttribution(t *testing.T) {
	migratory := func(sys *System) []workload.Generator {
		return sys.Generators(func(proc int) workload.Generator {
			return workload.NewMigratory(proc, 4, 16, 24, sys.WordsPerLine(), 1986)
		})
	}
	berkeley := analyzeTrace(t, recordRun(t, "berkeley", 4, 1500, "det", migratory))
	writeOnce := analyzeTrace(t, recordRun(t, "write-once", 4, 1500, "det", migratory))

	bsIdx := -1
	for i, name := range causal.Causes {
		if name == causal.CauseBSRetry {
			bsIdx = i
		}
	}
	if berkeley.ByCause[bsIdx] != 0 {
		t.Errorf("berkeley run attributed %dns to bs-retry; its class never asserts BS", berkeley.ByCause[bsIdx])
	}
	if writeOnce.ByCause[bsIdx] == 0 {
		t.Error("write-once migratory run attributed nothing to bs-retry; BS recovery missing")
	}
	r := causal.Diff(berkeley, writeOnce, causal.DefaultThresholds)
	var found bool
	for _, row := range r.Causes {
		if row.Name == causal.CauseBSRetry && row.Delta > 0 {
			found = true
		}
	}
	if !found {
		t.Error("diff shows no positive bs-retry delta between the protocol mixes")
	}
}

// TestCausalRecoveryLinkage: every recovery push in a write-once run
// must carry a causality edge to an existing aborted transaction, and
// the critical path must include a bs-retry edge when aborts dominate.
func TestCausalRecoveryLinkage(t *testing.T) {
	raw := recordRun(t, "write-once", 4, 1500, "det", func(sys *System) []workload.Generator {
		return sys.Generators(func(proc int) workload.Generator {
			return workload.NewMigratory(proc, 4, 16, 24, sys.WordsPerLine(), 1986)
		})
	})
	var events []obs.Event
	collect := obs.SinkFunc(func(e *obs.Event) { events = append(events, *e) })
	if _, _, err := obs.ReplayTrace(bytes.NewReader(raw), collect); err != nil {
		t.Fatal(err)
	}
	txids := make(map[uint64]bool)
	for i := range events {
		if events[i].Kind == obs.KindTx {
			txids[events[i].TxID] = true
		}
	}
	var pushes, aborts int
	for i := range events {
		switch events[i].Kind {
		case obs.KindAbort:
			aborts++
			if events[i].TxID == 0 {
				t.Error("abort event without TxID")
			}
		case obs.KindTx:
			if cause := events[i].CauseID; cause != 0 {
				pushes++
				if !txids[cause] {
					t.Errorf("recovery push %d references unknown transaction %d", events[i].TxID, cause)
				}
			}
		}
	}
	if aborts == 0 || pushes == 0 {
		t.Fatalf("write-once migratory run produced %d aborts, %d recovery pushes; want both > 0", aborts, pushes)
	}
}

// TestCausalConcurrentCanonicalDeterminism: two same-seed concurrent
// runs interleave differently, but with disjoint per-board working sets
// (PShared = 0) each board's program is deterministic — after
// Canonicalize the two recordings must produce identical critical
// paths. This is the replay-determinism contract for the concurrent
// engine.
func TestCausalConcurrentCanonicalDeterminism(t *testing.T) {
	private := func(sys *System) []workload.Generator {
		return sys.Generators(func(proc int) workload.Generator {
			return workload.MustModel(workload.Model{
				Proc: proc, SharedLines: 8, PrivateLines: 64,
				WordsPerLine: sys.WordsPerLine(),
				PShared:      0, PWrite: 0.4, Locality: 0.3,
			}, 1986)
		})
	}
	canonicalPath := func(raw []byte) []causal.Segment {
		var events []obs.Event
		collect := obs.SinkFunc(func(e *obs.Event) { events = append(events, *e) })
		if _, _, err := obs.ReplayTrace(bytes.NewReader(raw), collect); err != nil {
			t.Fatal(err)
		}
		return causal.AnalyzeEvents(causal.Canonicalize(events)).Path
	}
	a := canonicalPath(recordRun(t, "moesi", 4, 1200, "conc", private))
	b := canonicalPath(recordRun(t, "moesi", 4, 1200, "conc", private))
	if len(a) == 0 {
		t.Fatal("empty canonical critical path")
	}
	if len(a) != len(b) {
		t.Fatalf("canonical critical paths differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("canonical critical paths diverge at segment %d:\nA: %+v\nB: %+v", i, a[i], b[i])
		}
	}
}

// TestDetEngineEmitsBlocked: the deterministic engine reports its
// timeline-level bus waits as KindBlocked events with a blocking
// transaction, mirroring the concurrent engine's arbitration waits.
func TestDetEngineEmitsBlocked(t *testing.T) {
	raw := recordRun(t, "moesi", 4, 1500, "det",
		func(sys *System) []workload.Generator { return abGens(sys, 0.5, 0.4, 7) })
	var blocked, withCause int
	collect := obs.SinkFunc(func(e *obs.Event) {
		if e.Kind == obs.KindBlocked {
			blocked++
			if e.CauseID != 0 {
				withCause++
			}
			if e.Dur <= 0 {
				t.Error("KindBlocked event with non-positive Dur")
			}
		}
	})
	if _, _, err := obs.ReplayTrace(bytes.NewReader(raw), collect); err != nil {
		t.Fatal(err)
	}
	if blocked == 0 {
		t.Fatal("contended deterministic run emitted no KindBlocked events")
	}
	if withCause == 0 {
		t.Error("no KindBlocked event names a blocking transaction")
	}
}
