package sim

import (
	"strconv"
	"strings"
	"testing"
)

// smallOpts keeps experiment tests fast while preserving the shapes.
func smallOpts() ExperimentOpts { return ExperimentOpts{RefsPerProc: 4000, Seed: 1986} }

// column returns a named column's values as floats.
func column(t *testing.T, rep *Report, name string) []float64 {
	t.Helper()
	idx := -1
	for i, c := range rep.Columns {
		if c == name {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatalf("%s: no column %q in %v", rep.ID, name, rep.Columns)
	}
	var out []float64
	for _, row := range rep.Rows {
		v, err := strconv.ParseFloat(row[idx], 64)
		if err != nil {
			t.Fatalf("%s: cell %q: %v", rep.ID, row[idx], err)
		}
		out = append(out, v)
	}
	return out
}

// rowsWhere filters report rows by a column value.
func rowsWhere(rep *Report, col int, val string) [][]string {
	var out [][]string
	for _, row := range rep.Rows {
		if row[col] == val {
			out = append(out, row)
		}
	}
	return out
}

// TestP2UpdateBeatsInvalidateOnProducerConsumer verifies the §5.2 shape
// on the separating workloads.
func TestP2UpdateBeatsInvalidateOnProducerConsumer(t *testing.T) {
	rep, err := UpdateVsInvalidate(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	find := func(workload, protocol string) []string {
		for _, row := range rep.Rows {
			if row[0] == workload && row[1] == protocol {
				return row
			}
		}
		t.Fatalf("no row for %s/%s", workload, protocol)
		return nil
	}
	bytesCol := 4
	for _, wl := range []string{"producer-consumer", "ping-pong"} {
		upd, _ := strconv.ParseFloat(find(wl, "moesi")[bytesCol], 64)
		inv, _ := strconv.ParseFloat(find(wl, "moesi-invalidate")[bytesCol], 64)
		if upd >= inv {
			t.Errorf("%s: update bytes/ref %.2f not below invalidate %.2f", wl, upd, inv)
		}
	}
	// Invalidate wins migratory on efficiency.
	effCol := 5
	upd, _ := strconv.ParseFloat(find("migratory", "moesi")[effCol], 64)
	inv, _ := strconv.ParseFloat(find("migratory", "moesi-invalidate")[effCol], 64)
	if inv <= upd {
		t.Errorf("migratory: invalidate efficiency %.3f not above update %.3f", inv, upd)
	}
}

// TestP5WriteThroughTrafficGrowsWithWrites verifies the §3.1 shape.
func TestP5WriteThroughTrafficGrowsWithWrites(t *testing.T) {
	rep, err := CopyBackVsWriteThrough(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	trans := func(pWrite, protocol string) float64 {
		for _, row := range rep.Rows {
			if row[0] == pWrite && row[1] == protocol {
				v, _ := strconv.ParseFloat(row[2], 64)
				return v
			}
		}
		t.Fatalf("missing row %s/%s", pWrite, protocol)
		return 0
	}
	// Write-through transactions grow steeply with the write ratio.
	if !(trans("0.1", "write-through") < trans("0.3", "write-through") &&
		trans("0.3", "write-through") < trans("0.5", "write-through")) {
		t.Error("write-through traffic does not grow with write ratio")
	}
	// Copy-back stays far below write-through at every point.
	for _, p := range []string{"0.1", "0.3", "0.5"} {
		if trans(p, "moesi") >= trans(p, "write-through") {
			t.Errorf("pWrite=%s: copy-back %.3f not below write-through %.3f",
				p, trans(p, "moesi"), trans(p, "write-through"))
		}
	}
}

// TestP8AdaptedProtocolsAbort: the BS-adapted protocols abort on
// migratory sharing, the class members intervene instead.
func TestP8AdaptedProtocolsAbort(t *testing.T) {
	rep, err := AbortRetryOverhead(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]string{}
	for _, row := range rep.Rows {
		byName[row[0]] = row
	}
	for _, name := range []string{"illinois", "write-once"} {
		aborts, _ := strconv.ParseFloat(byName[name][1], 64)
		if aborts == 0 {
			t.Errorf("%s: no aborts on migratory sharing", name)
		}
	}
	for _, name := range []string{"moesi-invalidate", "berkeley"} {
		aborts, _ := strconv.ParseFloat(byName[name][1], 64)
		ints, _ := strconv.ParseFloat(byName[name][2], 64)
		if aborts != 0 {
			t.Errorf("%s: aborted %v times", name, aborts)
		}
		if ints == 0 {
			t.Errorf("%s: never intervened", name)
		}
	}
	// Illinois pays more bus work per handoff than the DI protocols.
	illTrans, _ := strconv.ParseFloat(byName["illinois"][3], 64)
	berkTrans, _ := strconv.ParseFloat(byName["berkeley"][3], 64)
	if illTrans <= berkTrans {
		t.Errorf("illinois trans/ref %.4f not above berkeley %.4f", illTrans, berkTrans)
	}
}

// TestP3P4ConsistencyExperiments: the mixed and random buses run and
// self-verify.
func TestP3P4ConsistencyExperiments(t *testing.T) {
	if _, err := MixedBus(smallOpts()); err != nil {
		t.Fatal(err)
	}
	if _, err := RandomChoice(smallOpts()); err != nil {
		t.Fatal(err)
	}
}

// TestP6AdaptiveBetweenExtremes: the adaptive policy's update count
// falls between pure invalidate (0) and pure update.
func TestP6AdaptiveBetweenExtremes(t *testing.T) {
	rep, err := ReplacementStatusRefinement(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	upd := map[string]float64{}
	for _, row := range rep.Rows {
		v, _ := strconv.ParseFloat(row[2], 64)
		upd[row[0]] = v
	}
	if !(upd["moesi-invalidate"] == 0) {
		t.Errorf("invalidate received %v updates", upd["moesi-invalidate"])
	}
	if !(upd["moesi-adaptive"] > 0 && upd["moesi-adaptive"] < upd["moesi"]) {
		t.Errorf("adaptive updates %v not between invalidate 0 and update %v",
			upd["moesi-adaptive"], upd["moesi"])
	}
}

// TestP7LineSizeTradeoff: bigger lines cut misses but move more bytes
// per reference at the large end.
func TestP7LineSizeTradeoff(t *testing.T) {
	rep, err := LineSizeSweep(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	miss := column(t, rep, "miss")
	bytes := column(t, rep, "bytes/ref")
	if len(miss) != 4 {
		t.Fatalf("rows = %d", len(miss))
	}
	if miss[0] <= miss[len(miss)-1] {
		t.Errorf("miss ratio did not fall with line size: %v", miss)
	}
	if bytes[len(bytes)-1] <= bytes[0] {
		t.Errorf("bytes/ref did not grow with line size: %v", bytes)
	}
}

// TestHandshakePenaltySweep: bus busy time grows monotonically with the
// wired-OR penalty.
func TestHandshakePenaltySweep(t *testing.T) {
	rep, err := HandshakePenalty(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	busy := column(t, rep, "busBusy(ns)")
	if !(busy[0] < busy[1] && busy[1] < busy[2]) {
		t.Errorf("busy not monotone in penalty: %v", busy)
	}
}

// TestP1Shapes: single-processor efficiency beats 16-processor
// efficiency (the bus saturates) and system power grows with procs for
// the copy-back protocols.
func TestP1Shapes(t *testing.T) {
	rep, err := ProtocolComparison([]string{"moesi", "write-through"}, []int{1, 4, 16}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	moesi := rowsWhere(rep, 0, "moesi")
	eff := func(row []string) float64 {
		v, _ := strconv.ParseFloat(row[6], 64)
		return v
	}
	power := func(row []string) float64 {
		v, _ := strconv.ParseFloat(row[7], 64)
		return v
	}
	if eff(moesi[0]) <= eff(moesi[2]) {
		t.Errorf("efficiency did not fall with contention: %v vs %v", eff(moesi[0]), eff(moesi[2]))
	}
	if power(moesi[1]) <= power(moesi[0]) {
		t.Errorf("4-proc power %.2f not above 1-proc %.2f", power(moesi[1]), power(moesi[0]))
	}
	// Copy-back outperforms write-through at every processor count.
	wt := rowsWhere(rep, 0, "write-through")
	for i := range moesi {
		if eff(moesi[i]) <= eff(wt[i]) {
			t.Errorf("procs=%s: moesi eff %.3f not above write-through %.3f",
				moesi[i][1], eff(moesi[i]), eff(wt[i]))
		}
	}
}

// TestReportRender: the report formatter produces aligned output with
// notes.
func TestReportRender(t *testing.T) {
	rep := &Report{ID: "X", Title: "demo", Columns: []string{"a", "bb"}}
	rep.AddRow("1", "2")
	rep.AddNote("hello %d", 7)
	out := rep.Render()
	for _, want := range []string{"X — demo", "a", "bb", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
}
