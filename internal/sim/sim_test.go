package sim

import (
	"testing"

	"futurebus/internal/protocols"
	"futurebus/internal/workload"
)

// abGens builds Archibald–Baer model generators for a system.
func abGens(sys *System, pShared, pWrite float64, seed uint64) []workload.Generator {
	return sys.Generators(func(proc int) workload.Generator {
		return workload.MustModel(workload.Model{
			Proc:         proc,
			SharedLines:  64,
			PrivateLines: 256,
			WordsPerLine: sys.WordsPerLine(),
			PShared:      pShared,
			PWrite:       pWrite,
			Locality:     0.2,
		}, seed)
	})
}

// TestHomogeneousProtocolsConsistent runs every registered protocol in
// a 4-processor system through the deterministic engine and checks the
// full consistency criterion afterwards.
func TestHomogeneousProtocolsConsistent(t *testing.T) {
	for _, name := range protocols.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := Homogeneous(name, 4)
			cfg.Shadow = true
			cfg.Paranoid = true
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			eng := Engine{Sys: sys, Gens: abGens(sys, 0.3, 0.3, 42)}
			m, err := eng.Run(3000)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Checker().MustPass(); err != nil {
				t.Fatal(err)
			}
			if m.Refs != 4*3000 {
				t.Fatalf("executed %d refs, want %d", m.Refs, 4*3000)
			}
			t.Logf("%s", m)
		})
	}
}

// TestMixedClassMembersConsistent puts one board of every true class
// member on the same bus — the paper's central claim (§3.4).
func TestMixedClassMembersConsistent(t *testing.T) {
	cfg := Config{
		Boards: []BoardSpec{
			{Protocol: "moesi"},
			{Protocol: "moesi-invalidate"},
			{Protocol: "berkeley"},
			{Protocol: "dragon"},
			{Protocol: "write-through"},
			{Protocol: "random"},
			{Protocol: "uncached"},
		},
		Shadow: true,
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := Engine{Sys: sys, Gens: abGens(sys, 0.4, 0.3, 7)}
	if _, err := eng.Run(3000); err != nil {
		t.Fatal(err)
	}
	if err := sys.Checker().MustPass(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentEngineConsistent runs goroutine-per-processor boards
// (run with -race in CI) and checks consistency at quiesce.
func TestConcurrentEngineConsistent(t *testing.T) {
	cfg := Config{
		Boards: []BoardSpec{
			{Protocol: "moesi"},
			{Protocol: "moesi"},
			{Protocol: "dragon"},
			{Protocol: "berkeley"},
		},
		Shadow: true,
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunConcurrent(sys, abGens(sys, 0.4, 0.3, 99), 2000); err != nil {
		t.Fatal(err)
	}
}
