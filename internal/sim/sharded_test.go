package sim

import (
	"fmt"
	"sync"
	"testing"

	"futurebus/internal/bus"
)

// shardedMixConfig is a mixed board set (plain, sector, uncached) used
// by the interleaved-backplane tests. With SectorSubs 4 the interleave
// granularity is 4 lines, so whole sectors stay homed on one shard.
func shardedMixConfig(shards int) Config {
	return Config{
		Boards: []BoardSpec{
			{Protocol: "moesi"},
			{Protocol: "dragon"},
			{Protocol: "berkeley", SectorSubs: 4},
			{Protocol: "write-through"},
			{Protocol: "uncached"},
		},
		Shadow:   true,
		Paranoid: true,
		Shards:   shards,
	}
}

// TestShardedDetEngineConsistent: the deterministic engine on 2- and
// 4-shard interleaved backplanes preserves the full §3.1 invariant
// suite with a mixed board set.
func TestShardedDetEngineConsistent(t *testing.T) {
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			sys, err := New(shardedMixConfig(shards))
			if err != nil {
				t.Fatal(err)
			}
			if got := sys.Bus.Shards(); got != shards {
				t.Fatalf("fabric has %d shards, want %d", got, shards)
			}
			eng := Engine{Sys: sys, Gens: abGens(sys, 0.4, 0.3, 11)}
			m, err := eng.Run(2500)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Checker().MustPass(); err != nil {
				t.Fatal(err)
			}
			if want := int64(len(sys.Boards)) * 2500; m.Refs != want {
				t.Fatalf("executed %d refs, want %d", m.Refs, want)
			}
		})
	}
}

// TestShardedDetEngineDeterministic: two same-seed runs on a 4-shard
// fabric produce identical metrics — the per-shard clocks do not leak
// scheduler nondeterminism into the discrete-event engine.
func TestShardedDetEngineDeterministic(t *testing.T) {
	run := func() Metrics {
		sys, err := New(shardedMixConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		eng := Engine{Sys: sys, Gens: abGens(sys, 0.4, 0.3, 23)}
		m, err := eng.Run(2000)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.Bus != b.Bus || a.Cache != b.Cache || a.ElapsedNanos != b.ElapsedNanos {
		t.Fatalf("same-seed sharded runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestShardedConcurrentEngineConsistent: goroutine-per-board execution
// over a 2-shard fabric (run with -race in CI) quiesces into a
// consistent state.
func TestShardedConcurrentEngineConsistent(t *testing.T) {
	cfg := shardedMixConfig(2)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunConcurrent(sys, abGens(sys, 0.4, 0.3, 99), 1500); err != nil {
		t.Fatal(err)
	}
}

// TestCrossShardRace: two processors hammer lines homed on different
// shards of a 2-shard fabric from separate goroutines (run with -race
// in CI). With granularity 1, consecutive line addresses alternate
// shards; each board's hot line is pinned to one shard, with periodic
// accesses to the other board's line to force cross-shard snooping,
// intervention and invalidation while both shard locks are live.
func TestCrossShardRace(t *testing.T) {
	cfg := Homogeneous("moesi", 2)
	cfg.Shards = 2
	cfg.Shadow = true
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Bus.HomeShard(bus.Addr(0)) == sys.Bus.HomeShard(bus.Addr(1)) {
		t.Fatal("lines 0 and 1 should be homed on different shards")
	}
	const refs = 4000
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			board := sys.Boards[p]
			home := bus.Addr(p)      // homed on shard p
			other := bus.Addr(1 - p) // the other board's shard
			for n := 0; n < refs; n++ {
				addr := home
				if n%8 == 7 {
					addr = other
				}
				var err error
				if n%2 == 0 {
					err = board.Write(addr, 0, uint32(n))
				} else {
					_, err = board.Read(addr, 0)
				}
				if err != nil {
					errs[p] = fmt.Errorf("board %d ref %d: %w", p, n, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Checker().MustPass(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedRejectsBadSectorMix: a sector size that does not divide
// the interleave granularity would split sectors across shards, so New
// must refuse it.
func TestShardedRejectsBadSectorMix(t *testing.T) {
	cfg := Config{
		Boards: []BoardSpec{
			{Protocol: "moesi", SectorSubs: 4},
			{Protocol: "moesi", SectorSubs: 3},
		},
		Shards: 2,
	}
	if _, err := New(cfg); err == nil {
		t.Fatal("sector sizes 4 and 3 on a sharded fabric should be rejected")
	}
}
