package sim

import (
	"testing"

	"futurebus/internal/obs"
	"futurebus/internal/obs/perf"
)

// Both engines must fill Metrics.Perf when a perf sink rides the
// recorder: tenure is sampled for every transaction, and the epoch
// window (not the cumulative one) is what lands in the metrics, so a
// sweep sharing one recorder gets per-system quantiles.
func TestDetEnginePerfMetrics(t *testing.T) {
	rec := obs.New(perf.NewSink(0))
	defer rec.Close()
	cfg := Homogeneous("moesi", 4)
	cfg.Obs = rec
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := Engine{Sys: sys, Gens: abGens(sys, 0.3, 0.3, 99)}
	m, err := eng.Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	checkPerfMetrics(t, m)
}

func TestConcurrentEnginePerfMetrics(t *testing.T) {
	rec := obs.New(perf.NewSink(0))
	defer rec.Close()
	cfg := Homogeneous("moesi", 4)
	cfg.Obs = rec
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunConcurrent(sys, abGens(sys, 0.4, 0.4, 7), 1500)
	if err != nil {
		t.Fatal(err)
	}
	checkPerfMetrics(t, m)
}

func checkPerfMetrics(t *testing.T, m Metrics) {
	t.Helper()
	if m.Perf == nil {
		t.Fatal("Metrics.Perf nil on an instrumented run")
	}
	ten := m.Perf.Latency[perf.MetricTenure]
	if ten.Count != m.Bus.Transactions {
		t.Errorf("tenure samples = %d, bus transactions = %d", ten.Count, m.Bus.Transactions)
	}
	if ten.P50 <= 0 || ten.P99 < ten.P50 {
		t.Errorf("tenure quantiles implausible: %+v", ten)
	}
	if len(m.Perf.Queue) == 0 || m.Perf.PeakQueueDepth() < 1 {
		t.Errorf("no arbitration queue telemetry: %+v", m.Perf.Queue)
	}
}

// ExperimentOpts.Perf gives each run a private sink, so Metrics.Perf
// arrives without the caller wiring a recorder.
func TestExperimentOptsPerf(t *testing.T) {
	m, err := runHomogeneous("moesi", 4, 0.3, 0.3, ExperimentOpts{RefsPerProc: 800, Seed: 3, Perf: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Perf == nil {
		t.Fatal("ExperimentOpts.Perf did not fill Metrics.Perf")
	}
	if m.Perf.Latency[perf.MetricTenure].Count == 0 {
		t.Error("perf snapshot has no tenure samples")
	}
}
