package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"futurebus/internal/bus"
	"futurebus/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestMetricsUnclamped: BusUtilization and Efficiency above 1.0 are
// reported as-is (the accounting is inconsistent and must be visible),
// and Overcommitted flags the condition.
func TestMetricsUnclamped(t *testing.T) {
	m := Metrics{
		Refs: 1000, Procs: 1, HitLatency: 50,
		ElapsedNanos: 10000, // refs×hit = 50000 > elapsed
	}
	m.Bus.BusyNanos = 25000
	if got := m.BusUtilization(); got != 2.5 {
		t.Errorf("utilization = %f, want 2.5 (unclamped)", got)
	}
	if got := m.Efficiency(); got != 5.0 {
		t.Errorf("efficiency = %f, want 5.0 (unclamped)", got)
	}
	if !m.Overcommitted() {
		t.Error("Overcommitted() = false for ratios > 1")
	}

	sane := Metrics{Refs: 100, Procs: 2, HitLatency: 50, ElapsedNanos: 100000}
	sane.Bus.BusyNanos = 50000
	if sane.Overcommitted() {
		t.Error("Overcommitted() = true for ratios <= 1")
	}
}

// TestDetEngineHistograms: a deterministic run with a histogram sink
// fills Metrics.Hist with latency/stall/retry summaries.
func TestDetEngineHistograms(t *testing.T) {
	rec := obs.New(obs.NewHistogramSink())
	defer rec.Close()
	cfg := Homogeneous("moesi", 4)
	cfg.Obs = rec
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := Engine{Sys: sys, Gens: abGens(sys, 0.3, 0.3, 99)}
	m, err := eng.Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	lat, ok := m.Hist[obs.MetricTxLatency]
	if !ok {
		t.Fatalf("no %s summary in Metrics.Hist: %v", obs.MetricTxLatency, m.Hist)
	}
	if lat.Count != m.Bus.Transactions {
		t.Errorf("latency samples = %d, bus transactions = %d", lat.Count, m.Bus.Transactions)
	}
	if lat.P50 <= 0 || lat.P95 < lat.P50 || lat.P99 < lat.P95 || lat.Max < lat.P99 {
		t.Errorf("quantiles not monotone: %+v", lat)
	}
	if _, ok := m.Hist[obs.MetricStall]; !ok {
		t.Errorf("no %s summary: %v", obs.MetricStall, m.Hist)
	}
}

// TestConcurrentEngineWithSinks: the goroutine-per-board engine emits
// into the recorder from many goroutines at once; run with -race this
// validates the ring buffer, and the event count must match the bus's
// own transaction counter exactly (no drops, no duplicates).
func TestConcurrentEngineWithSinks(t *testing.T) {
	var txEvents atomic.Int64
	hist := obs.NewHistogramSink()
	counter := obs.SinkFunc(func(e *obs.Event) {
		if e.Kind == obs.KindTx {
			txEvents.Add(1)
		}
	})
	rec := obs.New(hist, counter)
	defer rec.Close()

	cfg := Homogeneous("moesi", 4)
	cfg.Shadow = true
	cfg.Obs = rec
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Satellite check: the bus trace callback runs under the arbiter,
	// so a plain (non-atomic) counter must not race.
	var traced int
	sys.Bus.SetTrace(func(tx *bus.Transaction, r *bus.Result) { traced++ })

	m, err := RunConcurrent(sys, abGens(sys, 0.4, 0.4, 7), 1500)
	if err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	if got := txEvents.Load(); got != m.Bus.Transactions {
		t.Errorf("sink saw %d tx events, bus counted %d", got, m.Bus.Transactions)
	}
	if int64(traced) != m.Bus.Transactions {
		t.Errorf("trace callback ran %d times, bus counted %d transactions", traced, m.Bus.Transactions)
	}
	if lat, ok := m.Hist[obs.MetricTxLatency]; !ok || lat.Count != m.Bus.Transactions {
		t.Errorf("histogram latency count %v vs %d transactions", m.Hist[obs.MetricTxLatency], m.Bus.Transactions)
	}
}

// chromeTrace runs a deterministic system with a Chrome exporter
// attached and returns the rendered JSON.
func chromeTrace(t *testing.T, boards, refs int) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec := obs.New(obs.NewChromeTraceSink(&buf))
	cfg := Homogeneous("moesi", boards)
	cfg.Obs = rec
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := Engine{Sys: sys, Gens: abGens(sys, 0.3, 0.3, 1986)}
	if _, err := eng.Run(refs); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChromeTraceGolden: the exporter's output for a fixed 2-board
// deterministic run is byte-stable (the sink normalises ordering by
// (timestamp, sequence) at flush). Regenerate with -update after an
// intentional format change.
func TestChromeTraceGolden(t *testing.T) {
	got := chromeTrace(t, 2, 40)
	golden := filepath.Join("testdata", "chrometrace_2board.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run go test -run TestChromeTraceGolden -args -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("chrome trace diverged from golden (%d vs %d bytes); rerun with -update if intentional", len(got), len(want))
	}
}

// TestChromeTraceStructure: a 4-board run produces JSON Perfetto will
// accept: a traceEvents array whose entries all carry name/ph/pid/tid,
// complete events carry dur, timestamps are non-negative and
// non-decreasing per track, and every track referenced by an event has
// a thread_name metadata record.
func TestChromeTraceStructure(t *testing.T) {
	raw := chromeTrace(t, 4, 200)

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}

	type track struct{ pid, tid float64 }
	named := map[track]bool{}
	lastTS := map[track]float64{}
	var slices, instants int
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
		ph := ev["ph"].(string)
		tr := track{ev["pid"].(float64), ev["tid"].(float64)}
		switch ph {
		case "M":
			if ev["name"] == "thread_name" {
				named[tr] = true
			}
			continue
		case "X":
			slices++
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event %d has no dur: %v", i, ev)
			}
		case "i":
			instants++
		default:
			t.Fatalf("event %d has unexpected phase %q", i, ph)
		}
		ts, ok := ev["ts"].(float64)
		if !ok || ts < 0 {
			t.Fatalf("event %d has bad ts: %v", i, ev)
		}
		if ts < lastTS[tr] {
			t.Fatalf("event %d: ts %v goes backwards on track %v", i, ts, tr)
		}
		lastTS[tr] = ts
	}
	for tr := range lastTS {
		if !named[tr] {
			t.Errorf("track %v has events but no thread_name metadata", tr)
		}
	}
	if slices == 0 {
		t.Error("no complete (X) slices — bus transactions missing")
	}
	if instants == 0 {
		t.Error("no instant (i) events — state transitions missing")
	}
}
