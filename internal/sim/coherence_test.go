package sim

import (
	"bytes"
	"testing"

	"futurebus/internal/core"
	"futurebus/internal/obs"
	"futurebus/internal/obs/coherence"
	"futurebus/internal/workload"
)

func coherenceAnalyze(t *testing.T, raw []byte) *coherence.Analysis {
	t.Helper()
	var a coherence.Analyzer
	if _, _, err := obs.ReplayTrace(bytes.NewReader(raw), &a); err != nil {
		t.Fatal(err)
	}
	return a.Analyze(0)
}

func soleProto(t *testing.T, an *coherence.Analysis) *coherence.ProtoAnalysis {
	t.Helper()
	names := an.ProtocolNames()
	if len(names) != 1 {
		t.Fatalf("homogeneous run produced protocols %v, want exactly one", names)
	}
	return an.Protocols[names[0]]
}

// TestCoherenceMatricesDifferAcrossProtocols: recorded Berkeley and
// Write-Once runs of the same workload must reconstruct non-empty,
// different transition matrices — and differ exactly where the paper
// says the protocols differ: Berkeley never holds a line Exclusive
// (no private-clean state), Write-Once never holds one Owned (its
// dirty state is unshared).
func TestCoherenceMatricesDifferAcrossProtocols(t *testing.T) {
	gens := func(sys *System) []workload.Generator { return abGens(sys, 0.3, 0.3, 1986) }
	berkeley := soleProto(t, coherenceAnalyze(t, recordRun(t, "berkeley", 4, 2000, "det", gens)))
	writeOnce := soleProto(t, coherenceAnalyze(t, recordRun(t, "write-once", 4, 2000, "det", gens)))

	if berkeley.Transitions == 0 || writeOnce.Transitions == 0 {
		t.Fatalf("empty matrices: berkeley %d, write-once %d transitions",
			berkeley.Transitions, writeOnce.Transitions)
	}
	if berkeley.Matrix == writeOnce.Matrix {
		t.Error("berkeley and write-once produced identical transition matrices")
	}
	ei, oi := coherence.StateIndex("E"), coherence.StateIndex("O")
	var intoE, intoO int64
	for f := 0; f < coherence.NumStates; f++ {
		intoE += berkeley.Matrix[f][ei]
		intoO += writeOnce.Matrix[f][oi]
	}
	if intoE != 0 {
		t.Errorf("berkeley matrix records %d transitions into E; it has no exclusive-clean state", intoE)
	}
	if intoO != 0 {
		t.Errorf("write-once matrix records %d transitions into O; it has no shared-dirty state", intoO)
	}
}

// TestCoherenceMatrixMatchesStats: the event-stream matrix must agree
// exactly with the cache counters' Transitions table — every real
// state change emits exactly one KindState event, none invented, none
// lost through the codec.
func TestCoherenceMatrixMatchesStats(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.New(obs.NewRecordSink(&buf, obs.TraceMeta{Fingerprint: "parity"}))
	cfg := Homogeneous("moesi", 4)
	cfg.Obs = rec
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := Engine{Sys: sys, Gens: abGens(sys, 0.3, 0.3, 7)}
	m, err := eng.Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	ps := soleProto(t, coherenceAnalyze(t, buf.Bytes()))
	order := []core.State{core.Modified, core.Owned, core.Exclusive, core.Shared, core.Invalid}
	for fi, from := range order {
		for ti, to := range order {
			if got, want := ps.Matrix[fi][ti], m.Cache.Transitions[from][to]; got != want {
				t.Errorf("matrix[%s][%s] = %d from events, %d from counters",
					from.Letter(), to.Letter(), got, want)
			}
		}
	}
}

// TestCoherenceMatrixEngineDeterminism: with disjoint per-board
// working sets (PShared = 0) each board's program is deterministic
// regardless of interleaving, so the transition matrix — a multiset of
// transitions, already canonical under reordering — must be identical
// across the deterministic and concurrent engines at 1 and 4 fabric
// shards.
func TestCoherenceMatrixEngineDeterminism(t *testing.T) {
	private := func(sys *System) []workload.Generator {
		return sys.Generators(func(proc int) workload.Generator {
			return workload.MustModel(workload.Model{
				Proc: proc, SharedLines: 8, PrivateLines: 64,
				WordsPerLine: sys.WordsPerLine(),
				PShared:      0, PWrite: 0.4, Locality: 0.3,
			}, 1986)
		})
	}
	matrix := func(engine string, shards int) coherence.Matrix {
		var buf bytes.Buffer
		rec := obs.New(obs.NewRecordSink(&buf, obs.TraceMeta{Fingerprint: "det"}))
		cfg := Homogeneous("moesi", 4)
		cfg.Obs = rec
		cfg.Shards = shards
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		switch engine {
		case "det":
			eng := Engine{Sys: sys, Gens: private(sys)}
			_, err = eng.Run(1200)
		case "conc":
			_, err = RunConcurrent(sys, private(sys), 1200)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		return soleProto(t, coherenceAnalyze(t, buf.Bytes())).Matrix
	}
	base := matrix("det", 1)
	if base.Total() == 0 {
		t.Fatal("baseline run produced an empty transition matrix")
	}
	for _, tc := range []struct {
		engine string
		shards int
	}{{"det", 4}, {"conc", 1}, {"conc", 4}} {
		if got := matrix(tc.engine, tc.shards); got != base {
			t.Errorf("%s engine at %d shards diverged from det/1:\ngot  %v\nwant %v",
				tc.engine, tc.shards, got, base)
		}
	}
}
