package sim

import (
	"fmt"

	"futurebus/internal/hierarchy"
	"futurebus/internal/workload"
)

// MultiBusScaling is experiment P9: the §6 multiple-bus question,
// answered with the internal/hierarchy two-level tree. A single bus
// saturates (P1); clustering moves intra-cluster sharing onto local
// buses and leaves the global bus only the cross-cluster residue. The
// experiment sweeps cluster shapes at a fixed total processor count and
// reports how the traffic splits.
func MultiBusScaling(opts ExperimentOpts) (*Report, error) {
	rep := &Report{
		ID:    "P9",
		Title: "multi-bus hierarchy (§6): traffic split at 16 processors",
		Columns: []string{"shape", "globalTrans/ref", "localTrans/ref",
			"globalBusy(ms)", "maxLocalBusy(ms)", "fetches", "absorbs", "clusterInv"},
	}
	const totalProcs = 16
	for _, clusters := range []int{1, 2, 4, 8} {
		procs := totalProcs / clusters
		sys, err := hierarchy.New(hierarchy.Config{
			Clusters:        clusters,
			ProcsPerCluster: procs,
			CacheSets:       32,
			CacheWays:       2,
			Shadow:          true,
			Obs:             opts.Obs,
		})
		if err != nil {
			return nil, err
		}
		gens := make([][]workload.Generator, clusters)
		for ci := 0; ci < clusters; ci++ {
			for pi := 0; pi < procs; pi++ {
				m := hierarchy.ClusterModel{
					Cluster: ci, Proc: pi,
					GlobalSharedLines:  16,
					ClusterSharedLines: 24,
					PrivateLines:       48,
					PGlobal:            0.05,
					PCluster:           0.25,
					PWrite:             0.3,
					WordsPerLine:       sys.Global.LineSize() / 4,
				}
				gens[ci] = append(gens[ci], m.NewGenerator(opts.Seed))
			}
		}
		refs := opts.RefsPerProc / 4 // the tree executes serially; keep runs bounded
		if refs < 500 {
			refs = 500
		}
		if err := hierarchy.Run(sys, gens, refs); err != nil {
			return nil, fmt.Errorf("P9 %d×%d: %w", clusters, procs, err)
		}
		st := sys.CollectStats()
		totalRefs := float64(refs * totalProcs)
		rep.AddRow(
			fmt.Sprintf("%d×%d", clusters, procs),
			f(float64(st.GlobalTransactions)/totalRefs),
			f(float64(st.LocalTransactions)/totalRefs),
			f2(float64(st.GlobalBusy)/1e6),
			f2(float64(st.MaxLocalBusy)/1e6),
			d(st.GlobalFetches), d(st.Absorbs), d(st.ClusterInvalidations),
		)
	}
	rep.AddNote("shape: with cluster-heavy sharing, the global bus's share of the traffic shrinks as clusters are added — the headroom a multiple-bus Futurebus buys; the 1×16 row is the single-bus baseline (its \"local\" bus is the only bus)")
	rep.AddNote("consistency is checked at both levels after every run: global MOESI invariants over the bridges, and cluster invariants (no E/M below a bridge, inclusion, bridge currency)")
	return rep, nil
}
