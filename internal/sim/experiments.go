package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"futurebus/internal/bus"
	"futurebus/internal/obs"
	"futurebus/internal/obs/perf"
	"futurebus/internal/workload"
)

// This file implements the performance experiments P1–P8 of DESIGN.md:
// the Archibald–Baer-style comparison the paper's §5.2 preference
// discussion rests on, plus ablations of the design choices the paper
// calls out. Absolute numbers depend on the Timing model; the
// experiments report the *shapes* the paper predicts.

// ExperimentOpts sizes an experiment run.
type ExperimentOpts struct {
	// RefsPerProc is the reference-stream length per board.
	RefsPerProc int
	// Seed makes runs reproducible.
	Seed uint64
	// Obs, when non-nil, instruments every system an experiment builds
	// (latency histograms, traces). Metrics.Hist is filled when the
	// recorder carries a HistogramSink.
	Obs *obs.Recorder
	// Shards builds every system on an N-shard interleaved fabric
	// instead of a single bus (0/1 = single bus).
	Shards int
	// Perf attaches a private saturation-telemetry sink (internal/obs/
	// perf) to each homogeneous run, filling Metrics.Perf and the P1
	// p99arb/peakQ columns. Ignored when Obs is set: the shared
	// recorder's own perf sink (if any) already covers every run, and a
	// second recorder would split the event stream.
	Perf bool
	// Tenure, Discipline and PendingTable select the bus-tenure policy
	// and arbitration discipline for every system the experiments build
	// ("" = atomic tenure, FCFS ticket order; see bus.NewTenure and
	// bus.NewDiscipline). P11 sweeps its own tenure×discipline axis and
	// ignores these two.
	Tenure       string
	Discipline   string
	PendingTable int
}

// apply copies the sweep-wide system knobs onto a config an experiment
// built, so every experiment honours the same fabric/tenure/discipline
// selection without repeating the field list.
func (o ExperimentOpts) apply(cfg *Config) {
	cfg.Obs, cfg.Shards = o.Obs, o.Shards
	cfg.Tenure, cfg.Discipline, cfg.PendingTable = o.Tenure, o.Discipline, o.PendingTable
}

// DefaultOpts is used by the commands; tests use smaller runs.
func DefaultOpts() ExperimentOpts { return ExperimentOpts{RefsPerProc: 20000, Seed: 1986} }

// abWorkload builds Archibald–Baer model generators tuned so the
// private working set mostly fits the default cache (realistic miss
// ratios) and sharing is controlled by pShared/pWrite.
func abWorkload(sys *System, pShared, pWrite float64, seed uint64) []workload.Generator {
	return sys.Generators(func(proc int) workload.Generator {
		return workload.MustModel(workload.Model{
			Proc:         proc,
			SharedLines:  32,
			PrivateLines: 80,
			WordsPerLine: sys.WordsPerLine(),
			PShared:      pShared,
			PWrite:       pWrite,
			Locality:     0.5,
		}, seed)
	})
}

// runHomogeneous builds an n-board system of one protocol, runs the AB
// model, and returns the metrics.
func runHomogeneous(protocol string, n int, pShared, pWrite float64, opts ExperimentOpts) (Metrics, error) {
	cfg := Homogeneous(protocol, n)
	opts.apply(&cfg)
	var rec *obs.Recorder
	if opts.Perf && opts.Obs == nil {
		// A private recorder per run keeps the battery parallelisable:
		// each cell's perf window is its own, no epoch bookkeeping shared
		// across worker goroutines.
		rec = obs.New(perf.NewSink(0))
		cfg.Obs = rec
	}
	sys, err := New(cfg)
	if err != nil {
		if rec != nil {
			_ = rec.Close()
		}
		return Metrics{}, err
	}
	eng := Engine{Sys: sys, Gens: abWorkload(sys, pShared, pWrite, opts.Seed)}
	m, err := eng.Run(opts.RefsPerProc)
	if rec != nil {
		_ = rec.Close()
	}
	if err != nil {
		return Metrics{}, err
	}
	return m, sys.Checker().MustPass()
}

// ProtocolComparison is experiment P1: every protocol on the
// Archibald–Baer workload across processor counts — the comparison
// [Arch85] ran and the paper's preferred-entry choices rest on.
func ProtocolComparison(protocolNames []string, procCounts []int, opts ExperimentOpts) (*Report, error) {
	rep := &Report{
		ID:    "P1",
		Title: "protocol comparison, Archibald–Baer model (pShared=0.2, pWrite=0.3)",
		Columns: []string{"protocol", "procs", "miss", "trans/ref", "bytes/ref",
			"busUtil", "efficiency", "systemPower", "aborts",
			"inv/ref", "ownedShare", "p99arb", "peakQ"},
	}
	for _, name := range protocolNames {
		for _, n := range procCounts {
			m, err := runHomogeneous(name, n, 0.2, 0.3, opts)
			if err != nil {
				return nil, fmt.Errorf("P1 %s×%d: %w", name, n, err)
			}
			// Saturation columns need a perf sink (ExperimentOpts.Perf or
			// an instrumented recorder); "-" marks an unmeasured cell.
			p99arb, peakQ := "-", "-"
			if m.Perf != nil {
				p99arb = d(m.Perf.Latency[perf.MetricArbWait].P99)
				peakQ = d(m.Perf.PeakQueueDepth())
			}
			rep.AddRow(name, d(int64(n)), f(m.MissRatio()), f(m.TransPerRef()),
				f2(m.BytesPerRef()), f(m.BusUtilization()), f(m.Efficiency()),
				f2(m.SystemPower()), d(m.Bus.Aborts),
				f(m.InvalidationsPerRef()), f(m.OwnedShare()), p99arb, peakQ)
		}
	}
	rep.AddNote("expected shape (§5.2/[Arch85]): system power saturates as the bus does; BS-adapted protocols (write-once, illinois, firefly) pay extra for dirty-line transfers; write-through generates the most write traffic")
	rep.AddNote("transition mix: inv/ref counts valid→Invalid moves per reference (invalidation churn); ownedShare is the fraction of transitions landing in M/O — fblens analyze gives the full per-protocol matrix from a -record-out trace")
	rep.AddNote("saturation: p99arb is the p99 arbitration wait in simulated ns (waiting episodes only), peakQ the deepest reconstructed arbitration queue; both read '-' unless the sweep ran with -perf (see docs/OBSERVABILITY.md)")
	return rep, nil
}

// UpdateVsInvalidate is experiment P2: the §5.2 observation that
// broadcasting writes beats invalidation when other caches hold the
// line. Swept over sharing intensity and on the two structured patterns
// that separate the strategies hardest.
func UpdateVsInvalidate(opts ExperimentOpts) (*Report, error) {
	rep := &Report{
		ID:      "P2",
		Title:   "broadcast-update vs invalidate (MOESI preferred vs MOESI-invalidate)",
		Columns: []string{"workload", "protocol", "miss", "trans/ref", "bytes/ref", "efficiency"},
	}
	protos := []string{"moesi", "moesi-invalidate"}

	for _, pShared := range []float64{0.05, 0.2, 0.4} {
		for _, name := range protos {
			m, err := runHomogeneous(name, 4, pShared, 0.3, opts)
			if err != nil {
				return nil, fmt.Errorf("P2 %s: %w", name, err)
			}
			rep.AddRow(fmt.Sprintf("AB pShared=%.2f", pShared), name,
				f(m.MissRatio()), f(m.TransPerRef()), f2(m.BytesPerRef()), f(m.Efficiency()))
		}
	}

	patterns := []struct {
		name string
		gen  func(sys *System, proc int) workload.Generator
	}{
		{"producer-consumer", func(sys *System, proc int) workload.Generator {
			return workload.NewProducerConsumer(proc, 16, sys.WordsPerLine(), opts.Seed)
		}},
		{"ping-pong", func(sys *System, proc int) workload.Generator {
			return workload.NewPingPong(proc, 8, sys.WordsPerLine(), opts.Seed)
		}},
		{"migratory", func(sys *System, proc int) workload.Generator {
			return workload.NewMigratory(proc, 4, 16, 24, sys.WordsPerLine(), opts.Seed)
		}},
		{"zipf-hotspot", func(sys *System, proc int) workload.Generator {
			return workload.NewZipf(proc, 64, sys.WordsPerLine(), 1.1, 0.3, opts.Seed)
		}},
	}
	for _, pat := range patterns {
		for _, name := range protos {
			cfg := Homogeneous(name, 4)
			opts.apply(&cfg)
			sys, err := New(cfg)
			if err != nil {
				return nil, err
			}
			gens := sys.Generators(func(proc int) workload.Generator { return pat.gen(sys, proc) })
			eng := Engine{Sys: sys, Gens: gens}
			m, err := eng.Run(opts.RefsPerProc)
			if err != nil {
				return nil, fmt.Errorf("P2 %s/%s: %w", pat.name, name, err)
			}
			if err := sys.Checker().MustPass(); err != nil {
				return nil, err
			}
			rep.AddRow(pat.name, name, f(m.MissRatio()), f(m.TransPerRef()),
				f2(m.BytesPerRef()), f(m.Efficiency()))
		}
	}
	rep.AddNote("expected shape: update wins on producer-consumer, ping-pong and the zipf hot spot (hot lines stay resident everywhere, one broadcast word per write); invalidate wins on migratory data (updates to a line the next owner will rewrite are wasted)")
	return rep, nil
}

// MixedBus is experiment P3: one bus carrying every true class member
// plus a write-through cache and an uncached DMA master — §3.4's
// compatibility claim, measured.
func MixedBus(opts ExperimentOpts) (*Report, error) {
	cfg := Config{
		Boards: []BoardSpec{
			{Protocol: "moesi"},
			{Protocol: "moesi-invalidate"},
			{Protocol: "berkeley"},
			{Protocol: "dragon"},
			{Protocol: "write-through"},
			{Protocol: "random"},
			{Protocol: "uncached"},
		},
		Shadow: true,
	}
	opts.apply(&cfg)
	sys, err := New(cfg)
	if err != nil {
		return nil, err
	}
	eng := Engine{Sys: sys, Gens: abWorkload(sys, 0.3, 0.3, opts.Seed)}
	m, err := eng.Run(opts.RefsPerProc)
	if err != nil {
		return nil, err
	}
	consistent := "yes"
	if err := sys.Checker().MustPass(); err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "P3",
		Title:   "heterogeneous bus: copy-back + write-through + non-caching + random boards",
		Columns: []string{"mix", "consistent", "miss", "trans/ref", "bytes/ref", "efficiency"},
	}
	rep.AddRow(m.System, consistent, f(m.MissRatio()), f(m.TransPerRef()),
		f2(m.BytesPerRef()), f(m.Efficiency()))
	rep.AddNote("§3.4: caches of different types coexist on the bus simultaneously; the shared memory image stays single-valued (checker invariants 1–6 all hold)")
	return rep, nil
}

// RandomChoice is experiment P4: boards choosing random legal actions
// on every event remain consistent — the paper's extreme case.
func RandomChoice(opts ExperimentOpts) (*Report, error) {
	rep := &Report{
		ID:      "P4",
		Title:   "random and round-robin action selection (§3.4 extreme case)",
		Columns: []string{"mix", "consistent", "miss", "trans/ref", "bytes/ref", "efficiency"},
	}
	for _, mix := range [][]BoardSpec{
		{{Protocol: "random"}, {Protocol: "random"}, {Protocol: "random"}, {Protocol: "random"}},
		{{Protocol: "round-robin"}, {Protocol: "round-robin"}, {Protocol: "round-robin"}, {Protocol: "round-robin"}},
		{{Protocol: "random"}, {Protocol: "round-robin"}, {Protocol: "moesi"}, {Protocol: "berkeley"}},
	} {
		cfg := Config{Boards: mix, Shadow: true}
		opts.apply(&cfg)
		sys, err := New(cfg)
		if err != nil {
			return nil, err
		}
		eng := Engine{Sys: sys, Gens: abWorkload(sys, 0.4, 0.4, opts.Seed)}
		m, err := eng.Run(opts.RefsPerProc)
		if err != nil {
			return nil, err
		}
		if err := sys.Checker().MustPass(); err != nil {
			return nil, err
		}
		rep.AddRow(m.System, "yes", f(m.MissRatio()), f(m.TransPerRef()),
			f2(m.BytesPerRef()), f(m.Efficiency()))
	}
	rep.AddNote("\"it would introduce no errors if a board were to select an action at each instant from the available set using a random number generator or a selection algorithm such as round robin\" — verified against all six invariants; the cost is efficiency, not correctness")
	return rep, nil
}

// CopyBackVsWriteThrough is experiment P5: the §3.1 claim (after
// [Good83], [Smit79]) that copy-back gives the greatest bus-traffic
// reduction, swept over write ratio.
func CopyBackVsWriteThrough(opts ExperimentOpts) (*Report, error) {
	rep := &Report{
		ID:      "P5",
		Title:   "copy-back vs write-through bus traffic",
		Columns: []string{"pWrite", "protocol", "trans/ref", "bytes/ref", "busUtil", "efficiency"},
	}
	for _, pWrite := range []float64{0.1, 0.3, 0.5} {
		for _, name := range []string{"moesi", "write-through", "write-through-broadcast"} {
			m, err := runHomogeneous(name, 4, 0.2, pWrite, opts)
			if err != nil {
				return nil, fmt.Errorf("P5 %s: %w", name, err)
			}
			rep.AddRow(fmt.Sprintf("%.1f", pWrite), name, f(m.TransPerRef()),
				f2(m.BytesPerRef()), f(m.BusUtilization()), f(m.Efficiency()))
		}
	}
	rep.AddNote("expected shape: write-through bus transactions grow linearly with the write ratio (every write is a bus write), copy-back stays near the miss ratio — the reason §3.1 calls copy-back caches the route to \"the best performance and greatest reduction in bus traffic\"")
	return rep, nil
}

// ReplacementStatusRefinement is experiment P6: the §5.2 refinement —
// update recently-used snooped lines, discard ones nearing replacement.
func ReplacementStatusRefinement(opts ExperimentOpts) (*Report, error) {
	rep := &Report{
		ID:      "P6",
		Title:   "§5.2 refinement: update-if-recent / discard-if-LRU (MOESI vs MOESI-adaptive)",
		Columns: []string{"protocol", "miss", "updatesReceived", "invalidations", "trans/ref", "bytes/ref", "efficiency"},
	}
	for _, name := range []string{"moesi", "moesi-invalidate", "moesi-adaptive"} {
		m, err := runHomogeneous(name, 4, 0.3, 0.3, opts)
		if err != nil {
			return nil, fmt.Errorf("P6 %s: %w", name, err)
		}
		rep.AddRow(name, f(m.MissRatio()), d(m.Cache.UpdatesReceived),
			d(m.Cache.InvalidationsReceived), f(m.TransPerRef()), f2(m.BytesPerRef()), f(m.Efficiency()))
	}
	rep.AddNote("the adaptive policy sits between pure update and pure invalidate: live lines keep receiving updates, dying lines stop costing broadcast slots")
	return rep, nil
}

// LineSizeSweep is experiment P7: §5.1's standard-line-size discussion;
// the simulator enforces one system-wide size, and this sweep shows the
// traffic trade-off a standard must settle.
func LineSizeSweep(opts ExperimentOpts) (*Report, error) {
	rep := &Report{
		ID:      "P7",
		Title:   "line size sweep (MOESI, constant cache capacity)",
		Columns: []string{"lineSize", "miss", "trans/ref", "bytes/ref", "busUtil", "efficiency"},
	}
	for _, lineSize := range []int{16, 32, 64, 128} {
		cfg := Homogeneous("moesi", 4)
		cfg.LineSize = lineSize
		// Keep capacity constant at 4 KiB per cache.
		cfg.CacheSets = 4096 / lineSize / 2
		cfg.CacheWays = 2
		opts.apply(&cfg)
		sys, err := New(cfg)
		if err != nil {
			return nil, err
		}
		// A sequential walk over a shared buffer with sparse writes:
		// the workload with real spatial locality, so line size
		// matters — bigger lines amortise misses but widen the
		// false-sharing blast radius of each write.
		gens := sys.Generators(func(proc int) workload.Generator {
			return workload.NewSequential(proc, 4096, sys.WordsPerLine(), 0.05, opts.Seed)
		})
		eng := Engine{Sys: sys, Gens: gens}
		m, err := eng.Run(opts.RefsPerProc)
		if err != nil {
			return nil, fmt.Errorf("P7 %d: %w", lineSize, err)
		}
		if err := sys.Checker().MustPass(); err != nil {
			return nil, err
		}
		rep.AddRow(d(int64(lineSize)), f(m.MissRatio()), f(m.TransPerRef()),
			f2(m.BytesPerRef()), f(m.BusUtilization()), f(m.Efficiency()))
	}
	rep.AddNote("§5.1: line size must be standardised system-wide (the bus rejects mismatched writes); larger lines cut the miss count on sequential data but move more bytes per miss and widen write sharing — the [Smit85c] trade-off a standard has to pick once for everyone")
	return rep, nil
}

// AbortRetryOverhead is experiment P8: the cost of the BS
// abort-push-retry adaptation versus native DI intervention, measured
// where it hurts — migratory sharing, where every handoff finds the
// line dirty in the previous owner's cache.
func AbortRetryOverhead(opts ExperimentOpts) (*Report, error) {
	rep := &Report{
		ID:      "P8",
		Title:   "BS abort/retry vs DI intervention on migratory sharing",
		Columns: []string{"protocol", "aborts", "interventions", "trans/ref", "busUtil", "efficiency"},
	}
	for _, name := range []string{"moesi-invalidate", "berkeley", "illinois", "synapse", "write-once", "firefly"} {
		cfg := Homogeneous(name, 4)
		opts.apply(&cfg)
		sys, err := New(cfg)
		if err != nil {
			return nil, err
		}
		gens := sys.Generators(func(proc int) workload.Generator {
			return workload.NewMigratory(proc, 4, 16, 24, sys.WordsPerLine(), opts.Seed)
		})
		eng := Engine{Sys: sys, Gens: gens}
		m, err := eng.Run(opts.RefsPerProc)
		if err != nil {
			return nil, fmt.Errorf("P8 %s: %w", name, err)
		}
		if err := sys.Checker().MustPass(); err != nil {
			return nil, err
		}
		rep.AddRow(name, d(m.Bus.Aborts), d(m.Cache.InterventionsSupplied),
			f(m.TransPerRef()), f(m.BusUtilization()), f(m.Efficiency()))
	}
	rep.AddNote("expected shape: class members serve dirty misses with one intervened transaction; the adapted protocols abort, push the line to memory, and retry — roughly doubling the bus work per handoff (Futurebus cannot update memory during a cache-to-cache transfer, §4.3–4.5)")
	return rep, nil
}

// HandshakePenalty quantifies the §2.2 wired-OR broadcast penalty: the
// same workload run with and without the 25 ns glitch filter cost.
func HandshakePenalty(opts ExperimentOpts) (*Report, error) {
	rep := &Report{
		ID:      "F1/F2",
		Title:   "broadcast handshake penalty (wired-OR glitch filter)",
		Columns: []string{"wiredORPenalty", "busBusy(ns)", "busUtil", "efficiency"},
	}
	for _, penalty := range []int64{0, 25, 50} {
		cfg := Homogeneous("moesi", 4)
		cfg.Timing = bus.DefaultTiming()
		cfg.Timing.WiredORPenalty = penalty
		opts.apply(&cfg)
		sys, err := New(cfg)
		if err != nil {
			return nil, err
		}
		eng := Engine{Sys: sys, Gens: abWorkload(sys, 0.2, 0.3, opts.Seed)}
		m, err := eng.Run(opts.RefsPerProc)
		if err != nil {
			return nil, err
		}
		rep.AddRow(d(penalty), d(m.Bus.BusyNanos), f(m.BusUtilization()), f(m.Efficiency()))
	}
	rep.AddNote("\"the exacted penalty on the Futurebus is that broadcast handshaking is 25 nanoseconds slower than single slave transactions. The reward is that broadcast operations are guaranteed to work\" (§2.2)")
	return rep, nil
}

// ArbitrationDisciplines is experiment P11: the bus tenure × arbitration
// discipline matrix under ping-pong overload — every board hammering a
// tiny shared set, the workload where the grant order IS the
// performance story. Fairness is the Jain index of per-board
// cumulative arbitration wait: 1 when the discipline spreads waiting
// evenly, collapsing toward 1/n as one board's requests starve.
func ArbitrationDisciplines(opts ExperimentOpts) (*Report, error) {
	rep := &Report{
		ID:    "P11",
		Title: "bus tenure × arbitration discipline, ping-pong overload (8 boards)",
		Columns: []string{"tenure", "discipline", "p50arb", "p99arb", "fairness",
			"peakQ", "nacks", "busBusy(ms)", "efficiency"},
	}
	for _, tenure := range []string{"atomic", "split"} {
		for _, disc := range bus.DisciplineNames() {
			cfg := Homogeneous("moesi", 8)
			opts.apply(&cfg)
			cfg.Tenure, cfg.Discipline = tenure, disc
			// The arbitration columns are the experiment, so a perf sink is
			// attached unconditionally when no shared recorder covers the
			// sweep (unlike P1, where telemetry is opt-in via Perf).
			var rec *obs.Recorder
			if opts.Obs == nil {
				rec = obs.New(perf.NewSink(0))
				cfg.Obs = rec
			}
			sys, err := New(cfg)
			if err != nil {
				if rec != nil {
					_ = rec.Close()
				}
				return nil, fmt.Errorf("P11 %s/%s: %w", tenure, disc, err)
			}
			gens := sys.Generators(func(proc int) workload.Generator {
				return workload.NewPingPong(proc, 4, sys.WordsPerLine(), opts.Seed)
			})
			eng := Engine{Sys: sys, Gens: gens}
			m, err := eng.Run(opts.RefsPerProc)
			if rec != nil {
				_ = rec.Close()
			}
			if err != nil {
				return nil, fmt.Errorf("P11 %s/%s: %w", tenure, disc, err)
			}
			if err := sys.Checker().MustPass(); err != nil {
				return nil, err
			}
			p50, p99, fair, peakQ := "-", "-", "-", "-"
			if m.Perf != nil {
				p50 = d(m.Perf.Latency[perf.MetricArbWait].P50)
				p99 = d(m.Perf.Latency[perf.MetricArbWait].P99)
				fair = f(m.Perf.ArbFairness)
				peakQ = d(m.Perf.PeakQueueDepth())
			}
			rep.AddRow(tenure, disc, p50, p99, fair, peakQ, d(m.Bus.Nacks),
				f2(float64(m.Bus.BusyNanos)/1e6), f(m.Efficiency()))
		}
	}
	rep.AddNote("grant order: fcfs serves arrival order (no bound on one board's tail under overload); rr rotates from the last grantee (bounded skips); priority always prefers the lowest board number (high boards starve — watch fairness fall); bounded is priority with a skip cap that promotes starved waiters")
	rep.AddNote("split tenure decouples the address grant from the data-return grant (responses re-arbitrate; a full pending table NACKs, see the nacks column) — overlap shortens busBusy, and the discipline picks who benefits")
	return rep, nil
}

// NamedExperiment pairs an experiment ID with its runner, so callers
// can schedule the battery themselves.
type NamedExperiment struct {
	ID  string
	Run func(ExperimentOpts) (*Report, error)
}

// Battery returns the full experiment battery in DESIGN.md order.
func Battery() []NamedExperiment {
	p1 := func(opts ExperimentOpts) (*Report, error) {
		return ProtocolComparison([]string{
			"moesi", "moesi-invalidate", "moesi-update", "berkeley", "dragon",
			"illinois", "write-once", "firefly", "synapse", "write-through",
		}, []int{1, 2, 4, 8, 16}, opts)
	}
	return []NamedExperiment{
		{"P1", p1},
		{"P2", UpdateVsInvalidate},
		{"P3", MixedBus},
		{"P4", RandomChoice},
		{"P5", CopyBackVsWriteThrough},
		{"P6", ReplacementStatusRefinement},
		{"P7", LineSizeSweep},
		{"P8", AbortRetryOverhead},
		{"P9", MultiBusScaling},
		{"P10", SectorVsPlain},
		{"P11", ArbitrationDisciplines},
		{"F1/F2", HandshakePenalty},
		{"F2B", SlowBoardTax},
	}
}

// RunBattery executes the experiments on a bounded pool of jobs worker
// goroutines (jobs ≤ 1 runs sequentially) and returns the reports in
// battery order regardless of completion order. Every experiment is
// internally deterministic — each builds its own systems and drives
// them with the deterministic engine — so the reports are identical at
// any worker count; only wall-clock time changes. The first error wins;
// remaining queued experiments are skipped.
func RunBattery(list []NamedExperiment, opts ExperimentOpts, jobs int) ([]*Report, error) {
	out := make([]*Report, len(list))
	if jobs <= 1 {
		for i, ne := range list {
			rep, err := ne.Run(opts)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", ne.ID, err)
			}
			out[i] = rep
		}
		return out, nil
	}
	type job struct {
		idx int
		ne  NamedExperiment
	}
	work := make(chan job)
	errs := make([]error, len(list))
	var wg sync.WaitGroup
	var failed atomic.Bool
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range work {
				if failed.Load() {
					continue // drain the queue after a failure
				}
				rep, err := j.ne.Run(opts)
				if err != nil {
					errs[j.idx] = fmt.Errorf("%s: %w", j.ne.ID, err)
					failed.Store(true)
					continue
				}
				out[j.idx] = rep
			}
		}()
	}
	for i, ne := range list {
		work <- job{idx: i, ne: ne}
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AllExperiments runs the full battery in DESIGN.md order,
// sequentially (fbsweep schedules RunBattery with a worker pool).
func AllExperiments(opts ExperimentOpts) ([]*Report, error) {
	return RunBattery(Battery(), opts, 1)
}

// SlowBoardTax quantifies the other half of §2.2: a broadcast bus runs
// every address cycle at the pace of its SLOWEST board ("no matter how
// new or old, fast or slow, a particular board may be"). The address
// cost is derived from the simulated Figure 1/2 handshake over the
// board timings, exactly as bus.Config.Handshake would.
func SlowBoardTax(opts ExperimentOpts) (*Report, error) {
	rep := &Report{
		ID:      "F2b",
		Title:   "the slow-board tax: address cycles complete at the slowest board's pace",
		Columns: []string{"slowestBoard(ns)", "addrCycle(ns)", "busBusy(ms)", "efficiency"},
	}
	for _, slow := range []int64{90, 200, 400} {
		hs := bus.DefaultHandshakeConfig()
		hs.Slaves = append(hs.Slaves, bus.SlaveTiming{AckDelay: 5, ProcessTime: slow})
		tr := bus.SimulateBroadcastHandshake(hs)
		cfg := Homogeneous("moesi", 4)
		cfg.Timing = bus.DefaultTiming()
		cfg.Timing.AddressCycle = tr.Complete - cfg.Timing.WiredORPenalty
		opts.apply(&cfg)
		sys, err := New(cfg)
		if err != nil {
			return nil, err
		}
		eng := Engine{Sys: sys, Gens: abWorkload(sys, 0.2, 0.3, opts.Seed)}
		m, err := eng.Run(opts.RefsPerProc)
		if err != nil {
			return nil, err
		}
		rep.AddRow(d(slow), d(tr.Complete), f2(float64(m.Bus.BusyNanos)/1e6), f(m.Efficiency()))
	}
	rep.AddNote("one slow board on the backplane raises EVERY unit's address-cycle cost — the price of guaranteed broadcast (§2.2); boards that cannot keep up belong behind a bridge (see P9)")
	return rep, nil
}
