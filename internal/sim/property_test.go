package sim

import (
	"math/rand"
	"testing"

	"futurebus/internal/workload"
)

// TestRandomSystemsStayConsistent is the property-test form of the
// compatibility claim at the concrete-simulator level: 40 randomly
// drawn systems — random board mixes (class members only), random
// cache geometries, random line sizes, random workload parameters —
// all pass the six consistency invariants after a run.
func TestRandomSystemsStayConsistent(t *testing.T) {
	// Class members plus uncached masters; the §4 adapted protocols
	// (write-once, firefly) are excluded per their verdict.
	mixable := []string{
		"moesi", "moesi-invalidate", "moesi-update", "moesi-adaptive",
		"berkeley", "dragon", "illinois", "synapse",
		"write-through", "write-through-broadcast",
		"random", "round-robin", "uncached", "uncached-broadcast",
	}
	rng := rand.New(rand.NewSource(20260704))
	for trial := 0; trial < 40; trial++ {
		nBoards := 2 + rng.Intn(5)
		boards := make([]BoardSpec, nBoards)
		cached := 0
		for i := range boards {
			boards[i] = BoardSpec{Protocol: mixable[rng.Intn(len(mixable))]}
			if boards[i].Protocol != "uncached" && boards[i].Protocol != "uncached-broadcast" {
				cached++
				if rng.Intn(4) == 0 {
					boards[i].SectorSubs = 2 << rng.Intn(2) // sector organisation, 2 or 4 subs
				}
			}
		}
		if cached == 0 {
			boards[0] = BoardSpec{Protocol: "moesi"}
		}
		lineSizes := []int{16, 32, 64}
		cfg := Config{
			LineSize:  lineSizes[rng.Intn(len(lineSizes))],
			CacheSets: 1 << (2 + rng.Intn(4)),
			CacheWays: 1 + rng.Intn(3),
			Boards:    boards,
			Shadow:    true,
			Paranoid:  true,
		}
		sys, err := New(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pShared := 0.1 + rng.Float64()*0.5
		pWrite := 0.1 + rng.Float64()*0.4
		seed := rng.Uint64()
		gens := sys.Generators(func(proc int) workload.Generator {
			return workload.MustModel(workload.Model{
				Proc:         proc,
				SharedLines:  4 + rng.Intn(40),
				PrivateLines: 8 + rng.Intn(100),
				WordsPerLine: sys.WordsPerLine(),
				PShared:      pShared,
				PWrite:       pWrite,
				Locality:     rng.Float64() * 0.7,
			}, seed)
		})
		eng := Engine{Sys: sys, Gens: gens}
		if _, err := eng.Run(800); err != nil {
			t.Fatalf("trial %d (%s, line=%d): %v", trial, sys.Describe(), cfg.LineSize, err)
		}
		if err := sys.Checker().MustPass(); err != nil {
			t.Fatalf("trial %d (%s, line=%d):\n%v", trial, sys.Describe(), cfg.LineSize, err)
		}
	}
}

// TestRandomPatternMixesConsistent: the structured patterns under
// random class-member mixes, concurrent engine, race-detector
// compatible.
func TestRandomPatternMixesConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	members := []string{"moesi", "moesi-invalidate", "berkeley", "dragon", "random"}
	for trial := 0; trial < 6; trial++ {
		boards := make([]BoardSpec, 3)
		for i := range boards {
			boards[i] = BoardSpec{Protocol: members[rng.Intn(len(members))]}
		}
		sys, err := New(Config{Boards: boards, Shadow: true})
		if err != nil {
			t.Fatal(err)
		}
		pattern := trial % 3
		gens := sys.Generators(func(proc int) workload.Generator {
			switch pattern {
			case 0:
				return workload.NewMigratory(proc, 3, 8, 8, sys.WordsPerLine(), uint64(trial))
			case 1:
				return workload.NewProducerConsumer(proc, 8, sys.WordsPerLine(), uint64(trial))
			default:
				return workload.NewPingPong(proc, 4, sys.WordsPerLine(), uint64(trial))
			}
		})
		if _, err := RunConcurrent(sys, gens, 800); err != nil {
			t.Fatalf("trial %d (%s): %v", trial, sys.Describe(), err)
		}
	}
}

// TestSoakLargeSystem: a 16-board heterogeneous machine (including
// sector boards and DMA masters) under heavy sharing for 10k refs per
// board — the long-haul invariant soak. Skipped with -short.
func TestSoakLargeSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	boards := []BoardSpec{
		{Protocol: "moesi"}, {Protocol: "moesi"}, {Protocol: "moesi-invalidate"},
		{Protocol: "moesi-update"}, {Protocol: "moesi-adaptive"},
		{Protocol: "berkeley"}, {Protocol: "berkeley"},
		{Protocol: "dragon"}, {Protocol: "dragon"},
		{Protocol: "synapse"}, {Protocol: "illinois"},
		{Protocol: "moesi", SectorSubs: 4},
		{Protocol: "write-through"}, {Protocol: "write-through-broadcast"},
		{Protocol: "random"}, {Protocol: "uncached"},
	}
	cfg := Config{Boards: boards, Shadow: true, Paranoid: true}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := Engine{Sys: sys, Gens: abGens(sys, 0.45, 0.35, 0xDECADE)}
	m, err := eng.Run(10000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Checker().MustPass(); err != nil {
		t.Fatal(err)
	}
	if sys.Shadow.Writes() < 50000 {
		t.Errorf("soak verified only %d writes", sys.Shadow.Writes())
	}
	t.Logf("soak: %s", m)
}
