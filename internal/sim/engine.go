package sim

import (
	"container/heap"
	"fmt"

	"futurebus/internal/bus"
	"futurebus/internal/obs"
	"futurebus/internal/workload"
)

// DefaultHitLatency is the assumed processor cost of one reference that
// hits in the cache (nanoseconds) — a 20 MHz-class 1986 processor with
// a one-cycle cache.
const DefaultHitLatency = 50

// Engine is the deterministic discrete-event engine: boards execute
// their reference streams in global simulated-time order, contending
// for the bus. One run with the same config, generators and seeds is
// exactly reproducible.
type Engine struct {
	Sys  *System
	Gens []workload.Generator
	// HitLatency is the per-reference processor time; 0 = default.
	HitLatency int64
}

// procEvent is one board's position on the timeline.
type procEvent struct {
	time int64
	proc int
	// rank orders simultaneous contenders for a busy shard the way the
	// shard's arbitration Discipline would: it is the discipline key of
	// the board's deferred access, 0 when no discipline is configured
	// (or the event is not a deferred bus access), so the legacy
	// time/seq order is untouched by default.
	rank int64
	seq  int64 // tie-break for determinism
}

type eventHeap []procEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].rank != h[j].rank {
		return h[i].rank < h[j].rank
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)           { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)             { *h = append(*h, x.(procEvent)) }
func (h *eventHeap) Pop() any               { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }
func (h eventHeap) top() procEvent          { return h[0] }
func (h *eventHeap) replaceTop(e procEvent) { (*h)[0] = e; heap.Fix(h, 0) }

// Run executes refsPerProc references on every board and returns the
// aggregated metrics.
func (e *Engine) Run(refsPerProc int) (Metrics, error) {
	if len(e.Gens) != len(e.Sys.Boards) {
		return Metrics{}, fmt.Errorf("sim: %d generators for %d boards", len(e.Gens), len(e.Sys.Boards))
	}
	hit := e.HitLatency
	if hit == 0 {
		hit = DefaultHitLatency
	}

	type procState struct {
		remaining int
		pending   *workload.Ref
		time      int64
		// waited accumulates simulated time this board's next bus access
		// was deferred because the bus was busy; blocker is the TxID it
		// was last deferred behind. Reported as one KindBlocked event
		// when the access finally runs — the deterministic engine's
		// equivalent of the concurrent engine's arbitration wait.
		waited  int64
		blocker uint64
		// ticket is the access's sticky arbitration ticket (drawn on its
		// first deferral, kept across re-deferrals so the discipline sees
		// one aging request); -1 = no ticket outstanding. defers counts
		// deferral rounds — Skips for the discipline key.
		ticket int64
		defers int
	}
	procs := make([]procState, len(e.Sys.Boards))
	h := make(eventHeap, 0, len(procs))
	var seq int64
	for i := range procs {
		procs[i].remaining = refsPerProc
		procs[i].ticket = -1
		h = append(h, procEvent{time: 0, proc: i, seq: seq})
		seq++
	}
	heap.Init(&h)

	// Per-shard arbitration state: a private Discipline instance per
	// shard (mirroring the concurrent engine's per-shard arbiter) and
	// its arrival-ticket counter. discs stays nil with no discipline
	// configured, keeping the legacy deferral order bit-exact.
	var discs []bus.Discipline
	var tickets []int64
	if e.Sys.disc != nil {
		discs = make([]bus.Discipline, e.Sys.Bus.Shards())
		for i := range discs {
			discs[i] = e.Sys.disc()
		}
		tickets = make([]int64, e.Sys.Bus.Shards())
	}

	// Each fabric shard has its own occupancy clock: a board only
	// waits when the home shard of its next access is busy, which is
	// how the deterministic engine models the backplane's parallelism
	// while keeping one merged virtual timeline.
	busFreeAt := make([]int64, e.Sys.Bus.Shards())
	var elapsed int64
	var refs int64

	for len(h) > 0 {
		ev := h.top()
		p := &procs[ev.proc]
		p.time = ev.time
		if p.pending == nil {
			r := e.Gens[ev.proc].Next()
			p.pending = &r
		}
		ref := *p.pending
		board := e.Sys.Boards[ev.proc]
		si := e.Sys.Bus.HomeShard(busAddr(ref.Line))

		// Bus accesses are executed in global time order: if the home
		// shard is still busy with an earlier transaction, this board
		// waits (other boards with earlier clocks run first).
		if p.time < busFreeAt[si] && board.UsesBusNext(busAddr(ref.Line), ref.Write) {
			if e.Sys.Obs != nil {
				p.waited += busFreeAt[si] - ev.time
				p.blocker = e.Sys.Bus.Shard(si).LastTxID()
			}
			if discs != nil {
				if p.ticket < 0 {
					p.ticket = tickets[si]
					tickets[si]++
					p.defers = 0
				} else {
					p.defers++
				}
				ev.rank = discs[si].Key(bus.Waiter{Board: ev.proc, Ticket: p.ticket, Skips: p.defers})
			}
			ev.time = busFreeAt[si]
			h.replaceTop(ev)
			continue
		}
		if p.waited > 0 {
			if rec := e.Sys.Obs; rec != nil {
				rec.Emit(obs.Event{
					TS:      rec.Clock(),
					Dur:     p.waited,
					Kind:    obs.KindBlocked,
					Bus:     e.Sys.Bus.SegmentID(busAddr(ref.Line)),
					Proc:    ev.proc,
					Addr:    uint64(busAddr(ref.Line)),
					CauseID: p.blocker,
				})
			}
			p.waited, p.blocker = 0, 0
		}

		before := board.Stall()
		var busyBefore int64
		if e.Sys.split {
			busyBefore = e.Sys.Bus.Shard(si).BusyNanos()
		}
		var err error
		if ref.Write {
			err = board.Write(busAddr(ref.Line), ref.Word, ref.Val)
		} else {
			_, err = board.Read(busAddr(ref.Line), ref.Word)
		}
		if err != nil {
			return Metrics{}, fmt.Errorf("sim: board %d ref %s: %w", ev.proc, ref, err)
		}
		busCost := board.Stall() - before
		p.pending = nil
		p.remaining--
		refs++
		e.Sys.noteRef()

		p.time += hit + busCost
		if busCost > 0 {
			if discs != nil {
				discs[si].Granted(ev.proc)
			}
			if e.Sys.split {
				// Split mode: the shard is occupied only for the on-bus
				// portion (address tenure, drained data tenures, NACK
				// cycles) — the occupancy-clock delta — while the board's
				// own clock also absorbs the off-bus service it stalled
				// on. Overlapped tenures fall out: the next contender may
				// start before this board's stall ends.
				if free := ev.time + (e.Sys.Bus.Shard(si).BusyNanos() - busyBefore); free > busFreeAt[si] {
					busFreeAt[si] = free
				}
			} else {
				busFreeAt[si] = p.time
			}
		}
		p.ticket, p.defers = -1, 0
		if p.time > elapsed {
			elapsed = p.time
		}

		if p.remaining > 0 {
			ev.time = p.time
			ev.rank = 0
			ev.seq = seq
			seq++
			h.replaceTop(ev)
		} else {
			heap.Pop(&h)
		}
	}

	// Retire any split-mode responses still pending so the final stats
	// account every owed data tenure.
	e.Sys.Bus.DrainPending()
	return e.metrics(refs, elapsed, hit), nil
}

func (e *Engine) metrics(refs, elapsed, hit int64) Metrics {
	return Metrics{
		System:       e.Sys.Describe(),
		Procs:        len(e.Sys.Boards),
		Refs:         refs,
		ElapsedNanos: elapsed,
		HitLatency:   hit,
		Bus:          e.Sys.Bus.Stats(),
		Memory:       e.Sys.Memory.Stats(),
		Cache:        aggregate(e.Sys.Caches, e.Sys.SectorCaches),
		Hist:         histSummaries(e.Sys.Obs),
		Perf:         perfSnapshot(e.Sys.Obs),
	}
}
