package sim

import (
	"fmt"
	"testing"

	"futurebus/internal/obs"
	"futurebus/internal/obs/watch"
)

// splitConfig is the standard split-mode test system: 4 moesi boards
// on a split-transaction fabric with round-robin arbitration.
func splitConfig(shards int) Config {
	cfg := Homogeneous("moesi", 4)
	cfg.Shadow = true
	cfg.Paranoid = true
	cfg.Shards = shards
	cfg.Tenure = "split"
	cfg.Discipline = "rr"
	return cfg
}

// TestSplitModeConsistent: split-transaction tenures preserve the full
// §3.1 invariant suite on both engines at 1, 2 and 4 shards, with the
// runtime invariant monitor watching the event stream (including the
// split pending-transaction legality invariant) and staying clean.
func TestSplitModeConsistent(t *testing.T) {
	for _, engine := range []string{"det", "conc"} {
		for _, shards := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/shards%d", engine, shards), func(t *testing.T) {
				mon := watch.New(watch.Config{})
				rec := obs.New(mon)
				cfg := splitConfig(shards)
				cfg.Obs = rec
				sys, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !sys.Split() {
					t.Fatal("system not in split mode")
				}
				gens := abGens(sys, 0.5, 0.4, 31)
				var m Metrics
				switch engine {
				case "det":
					eng := Engine{Sys: sys, Gens: gens}
					m, err = eng.Run(2000)
				case "conc":
					m, err = RunConcurrent(sys, gens, 2000)
				}
				if err != nil {
					t.Fatal(err)
				}
				if err := sys.Checker().MustPass(); err != nil {
					t.Fatal(err)
				}
				if err := rec.Close(); err != nil {
					t.Fatal(err)
				}
				if rep := mon.Report(); rep.Total != 0 {
					t.Fatalf("invariant monitor flagged a clean split-mode run: %s", rep.Summary())
				}
				if m.Bus.DataTenures == 0 {
					t.Fatal("split-mode run retired no data tenures")
				}
				if want := int64(len(sys.Boards)) * 2000; m.Refs != want {
					t.Fatalf("executed %d refs, want %d", m.Refs, want)
				}
			})
		}
	}
}

// TestSplitModeDeterministic: the deterministic engine stays bit-exact
// across same-seed runs in split mode — the pending table and the
// discipline-ranked deferral queue introduce no ordering ambiguity.
func TestSplitModeDeterministic(t *testing.T) {
	run := func() Metrics {
		sys, err := New(splitConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		eng := Engine{Sys: sys, Gens: abGens(sys, 0.4, 0.3, 23)}
		m, err := eng.Run(2000)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.Bus != b.Bus || a.Cache != b.Cache || a.ElapsedNanos != b.ElapsedNanos {
		t.Fatalf("same-seed split runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestSplitModeOverlapsTenures: with memory service off-bus, the
// deterministic engine's virtual clocks overlap address tenures with
// pending memory reads — the same workload finishes in less simulated
// time than atomic mode while moving the same data.
func TestSplitModeOverlapsTenures(t *testing.T) {
	run := func(tenure string) Metrics {
		cfg := Homogeneous("moesi", 4)
		cfg.Shadow = true
		cfg.Tenure = tenure
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Low sharing: mostly misses to private lines, the split
		// pipeline's best case.
		eng := Engine{Sys: sys, Gens: abGens(sys, 0.1, 0.3, 17)}
		m, err := eng.Run(2000)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Checker().MustPass(); err != nil {
			t.Fatal(err)
		}
		return m
	}
	atomic, split := run("atomic"), run("split")
	if split.ElapsedNanos >= atomic.ElapsedNanos {
		t.Fatalf("split mode did not pipeline: elapsed %d ns (split) vs %d ns (atomic)",
			split.ElapsedNanos, atomic.ElapsedNanos)
	}
	// The interleaving (and so the exact hit/miss pattern) shifts with
	// the timing model, but the traffic volume must stay essentially
	// the same workload.
	diff := split.Bus.BytesTransferred - atomic.Bus.BytesTransferred
	if diff < 0 {
		diff = -diff
	}
	if diff*20 > atomic.Bus.BytesTransferred {
		t.Fatalf("split mode moved %d bytes, atomic %d — more than 5%% apart",
			split.Bus.BytesTransferred, atomic.Bus.BytesTransferred)
	}
}

// TestSplitModeNacksUnderTinyTable: a pending table of 1 under a
// miss-heavy multi-board load must overflow, and every overflow is a
// NACK that charges a retry cycle yet still completes the transaction.
func TestSplitModeNacksUnderTinyTable(t *testing.T) {
	cfg := Homogeneous("moesi", 4)
	cfg.Shadow = true
	cfg.Tenure = "split"
	cfg.PendingTable = 1
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := Engine{Sys: sys, Gens: abGens(sys, 0.1, 0.3, 41)}
	m, err := eng.Run(1500)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Checker().MustPass(); err != nil {
		t.Fatal(err)
	}
	if m.Bus.Nacks == 0 {
		t.Fatal("a 1-entry pending table under 4-board miss traffic produced no NACKs")
	}
}

// TestSplitRejectsBadConfig: unknown tenure and discipline names fail
// assembly rather than silently running atomic/FCFS.
func TestSplitRejectsBadConfig(t *testing.T) {
	cfg := Homogeneous("moesi", 2)
	cfg.Tenure = "pipelined"
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown tenure mode accepted")
	}
	cfg = Homogeneous("moesi", 2)
	cfg.Discipline = "lottery"
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown discipline accepted")
	}
}
