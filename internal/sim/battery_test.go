package sim

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestRunBatteryOrderAndBound: the worker pool returns reports in
// battery order regardless of completion order, and never has more
// than jobs experiments in flight.
func TestRunBatteryOrderAndBound(t *testing.T) {
	const n, jobs = 12, 3
	var inFlight, peak atomic.Int64
	list := make([]NamedExperiment, n)
	for i := range list {
		id := fmt.Sprintf("X%d", i)
		list[i] = NamedExperiment{ID: id, Run: func(ExperimentOpts) (*Report, error) {
			cur := inFlight.Add(1)
			defer inFlight.Add(-1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			return &Report{ID: id}, nil
		}}
	}
	reports, err := RunBattery(list, ExperimentOpts{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != n {
		t.Fatalf("got %d reports, want %d", len(reports), n)
	}
	for i, rep := range reports {
		if want := fmt.Sprintf("X%d", i); rep.ID != want {
			t.Errorf("report %d is %q, want %q — pool broke battery order", i, rep.ID, want)
		}
	}
	if p := peak.Load(); p > jobs {
		t.Errorf("pool had %d experiments in flight, bound is %d", p, jobs)
	}
}

// TestRunBatteryError: a failing experiment fails the whole battery
// with its ID attached, and the error surfaces at any worker count.
func TestRunBatteryError(t *testing.T) {
	boom := errors.New("boom")
	list := []NamedExperiment{
		{ID: "OK1", Run: func(ExperimentOpts) (*Report, error) { return &Report{ID: "OK1"}, nil }},
		{ID: "BAD", Run: func(ExperimentOpts) (*Report, error) { return nil, boom }},
		{ID: "OK2", Run: func(ExperimentOpts) (*Report, error) { return &Report{ID: "OK2"}, nil }},
	}
	for _, jobs := range []int{1, 4} {
		_, err := RunBattery(list, ExperimentOpts{}, jobs)
		if !errors.Is(err, boom) {
			t.Fatalf("jobs=%d: got %v, want wrapped boom", jobs, err)
		}
	}
}

// TestBatteryMatchesAllExperiments: AllExperiments is the sequential
// battery — same IDs, same order.
func TestBatteryMatchesAllExperiments(t *testing.T) {
	ids := []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9", "P10", "P11", "F1/F2", "F2B"}
	battery := Battery()
	if len(battery) != len(ids) {
		t.Fatalf("battery has %d experiments, want %d", len(battery), len(ids))
	}
	for i, ne := range battery {
		if ne.ID != ids[i] {
			t.Errorf("battery[%d] = %q, want %q", i, ne.ID, ids[i])
		}
	}
}
