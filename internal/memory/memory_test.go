package memory

import (
	"bytes"
	"testing"
	"testing/quick"

	"futurebus/internal/bus"
)

// TestPowerOnDefault: unwritten lines read as zero — "in the absence of
// information to the contrary, data in shared memory is defined to be
// valid (e.g. at power-on)" (§3.1.1).
func TestPowerOnDefault(t *testing.T) {
	m := New(32)
	line := m.ReadLine(0x123)
	if len(line) != 32 || !bytes.Equal(line, make([]byte, 32)) {
		t.Errorf("power-on line = %x", line)
	}
}

// TestWriteReadPeek: writes persist; Peek does not count as a read.
func TestWriteReadPeek(t *testing.T) {
	m := New(16)
	data := bytes.Repeat([]byte{0xAB}, 16)
	m.WriteLine(7, data)
	if got := m.ReadLine(7); !bytes.Equal(got, data) {
		t.Errorf("read back %x", got)
	}
	if got := m.Peek(7); !bytes.Equal(got, data) {
		t.Errorf("peek %x", got)
	}
	st := m.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Errorf("stats %+v (Peek must not count)", st)
	}
	if m.PopulatedLines() != 1 {
		t.Errorf("populated = %d", m.PopulatedLines())
	}
}

// TestReturnedSlicesAreCopies: callers cannot alias memory's storage.
func TestReturnedSlicesAreCopies(t *testing.T) {
	m := New(8)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	m.WriteLine(1, data)
	got := m.ReadLine(1)
	got[0] = 0xFF
	data[1] = 0xEE
	if fresh := m.ReadLine(1); fresh[0] == 0xFF || fresh[1] == 0xEE {
		t.Errorf("memory aliased caller slices: %x", fresh)
	}
}

// TestWriteSizePanics: the §5.1 standard line size is enforced.
func TestWriteSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("short write accepted")
		}
	}()
	New(32).WriteLine(0, make([]byte, 16))
}

// TestBadLineSizePanics: a memory module needs a positive line size.
func TestBadLineSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero line size accepted")
		}
	}()
	New(0)
}

// TestLastWriteWinsProperty: memory is a map of lines — the last write
// to an address is what any later read returns.
func TestLastWriteWinsProperty(t *testing.T) {
	f := func(writes []uint16) bool {
		m := New(8)
		last := map[bus.Addr][]byte{}
		for i, w := range writes {
			addr := bus.Addr(w % 16)
			line := bytes.Repeat([]byte{byte(i)}, 8)
			m.WriteLine(addr, line)
			last[addr] = line
		}
		for addr, want := range last {
			if !bytes.Equal(m.ReadLine(addr), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
