// Package memory implements the shared main-memory module of a
// Futurebus system. Memory is the default owner of every line of the
// address space (§3.1.3 of the paper), but it keeps no consistency
// state: "shared memory modules will not need to distinguish valid data
// from invalid data; instead, caches associated with each master will
// keep track of the invalidity of the data that resides in shared
// memory" (§3.1.1). Memory is preempted by an intervening owner (DI)
// and connects (SL) on broadcast writes and write-backs; the bus routes
// those cases, so the module itself is a plain line store.
package memory

import (
	"fmt"
	"sync"

	"futurebus/internal/bus"
	"futurebus/internal/obs"
)

// Memory is a sparse main-memory module. Lines never written read as
// zero — "in the absence of information to the contrary, data in shared
// memory is defined to be valid (e.g. at power-on)" (§3.1.1).
type Memory struct {
	lineSize int
	rec      *obs.Recorder

	mu    sync.Mutex
	lines map[bus.Addr][]byte
	stats Stats
}

// Stats counts memory-port traffic.
type Stats struct {
	// Reads counts lines supplied to the bus.
	Reads int64
	// Writes counts lines accepted from the bus (broadcast writes,
	// write-backs, and uncached writes not captured by an owner).
	Writes int64
}

// New creates a memory module for the given line size.
func New(lineSize int) *Memory {
	if lineSize <= 0 {
		panic(fmt.Sprintf("memory: invalid line size %d", lineSize))
	}
	return &Memory{lineSize: lineSize, lines: make(map[bus.Addr][]byte)}
}

// LineSize returns the module's line size in bytes.
func (m *Memory) LineSize() int { return m.lineSize }

// SetObs attaches an observability recorder: every line supplied to or
// accepted from a bus is emitted as a memread/memwrite event. Set it
// at configuration time, before traffic starts.
func (m *Memory) SetObs(rec *obs.Recorder) { m.rec = rec }

// ReadLine implements bus.MemoryPort.
func (m *Memory) ReadLine(addr bus.Addr) []byte {
	if rec := m.rec; rec != nil {
		rec.Emit(obs.Event{TS: rec.Clock(), Kind: obs.KindMemRead, Bus: -1, Proc: -1, Addr: uint64(addr), Bytes: m.lineSize})
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Reads++
	if line, ok := m.lines[addr]; ok {
		return append([]byte(nil), line...)
	}
	return make([]byte, m.lineSize)
}

// WriteLine implements bus.MemoryPort.
func (m *Memory) WriteLine(addr bus.Addr, data []byte) {
	if len(data) != m.lineSize {
		panic(fmt.Sprintf("memory: write of %d bytes, line size %d", len(data), m.lineSize))
	}
	if rec := m.rec; rec != nil {
		rec.Emit(obs.Event{TS: rec.Clock(), Kind: obs.KindMemWrite, Bus: -1, Proc: -1, Addr: uint64(addr), Bytes: m.lineSize})
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Writes++
	m.lines[addr] = append([]byte(nil), data...)
}

// Peek returns memory's current copy of a line without counting a read
// (used by the consistency checker).
func (m *Memory) Peek(addr bus.Addr) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	if line, ok := m.lines[addr]; ok {
		return append([]byte(nil), line...)
	}
	return make([]byte, m.lineSize)
}

// Stats returns a snapshot of the counters.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// PopulatedLines returns the number of lines ever written.
func (m *Memory) PopulatedLines() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.lines)
}
