package memory

import (
	"fmt"

	"futurebus/internal/bus"
	"futurebus/internal/obs"
)

// Add accumulates other into s (per-shard merge).
func (s *Stats) Add(other Stats) {
	s.Reads += other.Reads
	s.Writes += other.Writes
}

// Sharded is main memory split into independent modules, one per
// fabric shard. Each module attaches to its own bus shard as a plain
// MemoryPort; the wrapper routes whole-address-space operations (Peek,
// Stats) with the same home-shard rule the fabric uses:
// shard(addr) = (addr / granularity) mod shards.
//
// A one-shard Sharded is just a Memory with a routing veneer, so the
// sim layer always builds one and stays shape-agnostic.
type Sharded struct {
	mods []*Memory
	gran uint64
}

// NewSharded creates shards modules of the given line size with the
// given interleave granularity in lines (0 means 1).
func NewSharded(lineSize, shards, granularity int) *Sharded {
	if shards < 1 {
		panic(fmt.Sprintf("memory: invalid shard count %d", shards))
	}
	if granularity <= 0 {
		granularity = 1
	}
	s := &Sharded{gran: uint64(granularity)}
	for i := 0; i < shards; i++ {
		s.mods = append(s.mods, New(lineSize))
	}
	return s
}

// Shards returns the number of modules.
func (s *Sharded) Shards() int { return len(s.mods) }

// Shard returns module i.
func (s *Sharded) Shard(i int) *Memory { return s.mods[i] }

// Ports returns the modules as bus memory ports, in shard order, ready
// to hand to bus.NewInterleaved.
func (s *Sharded) Ports() []bus.MemoryPort {
	ports := make([]bus.MemoryPort, len(s.mods))
	for i, m := range s.mods {
		ports[i] = m
	}
	return ports
}

// home returns the module owning addr.
func (s *Sharded) home(addr bus.Addr) *Memory {
	return s.mods[(uint64(addr)/s.gran)%uint64(len(s.mods))]
}

// LineSize returns the line size in bytes.
func (s *Sharded) LineSize() int { return s.mods[0].LineSize() }

// SetObs attaches a recorder to every module. Configuration time only.
func (s *Sharded) SetObs(rec *obs.Recorder) {
	for _, m := range s.mods {
		m.SetObs(rec)
	}
}

// Peek returns memory's current copy of a line without counting a read
// (used by the consistency checker).
func (s *Sharded) Peek(addr bus.Addr) []byte { return s.home(addr).Peek(addr) }

// WriteLine stores a line directly in the owning module (test and
// golden-image setup; bus traffic goes through the per-shard ports).
func (s *Sharded) WriteLine(addr bus.Addr, data []byte) { s.home(addr).WriteLine(addr, data) }

// Stats returns the counters summed over all modules.
func (s *Sharded) Stats() Stats {
	var total Stats
	for _, m := range s.mods {
		total.Add(m.Stats())
	}
	return total
}

// PopulatedLines returns the number of lines ever written, over all
// modules.
func (s *Sharded) PopulatedLines() int {
	n := 0
	for _, m := range s.mods {
		n += m.PopulatedLines()
	}
	return n
}
