package core

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a complete protocol transition table in the format of the
// paper's Tables 1–7: for each (state, local event) and (state, bus
// event) cell, the list of permitted alternatives in preference order
// (the first alternative is the preferred action, §3.3). A nil cell is
// the tables' "—": not a legal case for that protocol.
type Table struct {
	// Name identifies the protocol (e.g. "MOESI", "Berkeley").
	Name string
	// States lists the rows the protocol defines, in display order.
	States []State
	// LocalEvents and BusEvents list the columns the table defines.
	// Partial tables (the paper defines Berkeley only over columns
	// 1, 2, 5 and 6) omit the others.
	LocalEvents []LocalEvent
	BusEvents   []BusEvent

	local [numStates][numLocalEvents][]LocalAction
	snoop [numStates][numBusEvents][]SnoopAction
}

// NewTable returns an empty table covering the given rows and columns.
func NewTable(name string, states []State, locals []LocalEvent, buses []BusEvent) *Table {
	return &Table{
		Name:        name,
		States:      append([]State(nil), states...),
		LocalEvents: append([]LocalEvent(nil), locals...),
		BusEvents:   append([]BusEvent(nil), buses...),
	}
}

// FullMOESITable returns an empty table with all five states, all four
// local events and all six bus-event columns.
func FullMOESITable(name string) *Table {
	return NewTable(name, States[:], LocalEvents[:], BusEvents[:])
}

// SetLocal defines the alternatives for a local-event cell.
func (t *Table) SetLocal(s State, e LocalEvent, alts ...LocalAction) {
	t.local[s][e] = alts
}

// SetSnoop defines the alternatives for a bus-event cell.
func (t *Table) SetSnoop(s State, e BusEvent, alts ...SnoopAction) {
	t.snoop[s][e] = alts
}

// Local returns the alternatives for a local-event cell (nil = "—").
func (t *Table) Local(s State, e LocalEvent) []LocalAction { return t.local[s][e] }

// Snoop returns the alternatives for a bus-event cell (nil = "—").
func (t *Table) Snoop(s State, e BusEvent) []SnoopAction { return t.snoop[s][e] }

// PreferredLocal returns the first (preferred) alternative of a cell.
func (t *Table) PreferredLocal(s State, e LocalEvent) (LocalAction, bool) {
	alts := t.local[s][e]
	if len(alts) == 0 {
		return LocalAction{}, false
	}
	return alts[0], true
}

// PreferredSnoop returns the first (preferred) alternative of a cell.
func (t *Table) PreferredSnoop(s State, e BusEvent) (SnoopAction, bool) {
	alts := t.snoop[s][e]
	if len(alts) == 0 {
		return SnoopAction{}, false
	}
	return alts[0], true
}

// LocalCell renders a local cell in canonical syntax ("-" for nil).
func (t *Table) LocalCell(s State, e LocalEvent) string {
	return renderLocalCell(t.local[s][e])
}

// SnoopCell renders a bus-event cell in canonical syntax ("-" for nil).
func (t *Table) SnoopCell(s State, e BusEvent) string {
	return renderSnoopCell(t.snoop[s][e])
}

func renderLocalCell(alts []LocalAction) string {
	if len(alts) == 0 {
		return "-"
	}
	parts := make([]string, len(alts))
	for i, a := range alts {
		parts[i] = a.String()
	}
	return strings.Join(parts, " or ")
}

func renderSnoopCell(alts []SnoopAction) string {
	if len(alts) == 0 {
		return "-"
	}
	parts := make([]string, len(alts))
	for i, a := range alts {
		parts[i] = a.String()
	}
	return strings.Join(parts, " or ")
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := NewTable(t.Name, t.States, t.LocalEvents, t.BusEvents)
	for s := range t.local {
		for e := range t.local[s] {
			c.local[s][e] = append([]LocalAction(nil), t.local[s][e]...)
		}
	}
	for s := range t.snoop {
		for e := range t.snoop[s] {
			c.snoop[s][e] = append([]SnoopAction(nil), t.snoop[s][e]...)
		}
	}
	return c
}

// UsesBS reports whether any snoop cell aborts a transaction (asserts
// BS). Protocols that do cannot be implemented on the base Futurebus
// facilities without the busy line (§3.2.2, §4.3–4.5).
func (t *Table) UsesBS() bool {
	for _, s := range t.States {
		for _, e := range t.BusEvents {
			for _, a := range t.snoop[s][e] {
				if a.Abort != nil {
					return true
				}
			}
		}
	}
	return false
}

// CellDiff describes one mismatching cell between two tables.
type CellDiff struct {
	State State
	// Local is non-nil for a local-event cell, Bus for a bus-event cell.
	Local *LocalEvent
	Bus   *BusEvent
	Got   string
	Want  string
}

func (d CellDiff) String() string {
	var col string
	if d.Local != nil {
		col = d.Local.String()
	} else {
		col = fmt.Sprintf("col %d (%s)", d.Bus.Column(), d.Bus)
	}
	return fmt.Sprintf("state %s, %s: got %q, want %q", d.State.Letter(), col, d.Got, d.Want)
}

// Diff compares the cells of t against want over want's rows and
// columns, returning a description of every mismatch. Cells compare by
// canonical rendering, so alternative order matters (it encodes the
// preference order of §3.3).
func (t *Table) Diff(want *Table) []CellDiff {
	var diffs []CellDiff
	for _, s := range want.States {
		for _, e := range want.LocalEvents {
			got, wantCell := t.LocalCell(s, e), want.LocalCell(s, e)
			if got != wantCell {
				e := e
				diffs = append(diffs, CellDiff{State: s, Local: &e, Got: got, Want: wantCell})
			}
		}
		for _, e := range want.BusEvents {
			got, wantCell := t.SnoopCell(s, e), want.SnoopCell(s, e)
			if got != wantCell {
				e := e
				diffs = append(diffs, CellDiff{State: s, Bus: &e, Got: got, Want: wantCell})
			}
		}
	}
	return diffs
}

// Render formats the table as aligned ASCII in the paper's layout:
// one row per state, local-event columns first, then bus-event columns.
func (t *Table) Render() string {
	headers := []string{"State"}
	for _, e := range t.LocalEvents {
		headers = append(headers, fmt.Sprintf("%s(%d)", e, e.Note()))
	}
	for _, e := range t.BusEvents {
		headers = append(headers, fmt.Sprintf("%s(%d)", e, e.Column()))
	}
	rows := [][]string{headers}
	for _, s := range t.States {
		row := []string{s.Letter()}
		for _, e := range t.LocalEvents {
			row = append(row, t.LocalCell(s, e))
		}
		for _, e := range t.BusEvents {
			row = append(row, t.SnoopCell(s, e))
		}
		rows = append(rows, row)
	}
	return renderGrid(t.Name, rows)
}

func renderGrid(title string, rows [][]string) string {
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for ri, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			total := 0
			for _, w := range widths {
				total += w + 3
			}
			b.WriteString(strings.Repeat("-", total-3))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// ReachableStates returns the set of states reachable from Invalid under
// the table's own transitions (local results plus snoop results),
// considering every alternative. Useful for sanity-checking that partial
// protocols never enter rows they do not define.
func (t *Table) ReachableStates() []State {
	seen := map[State]bool{Invalid: true}
	changed := true
	for changed {
		changed = false
		for _, s := range States {
			if !seen[s] {
				continue
			}
			mark := func(c CondState) {
				for _, n := range []State{c.OnCH, c.NoCH} {
					if !seen[n] {
						seen[n] = true
						changed = true
					}
				}
			}
			for _, e := range t.LocalEvents {
				for _, a := range t.local[s][e] {
					if a.Op != BusReadThenWrite {
						mark(a.Next)
					}
				}
			}
			for _, e := range t.BusEvents {
				for _, a := range t.snoop[s][e] {
					if a.Abort != nil {
						mark(Uncond(a.Abort.Next))
					} else {
						mark(a.Next)
					}
				}
			}
		}
	}
	var out []State
	for s, ok := range seen {
		if ok {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
