// Package core implements the primary contribution of Sweazey & Smith
// (ISCA 1986): the MOESI model of cache-line states and the class of
// compatible cache consistency protocols supported by the IEEE Futurebus.
//
// The package defines:
//
//   - the five MOESI states and the three attributes that generate them
//     (validity, exclusiveness, ownership — Figure 3 of the paper);
//   - the consistency signal lines a bus master and the responding units
//     assert (CA, IM, BC and CH, DI, SL, BS — §3.2);
//   - local events (read, write, pass, flush) and the six bus-event
//     columns of Table 2, classified from the (CA, IM, BC) triple;
//   - actions: the result state (possibly conditional on the CH response),
//     the signals asserted, and the bus operation issued;
//   - the protocol class itself: for every (state, event) pair, the full
//     set of actions any compatible board may choose (Tables 1 and 2,
//     including the write-through and non-caching rows and the
//     relaxations of notes 9–12);
//   - a validator that decides whether a concrete protocol table is a
//     member of the class, and whether it needs the BS (busy) extension.
//
// Everything else in this repository — the Futurebus substrate, caches,
// concrete protocols, the simulator — is built on the vocabulary defined
// here.
package core
