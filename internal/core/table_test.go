package core

import (
	"strings"
	"testing"
)

// TestTableCellsAndPreference exercises Set/Get/Preferred.
func TestTableCellsAndPreference(t *testing.T) {
	tbl := FullMOESITable("t")
	alts, _ := ParseLocalCell("CH:O/M,CA,IM,BC,W or M,CA,IM")
	tbl.SetLocal(Shared, LocalWrite, alts...)
	if got := tbl.LocalCell(Shared, LocalWrite); got != "CH:O/M,CA,IM,BC,W or M,CA,IM" {
		t.Errorf("cell renders %q", got)
	}
	pref, ok := tbl.PreferredLocal(Shared, LocalWrite)
	if !ok || pref.String() != "CH:O/M,CA,IM,BC,W" {
		t.Errorf("preferred = %v, %t", pref, ok)
	}
	if _, ok := tbl.PreferredLocal(Exclusive, Pass); ok {
		t.Error("empty cell returned a preferred action")
	}
	if got := tbl.LocalCell(Exclusive, Pass); got != "-" {
		t.Errorf("empty cell renders %q", got)
	}
}

// TestTableDiff: identical tables diff empty; a changed cell is
// located.
func TestTableDiff(t *testing.T) {
	a := PaperTable3()
	if diffs := a.Diff(PaperTable3()); len(diffs) != 0 {
		t.Fatalf("self-diff: %v", diffs)
	}
	b := PaperTable3()
	b.SetSnoop(Modified, BusCacheRead, mustSnoop("I,DI"))
	diffs := a.Diff(b)
	if len(diffs) != 1 {
		t.Fatalf("got %d diffs", len(diffs))
	}
	if diffs[0].State != Modified || diffs[0].Bus == nil {
		t.Errorf("diff location wrong: %+v", diffs[0])
	}
	if !strings.Contains(diffs[0].String(), "col 5") {
		t.Errorf("diff description: %s", diffs[0])
	}
}

// TestTableClone: mutating a clone leaves the original alone.
func TestTableClone(t *testing.T) {
	a := PaperTable4()
	b := a.Clone()
	b.SetLocal(Shared, LocalWrite, mustLocal("M,CA,IM"))
	if a.LocalCell(Shared, LocalWrite) == b.LocalCell(Shared, LocalWrite) {
		t.Error("clone shares cell storage with original")
	}
}

// TestUsesBS distinguishes the adapted protocols.
func TestUsesBS(t *testing.T) {
	for _, c := range []struct {
		table *Table
		want  bool
	}{
		{PaperTable3(), false},
		{PaperTable4(), false},
		{PaperTable5(), true},
		{PaperTable6(), true},
		{PaperTable7(), true},
	} {
		if got := c.table.UsesBS(); got != c.want {
			t.Errorf("%s UsesBS = %t", c.table.Name, got)
		}
	}
}

// TestReachableStates: Berkeley never reaches E; Write-Once never
// reaches O; the MOESI paper tables reach everything.
func TestReachableStates(t *testing.T) {
	reach := func(tbl *Table) map[State]bool {
		m := map[State]bool{}
		for _, s := range tbl.ReachableStates() {
			m[s] = true
		}
		return m
	}
	if r := reach(PaperTable3()); r[Exclusive] {
		t.Error("Berkeley reaches E")
	}
	if r := reach(PaperTable5()); r[Owned] {
		t.Error("Write-Once reaches O")
	}
	if r := reach(PaperTable6()); r[Owned] {
		t.Error("Illinois reaches O")
	}
	for _, tbl := range []*Table{PaperTable3(), PaperTable4(), PaperTable5(), PaperTable6(), PaperTable7()} {
		allowed := map[State]bool{Invalid: true}
		for _, s := range tbl.States {
			allowed[s] = true
		}
		for _, s := range tbl.ReachableStates() {
			if !allowed[s] {
				t.Errorf("%s reaches %s, outside its own state set", tbl.Name, s)
			}
		}
	}
}

// TestTableRender: the rendering carries the name, every row letter,
// and a signature cell.
func TestTableRender(t *testing.T) {
	out := PaperTable6().Render()
	for _, want := range []string{"Illinois", "BS;S,CA,W", "CH:S/E,CA,R"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering lacks %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title, header, separator, four state rows.
	if len(lines) != 7 {
		t.Errorf("got %d lines, want 7:\n%s", len(lines), out)
	}
}

// TestTableFromCellsRejectsJunk: malformed specs panic (they are
// compile-time constants).
func TestTableFromCellsRejectsJunk(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("malformed cell did not panic")
		}
	}()
	TableFromCells("bad", []State{Modified}, []LocalEvent{LocalRead}, nil,
		[][]string{{"M,XYZZY"}}, [][]string{{}})
}

// TestAllTablesRoundTripThroughCells: every paper table survives
// render→parse→render on every cell — the canonical syntax is a
// faithful serialisation of the table structures.
func TestAllTablesRoundTripThroughCells(t *testing.T) {
	tables := []*Table{
		PaperTable2(), PaperTable3(), PaperTable4(),
		PaperTable5(), PaperTable6(), PaperTable7(),
	}
	for _, tbl := range tables {
		for _, s := range tbl.States {
			for _, e := range tbl.LocalEvents {
				cell := tbl.LocalCell(s, e)
				alts, err := ParseLocalCell(cell)
				if err != nil {
					t.Fatalf("%s (%s,%s): %v", tbl.Name, s.Letter(), e, err)
				}
				if got := renderLocalCell(alts); got != cell {
					t.Errorf("%s (%s,%s): %q -> %q", tbl.Name, s.Letter(), e, cell, got)
				}
			}
			for _, e := range tbl.BusEvents {
				cell := tbl.SnoopCell(s, e)
				alts, err := ParseSnoopCell(cell)
				if err != nil {
					t.Fatalf("%s (%s,col %d): %v", tbl.Name, s.Letter(), e.Column(), err)
				}
				if got := renderSnoopCell(alts); got != cell {
					t.Errorf("%s (%s,col %d): %q -> %q", tbl.Name, s.Letter(), e.Column(), cell, got)
				}
			}
		}
	}
}

// TestVariantMarkers pins the Table 1 footnote markers.
func TestVariantMarkers(t *testing.T) {
	cases := map[Variant]string{
		CopyBack:                  "",
		WriteThrough:              "*",
		NonCaching:                "**",
		WriteThrough | NonCaching: "*,**",
		AnyVariant:                "",
	}
	for v, want := range cases {
		if got := v.Marker(); got != want {
			t.Errorf("%v.Marker() = %q, want %q", v, got, want)
		}
	}
	if CopyBack.String() != "copy-back" || AnyVariant.String() != "any" {
		t.Errorf("variant strings: %q %q", CopyBack.String(), AnyVariant.String())
	}
}
