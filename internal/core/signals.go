package core

import "strings"

// Signal is a bitset over the Futurebus consistency signal lines of §3.2.
// The first three (CA, IM, BC) are asserted by the master of a
// transaction to declare its intentions; the last four (CH, DI, SL, BS)
// are wired-OR response lines asserted by other units on the bus.
type Signal uint8

const (
	// SigCA — cache master. "I am a copy-back cache and at the end of
	// this transaction I will retain a copy of the referenced data, or
	// I am a write-through cache and have just read this data."
	SigCA Signal = 1 << iota
	// SigIM — intent to modify. "In this transaction I will modify the
	// referenced data."
	SigIM
	// SigBC — broadcast. "If I do modify the data, I will place the
	// modifications on the bus so that you and/or the memory can update
	// yourselves." IM without BC means holders must discard their copies.
	SigBC
	// SigCH — cache hit. Response: "I have a copy of the referenced
	// data, which I will retain at the end of this transaction."
	SigCH
	// SigDI — data intervention. Response asserted by the owner of the
	// line; it preempts main memory (supplies data on a read, captures
	// the data on a write).
	SigDI
	// SigSL — select. Response asserted by a slave cache connecting on
	// a broadcast transfer to update its own copy; memory also asserts
	// SL when it participates in a transaction.
	SigSL
	// SigBS — busy. Aborts the transaction so that memory can be
	// updated before it resumes. Needed only by adapted protocols
	// (Write-Once, Illinois, Firefly); Futurebus has no mechanism to
	// update memory during a cache-to-cache transfer.
	SigBS
)

// MasterSignals masks the signals a transaction master may assert.
const MasterSignals = SigCA | SigIM | SigBC

// ResponseSignals masks the wired-OR response lines.
const ResponseSignals = SigCH | SigDI | SigSL | SigBS

// Has reports whether every signal in q is asserted in s.
func (s Signal) Has(q Signal) bool { return s&q == q }

// signalNames is ordered to match the cell syntax of the paper's tables
// (CA, IM, BC first, then responses).
var signalNames = []struct {
	sig  Signal
	name string
}{
	{SigCA, "CA"},
	{SigIM, "IM"},
	{SigBC, "BC"},
	{SigCH, "CH"},
	{SigDI, "DI"},
	{SigSL, "SL"},
	{SigBS, "BS"},
}

// String renders the set in the paper's comma-separated table syntax,
// e.g. "CA,IM,BC". The empty set renders as "".
func (s Signal) String() string {
	var parts []string
	for _, n := range signalNames {
		if s.Has(n.sig) {
			parts = append(parts, n.name)
		}
	}
	return strings.Join(parts, ",")
}

// ParseSignal parses one signal name as used in the paper's tables.
func ParseSignal(name string) (Signal, bool) {
	for _, n := range signalNames {
		if n.name == name {
			return n.sig, true
		}
	}
	return 0, false
}
