package core

import (
	"fmt"
	"strings"
)

// ParseCondState parses "M", "S", … or the conditional "CH:O/M" form.
func ParseCondState(s string) (CondState, error) {
	if rest, ok := strings.CutPrefix(s, "CH:"); ok {
		on, no, ok := strings.Cut(rest, "/")
		if !ok {
			return CondState{}, fmt.Errorf("core: malformed conditional state %q", s)
		}
		onState, err := ParseState(on)
		if err != nil {
			return CondState{}, err
		}
		noState, err := ParseState(no)
		if err != nil {
			return CondState{}, err
		}
		return CondCH(onState, noState), nil
	}
	st, err := ParseState(s)
	if err != nil {
		return CondState{}, err
	}
	return Uncond(st), nil
}

// ParseLocalAction parses one alternative of a Table 1 cell in canonical
// syntax, e.g. "CH:O/M,CA,IM,BC,W", "M,CA,IM", "E,CA,BC?,W",
// "Read>Write".
func ParseLocalAction(cell string) (LocalAction, error) {
	cell = strings.TrimSpace(cell)
	if cell == "Read>Write" {
		return LocalAction{Op: BusReadThenWrite}, nil
	}
	parts := strings.Split(cell, ",")
	next, err := ParseCondState(strings.TrimSpace(parts[0]))
	if err != nil {
		return LocalAction{}, fmt.Errorf("core: local action %q: %w", cell, err)
	}
	a := LocalAction{Next: next}
	for _, p := range parts[1:] {
		switch strings.TrimSpace(p) {
		case "CA":
			a.Assert |= SigCA
		case "IM":
			a.Assert |= SigIM
		case "BC":
			a.Assert |= SigBC
		case "BC?":
			a.BCOptional = true
		case "R":
			a.Op = BusRead
		case "W":
			a.Op = BusWrite
		case "addr":
			a.Op = BusAddrOnly
		default:
			return LocalAction{}, fmt.Errorf("core: local action %q: unknown token %q", cell, p)
		}
	}
	// An asserted IM with no data phase is the paper's address-only
	// invalidate (a column 6 transaction without R or W).
	if a.Op == BusNone && a.Assert&SigIM != 0 {
		a.Op = BusAddrOnly
	}
	return a, nil
}

// ParseSnoopAction parses one alternative of a Table 2 cell in canonical
// syntax, e.g. "O,CH,DI", "M,CH?,DI", "S,SL,CH" (order of response
// tokens is accepted loosely), or the abort form "BS;S,CA,W".
func ParseSnoopAction(cell string) (SnoopAction, error) {
	cell = strings.TrimSpace(cell)
	if rest, ok := strings.CutPrefix(cell, "BS;"); ok {
		parts := strings.Split(rest, ",")
		next, err := ParseState(strings.TrimSpace(parts[0]))
		if err != nil {
			return SnoopAction{}, fmt.Errorf("core: snoop abort %q: %w", cell, err)
		}
		rec := Recovery{Next: next}
		for _, p := range parts[1:] {
			switch strings.TrimSpace(p) {
			case "CA":
				rec.Assert |= SigCA
			case "IM":
				rec.Assert |= SigIM
			case "BC":
				rec.Assert |= SigBC
			case "W":
				// the push is always a write; accepted for symmetry
			default:
				return SnoopAction{}, fmt.Errorf("core: snoop abort %q: unknown token %q", cell, p)
			}
		}
		return SnoopAction{Abort: &rec}, nil
	}
	parts := strings.Split(cell, ",")
	next, err := ParseCondState(strings.TrimSpace(parts[0]))
	if err != nil {
		return SnoopAction{}, fmt.Errorf("core: snoop action %q: %w", cell, err)
	}
	a := SnoopAction{Next: next}
	for _, p := range parts[1:] {
		switch strings.TrimSpace(p) {
		case "CH":
			a.AssertCH = true
		case "CH?":
			a.CHDontCare = true
		case "DI":
			a.AssertDI = true
		case "SL":
			a.AssertSL = true
		default:
			return SnoopAction{}, fmt.Errorf("core: snoop action %q: unknown token %q", cell, p)
		}
	}
	return a, nil
}

// ParseLocalCell parses a full Table 1 cell: alternatives separated by
// " or ", or "-" for an illegal/undefined case (returns nil).
func ParseLocalCell(cell string) ([]LocalAction, error) {
	cell = strings.TrimSpace(cell)
	if cell == "-" || cell == "—" || cell == "" {
		return nil, nil
	}
	var out []LocalAction
	for _, alt := range strings.Split(cell, " or ") {
		a, err := ParseLocalAction(alt)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// ParseSnoopCell parses a full Table 2 cell, "-" meaning an illegal or
// unreachable case.
func ParseSnoopCell(cell string) ([]SnoopAction, error) {
	cell = strings.TrimSpace(cell)
	if cell == "-" || cell == "—" || cell == "" {
		return nil, nil
	}
	var out []SnoopAction
	for _, alt := range strings.Split(cell, " or ") {
		a, err := ParseSnoopAction(alt)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
