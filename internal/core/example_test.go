package core_test

import (
	"fmt"

	"futurebus/internal/core"
)

// ExampleStateFromAttributes shows the Figure 3 taxonomy: three
// attributes generate the five MOESI states.
func ExampleStateFromAttributes() {
	fmt.Println(core.StateFromAttributes(true, true, true))   // valid, exclusive, owned
	fmt.Println(core.StateFromAttributes(true, false, true))  // valid, shared, owned
	fmt.Println(core.StateFromAttributes(true, true, false))  // valid, exclusive, unowned
	fmt.Println(core.StateFromAttributes(true, false, false)) // valid, shared, unowned
	fmt.Println(core.StateFromAttributes(false, true, true))  // invalidity wins
	// Output:
	// Modified
	// Owned
	// Exclusive
	// Shared
	// Invalid
}

// ExampleValidate reproduces the paper's §4 verdicts for Berkeley and
// Illinois.
func ExampleValidate() {
	fmt.Println(core.Validate(core.PaperTable3(), core.CopyBack).Verdict)
	fmt.Println(core.Validate(core.PaperTable6(), core.CopyBack).Verdict)
	// Output:
	// in class
	// in class with BS extension
}

// ExampleParseLocalAction parses a Table 1 cell into its parts.
func ExampleParseLocalAction() {
	a, _ := core.ParseLocalAction("CH:O/M,CA,IM,BC,W")
	fmt.Println(a.Next.Resolve(true), a.Next.Resolve(false), a.Assert, a.Op)
	// Output:
	// Owned Modified CA,IM,BC W
}

// ExampleClassifyBusEvent maps a master's signals to the Table 2 column
// snoopers consult.
func ExampleClassifyBusEvent() {
	fmt.Println(core.ClassifyBusEvent(core.SigCA | core.SigIM).Column())
	fmt.Println(core.ClassifyBusEvent(0).Column())
	// Output:
	// 6
	// 7
}

// ExampleLocalChoicesFor lists the class's write-miss options for a
// copy-back cache — the Table 1 "I, Write" cell.
func ExampleLocalChoicesFor() {
	for _, a := range core.LocalChoicesFor(core.Invalid, core.LocalWrite, core.CopyBack) {
		fmt.Println(a)
	}
	// Output:
	// M,CA,IM,R
	// Read>Write
}
