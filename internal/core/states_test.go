package core

import (
	"testing"
	"testing/quick"
)

// TestAttributePartition is experiment F3: the three characteristics of
// Figure 3 (validity, exclusiveness, ownership) generate exactly the
// five MOESI states — the three invalid combinations collapse to I.
func TestAttributePartition(t *testing.T) {
	type combo struct {
		valid, exclusive, owned bool
		want                    State
	}
	combos := []combo{
		{true, true, true, Modified},
		{true, false, true, Owned},
		{true, true, false, Exclusive},
		{true, false, false, Shared},
		{false, false, false, Invalid},
		{false, true, false, Invalid},
		{false, false, true, Invalid},
		{false, true, true, Invalid},
	}
	seen := map[State]int{}
	for _, c := range combos {
		got := StateFromAttributes(c.valid, c.exclusive, c.owned)
		if got != c.want {
			t.Errorf("StateFromAttributes(%t,%t,%t) = %s, want %s",
				c.valid, c.exclusive, c.owned, got, c.want)
		}
		seen[got]++
	}
	if len(seen) != 5 {
		t.Errorf("attributes generate %d states, want 5", len(seen))
	}
}

// TestAttributeRoundTrip: reconstructing a state from its own
// attributes is the identity (the partition is exact).
func TestAttributeRoundTrip(t *testing.T) {
	for _, s := range States {
		got := StateFromAttributes(s.Valid(), s.ExclusiveCopy(), s.OwnedCopy())
		if got != s {
			t.Errorf("round trip of %s gave %s", s, got)
		}
	}
}

// TestStatePairs is experiment F4: the four state-pair properties of
// Figure 4.
func TestStatePairs(t *testing.T) {
	// M and O are the intervenient states: the holder is responsible
	// for the accuracy of the data for the entire system.
	for _, s := range States {
		wantIntervenient := s == Modified || s == Owned
		if s.Intervenient() != wantIntervenient {
			t.Errorf("%s.Intervenient() = %t", s, s.Intervenient())
		}
		// M and E: the only cached copy — the client may modify
		// without warning anyone.
		wantSilent := s == Modified || s == Exclusive
		if s.MayModifySilently() != wantSilent {
			t.Errorf("%s.MayModifySilently() = %t", s, s.MayModifySilently())
		}
		// S and O: non-exclusive copies — modification requires a
		// broadcast or invalidation.
		wantAnnounce := s == Shared || s == Owned
		if s.MustAnnounceWrite() != wantAnnounce {
			t.Errorf("%s.MustAnnounceWrite() = %t", s, s.MustAnnounceWrite())
		}
	}
	// S and E are both unowned; every valid state is exactly one of
	// (announce, silent) — the write dichotomy is a partition of the
	// valid states.
	for _, s := range States {
		if !s.Valid() {
			continue
		}
		if s.MayModifySilently() == s.MustAnnounceWrite() {
			t.Errorf("%s: write dichotomy violated", s)
		}
	}
}

// TestStateNames pins the paper's three equivalent terminologies.
func TestStateNames(t *testing.T) {
	cases := []struct {
		s      State
		letter string
		name   string
		long   string
	}{
		{Modified, "M", "Modified", "exclusive modified"},
		{Owned, "O", "Owned", "shareable modified"},
		{Exclusive, "E", "Exclusive", "exclusive unmodified"},
		{Shared, "S", "Shared", "shareable unmodified"},
		{Invalid, "I", "Invalid", "invalid"},
	}
	for _, c := range cases {
		if c.s.Letter() != c.letter {
			t.Errorf("%v.Letter() = %q", c.s, c.s.Letter())
		}
		if c.s.String() != c.name {
			t.Errorf("%v.String() = %q", c.s, c.s.String())
		}
		if c.s.LongName() != c.long {
			t.Errorf("%v.LongName() = %q", c.s, c.s.LongName())
		}
	}
}

// TestParseState covers the letters, the write-through V alias, and
// rejection of junk.
func TestParseState(t *testing.T) {
	for _, s := range States {
		got, err := ParseState(s.Letter())
		if err != nil || got != s {
			t.Errorf("ParseState(%q) = %v, %v", s.Letter(), got, err)
		}
	}
	if got, err := ParseState("V"); err != nil || got != Shared {
		t.Errorf("ParseState(V) = %v, %v; V must alias S (§3.3)", got, err)
	}
	for _, junk := range []string{"", "X", "m", "MO"} {
		if _, err := ParseState(junk); err == nil {
			t.Errorf("ParseState(%q) succeeded", junk)
		}
	}
}

// TestExclusiveImpliesAloneProperty: quick-check that the attribute
// predicates are internally consistent for all byte values of State
// (out-of-range states behave as non-valid garbage, never owned).
func TestStatePredicatesTotal(t *testing.T) {
	f := func(raw uint8) bool {
		s := State(raw % uint8(numStates))
		// Owned and exclusive imply valid.
		if (s.OwnedCopy() || s.ExclusiveCopy()) && !s.Valid() {
			return false
		}
		// The write dichotomy covers every valid state exactly once.
		if s.Valid() && s.MayModifySilently() == s.MustAnnounceWrite() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
