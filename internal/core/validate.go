package core

import (
	"fmt"
	"strings"
)

// Membership is the verdict of validating a protocol against the class.
type Membership uint8

const (
	// InClass: every action is permitted by Tables 1–2 (with the
	// relaxations of notes 9–12); the protocol can run unmodified on
	// the base Futurebus facilities alongside any other member.
	InClass Membership = iota
	// RequiresBS: every non-abort action is permitted, but the protocol
	// asserts BS to abort-and-push, which needs the busy line (§3.2.2);
	// this is the paper's status for the adapted Illinois protocol.
	RequiresBS
	// RequiresAdaptation: the protocol additionally uses one of the §4
	// adapted local actions (Write-Once's write-through-and-invalidate
	// "E,CA,IM,W", Firefly's unowned broadcast write
	// "CH:S/E,CA,IM,BC,W"). Those actions are consistent in a system
	// where no cache ever holds the O state — true among caches of the
	// same protocol — but can lose the only up-to-date copy if an
	// O-state owner from another protocol holds the line, so such
	// protocols must not share a bus with O-capable boards.
	RequiresAdaptation
	// NotInClass: at least one action is outside even the BS-extended,
	// adaptation-extended class.
	NotInClass
)

func (m Membership) String() string {
	switch m {
	case InClass:
		return "in class"
	case RequiresBS:
		return "in class with BS extension"
	case RequiresAdaptation:
		return "in class with BS extension and §4 adapted actions (protocol-pure systems only)"
	case NotInClass:
		return "not in class"
	}
	return fmt.Sprintf("Membership(%d)", uint8(m))
}

// Violation describes one action outside the class.
type Violation struct {
	State  State
	Local  *LocalEvent
	Bus    *BusEvent
	Action string
	Reason string
}

func (v Violation) String() string {
	var col string
	if v.Local != nil {
		col = v.Local.String()
	} else {
		col = fmt.Sprintf("col %d", v.Bus.Column())
	}
	return fmt.Sprintf("state %s, %s: action %q: %s", v.State.Letter(), col, v.Action, v.Reason)
}

// ValidationReport is the full result of validating a protocol table.
type ValidationReport struct {
	Protocol string
	Verdict  Membership
	UsesBS   bool
	// AdaptedActions lists §4 adapted actions the protocol uses (empty
	// for true class members).
	AdaptedActions []string
	Violations     []Violation
}

func (r ValidationReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s", r.Protocol, r.Verdict)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "\n  %s", v)
	}
	return b.String()
}

// localActionInClass reports whether action is permitted for (s, e) for
// any client variant in v.
func localActionInClass(s State, e LocalEvent, a LocalAction, v Variant) bool {
	for _, ent := range localClass[s][e] {
		if ent.Variant&v == 0 {
			continue
		}
		if localEqual(ent.Action, a) {
			return true
		}
	}
	return false
}

// adaptedLocalActions are the §4 local actions outside Table 1 that the
// adapted Write-Once and Firefly protocols use. They are consistent
// only in systems where no cache ever holds the O state (see
// RequiresAdaptation).
var adaptedLocalActions = []struct {
	state  State
	event  LocalEvent
	action LocalAction
	origin string
}{
	// Write-Once's first write: write through and invalidate, keeping
	// the line exclusive and memory valid (§4.3).
	{Shared, LocalWrite, mustLocal("E,CA,IM,W"), "§4.3 (Write-Once)"},
	// Firefly's shared write: broadcast without taking ownership — the
	// Futurebus broadcast updates memory, so the writer stays unowned,
	// S if anyone kept a copy, E otherwise (§4.5).
	{Shared, LocalWrite, mustLocal("CH:S/E,CA,IM,BC,W"), "§4.5 (Firefly)"},
}

// adaptedLocal reports whether a is one of the §4 adapted actions for
// (s, e), returning its origin.
func adaptedLocal(s State, e LocalEvent, a LocalAction) (string, bool) {
	for _, ent := range adaptedLocalActions {
		if ent.state == s && ent.event == e && localEqual(ent.action, a) {
			return ent.origin, true
		}
	}
	return "", false
}

// AdaptedLocalChoices returns the §4 adapted local actions for a cell —
// actions outside Table 1 that the adapted Write-Once and Firefly
// protocols use (see RequiresAdaptation). Legality checkers that accept
// any registered protocol (the runtime monitor in internal/obs/watch)
// must admit these alongside the class cells, because adapted protocols
// are legitimate on protocol-pure buses.
func AdaptedLocalChoices(s State, e LocalEvent) []LocalAction {
	var out []LocalAction
	for _, ent := range adaptedLocalActions {
		if ent.state == s && ent.event == e {
			out = append(out, ent.action)
		}
	}
	return out
}

// localEqual compares local actions, treating an entry with BCOptional
// as matching the candidate with BC asserted, with BC clear, or with the
// option recorded.
func localEqual(class, cand LocalAction) bool {
	if class.Op != cand.Op || class.Next != cand.Next {
		return false
	}
	if class.BCOptional {
		base := class.Assert &^ SigBC
		got := cand.Assert &^ SigBC
		return base == got
	}
	return class.Assert == cand.Assert && class.BCOptional == cand.BCOptional
}

// snoopActionStatus classifies a snoop action for (s, e): InClass,
// RequiresBS (a legal abort), or NotInClass.
func snoopActionStatus(s State, e BusEvent, a SnoopAction) (Membership, string) {
	if a.Abort != nil {
		return abortStatus(s, e, *a.Abort)
	}
	for _, ent := range snoopClass[s][e] {
		if equalSnoop(ent.Action, a, false) {
			return InClass, ""
		}
	}
	return NotInClass, "no matching entry in Table 2 (including notes 9 and 11)"
}

// abortStatus checks a BS abort-and-push against the BS-extended class:
// only an owner (M or O) may abort, the recovery must write memory
// up to date, must relinquish ownership (next state unowned — after the
// push, memory is the owner again), and must assert CA exactly when the
// snooper keeps a copy.
func abortStatus(s State, e BusEvent, r Recovery) (Membership, string) {
	if !s.OwnedCopy() {
		return NotInClass, "BS abort from an unowned state"
	}
	if r.Next.OwnedCopy() {
		return NotInClass, "BS recovery must pass ownership back to memory"
	}
	if r.Next.Valid() != r.Assert.Has(SigCA) {
		return NotInClass, "BS recovery must assert CA exactly when a copy is retained"
	}
	if r.Assert.Has(SigIM) {
		return NotInClass, "BS recovery push must not assert IM"
	}
	switch e {
	case BusCacheRead, BusCacheRFO, BusPlainRead, BusPlainWrite:
		return RequiresBS, ""
	default:
		return NotInClass, "BS abort is only meaningful on non-broadcast transactions"
	}
}

// CheckSnoopAction classifies a single snoop action against the class
// (including the BS extension) for a (state, bus event) cell. The
// paranoid bus mode uses it to police every response at runtime.
func CheckSnoopAction(s State, e BusEvent, a SnoopAction) (Membership, string) {
	return snoopActionStatus(s, e, a)
}

// Validate checks every cell of a protocol table against the class and
// returns the verdict. The variant describes what kind of client the
// protocol drives (CopyBack for Tables 3–7, WriteThrough or NonCaching
// for the starred rows of Table 1).
func Validate(t *Table, variant Variant) ValidationReport {
	rep := ValidationReport{Protocol: t.Name, Verdict: InClass}
	for _, s := range t.States {
		for _, e := range t.LocalEvents {
			for _, a := range t.Local(s, e) {
				if localActionInClass(s, e, a, variant) {
					continue
				}
				if origin, ok := adaptedLocal(s, e, a); ok {
					rep.AdaptedActions = append(rep.AdaptedActions,
						fmt.Sprintf("state %s, %s: %s (%s)", s.Letter(), e, a, origin))
					continue
				}
				e := e
				rep.Violations = append(rep.Violations, Violation{
					State: s, Local: &e, Action: a.String(),
					Reason: "no matching entry in Table 1 (including notes 9, 10 and 12)",
				})
			}
		}
		for _, e := range t.BusEvents {
			for _, a := range t.Snoop(s, e) {
				status, reason := snoopActionStatus(s, e, a)
				switch status {
				case RequiresBS:
					rep.UsesBS = true
				case NotInClass:
					e := e
					rep.Violations = append(rep.Violations, Violation{
						State: s, Bus: &e, Action: a.String(), Reason: reason,
					})
				}
			}
		}
	}
	switch {
	case len(rep.Violations) > 0:
		rep.Verdict = NotInClass
	case len(rep.AdaptedActions) > 0:
		rep.Verdict = RequiresAdaptation
	case rep.UsesBS:
		rep.Verdict = RequiresBS
	}
	return rep
}
