package core

import (
	"strings"
	"testing"
)

// TestClassCellsMatchPaperTable1: the entries tagged "Table 1" render
// exactly the paper's cells, in the paper's preference order.
func TestClassCellsMatchPaperTable1(t *testing.T) {
	paper := PaperTable1Cells()
	for i, s := range States {
		for j, e := range LocalEvents {
			var alts []string
			for _, ent := range LocalClass(s, e) {
				if ent.Origin == "Table 1" {
					alts = append(alts, ent.Action.String()+ent.Variant.Marker())
				}
			}
			got := "-"
			if len(alts) > 0 {
				got = strings.Join(alts, " or ")
			}
			if got != paper[i][j] {
				t.Errorf("class cell (%s, %s) = %q, want %q", s.Letter(), e, got, paper[i][j])
			}
		}
	}
}

// TestClassCellsMatchPaperTable2: same for the snoop class.
func TestClassCellsMatchPaperTable2(t *testing.T) {
	paper := PaperTable2Cells()
	for i, s := range States {
		for j, e := range BusEvents {
			var alts []string
			for _, ent := range SnoopClass(s, e) {
				if ent.Origin == "Table 2" {
					alts = append(alts, ent.Action.String())
				}
			}
			got := "-"
			if len(alts) > 0 {
				got = strings.Join(alts, " or ")
			}
			if got != paper[i][j] {
				t.Errorf("class cell (%s, col %d) = %q, want %q", s.Letter(), e.Column(), got, paper[i][j])
			}
		}
	}
}

// TestRelaxationsPresent: notes 9–12 admit the documented extra
// entries.
func TestRelaxationsPresent(t *testing.T) {
	find := func(s State, e LocalEvent, cell, origin string) bool {
		for _, ent := range LocalClass(s, e) {
			if ent.Action.String() == cell && ent.Origin == origin {
				return true
			}
		}
		return false
	}
	cases := []struct {
		s      State
		e      LocalEvent
		cell   string
		origin string
	}{
		{Owned, LocalWrite, "O,CA,IM,BC,W", "note 9"},  // CH:O/M -> O
		{Shared, LocalWrite, "O,CA,IM,BC,W", "note 9"}, // CH:O/M -> O
		{Invalid, LocalRead, "S,CA,R", "note 10"},      // CH:S/E -> S
		{Owned, Pass, "S,CA,BC?,W", "note 10"},         // CH:S/E -> S
		{Modified, Pass, "S,CA,BC?,W", "note 10"},      // E -> S (prose)
		{Invalid, LocalRead, "CH:S/M,CA,R", "note 12"}, // E -> M
		{Modified, Pass, "M,CA,BC?,W", "note 12"},      // E -> M
	}
	for _, c := range cases {
		if !find(c.s, c.e, c.cell, c.origin) {
			t.Errorf("missing %s entry %q at (%s, %s)", c.origin, c.cell, c.s.Letter(), c.e)
		}
	}
	// Note 11 lives in the snoop class: bus transitions to E/S may be I.
	found := false
	for _, ent := range SnoopClass(Shared, BusCacheRead) {
		if ent.Origin == "note 11" && ent.Action.Next.NoCH == Invalid {
			found = true
		}
	}
	if !found {
		t.Error("missing note 11 entry: S on col 5 may go I")
	}
}

// TestVariantFiltering: write-through and non-caching entries are
// invisible to copy-back clients, and vice versa.
func TestVariantFiltering(t *testing.T) {
	cb := LocalChoicesFor(Invalid, LocalRead, CopyBack)
	for _, a := range cb {
		if a.String() == "I,R" {
			t.Error("copy-back choices include the non-caching read")
		}
	}
	nc := LocalChoicesFor(Invalid, LocalRead, NonCaching)
	if len(nc) != 1 || nc[0].String() != "I,R" {
		t.Errorf("non-caching read choices = %v", nc)
	}
	wt := LocalChoicesFor(Shared, LocalWrite, WriteThrough)
	for _, a := range wt {
		if a.Assert.Has(SigCA) && a.Op == BusWrite {
			t.Errorf("write-through write asserts CA: %s", a)
		}
		if a.Next.OnCH.OwnedCopy() || a.Next.NoCH.OwnedCopy() {
			t.Errorf("write-through action takes ownership: %s (§3.3: not capable of ownership)", a)
		}
	}
	if len(wt) == 0 {
		t.Fatal("no write-through write choices")
	}
}

// TestClassStructuralInvariants: every class action obeys the structural
// rules the signal definitions imply.
func TestClassStructuralInvariants(t *testing.T) {
	for _, s := range States {
		for _, e := range LocalEvents {
			for _, ent := range LocalClass(s, e) {
				a := ent.Action
				if a.Op == BusReadThenWrite {
					continue
				}
				// IM must be asserted on every modifying transaction
				// and only then.
				modifying := a.Op == BusWrite || a.Op == BusAddrOnly
				if e == LocalWrite && a.NeedsBus() && !modifying && a.Op != BusRead {
					t.Errorf("(%s,%s) %s: odd write action", s.Letter(), e, a)
				}
				if a.Assert.Has(SigBC) && !a.NeedsBus() {
					t.Errorf("(%s,%s) %s: BC without a transaction", s.Letter(), e, a)
				}
				// Flush never asserts CA (nothing retained).
				if e == Flush && a.Assert.Has(SigCA) {
					t.Errorf("(%s,Flush) %s asserts CA", s.Letter(), a)
				}
				// Pass always asserts CA (a copy is retained).
				if e == Pass && !a.Assert.Has(SigCA) {
					t.Errorf("(%s,Pass) %s lacks CA", s.Letter(), a)
				}
			}
		}
		for _, e := range BusEvents {
			for _, ent := range SnoopClass(s, e) {
				a := ent.Action
				// Only owners intervene.
				if a.AssertDI && !s.OwnedCopy() {
					t.Errorf("(%s,col %d) %s: DI from unowned state", s.Letter(), e.Column(), a)
				}
				// SL only on broadcast columns.
				if a.AssertSL && e != BusCacheBroadcastWrite && e != BusPlainBroadcastWrite {
					t.Errorf("(%s,col %d) %s: SL outside broadcast", s.Letter(), e.Column(), a)
				}
				// CH means "I will retain a copy": never asserted on a
				// transition to Invalid.
				if a.AssertCH && a.Next.OnCH == Invalid && a.Next.NoCH == Invalid {
					t.Errorf("(%s,col %d) %s: CH asserted while invalidating", s.Letter(), e.Column(), a)
				}
				// The class itself never aborts; BS is an extension.
				if a.Abort != nil {
					t.Errorf("(%s,col %d): abort action in base class", s.Letter(), e.Column())
				}
				// Invalid snoopers do nothing.
				if s == Invalid && (a.AssertCH || a.AssertDI || a.AssertSL || a.Next.NoCH != Invalid) {
					t.Errorf("(I,col %d) %s: invalid state must stay silent", e.Column(), a)
				}
			}
		}
	}
}

// TestClassOwnershipTransfer: on every column-6 event (write miss /
// invalidate), every state's permitted results are Invalid — the writer
// becomes the sole owner.
func TestClassOwnershipTransfer(t *testing.T) {
	for _, s := range States {
		for _, ent := range SnoopClass(s, BusCacheRFO) {
			n := ent.Action.Next
			if n.OnCH != Invalid || n.NoCH != Invalid {
				t.Errorf("col 6 from %s permits survival: %s", s.Letter(), ent.Action)
			}
		}
	}
}

// TestPreferredEntriesFirst: the first permitted action of each
// non-empty cell is the paper's printed first entry (§3.3: "the first
// entry is preferred").
func TestPreferredEntriesFirst(t *testing.T) {
	paper1 := PaperTable1Cells()
	for i, s := range States {
		for j, e := range LocalEvents {
			ents := LocalClass(s, e)
			if len(ents) == 0 {
				continue
			}
			first := ents[0].Action.String() + ents[0].Variant.Marker()
			wantFirst := strings.Split(paper1[i][j], " or ")[0]
			if first != wantFirst {
				t.Errorf("(%s,%s): first class entry %q, paper prefers %q",
					s.Letter(), e, first, wantFirst)
			}
		}
	}
}
