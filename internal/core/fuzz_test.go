package core

import (
	"strings"
	"testing"
)

// FuzzParseLocalAction: the parser never panics, and whatever it
// accepts round-trips through String.
func FuzzParseLocalAction(f *testing.F) {
	for _, seed := range []string{
		"M", "CH:O/M,CA,IM,BC,W", "M,CA,IM", "E,CA,BC?,W", "I,BC?,W",
		"CH:S/E,CA,R", "I,R", "Read>Write", "S,IM,W", "", "-", "CH:/",
		"M,CA,CA", "CH:X/Y", "M,,W",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, cell string) {
		a, err := ParseLocalAction(cell)
		if err != nil {
			return
		}
		rendered := a.String()
		b, err := ParseLocalAction(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", cell, rendered, err)
		}
		if b.String() != rendered {
			t.Fatalf("rendering not a fixed point: %q -> %q", rendered, b.String())
		}
	})
}

// FuzzParseSnoopAction: same for snoop cells, including the BS form.
func FuzzParseSnoopAction(f *testing.F) {
	for _, seed := range []string{
		"O,CH,DI", "I,DI", "M,CH?,DI", "CH:O/M,DI", "S,CH,SL", "I",
		"BS;S,CA,W", "BS;E,CA,W", "BS;", "BS;Q", "S,CH,CH?", "",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, cell string) {
		a, err := ParseSnoopAction(cell)
		if err != nil {
			return
		}
		rendered := a.String()
		b, err := ParseSnoopAction(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", cell, rendered, err)
		}
		if b.String() != rendered {
			t.Fatalf("rendering not a fixed point: %q -> %q", rendered, b.String())
		}
	})
}

// FuzzParseCells: multi-alternative cells with "or" separators never
// panic and keep alternative count consistent with the separators.
func FuzzParseCells(f *testing.F) {
	f.Add("CH:O/M,CA,IM,BC,W or M,CA,IM")
	f.Add("S,CH,SL or I")
	f.Add("- or -")
	f.Add("M or")
	f.Fuzz(func(t *testing.T, cell string) {
		if alts, err := ParseLocalCell(cell); err == nil && len(alts) > strings.Count(cell, " or ")+1 {
			t.Fatalf("%q: %d alternatives from %d separators", cell, len(alts), strings.Count(cell, " or "))
		}
		if alts, err := ParseSnoopCell(cell); err == nil && len(alts) > strings.Count(cell, " or ")+1 {
			t.Fatalf("%q: %d snoop alternatives", cell, len(alts))
		}
	})
}
