package core

import (
	"strings"
	"testing"
)

// TestPaperTableVerdicts is the paper's §4 compatibility analysis as a
// test: Berkeley and Dragon are class members as printed; Write-Once,
// Illinois and Firefly need (at least) the BS extension.
func TestPaperTableVerdicts(t *testing.T) {
	cases := []struct {
		table *Table
		want  Membership
	}{
		{PaperTable3(), InClass},            // Berkeley (§4.1)
		{PaperTable4(), InClass},            // Dragon (§4.2)
		{PaperTable5(), RequiresAdaptation}, // Write-Once (§4.3)
		{PaperTable6(), RequiresBS},         // Illinois (§4.4)
		{PaperTable7(), RequiresAdaptation}, // Firefly (§4.5)
	}
	for _, c := range cases {
		rep := Validate(c.table, CopyBack)
		if rep.Verdict != c.want {
			t.Errorf("%s: verdict %s, want %s\n%s", c.table.Name, rep.Verdict, c.want, rep)
		}
		if len(rep.Violations) != 0 {
			t.Errorf("%s: unexpected violations: %s", c.table.Name, rep)
		}
	}
}

// TestMOESIClassTableValidates: the class validated against itself is
// trivially in class.
func TestMOESIClassTableValidates(t *testing.T) {
	tbl := FullMOESITable("class")
	for _, s := range States {
		for _, e := range LocalEvents {
			tbl.SetLocal(s, e, LocalChoicesFor(s, e, CopyBack)...)
		}
		for _, e := range BusEvents {
			tbl.SetSnoop(s, e, SnoopChoices(s, e)...)
		}
	}
	rep := Validate(tbl, CopyBack)
	if rep.Verdict != InClass {
		t.Fatalf("class does not validate against itself:\n%s", rep)
	}
}

// TestValidateCatchesIllegalLocal: an out-of-class local action is
// reported with state and event.
func TestValidateCatchesIllegalLocal(t *testing.T) {
	tbl := NewTable("broken", []State{Shared}, []LocalEvent{LocalWrite}, nil)
	// Writing an S line silently (no bus) loses other copies — the
	// cardinal sin the S/O pair exists to prevent.
	tbl.SetLocal(Shared, LocalWrite, LocalAction{Next: Uncond(Modified)})
	rep := Validate(tbl, CopyBack)
	if rep.Verdict != NotInClass || len(rep.Violations) != 1 {
		t.Fatalf("silent shared write not caught:\n%s", rep)
	}
	if !strings.Contains(rep.Violations[0].String(), "state S") {
		t.Errorf("violation lacks location: %s", rep.Violations[0])
	}
}

// TestValidateCatchesIllegalSnoop: refusing to invalidate on column 6
// is outside the class.
func TestValidateCatchesIllegalSnoop(t *testing.T) {
	tbl := NewTable("broken", []State{Shared}, nil, []BusEvent{BusCacheRFO})
	tbl.SetSnoop(Shared, BusCacheRFO, SnoopAction{Next: Uncond(Shared), AssertCH: true})
	rep := Validate(tbl, CopyBack)
	if rep.Verdict != NotInClass {
		t.Fatalf("column-6 survival not caught:\n%s", rep)
	}
}

// TestAbortRules: the BS-extended class only admits principled aborts.
func TestAbortRules(t *testing.T) {
	check := func(s State, e BusEvent, rec Recovery) Membership {
		tbl := NewTable("t", []State{s}, nil, []BusEvent{e})
		tbl.SetSnoop(s, e, SnoopAction{Abort: &rec})
		return Validate(tbl, CopyBack).Verdict
	}
	// The real Write-Once/Illinois/Firefly patterns pass.
	if got := check(Modified, BusCacheRead, Recovery{Next: Shared, Assert: SigCA}); got != RequiresBS {
		t.Errorf("BS;S,CA,W from M on col 5: %s", got)
	}
	if got := check(Modified, BusCacheRead, Recovery{Next: Exclusive, Assert: SigCA}); got != RequiresBS {
		t.Errorf("BS;E,CA,W from M on col 5: %s", got)
	}
	// Aborting from an unowned state is nonsense.
	if got := check(Shared, BusCacheRead, Recovery{Next: Shared, Assert: SigCA}); got != NotInClass {
		t.Errorf("BS from S accepted: %s", got)
	}
	// The recovery must pass ownership back to memory.
	if got := check(Modified, BusCacheRead, Recovery{Next: Modified, Assert: SigCA}); got != NotInClass {
		t.Errorf("ownership-keeping recovery accepted: %s", got)
	}
	// CA must match copy retention.
	if got := check(Modified, BusCacheRead, Recovery{Next: Shared}); got != NotInClass {
		t.Errorf("copy kept without CA accepted: %s", got)
	}
	if got := check(Modified, BusCacheRead, Recovery{Next: Invalid, Assert: SigCA}); got != NotInClass {
		t.Errorf("CA without copy accepted: %s", got)
	}
	// Aborting a broadcast write is not meaningful.
	if got := check(Modified, BusCacheBroadcastWrite, Recovery{Next: Shared, Assert: SigCA}); got != NotInClass {
		t.Errorf("BS on col 8 accepted: %s", got)
	}
}

// TestAdaptedActionsRecognised: the §4 adapted local actions upgrade
// the verdict to RequiresAdaptation, not NotInClass.
func TestAdaptedActionsRecognised(t *testing.T) {
	tbl := NewTable("wo-write", []State{Shared}, []LocalEvent{LocalWrite}, nil)
	tbl.SetLocal(Shared, LocalWrite, mustLocal("E,CA,IM,W"))
	rep := Validate(tbl, CopyBack)
	if rep.Verdict != RequiresAdaptation {
		t.Fatalf("Write-Once first write: %s", rep)
	}
	if len(rep.AdaptedActions) != 1 || !strings.Contains(rep.AdaptedActions[0], "§4.3") {
		t.Errorf("adapted actions: %v", rep.AdaptedActions)
	}
}

// TestBCOptionalMatching: a concrete BC choice matches a BC? class
// entry either way.
func TestBCOptionalMatching(t *testing.T) {
	for _, cell := range []string{"I,W", "I,BC,W", "I,BC?,W"} {
		tbl := NewTable("flush", []State{Modified}, []LocalEvent{Flush}, nil)
		tbl.SetLocal(Modified, Flush, mustLocal(cell))
		if rep := Validate(tbl, CopyBack); rep.Verdict != InClass {
			t.Errorf("flush %q rejected:\n%s", cell, rep)
		}
	}
}

// TestMembershipStrings pins the verdict wording used in reports.
func TestMembershipStrings(t *testing.T) {
	if InClass.String() != "in class" {
		t.Error(InClass)
	}
	if !strings.Contains(RequiresBS.String(), "BS") {
		t.Error(RequiresBS)
	}
	if !strings.Contains(RequiresAdaptation.String(), "protocol-pure") {
		t.Error(RequiresAdaptation)
	}
	if NotInClass.String() != "not in class" {
		t.Error(NotInClass)
	}
}

// TestWriteThroughRowValidates: the V≡S write-through behaviour of §3.3
// is a class member under the WriteThrough variant but not under
// CopyBack (the starred entries).
func TestWriteThroughRowValidates(t *testing.T) {
	tbl := NewTable("wt-write", []State{Shared}, []LocalEvent{LocalWrite}, nil)
	tbl.SetLocal(Shared, LocalWrite, mustLocal("S,IM,W"))
	if rep := Validate(tbl, WriteThrough); rep.Verdict != InClass {
		t.Errorf("write-through write rejected for WT variant:\n%s", rep)
	}
	if rep := Validate(tbl, CopyBack); rep.Verdict != NotInClass {
		t.Errorf("starred entry accepted for copy-back variant:\n%s", rep)
	}
}
