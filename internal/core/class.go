package core

// Variant is a bitmask describing which kinds of bus client may use a
// class entry. Table 1 marks write-through entries with "*" and
// non-caching entries with "**"; unmarked entries are for copy-back
// caches. §3.4 notes a single board may mix variants (e.g. some pages
// copy-back, some write-through, some uncacheable, as in the CLIPPER).
type Variant uint8

const (
	// CopyBack — a copy-back cache (the unmarked rows of Table 1).
	CopyBack Variant = 1 << iota
	// WriteThrough — a write-through cache ("*"). Its V state is
	// equated with S; it is not capable of ownership.
	WriteThrough
	// NonCaching — a processor without a cache ("**"). It never
	// responds to bus events.
	NonCaching
)

// AnyVariant permits every kind of client.
const AnyVariant = CopyBack | WriteThrough | NonCaching

func (v Variant) String() string {
	switch v {
	case CopyBack:
		return "copy-back"
	case WriteThrough:
		return "write-through"
	case NonCaching:
		return "non-caching"
	case WriteThrough | NonCaching:
		return "write-through/non-caching"
	case AnyVariant:
		return "any"
	}
	return "variant-mix"
}

// Marker returns the paper's footnote marker for the variant set.
func (v Variant) Marker() string {
	switch {
	case v == WriteThrough:
		return "*"
	case v == NonCaching:
		return "**"
	case v == WriteThrough|NonCaching:
		return "*,**"
	default:
		return ""
	}
}

// LocalClassEntry is one permitted local action in the class, together
// with the clients that may use it and where it comes from in the paper.
type LocalClassEntry struct {
	Action  LocalAction
	Variant Variant
	// Origin cites the paper: "Table 1" for a printed cell, or the
	// relaxation note ("note 9" … "note 12") that admits it.
	Origin string
}

// SnoopClassEntry is one permitted snoop action in the class.
type SnoopClassEntry struct {
	Action SnoopAction
	Origin string
}

var (
	localClass [numStates][numLocalEvents][]LocalClassEntry
	snoopClass [numStates][numBusEvents][]SnoopClassEntry
)

// mustLocal parses a canonical local action string or panics; class
// construction runs at init time from the paper's cells.
func mustLocal(cell string) LocalAction {
	a, err := ParseLocalAction(cell)
	if err != nil {
		panic(err)
	}
	return a
}

func mustSnoop(cell string) SnoopAction {
	a, err := ParseSnoopAction(cell)
	if err != nil {
		panic(err)
	}
	return a
}

func addLocal(s State, e LocalEvent, variant Variant, origin, cell string) {
	localClass[s][e] = append(localClass[s][e], LocalClassEntry{
		Action:  mustLocal(cell),
		Variant: variant,
		Origin:  origin,
	})
}

func addSnoop(s State, e BusEvent, origin, cell string) {
	snoopClass[s][e] = append(snoopClass[s][e], SnoopClassEntry{
		Action: mustSnoop(cell),
		Origin: origin,
	})
}

func init() {
	buildLocalClass()
	buildSnoopClass()
}

// buildLocalClass enumerates Table 1 in the paper's preference order
// (first entry preferred, §3.3), then the relaxations of notes 9–12.
func buildLocalClass() {
	const t1 = "Table 1"

	// --- Read (note 1) ---
	addLocal(Modified, LocalRead, CopyBack, t1, "M")
	addLocal(Owned, LocalRead, CopyBack, t1, "O")
	addLocal(Exclusive, LocalRead, CopyBack, t1, "E")
	addLocal(Shared, LocalRead, CopyBack|WriteThrough, t1, "S")
	addLocal(Invalid, LocalRead, CopyBack, t1, "CH:S/E,CA,R")
	addLocal(Invalid, LocalRead, WriteThrough, t1, "S,CA,R")
	addLocal(Invalid, LocalRead, NonCaching, t1, "I,R")
	// note 10: CH:S/E may be replaced by S — a copy-back cache may load
	// every miss shareable (this is what makes Berkeley's read miss a
	// class member).
	addLocal(Invalid, LocalRead, CopyBack, "note 10", "S,CA,R")
	// note 12: E may be replaced by M (exclusivity still guaranteed by
	// the absence of CH), at the cost of an eventual write-back.
	addLocal(Invalid, LocalRead, CopyBack, "note 12", "CH:S/M,CA,R")

	// --- Write (note 2) ---
	addLocal(Modified, LocalWrite, CopyBack, t1, "M")
	addLocal(Owned, LocalWrite, CopyBack, t1, "CH:O/M,CA,IM,BC,W")
	addLocal(Owned, LocalWrite, CopyBack, t1, "M,CA,IM")
	addLocal(Owned, LocalWrite, CopyBack, "note 9", "O,CA,IM,BC,W")
	addLocal(Exclusive, LocalWrite, CopyBack, t1, "M")
	addLocal(Shared, LocalWrite, CopyBack, t1, "CH:O/M,CA,IM,BC,W")
	addLocal(Shared, LocalWrite, CopyBack, t1, "M,CA,IM")
	addLocal(Shared, LocalWrite, WriteThrough, t1, "S,IM,BC,W")
	addLocal(Shared, LocalWrite, WriteThrough, t1, "S,IM,W")
	addLocal(Shared, LocalWrite, CopyBack, "note 9", "O,CA,IM,BC,W")
	addLocal(Invalid, LocalWrite, CopyBack, t1, "M,CA,IM,R")
	addLocal(Invalid, LocalWrite, CopyBack, t1, "Read>Write")
	addLocal(Invalid, LocalWrite, WriteThrough|NonCaching, t1, "I,IM,BC,W")
	addLocal(Invalid, LocalWrite, WriteThrough|NonCaching, t1, "I,IM,W")
	addLocal(Invalid, LocalWrite, WriteThrough, t1, "Read>Write")

	// --- Pass (note 3): push dirty line, keep copy ---
	addLocal(Modified, Pass, CopyBack, t1, "E,CA,BC?,W")
	// note 10 (prose): E can change at any time to S — a protocol
	// without an E state (Berkeley) keeps the pushed line shareable.
	addLocal(Modified, Pass, CopyBack, "note 10", "S,CA,BC?,W")
	addLocal(Modified, Pass, CopyBack, "note 12", "M,CA,BC?,W")
	addLocal(Owned, Pass, CopyBack, t1, "CH:S/E,CA,BC?,W")
	addLocal(Owned, Pass, CopyBack, "note 10", "S,CA,BC?,W")
	addLocal(Owned, Pass, CopyBack, "note 12", "CH:S/M,CA,BC?,W")

	// --- Flush (note 4): push dirty line, discard copy. The flusher
	// retains nothing, so CA is NOT asserted: sharers of an O line see
	// column 7 and correctly keep their copies while memory resumes
	// ownership. ---
	addLocal(Modified, Flush, CopyBack, t1, "I,BC?,W")
	addLocal(Owned, Flush, CopyBack, t1, "I,BC?,W")
	addLocal(Exclusive, Flush, CopyBack, t1, "I")
	addLocal(Shared, Flush, CopyBack|WriteThrough, t1, "I")
}

// buildSnoopClass enumerates Table 2 in the paper's preference order,
// then the relaxations of notes 9 and 11. Non-caching units never snoop;
// a write-through cache snoops exactly like the S row (its V state).
func buildSnoopClass() {
	const t2 = "Table 2"

	// --- Column 5 (CA,~IM,~BC): read by a cache master ---
	addSnoop(Modified, BusCacheRead, t2, "O,CH,DI")
	addSnoop(Owned, BusCacheRead, t2, "O,CH,DI")
	addSnoop(Exclusive, BusCacheRead, t2, "S,CH")
	addSnoop(Exclusive, BusCacheRead, "note 11", "I")
	addSnoop(Shared, BusCacheRead, t2, "S,CH")
	addSnoop(Shared, BusCacheRead, "note 11", "I")
	addSnoop(Invalid, BusCacheRead, t2, "I")

	// --- Column 6 (CA,IM,~BC): write miss / address-only invalidate ---
	addSnoop(Modified, BusCacheRFO, t2, "I,DI")
	addSnoop(Owned, BusCacheRFO, t2, "I,DI")
	addSnoop(Exclusive, BusCacheRFO, t2, "I")
	addSnoop(Shared, BusCacheRFO, t2, "I")
	addSnoop(Invalid, BusCacheRFO, t2, "I")

	// --- Column 7 (~CA,~IM,~BC): read by a processor without a cache.
	// The owner does not assert CH so that it can listen for CH from
	// other caches (§3.2.2) and resolve CH:O/M. ---
	addSnoop(Modified, BusPlainRead, t2, "M,CH?,DI")
	addSnoop(Owned, BusPlainRead, t2, "CH:O/M,DI")
	addSnoop(Owned, BusPlainRead, "note 9", "O,DI")
	addSnoop(Exclusive, BusPlainRead, t2, "E,CH?")
	addSnoop(Exclusive, BusPlainRead, "note 11", "I")
	addSnoop(Shared, BusPlainRead, t2, "S,CH")
	addSnoop(Shared, BusPlainRead, "note 11", "I")
	addSnoop(Invalid, BusPlainRead, t2, "I")

	// --- Column 8 (CA,IM,BC): broadcast write by a cache master. An
	// exclusive holder (M or E) cannot observe this: the writer must
	// itself have held a copy. ---
	addSnoop(Owned, BusCacheBroadcastWrite, t2, "S,CH,SL")
	addSnoop(Owned, BusCacheBroadcastWrite, t2, "I")
	addSnoop(Shared, BusCacheBroadcastWrite, t2, "S,CH,SL")
	addSnoop(Shared, BusCacheBroadcastWrite, t2, "I")
	addSnoop(Invalid, BusCacheBroadcastWrite, t2, "I")

	// --- Column 9 (~CA,IM,~BC): non-broadcast write by a non-caching
	// unit or past a write-through cache; an owner captures it. ---
	addSnoop(Modified, BusPlainWrite, t2, "M,CH?,DI")
	addSnoop(Owned, BusPlainWrite, t2, "O,CH?,DI")
	addSnoop(Exclusive, BusPlainWrite, t2, "I")
	addSnoop(Shared, BusPlainWrite, t2, "I")
	addSnoop(Invalid, BusPlainWrite, t2, "I")

	// --- Column 10 (~CA,IM,BC): broadcast write by a non-caching unit
	// or past a write-through cache; owners must update themselves. ---
	addSnoop(Modified, BusPlainBroadcastWrite, t2, "M,CH?,SL")
	addSnoop(Owned, BusPlainBroadcastWrite, t2, "O,CH,SL")
	addSnoop(Exclusive, BusPlainBroadcastWrite, t2, "E,CH?,SL")
	addSnoop(Exclusive, BusPlainBroadcastWrite, t2, "I")
	addSnoop(Shared, BusPlainBroadcastWrite, t2, "S,CH,SL")
	addSnoop(Shared, BusPlainBroadcastWrite, t2, "I")
	addSnoop(Invalid, BusPlainBroadcastWrite, t2, "I")
}

// LocalClass returns the permitted local actions for a (state, event)
// cell, in preference order, including variant-restricted and relaxed
// entries. An empty result is the tables' "—".
func LocalClass(s State, e LocalEvent) []LocalClassEntry {
	return localClass[s][e]
}

// SnoopClass returns the permitted snoop actions for a (state, bus
// event) cell.
func SnoopClass(s State, e BusEvent) []SnoopClassEntry {
	return snoopClass[s][e]
}

// LocalChoicesFor returns the permitted local actions usable by the
// given client variant, in preference order.
func LocalChoicesFor(s State, e LocalEvent, v Variant) []LocalAction {
	var out []LocalAction
	for _, ent := range localClass[s][e] {
		if ent.Variant&v != 0 {
			out = append(out, ent.Action)
		}
	}
	return out
}

// SnoopChoices returns the permitted snoop actions in preference order.
func SnoopChoices(s State, e BusEvent) []SnoopAction {
	var out []SnoopAction
	for _, ent := range snoopClass[s][e] {
		out = append(out, ent.Action)
	}
	return out
}
