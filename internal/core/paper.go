package core

// This file embeds the paper's Tables 1–7 as ground truth for the
// table-regeneration experiments (T1–T7 in DESIGN.md). Cells are stored
// in this repository's canonical syntax, which differs from the paper's
// typesetting only in token order (the paper prints e.g. "M,DI,CH?";
// canonically the CH token precedes DI) and in using "-" for the em-dash
// of illegal cells. Semantics are unchanged; see EXPERIMENTS.md.

// TableFromCells builds a Table by parsing a grid of canonical cells.
// localCells and snoopCells are indexed [row][column] following the
// states/locals/buses order. Malformed cells panic: the specs are
// compile-time constants.
func TableFromCells(name string, states []State, locals []LocalEvent, buses []BusEvent, localCells, snoopCells [][]string) *Table {
	t := NewTable(name, states, locals, buses)
	for i, s := range states {
		for j, e := range locals {
			alts, err := ParseLocalCell(localCells[i][j])
			if err != nil {
				panic(err)
			}
			t.SetLocal(s, e, alts...)
		}
		for j, e := range buses {
			alts, err := ParseSnoopCell(snoopCells[i][j])
			if err != nil {
				panic(err)
			}
			t.SetSnoop(s, e, alts...)
		}
	}
	return t
}

// PaperTable1Cells returns the cells of Table 1 (MOESI local events)
// with the paper's variant markers ("*" write-through, "**" no cache),
// indexed [state row][local event column] in M,O,E,S,I × Read, Write,
// Pass, Flush order.
func PaperTable1Cells() [][]string {
	return [][]string{
		{"M", "M", "E,CA,BC?,W", "I,BC?,W"},
		{"O", "CH:O/M,CA,IM,BC,W or M,CA,IM", "CH:S/E,CA,BC?,W", "I,BC?,W"},
		{"E", "M", "-", "I"},
		{"S", "CH:O/M,CA,IM,BC,W or M,CA,IM or S,IM,BC,W* or S,IM,W*", "-", "I"},
		{"CH:S/E,CA,R or S,CA,R* or I,R**",
			"M,CA,IM,R or Read>Write or I,IM,BC,W*,** or I,IM,W*,** or Read>Write*",
			"-", "-"},
	}
}

// PaperTable2Cells returns the cells of Table 2 (MOESI bus events),
// indexed [state row][bus column 5–10].
func PaperTable2Cells() [][]string {
	return [][]string{
		{"O,CH,DI", "I,DI", "M,CH?,DI", "-", "M,CH?,DI", "M,CH?,SL"},
		{"O,CH,DI", "I,DI", "CH:O/M,DI", "S,CH,SL or I", "O,CH?,DI", "O,CH,SL"},
		{"S,CH", "I", "E,CH?", "-", "I", "E,CH?,SL or I"},
		{"S,CH", "I", "S,CH", "S,CH,SL or I", "I", "S,CH,SL or I"},
		{"I", "I", "I", "I", "I", "I"},
	}
}

// PaperTable2 returns Table 2 as a parsed Table (snoop columns only).
func PaperTable2() *Table {
	states := States[:]
	empty := make([][]string, len(states))
	for i := range empty {
		empty[i] = []string{}
	}
	return TableFromCells("Table 2 (MOESI bus events)", states, nil, BusEvents[:],
		empty, PaperTable2Cells())
}

// PaperTable3 returns the Berkeley protocol exactly as printed in
// Table 3: states M, O, S, I; local reads/writes; bus columns 5 and 6.
// (The CH signal is generated for compatibility with the class; the
// original SPUR definition does not use it.)
func PaperTable3() *Table {
	states := []State{Modified, Owned, Shared, Invalid}
	locals := []LocalEvent{LocalRead, LocalWrite}
	buses := []BusEvent{BusCacheRead, BusCacheRFO}
	return TableFromCells("Table 3 (Berkeley)", states, locals, buses,
		[][]string{
			{"M", "M"},
			{"O", "M,CA,IM"},
			{"S", "M,CA,IM"},
			{"S,CA,R", "M,CA,IM,R"},
		},
		[][]string{
			{"O,CH,DI", "I,DI"},
			{"O,CH,DI", "I,DI"},
			{"S,CH", "I"},
			{"I", "I"},
		})
}

// PaperTable4 returns the Dragon protocol as printed in Table 4:
// states M, O, E, S, I; bus columns 5 and 8. (Broadcast writes on the
// Futurebus also update main memory — an extra update the original
// Dragon does not perform, but which causes no incompatibility, §4.2.)
func PaperTable4() *Table {
	states := []State{Modified, Owned, Exclusive, Shared, Invalid}
	locals := []LocalEvent{LocalRead, LocalWrite}
	buses := []BusEvent{BusCacheRead, BusCacheBroadcastWrite}
	return TableFromCells("Table 4 (Dragon)", states, locals, buses,
		[][]string{
			{"M", "M"},
			{"O", "CH:O/M,CA,IM,BC,W"},
			{"E", "M"},
			{"S", "CH:O/M,CA,IM,BC,W"},
			{"CH:S/E,CA,R", "Read>Write"},
		},
		[][]string{
			{"O,CH,DI", "-"},
			{"O,CH,DI", "S,CH,SL"},
			{"S,CH", "-"},
			{"S,CH", "S,CH,SL"},
			{"I", "I"},
		})
}

// PaperTable5 returns the Write-Once protocol as printed in Table 5:
// states M, E, S, I; bus columns 5 and 6. Intervention is replaced by a
// BS abort followed by an immediate push, because Futurebus cannot
// update memory during a cache-to-cache transfer (§4.3). The two "or"
// cells reflect the ambiguity of the original definition.
func PaperTable5() *Table {
	states := []State{Modified, Exclusive, Shared, Invalid}
	locals := []LocalEvent{LocalRead, LocalWrite}
	buses := []BusEvent{BusCacheRead, BusCacheRFO}
	return TableFromCells("Table 5 (Write-Once)", states, locals, buses,
		[][]string{
			{"M", "M"},
			{"E", "M"},
			{"S", "E,CA,IM,W"},
			{"S,CA,R", "M,CA,IM,R or Read>Write"},
		},
		[][]string{
			{"BS;S,CA,W", "I,DI or BS;S,CA,W"},
			{"S,CH", "I"},
			{"S,CH", "I"},
			{"I", "I"},
		})
}

// PaperTable6 returns the Illinois protocol as printed in Table 6:
// states M, E, S, I; bus columns 5 and 6. Dirty transfers abort (BS),
// update memory, and restart; only the owner or memory ever responds
// (§4.4). Note the S state here does NOT imply consistency with memory,
// unlike the original Illinois definition.
func PaperTable6() *Table {
	states := []State{Modified, Exclusive, Shared, Invalid}
	locals := []LocalEvent{LocalRead, LocalWrite}
	buses := []BusEvent{BusCacheRead, BusCacheRFO}
	return TableFromCells("Table 6 (Illinois)", states, locals, buses,
		[][]string{
			{"M", "M"},
			{"E", "M"},
			{"S", "M,CA,IM"},
			{"CH:S/E,CA,R", "M,CA,IM,R"},
		},
		[][]string{
			{"BS;S,CA,W", "BS;S,CA,W"},
			{"S,CH", "I"},
			{"S,CH", "I"},
			{"I", "I"},
		})
}

// PaperTable7 returns the Firefly protocol as printed in Table 7:
// states M, E, S, I; bus columns 5 and 8. Like Illinois, intervention is
// replaced by abort-push-retry; after the push the old owner holds E, so
// the retried read finds memory valid and both caches end in S (§4.5).
func PaperTable7() *Table {
	states := []State{Modified, Exclusive, Shared, Invalid}
	locals := []LocalEvent{LocalRead, LocalWrite}
	buses := []BusEvent{BusCacheRead, BusCacheBroadcastWrite}
	return TableFromCells("Table 7 (Firefly)", states, locals, buses,
		[][]string{
			{"M", "M"},
			{"E", "M"},
			{"S", "CH:S/E,CA,IM,BC,W"},
			{"CH:S/E,CA,R", "Read>Write"},
		},
		[][]string{
			{"BS;E,CA,W", "-"},
			{"S,CH", "-"},
			{"S,CH", "S,CH,SL"},
			{"I", "I"},
		})
}
