package core

import (
	"fmt"
	"strings"
)

// CondState is a result state that may be conditional on the CH (cache
// hit) response observed on the bus. The paper writes the conditional
// form as "CH:O/M", meaning "if CH then O else M" (Notes on Tables).
type CondState struct {
	OnCH State // result when some *other* unit asserted CH
	NoCH State // result when no other unit asserted CH
}

// Uncond returns an unconditional CondState.
func Uncond(s State) CondState { return CondState{OnCH: s, NoCH: s} }

// CondCH returns the conditional form "CH:onCH/noCH".
func CondCH(onCH, noCH State) CondState { return CondState{OnCH: onCH, NoCH: noCH} }

// Conditional reports whether the result depends on CH.
func (c CondState) Conditional() bool { return c.OnCH != c.NoCH }

// Resolve picks the result state given the observed other-CH value.
func (c CondState) Resolve(otherCH bool) State {
	if otherCH {
		return c.OnCH
	}
	return c.NoCH
}

func (c CondState) String() string {
	if !c.Conditional() {
		return c.OnCH.Letter()
	}
	return fmt.Sprintf("CH:%s/%s", c.OnCH.Letter(), c.NoCH.Letter())
}

// BusOp is the data-phase operation a local action issues on the bus.
type BusOp uint8

const (
	// BusNone — no bus transaction (a pure local hit).
	BusNone BusOp = iota
	// BusRead — issue a read on the bus (the tables' "R").
	BusRead
	// BusWrite — issue a write on the bus (the tables' "W").
	BusWrite
	// BusAddrOnly — issue an address-only transaction (the column 6
	// "address only invalidate signal"); no data moves.
	BusAddrOnly
	// BusReadThenWrite — the tables' "Read>Write": two transactions, a
	// read (handled by the protocol's read-miss action) followed by a
	// write (handled by its write-hit action on the resulting state).
	BusReadThenWrite
)

func (o BusOp) String() string {
	switch o {
	case BusNone:
		return ""
	case BusRead:
		return "R"
	case BusWrite:
		return "W"
	case BusAddrOnly:
		return "addr"
	case BusReadThenWrite:
		return "Read>Write"
	}
	return fmt.Sprintf("BusOp(%d)", uint8(o))
}

// LocalAction is one alternative in a Table 1 cell: the behaviour of a
// cache (or cacheless unit) for a local event in a given state.
type LocalAction struct {
	// Next is the result state. For BusReadThenWrite it is ignored: the
	// outcome is determined by the read-miss action followed by the
	// write-hit action.
	Next CondState
	// Assert is the set of master signals (CA, IM, BC) asserted on the
	// transaction, if any.
	Assert Signal
	// BCOptional marks the tables' "BC?": the unit may or may not
	// broadcast the push; consistency is unaffected either way.
	BCOptional bool
	// Op is the bus operation issued (BusNone for silent transitions).
	Op BusOp
}

// NeedsBus reports whether the action issues at least one transaction.
func (a LocalAction) NeedsBus() bool { return a.Op != BusNone }

// String renders the action in the canonical cell syntax used throughout
// this repository, derived from the paper's: result state, master
// signals in CA,IM,BC order (with "BC?" for an optional broadcast), then
// R/W/addr. "Read>Write" renders bare, as in the paper.
func (a LocalAction) String() string {
	if a.Op == BusReadThenWrite {
		return "Read>Write"
	}
	parts := []string{a.Next.String()}
	if a.Assert.Has(SigCA) {
		parts = append(parts, "CA")
	}
	if a.Assert.Has(SigIM) {
		parts = append(parts, "IM")
	}
	if a.Assert.Has(SigBC) {
		parts = append(parts, "BC")
	} else if a.BCOptional {
		parts = append(parts, "BC?")
	}
	// The paper writes address-only invalidates with no action letter
	// ("M,CA,IM"); the asserted IM with no R/W implies it.
	if a.Op != BusAddrOnly {
		if s := a.Op.String(); s != "" {
			parts = append(parts, s)
		}
	}
	return strings.Join(parts, ",")
}

// Recovery is the push a BS-asserting snooper performs after aborting a
// transaction: it writes the line back (updating main memory, which
// Futurebus cannot do during a cache-to-cache transfer), enters Next,
// and the aborted master then retries. The paper writes this
// "BS;S,CA,W" (Tables 5–7).
type Recovery struct {
	// Next is the snooper's state after the push completes.
	Next State
	// Assert is the master-signal set of the push transaction (CA when
	// the snooper keeps its copy).
	Assert Signal
}

func (r Recovery) String() string {
	parts := []string{r.Next.Letter()}
	if r.Assert.Has(SigCA) {
		parts = append(parts, "CA")
	}
	if r.Assert.Has(SigIM) {
		parts = append(parts, "IM")
	}
	if r.Assert.Has(SigBC) {
		parts = append(parts, "BC")
	}
	parts = append(parts, "W")
	return strings.Join(parts, ",")
}

// SnoopAction is one alternative in a Table 2 cell: the behaviour of a
// snooping cache for a bus event in a given state.
type SnoopAction struct {
	// Next is the snooper's result state; it may be CH-conditional
	// (e.g. an Owned snooper on column 7 resolves CH:O/M by listening
	// for CH from *other* caches — §3.2.2).
	Next CondState
	// AssertCH: the snooper asserts CH ("I will retain a copy").
	AssertCH bool
	// CHDontCare marks the tables' "CH?": no other unit is listening,
	// so the value is immaterial. The implementation does not assert.
	CHDontCare bool
	// AssertDI: the snooper owns the line and preempts memory —
	// supplying the data on a read, capturing it on a write.
	AssertDI bool
	// AssertSL: the snooper connects on a broadcast transfer and
	// updates its copy with the written data.
	AssertSL bool
	// Abort, when non-nil, asserts BS: the transaction is aborted, the
	// snooper performs the Recovery push, and the master retries. Only
	// the adapted Write-Once/Illinois/Firefly protocols use this.
	Abort *Recovery
}

// String renders the action in canonical cell syntax: for plain actions,
// result state then CH/CH?/DI/SL in that fixed order; for aborts,
// "BS;" followed by the recovery push.
func (a SnoopAction) String() string {
	if a.Abort != nil {
		return "BS;" + a.Abort.String()
	}
	parts := []string{a.Next.String()}
	if a.AssertCH {
		parts = append(parts, "CH")
	} else if a.CHDontCare {
		parts = append(parts, "CH?")
	}
	if a.AssertDI {
		parts = append(parts, "DI")
	}
	if a.AssertSL {
		parts = append(parts, "SL")
	}
	return strings.Join(parts, ",")
}

// equalSnoop compares two snoop actions for semantic equality. CHDontCare
// matches any CH behaviour on the other side only when strict is false.
func equalSnoop(a, b SnoopAction, strict bool) bool {
	if (a.Abort == nil) != (b.Abort == nil) {
		return false
	}
	if a.Abort != nil {
		return *a.Abort == *b.Abort
	}
	if a.Next != b.Next || a.AssertDI != b.AssertDI || a.AssertSL != b.AssertSL {
		return false
	}
	if strict {
		return a.AssertCH == b.AssertCH && a.CHDontCare == b.CHDontCare
	}
	if a.CHDontCare || b.CHDontCare {
		return true
	}
	return a.AssertCH == b.AssertCH
}
