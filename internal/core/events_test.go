package core

import (
	"testing"
	"testing/quick"
)

// TestBusEventColumns pins the paper's column numbering (Table 2,
// notes 5–10).
func TestBusEventColumns(t *testing.T) {
	want := map[BusEvent]int{
		BusCacheRead:           5,
		BusCacheRFO:            6,
		BusPlainRead:           7,
		BusCacheBroadcastWrite: 8,
		BusPlainWrite:          9,
		BusPlainBroadcastWrite: 10,
	}
	for e, col := range want {
		if e.Column() != col {
			t.Errorf("%s.Column() = %d, want %d", e, e.Column(), col)
		}
	}
}

// TestClassifyRoundTrip: every column's defining signal triple
// classifies back to that column.
func TestClassifyRoundTrip(t *testing.T) {
	for _, e := range BusEvents {
		if got := ClassifyBusEvent(e.Signals()); got != e {
			t.Errorf("ClassifyBusEvent(%s signals) = %s", e, got)
		}
	}
}

// TestClassifyPushCombos: the two signal combinations no column names —
// a Pass push with broadcast (CA,BC) and a Flush push with broadcast
// (BC) — classify as their IM-less columns 5 and 7, so snoopers keep
// their copies on write-backs.
func TestClassifyPushCombos(t *testing.T) {
	if got := ClassifyBusEvent(SigCA | SigBC); got != BusCacheRead {
		t.Errorf("CA,BC classified as %s, want col 5", got)
	}
	if got := ClassifyBusEvent(SigBC); got != BusPlainRead {
		t.Errorf("BC classified as %s, want col 7", got)
	}
}

// TestClassifyTotal: classification is total over the master-signal
// space and ignores response bits.
func TestClassifyTotal(t *testing.T) {
	f := func(raw uint8) bool {
		sig := Signal(raw)
		got := ClassifyBusEvent(sig)
		// Classification depends only on the CA/IM/BC bits.
		return got == ClassifyBusEvent(sig&MasterSignals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestLocalEventNotes pins the Table 1 footnote numbers.
func TestLocalEventNotes(t *testing.T) {
	want := map[LocalEvent]int{LocalRead: 1, LocalWrite: 2, Pass: 3, Flush: 4}
	for e, n := range want {
		if e.Note() != n {
			t.Errorf("%s.Note() = %d, want %d", e, e.Note(), n)
		}
	}
}

// TestEventStrings match the paper's column headers.
func TestEventStrings(t *testing.T) {
	if s := BusCacheRFO.String(); s != "CA,IM,~BC" {
		t.Errorf("col 6 renders %q", s)
	}
	if s := BusPlainBroadcastWrite.String(); s != "~CA,IM,BC" {
		t.Errorf("col 10 renders %q", s)
	}
	if s := LocalWrite.String(); s != "Write" {
		t.Errorf("local write renders %q", s)
	}
}

// TestSignalStringAndParse: rendering follows the paper's CA,IM,BC
// order and parsing inverts it.
func TestSignalStringAndParse(t *testing.T) {
	s := SigBC | SigCA | SigIM | SigCH
	if got := s.String(); got != "CA,IM,BC,CH" {
		t.Errorf("signal set renders %q", got)
	}
	for _, name := range []string{"CA", "IM", "BC", "CH", "DI", "SL", "BS"} {
		sig, ok := ParseSignal(name)
		if !ok {
			t.Fatalf("ParseSignal(%q) failed", name)
		}
		if sig.String() != name {
			t.Errorf("signal %q round-trips to %q", name, sig.String())
		}
	}
	if _, ok := ParseSignal("XX"); ok {
		t.Error("ParseSignal accepted junk")
	}
}

// TestMasterResponsePartition: the master and response masks partition
// the signal space.
func TestMasterResponsePartition(t *testing.T) {
	if MasterSignals&ResponseSignals != 0 {
		t.Error("master and response signals overlap")
	}
	all := SigCA | SigIM | SigBC | SigCH | SigDI | SigSL | SigBS
	if MasterSignals|ResponseSignals != all {
		t.Error("master and response signals do not cover all lines")
	}
}
