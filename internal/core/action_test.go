package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestCondStateResolve pins the paper's conditional notation:
// CH:O/M = "if CH then O else M".
func TestCondStateResolve(t *testing.T) {
	c := CondCH(Owned, Modified)
	if c.Resolve(true) != Owned || c.Resolve(false) != Modified {
		t.Errorf("CH:O/M resolves to %s/%s", c.Resolve(true), c.Resolve(false))
	}
	if c.String() != "CH:O/M" {
		t.Errorf("renders %q", c.String())
	}
	u := Uncond(Shared)
	if u.Conditional() || u.Resolve(true) != Shared || u.String() != "S" {
		t.Errorf("unconditional S misbehaves: %v", u)
	}
}

// TestLocalActionRendering pins the canonical cell syntax against the
// paper's cells.
func TestLocalActionRendering(t *testing.T) {
	cases := map[string]LocalAction{
		"M":                 {Next: Uncond(Modified)},
		"CH:O/M,CA,IM,BC,W": {Next: CondCH(Owned, Modified), Assert: SigCA | SigIM | SigBC, Op: BusWrite},
		"M,CA,IM":           {Next: Uncond(Modified), Assert: SigCA | SigIM, Op: BusAddrOnly},
		"E,CA,BC?,W":        {Next: Uncond(Exclusive), Assert: SigCA, BCOptional: true, Op: BusWrite},
		"I,BC?,W":           {Next: Uncond(Invalid), BCOptional: true, Op: BusWrite},
		"CH:S/E,CA,R":       {Next: CondCH(Shared, Exclusive), Assert: SigCA, Op: BusRead},
		"I,R":               {Next: Uncond(Invalid), Op: BusRead},
		"S,IM,BC,W":         {Next: Uncond(Shared), Assert: SigIM | SigBC, Op: BusWrite},
		"Read>Write":        {Op: BusReadThenWrite},
	}
	for want, action := range cases {
		if got := action.String(); got != want {
			t.Errorf("action renders %q, want %q", got, want)
		}
		parsed, err := ParseLocalAction(want)
		if err != nil {
			t.Errorf("ParseLocalAction(%q): %v", want, err)
			continue
		}
		if parsed.String() != want {
			t.Errorf("parse-render of %q gave %q", want, parsed.String())
		}
	}
}

// TestSnoopActionRendering pins snoop cells including the abort form.
func TestSnoopActionRendering(t *testing.T) {
	cases := map[string]SnoopAction{
		"O,CH,DI":   {Next: Uncond(Owned), AssertCH: true, AssertDI: true},
		"I,DI":      {Next: Uncond(Invalid), AssertDI: true},
		"M,CH?,DI":  {Next: Uncond(Modified), CHDontCare: true, AssertDI: true},
		"CH:O/M,DI": {Next: CondCH(Owned, Modified), AssertDI: true},
		"S,CH,SL":   {Next: Uncond(Shared), AssertCH: true, AssertSL: true},
		"I":         {Next: Uncond(Invalid)},
		"BS;S,CA,W": {Abort: &Recovery{Next: Shared, Assert: SigCA}},
		"BS;E,CA,W": {Abort: &Recovery{Next: Exclusive, Assert: SigCA}},
	}
	for want, action := range cases {
		if got := action.String(); got != want {
			t.Errorf("snoop action renders %q, want %q", got, want)
		}
		parsed, err := ParseSnoopAction(want)
		if err != nil {
			t.Errorf("ParseSnoopAction(%q): %v", want, err)
			continue
		}
		if parsed.String() != want {
			t.Errorf("parse-render of %q gave %q", want, parsed.String())
		}
	}
}

// TestParseCells covers multi-alternative cells and the dash.
func TestParseCells(t *testing.T) {
	alts, err := ParseLocalCell("CH:O/M,CA,IM,BC,W or M,CA,IM")
	if err != nil || len(alts) != 2 {
		t.Fatalf("ParseLocalCell: %v, %d alternatives", err, len(alts))
	}
	if alts[0].Op != BusWrite || alts[1].Op != BusAddrOnly {
		t.Errorf("alternatives parsed wrong: %v", alts)
	}
	if alts, err := ParseLocalCell("-"); err != nil || alts != nil {
		t.Errorf("dash cell: %v, %v", alts, err)
	}
	if alts, err := ParseSnoopCell("S,CH,SL or I"); err != nil || len(alts) != 2 {
		t.Errorf("snoop cell: %v, %v", alts, err)
	}
	if _, err := ParseLocalCell("Q,CA"); err == nil {
		t.Error("junk state accepted")
	}
	if _, err := ParseSnoopCell("S,XX"); err == nil {
		t.Error("junk token accepted")
	}
}

// genLocalAction builds random-but-well-formed local actions for the
// round-trip property.
func genLocalAction(r *rand.Rand) LocalAction {
	if r.Intn(8) == 0 {
		return LocalAction{Op: BusReadThenWrite}
	}
	states := []State{Modified, Owned, Exclusive, Shared, Invalid}
	a := LocalAction{
		Next: CondState{
			OnCH: states[r.Intn(len(states))],
			NoCH: states[r.Intn(len(states))],
		},
	}
	if r.Intn(2) == 0 {
		a.Assert |= SigCA
	}
	switch r.Intn(4) {
	case 0:
		a.Op = BusNone
	case 1:
		a.Op = BusRead
	case 2:
		a.Op = BusWrite
	case 3:
		a.Assert |= SigIM
		a.Op = BusAddrOnly
	}
	if a.Op == BusWrite && r.Intn(2) == 0 {
		a.Assert |= SigIM
	}
	switch {
	case a.Op == BusWrite && r.Intn(3) == 0:
		a.Assert |= SigBC
	case a.Op == BusWrite && r.Intn(3) == 0:
		a.BCOptional = true
	}
	return a
}

// TestLocalActionRoundTripProperty: String∘Parse is the identity on
// well-formed actions.
func TestLocalActionRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a := genLocalAction(r)
		parsed, err := ParseLocalAction(a.String())
		if err != nil {
			t.Fatalf("ParseLocalAction(%q): %v", a.String(), err)
		}
		if parsed.String() != a.String() {
			t.Fatalf("round trip %q -> %q", a.String(), parsed.String())
		}
	}
}

// TestSnoopEqualSemantics: CHDontCare matches any CH behaviour when not
// strict.
func TestSnoopEqualSemantics(t *testing.T) {
	dontCare := SnoopAction{Next: Uncond(Modified), CHDontCare: true, AssertDI: true}
	asserts := SnoopAction{Next: Uncond(Modified), AssertCH: true, AssertDI: true}
	silent := SnoopAction{Next: Uncond(Modified), AssertDI: true}
	if !equalSnoop(dontCare, asserts, false) || !equalSnoop(dontCare, silent, false) {
		t.Error("CH? should match both CH behaviours loosely")
	}
	if equalSnoop(dontCare, asserts, true) {
		t.Error("strict comparison should distinguish CH? from CH")
	}
	other := SnoopAction{Next: Uncond(Owned), AssertDI: true}
	if equalSnoop(dontCare, other, false) {
		t.Error("different result states must not match")
	}
}

// TestBusOpStrings keeps the data-phase notation stable.
func TestBusOpStrings(t *testing.T) {
	want := map[BusOp]string{
		BusNone: "", BusRead: "R", BusWrite: "W",
		BusAddrOnly: "addr", BusReadThenWrite: "Read>Write",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d renders %q, want %q", op, op.String(), s)
		}
	}
}

// TestRecoveryValue ensures Recovery compares by value (used by the
// validator's equality checks).
func TestRecoveryValue(t *testing.T) {
	a := Recovery{Next: Shared, Assert: SigCA}
	b := Recovery{Next: Shared, Assert: SigCA}
	if !reflect.DeepEqual(a, b) {
		t.Error("identical recoveries not equal")
	}
}

// TestCondStateQuick: Resolve is consistent with the pair.
func TestCondStateQuick(t *testing.T) {
	f := func(on, no uint8) bool {
		c := CondState{OnCH: State(on % 5), NoCH: State(no % 5)}
		return c.Resolve(true) == c.OnCH && c.Resolve(false) == c.NoCH &&
			c.Conditional() == (c.OnCH != c.NoCH)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
