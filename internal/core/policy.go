package core

// Policy is the decision procedure of one board: for each (state, event)
// cell it picks the action the board takes. §3.4 of the paper allows any
// board to pick any action permitted by the class, statically or
// dynamically ("it would introduce no errors if a board were to select
// an action at each instant from the available set using a random number
// generator or a selection algorithm such as round robin") — so a Policy
// may return a different legal choice on every call.
//
// Implementations must be safe for concurrent use: a cache's snoop path
// (driven by the bus) and its processor path may consult the policy from
// different goroutines.
type Policy interface {
	// Name identifies the protocol for reports and tables.
	Name() string
	// Variant describes the kind of client the policy drives.
	Variant() Variant
	// Table returns the protocol's transition table: every alternative
	// the policy may ever choose, in preference order. Used for class
	// validation and table regeneration.
	Table() *Table
	// ChooseLocal picks the action for a local event. ok is false for
	// the tables' "—" (not a legal case).
	ChooseLocal(s State, e LocalEvent) (LocalAction, bool)
	// ChooseSnoop picks the action for a snooped bus event.
	ChooseSnoop(s State, e BusEvent) (SnoopAction, bool)
}

// RecencyAware is an optional Policy refinement from §5.2: "have a
// cache examine the replacement status of a line written by another
// cache. If the line is quite recently used (e.g. most recently used
// element of two element set), it can be updated, and if it is nearing
// time for replacement (e.g. least recently used element of two element
// set), it can be discarded." A cache consults ChooseSnoopRecency
// instead of ChooseSnoop when the policy implements it, passing whether
// the snooped line is recently used within its set.
type RecencyAware interface {
	ChooseSnoopRecency(s State, e BusEvent, recentlyUsed bool) (SnoopAction, bool)
}
