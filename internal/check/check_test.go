package check

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"futurebus/internal/bus"
	"futurebus/internal/cache"
	"futurebus/internal/core"
	"futurebus/internal/memory"
	"futurebus/internal/protocols"
)

const lineSize = 32

// TestShadowMergesWords: the golden image accumulates word stores.
func TestShadowMergesWords(t *testing.T) {
	s := NewShadow(lineSize)
	s.OnWrite(3, 0, 0x11)
	s.OnWrite(3, 2, 0x33)
	s.OnWrite(3, 0, 0x12) // overwrite
	line := s.Line(3)
	if line[0] != 0x12 || line[8] != 0x33 {
		t.Errorf("line = %x", line[:12])
	}
	if s.Writes() != 3 {
		t.Errorf("writes = %d", s.Writes())
	}
	if got := s.Line(99); !bytes.Equal(got, make([]byte, lineSize)) {
		t.Errorf("unwritten line = %x", got)
	}
	if lines := s.Lines(); len(lines) != 1 || lines[0] != 3 {
		t.Errorf("lines = %v", lines)
	}
}

// TestShadowConcurrent: the hook is safe under concurrent writers (it
// is called from many cache goroutines).
func TestShadowConcurrent(t *testing.T) {
	s := NewShadow(lineSize)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.OnWrite(bus.Addr(g), i%8, uint32(i))
			}
		}(g)
	}
	wg.Wait()
	if s.Writes() != 8000 {
		t.Errorf("writes = %d", s.Writes())
	}
}

// rig builds a real two-cache system for end-to-end checker tests.
func rig(t *testing.T, p0, p1 core.Policy) (*bus.Bus, *memory.Memory, *cache.Cache, *cache.Cache, *Checker) {
	t.Helper()
	mem := memory.New(lineSize)
	b := bus.New(mem, bus.Config{LineSize: lineSize})
	shadow := NewShadow(lineSize)
	cfg := cache.Config{Sets: 4, Ways: 2, OnWrite: shadow.OnWrite}
	c0 := cache.New(0, b, p0, cfg)
	c1 := cache.New(1, b, p1, cfg)
	checker := &Checker{Caches: []LineSource{c0, c1}, Memory: mem, Shadow: shadow}
	return b, mem, c0, c1, checker
}

// TestCleanSystemPasses: a correctly-driven system has no violations.
func TestCleanSystemPasses(t *testing.T) {
	_, _, c0, c1, checker := rig(t, protocols.MOESI(), protocols.Dragon())
	for i := 0; i < 50; i++ {
		addr := bus.Addr(i % 6)
		if err := c0.WriteWord(addr, i%8, uint32(i+1)); err != nil {
			t.Fatal(err)
		}
		if _, err := c1.ReadWord(addr, i%8); err != nil {
			t.Fatal(err)
		}
		if err := c1.WriteWord(addr, (i+1)%8, uint32(i+100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := checker.MustPass(); err != nil {
		t.Fatal(err)
	}
}

// evilPolicy claims M on every read miss regardless of CH — two caches
// both end up "exclusive", the textbook coherence bug.
type evilPolicy struct{ core.Policy }

func newEvil() core.Policy { return &evilPolicy{Policy: protocols.MOESI()} }

func (p *evilPolicy) Name() string { return "evil" }

func (p *evilPolicy) ChooseLocal(s core.State, e core.LocalEvent) (core.LocalAction, bool) {
	if s == core.Invalid && e == core.LocalRead {
		a, err := core.ParseLocalAction("M,CA,R")
		if err != nil {
			panic(err)
		}
		return a, true
	}
	return p.Policy.ChooseLocal(s, e)
}

// ChooseSnoop keeps stale copies alive on column 5 — combined with the
// M-miss above, this manufactures duplicate exclusivity.
func (p *evilPolicy) ChooseSnoop(s core.State, e core.BusEvent) (core.SnoopAction, bool) {
	if e == core.BusCacheRead && s.Valid() {
		cell := "S,CH"
		if s.OwnedCopy() {
			// Pretend to stay exclusive owner without intervening.
			cell = "M,CH?"
		}
		a, err := core.ParseSnoopAction(cell)
		if err != nil {
			panic(err)
		}
		return a, true
	}
	return p.Policy.ChooseSnoop(s, e)
}

// TestCheckerDetectsDuplicateExclusivity: the evil policy produces two
// caches claiming M/E on one line, and the checker reports it.
func TestCheckerDetectsDuplicateExclusivity(t *testing.T) {
	_, _, c0, c1, checker := rig(t, newEvil(), newEvil())
	// c0 loads the line as M (lying), then c1 read-misses: c0 snoops
	// with "M,CH?" (refusing to supply or demote) and c1 also installs
	// M. Memory serves stale zeroes to c1.
	if err := c0.WriteWord(1, 0, 0xAA); err != nil { // miss→M (evil read not used: write uses MOESI RFO)
		t.Fatal(err)
	}
	if _, err := c1.ReadWord(1, 0); err != nil {
		t.Fatal(err)
	}
	vs := checker.Check()
	if len(vs) == 0 {
		t.Fatal("duplicate exclusivity not detected")
	}
	var text []string
	for _, v := range vs {
		text = append(text, v.String())
	}
	joined := strings.Join(text, "\n")
	if !strings.Contains(joined, "exclusivity") && !strings.Contains(joined, "owned by") {
		t.Errorf("unexpected violations:\n%s", joined)
	}
	if err := checker.MustPass(); err == nil {
		t.Error("MustPass passed a broken system")
	}
}

// TestCheckerDetectsGoldenMismatch: writing memory behind the system's
// back breaks the golden-image invariant.
func TestCheckerDetectsGoldenMismatch(t *testing.T) {
	_, mem, c0, _, checker := rig(t, protocols.MOESI(), protocols.MOESI())
	if err := c0.WriteWord(2, 0, 0x77); err != nil {
		t.Fatal(err)
	}
	if err := c0.Flush(2); err != nil {
		t.Fatal(err)
	}
	// Corrupt memory directly (a "board" writing without the bus).
	mem.WriteLine(2, make([]byte, lineSize))
	vs := checker.Check()
	found := false
	for _, v := range vs {
		if strings.Contains(v.Reason, "golden") {
			found = true
		}
	}
	if !found {
		t.Errorf("golden mismatch not detected: %v", vs)
	}
}

// TestCheckerDetectsStaleMemoryWithoutOwner: an S copy differing from
// memory with no owner anywhere is a lost write-back.
func TestCheckerDetectsStaleMemoryWithoutOwner(t *testing.T) {
	_, mem, c0, _, checker := rig(t, protocols.MOESI(), protocols.MOESI())
	if _, err := c0.ReadWord(4, 0); err != nil {
		t.Fatal(err)
	}
	// Memory changes under a clean E copy.
	line := make([]byte, lineSize)
	line[0] = 0xEE
	mem.WriteLine(4, line)
	vs := checker.Check()
	if len(vs) == 0 {
		t.Fatal("stale unowned copy not detected")
	}
}

// TestViolationString: locations are human-readable.
func TestViolationString(t *testing.T) {
	v := Violation{Addr: 0x40, Reason: "broken"}
	if got := v.String(); !strings.Contains(got, "0x40") || !strings.Contains(got, "broken") {
		t.Errorf("violation renders %q", got)
	}
}
