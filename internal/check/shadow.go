// Package check verifies the consistency criterion of the paper at
// runtime: the shared memory image — "the union of all valid data
// corresponding to every location of the system address space", equally
// "the set of all owned data; main memory is the default owner"
// (§3.1.1, §3.1.3) — must be single-valued and must equal what the
// program actually wrote.
package check

import (
	"encoding/binary"
	"sync"

	"futurebus/internal/bus"
)

// Shadow maintains the golden image: the value every line should have
// according to the writes the processors performed, applied in their
// global visibility order. Caches and uncached masters report each
// write through their OnWrite hooks at the moment it becomes visible
// (under the writer's directory lock or the bus), which is exactly the
// order the protocols serialise writes in.
type Shadow struct {
	lineSize int

	mu     sync.Mutex
	lines  map[bus.Addr][]byte
	writes int64
}

// NewShadow creates a golden image for the given line size. Lines start
// zeroed, matching main memory at power-on.
func NewShadow(lineSize int) *Shadow {
	return &Shadow{lineSize: lineSize, lines: make(map[bus.Addr][]byte)}
}

// OnWrite records one word store; it has the signature cache.Config's
// OnWrite hook expects.
func (s *Shadow) OnWrite(addr bus.Addr, wordIdx int, val uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	line, ok := s.lines[addr]
	if !ok {
		line = make([]byte, s.lineSize)
		s.lines[addr] = line
	}
	binary.LittleEndian.PutUint32(line[wordIdx*4:], val)
	s.writes++
}

// Line returns the golden value of a line (zeroes if never written).
func (s *Shadow) Line(addr bus.Addr) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if line, ok := s.lines[addr]; ok {
		return append([]byte(nil), line...)
	}
	return make([]byte, s.lineSize)
}

// Lines returns the set of line addresses ever written.
func (s *Shadow) Lines() []bus.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]bus.Addr, 0, len(s.lines))
	for addr := range s.lines {
		out = append(out, addr)
	}
	return out
}

// Writes returns the total number of stores recorded.
func (s *Shadow) Writes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes
}
