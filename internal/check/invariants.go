package check

import (
	"bytes"
	"fmt"
	"sort"

	"futurebus/internal/bus"
	"futurebus/internal/core"
)

// LineSource is any directory the checker can inspect: a plain cache, a
// sector cache, or a hierarchy bridge store.
type LineSource interface {
	ID() int
	ForEachLine(fn func(addr bus.Addr, s core.State, data []byte))
}

// Violation is one detected breach of the consistency criterion.
type Violation struct {
	Addr   bus.Addr
	Reason string
}

func (v Violation) String() string {
	return fmt.Sprintf("line %#x: %s", uint64(v.Addr), v.Reason)
}

// copyInfo is one cache's view of a line.
type copyInfo struct {
	cacheID int
	state   core.State
	data    []byte
}

// MemoryImage is the checker's view of main memory: any store that can
// produce the current image of a line — a single module
// (*memory.Memory) or an interleaved set of shards (*memory.Sharded),
// which routes the Peek to the line's home module.
type MemoryImage interface {
	Peek(addr bus.Addr) []byte
}

// Checker verifies the MOESI invariants over a quiesced system — no
// transactions may be in flight while Check runs (run it at barriers or
// after all processors stop).
type Checker struct {
	Caches []LineSource
	Memory MemoryImage
	// Shadow, when non-nil, additionally checks the image against the
	// golden record of every store performed.
	Shadow *Shadow
}

// Check runs all invariants and returns every violation found.
//
// The invariants, straight from §3.1:
//
//  1. Ownership is unique: at most one cache holds a line in M or O
//     ("all data is said to be owned uniquely either by one and only
//     one cache or by main memory").
//  2. Exclusivity is real: if a cache holds a line in M or E, no other
//     cache holds it at all ("exclusive data is cached data that is
//     contained in one and only one cache").
//  3. The image is single-valued: every valid cached copy of a line is
//     identical (a write either updates or invalidates all other
//     copies, so divergent copies mean a lost update).
//  4. Unowned implies memory-valid: if no cache owns the line, memory
//     holds the image, so every valid copy must match memory. (On the
//     Futurebus broadcast writes update memory, which is what makes
//     this stronger-than-Dragon property hold; see §4.2.)
//  5. E matches memory: "exclusive data must match the copy in main
//     memory" (§3.1.2).
//  6. Golden: the image (owner's copy, or memory) equals the value the
//     program last wrote (Shadow).
func (c *Checker) Check() []Violation {
	var out []Violation
	byLine := make(map[bus.Addr][]copyInfo)
	for _, ca := range c.Caches {
		id := ca.ID()
		ca.ForEachLine(func(addr bus.Addr, s core.State, data []byte) {
			byLine[addr] = append(byLine[addr], copyInfo{cacheID: id, state: s, data: data})
		})
	}

	addrs := make([]bus.Addr, 0, len(byLine))
	for addr := range byLine {
		addrs = append(addrs, addr)
	}
	if c.Shadow != nil {
		for _, addr := range c.Shadow.Lines() {
			if _, ok := byLine[addr]; !ok {
				addrs = append(addrs, addr)
			}
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	for _, addr := range addrs {
		copies := byLine[addr]
		out = append(out, c.checkLine(addr, copies)...)
	}
	return out
}

func (c *Checker) checkLine(addr bus.Addr, copies []copyInfo) []Violation {
	var out []Violation
	bad := func(format string, args ...any) {
		out = append(out, Violation{Addr: addr, Reason: fmt.Sprintf(format, args...)})
	}

	var owners, exclusives []copyInfo
	for _, cp := range copies {
		if cp.state.OwnedCopy() {
			owners = append(owners, cp)
		}
		if cp.state.ExclusiveCopy() {
			exclusives = append(exclusives, cp)
		}
	}

	// 1. Unique ownership.
	if len(owners) > 1 {
		bad("owned by %d caches (%s)", len(owners), describe(owners))
	}
	// 2. Real exclusivity.
	if len(exclusives) > 0 && len(copies) > 1 {
		bad("cache %d claims exclusivity (%s) but %d caches hold copies",
			exclusives[0].cacheID, exclusives[0].state.Letter(), len(copies))
	}
	// 3. Single-valued image across caches.
	for _, cp := range copies[min(1, len(copies)):] {
		if !bytes.Equal(cp.data, copies[0].data) {
			bad("caches %d and %d hold divergent copies", copies[0].cacheID, cp.cacheID)
			break
		}
	}

	memLine := c.Memory.Peek(addr)
	// 4. Unowned implies memory-valid.
	if len(owners) == 0 {
		for _, cp := range copies {
			if !bytes.Equal(cp.data, memLine) {
				bad("no owner, but cache %d (%s) differs from memory", cp.cacheID, cp.state.Letter())
				break
			}
		}
	}
	// 5. E matches memory.
	for _, cp := range copies {
		if cp.state == core.Exclusive && !bytes.Equal(cp.data, memLine) {
			bad("cache %d holds E but differs from memory", cp.cacheID)
		}
	}
	// 6. Golden image.
	if c.Shadow != nil {
		want := c.Shadow.Line(addr)
		image := memLine
		if len(owners) > 0 {
			image = owners[0].data
		}
		if !bytes.Equal(image, want) {
			bad("image (%s) differs from golden record of writes", imageSource(owners))
		}
	}
	return out
}

func describe(copies []copyInfo) string {
	var b bytes.Buffer
	for i, cp := range copies {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "cache %d=%s", cp.cacheID, cp.state.Letter())
	}
	return b.String()
}

func imageSource(owners []copyInfo) string {
	if len(owners) == 0 {
		return "memory"
	}
	return fmt.Sprintf("owner cache %d", owners[0].cacheID)
}

// MustPass runs Check and returns an error summarising any violations.
func (c *Checker) MustPass() error {
	vs := c.Check()
	if len(vs) == 0 {
		return nil
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "consistency check failed with %d violations:", len(vs))
	for i, v := range vs {
		if i == 20 {
			fmt.Fprintf(&b, "\n  … and %d more", len(vs)-i)
			break
		}
		fmt.Fprintf(&b, "\n  %s", v)
	}
	return fmt.Errorf("%s", b.String())
}
