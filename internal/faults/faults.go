// Package faults injects protocol bugs for runtime-verification tests.
//
// It promotes the test-only evilPolicy pattern from internal/check into
// a reusable mutation layer: each fault is a policy wrapper that embeds
// a correct core.Policy and corrupts exactly one class of action — drop
// an invalidation, keep stale ownership, corrupt a snoop transition,
// skip a copy-back, refuse to intervene, or claim exclusivity on a
// shared miss. The Catalog names, for every fault, the invariant the
// runtime monitor (internal/obs/watch) must report when the fault runs
// under a shared workload; internal/sim's watch tests assert the full
// matrix across engines and shard counts.
//
// Fault wrappers are deliberately *not* validated against the class —
// they exist to be outside it.
package faults

import (
	"fmt"
	"sort"
	"strings"

	"futurebus/internal/core"
)

// Fault describes one injectable protocol bug.
type Fault struct {
	// Name selects the fault in Wrap and in the "proto+fault" CLI
	// syntax of fbsim.
	Name string
	// Expect is the invariant name (a watch.Invariant value) the
	// monitor must report when this fault is exercised by a workload
	// with read/write sharing.
	Expect string
	// Description says what the wrapper corrupts.
	Description string
}

type wrapper func(core.Policy) core.Policy

var catalog = []struct {
	Fault
	wrap wrapper
}{
	{
		Fault{
			Name:   "drop-inv",
			Expect: "real-exclusivity",
			Description: "unowned snoopers ignore read-for-ownership invalidations " +
				"(column 6), leaving stale readers next to the new exclusive owner",
		},
		func(p core.Policy) core.Policy { return &dropInv{p} },
	},
	{
		Fault{
			Name:   "stale-owner",
			Expect: "single-owner",
			Description: "an owner snooping a read-for-ownership supplies the data " +
				"but refuses to invalidate, so two caches end up owning the line",
		},
		func(p core.Policy) core.Policy { return &staleOwner{p} },
	},
	{
		Fault{
			Name:   "corrupt-snoop",
			Expect: "legal-snoop-action",
			Description: "an owner snooping a cache read demotes itself to S instead " +
				"of O — a transition outside its Table 2 column that silently " +
				"abandons ownership of a line memory no longer has",
		},
		func(p core.Policy) core.Policy { return &corruptSnoop{p} },
	},
	{
		Fault{
			Name:   "skip-copyback",
			Expect: "legal-local-action",
			Description: "dirty evictions drop the line silently instead of " +
				"writing it back, losing the only up-to-date copy",
		},
		func(p core.Policy) core.Policy { return &skipCopyback{p} },
	},
	{
		Fault{
			Name:   "mute-owner",
			Expect: "memory-valid-iff-no-owner",
			Description: "an owner snooping a read miss keeps its state but does " +
				"not intervene (no DI), so stale memory serves the reader",
		},
		func(p core.Policy) core.Policy { return &muteOwner{p} },
	},
	{
		Fault{
			Name:   "phantom-fill",
			Expect: "legal-local-action",
			Description: "read misses always install M, even when CH shows other " +
				"caches hold the line",
		},
		func(p core.Policy) core.Policy { return &phantomFill{p} },
	},
}

// Catalog returns every fault, sorted by name.
func Catalog() []Fault {
	out := make([]Fault, 0, len(catalog))
	for _, c := range catalog {
		out = append(out, c.Fault)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the fault names, sorted.
func Names() []string {
	out := make([]string, 0, len(catalog))
	for _, c := range catalog {
		out = append(out, c.Name)
	}
	sort.Strings(out)
	return out
}

// Wrap returns p with the named fault injected. An empty name returns p
// unchanged; an unknown name is an error.
func Wrap(name string, p core.Policy) (core.Policy, error) {
	if name == "" {
		return p, nil
	}
	for _, c := range catalog {
		if c.Name == name {
			return c.wrap(p), nil
		}
	}
	return nil, fmt.Errorf("unknown fault %q (have %s)", name, strings.Join(Names(), ", "))
}

// Split parses fbsim's "protocol+fault" syntax into its parts; a bare
// protocol name returns an empty fault.
func Split(spec string) (proto, fault string) {
	if i := strings.IndexByte(spec, '+'); i >= 0 {
		return spec[:i], spec[i+1:]
	}
	return spec, ""
}

func mustLocal(cell string) core.LocalAction {
	a, err := core.ParseLocalAction(cell)
	if err != nil {
		panic(err)
	}
	return a
}

func mustSnoop(cell string) core.SnoopAction {
	a, err := core.ParseSnoopAction(cell)
	if err != nil {
		panic(err)
	}
	return a
}

// dropInv: unowned valid snoopers keep their copy on column 6.
type dropInv struct{ core.Policy }

func (p *dropInv) Name() string { return p.Policy.Name() + "+drop-inv" }

func (p *dropInv) ChooseSnoop(s core.State, e core.BusEvent) (core.SnoopAction, bool) {
	if e == core.BusCacheRFO && s.Valid() && !s.OwnedCopy() {
		return mustSnoop(s.Letter() + ",CH"), true
	}
	return p.Policy.ChooseSnoop(s, e)
}

// staleOwner: owners intervene on column 6 but keep their state.
type staleOwner struct{ core.Policy }

func (p *staleOwner) Name() string { return p.Policy.Name() + "+stale-owner" }

func (p *staleOwner) ChooseSnoop(s core.State, e core.BusEvent) (core.SnoopAction, bool) {
	if e == core.BusCacheRFO && s.OwnedCopy() {
		return mustSnoop(s.Letter() + ",CH?,DI"), true
	}
	return p.Policy.ChooseSnoop(s, e)
}

// corruptSnoop: owners snooping a cache read land in S instead of O.
// S keeps every later table cell defined, so the bug survives long
// enough for the monitor — not a substrate panic — to call it out.
type corruptSnoop struct{ core.Policy }

func (p *corruptSnoop) Name() string { return p.Policy.Name() + "+corrupt-snoop" }

func (p *corruptSnoop) ChooseSnoop(s core.State, e core.BusEvent) (core.SnoopAction, bool) {
	if e == core.BusCacheRead && s.OwnedCopy() {
		return mustSnoop("S,CH,DI"), true
	}
	return p.Policy.ChooseSnoop(s, e)
}

// skipCopyback: dirty flushes discard the line silently.
type skipCopyback struct{ core.Policy }

func (p *skipCopyback) Name() string { return p.Policy.Name() + "+skip-copyback" }

func (p *skipCopyback) ChooseLocal(s core.State, e core.LocalEvent) (core.LocalAction, bool) {
	if e == core.Flush && s.OwnedCopy() {
		return mustLocal("I"), true
	}
	return p.Policy.ChooseLocal(s, e)
}

// muteOwner: owners snooping a cache read keep quiet ownership — CH but
// no DI — so memory (stale) supplies the reader.
type muteOwner struct{ core.Policy }

func (p *muteOwner) Name() string { return p.Policy.Name() + "+mute-owner" }

func (p *muteOwner) ChooseSnoop(s core.State, e core.BusEvent) (core.SnoopAction, bool) {
	if e == core.BusCacheRead && s.OwnedCopy() {
		return mustSnoop("O,CH"), true
	}
	return p.Policy.ChooseSnoop(s, e)
}

// phantomFill: every read miss installs M regardless of CH.
type phantomFill struct{ core.Policy }

func (p *phantomFill) Name() string { return p.Policy.Name() + "+phantom-fill" }

func (p *phantomFill) ChooseLocal(s core.State, e core.LocalEvent) (core.LocalAction, bool) {
	if s == core.Invalid && e == core.LocalRead {
		return mustLocal("M,CA,R"), true
	}
	return p.Policy.ChooseLocal(s, e)
}
