package faults

import (
	"testing"

	"futurebus/internal/core"
	"futurebus/internal/protocols"
)

func TestWrapUnknown(t *testing.T) {
	if _, err := Wrap("time-travel", protocols.MOESI()); err == nil {
		t.Fatal("unknown fault should error")
	}
}

func TestWrapEmptyIsIdentity(t *testing.T) {
	p := protocols.MOESI()
	got, err := Wrap("", p)
	if err != nil || got != p {
		t.Fatalf("empty fault should return the policy unchanged (%v, %v)", got, err)
	}
}

func TestSplit(t *testing.T) {
	for _, tc := range []struct{ in, proto, fault string }{
		{"moesi", "moesi", ""},
		{"moesi+drop-inv", "moesi", "drop-inv"},
		{"berkeley+skip-copyback", "berkeley", "skip-copyback"},
	} {
		p, f := Split(tc.in)
		if p != tc.proto || f != tc.fault {
			t.Errorf("Split(%q) = %q,%q want %q,%q", tc.in, p, f, tc.proto, tc.fault)
		}
	}
}

func TestCatalogCoversEveryWrapper(t *testing.T) {
	cat := Catalog()
	if len(cat) != len(Names()) || len(cat) == 0 {
		t.Fatalf("catalog/names mismatch: %d vs %d", len(cat), len(Names()))
	}
	for _, f := range cat {
		p, err := Wrap(f.Name, protocols.MOESI())
		if err != nil {
			t.Fatalf("Wrap(%s): %v", f.Name, err)
		}
		if want := protocols.MOESI().Name() + "+" + f.Name; p.Name() != want {
			t.Errorf("wrapped name %q, want %q", p.Name(), want)
		}
		if f.Expect == "" || f.Description == "" {
			t.Errorf("fault %s missing Expect/Description", f.Name)
		}
	}
}

// TestWrappersCorruptOnlyTheirCell: each wrapper changes the targeted
// decision and delegates everything else to the base policy.
func TestWrappersCorruptOnlyTheirCell(t *testing.T) {
	base := protocols.MOESI()

	p, _ := Wrap("drop-inv", base)
	a, ok := p.ChooseSnoop(core.Shared, core.BusCacheRFO)
	if !ok || a.Next.NoCH != core.Shared {
		t.Errorf("drop-inv should keep S on col 6: %v", a)
	}
	if a, _ := p.ChooseSnoop(core.Shared, core.BusCacheRead); a.Next.NoCH != core.Shared {
		t.Errorf("drop-inv should not touch col 5: %v", a)
	}

	p, _ = Wrap("stale-owner", base)
	if a, _ := p.ChooseSnoop(core.Modified, core.BusCacheRFO); a.Next.NoCH != core.Modified || !a.AssertDI {
		t.Errorf("stale-owner should keep M with DI on col 6: %v", a)
	}

	p, _ = Wrap("corrupt-snoop", base)
	if a, _ := p.ChooseSnoop(core.Modified, core.BusCacheRead); a.Next.NoCH != core.Shared {
		t.Errorf("corrupt-snoop should land in S on col 5: %v", a)
	}

	p, _ = Wrap("skip-copyback", base)
	if a, _ := p.ChooseLocal(core.Modified, core.Flush); a.NeedsBus() || a.Next.NoCH != core.Invalid {
		t.Errorf("skip-copyback should drop M silently: %v", a)
	}
	if a, _ := p.ChooseLocal(core.Shared, core.Flush); a.NeedsBus() {
		t.Errorf("clean flush should stay silent: %v", a)
	}

	p, _ = Wrap("mute-owner", base)
	if a, _ := p.ChooseSnoop(core.Modified, core.BusCacheRead); a.AssertDI {
		t.Errorf("mute-owner must not intervene: %v", a)
	}

	p, _ = Wrap("phantom-fill", base)
	if a, _ := p.ChooseLocal(core.Invalid, core.LocalRead); a.Next.OnCH != core.Modified {
		t.Errorf("phantom-fill should install M: %v", a)
	}
}
