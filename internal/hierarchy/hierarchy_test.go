package hierarchy

import (
	"strings"
	"testing"

	"futurebus/internal/bus"
	"futurebus/internal/core"
	"futurebus/internal/workload"
)

func smallConfig(clusters, procs int) Config {
	return Config{
		Clusters:        clusters,
		ProcsPerCluster: procs,
		CacheSets:       8,
		CacheWays:       2,
		Shadow:          true,
	}
}

func mustNew(t *testing.T, cfg Config) *System {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// abGens builds per-processor generators; shared lines are shared
// ACROSS clusters, exercising the global level.
func abGens(t *testing.T, sys *System, pShared float64, seed uint64) [][]workload.Generator {
	t.Helper()
	out := make([][]workload.Generator, len(sys.Clusters))
	proc := 0
	for ci, cl := range sys.Clusters {
		for range cl.Caches {
			g, err := workload.NewModel(workload.Model{
				Proc:         proc,
				SharedLines:  24,
				PrivateLines: 32,
				WordsPerLine: sys.Global.LineSize() / 4,
				PShared:      pShared,
				PWrite:       0.3,
				Locality:     0.3,
			}, seed)
			if err != nil {
				t.Fatal(err)
			}
			out[ci] = append(out[ci], g)
			proc++
		}
	}
	return out
}

// TestBasicCrossClusterFlow walks one line across clusters by hand.
func TestBasicCrossClusterFlow(t *testing.T) {
	sys := mustNew(t, smallConfig(2, 2))
	a := sys.Proc(0, 0)
	b := sys.Proc(1, 0)
	const line = bus.Addr(0x100)

	// Cluster 0 writes: miss → Read>Write; the bridge's CH pins the
	// line to S, the broadcast write makes the writer O.
	if err := a.WriteWord(line, 0, 0xAA); err != nil {
		t.Fatal(err)
	}
	if st := a.State(line); st != core.Owned {
		t.Fatalf("writer state %s (cluster caches must never hold E/M)", st)
	}
	// The write was absorbed: bridge 0 owns the line globally.
	if st := sys.Clusters[0].Bridge.Store().State(line); !st.OwnedCopy() {
		t.Fatalf("bridge 0 state %s, want owned", st)
	}

	// Cluster 1 reads: its bridge fetches globally; bridge 0 intervenes.
	v, err := b.ReadWord(line, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xAA {
		t.Fatalf("cross-cluster read got %#x", v)
	}
	if st := sys.Clusters[1].Bridge.Store().State(line); !st.Valid() {
		t.Fatalf("bridge 1 state %s", st)
	}

	// Cluster 1 writes: bridge 1 takes global M; bridge 0 must be
	// invalidated AND must clear cluster 0's copies synchronously.
	if err := b.WriteWord(line, 1, 0xBB); err != nil {
		t.Fatal(err)
	}
	if sys.Clusters[0].Bridge.Store().Contains(line) {
		t.Fatal("bridge 0 still holds the line after a foreign write")
	}
	if a.Contains(line) {
		t.Fatal("cluster 0 cache still holds the line (stale copy!)")
	}

	// Cluster 0 reads back: fresh fetch sees both words.
	if v, err := a.ReadWord(line, 1); err != nil || v != 0xBB {
		t.Fatalf("read back %#x, %v", v, err)
	}
	if v, err := a.ReadWord(line, 0); err != nil || v != 0xAA {
		t.Fatalf("read back word0 %#x, %v", v, err)
	}

	if err := sys.MustPass(); err != nil {
		t.Fatal(err)
	}
}

// TestIntraClusterSharingStaysLocal: two caches in one cluster sharing
// a line generate no global traffic beyond the initial fetch.
func TestIntraClusterSharingStaysLocal(t *testing.T) {
	sys := mustNew(t, smallConfig(2, 2))
	a, b := sys.Proc(0, 0), sys.Proc(0, 1)
	const line = bus.Addr(0x200)

	if err := a.WriteWord(line, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadWord(line, 0); err != nil {
		t.Fatal(err)
	}
	globalBefore := sys.Global.Stats().Transactions
	// A ping-pong burst inside the cluster.
	for i := 0; i < 50; i++ {
		if err := a.WriteWord(line, 0, uint32(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := b.ReadWord(line, 0); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteWord(line, 1, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Broadcast writes inside the cluster reach the bridge (its copy
	// must stay current) but the bridge holds global M after the first
	// absorb, so nothing else appears on the global bus.
	globalAfter := sys.Global.Stats().Transactions
	if grew := globalAfter - globalBefore; grew != 0 {
		t.Errorf("intra-cluster sharing leaked %d global transactions", grew)
	}
	if err := sys.MustPass(); err != nil {
		t.Fatal(err)
	}
}

// TestHierarchyWorkloadConsistent: the full two-level machine stays
// consistent under a mixed shared workload.
func TestHierarchyWorkloadConsistent(t *testing.T) {
	sys := mustNew(t, smallConfig(3, 2))
	if err := Run(sys, abGens(t, sys, 0.4, 11), 1500); err != nil {
		t.Fatal(err)
	}
	st := sys.CollectStats()
	if st.LocalTransactions == 0 || st.GlobalTransactions == 0 {
		t.Errorf("stats: %+v", st)
	}
	// The tree's point: local work dominates global work.
	if st.LocalTransactions <= st.GlobalTransactions {
		t.Errorf("local %d not above global %d", st.LocalTransactions, st.GlobalTransactions)
	}
}

// TestHierarchyConcurrentConsistent: goroutine per processor across the
// tree (run with -race).
func TestHierarchyConcurrentConsistent(t *testing.T) {
	sys := mustNew(t, smallConfig(2, 2))
	if err := RunConcurrent(sys, abGens(t, sys, 0.4, 23), 1000); err != nil {
		t.Fatal(err)
	}
}

// TestClusterPolicyValidation: invalidate-style protocols are rejected
// for clusters.
func TestClusterPolicyValidation(t *testing.T) {
	cfg := smallConfig(1, 1)
	for _, bad := range []string{"moesi-invalidate", "berkeley", "illinois", "moesi"} {
		cfg.ClusterProtocol = bad
		if _, err := New(cfg); err == nil {
			t.Errorf("cluster protocol %q accepted", bad)
		}
	}
	for _, good := range []string{"moesi-update", "dragon"} {
		cfg.ClusterProtocol = good
		if _, err := New(cfg); err != nil {
			t.Errorf("cluster protocol %q rejected: %v", good, err)
		}
	}
}

// TestBridgeInclusionEviction: when the bridge store evicts a line, the
// cluster's copies go with it.
func TestBridgeInclusionEviction(t *testing.T) {
	cfg := smallConfig(1, 1)
	cfg.BridgeSets = 2 // tiny bridge: 2 sets × 4 ways
	cfg.BridgeWays = 4
	cfg.CacheSets = 8
	cfg.CacheWays = 2
	sys := mustNew(t, cfg)
	c := sys.Proc(0, 0)

	// Touch more lines than one bridge set holds; all map to bridge
	// set 0 (addresses are multiples of 2 = BridgeSets).
	lines := []bus.Addr{0, 2, 4, 6, 8}
	for _, ln := range lines {
		if err := c.WriteWord(ln, 0, uint32(ln)+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Err(); err != nil {
		t.Fatal(err)
	}
	inclusions := sys.Clusters[0].Bridge.Stats().Inclusions
	if inclusions == 0 {
		t.Fatal("no inclusion evictions despite bridge pressure")
	}
	if err := sys.MustPass(); err != nil {
		t.Fatal(err)
	}
	// The evicted lines' data must still be correct when re-read.
	for _, ln := range lines {
		v, err := c.ReadWord(ln, 0)
		if err != nil {
			t.Fatal(err)
		}
		if v != uint32(ln)+1 {
			t.Fatalf("line %#x = %d after inclusion eviction", uint64(ln), v)
		}
	}
}

// TestClusterCheckerDetectsStaleCopy: corrupting a bridge line behind
// the system's back trips the currency invariant.
func TestClusterCheckerDetectsStaleCopy(t *testing.T) {
	sys := mustNew(t, smallConfig(1, 1))
	c := sys.Proc(0, 0)
	if err := c.WriteWord(3, 0, 7); err != nil {
		t.Fatal(err)
	}
	// Absorb a divergent line into the bridge directly.
	sys.Global.Acquire(3, -1)
	err := sys.Clusters[0].Bridge.Store().AbsorbLineHeld(3, make([]byte, sys.Global.LineSize()))
	sys.Global.Release(3)
	if err != nil {
		t.Fatal(err)
	}
	vs := sys.CheckClusters()
	found := false
	for _, v := range vs {
		if strings.Contains(v.Reason, "bridge stale") {
			found = true
		}
	}
	if !found {
		t.Errorf("stale bridge copy not detected: %v", vs)
	}
}

// TestMixedClusterProtocols: different clusters may run different
// update-style members; the tree stays consistent at both levels.
func TestMixedClusterProtocols(t *testing.T) {
	cfg := smallConfig(2, 2)
	cfg.ClusterProtocols = []string{"dragon", "moesi-update"}
	sys := mustNew(t, cfg)
	if err := Run(sys, abGens(t, sys, 0.4, 31), 1200); err != nil {
		t.Fatal(err)
	}
	// A wrong-length protocol list is rejected.
	cfg.ClusterProtocols = []string{"dragon"}
	if _, err := New(cfg); err == nil {
		t.Error("mismatched cluster protocol list accepted")
	}
}

// TestHierarchyAccessors: stats plumbing and the global checker.
func TestHierarchyAccessors(t *testing.T) {
	sys := mustNew(t, smallConfig(2, 1))
	if err := Run(sys, abGens(t, sys, 0.3, 5), 400); err != nil {
		t.Fatal(err)
	}
	st := sys.CollectStats()
	if st.GlobalFetches == 0 || st.Absorbs == 0 {
		t.Errorf("bridge stats empty: %+v", st)
	}
	bs := sys.Clusters[0].Bridge.Stats()
	if bs.LocalFills+bs.GlobalFetches == 0 {
		t.Errorf("bridge fill stats empty: %+v", bs)
	}
	if err := sys.GlobalChecker().MustPass(); err != nil {
		t.Fatal(err)
	}
	if sys.Proc(1, 0) != sys.Clusters[1].Caches[0] {
		t.Error("Proc accessor wrong")
	}
	if len(sys.Caches()) != 2 {
		t.Errorf("Caches() = %d", len(sys.Caches()))
	}
	// Generator count mismatches are rejected by both drivers.
	if err := Run(sys, nil, 1); err == nil {
		t.Error("mismatched generators accepted")
	}
	if err := RunConcurrent(sys, nil, 1); err == nil {
		t.Error("mismatched generators accepted (concurrent)")
	}
}

// TestHierarchyConfigErrors: invalid shapes are rejected.
func TestHierarchyConfigErrors(t *testing.T) {
	if _, err := New(Config{Clusters: 0, ProcsPerCluster: 1}); err == nil {
		t.Error("zero clusters accepted")
	}
	if _, err := New(Config{Clusters: 1, ProcsPerCluster: 0}); err == nil {
		t.Error("zero processors accepted")
	}
}
