package hierarchy

import (
	"math"
	"testing"
)

// TestClusterModelRegions: the three address regions are disjoint and
// hit with the configured probabilities.
func TestClusterModelRegions(t *testing.T) {
	m := ClusterModel{
		Cluster: 1, Proc: 2,
		GlobalSharedLines: 8, ClusterSharedLines: 16, PrivateLines: 32,
		PGlobal: 0.1, PCluster: 0.3, PWrite: 0.25,
		WordsPerLine: 8,
	}
	g := m.NewGenerator(42)
	const n = 40000
	var global, cluster, private, writes int
	for i := 0; i < n; i++ {
		ref := g.Next()
		switch {
		case ref.Line >= globalBase:
			global++
			if ref.Line >= globalBase+8 {
				t.Fatalf("global line out of range: %#x", ref.Line)
			}
		case ref.Line >= clusterBase:
			cluster++
			if ref.Line < clusterBase+1<<20 || ref.Line >= clusterBase+1<<20+16 {
				t.Fatalf("cluster line out of range: %#x", ref.Line)
			}
		default:
			private++
		}
		if ref.Write {
			writes++
			if ref.Val == 0 {
				t.Fatal("zero write value")
			}
		}
		if ref.Word < 0 || ref.Word >= 8 {
			t.Fatalf("word out of range: %d", ref.Word)
		}
	}
	if got := float64(global) / n; math.Abs(got-0.1) > 0.01 {
		t.Errorf("global fraction %.3f", got)
	}
	if got := float64(cluster) / n; math.Abs(got-0.3) > 0.015 {
		t.Errorf("cluster fraction %.3f", got)
	}
	if got := float64(writes) / n; math.Abs(got-0.25) > 0.015 {
		t.Errorf("write fraction %.3f", got)
	}
}

// TestClusterModelIsolation: different clusters' cluster-shared and
// private regions never collide; the global region is common.
func TestClusterModelIsolation(t *testing.T) {
	mk := func(cluster, proc int) map[uint64]bool {
		m := ClusterModel{
			Cluster: cluster, Proc: proc,
			GlobalSharedLines: 4, ClusterSharedLines: 8, PrivateLines: 8,
			PGlobal: 0, PCluster: 0.5, PWrite: 0.2, WordsPerLine: 8,
		}
		g := m.NewGenerator(9)
		seen := map[uint64]bool{}
		for i := 0; i < 4000; i++ {
			seen[g.Next().Line] = true
		}
		return seen
	}
	a := mk(0, 0)
	b := mk(1, 0)
	for line := range a {
		if b[line] {
			t.Fatalf("clusters share non-global line %#x", line)
		}
	}
	c := mk(0, 1) // same cluster, different proc
	sharedAny := false
	for line := range a {
		if c[line] && line >= clusterBase {
			sharedAny = true
		}
		if c[line] && line < clusterBase {
			t.Fatalf("private line %#x shared between procs", line)
		}
	}
	if !sharedAny {
		t.Error("cluster-shared region not shared within the cluster")
	}
}
