package hierarchy

import (
	"fmt"
	"sync"

	"futurebus/internal/bus"
	"futurebus/internal/workload"
)

// Run drives every processor cache with its generator, round-robin, for
// refsPerProc references each, then verifies both levels of
// consistency. Generators index [cluster][proc].
func Run(sys *System, gens [][]workload.Generator, refsPerProc int) error {
	if len(gens) != len(sys.Clusters) {
		return fmt.Errorf("hierarchy: %d generator groups for %d clusters", len(gens), len(sys.Clusters))
	}
	for n := 0; n < refsPerProc; n++ {
		for ci, cl := range sys.Clusters {
			for pi, c := range cl.Caches {
				ref := gens[ci][pi].Next()
				var err error
				if ref.Write {
					err = c.WriteWord(bus.Addr(ref.Line), ref.Word, ref.Val)
				} else {
					_, err = c.ReadWord(bus.Addr(ref.Line), ref.Word)
				}
				if err != nil {
					return fmt.Errorf("hierarchy: cluster %d proc %d ref %s: %w", ci, pi, ref, err)
				}
				if err := sys.Err(); err != nil {
					return err
				}
			}
		}
	}
	return sys.MustPass()
}

// RunConcurrent drives every processor from its own goroutine (the
// shared arbiter serialises bus work across the whole tree), then
// verifies consistency. Use under the race detector in tests.
func RunConcurrent(sys *System, gens [][]workload.Generator, refsPerProc int) error {
	if len(gens) != len(sys.Clusters) {
		return fmt.Errorf("hierarchy: %d generator groups for %d clusters", len(gens), len(sys.Clusters))
	}
	var wg sync.WaitGroup
	errs := make([]error, len(sys.Clusters))
	for ci, cl := range sys.Clusters {
		wg.Add(1)
		go func(ci int, cl *Cluster) {
			defer wg.Done()
			var inner sync.WaitGroup
			perr := make([]error, len(cl.Caches))
			for pi, c := range cl.Caches {
				inner.Add(1)
				go func(pi int, c interface {
					ReadWord(bus.Addr, int) (uint32, error)
					WriteWord(bus.Addr, int, uint32) error
				}) {
					defer inner.Done()
					gen := gens[ci][pi]
					for n := 0; n < refsPerProc; n++ {
						ref := gen.Next()
						var err error
						if ref.Write {
							err = c.WriteWord(bus.Addr(ref.Line), ref.Word, ref.Val)
						} else {
							_, err = c.ReadWord(bus.Addr(ref.Line), ref.Word)
						}
						if err != nil {
							perr[pi] = err
							return
						}
					}
				}(pi, c)
			}
			inner.Wait()
			for _, err := range perr {
				if err != nil {
					errs[ci] = err
					return
				}
			}
		}(ci, cl)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return sys.MustPass()
}
