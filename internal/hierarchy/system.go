package hierarchy

import (
	"fmt"

	"futurebus/internal/bus"
	"futurebus/internal/cache"
	"futurebus/internal/check"
	"futurebus/internal/core"
	"futurebus/internal/memory"
	"futurebus/internal/obs"
	"futurebus/internal/protocols"
)

// Config assembles a two-level system.
type Config struct {
	// Clusters is the number of local buses.
	Clusters int
	// ProcsPerCluster is the number of processor caches per cluster.
	ProcsPerCluster int
	// ClusterProtocol names the protocol cluster caches run. It must be
	// an update-style class member (see validateClusterPolicy); empty
	// selects "moesi-update".
	ClusterProtocol string
	// ClusterProtocols optionally names a protocol per cluster
	// (overriding ClusterProtocol) — different clusters may run
	// different update-style members, the class's compatibility claim
	// applied per local bus.
	ClusterProtocols []string
	// LineSize is the system-wide line size (§5.1 applies across the
	// whole tree). 0 = bus.DefaultLineSize.
	LineSize int
	// CacheSets/CacheWays give the processor caches' geometry;
	// BridgeSets/BridgeWays the bridge stores' (bridges should be much
	// larger — inclusion means a bridge tracks its whole cluster).
	CacheSets, CacheWays   int
	BridgeSets, BridgeWays int
	// Shadow enables golden-image tracking.
	Shadow bool
	// Obs, when non-nil, instruments every bus, cache and memory in the
	// tree. Events tag the global bus as segment 0 and cluster i's
	// local bus as segment i+1.
	Obs *obs.Recorder
}

// Cluster is one local bus with its caches and bridge.
type Cluster struct {
	ID     int
	Local  *bus.Bus
	Bridge *Bridge
	Caches []*cache.Cache
}

// System is the assembled two-level machine.
type System struct {
	Global   *bus.Bus
	Memory   *memory.Memory
	Clusters []*Cluster
	Shadow   *check.Shadow
	arbiter  *bus.Arbiter
}

// New builds the hierarchy: one global bus holding main memory and the
// bridges, plus Clusters local buses each holding ProcsPerCluster
// caches. Every bus shares one arbiter (see the package comment).
func New(cfg Config) (*System, error) {
	if cfg.Clusters <= 0 || cfg.ProcsPerCluster <= 0 {
		return nil, fmt.Errorf("hierarchy: need clusters and processors, got %d×%d", cfg.Clusters, cfg.ProcsPerCluster)
	}
	if cfg.ClusterProtocol == "" {
		cfg.ClusterProtocol = "moesi-update"
	}
	if cfg.LineSize == 0 {
		cfg.LineSize = bus.DefaultLineSize
	}
	if cfg.CacheSets == 0 {
		cfg.CacheSets = 64
	}
	if cfg.CacheWays == 0 {
		cfg.CacheWays = 2
	}
	if cfg.BridgeSets == 0 {
		// Inclusion: the bridge must be able to track every line its
		// cluster holds, with slack for conflict placement.
		cfg.BridgeSets = 4 * cfg.CacheSets * cfg.ProcsPerCluster
	}
	if cfg.BridgeWays == 0 {
		cfg.BridgeWays = 2 * cfg.CacheWays
	}

	arb := bus.NewArbiter()
	mem := memory.New(cfg.LineSize)
	if cfg.Obs != nil {
		mem.SetObs(cfg.Obs)
	}
	global := bus.New(mem, bus.Config{LineSize: cfg.LineSize, Arbiter: arb, Obs: cfg.Obs, ObsID: 0})

	sys := &System{Global: global, Memory: mem, arbiter: arb}
	if cfg.Shadow {
		sys.Shadow = check.NewShadow(cfg.LineSize)
	}

	if len(cfg.ClusterProtocols) != 0 && len(cfg.ClusterProtocols) != cfg.Clusters {
		return nil, fmt.Errorf("hierarchy: %d cluster protocols for %d clusters", len(cfg.ClusterProtocols), cfg.Clusters)
	}
	for ci := 0; ci < cfg.Clusters; ci++ {
		cluster, err := newCluster(ci, cfg, sys, global, arb)
		if err != nil {
			return nil, err
		}
		sys.Clusters = append(sys.Clusters, cluster)
	}
	return sys, nil
}

func newCluster(ci int, cfg Config, sys *System, global *bus.Bus, arb *bus.Arbiter) (*Cluster, error) {
	protoName := cfg.ClusterProtocol
	if len(cfg.ClusterProtocols) != 0 {
		protoName = cfg.ClusterProtocols[ci]
	}
	policyFactory := func() (core.Policy, error) {
		p, err := protocols.New(protoName)
		if err != nil {
			return nil, err
		}
		if err := validateClusterPolicy(p); err != nil {
			return nil, err
		}
		return p, nil
	}

	bridge := newBridge(ci, ci /* global master id */, global, cache.Config{
		Sets: cfg.BridgeSets, Ways: cfg.BridgeWays,
	})
	local := bus.New(bridge, bus.Config{LineSize: cfg.LineSize, Arbiter: arb, Obs: cfg.Obs, ObsID: ci + 1})
	bridge.local = local
	local.Attach(&localAgent{bridge: bridge, id: bridgeLocalID})

	cluster := &Cluster{ID: ci, Local: local, Bridge: bridge}
	var onWrite func(bus.Addr, int, uint32)
	if sys.Shadow != nil {
		onWrite = sys.Shadow.OnWrite
	}
	for pi := 0; pi < cfg.ProcsPerCluster; pi++ {
		p, err := policyFactory()
		if err != nil {
			return nil, fmt.Errorf("hierarchy: cluster %d: %w", ci, err)
		}
		c := cache.New(pi, local, p, cache.Config{
			Sets: cfg.CacheSets, Ways: cfg.CacheWays, OnWrite: onWrite,
		})
		cluster.Caches = append(cluster.Caches, c)
	}
	return cluster, nil
}

// validateClusterPolicy enforces the cluster invariant: with the bridge
// asserting CH on every local transaction, the policy must keep every
// modification visible on the local bus. Concretely: write hits on S
// and O must broadcast (BC), write misses must be Read>Write or
// broadcast, and the read-miss action must respect CH (so lines load
// S, never E). Update-style members (moesi, moesi-update, dragon)
// qualify; invalidate-style members do not.
func validateClusterPolicy(p core.Policy) error {
	for _, s := range []core.State{core.Shared, core.Owned} {
		a, ok := p.ChooseLocal(s, core.LocalWrite)
		if !ok {
			continue // the state may be unreachable for this policy
		}
		if a.Op != core.BusWrite || !a.Assert.Has(core.SigBC) {
			return fmt.Errorf("protocol %s is not update-style: %s write is %q, need a broadcast write", p.Name(), s.Letter(), a)
		}
	}
	if a, ok := p.ChooseLocal(core.Invalid, core.LocalWrite); ok {
		if a.Op != core.BusReadThenWrite && !(a.Op == core.BusWrite && a.Assert.Has(core.SigBC)) {
			return fmt.Errorf("protocol %s write miss %q would take silent ownership; need Read>Write", p.Name(), a)
		}
	}
	if a, ok := p.ChooseLocal(core.Invalid, core.LocalRead); ok {
		if a.Next.Resolve(true) != core.Shared {
			return fmt.Errorf("protocol %s read miss %q ignores CH; the bridge's CH must pin loads to S", p.Name(), a)
		}
	}
	return nil
}

// Proc returns cluster ci's pi-th cache.
func (s *System) Proc(ci, pi int) *cache.Cache { return s.Clusters[ci].Caches[pi] }

// Err surfaces any deferred bridge error (memory-port callbacks cannot
// return errors); call it after driving traffic.
func (s *System) Err() error {
	for _, cl := range s.Clusters {
		if err := cl.Bridge.takeErr(); err != nil {
			return err
		}
	}
	return nil
}

// GlobalChecker verifies the global level: the bridges are ordinary
// caches on the global bus, so the standard single-bus invariants apply
// to them against main memory, including the golden image (bridge data
// is current because clusters are update-style).
func (s *System) GlobalChecker() *check.Checker {
	caches := make([]check.LineSource, len(s.Clusters))
	for i, cl := range s.Clusters {
		caches[i] = cl.Bridge.Store()
	}
	return &check.Checker{Caches: caches, Memory: s.Memory, Shadow: s.Shadow}
}
