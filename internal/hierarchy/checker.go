package hierarchy

import (
	"bytes"
	"fmt"

	"futurebus/internal/bus"
	"futurebus/internal/cache"
	"futurebus/internal/core"
)

// ClusterViolation is one breach of the cluster-level invariants.
type ClusterViolation struct {
	Cluster int
	Addr    bus.Addr
	Reason  string
}

func (v ClusterViolation) String() string {
	return fmt.Sprintf("cluster %d line %#x: %s", v.Cluster, uint64(v.Addr), v.Reason)
}

// CheckClusters verifies the intra-cluster invariants of the design on
// a quiesced system:
//
//  1. No cluster cache holds E or M — the bridge's unconditional CH
//     pins every cluster line into the S/O pair, which is what keeps
//     the bridge's copy current.
//  2. At most one cluster cache owns (O) a line within the cluster.
//  3. Inclusion: every line a cluster cache holds is tracked by its
//     bridge.
//  4. Currency: every valid cluster copy is byte-identical to the
//     bridge's copy.
func (s *System) CheckClusters() []ClusterViolation {
	var out []ClusterViolation
	for _, cl := range s.Clusters {
		out = append(out, checkCluster(cl)...)
	}
	return out
}

func checkCluster(cl *Cluster) []ClusterViolation {
	var out []ClusterViolation
	bad := func(addr bus.Addr, format string, args ...any) {
		out = append(out, ClusterViolation{Cluster: cl.ID, Addr: addr, Reason: fmt.Sprintf(format, args...)})
	}

	bridgeLines := map[bus.Addr][]byte{}
	cl.Bridge.Store().ForEachLine(func(addr bus.Addr, st core.State, data []byte) {
		bridgeLines[addr] = data
	})

	owners := map[bus.Addr]int{}
	for _, c := range cl.Caches {
		id := c.ID()
		c.ForEachLine(func(addr bus.Addr, st core.State, data []byte) {
			if st == core.Exclusive || st == core.Modified {
				bad(addr, "cache %d holds %s; the bridge's CH must pin cluster lines to S/O", id, st.Letter())
			}
			if st.OwnedCopy() {
				owners[addr]++
				if owners[addr] > 1 {
					bad(addr, "multiple cluster owners")
				}
			}
			bline, ok := bridgeLines[addr]
			if !ok {
				bad(addr, "cache %d holds a line the bridge does not track (inclusion broken)", id)
				return
			}
			if !bytes.Equal(data, bline) {
				bad(addr, "cache %d copy differs from the bridge's (bridge stale)", id)
			}
		})
	}
	return out
}

// MustPass runs both levels of checking — the global single-bus
// invariants over the bridges, and the cluster invariants — plus any
// deferred bridge error.
func (s *System) MustPass() error {
	if err := s.Err(); err != nil {
		return err
	}
	if err := s.GlobalChecker().MustPass(); err != nil {
		return fmt.Errorf("hierarchy global level: %w", err)
	}
	if vs := s.CheckClusters(); len(vs) > 0 {
		var b bytes.Buffer
		fmt.Fprintf(&b, "hierarchy cluster level: %d violations:", len(vs))
		for i, v := range vs {
			if i == 20 {
				fmt.Fprintf(&b, "\n  … and %d more", len(vs)-i)
				break
			}
			fmt.Fprintf(&b, "\n  %s", v)
		}
		return fmt.Errorf("%s", b.String())
	}
	return nil
}

// Stats aggregates traffic over the tree for the scaling experiment.
type Stats struct {
	// GlobalTransactions and LocalTransactions split the bus work by
	// level; the hierarchy's point is that intra-cluster sharing never
	// leaves its local bus.
	GlobalTransactions int64
	LocalTransactions  int64
	GlobalBusy         int64
	MaxLocalBusy       int64
	// Fetches and Absorbs summarise bridge work.
	GlobalFetches        int64
	Absorbs              int64
	ClusterInvalidations int64
}

// CollectStats snapshots the tree's counters.
func (s *System) CollectStats() Stats {
	var out Stats
	g := s.Global.Stats()
	out.GlobalTransactions = g.Transactions
	out.GlobalBusy = g.BusyNanos
	for _, cl := range s.Clusters {
		l := cl.Local.Stats()
		out.LocalTransactions += l.Transactions
		if l.BusyNanos > out.MaxLocalBusy {
			out.MaxLocalBusy = l.BusyNanos
		}
		bs := cl.Bridge.Stats()
		out.GlobalFetches += bs.GlobalFetches
		out.Absorbs += bs.Absorbs
		out.ClusterInvalidations += bs.ClusterInvalidations
	}
	return out
}

// Caches returns every processor cache in the tree (for aggregation).
func (s *System) Caches() []*cache.Cache {
	var out []*cache.Cache
	for _, cl := range s.Clusters {
		out = append(out, cl.Caches...)
	}
	return out
}
