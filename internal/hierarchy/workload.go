package hierarchy

import "futurebus/internal/workload"

// ClusterModel generates one processor's references in a two-level
// sharing structure: most sharing is with cluster neighbours (the
// locality a clustered machine is built for), a smaller fraction
// crosses clusters, and the rest is private.
type ClusterModel struct {
	// Cluster and Proc identify the processor.
	Cluster, Proc int
	// GlobalSharedLines are shared by every processor in the machine;
	// ClusterSharedLines by this cluster only; PrivateLines by this
	// processor only.
	GlobalSharedLines, ClusterSharedLines, PrivateLines int
	// PGlobal and PCluster are the probabilities of touching the global
	// and cluster shared regions (the rest is private).
	PGlobal, PCluster float64
	// PWrite is the store probability.
	PWrite float64
	// WordsPerLine bounds the word index.
	WordsPerLine int
}

type clusterGen struct {
	m   ClusterModel
	rng *workload.RNG
	seq uint32
}

// Address regions: global shared, per-cluster shared, per-processor
// private — all disjoint.
const (
	globalBase  = uint64(1) << 40
	clusterBase = uint64(1) << 32
)

// NewGenerator returns the model's reference stream.
func (m ClusterModel) NewGenerator(seed uint64) workload.Generator {
	mix := uint64(m.Cluster)<<16 | uint64(m.Proc)
	return &clusterGen{m: m, rng: workload.NewRNG(seed ^ mix*0x9e3779b97f4a7c15)}
}

// Next implements workload.Generator.
func (g *clusterGen) Next() workload.Ref {
	m := g.m
	var line uint64
	switch r := g.rng.Float64(); {
	case r < m.PGlobal:
		line = globalBase + uint64(g.rng.Intn(m.GlobalSharedLines))
	case r < m.PGlobal+m.PCluster:
		line = clusterBase + uint64(m.Cluster)<<20 + uint64(g.rng.Intn(m.ClusterSharedLines))
	default:
		line = uint64(m.Cluster)<<24 + uint64(m.Proc+1)<<16 + uint64(g.rng.Intn(m.PrivateLines))
	}
	ref := workload.Ref{
		Line:  line,
		Word:  g.rng.Intn(m.WordsPerLine),
		Write: g.rng.Bool(m.PWrite),
	}
	if ref.Write {
		g.seq++
		ref.Val = uint32(m.Cluster)<<28 | uint32(m.Proc)<<24 | g.seq&0xffffff
	}
	return ref
}
