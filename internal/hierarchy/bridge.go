// Package hierarchy implements the multi-bus extension the paper lists
// as future work: "All implications of caching standardization must be
// fully explored, including … how one might implement a system with
// multiple buses and still maintain consistency" (§6).
//
// The design is a two-level Futurebus tree. Main memory lives on a
// global bus; each cluster is a local Futurebus with processor caches
// and one Bridge. The bridge plays three roles at once:
//
//   - it is the cluster's MEMORY: local misses and write-backs terminate
//     at the bridge's line store (an ordinary cache.Cache), which
//     fetches from and announces to the global bus as needed;
//   - it is a CACHE on the global bus, holding the cluster's lines in
//     MOESI states and intervening (DI) when another cluster needs data
//     this cluster owns;
//   - it is a SNOOPER on the local bus that asserts CH on every local
//     transaction, which pins every cluster line into the S/O pair —
//     the design's key invariant: no cluster cache can ever reach E or
//     M, so every modification inside the cluster is broadcast on the
//     local bus and the bridge's copy is always current.
//
// That invariant is why cluster caches must run an update-style member
// of the class (Dragon, MOESI, MOESI-update); NewCluster validates
// this. Inter-cluster writes are invalidate-style: when a bridge
// absorbs a cluster write it takes global M ownership, which
// invalidates the other bridges' copies, and their OnSnoopChange hooks
// synchronously clear their own clusters — made deadlock-free by the
// single shared bus.Arbiter all buses in the tree use (each bus still
// accounts its own occupancy, so bandwidth scaling remains measurable).
package hierarchy

import (
	"fmt"
	"sync"

	"futurebus/internal/bus"
	"futurebus/internal/cache"
	"futurebus/internal/core"
	"futurebus/internal/protocols"
)

// Bridge couples one cluster's local bus to the global bus.
type Bridge struct {
	clusterID int
	local     *bus.Bus // set by NewCluster after the local bus exists
	store     *cache.Cache

	mu    sync.Mutex
	stats BridgeStats
	// err records a failure inside a MemoryPort callback (the port API
	// cannot return errors); the next driver-level call surfaces it.
	err error
}

// BridgeStats counts bridge activity.
type BridgeStats struct {
	// LocalFills counts local misses served from the bridge store.
	LocalFills int64
	// GlobalFetches counts local misses that had to go to the global
	// bus.
	GlobalFetches int64
	// Absorbs counts cluster writes the bridge took global ownership
	// of.
	Absorbs int64
	// ClusterInvalidations counts foreign global events propagated
	// into the cluster.
	ClusterInvalidations int64
	// Inclusions counts evictions that had to clear cluster copies.
	Inclusions int64
}

// newBridge creates the bridge and its global-side line store.
func newBridge(clusterID, globalID int, global *bus.Bus, storeCfg cache.Config) *Bridge {
	b := &Bridge{clusterID: clusterID}
	storeCfg.OnSnoopChange = b.onGlobalSnoop
	storeCfg.OnEvict = b.onStoreEvict
	// The bridge's global protocol is invalidate-style: absorbing a
	// cluster write claims M, which clears the line from every other
	// cluster in one column-6 transaction.
	b.store = cache.New(globalID, global, protocols.MOESIInvalidate(), storeCfg)
	return b
}

// Store exposes the bridge's global-side cache (for checkers and
// stats).
func (b *Bridge) Store() *cache.Cache { return b.store }

// Stats returns a snapshot of the bridge counters.
func (b *Bridge) Stats() BridgeStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// takeErr returns and clears a deferred port error.
func (b *Bridge) takeErr() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	err := b.err
	b.err = nil
	return err
}

func (b *Bridge) setErr(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err == nil {
		b.err = err
	}
}

// --- local-bus memory port -------------------------------------------

var _ bus.MemoryPort = (*Bridge)(nil)

// ReadLine implements bus.MemoryPort for the local bus: a local miss
// with no cluster owner terminates here. The bus (and therefore the
// shared arbiter) is held, so a global fetch nests safely.
func (b *Bridge) ReadLine(addr bus.Addr) []byte {
	b.mu.Lock()
	if b.store.Contains(addr) {
		b.stats.LocalFills++
	} else {
		b.stats.GlobalFetches++
	}
	b.mu.Unlock()
	data, err := b.store.FetchLineHeld(addr)
	if err != nil {
		b.setErr(fmt.Errorf("hierarchy: cluster %d fetch of %#x: %w", b.clusterID, uint64(addr), err))
		return make([]byte, b.store.LineSize())
	}
	return data
}

// WriteLine implements bus.MemoryPort for the local bus: cluster
// write-backs and the memory half of cluster broadcast writes arrive
// here. The bridge absorbs the line as global Modified owner, which
// announces the write to the other clusters (invalidate-style).
func (b *Bridge) WriteLine(addr bus.Addr, data []byte) {
	b.mu.Lock()
	b.stats.Absorbs++
	b.mu.Unlock()
	if err := b.store.AbsorbLineHeld(addr, data); err != nil {
		b.setErr(fmt.Errorf("hierarchy: cluster %d absorb of %#x: %w", b.clusterID, uint64(addr), err))
	}
}

// --- local-bus snooper ------------------------------------------------

var _ bus.Snooper = (*localAgent)(nil)

// localAgent is the bridge's snooping presence on the local bus. It
// asserts CH on every transaction — the bridge conceptually retains a
// copy of everything, and the assertion pins cluster caches into the
// S/O pair (no cluster E, no cluster M, no silent writes).
type localAgent struct {
	bridge *Bridge
	id     int
}

func (a *localAgent) SnooperID() int { return a.id }

func (a *localAgent) Query(tx *bus.Transaction) bus.SnoopResponse {
	return bus.SnoopResponse{
		Action: core.SnoopAction{Next: core.Uncond(core.Shared), AssertCH: true},
		Hit:    false, // no directory line of its own to commit
	}
}

func (a *localAgent) Commit(tx *bus.Transaction, resp bus.SnoopResponse, otherCH bool) {}

func (a *localAgent) Cancel(tx *bus.Transaction, resp bus.SnoopResponse) {}

// --- global-side hooks -------------------------------------------------

// onGlobalSnoop runs when a foreign global transaction changed the
// bridge store's line (bus held): the cluster's copies are now stale or
// superseded, so clear them synchronously with a local column-6
// address-only invalidate.
func (b *Bridge) onGlobalSnoop(addr bus.Addr, from, to core.State, dataChanged bool) {
	if to != core.Invalid && !dataChanged {
		// Pure demotion (e.g. M→O on a foreign read): the cluster's
		// copies are still current; nothing to do.
		return
	}
	if err := b.invalidateCluster(addr); err != nil {
		b.setErr(err)
	}
}

// onStoreEvict maintains inclusion: before the store drops a line,
// clear the cluster's copies (their backing entry is going away).
func (b *Bridge) onStoreEvict(addr bus.Addr) error {
	b.mu.Lock()
	b.stats.Inclusions++
	b.mu.Unlock()
	return b.invalidateCluster(addr)
}

// invalidateCluster issues an address-only column-6 invalidate on the
// local bus (the shared arbiter is held by the enclosing transaction).
func (b *Bridge) invalidateCluster(addr bus.Addr) error {
	b.mu.Lock()
	b.stats.ClusterInvalidations++
	b.mu.Unlock()
	_, err := b.local.ExecuteHeld(&bus.Transaction{
		MasterID: b.localMasterID(),
		Signals:  core.SigCA | core.SigIM,
		Op:       core.BusAddrOnly,
		Addr:     addr,
	})
	if err != nil {
		return fmt.Errorf("hierarchy: cluster %d invalidate of %#x: %w", b.clusterID, uint64(addr), err)
	}
	return nil
}

// localMasterID is the bridge's master id on its local bus (the
// localAgent's id), distinct from every cluster cache.
func (b *Bridge) localMasterID() int { return bridgeLocalID }

// bridgeLocalID is the bridge's id on every local bus; cluster caches
// use ids 0..n-1.
const bridgeLocalID = 1 << 16
