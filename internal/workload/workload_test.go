package workload

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// TestRNGDeterminism: same seed, same stream; different seeds diverge.
func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c, d := NewRNG(5), NewRNG(6)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Next() == d.Next() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds coincide %d/100 times", same)
	}
	// Seed 0 is remapped, not degenerate.
	z := NewRNG(0)
	if z.Next() == 0 && z.Next() == 0 {
		t.Error("zero seed produced zeros")
	}
}

// TestRNGRanges: Intn and Float64 stay in range for all draws.
func TestRNGRanges(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
	if r.Intn(1) != 0 {
		t.Error("Intn(1) != 0")
	}
}

// TestRNGBoolFrequency: Bool(p) hits roughly p.
func TestRNGBoolFrequency(t *testing.T) {
	r := NewRNG(3)
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("Bool(0.3) frequency = %.3f", got)
	}
}

// TestGeometric: distribution mean is near 1/p − 1 and respects max.
func TestGeometric(t *testing.T) {
	r := NewRNG(9)
	const n = 20000
	sum := 0
	for i := 0; i < n; i++ {
		g := r.Geometric(0.5, 100)
		if g < 0 || g > 100 {
			t.Fatalf("geometric out of range: %d", g)
		}
		sum += g
	}
	mean := float64(sum) / n
	if math.Abs(mean-1.0) > 0.1 {
		t.Errorf("geometric mean = %.3f, want ≈1", mean)
	}
	if g := r.Geometric(0.0001, 3); g > 3 {
		t.Errorf("cap ignored: %d", g)
	}
}

// TestModelValidation rejects bad parameters.
func TestModelValidation(t *testing.T) {
	base := Model{SharedLines: 8, PrivateLines: 8, WordsPerLine: 8, PShared: 0.5, PWrite: 0.5}
	if _, err := NewModel(base, 1); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := []Model{
		{SharedLines: 0, PrivateLines: 8, WordsPerLine: 8},
		{SharedLines: 8, PrivateLines: 8, WordsPerLine: 0},
		{SharedLines: 8, PrivateLines: 8, WordsPerLine: 8, PShared: 1.5},
		{SharedLines: 8, PrivateLines: 8, WordsPerLine: 8, PWrite: -0.1},
		{SharedLines: 8, PrivateLines: 8, WordsPerLine: 8, Locality: 2},
	}
	for i, m := range bad {
		if _, err := NewModel(m, 1); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

// TestModelDistribution: the generated stream respects the model's
// probabilities and address regions.
func TestModelDistribution(t *testing.T) {
	m := Model{
		Proc: 2, SharedLines: 16, PrivateLines: 32, WordsPerLine: 8,
		PShared: 0.4, PWrite: 0.25,
	}
	g := MustModel(m, 77)
	const n = 40000
	shared, writes := 0, 0
	for i := 0; i < n; i++ {
		ref := g.Next()
		if ref.Word < 0 || ref.Word >= 8 {
			t.Fatalf("word out of range: %d", ref.Word)
		}
		if ref.Line >= sharedBase {
			shared++
			if ref.Line >= sharedBase+16 {
				t.Fatalf("shared line out of range: %#x", ref.Line)
			}
		} else {
			if ref.Line < privateBase(2) || ref.Line >= privateBase(2)+32 {
				t.Fatalf("private line out of range: %#x", ref.Line)
			}
		}
		if ref.Write {
			writes++
			if ref.Val == 0 {
				t.Fatal("write with zero value (golden image cannot distinguish)")
			}
		}
	}
	if got := float64(shared) / n; math.Abs(got-0.4) > 0.02 {
		t.Errorf("shared fraction = %.3f", got)
	}
	if got := float64(writes) / n; math.Abs(got-0.25) > 0.02 {
		t.Errorf("write fraction = %.3f", got)
	}
}

// TestModelPrivateRegionsDisjoint: two processors' private references
// never collide.
func TestModelPrivateRegionsDisjoint(t *testing.T) {
	m := Model{SharedLines: 4, PrivateLines: 1 << 19, WordsPerLine: 8, PShared: 0, PWrite: 0.5}
	m.Proc = 0
	g0 := MustModel(m, 5)
	m.Proc = 1
	g1 := MustModel(m, 5)
	seen0 := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		seen0[g0.Next().Line] = true
	}
	for i := 0; i < 5000; i++ {
		if seen0[g1.Next().Line] {
			t.Fatal("private regions overlap")
		}
	}
}

// TestModelLocality: with high locality, consecutive repeats are
// frequent.
func TestModelLocality(t *testing.T) {
	m := Model{SharedLines: 64, PrivateLines: 64, WordsPerLine: 8, PShared: 0.5, PWrite: 0.3, Locality: 0.8}
	g := MustModel(m, 3)
	prev := g.Next()
	repeats := 0
	const n = 20000
	for i := 0; i < n; i++ {
		cur := g.Next()
		if cur.Line == prev.Line {
			repeats++
		}
		prev = cur
	}
	if got := float64(repeats) / n; got < 0.7 {
		t.Errorf("repeat fraction = %.3f, want ≥0.7", got)
	}
}

// TestTraceRoundTrip: the binary codec is lossless.
func TestTraceRoundTrip(t *testing.T) {
	g := MustModel(Model{SharedLines: 8, PrivateLines: 8, WordsPerLine: 8, PShared: 0.5, PWrite: 0.5}, 1)
	trace := Record(g, 500)
	var buf bytes.Buffer
	if _, err := trace.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trace) {
		t.Fatalf("length %d != %d", len(got), len(trace))
	}
	for i := range trace {
		if got[i] != trace[i] {
			t.Fatalf("ref %d: %v != %v", i, got[i], trace[i])
		}
	}
}

// TestTraceRoundTripProperty: arbitrary refs survive the codec.
func TestTraceRoundTripProperty(t *testing.T) {
	f := func(lines []uint64, words []uint8, vals []uint32) bool {
		n := len(lines)
		if len(words) < n {
			n = len(words)
		}
		if len(vals) < n {
			n = len(vals)
		}
		trace := make(Trace, n)
		for i := 0; i < n; i++ {
			trace[i] = Ref{
				Line:  lines[i],
				Word:  int(words[i]) % 64,
				Write: vals[i]%2 == 0,
				Val:   vals[i],
			}
		}
		var buf bytes.Buffer
		if _, err := trace.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range trace {
			if got[i] != trace[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTraceRejectsJunk: bad magic and truncation are detected.
func TestTraceRejectsJunk(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	trace := Trace{{Line: 1, Word: 2, Write: true, Val: 3}}
	if _, err := trace.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

// TestReplayCycles: a replay generator wraps around.
func TestReplayCycles(t *testing.T) {
	trace := Trace{{Line: 1}, {Line: 2}, {Line: 3}}
	r := NewReplay(trace)
	for round := 0; round < 3; round++ {
		for _, want := range trace {
			if got := r.Next(); got != want {
				t.Fatalf("round %d: %v != %v", round, got, want)
			}
		}
	}
}

// TestPatternsWellFormed: every structured pattern stays within its
// shared region and word bounds, and produces both reads and writes
// where designed to.
func TestPatternsWellFormed(t *testing.T) {
	const words = 8
	gens := map[string]Generator{
		"migratory":   NewMigratory(1, 4, 8, 4, words, 2),
		"producer":    NewProducerConsumer(0, 8, words, 2),
		"consumer":    NewProducerConsumer(3, 8, words, 2),
		"read-mostly": NewReadMostly(2, 8, words, 0.1, 2),
		"ping-pong":   NewPingPong(1, 4, words, 2),
	}
	for name, g := range gens {
		reads, writes := 0, 0
		for i := 0; i < 5000; i++ {
			ref := g.Next()
			if ref.Line < sharedBase || ref.Line >= sharedBase+64 {
				t.Fatalf("%s: line %#x outside shared region", name, ref.Line)
			}
			if ref.Word < 0 || ref.Word >= words {
				t.Fatalf("%s: word %d", name, ref.Word)
			}
			if ref.Write {
				writes++
				if ref.Val == 0 {
					t.Fatalf("%s: zero write value", name)
				}
			} else {
				reads++
			}
		}
		switch name {
		case "producer":
			if reads != 0 {
				t.Errorf("producer read %d times", reads)
			}
		case "consumer":
			if writes != 0 {
				t.Errorf("consumer wrote %d times", writes)
			}
		default:
			if reads == 0 || writes == 0 {
				t.Errorf("%s: reads=%d writes=%d", name, reads, writes)
			}
		}
	}
}

// TestMigratoryPhases: a migratory stream dwells on one line for the
// burst, then moves.
func TestMigratoryPhases(t *testing.T) {
	g := NewMigratory(0, 2, 8, 5, 8, 1)
	cur := g.Next().Line
	run := 1
	maxRun := 1
	for i := 0; i < 1000; i++ {
		ref := g.Next()
		if ref.Line == cur {
			run++
		} else {
			cur, run = ref.Line, 1
		}
		if run > maxRun {
			maxRun = run
		}
	}
	if maxRun < 8 {
		t.Errorf("longest dwell = %d refs, migratory bursts missing", maxRun)
	}
}

// TestZipfSkew: the hot line dominates and the skew grows with s.
func TestZipfSkew(t *testing.T) {
	count := func(s float64) float64 {
		g := NewZipf(0, 64, 8, s, 0.3, 5)
		hot := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if g.Next().Line == sharedBase {
				hot++
			}
		}
		return float64(hot) / n
	}
	uniform := count(0)
	skewed := count(1.0)
	verySkewed := count(1.5)
	if math.Abs(uniform-1.0/64) > 0.01 {
		t.Errorf("s=0 hot fraction %.4f, want ≈%.4f", uniform, 1.0/64)
	}
	if !(skewed > 4*uniform) {
		t.Errorf("s=1 hot fraction %.4f not well above uniform %.4f", skewed, uniform)
	}
	if !(verySkewed > skewed) {
		t.Errorf("skew not monotone: s=1.5 %.4f vs s=1 %.4f", verySkewed, skewed)
	}
}

// TestZipfBounds: lines stay in range, values non-zero on writes.
func TestZipfBounds(t *testing.T) {
	g := NewZipf(2, 16, 4, 1.2, 0.5, 9)
	for i := 0; i < 5000; i++ {
		ref := g.Next()
		if ref.Line < sharedBase || ref.Line >= sharedBase+16 {
			t.Fatalf("line %#x", ref.Line)
		}
		if ref.Word < 0 || ref.Word >= 4 {
			t.Fatalf("word %d", ref.Word)
		}
		if ref.Write && ref.Val == 0 {
			t.Fatal("zero write value")
		}
	}
}
