package workload

import "fmt"

// Model is an Archibald–Baer-style program-behaviour model ([Arch85],
// [Dubo82]): each reference goes to a shared block with probability
// PShared (uniformly over SharedLines, with run-length locality) or to
// the processor's private region otherwise; a reference is a write
// with probability PWrite. Private regions are disjoint per processor,
// so only shared lines generate coherence traffic.
type Model struct {
	// Proc is the processor id (selects the private region).
	Proc int
	// SharedLines is the number of shared blocks in the system.
	SharedLines int
	// PrivateLines is the size of the processor's private working set
	// in lines; sized relative to the cache, it controls the natural
	// miss ratio.
	PrivateLines int
	// WordsPerLine bounds the word index within a line.
	WordsPerLine int
	// PShared is the probability a reference touches a shared block
	// (the "md" of [Dubo82]).
	PShared float64
	// PWrite is the probability a reference is a write.
	PWrite float64
	// Locality is the probability of re-referencing the previous line
	// (a run-length knob; 0 = uniform).
	Locality float64
}

// sharedBase places shared lines in a region disjoint from every
// private region.
const sharedBase = uint64(1) << 32

// privateBase returns the first private line of a processor.
func privateBase(proc int) uint64 { return uint64(proc+1) << 20 }

// ModelGen generates references from a Model.
type ModelGen struct {
	m    Model
	rng  *RNG
	last Ref
	has  bool
	seq  uint32
}

// NewModel validates the model and returns its generator.
func NewModel(m Model, seed uint64) (*ModelGen, error) {
	if m.SharedLines <= 0 || m.PrivateLines <= 0 {
		return nil, fmt.Errorf("workload: model needs shared and private lines, got %d/%d", m.SharedLines, m.PrivateLines)
	}
	if m.WordsPerLine <= 0 {
		return nil, fmt.Errorf("workload: model needs words per line")
	}
	if m.PShared < 0 || m.PShared > 1 || m.PWrite < 0 || m.PWrite > 1 || m.Locality < 0 || m.Locality > 1 {
		return nil, fmt.Errorf("workload: model probabilities out of range")
	}
	return &ModelGen{m: m, rng: NewRNG(seed ^ uint64(m.Proc)*0x9e3779b9)}, nil
}

// MustModel is NewModel for static configurations.
func MustModel(m Model, seed uint64) *ModelGen {
	g, err := NewModel(m, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// Next implements Generator.
func (g *ModelGen) Next() Ref {
	var line uint64
	if g.has && g.rng.Bool(g.m.Locality) {
		line = g.last.Line
	} else if g.rng.Bool(g.m.PShared) {
		line = sharedBase + uint64(g.rng.Intn(g.m.SharedLines))
	} else {
		line = privateBase(g.m.Proc) + uint64(g.rng.Intn(g.m.PrivateLines))
	}
	ref := Ref{
		Line:  line,
		Word:  g.rng.Intn(g.m.WordsPerLine),
		Write: g.rng.Bool(g.m.PWrite),
	}
	if ref.Write {
		g.seq++
		ref.Val = uint32(g.m.Proc)<<24 | g.seq&0xffffff
	}
	g.last, g.has = ref, true
	return ref
}
