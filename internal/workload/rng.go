// Package workload generates deterministic synthetic reference streams
// for the simulator. The paper has no traces of its own — its
// performance discussion (§5.2) rests on [Arch85], whose simulations
// "are based only on a model of program behavior [Dubo82]". This
// package implements the same style of model (shared blocks referenced
// with a given probability and write ratio, private working sets with
// locality) plus structured sharing patterns (migratory,
// producer/consumer, read-mostly, ping-pong) that exercise the protocol
// behaviours the paper discusses.
package workload

// RNG is a small deterministic xorshift* generator. Reference streams
// must be reproducible across runs and platforms, so no seeding from
// time or math/rand global state.
type RNG struct{ state uint64 }

// NewRNG creates a generator; seed 0 is remapped to a fixed constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Next returns the next 64-bit value.
func (r *RNG) Next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Geometric returns a geometrically distributed value with success
// probability p (mean ≈ 1/p − 1), capped at max.
func (r *RNG) Geometric(p float64, max int) int {
	n := 0
	for n < max && !r.Bool(p) {
		n++
	}
	return n
}
