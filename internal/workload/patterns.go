package workload

// Structured sharing patterns. Each exercises a protocol behaviour the
// paper's discussion turns on: migratory data rewards invalidation
// (ownership should move), producer/consumer and ping-pong reward
// broadcast updates (sharers should stay live), read-mostly rewards the
// E state (silent upgrade, no invalidation traffic on private reads).

// Migratory models a data structure protected by a lock and passed
// between processors: a processor makes several read/write passes over
// a block, then the block "migrates" to another processor. Each
// processor generates references to every shared block but with phase
// offsets, so at any time a block is touched predominantly by one
// processor.
type Migratory struct {
	proc, procs  int
	lines        int
	burst        int
	wordsPerLine int
	rng          *RNG
	pos, left    int
}

// NewMigratory creates one processor's stream over `lines` migratory
// blocks shared by `procs` processors; each visit makes `burst`
// read-modify-write pairs.
func NewMigratory(proc, procs, lines, burst, wordsPerLine int, seed uint64) *Migratory {
	return &Migratory{
		proc: proc, procs: procs, lines: lines, burst: burst,
		wordsPerLine: wordsPerLine,
		rng:          NewRNG(seed ^ uint64(proc)*0x2545f491),
		pos:          proc % lines,
	}
}

// Next implements Generator: alternating read and write to the current
// block, moving on after the burst.
func (m *Migratory) Next() Ref {
	if m.left == 0 {
		m.pos = (m.pos + 1 + m.rng.Intn(m.lines)) % m.lines
		m.left = 2 * m.burst
	}
	m.left--
	write := m.left%2 == 0
	ref := Ref{
		Line:  sharedBase + uint64(m.pos),
		Word:  m.rng.Intn(m.wordsPerLine),
		Write: write,
	}
	if write {
		ref.Val = uint32(m.proc)<<24 | uint32(m.rng.Next())&0xffffff
	}
	return ref
}

// ProducerConsumer models one writer and many readers of a buffer: the
// producer (proc 0) writes words of the shared lines; consumers read
// them. This is the pattern where broadcast updates beat invalidation —
// every invalidate forces all consumers to miss again.
type ProducerConsumer struct {
	proc         int
	lines        int
	wordsPerLine int
	rng          *RNG
	seq          uint32
}

// NewProducerConsumer creates one processor's stream; proc 0 produces,
// others consume.
func NewProducerConsumer(proc, lines, wordsPerLine int, seed uint64) *ProducerConsumer {
	return &ProducerConsumer{
		proc: proc, lines: lines, wordsPerLine: wordsPerLine,
		rng: NewRNG(seed ^ uint64(proc)*0x6c62272e),
	}
}

// Next implements Generator.
func (p *ProducerConsumer) Next() Ref {
	ref := Ref{
		Line: sharedBase + uint64(p.rng.Intn(p.lines)),
		Word: p.rng.Intn(p.wordsPerLine),
	}
	if p.proc == 0 {
		ref.Write = true
		p.seq++
		ref.Val = p.seq
	}
	return ref
}

// ReadMostly models shared data that is read by everyone and written
// rarely (e.g. a configuration table): the E state pays off because a
// lone reader can upgrade silently when it does write.
type ReadMostly struct {
	proc         int
	lines        int
	wordsPerLine int
	pWrite       float64
	rng          *RNG
	seq          uint32
}

// NewReadMostly creates one processor's stream with the given (small)
// write probability.
func NewReadMostly(proc, lines, wordsPerLine int, pWrite float64, seed uint64) *ReadMostly {
	return &ReadMostly{
		proc: proc, lines: lines, wordsPerLine: wordsPerLine, pWrite: pWrite,
		rng: NewRNG(seed ^ uint64(proc)*0x100000001b3),
	}
}

// Next implements Generator.
func (r *ReadMostly) Next() Ref {
	ref := Ref{
		Line:  sharedBase + uint64(r.rng.Intn(r.lines)),
		Word:  r.rng.Intn(r.wordsPerLine),
		Write: r.rng.Bool(r.pWrite),
	}
	if ref.Write {
		r.seq++
		ref.Val = uint32(r.proc)<<24 | r.seq&0xffffff
	}
	return ref
}

// Sequential models an array traversal: word addresses walked in order
// over a buffer, mapped onto lines by the system's line size. This is
// the workload where spatial locality exists, so it is the one that
// exposes the §5.1 line-size trade-off: one miss per line fetches
// wordsPerLine useful words, but sparse writes invalidate whole lines
// (false sharing grows with the line).
type Sequential struct {
	proc         int
	words        int // buffer length in words
	wordsPerLine int
	pWrite       float64
	rng          *RNG
	pos          int
	seq          uint32
}

// NewSequential creates one processor's walk over a shared buffer of
// `words` words; each processor starts at its own offset.
func NewSequential(proc, words, wordsPerLine int, pWrite float64, seed uint64) *Sequential {
	return &Sequential{
		proc: proc, words: words, wordsPerLine: wordsPerLine, pWrite: pWrite,
		rng: NewRNG(seed ^ uint64(proc)*0x9e3779b97f4a7c15),
		pos: (proc * words / 8) % words,
	}
}

// Next implements Generator.
func (s *Sequential) Next() Ref {
	wordAddr := s.pos
	s.pos = (s.pos + 1) % s.words
	ref := Ref{
		Line:  sharedBase + uint64(wordAddr/s.wordsPerLine),
		Word:  wordAddr % s.wordsPerLine,
		Write: s.rng.Bool(s.pWrite),
	}
	if ref.Write {
		s.seq++
		ref.Val = uint32(s.proc)<<24 | s.seq&0xffffff
	}
	return ref
}

// PingPong models two (or more) processors alternately writing the same
// few lines — the worst case for every protocol, and the sharpest
// separator between update (one word broadcast per write) and
// invalidate (a full miss per write) strategies.
type PingPong struct {
	proc         int
	lines        int
	wordsPerLine int
	rng          *RNG
	seq          uint32
	i            int
}

// NewPingPong creates one processor's stream over `lines` contested
// lines.
func NewPingPong(proc, lines, wordsPerLine int, seed uint64) *PingPong {
	return &PingPong{
		proc: proc, lines: lines, wordsPerLine: wordsPerLine,
		rng: NewRNG(seed ^ uint64(proc)*0xc2b2ae35),
	}
}

// Next implements Generator: read then write each contested line in
// turn.
func (p *PingPong) Next() Ref {
	line := sharedBase + uint64(p.i/2%p.lines)
	write := p.i%2 == 1
	p.i++
	ref := Ref{Line: line, Word: p.rng.Intn(p.wordsPerLine), Write: write}
	if write {
		p.seq++
		ref.Val = uint32(p.proc)<<24 | p.seq&0xffffff
	}
	return ref
}
