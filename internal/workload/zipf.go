package workload

import "math"

// Zipf generates a skewed shared-access stream: line popularity follows
// a Zipf distribution with exponent S (S=0 is uniform; S≈1 is the
// classic hot-spot curve). Real shared data is rarely uniform — a few
// lock and counter lines absorb most of the coherence traffic — and a
// skewed stream stresses exactly the update-vs-invalidate choice of
// §5.2: hot lines stay resident everywhere, so updates pay off.
type Zipf struct {
	proc         int
	wordsPerLine int
	pWrite       float64
	rng          *RNG
	cdf          []float64
	seq          uint32
}

// NewZipf creates one processor's stream over `lines` shared lines with
// Zipf exponent s.
func NewZipf(proc, lines, wordsPerLine int, s, pWrite float64, seed uint64) *Zipf {
	if lines <= 0 {
		panic("workload: zipf needs lines")
	}
	// Precompute the CDF of p(k) ∝ 1/(k+1)^s.
	cdf := make([]float64, lines)
	sum := 0.0
	for k := 0; k < lines; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{
		proc: proc, wordsPerLine: wordsPerLine, pWrite: pWrite,
		rng: NewRNG(seed ^ uint64(proc)*0x9e3779b97f4a7c15),
		cdf: cdf,
	}
}

// Next implements Generator.
func (z *Zipf) Next() Ref {
	u := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	ref := Ref{
		Line:  sharedBase + uint64(lo),
		Word:  z.rng.Intn(z.wordsPerLine),
		Write: z.rng.Bool(z.pWrite),
	}
	if ref.Write {
		z.seq++
		ref.Val = uint32(z.proc)<<24 | z.seq&0xffffff
	}
	return ref
}
