package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Ref is one memory reference by one processor: a 32-bit word within a
// line of the shared address space.
type Ref struct {
	// Line is the line address.
	Line uint64
	// Word is the word index within the line.
	Word int
	// Write: true for a store, false for a load.
	Write bool
	// Val is the stored value (ignored for loads).
	Val uint32
}

func (r Ref) String() string {
	if r.Write {
		return fmt.Sprintf("W %#x.%d=%#x", r.Line, r.Word, r.Val)
	}
	return fmt.Sprintf("R %#x.%d", r.Line, r.Word)
}

// Generator produces one processor's reference stream.
type Generator interface {
	// Next returns the processor's next reference.
	Next() Ref
}

// Trace is a recorded reference stream.
type Trace []Ref

// Replay returns a Generator that cycles through the trace.
type Replay struct {
	trace Trace
	pos   int
}

// NewReplay wraps a recorded trace; it repeats from the start when
// exhausted.
func NewReplay(t Trace) *Replay { return &Replay{trace: t} }

// Next implements Generator.
func (r *Replay) Next() Ref {
	if len(r.trace) == 0 {
		panic("workload: replay of empty trace")
	}
	ref := r.trace[r.pos]
	r.pos = (r.pos + 1) % len(r.trace)
	return ref
}

// Record captures n references from a generator into a Trace.
func Record(g Generator, n int) Trace {
	t := make(Trace, n)
	for i := range t {
		t[i] = g.Next()
	}
	return t
}

// traceMagic guards the binary trace encoding.
const traceMagic = uint32(0x4d4f4553) // "MOES"

// WriteTo serialises the trace in a compact binary format.
func (t Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(traceMagic); err != nil {
		return n, err
	}
	if err := write(uint64(len(t))); err != nil {
		return n, err
	}
	for _, r := range t {
		flags := uint32(r.Word) << 1
		if r.Write {
			flags |= 1
		}
		if err := write(r.Line); err != nil {
			return n, err
		}
		if err := write(flags); err != nil {
			return n, err
		}
		if err := write(r.Val); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadTrace deserialises a trace written by WriteTo.
func ReadTrace(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("workload: reading trace header: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("workload: bad trace magic %#x", magic)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("workload: reading trace length: %w", err)
	}
	const maxTrace = 1 << 28
	if count > maxTrace {
		return nil, fmt.Errorf("workload: trace length %d exceeds limit", count)
	}
	t := make(Trace, count)
	for i := range t {
		var line uint64
		var flags, val uint32
		if err := binary.Read(br, binary.LittleEndian, &line); err != nil {
			return nil, fmt.Errorf("workload: ref %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
			return nil, fmt.Errorf("workload: ref %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &val); err != nil {
			return nil, fmt.Errorf("workload: ref %d: %w", i, err)
		}
		t[i] = Ref{Line: line, Word: int(flags >> 1), Write: flags&1 != 0, Val: val}
	}
	return t, nil
}
