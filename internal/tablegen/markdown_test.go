package tablegen

import (
	"os"
	"strings"
	"testing"
)

// TestMarkdownSections: the generated reference carries every section
// and every artifact.
func TestMarkdownSections(t *testing.T) {
	out := Markdown()
	for _, want := range []string{
		"# Protocol reference",
		"## Cell syntax",
		"### T1 —", "### T7 —",
		"## Class membership (§4)",
		"| illinois | in class with BS extension |",
		"## Full protocol tables (as simulated)",
		"### synapse",
		"## State diagrams",
		"digraph \"MOESI\"",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown lacks %q", want)
		}
	}
	if strings.Contains(out, "DIVERGES") {
		t.Error("generated reference reports a divergence from the paper")
	}
}

// TestProtocolsDocUpToDate: the committed docs/PROTOCOLS.md matches the
// implementation — regenerate with:
//
//	go run ./cmd/moesi-tables -markdown > docs/PROTOCOLS.md
func TestProtocolsDocUpToDate(t *testing.T) {
	onDisk, err := os.ReadFile("../../docs/PROTOCOLS.md")
	if err != nil {
		t.Fatalf("docs/PROTOCOLS.md missing: %v", err)
	}
	if string(onDisk) != Markdown() {
		t.Fatal("docs/PROTOCOLS.md is stale; regenerate with: go run ./cmd/moesi-tables -markdown > docs/PROTOCOLS.md")
	}
}
