package tablegen

import (
	"fmt"
	"strings"

	"futurebus/internal/core"
	"futurebus/internal/protocols"
)

// Markdown renders the complete protocol reference — every regenerated
// paper table, the §4 class-membership verdicts, and each registered
// protocol's full (extended) table — as a single Markdown document.
// cmd/moesi-tables -markdown writes it to docs/PROTOCOLS.md.
func Markdown() string {
	var b strings.Builder
	b.WriteString("# Protocol reference\n\n")
	b.WriteString("Generated from the implementation by `moesi-tables -markdown`.\n")
	b.WriteString("Every table below is produced by the same code that runs in the\n")
	b.WriteString("simulator; the T1–T7 tables are diffed against the paper in CI.\n\n")

	b.WriteString("## Cell syntax\n\n")
	b.WriteString("`result-state, signals, action` — e.g. `CH:O/M,CA,IM,BC,W` asserts\n")
	b.WriteString("CA+IM+BC, issues a write, and ends in O if another cache asserted CH,\n")
	b.WriteString("M otherwise. `M,CA,IM` with no action letter is an address-only\n")
	b.WriteString("invalidate. `BS;S,CA,W` aborts the snooped transaction, pushes the\n")
	b.WriteString("line, and keeps a shareable copy. `-` marks an illegal case.\n\n")

	b.WriteString("## The paper's tables, regenerated (T1–T7)\n\n")
	for _, a := range Artifacts() {
		fmt.Fprintf(&b, "### %s — %s\n\n```\n%s```\n\n", a.ID, a.Title, a.Render())
		if diffs := a.Diff(); len(diffs) == 0 {
			b.WriteString("Matches the paper cell for cell.\n\n")
		} else {
			fmt.Fprintf(&b, "DIVERGES from the paper (%d cells).\n\n", len(diffs))
		}
	}

	b.WriteString("## Class membership (§4)\n\n")
	b.WriteString("| protocol | verdict |\n|---|---|\n")
	for _, name := range protocols.Names() {
		p, err := protocols.New(name)
		if err != nil {
			continue
		}
		rep := core.Validate(p.Table(), p.Variant())
		fmt.Fprintf(&b, "| %s | %s |\n", name, rep.Verdict)
	}
	b.WriteString("\n")

	b.WriteString("## Full protocol tables (as simulated)\n\n")
	b.WriteString("The paper's Tables 3–7 define only the events each protocol's own\n")
	b.WriteString("algorithm generates; a mixed Futurebus delivers more. These are the\n")
	b.WriteString("Extend-completed tables every board actually runs, with the paper's\n")
	b.WriteString("cells preserved verbatim (verified by the T3–T7 diffs above).\n\n")
	for _, name := range protocols.Names() {
		p, err := protocols.New(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "### %s\n\n```\n%s```\n\n", name, p.Table().Render())
	}

	b.WriteString("## State diagrams\n\n")
	b.WriteString("GraphViz sources (`moesi-tables -dot <protocol>` regenerates any of\n")
	b.WriteString("these): solid = local events, dashed = snooped bus events, dotted =\n")
	b.WriteString("BS abort recoveries.\n\n")
	for _, name := range []string{"moesi", "berkeley", "dragon", "illinois", "write-once", "firefly"} {
		p, err := protocols.New(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "### %s\n\n```dot\n%s```\n\n", name, DOT(p.Table()))
	}
	return b.String()
}
