package tablegen

import (
	"strings"
	"testing"
)

// TestTable1MatchesPaper … TestTable7MatchesPaper are experiments
// T1–T7: the implementation regenerates each of the paper's tables
// cell for cell.

func artifactByID(t *testing.T, id string) Artifact {
	t.Helper()
	for _, a := range Artifacts() {
		if a.ID == id {
			return a
		}
	}
	t.Fatalf("no artifact %s", id)
	return Artifact{}
}

func requireNoDiff(t *testing.T, id string) {
	t.Helper()
	a := artifactByID(t, id)
	if diffs := a.Diff(); len(diffs) != 0 {
		t.Fatalf("%s (%s) diverges from the paper:\n  %s", a.ID, a.Title, strings.Join(diffs, "\n  "))
	}
	rendered := a.Render()
	if !strings.Contains(rendered, "|") {
		t.Fatalf("%s rendered nothing useful:\n%s", a.ID, rendered)
	}
}

func TestTable1MatchesPaper(t *testing.T) { requireNoDiff(t, "T1") }
func TestTable2MatchesPaper(t *testing.T) { requireNoDiff(t, "T2") }
func TestTable3MatchesPaper(t *testing.T) { requireNoDiff(t, "T3") }
func TestTable4MatchesPaper(t *testing.T) { requireNoDiff(t, "T4") }
func TestTable5MatchesPaper(t *testing.T) { requireNoDiff(t, "T5") }
func TestTable6MatchesPaper(t *testing.T) { requireNoDiff(t, "T6") }
func TestTable7MatchesPaper(t *testing.T) { requireNoDiff(t, "T7") }

// TestArtifactsComplete ensures every table artifact is present.
func TestArtifactsComplete(t *testing.T) {
	want := []string{"T1", "T2", "T3", "T4", "T5", "T6", "T7"}
	got := Artifacts()
	if len(got) != len(want) {
		t.Fatalf("got %d artifacts, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.ID != want[i] {
			t.Errorf("artifact %d: got %s, want %s", i, a.ID, want[i])
		}
	}
}

// TestTable1MarkersRendered checks the write-through and non-caching
// rows keep the paper's * and ** markers.
func TestTable1MarkersRendered(t *testing.T) {
	cells := Table1Cells()
	readMissCell := cells[4][0] // I row, Read column
	for _, want := range []string{"CH:S/E,CA,R", "S,CA,R*", "I,R**"} {
		if !strings.Contains(readMissCell, want) {
			t.Errorf("I/Read cell %q missing %q", readMissCell, want)
		}
	}
}

// TestDiffCellsDetectsDrift guards the diff machinery itself.
func TestDiffCellsDetectsDrift(t *testing.T) {
	got := [][]string{{"a", "b"}, {"c", "d"}}
	want := [][]string{{"a", "X"}, {"c", "d"}}
	diffs := DiffCells(got, want)
	if len(diffs) != 1 || diffs[0].Row != 0 || diffs[0].Col != 1 {
		t.Fatalf("unexpected diffs %v", diffs)
	}
}

// TestRenderGridShape checks headers and rows line up.
func TestRenderGridShape(t *testing.T) {
	out := RenderGrid("X", []string{"M", "I"}, []string{"c1", "c2"},
		[][]string{{"a", "b"}, {"c", "d"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "X") {
		t.Errorf("missing title: %q", lines[0])
	}
}

// TestRenderedTablesContainPaperCells spot-checks that the rendered
// artifacts contain signature cells from the paper.
func TestRenderedTablesContainPaperCells(t *testing.T) {
	signature := map[string]string{
		"T2": "CH:O/M,DI",         // the listening owner on column 7
		"T3": "O,CH,DI",           // Berkeley's intervening owner
		"T4": "CH:O/M,CA,IM,BC,W", // Dragon's broadcast write
		"T5": "E,CA,IM,W",         // Write-Once's first write
		"T6": "BS;S,CA,W",         // Illinois's abort-push
		"T7": "CH:S/E,CA,IM,BC,W", // Firefly's unowned broadcast write
	}
	for id, cell := range signature {
		a := artifactByID(t, id)
		if out := a.Render(); !strings.Contains(out, cell) {
			t.Errorf("%s rendering lacks signature cell %q:\n%s", id, cell, out)
		}
	}
}
