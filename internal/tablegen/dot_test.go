package tablegen

import (
	"strings"
	"testing"

	"futurebus/internal/core"
	"futurebus/internal/protocols"
)

// TestDOTStructure: the digraph declares every state and the signature
// transitions, with correct styles.
func TestDOTStructure(t *testing.T) {
	out := DOT(protocols.MOESI().Table())
	for _, want := range []string{
		"digraph \"MOESI\"",
		"  M;", "  O;", "  E;", "  S;", "  I;",
		"E -> M",        // silent write upgrade
		"M -> O",        // intervened read
		"style=dashed",  // snoop edges
		"[CH]", "[~CH]", // conditional split
		"Write: M", // local labels
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Read: M\"") {
		t.Error("silent read self-loop drawn")
	}
}

// TestDOTAbortEdges: the adapted protocols draw their BS recoveries
// dotted.
func TestDOTAbortEdges(t *testing.T) {
	out := DOT(protocols.Illinois().Table())
	if !strings.Contains(out, "style=dotted") {
		t.Errorf("Illinois DOT lacks abort edges:\n%s", out)
	}
	if !strings.Contains(out, "BS;S,CA,W") {
		t.Error("abort label missing")
	}
}

// TestDOTPartialTable: paper tables (partial columns) render without
// undefined rows.
func TestDOTPartialTable(t *testing.T) {
	out := DOT(core.PaperTable3())
	if strings.Contains(out, "  E;") {
		t.Error("Berkeley DOT declares an E state")
	}
	if !strings.Contains(out, "I -> S") {
		t.Error("Berkeley read miss edge missing")
	}
}

// TestDOTBalancedBraces: output is structurally sane for every
// registered protocol.
func TestDOTBalancedBraces(t *testing.T) {
	for _, name := range protocols.Names() {
		p, err := protocols.New(name)
		if err != nil {
			t.Fatal(err)
		}
		out := DOT(p.Table())
		if !strings.HasPrefix(out, "digraph") || !strings.HasSuffix(out, "}\n") {
			t.Errorf("%s: malformed DOT", name)
		}
		if strings.Count(out, "{") != strings.Count(out, "}") {
			t.Errorf("%s: unbalanced braces", name)
		}
	}
}
