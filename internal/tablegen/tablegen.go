// Package tablegen regenerates the paper's Tables 1–7 from the
// implementation and diffs them against the embedded paper specs —
// experiments T1–T7 of DESIGN.md. Tables 3–7 come straight from the
// protocol constructors; Tables 1 and 2 are rendered from the class
// itself (the entries core.LocalClass/SnoopClass tags with origin
// "Table 1"/"Table 2"), so a drift anywhere in the executable class
// shows up as a diff.
package tablegen

import (
	"fmt"
	"strings"

	"futurebus/internal/core"
	"futurebus/internal/protocols"
)

// Table1Cells renders Table 1 (MOESI local events, with the paper's
// variant markers) from the executable class definition.
func Table1Cells() [][]string {
	rows := make([][]string, len(core.States))
	for i, s := range core.States {
		row := make([]string, len(core.LocalEvents))
		for j, e := range core.LocalEvents {
			var alts []string
			for _, ent := range core.LocalClass(s, e) {
				if ent.Origin != "Table 1" {
					continue // relaxations are not printed in the table
				}
				alts = append(alts, ent.Action.String()+ent.Variant.Marker())
			}
			if len(alts) == 0 {
				row[j] = "-"
			} else {
				row[j] = strings.Join(alts, " or ")
			}
		}
		rows[i] = row
	}
	return rows
}

// Table2Cells renders Table 2 (MOESI bus events) from the executable
// class definition.
func Table2Cells() [][]string {
	rows := make([][]string, len(core.States))
	for i, s := range core.States {
		row := make([]string, len(core.BusEvents))
		for j, e := range core.BusEvents {
			var alts []string
			for _, ent := range core.SnoopClass(s, e) {
				if ent.Origin != "Table 2" {
					continue
				}
				alts = append(alts, ent.Action.String())
			}
			if len(alts) == 0 {
				row[j] = "-"
			} else {
				row[j] = strings.Join(alts, " or ")
			}
		}
		rows[i] = row
	}
	return rows
}

// CellDiff reports one mismatching cell between a generated grid and
// the paper's.
type CellDiff struct {
	Row, Col  int
	Got, Want string
}

func (d CellDiff) String() string {
	return fmt.Sprintf("row %d col %d: got %q, want %q", d.Row, d.Col, d.Got, d.Want)
}

// DiffCells compares two cell grids.
func DiffCells(got, want [][]string) []CellDiff {
	var out []CellDiff
	for i := range want {
		for j := range want[i] {
			g := ""
			if i < len(got) && j < len(got[i]) {
				g = got[i][j]
			}
			if g != want[i][j] {
				out = append(out, CellDiff{Row: i, Col: j, Got: g, Want: want[i][j]})
			}
		}
	}
	return out
}

// RenderGrid formats a cell grid with row/column headers in the paper's
// layout.
func RenderGrid(title string, rowHeads, colHeads []string, cells [][]string) string {
	widths := make([]int, len(colHeads)+1)
	for _, h := range rowHeads {
		widths[0] = maxInt(widths[0], len(h))
	}
	for j, h := range colHeads {
		widths[j+1] = len(h)
	}
	for _, row := range cells {
		for j, cell := range row {
			widths[j+1] = maxInt(widths[j+1], len(cell))
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-*s", widths[0], "")
	for j, h := range colHeads {
		fmt.Fprintf(&b, " | %-*s", widths[j+1], h)
	}
	b.WriteByte('\n')
	total := widths[0]
	for _, w := range widths[1:] {
		total += w + 3
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for i, row := range cells {
		fmt.Fprintf(&b, "%-*s", widths[0], rowHeads[i])
		for j, cell := range row {
			fmt.Fprintf(&b, " | %-*s", widths[j+1], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Artifact is one regenerable paper artifact.
type Artifact struct {
	ID    string // "T1" … "T7"
	Title string
	// Render produces the table text from the implementation.
	Render func() string
	// Diff compares implementation output against the paper spec.
	Diff func() []string
}

// stateHeads converts states to row headers.
func stateHeads(states []core.State) []string {
	out := make([]string, len(states))
	for i, s := range states {
		out[i] = s.Letter()
	}
	return out
}

// localHeads and busHeads name the columns as in the paper.
func localHeads(events []core.LocalEvent) []string {
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = fmt.Sprintf("%s(%d)", e, e.Note())
	}
	return out
}

func busHeads(events []core.BusEvent) []string {
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = fmt.Sprintf("%s(%d)", e, e.Column())
	}
	return out
}

// protocolArtifact builds the T3–T7 artifacts: the table of the
// protocol implementation actually used in simulation (the Extended
// full table), diffed against the paper spec over the paper's rows and
// columns — verifying both that the implementation matches the paper
// and that Extend preserved every original cell.
func protocolArtifact(id string, impl func() core.Policy, paper *core.Table) Artifact {
	return Artifact{
		ID:    id,
		Title: paper.Name,
		Render: func() string {
			sub := paper.Clone()
			sub.Name = paper.Name + " — regenerated from the " + impl().Name() + " implementation"
			impl2 := impl().Table()
			for _, s := range paper.States {
				for _, e := range paper.LocalEvents {
					sub.SetLocal(s, e, impl2.Local(s, e)...)
				}
				for _, e := range paper.BusEvents {
					sub.SetSnoop(s, e, impl2.Snoop(s, e)...)
				}
			}
			return sub.Render()
		},
		Diff: func() []string {
			var out []string
			for _, d := range impl().Table().Diff(paper) {
				out = append(out, d.String())
			}
			return out
		},
	}
}

// Artifacts returns all seven table artifacts, T1–T7.
func Artifacts() []Artifact {
	t1 := Artifact{
		ID:    "T1",
		Title: "Table 1 (MOESI local events)",
		Render: func() string {
			return RenderGrid("Table 1: MOESI Protocol — Result State and Bus Signals (local events)",
				stateHeads(core.States[:]), localHeads(core.LocalEvents[:]), Table1Cells())
		},
		Diff: func() []string {
			var out []string
			for _, d := range DiffCells(Table1Cells(), core.PaperTable1Cells()) {
				out = append(out, d.String())
			}
			return out
		},
	}
	t2 := Artifact{
		ID:    "T2",
		Title: "Table 2 (MOESI bus events)",
		Render: func() string {
			return RenderGrid("Table 2: MOESI Protocol — Result State and Bus Signals (bus events)",
				stateHeads(core.States[:]), busHeads(core.BusEvents[:]), Table2Cells())
		},
		Diff: func() []string {
			var out []string
			for _, d := range DiffCells(Table2Cells(), core.PaperTable2Cells()) {
				out = append(out, d.String())
			}
			return out
		},
	}
	return []Artifact{
		t1, t2,
		protocolArtifact("T3", protocols.Berkeley, core.PaperTable3()),
		protocolArtifact("T4", protocols.Dragon, core.PaperTable4()),
		protocolArtifact("T5", protocols.WriteOnce, core.PaperTable5()),
		protocolArtifact("T6", protocols.Illinois, core.PaperTable6()),
		protocolArtifact("T7", protocols.Firefly, core.PaperTable7()),
	}
}
