package tablegen

import (
	"fmt"
	"sort"
	"strings"

	"futurebus/internal/core"
)

// DOT renders a protocol table as a GraphViz digraph — the state
// diagram the paper's tables encode. Local-event transitions draw
// solid, snooped bus events dashed, BS abort recoveries dotted;
// CH-conditional results become two edges. Self-loops that carry no bus
// action (read hits and the like) are omitted to keep the diagram
// readable.
func DOT(t *core.Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", t.Name)
	b.WriteString("  rankdir=LR;\n  node [shape=circle, fontname=\"Helvetica\"];\n")
	b.WriteString("  edge [fontname=\"Helvetica\", fontsize=10];\n")

	states := map[core.State]bool{}
	for _, s := range t.States {
		states[s] = true
	}
	var order []core.State
	for _, s := range []core.State{core.Modified, core.Owned, core.Exclusive, core.Shared, core.Invalid} {
		if states[s] {
			order = append(order, s)
			fmt.Fprintf(&b, "  %s;\n", s.Letter())
		}
	}

	type edge struct {
		from, to core.State
		label    string
		style    string
	}
	var edges []edge
	add := func(from core.State, next core.CondState, label, style string) {
		if next.Conditional() {
			edges = append(edges, edge{from, next.OnCH, label + " [CH]", style})
			edges = append(edges, edge{from, next.NoCH, label + " [~CH]", style})
			return
		}
		edges = append(edges, edge{from, next.OnCH, label, style})
	}

	for _, s := range order {
		for _, e := range t.LocalEvents {
			for _, a := range t.Local(s, e) {
				if a.Op == core.BusReadThenWrite {
					continue // a composite of two drawn transitions
				}
				if !a.NeedsBus() && !a.Next.Conditional() && a.Next.NoCH == s {
					continue // silent self-loop (hit)
				}
				add(s, a.Next, fmt.Sprintf("%s: %s", e, a), "solid")
			}
		}
		for _, e := range t.BusEvents {
			for _, a := range t.Snoop(s, e) {
				if a.Abort != nil {
					edges = append(edges, edge{s, a.Abort.Next,
						fmt.Sprintf("col %d: %s", e.Column(), a), "dotted"})
					continue
				}
				if !a.Next.Conditional() && a.Next.NoCH == s {
					continue // state-preserving snoop
				}
				add(s, a.Next, fmt.Sprintf("col %d: %s", e.Column(), a), "dashed")
			}
		}
	}

	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from > edges[j].from
		}
		return edges[i].label < edges[j].label
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  %s -> %s [label=%q, style=%s];\n",
			e.from.Letter(), e.to.Letter(), e.label, e.style)
	}
	b.WriteString("}\n")
	return b.String()
}
