package verify_test

import (
	"fmt"

	"futurebus/internal/core"
	"futurebus/internal/verify"
)

// ExampleExplore proves the two-board class exhaustively consistent.
func ExampleExplore() {
	res := verify.Explore([]verify.Chooser{
		verify.ClassChooser{Variant: core.CopyBack},
		verify.ClassChooser{Variant: core.CopyBack},
	})
	fmt.Println(res.Ok(), res.States)
	// Output:
	// true 18
}
