package verify

import (
	"strings"
	"testing"

	"futurebus/internal/core"
	"futurebus/internal/protocols"
)

// TestClassExhaustivelyConsistent is the compatibility theorem, proved
// by exhaustion in the abstract model: two and three copy-back boards,
// each free to take ANY class action at every instant, never reach a
// state violating the §3.1 invariants.
func TestClassExhaustivelyConsistent(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		boards := make([]Chooser, n)
		for i := range boards {
			boards[i] = ClassChooser{Variant: core.CopyBack}
		}
		res := Explore(boards)
		if !res.Ok() {
			t.Fatalf("%d copy-back boards:\n%s", n, res)
		}
		if res.States < 10 {
			t.Fatalf("suspiciously small exploration: %s", res)
		}
		t.Logf("%d boards: %s", n, res)
	}
}

// TestClassWithWriteThroughAndUncached adds the * and ** variants of
// Table 1 to the mix — still exhaustively consistent.
func TestClassWithWriteThroughAndUncached(t *testing.T) {
	res := Explore([]Chooser{
		ClassChooser{Variant: core.CopyBack},
		ClassChooser{Variant: core.CopyBack},
		ClassChooser{Variant: core.WriteThrough},
		ClassChooser{Variant: core.NonCaching},
	})
	if !res.Ok() {
		t.Fatalf("mixed variants:\n%s", res)
	}
	t.Logf("%s", res)
}

// TestProtocolsSelfConsistent: each concrete protocol (its full
// extended table, including the BS cells of the adapted ones) is
// exhaustively consistent in a protocol-pure three-board system.
func TestProtocolsSelfConsistent(t *testing.T) {
	for _, name := range []string{
		"moesi", "moesi-invalidate", "moesi-update", "berkeley", "dragon",
		"illinois", "write-once", "firefly", "write-through", "synapse",
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := protocols.New(name)
			if err != nil {
				t.Fatal(err)
			}
			boards := []Chooser{
				TableChooser{Table: p.Table()},
				TableChooser{Table: p.Table()},
				TableChooser{Table: p.Table()},
			}
			res := Explore(boards)
			if !res.Ok() {
				t.Fatalf("%s:\n%s", name, res)
			}
			t.Logf("%s: %s", name, res)
		})
	}
}

// TestClassMembersMixExhaustively: true class members mix freely — the
// central claim of the paper, for every pair drawn from the in-class
// protocols plus a write-through board.
func TestClassMembersMixExhaustively(t *testing.T) {
	members := []string{"moesi", "moesi-invalidate", "moesi-update", "berkeley", "dragon"}
	for i, a := range members {
		for _, b := range members[i:] {
			pa, err := protocols.New(a)
			if err != nil {
				t.Fatal(err)
			}
			pb, err := protocols.New(b)
			if err != nil {
				t.Fatal(err)
			}
			wt, err := protocols.New("write-through")
			if err != nil {
				t.Fatal(err)
			}
			res := Explore([]Chooser{
				TableChooser{Table: pa.Table()},
				TableChooser{Table: pb.Table()},
				TableChooser{Table: wt.Table()},
			})
			if !res.Ok() {
				t.Errorf("%s + %s + write-through:\n%s", a, b, res)
			}
		}
	}
}

// TestWriteOnceHazardFound: the checker rediscovers why Write-Once's
// §4.3 adaptation is protocol-pure-only — mixed with an O-capable class
// member, its write-through-and-invalidate can leave the only current
// copy unowned with stale memory.
func TestWriteOnceHazardFound(t *testing.T) {
	wo, err := protocols.New("write-once")
	if err != nil {
		t.Fatal(err)
	}
	moesi, err := protocols.New("moesi")
	if err != nil {
		t.Fatal(err)
	}
	res := Explore([]Chooser{
		TableChooser{Table: wo.Table()},
		TableChooser{Table: moesi.Table()},
	})
	if res.Ok() {
		t.Fatal("the Write-Once × MOESI hazard was not found — either the adaptation is safe (it is not) or the model lost precision")
	}
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v.Reason, "memory is stale") || strings.Contains(v.Reason, "memory stale") {
			found = true
			t.Logf("hazard witness:\n%s", v)
			break
		}
	}
	if !found {
		t.Errorf("expected a stale-memory violation, got:\n%s", res)
	}
}

// TestFireflyHazardFound: same for Firefly's §4.5 unowned broadcast
// write.
func TestFireflyHazardFound(t *testing.T) {
	ff, err := protocols.New("firefly")
	if err != nil {
		t.Fatal(err)
	}
	berk, err := protocols.New("berkeley")
	if err != nil {
		t.Fatal(err)
	}
	res := Explore([]Chooser{
		TableChooser{Table: ff.Table()},
		TableChooser{Table: berk.Table()},
	})
	if res.Ok() {
		t.Fatal("the Firefly × Berkeley hazard was not found")
	}
	t.Logf("found %d violations (first: %s)", len(res.Violations), res.Violations[0].Reason)
}

// TestSynapseMixesSafely: Synapse (BS, no §4 adapted actions) shares a
// bus with any class member, unlike Write-Once/Firefly.
func TestSynapseMixesSafely(t *testing.T) {
	syn, err := protocols.New("synapse")
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range []string{"moesi", "berkeley", "dragon"} {
		p, err := protocols.New(other)
		if err != nil {
			t.Fatal(err)
		}
		res := Explore([]Chooser{
			TableChooser{Table: syn.Table()},
			TableChooser{Table: p.Table()},
			ClassChooser{Variant: core.NonCaching},
		})
		if !res.Ok() {
			t.Errorf("synapse × %s:\n%s", other, res)
		}
	}
}

// TestSynapseRefetchVariantSafe: the historically faithful Synapse
// write hit ("M,CA,IM,R" from S) is NotInClass under the letter of
// Table 1 but exhaustively safe — the model checker extends the
// validator's reach.
func TestSynapseRefetchVariantSafe(t *testing.T) {
	refetch := protocols.SynapseRefetchTable()
	if core.Validate(refetch, core.CopyBack).Verdict == core.RequiresBS {
		t.Log("note: refetch write-hit unexpectedly entered the class")
	}
	moesi, err := protocols.New("moesi")
	if err != nil {
		t.Fatal(err)
	}
	res := Explore([]Chooser{
		TableChooser{Table: refetch},
		TableChooser{Table: refetch},
		TableChooser{Table: moesi.Table()},
	})
	if !res.Ok() {
		t.Fatalf("refetch variant:\n%s", res)
	}
	t.Logf("refetch variant: %s", res)
}

// brokenChooser adds a silent shared write to an otherwise-legal class
// chooser — the textbook coherence bug.
type brokenChooser struct{ ClassChooser }

func (b brokenChooser) Name() string { return "broken" }

func (b brokenChooser) LocalChoices(s core.State, e core.LocalEvent) []core.LocalAction {
	out := b.ClassChooser.LocalChoices(s, e)
	if s == core.Shared && e == core.LocalWrite {
		out = append(out, core.LocalAction{Next: core.Uncond(core.Modified)})
	}
	return out
}

// TestBrokenPolicyCaught: the silent shared write produces a stale-copy
// violation with a usable trace.
func TestBrokenPolicyCaught(t *testing.T) {
	res := Explore([]Chooser{
		brokenChooser{ClassChooser{Variant: core.CopyBack}},
		ClassChooser{Variant: core.CopyBack},
	})
	if res.Ok() {
		t.Fatal("silent shared write not caught")
	}
	v := res.Violations[0]
	if len(v.Trace) == 0 {
		t.Error("violation has no trace")
	}
	t.Logf("caught:\n%s", v)
}

// TestIllegalCellReachedCaught: the partial paper tables (Berkeley as
// printed, columns 5–6 only) reach "—" cells on a full bus; the checker
// reports exactly that instead of guessing.
func TestIllegalCellReachedCaught(t *testing.T) {
	res := Explore([]Chooser{
		TableChooser{Table: core.PaperTable3()}, // partial: no col 7, no Flush
		ClassChooser{Variant: core.NonCaching},  // generates col 7/9
	})
	if res.Ok() {
		t.Fatal("partial table against a non-caching master should reach an undefined cell")
	}
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v.Reason, "—") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a \"—\"-reached violation:\n%s", res)
	}
}

// TestResultRendering: Result and Violation format usefully.
func TestResultRendering(t *testing.T) {
	res := Explore([]Chooser{ClassChooser{Variant: core.CopyBack}})
	if !strings.Contains(res.String(), "verified") {
		t.Errorf("ok result renders %q", res.String())
	}
	s := sysState{n: 2, memCurrent: true}
	s.boards[0] = boardView{state: core.Modified, current: true}
	s.boards[1] = boardView{state: core.Invalid}
	if got := s.String(); !strings.Contains(got, "[0:M+]") || !strings.Contains(got, "mem+") {
		t.Errorf("state renders %q", got)
	}
}

// TestWriteThroughMixesWithProtocolTables: a write-through board (a
// class member) mixes with every concrete protocol's full table —
// including the BS-adapted Illinois and Synapse, whose aborts are
// class-safe, but NOT the §4-adapted pure-only protocols.
func TestWriteThroughMixesWithProtocolTables(t *testing.T) {
	wt, err := protocols.New("write-through-broadcast")
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range []string{"moesi", "berkeley", "dragon", "illinois", "synapse"} {
		p, err := protocols.New(other)
		if err != nil {
			t.Fatal(err)
		}
		res := Explore([]Chooser{
			TableChooser{Table: p.Table()},
			TableChooser{Table: p.Table()},
			TableChooser{Table: wt.Table()},
		})
		if !res.Ok() {
			t.Errorf("%s × write-through:\n%s", other, res)
		}
	}
}

// TestFourWayProtocolMix: the widest tractable exploration — four
// different class members on one bus, every choice branch taken.
func TestFourWayProtocolMix(t *testing.T) {
	names := []string{"moesi", "berkeley", "dragon", "write-through-broadcast"}
	boards := make([]Chooser, len(names))
	for i, n := range names {
		p, err := protocols.New(n)
		if err != nil {
			t.Fatal(err)
		}
		boards[i] = TableChooser{Table: p.Table()}
	}
	res := Explore(boards)
	if !res.Ok() {
		t.Fatalf("four-way mix:\n%s", res)
	}
	t.Logf("four-way mix: %s", res)
}
