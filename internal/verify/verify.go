// Package verify is an exhaustive model checker for the MOESI class:
// it explores EVERY reachable state of a small abstract system (up to
// four boards, one line) under EVERY permitted choice of actions, and
// checks the §3.1 invariants in every state. Where the simulator
// samples behaviours, the checker enumerates them — it is the
// executable form of the paper's compatibility claim (§3.4: any board
// may take any permitted action at any instant).
//
// The abstraction tracks, per board, its MOESI state and one bit of
// data truth — whether its copy is CURRENT (holds the latest write) —
// plus the same bit for main memory. A write makes every copy that does
// not receive the written word stale; a full-line transfer inherits the
// currency of its source. This reduces the unbounded data domain to a
// finite state space (≤ 11^4·2 states for four boards) while preserving
// exactly the properties the consistency criterion is about.
//
// The checker proves, by exhaustion:
//   - the full class (with the note 9–12 relaxations, the write-through
//     rows and non-caching masters) maintains every invariant;
//   - each adapted protocol (Write-Once, Illinois, Firefly with their
//     BS actions) is self-consistent in a protocol-pure system;
//   - and it FINDS the documented hazard when Write-Once's or
//     Firefly's §4 local actions share a line with an O-capable
//     protocol — the reason core.RequiresAdaptation exists.
package verify

import (
	"fmt"

	"futurebus/internal/core"
)

// Chooser yields the permitted actions of one board, in any order. The
// checker branches over all of them.
type Chooser interface {
	Name() string
	// LocalChoices returns the permitted local actions in state s (nil
	// for an illegal case).
	LocalChoices(s core.State, e core.LocalEvent) []core.LocalAction
	// SnoopChoices returns the permitted snoop actions in state s for
	// a bus event.
	SnoopChoices(s core.State, e core.BusEvent) []core.SnoopAction
	// Snoops reports whether the board monitors the bus at all
	// (non-caching masters do not).
	Snoops() bool
}

// ClassChooser explores the full class for a client variant.
type ClassChooser struct {
	Variant core.Variant
}

// Name implements Chooser.
func (c ClassChooser) Name() string { return "class(" + c.Variant.String() + ")" }

// LocalChoices implements Chooser.
func (c ClassChooser) LocalChoices(s core.State, e core.LocalEvent) []core.LocalAction {
	return core.LocalChoicesFor(s, e, c.Variant)
}

// SnoopChoices implements Chooser.
func (c ClassChooser) SnoopChoices(s core.State, e core.BusEvent) []core.SnoopAction {
	return core.SnoopChoices(s, e)
}

// Snoops implements Chooser.
func (c ClassChooser) Snoops() bool { return c.Variant != core.NonCaching }

// TableChooser explores one protocol's table (all its alternatives,
// including BS abort cells).
type TableChooser struct {
	Table *core.Table
}

// Name implements Chooser.
func (c TableChooser) Name() string { return c.Table.Name }

// LocalChoices implements Chooser.
func (c TableChooser) LocalChoices(s core.State, e core.LocalEvent) []core.LocalAction {
	return c.Table.Local(s, e)
}

// SnoopChoices implements Chooser.
func (c TableChooser) SnoopChoices(s core.State, e core.BusEvent) []core.SnoopAction {
	return c.Table.Snoop(s, e)
}

// Snoops implements Chooser.
func (c TableChooser) Snoops() bool { return true }

// boardView is one board's slice of the abstract state.
type boardView struct {
	state core.State
	// current: this copy holds the latest written value. Meaningless
	// when state is Invalid.
	current bool
}

// sysState is the abstract machine state for up to maxBoards boards.
type sysState struct {
	n          int
	boards     [maxBoards]boardView
	memCurrent bool
}

// maxBoards bounds the exhaustive exploration (11^4·2 ≈ 29k states).
const maxBoards = 4

// key packs the state into a comparable value: 5 bits per board
// (state:3, current:1, spare) plus the memory bit.
func (s sysState) key() uint32 {
	k := uint32(0)
	for i := 0; i < s.n; i++ {
		b := uint32(s.boards[i].state) << 1
		if b > 0b1111 {
			panic("verify: state overflow")
		}
		if s.boards[i].current {
			b |= 1
		}
		k = k<<5 | b
	}
	k <<= 1
	if s.memCurrent {
		k |= 1
	}
	return k
}

func (s sysState) String() string {
	out := ""
	for i := 0; i < s.n; i++ {
		cur := "-"
		if s.boards[i].current {
			cur = "+"
		}
		if !s.boards[i].state.Valid() {
			cur = " "
		}
		out += fmt.Sprintf("[%d:%s%s]", i, s.boards[i].state.Letter(), cur)
	}
	if s.memCurrent {
		return out + " mem+"
	}
	return out + " mem-"
}

// Violation is one invariant breach, with the event path that reaches
// it from the initial state.
type Violation struct {
	State  sysState
	Reason string
	// Trace is the event path from power-on to the violating state.
	Trace []string
}

func (v Violation) String() string {
	out := fmt.Sprintf("%s: %s", v.State, v.Reason)
	for _, step := range v.Trace {
		out += "\n    after: " + step
	}
	return out
}

// Result summarises one exploration.
type Result struct {
	// States is the number of distinct reachable states.
	States int
	// Transitions is the number of transition edges explored.
	Transitions int
	// Violations holds every invariant breach found (empty = the
	// configuration is exhaustively verified).
	Violations []Violation
}

// Ok reports whether the exploration found no violations.
func (r Result) Ok() bool { return len(r.Violations) == 0 }

func (r Result) String() string {
	if r.Ok() {
		return fmt.Sprintf("verified: %d states, %d transitions, no violations", r.States, r.Transitions)
	}
	out := fmt.Sprintf("%d violations over %d states:", len(r.Violations), r.States)
	for i, v := range r.Violations {
		if i == 5 {
			out += fmt.Sprintf("\n  … and %d more", len(r.Violations)-i)
			break
		}
		out += "\n  " + v.String()
	}
	return out
}
