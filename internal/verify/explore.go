package verify

import (
	"fmt"

	"futurebus/internal/core"
)

// Explore runs the exhaustive check over all reachable states of a
// system of the given boards (one choice of Chooser per board, at most
// maxBoards). It returns the reachable-state count and every invariant
// violation, each with a shortest event path from power-on.
func Explore(boards []Chooser) Result {
	if len(boards) == 0 || len(boards) > maxBoards {
		panic(fmt.Sprintf("verify: need 1–%d boards, got %d", maxBoards, len(boards)))
	}
	e := &explorer{boards: boards}
	init := sysState{n: len(boards), memCurrent: true}
	for i := range boards {
		init.boards[i] = boardView{state: core.Invalid}
	}
	e.visit(init, 0, "power-on")
	for len(e.queue) > 0 {
		s := e.queue[0]
		e.queue = e.queue[1:]
		e.expand(s)
	}
	return e.result
}

type explorer struct {
	boards   []Chooser
	seen     map[uint32]prov
	queue    []sysState
	reported map[string]bool
	result   Result
}

// prov records how a state was first reached (for violation traces).
type prov struct {
	prev  uint32
	event string
}

// visit enqueues a state if new and records its provenance.
func (e *explorer) visit(s sysState, prevKey uint32, event string) {
	if e.seen == nil {
		e.seen = make(map[uint32]prov)
	}
	e.result.Transitions++
	k := s.key()
	if _, ok := e.seen[k]; ok {
		return
	}
	e.seen[k] = prov{prev: prevKey, event: event}
	e.result.States++
	e.queue = append(e.queue, s)
	e.checkInvariants(s)
}

// trace reconstructs the event path to a state.
func (e *explorer) trace(s sysState) []string {
	var out []string
	k := s.key()
	for depth := 0; depth < 64; depth++ {
		p, ok := e.seen[k]
		if !ok || p.event == "power-on" {
			break
		}
		out = append([]string{p.event}, out...)
		k = p.prev
	}
	return out
}

func (e *explorer) violate(s sysState, reason string) {
	if e.reported == nil {
		e.reported = make(map[string]bool)
	}
	key := fmt.Sprintf("%d|%s", s.key(), reason)
	if e.reported[key] {
		return
	}
	e.reported[key] = true
	e.result.Violations = append(e.result.Violations, Violation{
		State:  s,
		Reason: reason,
		Trace:  e.trace(s),
	})
}

// checkInvariants applies the §3.1 invariants to one state.
func (e *explorer) checkInvariants(s sysState) {
	owners, valids := 0, 0
	exclusiveAt := -1
	for i := 0; i < s.n; i++ {
		b := s.boards[i]
		if !b.state.Valid() {
			continue
		}
		valids++
		if b.state.OwnedCopy() {
			owners++
		}
		if b.state.ExclusiveCopy() {
			exclusiveAt = i
		}
		if !b.current {
			e.violate(s, fmt.Sprintf("board %d holds a stale %s copy (lost update)", i, b.state.Letter()))
		}
		if b.state == core.Exclusive && !s.memCurrent {
			e.violate(s, fmt.Sprintf("board %d holds E but memory is stale (§3.1.2)", i))
		}
	}
	if owners > 1 {
		e.violate(s, fmt.Sprintf("%d owners (§3.1.3: ownership is unique)", owners))
	}
	if exclusiveAt >= 0 && valids > 1 {
		e.violate(s, fmt.Sprintf("board %d claims exclusivity but %d copies exist (§3.1.2)", exclusiveAt, valids))
	}
	if owners == 0 && !s.memCurrent {
		e.violate(s, "no owner and memory stale (the shared image is lost, §3.1.3)")
	}
}

// expand generates every transition out of a state.
func (e *explorer) expand(s sysState) {
	for i := 0; i < s.n; i++ {
		e.expandLocalRead(s, i)
		e.expandLocalWrite(s, i)
		e.expandPush(s, i, core.Pass)
		e.expandPush(s, i, core.Flush)
	}
	e.expandClean(s)
}

// expandClean models the CmdClean command cycle (§6 extension): any
// owner pushes its line and keeps an unowned shareable copy; afterwards
// memory must hold the image — which the invariant check enforces on
// the resulting state (no owner ⇒ memory current).
func (e *explorer) expandClean(s sysState) {
	out := s
	changed := false
	for i := 0; i < s.n; i++ {
		if s.boards[i].state.OwnedCopy() {
			out.memCurrent = s.boards[i].current
			out.boards[i].state = core.Shared
			changed = true
		}
	}
	if !changed {
		return // no owner: clean is a no-op address cycle
	}
	e.visit(out, s.key(), "CmdClean (owner pushed, kept S)")
}

// snoopPick is one snooper's chosen response.
type snoopPick struct {
	board  int
	action core.SnoopAction
}

// snoopCombos enumerates the cartesian product of every other board's
// permitted snoop responses to (col). An empty permitted set for a
// VALID state is the tables' "—": reaching it is itself a violation
// (the event is illegal for that board's protocol), reported once and
// skipped.
func (e *explorer) snoopCombos(s sysState, master int, col core.BusEvent, label string) [][]snoopPick {
	combos := [][]snoopPick{{}}
	for j := 0; j < s.n; j++ {
		if j == master || !e.boards[j].Snoops() {
			continue
		}
		st := s.boards[j].state
		if st == core.Invalid {
			continue // stays silent and Invalid
		}
		choices := e.boards[j].SnoopChoices(st, col)
		if len(choices) == 0 {
			e.violate(s, fmt.Sprintf("board %d (%s) has no action for col %d in state %s (\"—\" reached) during %s",
				j, e.boards[j].Name(), col.Column(), st.Letter(), label))
			return nil
		}
		var next [][]snoopPick
		for _, combo := range combos {
			for _, a := range choices {
				nc := make([]snoopPick, len(combo), len(combo)+1)
				copy(nc, combo)
				next = append(next, append(nc, snoopPick{board: j, action: a}))
			}
		}
		combos = next
	}
	return combos
}

// resolveSnoops applies a combo to the state: returns the new state,
// the master-visible CH, the DI asserter (-1 none), or aborted=true if
// any snooper asserted BS (in which case the recoveries are applied and
// the master's transaction dies; the retry is a fresh event from the
// post-push state).
func (e *explorer) resolveSnoops(s sysState, master int, combo []snoopPick, isWrite, receivedWord func(a core.SnoopAction) bool) (out sysState, ch bool, di int, aborted bool, ok bool) {
	out = s
	di = -1
	// BS first: any abort kills the attempt.
	for _, p := range combo {
		if p.action.Abort != nil {
			aborted = true
			rec := p.action.Abort
			// The recovery push writes the owner's line to memory.
			out.memCurrent = out.boards[p.board].current
			out.boards[p.board].state = rec.Next
			if !rec.Next.Valid() {
				out.boards[p.board] = boardView{state: core.Invalid}
			}
		}
	}
	if aborted {
		return out, false, -1, true, true
	}

	for _, p := range combo {
		if p.action.AssertCH {
			ch = true
		}
		if p.action.AssertDI {
			if di >= 0 {
				e.violate(s, fmt.Sprintf("boards %d and %d both assert DI (duplicate owners)", di, p.board))
				return out, false, -1, false, false
			}
			di = p.board
		}
	}

	for _, p := range combo {
		otherCH := false
		for _, q := range combo {
			if q.board != p.board && q.action.AssertCH {
				otherCH = true
			}
		}
		next := p.action.Next.Resolve(otherCH)
		if !next.Valid() {
			out.boards[p.board] = boardView{state: core.Invalid}
			continue
		}
		out.boards[p.board].state = next
		if isWrite != nil && isWrite(p.action) {
			// A write event: the copy stays current only if it was
			// current AND receives the written word.
			out.boards[p.board].current = s.boards[p.board].current && receivedWord(p.action)
		}
	}
	return out, ch, di, false, true
}

// expandLocalRead: a read miss (or an uncached read) by board i.
func (e *explorer) expandLocalRead(s sysState, i int) {
	if s.boards[i].state != core.Invalid {
		return // read hits change nothing
	}
	for _, a := range e.boards[i].LocalChoices(core.Invalid, core.LocalRead) {
		if a.Op != core.BusRead {
			continue
		}
		col := core.ClassifyBusEvent(a.Assert)
		label := fmt.Sprintf("board %d read miss (%s, col %d)", i, a, col.Column())
		for _, combo := range e.snoopCombos(s, i, col, label) {
			out, ch, di, aborted, ok := e.resolveSnoops(s, i, combo, nil, nil)
			if !ok {
				continue
			}
			if aborted {
				e.visit(out, s.key(), label+" — aborted (BS), owner pushed")
				continue
			}
			srcCurrent := out.memCurrent
			if di >= 0 {
				srcCurrent = s.boards[di].current
			}
			next := a.Next.Resolve(ch)
			if next.Valid() {
				out.boards[i] = boardView{state: next, current: srcCurrent}
			}
			if !srcCurrent {
				e.violate(out, fmt.Sprintf("board %d read stale data (source %s)", i, source(di)))
			}
			e.visit(out, s.key(), label)
		}
	}
}

func source(di int) string {
	if di < 0 {
		return "memory"
	}
	return fmt.Sprintf("board %d (DI)", di)
}

// expandLocalWrite: every permitted write action of board i.
func (e *explorer) expandLocalWrite(s sysState, i int) {
	st := s.boards[i].state
	for _, a := range e.boards[i].LocalChoices(st, core.LocalWrite) {
		switch a.Op {
		case core.BusNone:
			// Silent write (M/E): every other copy and memory miss the
			// word.
			out := s
			out.memCurrent = false
			out.boards[i].state = a.Next.Resolve(false)
			out.boards[i].current = s.boards[i].current
			e.visit(out, s.key(), fmt.Sprintf("board %d silent write (%s)", i, a))
		case core.BusAddrOnly:
			e.expandBusWrite(s, i, a, false)
		case core.BusWrite:
			e.expandBusWrite(s, i, a, true)
		case core.BusRead:
			e.expandRFO(s, i, a)
		case core.BusReadThenWrite:
			// Covered by a read-miss event followed by a write event.
		}
	}
}

// expandBusWrite handles write-hit announcements (broadcast, address-
// only invalidate, write-through / uncached writes).
func (e *explorer) expandBusWrite(s sysState, i int, a core.LocalAction, hasData bool) {
	col := core.ClassifyBusEvent(a.Assert)
	bc := a.Assert.Has(core.SigBC)
	label := fmt.Sprintf("board %d write (%s, col %d)", i, a, col.Column())
	received := func(p core.SnoopAction) bool {
		return hasData && (p.AssertSL || p.AssertDI)
	}
	for _, combo := range e.snoopCombos(s, i, col, label) {
		out, ch, di, aborted, ok := e.resolveSnoops(s, i, combo, func(core.SnoopAction) bool { return true }, received)
		if !ok {
			continue
		}
		if aborted {
			e.visit(out, s.key(), label+" — aborted (BS), owner pushed")
			continue
		}
		// Memory receives the word on a broadcast, or on a
		// non-broadcast data write nobody captured.
		memReceives := hasData && (bc || di < 0)
		out.memCurrent = s.memCurrent && memReceives
		// The writer's retained copy gets the word; it is current iff
		// its pre-write copy was current. A writer with no prior copy
		// (write-through/uncached miss) retains nothing.
		next := a.Next.Resolve(ch)
		if next.Valid() {
			wasCurrent := s.boards[i].current
			if s.boards[i].state == core.Invalid {
				// Retaining a copy after a miss-write without a fetch
				// would be a partial line; the class has no such
				// action, flag it if a chooser invents one.
				e.violate(out, fmt.Sprintf("board %d retains a copy after a fetchless miss write (%s)", i, a))
				wasCurrent = false
			}
			out.boards[i] = boardView{state: next, current: wasCurrent}
		} else {
			out.boards[i] = boardView{state: core.Invalid}
		}
		e.visit(out, s.key(), label)
	}
}

// expandRFO handles the read-for-modify write miss ("M,CA,IM,R").
func (e *explorer) expandRFO(s sysState, i int, a core.LocalAction) {
	col := core.ClassifyBusEvent(a.Assert) // CA,IM → column 6
	label := fmt.Sprintf("board %d write miss RFO (%s)", i, a)
	for _, combo := range e.snoopCombos(s, i, col, label) {
		out, ch, di, aborted, ok := e.resolveSnoops(s, i, combo, nil, nil)
		if !ok {
			continue
		}
		if aborted {
			e.visit(out, s.key(), label+" — aborted (BS), owner pushed")
			continue
		}
		srcCurrent := out.memCurrent
		if di >= 0 {
			srcCurrent = s.boards[di].current
		}
		if !srcCurrent {
			e.violate(out, fmt.Sprintf("board %d RFO fetched stale data (source %s)", i, source(di)))
		}
		// Fetched line + the new word: current iff the source was.
		out.boards[i] = boardView{state: a.Next.Resolve(ch), current: srcCurrent}
		// Memory missed the new word.
		out.memCurrent = false
		e.visit(out, s.key(), label)
	}
}

// expandPush handles Pass (keep a copy) and Flush (drop it), including
// eviction of clean lines.
func (e *explorer) expandPush(s sysState, i int, ev core.LocalEvent) {
	st := s.boards[i].state
	if st == core.Invalid {
		return
	}
	for _, a := range e.boards[i].LocalChoices(st, ev) {
		if !a.NeedsBus() {
			// Silent drop of a clean line.
			out := s
			out.boards[i] = boardView{state: core.Invalid}
			e.visit(out, s.key(), fmt.Sprintf("board %d %s (silent)", i, ev))
			continue
		}
		if a.Op != core.BusWrite {
			continue
		}
		col := core.ClassifyBusEvent(a.Assert) // col 5 (Pass, CA) or col 7 (Flush)
		label := fmt.Sprintf("board %d %s (%s, col %d)", i, ev, a, col.Column())
		for _, combo := range e.snoopCombos(s, i, col, label) {
			// A write-back is NOT a new write: nobody's currency
			// changes; memory inherits the pusher's.
			out, ch, di, aborted, ok := e.resolveSnoops(s, i, combo, nil, nil)
			if !ok {
				continue
			}
			if aborted {
				e.visit(out, s.key(), label+" — aborted (BS)")
				continue
			}
			if di >= 0 {
				// Another owner capturing our push would mean two
				// owners; the invariant check catches the state, note
				// the event too.
				e.violate(s, fmt.Sprintf("board %d asserted DI against board %d's push", di, i))
			}
			out.memCurrent = s.boards[i].current
			next := a.Next.Resolve(ch)
			if next.Valid() {
				out.boards[i].state = next
				out.boards[i].current = s.boards[i].current
			} else {
				out.boards[i] = boardView{state: core.Invalid}
			}
			e.visit(out, s.key(), label)
		}
	}
}
