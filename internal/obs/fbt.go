package obs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The .fbt binary trace format: the full event stream of a run,
// varint-encoded, with a self-describing header — the offline
// counterpart of the live sinks. A recorded run can be replayed through
// any Sink (Chrome trace, JSONL, attribution, the causal analyzer)
// without re-running the simulation.
//
//	file   := magic "FBT1" | uvarint version | str fingerprint
//	          | uvarint nkinds | str × nkinds          (seed kind dict)
//	          | event*
//	event  := uvarint kindRef | uvarint flags | fields
//	str    := uvarint len | bytes
//
// kindRef and the Op/From/To/Cause strings use a streaming dictionary:
// a reference equal to the current dictionary size introduces a new
// entry (a str follows inline), so the format needs no registry and
// later schema additions decode against older readers of the same
// version. Seq and TS are delta-encoded against the previous event;
// signed fields use zigzag. Field presence is a flags bitmap, so the
// common instant event costs a handful of bytes.
const (
	// TraceMagic starts every .fbt file.
	TraceMagic = "FBT1"
	// TraceVersion is the schema version written (and the only one
	// accepted) by this package.
	TraceVersion = 1
)

// TraceMeta is the self-describing header payload of a trace: enough
// to tell two recordings apart before comparing them.
type TraceMeta struct {
	// Fingerprint identifies the configuration that produced the run
	// (protocol mix, workload, seed, engine) — fbcausal diff refuses to
	// silently compare apples to oranges without it.
	Fingerprint string `json:"fingerprint"`
}

// Decoder hardening: a corrupt or adversarial file must fail with an
// error, never an allocation blow-up.
const (
	maxTraceString = 1 << 16
	maxTraceDict   = 1 << 20
)

// Event field presence bits (flags bitmap). CH/DI/SL are valueless:
// the bit is the value.
//
// APPEND-ONLY: the bit positions here and the seedKinds order below are
// wire format. A new field gets the next free bit and its value is
// encoded/decoded AFTER every existing field; a new kind is appended to
// seedKinds. Reordering or removing either breaks every .fbt trace
// already on disk without a TraceVersion bump — TestFbtSchemaAppendOnly
// pins both.
const (
	fbtDur = 1 << iota
	fbtCol
	fbtOp
	fbtFrom
	fbtTo
	fbtCause
	fbtCH
	fbtDI
	fbtSL
	fbtRetries
	fbtBytes
	fbtArbNS
	fbtAddrNS
	fbtDataNS
	fbtIntvNS
	fbtMemNS
	fbtRetryNS
	fbtTxID
	fbtCauseID
	fbtProto
	fbtPendNS
	fbtDeferNS
)

// seedKinds is the kind dictionary written into the header, in a fixed
// order so identical runs encode byte-identically. Unknown kinds are
// appended to the stream dictionary on first use. APPEND-ONLY (see the
// flag-bit comment above).
var seedKinds = []Kind{
	KindTx, KindGrant, KindAbort, KindRecover, KindState, KindIntervene,
	KindUpdate, KindCapture, KindEvict, KindStall, KindBlocked,
	KindMemRead, KindMemWrite,
	KindPend, KindData, KindNack, KindRetryExhausted,
}

// RecordSink serialises the event stream to a .fbt binary trace. It
// implements Sink, so attaching it to a Recorder records the run; the
// encoding is a few varints per event, cheap enough to stay under the
// recording-overhead budget (see BenchmarkObsRecordingOverhead).
type RecordSink struct {
	bw      *bufio.Writer
	scratch []byte
	kinds   map[Kind]uint64
	strs    map[string]uint64
	prevSeq uint64
	prevTS  int64
	err     error
}

// NewRecordSink creates a sink writing the header immediately and one
// compact record per consumed event.
func NewRecordSink(w io.Writer, meta TraceMeta) *RecordSink {
	s := &RecordSink{
		bw:    bufio.NewWriterSize(w, 1<<16),
		kinds: make(map[Kind]uint64, len(seedKinds)),
		strs:  make(map[string]uint64),
	}
	b := s.scratch[:0]
	b = append(b, TraceMagic...)
	b = binary.AppendUvarint(b, TraceVersion)
	b = appendString(b, meta.Fingerprint)
	b = binary.AppendUvarint(b, uint64(len(seedKinds)))
	for i, k := range seedKinds {
		s.kinds[k] = uint64(i)
		b = appendString(b, string(k))
	}
	_, s.err = s.bw.Write(b)
	s.scratch = b[:0]
	return s
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// zigzag folds a signed value into an unsigned varint-friendly one.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendRef encodes a dictionary reference, introducing s inline when
// it is new.
func (s *RecordSink) appendRef(b []byte, v string) []byte {
	idx, ok := s.strs[v]
	if !ok {
		idx = uint64(len(s.strs))
		s.strs[v] = idx
		b = binary.AppendUvarint(b, idx)
		return appendString(b, v)
	}
	return binary.AppendUvarint(b, idx)
}

// Consume implements Sink.
func (s *RecordSink) Consume(e *Event) {
	if s.err != nil {
		return
	}
	var flags uint64
	if e.Dur != 0 {
		flags |= fbtDur
	}
	if e.Col != 0 {
		flags |= fbtCol
	}
	if e.Op != "" {
		flags |= fbtOp
	}
	if e.From != "" {
		flags |= fbtFrom
	}
	if e.To != "" {
		flags |= fbtTo
	}
	if e.Cause != "" {
		flags |= fbtCause
	}
	if e.CH {
		flags |= fbtCH
	}
	if e.DI {
		flags |= fbtDI
	}
	if e.SL {
		flags |= fbtSL
	}
	if e.Retries != 0 {
		flags |= fbtRetries
	}
	if e.Bytes != 0 {
		flags |= fbtBytes
	}
	if e.ArbNS != 0 {
		flags |= fbtArbNS
	}
	if e.AddrNS != 0 {
		flags |= fbtAddrNS
	}
	if e.DataNS != 0 {
		flags |= fbtDataNS
	}
	if e.IntvNS != 0 {
		flags |= fbtIntvNS
	}
	if e.MemNS != 0 {
		flags |= fbtMemNS
	}
	if e.RetryNS != 0 {
		flags |= fbtRetryNS
	}
	if e.TxID != 0 {
		flags |= fbtTxID
	}
	if e.CauseID != 0 {
		flags |= fbtCauseID
	}
	if e.Proto != "" {
		flags |= fbtProto
	}
	if e.PendNS != 0 {
		flags |= fbtPendNS
	}
	if e.DeferNS != 0 {
		flags |= fbtDeferNS
	}

	b := s.scratch[:0]
	kindIdx, ok := s.kinds[e.Kind]
	if !ok {
		kindIdx = uint64(len(s.kinds))
		s.kinds[e.Kind] = kindIdx
		b = binary.AppendUvarint(b, kindIdx)
		b = appendString(b, string(e.Kind))
	} else {
		b = binary.AppendUvarint(b, kindIdx)
	}
	b = binary.AppendUvarint(b, flags)
	// Always-present fields: wraparound deltas reproduce any uint64 /
	// int64 exactly while keeping in-order streams to 1–2 bytes each.
	b = binary.AppendUvarint(b, e.Seq-s.prevSeq)
	b = binary.AppendUvarint(b, uint64(e.TS)-uint64(s.prevTS))
	s.prevSeq, s.prevTS = e.Seq, e.TS
	b = binary.AppendUvarint(b, zigzag(int64(e.Bus)))
	b = binary.AppendUvarint(b, zigzag(int64(e.Proc)))
	b = binary.AppendUvarint(b, e.Addr)
	if flags&fbtDur != 0 {
		b = binary.AppendUvarint(b, zigzag(e.Dur))
	}
	if flags&fbtCol != 0 {
		b = binary.AppendUvarint(b, zigzag(int64(e.Col)))
	}
	if flags&fbtOp != 0 {
		b = s.appendRef(b, e.Op)
	}
	if flags&fbtFrom != 0 {
		b = s.appendRef(b, e.From)
	}
	if flags&fbtTo != 0 {
		b = s.appendRef(b, e.To)
	}
	if flags&fbtCause != 0 {
		b = s.appendRef(b, e.Cause)
	}
	if flags&fbtRetries != 0 {
		b = binary.AppendUvarint(b, zigzag(int64(e.Retries)))
	}
	if flags&fbtBytes != 0 {
		b = binary.AppendUvarint(b, zigzag(int64(e.Bytes)))
	}
	for _, ph := range [...]struct {
		bit uint64
		v   int64
	}{
		{fbtArbNS, e.ArbNS}, {fbtAddrNS, e.AddrNS}, {fbtDataNS, e.DataNS},
		{fbtIntvNS, e.IntvNS}, {fbtMemNS, e.MemNS}, {fbtRetryNS, e.RetryNS},
	} {
		if flags&ph.bit != 0 {
			b = binary.AppendUvarint(b, zigzag(ph.v))
		}
	}
	if flags&fbtTxID != 0 {
		b = binary.AppendUvarint(b, e.TxID)
	}
	if flags&fbtCauseID != 0 {
		b = binary.AppendUvarint(b, e.CauseID)
	}
	if flags&fbtProto != 0 {
		b = s.appendRef(b, e.Proto)
	}
	if flags&fbtPendNS != 0 {
		b = binary.AppendUvarint(b, zigzag(e.PendNS))
	}
	if flags&fbtDeferNS != 0 {
		b = binary.AppendUvarint(b, zigzag(e.DeferNS))
	}
	_, s.err = s.bw.Write(b)
	s.scratch = b[:0]
}

// Flush implements Sink.
func (s *RecordSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// TraceReader decodes a .fbt stream event by event.
type TraceReader struct {
	br      *bufio.Reader
	meta    TraceMeta
	kinds   []Kind
	strs    []string
	prevSeq uint64
	prevTS  int64
	n       int64
}

// NewTraceReader validates the header and positions the reader at the
// first event.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	t := &TraceReader{br: bufio.NewReaderSize(r, 1<<16)}
	magic := make([]byte, len(TraceMagic))
	if _, err := io.ReadFull(t.br, magic); err != nil {
		return nil, fmt.Errorf("obs: fbt header: %w", err)
	}
	if string(magic) != TraceMagic {
		return nil, fmt.Errorf("obs: not an .fbt trace (magic %q)", magic)
	}
	version, err := t.uvarint()
	if err != nil {
		return nil, fmt.Errorf("obs: fbt header version: %w", err)
	}
	if version != TraceVersion {
		return nil, fmt.Errorf("obs: unsupported .fbt schema version %d (want %d)", version, TraceVersion)
	}
	if t.meta.Fingerprint, err = t.string(); err != nil {
		return nil, fmt.Errorf("obs: fbt header fingerprint: %w", err)
	}
	nkinds, err := t.uvarint()
	if err != nil {
		return nil, fmt.Errorf("obs: fbt header kind table: %w", err)
	}
	if nkinds > maxTraceDict {
		return nil, fmt.Errorf("obs: fbt header kind table too large (%d)", nkinds)
	}
	for i := uint64(0); i < nkinds; i++ {
		k, err := t.string()
		if err != nil {
			return nil, fmt.Errorf("obs: fbt header kind %d: %w", i, err)
		}
		t.kinds = append(t.kinds, Kind(k))
	}
	return t, nil
}

// Meta returns the header metadata.
func (t *TraceReader) Meta() TraceMeta { return t.meta }

// Count returns how many events have been decoded so far.
func (t *TraceReader) Count() int64 { return t.n }

func (t *TraceReader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(t.br)
	if err == io.EOF {
		// EOF inside a value is truncation, not a clean end; only Next's
		// first byte may see a bare EOF.
		err = io.ErrUnexpectedEOF
	}
	return v, err
}

func (t *TraceReader) string() (string, error) {
	n, err := t.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxTraceString {
		return "", fmt.Errorf("string length %d exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(t.br, b); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return "", err
	}
	return string(b), nil
}

// ref resolves a dictionary reference, accepting an inline new entry.
func (t *TraceReader) ref() (string, error) {
	idx, err := t.uvarint()
	if err != nil {
		return "", err
	}
	switch {
	case idx < uint64(len(t.strs)):
		return t.strs[idx], nil
	case idx == uint64(len(t.strs)):
		if idx >= maxTraceDict {
			return "", fmt.Errorf("string dictionary exceeds %d entries", maxTraceDict)
		}
		s, err := t.string()
		if err != nil {
			return "", err
		}
		t.strs = append(t.strs, s)
		return s, nil
	default:
		return "", fmt.Errorf("string ref %d beyond dictionary (%d entries)", idx, len(t.strs))
	}
}

// Next decodes one event into e. It returns io.EOF at a clean end of
// stream; any other error (including truncation mid-event) is fatal.
func (t *TraceReader) Next(e *Event) error {
	kindRef, err := binary.ReadUvarint(t.br)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("obs: fbt event %d: %w", t.n, err)
	}
	fail := func(field string, err error) error {
		return fmt.Errorf("obs: fbt event %d %s: %w", t.n, field, err)
	}
	*e = Event{}
	switch {
	case kindRef < uint64(len(t.kinds)):
		e.Kind = t.kinds[kindRef]
	case kindRef == uint64(len(t.kinds)):
		if kindRef >= maxTraceDict {
			return fail("kind", fmt.Errorf("kind dictionary exceeds %d entries", maxTraceDict))
		}
		k, err := t.string()
		if err != nil {
			return fail("kind", err)
		}
		t.kinds = append(t.kinds, Kind(k))
		e.Kind = Kind(k)
	default:
		return fail("kind", fmt.Errorf("ref %d beyond dictionary (%d entries)", kindRef, len(t.kinds)))
	}
	flags, err := t.uvarint()
	if err != nil {
		return fail("flags", err)
	}
	seqDelta, err := t.uvarint()
	if err != nil {
		return fail("seq", err)
	}
	t.prevSeq += seqDelta
	e.Seq = t.prevSeq
	tsDelta, err := t.uvarint()
	if err != nil {
		return fail("ts", err)
	}
	t.prevTS = int64(uint64(t.prevTS) + tsDelta)
	e.TS = t.prevTS
	for _, f := range [...]struct {
		name string
		dst  *int
	}{{"bus", &e.Bus}, {"proc", &e.Proc}} {
		v, err := t.uvarint()
		if err != nil {
			return fail(f.name, err)
		}
		*f.dst = int(unzigzag(v))
	}
	if e.Addr, err = t.uvarint(); err != nil {
		return fail("addr", err)
	}
	if flags&fbtDur != 0 {
		v, err := t.uvarint()
		if err != nil {
			return fail("dur", err)
		}
		e.Dur = unzigzag(v)
	}
	if flags&fbtCol != 0 {
		v, err := t.uvarint()
		if err != nil {
			return fail("col", err)
		}
		e.Col = int(unzigzag(v))
	}
	for _, f := range [...]struct {
		name string
		bit  uint64
		dst  *string
	}{
		{"op", fbtOp, &e.Op}, {"from", fbtFrom, &e.From},
		{"to", fbtTo, &e.To}, {"cause", fbtCause, &e.Cause},
	} {
		if flags&f.bit == 0 {
			continue
		}
		if *f.dst, err = t.ref(); err != nil {
			return fail(f.name, err)
		}
	}
	e.CH = flags&fbtCH != 0
	e.DI = flags&fbtDI != 0
	e.SL = flags&fbtSL != 0
	if flags&fbtRetries != 0 {
		v, err := t.uvarint()
		if err != nil {
			return fail("retries", err)
		}
		e.Retries = int(unzigzag(v))
	}
	if flags&fbtBytes != 0 {
		v, err := t.uvarint()
		if err != nil {
			return fail("bytes", err)
		}
		e.Bytes = int(unzigzag(v))
	}
	for _, f := range [...]struct {
		name string
		bit  uint64
		dst  *int64
	}{
		{"arb_ns", fbtArbNS, &e.ArbNS}, {"addr_ns", fbtAddrNS, &e.AddrNS},
		{"data_ns", fbtDataNS, &e.DataNS}, {"intv_ns", fbtIntvNS, &e.IntvNS},
		{"mem_ns", fbtMemNS, &e.MemNS}, {"retry_ns", fbtRetryNS, &e.RetryNS},
	} {
		if flags&f.bit == 0 {
			continue
		}
		v, err := t.uvarint()
		if err != nil {
			return fail(f.name, err)
		}
		*f.dst = unzigzag(v)
	}
	if flags&fbtTxID != 0 {
		if e.TxID, err = t.uvarint(); err != nil {
			return fail("txid", err)
		}
	}
	if flags&fbtCauseID != 0 {
		if e.CauseID, err = t.uvarint(); err != nil {
			return fail("cause_id", err)
		}
	}
	if flags&fbtProto != 0 {
		if e.Proto, err = t.ref(); err != nil {
			return fail("proto", err)
		}
	}
	for _, f := range [...]struct {
		name string
		bit  uint64
		dst  *int64
	}{
		{"pend_ns", fbtPendNS, &e.PendNS}, {"defer_ns", fbtDeferNS, &e.DeferNS},
	} {
		if flags&f.bit == 0 {
			continue
		}
		v, err := t.uvarint()
		if err != nil {
			return fail(f.name, err)
		}
		*f.dst = unzigzag(v)
	}
	t.n++
	return nil
}

// ReplayTrace feeds every event of a recorded .fbt stream to the sinks
// in order — the offline analogue of a Recorder drain. The sinks are
// not flushed; the caller decides when output is final.
func ReplayTrace(r io.Reader, sinks ...Sink) (TraceMeta, int64, error) {
	t, err := NewTraceReader(r)
	if err != nil {
		return TraceMeta{}, 0, err
	}
	var e Event
	for {
		err := t.Next(&e)
		if err == io.EOF {
			return t.meta, t.n, nil
		}
		if err != nil {
			return t.meta, t.n, err
		}
		for _, s := range sinks {
			s.Consume(&e)
		}
	}
}
