package coherence

import (
	"fmt"
	"io"
	"sort"

	"futurebus/internal/obs/regress"
)

// DiffRow compares one per-protocol coherence rate between two runs.
type DiffRow struct {
	Proto  string  `json:"proto"`
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	Delta  float64 `json:"delta"`
	// Rel is Delta/Old (0 when Old is 0).
	Rel float64 `json:"rel"`
	// Regression is set when the metric moved in its bad direction
	// past both thresholds.
	Regression bool `json:"regression,omitempty"`
}

// DiffReport is the result of comparing two analyses.
type DiffReport struct {
	Rows        []DiffRow `json:"rows"`
	Regressions int       `json:"regressions"`
	// MatrixDelta sums |new-old| over every transition-matrix cell,
	// per protocol — a quick "did the protocol behave differently at
	// all" signal.
	MatrixDelta map[string]int64 `json:"matrix_delta,omitempty"`
}

// diffMetric defines one compared rate. worseUp: an increase is bad
// (more invalidation traffic, more memory trips); worseDown would be
// the opposite — every current metric is worseUp except cache-sourced
// share, where a drop is the regression.
type diffMetric struct {
	name    string
	value   func(*ProtoAnalysis) float64
	worseUp bool
}

var diffMetrics = []diffMetric{
	{"inv-per-transition", func(p *ProtoAnalysis) float64 { return rate(p.Invalidations, p.Transitions) }, true},
	{"ownership-moves-per-transition", func(p *ProtoAnalysis) float64 { return rate(p.OwnershipMoves, p.Transitions) }, true},
	{"inv-fanout-mean", func(p *ProtoAnalysis) float64 { return FanoutMean(p.InvFanout) }, true},
	{"upd-fanout-mean", func(p *ProtoAnalysis) float64 { return FanoutMean(p.UpdFanout) }, true},
	{"mem-sourced-share", func(p *ProtoAnalysis) float64 { return rate(p.MemSourced, p.CacheSourced+p.MemSourced) }, true},
	{"cache-sourced-share", func(p *ProtoAnalysis) float64 { return rate(p.CacheSourced, p.CacheSourced+p.MemSourced) }, false},
}

func rate(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Diff compares two analyses protocol by protocol. A row is a
// regression when the metric moved in its bad direction by more than
// absThresh absolutely AND more than relThresh relatively (so tiny
// rates can't trip the relative gate, and identical runs always diff
// clean — the shared regress.Thresholds double gate). Protocols
// present in only one run are compared against zero.
func Diff(oldA, newA *Analysis, relThresh, absThresh float64) *DiffReport {
	th := regress.Thresholds{Rel: relThresh, Abs: absThresh}
	r := &DiffReport{MatrixDelta: make(map[string]int64)}
	for _, proto := range unionProtos(oldA, newA) {
		op, np := protoOrZero(oldA, proto), protoOrZero(newA, proto)
		var md int64
		for f := 0; f < NumStates; f++ {
			for t := 0; t < NumStates; t++ {
				d := np.Matrix[f][t] - op.Matrix[f][t]
				if d < 0 {
					d = -d
				}
				md += d
			}
		}
		if md != 0 {
			r.MatrixDelta[proto] = md
		}
		for _, m := range diffMetrics {
			ov, nv := m.value(op), m.value(np)
			row := DiffRow{Proto: proto, Metric: m.name, Old: ov, New: nv, Delta: nv - ov}
			if ov != 0 {
				row.Rel = row.Delta / ov
			}
			bad := row.Delta
			if !m.worseUp {
				bad = -bad
			}
			if th.Breached(ov, bad) {
				row.Regression = true
				r.Regressions++
			}
			r.Rows = append(r.Rows, row)
		}
	}
	return r
}

func unionProtos(a, b *Analysis) []string {
	set := make(map[string]bool)
	for n := range a.Protocols {
		set[n] = true
	}
	for n := range b.Protocols {
		set[n] = true
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func protoOrZero(a *Analysis, name string) *ProtoAnalysis {
	if p, ok := a.Protocols[name]; ok {
		return p
	}
	return &ProtoAnalysis{}
}

// Render writes the diff as a table, regressions flagged, ending with
// either "no regressions" or a count — the same contract cmd/fblens'
// exit status relies on.
func (r *DiffReport) Render(w io.Writer) {
	fmt.Fprintf(w, "%-12s %-30s %12s %12s %12s\n", "protocol", "metric", "old", "new", "delta")
	for _, row := range r.Rows {
		mark := ""
		if row.Regression {
			mark = "  <-- regression"
		}
		fmt.Fprintf(w, "%-12s %-30s %12.4f %12.4f %+12.4f%s\n",
			row.Proto, row.Metric, row.Old, row.New, row.Delta, mark)
	}
	for _, proto := range sortedKeys(r.MatrixDelta) {
		fmt.Fprintf(w, "matrix delta %s: %d transitions differ\n", proto, r.MatrixDelta[proto])
	}
	if r.Regressions == 0 {
		fmt.Fprintln(w, "no regressions")
	} else {
		fmt.Fprintf(w, "%d regressions\n", r.Regressions)
	}
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
