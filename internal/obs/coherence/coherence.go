// Package coherence reconstructs per-line MOESI lifetimes from the obs
// event stream. Caches emit one compact KindState event per real state
// change (line address, from→to, cause, governing protocol, causing
// bus TxID); this package folds that stream — plus the KindTx /
// KindUpdate events that anchor bus transactions — into per-protocol
// transition matrices, state-residency totals, per-line ownership
// chains, and write invalidation/update fan-out distributions.
//
// The Analyzer is an obs.Sink, so the same aggregation runs three
// ways: offline over a .fbt recording (cmd/fblens), live behind the
// obshttp service's /coherence endpoint, and inside tests. It is not
// itself goroutine-safe; the Recorder's single drain goroutine (or a
// locking wrapper such as obshttp.CoherenceSink) provides exclusion.
package coherence

import (
	"sort"
	"strings"

	"futurebus/internal/obs"
)

// NumStates is the size of the MOESI state alphabet.
const NumStates = 5

// StateLetters orders the states the way the paper's tables do:
// Modified, Owned, Exclusive, Shared, Invalid. Every [NumStates] array
// in this package is indexed in this order.
var StateLetters = [NumStates]string{"M", "O", "E", "S", "I"}

// StateIndex maps a state letter to its StateLetters index (-1 if the
// letter is not one of M/O/E/S/I).
func StateIndex(letter string) int {
	switch letter {
	case "M":
		return 0
	case "O":
		return 1
	case "E":
		return 2
	case "S":
		return 3
	case "I":
		return 4
	}
	return -1
}

// Matrix is a from×to transition count table in StateLetters order:
// Matrix[StateIndex("M")][StateIndex("I")] counts M→I transitions.
type Matrix [NumStates][NumStates]int64

// Total sums every cell.
func (m *Matrix) Total() int64 {
	var t int64
	for _, row := range m {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Add accumulates o into m.
func (m *Matrix) Add(o *Matrix) {
	for f := range m {
		for t := range m[f] {
			m[f][t] += o[f][t]
		}
	}
}

// OwnerSeg is one link of a line's ownership chain: proc acquired
// ownership (entered M or O) at TS. Proc -1 means ownership returned
// to memory (the owner pushed or invalidated its copy without another
// cache taking over).
type OwnerSeg struct {
	Proc  int    `json:"proc"`
	State string `json:"state"`
	TS    int64  `json:"ts"`
}

// LineSummary describes one cache line's reconstructed lifetime.
type LineSummary struct {
	Addr   uint64 `json:"addr"`
	Events int64  `json:"events"`
	// Owners counts distinct ownership acquisitions (chain links with
	// Proc >= 0), including ones dropped past the chain cap.
	Owners int64 `json:"owners"`
	// Chain is the ownership chain in event order, capped at
	// MaxChainLen links (Truncated reports the overflow).
	Chain     []OwnerSeg `json:"chain,omitempty"`
	Truncated bool       `json:"truncated,omitempty"`
}

// ProtoAnalysis aggregates everything observed for one protocol.
type ProtoAnalysis struct {
	// Transitions is the total number of state transitions.
	Transitions int64 `json:"transitions"`
	// Matrix is the 5×5 from→to transition count table.
	Matrix Matrix `json:"matrix"`
	// ByCause splits the matrix by the Cause field of the state
	// events ("fill", "snoop-cache-rfo", ...).
	ByCause map[string]*Matrix `json:"by_cause,omitempty"`
	// ResidencyNS is the total simulated time lines spent in each
	// state across every (proc, line) pair, in StateLetters order.
	// Invalid residency is only accumulated between an invalidation
	// and a refill — lines never observed are not charged.
	ResidencyNS [NumStates]int64 `json:"residency_ns"`
	// Invalidations counts snoop-caused transitions to Invalid.
	Invalidations int64 `json:"invalidations"`
	// InvFanout histograms, per invalidating bus write, how many
	// remote copies it invalidated (key = fan-out, value = writes).
	InvFanout map[int]int64 `json:"inv_fanout,omitempty"`
	// UpdFanout histograms, per broadcast write, how many remote
	// copies it updated in place.
	UpdFanout map[int]int64 `json:"upd_fanout,omitempty"`
	// CacheSourced / MemSourced split this protocol's completed bus
	// reads by who supplied the line (DI intervention vs. memory).
	CacheSourced int64 `json:"cache_sourced"`
	MemSourced   int64 `json:"mem_sourced"`
	// OwnershipMoves counts a line's ownership migrating directly
	// from one cache to another (attributed to the new owner's
	// protocol).
	OwnershipMoves int64 `json:"ownership_moves"`
}

// Analysis is the aggregation result, stable under JSON.
type Analysis struct {
	// Events is every event consumed; StateEvents only the KindState
	// subset.
	Events      int64 `json:"events"`
	StateEvents int64 `json:"state_events"`
	// Lines is the number of distinct line addresses observed.
	Lines int `json:"lines"`
	// SpanNS is the largest timestamp (+duration) observed — the
	// horizon residency intervals are closed against.
	SpanNS int64 `json:"span_ns"`
	// Protocols maps protocol name → its aggregate. State events
	// without a protocol tag land under "unknown".
	Protocols map[string]*ProtoAnalysis `json:"protocols"`
	// TopLines are the busiest lines by state-event count.
	TopLines []LineSummary `json:"top_lines,omitempty"`
	// TruncatedLines counts line addresses beyond the tracking cap:
	// their transitions still count in the matrices, but residency
	// and ownership chains were not reconstructed for them.
	TruncatedLines int64 `json:"truncated_lines,omitempty"`
}

// Bounds on per-line reconstruction state, so a live sink attached to
// an unbounded run cannot grow without limit. Matrices and fan-out
// histograms are intrinsically bounded; only per-line state needs caps.
const (
	// MaxChainLen caps one line's stored ownership chain.
	MaxChainLen = 64
	// MaxLines caps the number of distinct lines tracked per-line.
	MaxLines = 1 << 20
	// maxPending caps in-flight per-transaction fan-out trackers
	// (only reachable if a trace lost KindTx events).
	maxPending = 1 << 16
)

// Analyzer folds obs events into the aggregates above. The zero value
// is ready to use.
type Analyzer struct {
	events      int64
	stateEvents int64
	maxTS       int64
	protos      map[string]*ProtoAnalysis
	lines       map[uint64]*lineAgg
	pending     map[uint64]*pendingTx
	procProto   []string // indexed by proc id
	txByProc    []*txAgg // indexed by proc id
	truncLines  int64

	// One-entry caches for the per-event hot path: protocol and cause
	// strings are constants re-emitted verbatim, so an identity-equal
	// string comparison usually short-circuits the map lookups.
	lastProtoName string
	lastProto     *ProtoAnalysis
	lastCause     string
	lastCauseP    *ProtoAnalysis
	lastCauseM    *Matrix
	lastAddr      uint64
	lastLine      *lineAgg
}

// txAgg accumulates per-master transaction statistics. They are keyed
// by proc (not protocol) because a master's first transactions arrive
// before its first state event reveals its protocol — Analyze merges
// them under the final proc→protocol mapping. The fan-out histograms
// are dense slices (fan-out is bounded by the snooper count), bumped
// without map hashing on the hot path.
type txAgg struct {
	cacheSourced int64
	memSourced   int64
	invFanout    []int64
	updFanout    []int64
}

func bumpFanout(h *[]int64, k int) {
	for len(*h) <= k {
		*h = append(*h, 0)
	}
	(*h)[k]++
}

// lineAgg is per-line reconstruction state.
type lineAgg struct {
	events    int64
	owner     int // proc currently owning the line, -1 = memory
	owners    int64
	chain     []OwnerSeg
	truncated bool
	procs     []procLine // indexed by proc id; live marks real entries
	// relTx is the bus transaction that snooped the last owner out. A
	// following acquisition under the same transaction is one direct
	// cache-to-cache ownership move (the invalidation reaches the
	// stream before the new owner's fill, so without the link every
	// RFO migration would look like a round-trip through memory).
	relTx uint64
}

// procLine is one cache's copy of one line.
type procLine struct {
	live  bool
	state int8 // StateLetters index
	since int64
	proto string
}

// pendingTx accumulates the snoop fan-out of a bus transaction until
// its KindTx event arrives (snoop commits are emitted before the tx
// event, so by stream order the counts are complete by then).
type pendingTx struct {
	inv int
	upd int
}

// Compact kinds.
const (
	CompactState = iota
	CompactTx
	CompactUpdate
)

// Compact is the pre-digested payload of one coherence-relevant event:
// state letters resolved to indices, Table 2 column and op decoded to
// flags, irrelevant fields dropped. It is half the size of an
// obs.Event, so batching wrappers (obshttp.CoherenceSink) buffer these
// instead of whole events.
type Compact struct {
	TS    int64
	Addr  uint64
	TxID  uint64
	Cause string
	Proto string
	Proc  int
	Kind  uint8
	// State events: From/To as StateLetters indices, Snoop when the
	// cause is a snoop-side one.
	From, To int8
	Snoop    bool
	// Tx events: data phase was a read, data intervention happened,
	// column carried the IM / BC attention signals.
	Read, DI, IM, BC bool
}

// Digest extracts the coherence-relevant payload of e. ok is false for
// events the analyzer ignores (other kinds, malformed state letters);
// callers that drop those must still account their count and time
// horizon via AddSpan.
func Digest(e *obs.Event) (Compact, bool) {
	switch e.Kind {
	case obs.KindState:
		from, to := StateIndex(e.From), StateIndex(e.To)
		if from < 0 || to < 0 || e.Proc < 0 {
			return Compact{}, false
		}
		return Compact{
			Kind: CompactState, TS: e.TS, Proc: e.Proc, Addr: e.Addr,
			TxID: e.TxID, Cause: e.Cause, Proto: e.Proto,
			From: int8(from), To: int8(to),
			Snoop: strings.HasPrefix(e.Cause, "snoop-"),
		}, true
	case obs.KindTx:
		if e.Proc < 0 {
			return Compact{}, false
		}
		return Compact{
			Kind: CompactTx, TS: e.TS, Proc: e.Proc, Addr: e.Addr,
			TxID: e.TxID,
			Read: e.Op == "R", DI: e.DI, IM: colIM(e.Col), BC: colBC(e.Col),
		}, true
	case obs.KindUpdate:
		if e.TxID == 0 {
			return Compact{}, false
		}
		return Compact{Kind: CompactUpdate, TxID: e.TxID}, true
	}
	return Compact{}, false
}

func (a *Analyzer) init() {
	if a.protos == nil {
		a.protos = make(map[string]*ProtoAnalysis)
		a.lines = make(map[uint64]*lineAgg)
		a.pending = make(map[uint64]*pendingTx)
	}
}

func (a *Analyzer) proto(name string) *ProtoAnalysis {
	if name == a.lastProtoName && a.lastProto != nil {
		return a.lastProto
	}
	key := name
	if key == "" {
		key = "unknown"
	}
	p, ok := a.protos[key]
	if !ok {
		p = &ProtoAnalysis{
			ByCause:   make(map[string]*Matrix),
			InvFanout: make(map[int]int64),
			UpdFanout: make(map[int]int64),
		}
		a.protos[key] = p
	}
	a.lastProtoName, a.lastProto = name, p
	return p
}

func (a *Analyzer) line(addr uint64) *lineAgg {
	if addr == a.lastAddr && a.lastLine != nil {
		return a.lastLine
	}
	l, ok := a.lines[addr]
	if !ok {
		if len(a.lines) >= MaxLines {
			a.truncLines++
			return nil
		}
		l = &lineAgg{owner: -1}
		a.lines[addr] = l
	}
	a.lastAddr, a.lastLine = addr, l
	return l
}

// Consume implements obs.Sink.
func (a *Analyzer) Consume(e *obs.Event) {
	a.init()
	a.events++
	if ts := e.TS + e.Dur; ts > a.maxTS {
		a.maxTS = ts
	}
	if c, ok := Digest(e); ok {
		a.consume(&c)
	}
}

// ConsumeCompact folds one digested event. Unlike Consume it does no
// span accounting — a caller that digests and filters the raw stream
// itself pairs it with AddSpan.
func (a *Analyzer) ConsumeCompact(c *Compact) {
	a.init()
	a.consume(c)
}

func (a *Analyzer) consume(c *Compact) {
	switch c.Kind {
	case CompactState:
		a.consumeState(c)
	case CompactTx:
		a.consumeTx(c)
	case CompactUpdate:
		a.pendingFor(c.TxID).upd++
	}
}

func (a *Analyzer) pendingFor(txid uint64) *pendingTx {
	p, ok := a.pending[txid]
	if !ok {
		if len(a.pending) >= maxPending {
			// Only reachable when KindTx events were lost. Evict the
			// oldest txid (smallest — arbiter ids are monotonic) so
			// the result stays deterministic for a given stream.
			oldest := txid
			for id := range a.pending {
				if id < oldest {
					oldest = id
				}
			}
			delete(a.pending, oldest)
		}
		p = &pendingTx{}
		a.pending[txid] = p
	}
	return p
}

// StateLetters indices used by the hot path: M and O confer ownership,
// I is the invalidation target.
const (
	idxM = 0
	idxO = 1
	idxI = 4
)

func (a *Analyzer) consumeState(c *Compact) {
	a.stateEvents++
	for len(a.procProto) <= c.Proc {
		a.procProto = append(a.procProto, "")
	}
	a.procProto[c.Proc] = c.Proto

	ps := a.proto(c.Proto)
	ps.Transitions++
	ps.Matrix[c.From][c.To]++
	cm := a.lastCauseM
	if c.Cause != a.lastCause || ps != a.lastCauseP {
		var ok bool
		cm, ok = ps.ByCause[c.Cause]
		if !ok {
			cm = &Matrix{}
			ps.ByCause[c.Cause] = cm
		}
		a.lastCause, a.lastCauseP, a.lastCauseM = c.Cause, ps, cm
	}
	cm[c.From][c.To]++

	if c.To == idxI && c.Snoop {
		ps.Invalidations++
		if c.TxID != 0 {
			a.pendingFor(c.TxID).inv++
		}
	}

	l := a.line(c.Addr)
	if l == nil {
		return
	}
	l.events++

	// Residency: close the copy's previous interval against this
	// event's timestamp.
	for len(l.procs) <= c.Proc {
		l.procs = append(l.procs, procLine{})
	}
	pl := &l.procs[c.Proc]
	if !pl.live {
		*pl = procLine{live: true, state: c.From, since: c.TS, proto: c.Proto}
	}
	if c.TS > pl.since {
		a.proto(pl.proto).ResidencyNS[pl.state] += c.TS - pl.since
	}
	pl.state, pl.since, pl.proto = c.To, c.TS, c.Proto

	// Ownership: entering M or O makes c.Proc the line's owner;
	// leaving ownership with no successor returns it to memory.
	owned := c.To == idxM || c.To == idxO
	switch {
	case owned && l.owner != c.Proc:
		if l.owner >= 0 {
			ps.OwnershipMoves++
		} else if c.TxID != 0 && c.TxID == l.relTx {
			// The same bus transaction that removed the previous
			// owner installed this one: a direct migration, not a
			// round-trip through memory — collapse the mem link.
			ps.OwnershipMoves++
			if n := len(l.chain); !l.truncated && n > 0 && l.chain[n-1].Proc == -1 {
				l.chain = l.chain[:n-1]
			}
		}
		l.owner = c.Proc
		l.owners++
		l.relTx = 0
		l.appendChain(OwnerSeg{Proc: c.Proc, State: StateLetters[c.To], TS: c.TS})
	case !owned && l.owner == c.Proc && (c.From == idxM || c.From == idxO):
		l.owner = -1
		l.relTx = c.TxID
		l.appendChain(OwnerSeg{Proc: -1, State: StateLetters[c.To], TS: c.TS})
	}
}

func (l *lineAgg) appendChain(seg OwnerSeg) {
	if len(l.chain) >= MaxChainLen {
		l.truncated = true
		return
	}
	l.chain = append(l.chain, seg)
}

// Table 2 column sets: which bus-transaction columns carry the IM
// (invalidate) and BC (broadcast) attention signals.
func colIM(col int) bool { return col == 6 || col == 8 || col == 9 || col == 10 }
func colBC(col int) bool { return col == 8 || col == 10 }

func (a *Analyzer) consumeTx(c *Compact) {
	for len(a.txByProc) <= c.Proc {
		a.txByProc = append(a.txByProc, nil)
	}
	t := a.txByProc[c.Proc]
	if t == nil {
		t = &txAgg{}
		a.txByProc[c.Proc] = t
	}
	if c.Read {
		if c.DI {
			t.cacheSourced++
		} else {
			t.memSourced++
		}
	}
	inv, upd := 0, 0
	if len(a.pending) > 0 {
		if p := a.pending[c.TxID]; p != nil {
			inv, upd = p.inv, p.upd
			delete(a.pending, c.TxID)
		}
	}
	if c.IM {
		bumpFanout(&t.invFanout, inv)
	}
	if c.BC {
		bumpFanout(&t.updFanout, upd)
	}
}

// Flush implements obs.Sink.
func (a *Analyzer) Flush() error { return nil }

// AddSpan accounts events that a caller filtered out before the
// analyzer saw them: they extend the total event count and the time
// horizon (which closes residency intervals) but carry no coherence
// payload. Wrappers like obshttp.CoherenceSink use it to skip copying
// irrelevant event kinds on the hot path.
func (a *Analyzer) AddSpan(events, maxTS int64) {
	a.events += events
	if maxTS > a.maxTS {
		a.maxTS = maxTS
	}
}

// DefaultTopLines is how many per-line summaries Analyze keeps.
const DefaultTopLines = 32

// Analyze snapshots the aggregates into an Analysis. topN bounds
// TopLines (0 = DefaultTopLines; negative = none). The analyzer keeps
// consuming afterwards; open residency intervals are closed against
// the current horizon without disturbing future accounting.
func (a *Analyzer) Analyze(topN int) *Analysis {
	a.init()
	if topN == 0 {
		topN = DefaultTopLines
	}
	res := &Analysis{
		Events:         a.events,
		StateEvents:    a.stateEvents,
		Lines:          len(a.lines),
		SpanNS:         a.maxTS,
		Protocols:      make(map[string]*ProtoAnalysis, len(a.protos)),
		TruncatedLines: a.truncLines,
	}
	for name, ps := range a.protos {
		res.Protocols[name] = ps.clone()
	}
	// Merge per-master transaction stats under the final proc→protocol
	// mapping (a master's first transactions precede its first state
	// event; by now the mapping is as complete as it will get).
	for proc, t := range a.txByProc {
		if t == nil {
			continue
		}
		var pn string
		if proc < len(a.procProto) {
			pn = a.procProto[proc]
		}
		name := protoName(pn)
		ps, ok := res.Protocols[name]
		if !ok {
			ps = (&ProtoAnalysis{}).clone()
			res.Protocols[name] = ps
		}
		ps.CacheSourced += t.cacheSourced
		ps.MemSourced += t.memSourced
		for k, v := range t.invFanout {
			if v != 0 {
				ps.InvFanout[k] += v
			}
		}
		for k, v := range t.updFanout {
			if v != 0 {
				ps.UpdFanout[k] += v
			}
		}
	}
	// Close open residency intervals at the horizon, into the copies.
	for _, l := range a.lines {
		for i := range l.procs {
			pl := &l.procs[i]
			if pl.live && a.maxTS > pl.since {
				if ps := res.Protocols[protoName(pl.proto)]; ps != nil {
					ps.ResidencyNS[pl.state] += a.maxTS - pl.since
				}
			}
		}
	}
	if topN > 0 {
		res.TopLines = a.topLines(topN)
	}
	return res
}

func protoName(name string) string {
	if name == "" {
		return "unknown"
	}
	return name
}

func (p *ProtoAnalysis) clone() *ProtoAnalysis {
	c := *p
	c.ByCause = make(map[string]*Matrix, len(p.ByCause))
	for cause, m := range p.ByCause {
		cm := *m
		c.ByCause[cause] = &cm
	}
	c.InvFanout = cloneHist(p.InvFanout)
	c.UpdFanout = cloneHist(p.UpdFanout)
	return &c
}

func cloneHist(h map[int]int64) map[int]int64 {
	c := make(map[int]int64, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func (a *Analyzer) topLines(topN int) []LineSummary {
	all := make([]LineSummary, 0, len(a.lines))
	for addr, l := range a.lines {
		all = append(all, LineSummary{
			Addr:      addr,
			Events:    l.events,
			Owners:    l.owners,
			Chain:     append([]OwnerSeg(nil), l.chain...),
			Truncated: l.truncated,
		})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Events != all[j].Events {
			return all[i].Events > all[j].Events
		}
		return all[i].Addr < all[j].Addr
	})
	if len(all) > topN {
		all = all[:topN]
	}
	return all
}

// Totals are cheap cross-protocol running sums, suitable for pulling
// on every metrics scrape (no per-line or per-cause traversal).
type Totals struct {
	StateEvents    int64
	Invalidations  int64
	OwnershipMoves int64
	CacheSourced   int64
	MemSourced     int64
}

// Totals sums the per-protocol counters.
func (a *Analyzer) Totals() Totals {
	t := Totals{StateEvents: a.stateEvents}
	for _, ps := range a.protos {
		t.Invalidations += ps.Invalidations
		t.OwnershipMoves += ps.OwnershipMoves
	}
	for _, tx := range a.txByProc {
		if tx == nil {
			continue
		}
		t.CacheSourced += tx.cacheSourced
		t.MemSourced += tx.memSourced
	}
	return t
}

// FanoutMean returns the weighted mean of a fan-out histogram (0 when
// empty).
func FanoutMean(h map[int]int64) float64 {
	var n, sum int64
	for k, v := range h {
		n += v
		sum += int64(k) * v
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// ProtocolNames returns the analysis' protocol names, sorted.
func (an *Analysis) ProtocolNames() []string {
	names := make([]string, 0, len(an.Protocols))
	for n := range an.Protocols {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
