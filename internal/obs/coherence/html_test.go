package coherence

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRenderHTMLHostileLabels feeds protocol and cause strings chosen
// to break out of the report's <script> element and asserts the
// embedded payload keeps them inert but intact: no literal '<', '>' or
// '&' survives anywhere in the JSON, and decoding the escaped payload
// round-trips the hostile names byte for byte.
func TestRenderHTMLHostileLabels(t *testing.T) {
	const evilProto = `</script><script>alert('pwned')</script>`
	const evilCause = `<!--&-->` + "  "
	var a Analyzer
	feed(&a,
		state(0, 0, 0xabc0, "I", "M", evilCause, evilProto, 1),
		state(50, 1, 0xabc0, "M", "I", "snoop-cache-rfo", evilProto, 2),
	)
	var html bytes.Buffer
	if err := a.Analyze(0).RenderHTML(&html); err != nil {
		t.Fatal(err)
	}
	out := html.String()

	// The shell itself contains markup; only the embedded payload must
	// be free of raw breakout characters.
	start := strings.Index(out, `type="application/json">`)
	end := strings.Index(out[start:], "</script>")
	if start < 0 || end < 0 {
		t.Fatal("report lost its data element")
	}
	payload := out[start+len(`type="application/json">`) : start+end]
	for _, banned := range []string{"<", ">", "&", " ", " "} {
		if strings.Contains(payload, banned) {
			t.Errorf("embedded payload contains raw %q", banned)
		}
	}
	if strings.Count(out, "<script") != 2 { // the data element and the renderer
		t.Errorf("hostile label injected a script element:\n%s", out)
	}

	// Escaping must not mangle the data: the hostile strings decode back
	// exactly, so a forensic reading of a dirty trace's report still
	// shows the real protocol name.
	var an Analysis
	if err := json.Unmarshal([]byte(payload), &an); err != nil {
		t.Fatalf("escaped payload no longer parses: %v", err)
	}
	p, ok := an.Protocols[evilProto]
	if !ok {
		t.Fatalf("hostile protocol name did not round-trip; have %v", keys(an.Protocols))
	}
	if _, ok := p.ByCause[evilCause]; !ok {
		t.Fatalf("hostile cause did not round-trip; have %v", keys(p.ByCause))
	}
}

func keys[V any](m map[string]*V) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestEscapeScriptPayloadPassThrough(t *testing.T) {
	in := []byte(`{"a":"plain text, no breakouts","n":42}`)
	if got := EscapeScriptPayload(in); !bytes.Equal(got, in) {
		t.Errorf("clean payload was altered: %s", got)
	}
	// A stray 0xE2 that is not U+2028/9 must pass through untouched.
	in2 := []byte("{\"s\":\"☃\xe2\"}")
	if got := EscapeScriptPayload(in2); !bytes.Equal(got, in2) {
		t.Errorf("non-terminator bytes altered: %q", got)
	}
}
