package coherence

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// RenderHTML writes a self-contained HTML report: the analysis JSON is
// embedded and a small inline script renders per-protocol transition
// matrices, residency bars, fan-out histograms, and an ownership
// timeline for the busiest lines. No external assets, so the file can
// be attached to a CI run or mailed around.
//
// Protocol names and cause strings come from traces, and traces can be
// hostile (a replayed .fbt from an untrusted run, a fault wrapper's
// composed name). The payload is therefore escaped explicitly before
// embedding rather than trusting json.Marshal's HTML-escaping default,
// and the inline script only ever inserts those strings with
// textContent/createTextNode, never innerHTML.
func (an *Analysis) RenderHTML(w io.Writer) error {
	payload, err := json.Marshal(an)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, htmlShell, EscapeScriptPayload(payload))
	return err
}

// EscapeScriptPayload hardens a JSON document for embedding in a
// <script> element: '<', '>' and '&' become \u00XX escapes, so
// "</script>" or "<!--" inside a label cannot terminate the element,
// and U+2028/U+2029 (legal in JSON, line terminators in classic
// JavaScript) are escaped too. The replacement is byte-level but safe:
// in valid JSON those characters can only occur inside string
// literals, where the \u form is equivalent. Exported because every
// self-contained HTML report in the tree (fblens, fbtrend) embeds its
// data the same way.
func EscapeScriptPayload(b []byte) []byte {
	var out bytes.Buffer
	out.Grow(len(b) + 64)
	for i := 0; i < len(b); i++ {
		switch c := b[i]; c {
		case '<':
			out.WriteString(`\u003c`)
		case '>':
			out.WriteString(`\u003e`)
		case '&':
			out.WriteString(`\u0026`)
		case 0xe2: // U+2028 = E2 80 A8, U+2029 = E2 80 A9
			if i+2 < len(b) && b[i+1] == 0x80 && (b[i+2] == 0xa8 || b[i+2] == 0xa9) {
				if b[i+2] == 0xa8 {
					out.WriteString(`\u2028`)
				} else {
					out.WriteString(`\u2029`)
				}
				i += 2
			} else {
				out.WriteByte(c)
			}
		default:
			out.WriteByte(c)
		}
	}
	return out.Bytes()
}

const htmlShell = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>futurebus coherence report</title>
<style>
 body { font: 14px/1.4 system-ui, sans-serif; margin: 2em auto; max-width: 72em; color: #222; }
 h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
 table.matrix { border-collapse: collapse; margin: .5em 0; }
 table.matrix th, table.matrix td { border: 1px solid #ccc; padding: .2em .6em; text-align: right; font-variant-numeric: tabular-nums; }
 table.matrix td.hot { background: #fde8e8; }
 .bar { display: inline-block; height: .9em; vertical-align: middle; }
 .M { background:#d33; } .O { background:#e80; } .E { background:#85d; } .S { background:#27b; } .I { background:#bbb; }
 .legend span { margin-right: 1em; }
 .chip { display:inline-block; width:.8em; height:.8em; vertical-align:middle; margin-right:.3em; }
 .timeline { position: relative; height: 1.1em; background: #f4f4f4; margin: .15em 0; }
 .timeline .seg { position: absolute; top: 0; bottom: 0; }
 .addr { font-family: ui-monospace, monospace; }
 .muted { color: #777; }
</style>
</head>
<body>
<h1>futurebus coherence report</h1>
<div id="root"></div>
<script id="data" type="application/json">%s</script>
<script>
const A = JSON.parse(document.getElementById('data').textContent);
const STATES = ["M","O","E","S","I"];
const root = document.getElementById('root');
function el(tag, cls, text) {
  const e = document.createElement(tag);
  if (cls) e.className = cls;
  if (text !== undefined) e.textContent = text;
  return e;
}
root.appendChild(el('p', 'muted',
  A.events + ' events (' + A.state_events + ' state transitions), ' + A.lines +
  ' lines, span ' + (A.span_ns/1e6).toFixed(2) + ' ms'));
const legend = el('p', 'legend');
for (const s of STATES) {
  const span = el('span');
  span.appendChild(el('span', 'chip ' + s));
  span.appendChild(document.createTextNode(s));
  legend.appendChild(span);
}
root.appendChild(legend);
for (const name of Object.keys(A.protocols || {}).sort()) {
  const p = A.protocols[name];
  root.appendChild(el('h2', null, 'protocol ' + name));
  root.appendChild(el('p', 'muted', p.transitions + ' transitions, ' +
    p.invalidations + ' snoop invalidations, ' + p.ownership_moves + ' ownership moves, reads ' +
    p.cache_sourced + ' cache-to-cache / ' + p.mem_sourced + ' memory'));
  const tbl = el('table', 'matrix');
  const head = el('tr'); head.appendChild(el('th', null, 'from \\ to'));
  for (const s of STATES) head.appendChild(el('th', null, s));
  tbl.appendChild(head);
  let max = 1;
  for (const row of p.matrix) for (const v of row) if (v > max) max = v;
  p.matrix.forEach((row, f) => {
    const tr = el('tr'); tr.appendChild(el('th', null, STATES[f]));
    row.forEach(v => tr.appendChild(el('td', v > max/4 ? 'hot' : null, String(v))));
    tbl.appendChild(tr);
  });
  root.appendChild(tbl);
  const total = (p.residency_ns || []).reduce((a, b) => a + b, 0);
  if (total > 0) {
    const res = el('p');
    res.appendChild(document.createTextNode('residency: '));
    p.residency_ns.forEach((v, i) => {
      if (!v) return;
      const bar = el('span', 'bar ' + STATES[i]);
      bar.style.width = (200 * v / total).toFixed(1) + 'px';
      bar.title = STATES[i] + ' ' + (100 * v / total).toFixed(1) + '%%';
      res.appendChild(bar);
      res.appendChild(document.createTextNode(' ' + STATES[i] + ' ' + (100 * v / total).toFixed(1) + '%% '));
    });
    root.appendChild(res);
  }
  for (const [label, h] of [['invalidation fan-out', p.inv_fanout], ['update fan-out', p.upd_fanout]]) {
    if (!h || !Object.keys(h).length) continue;
    const txt = Object.keys(h).map(Number).sort((a, b) => a - b)
      .map(k => k + '×' + h[k]).join('  ');
    root.appendChild(el('p', 'muted', label + ': ' + txt));
  }
}
if (A.top_lines && A.top_lines.length) {
  root.appendChild(el('h2', null, 'ownership timeline (top lines)'));
  const span = Math.max(1, A.span_ns);
  for (const line of A.top_lines) {
    const p = el('p');
    const label = el('span', 'addr', '0x' + line.addr.toString(16).padStart(8, '0'));
    label.title = line.events + ' transitions, ' + line.owners + ' owners';
    p.appendChild(label);
    p.appendChild(el('span', 'muted', '  ' + line.events + ' transitions'));
    const tl = el('div', 'timeline');
    const chain = line.chain || [];
    chain.forEach((seg, i) => {
      if (seg.proc < 0) return;
      const end = i + 1 < chain.length ? chain[i + 1].ts : span;
      const d = el('div', 'seg ' + seg.state);
      d.style.left = (100 * seg.ts / span) + '%%';
      d.style.width = Math.max(0.2, 100 * (end - seg.ts) / span) + '%%';
      d.title = 'P' + seg.proc + ' (' + seg.state + ') @' + seg.ts + 'ns';
      tl.appendChild(d);
    });
    p.appendChild(tl);
    root.appendChild(p);
  }
}
</script>
</body>
</html>
`
