package coherence

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"futurebus/internal/obs"
)

func state(ts int64, proc int, addr uint64, from, to, cause, proto string, txid uint64) obs.Event {
	return obs.Event{TS: ts, Kind: obs.KindState, Proc: proc, Addr: addr,
		From: from, To: to, Cause: cause, Proto: proto, TxID: txid}
}

func feed(a *Analyzer, events ...obs.Event) {
	for i := range events {
		a.Consume(&events[i])
	}
}

// TestMatrixResidencyOwnership drives a hand-built lifetime of one line
// through two caches and checks every aggregate the analyzer builds:
// the per-protocol matrix, per-cause split, residency intervals (open
// interval closed at the horizon), and the ownership chain with a
// cache-to-cache migration.
func TestMatrixResidencyOwnership(t *testing.T) {
	var a Analyzer
	feed(&a,
		// P0 fills the line exclusive at t=0, writes it at t=100.
		state(0, 0, 0x40, "I", "E", "fill", "moesi", 1),
		state(100, 0, 0x40, "E", "M", "silent-write", "moesi", 0),
		// P1's RFO at t=300 invalidates P0 and fills P1 modified.
		state(300, 1, 0x40, "I", "M", "fill", "moesi", 2),
		state(300, 0, 0x40, "M", "I", "snoop-cache-rfo", "moesi", 2),
		obs.Event{TS: 300, Kind: obs.KindTx, Proc: 1, Addr: 0x40, Col: 6, Op: "R", DI: true, TxID: 2},
		// Horizon marker at t=1000.
		obs.Event{TS: 1000, Kind: obs.KindStall, Proc: 1},
	)
	an := a.Analyze(0)

	ps := an.Protocols["moesi"]
	if ps == nil {
		t.Fatal("no moesi aggregate")
	}
	if ps.Transitions != 4 {
		t.Fatalf("transitions = %d, want 4", ps.Transitions)
	}
	mi, ei := StateIndex("M"), StateIndex("E")
	ii, si := StateIndex("I"), StateIndex("S")
	_ = si
	if got := ps.Matrix[ii][ei]; got != 1 {
		t.Errorf("I→E = %d, want 1", got)
	}
	if got := ps.Matrix[mi][ii]; got != 1 {
		t.Errorf("M→I = %d, want 1", got)
	}
	if got := ps.ByCause["fill"].Total(); got != 2 {
		t.Errorf("fill cause total = %d, want 2", got)
	}
	if ps.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", ps.Invalidations)
	}

	// Residency: P0 E for [0,100), M for [100,300), I for [300,1000);
	// P1 M for [300,1000). Invalid residency only after invalidation.
	if got := ps.ResidencyNS[ei]; got != 100 {
		t.Errorf("E residency = %d, want 100", got)
	}
	if got := ps.ResidencyNS[mi]; got != 200+700 {
		t.Errorf("M residency = %d, want 900", got)
	}
	if got := ps.ResidencyNS[ii]; got != 700 {
		t.Errorf("I residency = %d, want 700", got)
	}

	// Ownership: P0 took it at t=100 (M), migrated to P1 at t=300.
	if ps.OwnershipMoves != 1 {
		t.Errorf("ownership moves = %d, want 1", ps.OwnershipMoves)
	}
	if len(an.TopLines) != 1 {
		t.Fatalf("top lines = %d, want 1", len(an.TopLines))
	}
	line := an.TopLines[0]
	want := []OwnerSeg{{Proc: 0, State: "M", TS: 100}, {Proc: 1, State: "M", TS: 300}}
	if len(line.Chain) != len(want) {
		t.Fatalf("chain = %+v, want %+v", line.Chain, want)
	}
	for i := range want {
		if line.Chain[i] != want[i] {
			t.Fatalf("chain[%d] = %+v, want %+v", i, line.Chain[i], want[i])
		}
	}

	// Sourcing: P1's read was DI-supplied → cache-to-cache.
	if ps.CacheSourced != 1 || ps.MemSourced != 0 {
		t.Errorf("sourcing = %d c2c / %d mem, want 1/0", ps.CacheSourced, ps.MemSourced)
	}
	// The RFO (col 6 carries IM) invalidated one remote copy.
	if got := ps.InvFanout[1]; got != 1 {
		t.Errorf("InvFanout[1] = %d, want 1 (%v)", got, ps.InvFanout)
	}
}

// TestDirectMigrationViaTxID: in a real stream the snooped-out owner's
// invalidation precedes the new owner's fill (snoop commits run before
// the tx event, the master's fill after it). The shared TxID must tie
// the two into one direct cache-to-cache ownership move, with no
// intervening memory link in the chain.
func TestDirectMigrationViaTxID(t *testing.T) {
	var a Analyzer
	feed(&a,
		state(0, 0, 0x40, "I", "M", "fill", "moesi", 1),
		// P1's RFO: P0 snooped out first, then P1's fill, both TxID 2.
		state(200, 0, 0x40, "M", "I", "snoop-cache-rfo", "moesi", 2),
		obs.Event{TS: 200, Kind: obs.KindTx, Proc: 1, Addr: 0x40, Col: 6, Op: "R", DI: true, TxID: 2},
		state(200, 1, 0x40, "I", "M", "fill", "moesi", 2),
	)
	an := a.Analyze(1)
	ps := an.Protocols["moesi"]
	if ps.OwnershipMoves != 1 {
		t.Errorf("ownership moves = %d, want 1", ps.OwnershipMoves)
	}
	want := []OwnerSeg{{Proc: 0, State: "M", TS: 0}, {Proc: 1, State: "M", TS: 200}}
	chain := an.TopLines[0].Chain
	if len(chain) != len(want) {
		t.Fatalf("chain = %+v, want %+v", chain, want)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain[%d] = %+v, want %+v", i, chain[i], want[i])
		}
	}
}

// TestUpdateFanout: a broadcast write (col 8) whose snoopers merged the
// data shows up in the update fan-out histogram keyed by its TxID.
func TestUpdateFanout(t *testing.T) {
	var a Analyzer
	feed(&a,
		state(0, 0, 0x80, "I", "O", "fill", "firefly", 1),
		obs.Event{TS: 10, Kind: obs.KindUpdate, Proc: 1, Addr: 0x80, TxID: 7},
		obs.Event{TS: 10, Kind: obs.KindUpdate, Proc: 2, Addr: 0x80, TxID: 7},
		obs.Event{TS: 10, Kind: obs.KindTx, Proc: 0, Addr: 0x80, Col: 8, Op: "W", TxID: 7},
	)
	ps := a.Analyze(-1).Protocols["firefly"]
	if ps == nil {
		t.Fatal("no firefly aggregate")
	}
	if got := ps.UpdFanout[2]; got != 1 {
		t.Errorf("UpdFanout[2] = %d, want 1 (%v)", got, ps.UpdFanout)
	}
	if len(a.pending) != 0 {
		t.Errorf("pending trackers not drained: %d left", len(a.pending))
	}
}

// TestDiffSelfCleanAndRegression: self-diff reports zero regressions
// and renders "no regressions"; a run with more invalidation traffic
// trips the gate.
func TestDiffSelfCleanAndRegression(t *testing.T) {
	var quiet Analyzer
	feed(&quiet,
		state(0, 0, 0x40, "I", "E", "fill", "moesi", 1),
		state(50, 0, 0x40, "E", "M", "silent-write", "moesi", 0),
	)
	q := quiet.Analyze(0)

	self := Diff(q, q, 0.05, 0.001)
	if self.Regressions != 0 {
		t.Fatalf("self-diff regressions = %d, want 0", self.Regressions)
	}
	var buf bytes.Buffer
	self.Render(&buf)
	if !strings.Contains(buf.String(), "no regressions") {
		t.Errorf("self-diff output missing 'no regressions':\n%s", buf.String())
	}

	var noisy Analyzer
	feed(&noisy,
		state(0, 0, 0x40, "I", "E", "fill", "moesi", 1),
		state(50, 1, 0x40, "I", "M", "fill", "moesi", 2),
		state(50, 0, 0x40, "E", "I", "snoop-cache-rfo", "moesi", 2),
		obs.Event{TS: 50, Kind: obs.KindTx, Proc: 1, Addr: 0x40, Col: 6, Op: "R", TxID: 2},
	)
	n := noisy.Analyze(0)
	r := Diff(q, n, 0.05, 0.001)
	if r.Regressions == 0 {
		t.Error("invalidation-heavy run diffed clean against a quiet one")
	}
	if r.MatrixDelta["moesi"] == 0 {
		t.Error("matrix delta not reported for differing runs")
	}
}

// TestAnalysisJSONRoundTrip: the Analysis must survive JSON (the CLI's
// -json mode and the /coherence endpoint both rely on it).
func TestAnalysisJSONRoundTrip(t *testing.T) {
	var a Analyzer
	feed(&a,
		state(0, 0, 0x40, "I", "S", "fill", "berkeley", 1),
		state(10, 0, 0x40, "S", "M", "write-upgrade", "berkeley", 2),
	)
	an := a.Analyze(0)
	raw, err := json.Marshal(an)
	if err != nil {
		t.Fatal(err)
	}
	var back Analysis
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.StateEvents != an.StateEvents || back.Protocols["berkeley"] == nil {
		t.Fatalf("round trip lost data: %s", raw)
	}
	if back.Protocols["berkeley"].Matrix != an.Protocols["berkeley"].Matrix {
		t.Error("matrix changed across JSON round trip")
	}
}

// TestRenderOutputs: the text and HTML renderers mention the protocol,
// the matrix header and the top line, and the HTML is self-contained
// (no external src/href references).
func TestRenderOutputs(t *testing.T) {
	var a Analyzer
	feed(&a,
		state(0, 0, 0xabc0, "I", "E", "fill", "moesi", 1),
		state(75, 0, 0xabc0, "E", "M", "silent-write", "moesi", 0),
		obs.Event{TS: 500, Kind: obs.KindStall, Proc: 0},
	)
	an := a.Analyze(0)

	var txt bytes.Buffer
	an.Render(&txt)
	for _, want := range []string{"protocol moesi", "transition matrix", "0x000000abc0", "residency"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, txt.String())
		}
	}

	var html bytes.Buffer
	if err := an.RenderHTML(&html); err != nil {
		t.Fatal(err)
	}
	out := html.String()
	for _, want := range []string{"<!doctype html", "coherence report", `"protocols"`} {
		if !strings.Contains(out, want) {
			t.Errorf("html report missing %q", want)
		}
	}
	for _, banned := range []string{"src=\"http", "href=\"http"} {
		if strings.Contains(out, banned) {
			t.Errorf("html report references external asset (%s)", banned)
		}
	}
}

// TestChainCap: a line whose ownership bounces more than MaxChainLen
// times keeps a bounded chain, marks truncation, and still counts
// every acquisition in Owners.
func TestChainCap(t *testing.T) {
	var a Analyzer
	ts := int64(0)
	for i := 0; i < MaxChainLen+20; i++ {
		p := i % 2
		feed(&a,
			state(ts, p, 0x40, "I", "M", "fill", "moesi", uint64(i+1)),
			state(ts, 1-p, 0x40, "M", "I", "snoop-cache-rfo", "moesi", uint64(i+1)),
		)
		ts += 10
	}
	an := a.Analyze(1)
	line := an.TopLines[0]
	if !line.Truncated {
		t.Error("chain not marked truncated")
	}
	if len(line.Chain) != MaxChainLen {
		t.Errorf("chain len = %d, want cap %d", len(line.Chain), MaxChainLen)
	}
	if line.Owners != int64(MaxChainLen+20) {
		t.Errorf("owners = %d, want %d", line.Owners, MaxChainLen+20)
	}
}
