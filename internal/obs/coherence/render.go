package coherence

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Render writes a human-readable report of the analysis: per-protocol
// transition matrices, residency shares, dominant causes, fan-out
// histograms, sourcing mix, and the busiest lines' ownership chains.
func (an *Analysis) Render(w io.Writer) {
	fmt.Fprintf(w, "coherence analysis: %d events (%d state transitions), %d lines, span %s\n",
		an.Events, an.StateEvents, an.Lines, fmtNS(an.SpanNS))
	if an.TruncatedLines > 0 {
		fmt.Fprintf(w, "note: %d lines past the tracking cap (matrices complete; chains/residency partial)\n",
			an.TruncatedLines)
	}
	for _, name := range an.ProtocolNames() {
		ps := an.Protocols[name]
		fmt.Fprintf(w, "\nprotocol %s: %d transitions, %d snoop invalidations, %d ownership moves\n",
			name, ps.Transitions, ps.Invalidations, ps.OwnershipMoves)
		renderMatrix(w, &ps.Matrix)
		renderResidency(w, ps, an.SpanNS)
		renderCauses(w, ps)
		renderFanout(w, "invalidation fan-out", ps.InvFanout)
		renderFanout(w, "update fan-out", ps.UpdFanout)
		if reads := ps.CacheSourced + ps.MemSourced; reads > 0 {
			fmt.Fprintf(w, "  read sourcing: %d cache-to-cache, %d memory (%.0f%% c2c)\n",
				ps.CacheSourced, ps.MemSourced, 100*float64(ps.CacheSourced)/float64(reads))
		}
	}
	if len(an.TopLines) > 0 {
		fmt.Fprintf(w, "\ntop lines by activity:\n")
		for _, l := range an.TopLines {
			fmt.Fprintf(w, "  %#010x  %5d transitions  %3d owners  %s\n",
				l.Addr, l.Events, l.Owners, renderChain(l))
		}
	}
}

func renderMatrix(w io.Writer, m *Matrix) {
	fmt.Fprintf(w, "  transition matrix (from \\ to):\n")
	fmt.Fprintf(w, "       %8s %8s %8s %8s %8s\n",
		StateLetters[0], StateLetters[1], StateLetters[2], StateLetters[3], StateLetters[4])
	for f := range m {
		fmt.Fprintf(w, "    %s  %8d %8d %8d %8d %8d\n",
			StateLetters[f], m[f][0], m[f][1], m[f][2], m[f][3], m[f][4])
	}
}

func renderResidency(w io.Writer, ps *ProtoAnalysis, span int64) {
	var total int64
	for _, v := range ps.ResidencyNS {
		total += v
	}
	if total == 0 {
		return
	}
	parts := make([]string, 0, NumStates)
	for i, v := range ps.ResidencyNS {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s %.1f%%", StateLetters[i], 100*float64(v)/float64(total)))
		}
	}
	fmt.Fprintf(w, "  residency (copy-time share): %s\n", strings.Join(parts, "  "))
}

func renderCauses(w io.Writer, ps *ProtoAnalysis) {
	type cc struct {
		cause string
		n     int64
	}
	causes := make([]cc, 0, len(ps.ByCause))
	for cause, m := range ps.ByCause {
		causes = append(causes, cc{cause, m.Total()})
	}
	sort.Slice(causes, func(i, j int) bool {
		if causes[i].n != causes[j].n {
			return causes[i].n > causes[j].n
		}
		return causes[i].cause < causes[j].cause
	})
	if len(causes) > 6 {
		causes = causes[:6]
	}
	parts := make([]string, len(causes))
	for i, c := range causes {
		parts[i] = fmt.Sprintf("%s %d", c.cause, c.n)
	}
	fmt.Fprintf(w, "  top causes: %s\n", strings.Join(parts, ", "))
}

func renderFanout(w io.Writer, label string, h map[int]int64) {
	if len(h) == 0 {
		return
	}
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%d×%d", k, h[k])
	}
	fmt.Fprintf(w, "  %s: %s (mean %.2f)\n", label, strings.Join(parts, " "), FanoutMean(h))
}

func renderChain(l LineSummary) string {
	if len(l.Chain) == 0 {
		return "never owned"
	}
	parts := make([]string, 0, len(l.Chain)+1)
	for _, seg := range l.Chain {
		if seg.Proc < 0 {
			parts = append(parts, "mem")
		} else {
			parts = append(parts, fmt.Sprintf("P%d(%s)", seg.Proc, seg.State))
		}
	}
	if l.Truncated {
		parts = append(parts, "…")
	}
	return strings.Join(parts, " → ")
}

func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	}
	return fmt.Sprintf("%dns", ns)
}
