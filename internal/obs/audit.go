package obs

import (
	"fmt"
	"strings"
	"sync"
)

// LineAuditSink keeps a bounded per-line trail of every event that
// touched each address — the "why is this line Owned here?" view. It
// retains the most recent MaxPerLine events per address; older history
// is discarded, which keeps long runs bounded while the recent causal
// chain (the part a divergence investigation needs) stays intact.
type LineAuditSink struct {
	mu      sync.Mutex
	perLine map[uint64][]Event
	max     int
}

// DefaultAuditDepth is the per-line retention of NewLineAuditSink.
const DefaultAuditDepth = 128

// NewLineAuditSink creates an audit sink retaining maxPerLine events
// per address (0 = DefaultAuditDepth).
func NewLineAuditSink(maxPerLine int) *LineAuditSink {
	if maxPerLine <= 0 {
		maxPerLine = DefaultAuditDepth
	}
	return &LineAuditSink{perLine: make(map[uint64][]Event), max: maxPerLine}
}

// audited reports whether kind is part of a line's causal history.
func auditedKind(k Kind) bool {
	switch k {
	case KindTx, KindAbort, KindRecover, KindState, KindIntervene,
		KindUpdate, KindCapture, KindEvict, KindMemWrite:
		return true
	}
	return false
}

// Consume implements Sink.
func (s *LineAuditSink) Consume(e *Event) {
	if !auditedKind(e.Kind) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	trail := s.perLine[e.Addr]
	if len(trail) >= s.max {
		// Drop the oldest half in one move instead of shifting per
		// event; amortised O(1) per append.
		n := copy(trail, trail[len(trail)-s.max/2:])
		trail = trail[:n]
	}
	s.perLine[e.Addr] = append(trail, *e)
}

// Flush implements Sink.
func (s *LineAuditSink) Flush() error { return nil }

// LineHistory returns the retained events for a line, oldest first.
func (s *LineAuditSink) LineHistory(addr uint64) []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.perLine[addr]...)
}

// Explain renders a line's history as a human-readable audit trail.
func (s *LineAuditSink) Explain(addr uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "line %#x:\n", addr)
	for _, e := range s.LineHistory(addr) {
		fmt.Fprintf(&b, "  t=%-8d bus=%d proc=%-2d %-9s", e.TS, e.Bus, e.Proc, e.Kind)
		switch e.Kind {
		case KindTx:
			fmt.Fprintf(&b, " col%d %s CH=%t DI=%t SL=%t retries=%d cost=%dns",
				e.Col, e.Op, e.CH, e.DI, e.SL, e.Retries, e.Dur)
		case KindState:
			fmt.Fprintf(&b, " %s→%s (%s)", e.From, e.To, e.Cause)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
