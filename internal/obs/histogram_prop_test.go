package obs

import (
	"math/rand"
	"testing"
)

// randomHistogram fills a histogram with a reproducible random sample
// set drawn from mixed magnitudes (log-bucketed data is only
// interesting when the samples span buckets).
func randomHistogram(r *rand.Rand, n int) (*Histogram, []int64) {
	h := &Histogram{}
	samples := make([]int64, n)
	for i := range samples {
		v := r.Int63n(1 << uint(1+r.Intn(40)))
		samples[i] = v
		h.Observe(v)
	}
	return h, samples
}

// Quantile must be monotone non-decreasing in q: a higher quantile can
// never report a smaller latency.
func TestHistogramQuantileMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(1986))
	qs := []float64{0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
	for trial := 0; trial < 50; trial++ {
		h, _ := randomHistogram(r, 1+r.Intn(2000))
		prev := int64(-1)
		for _, q := range qs {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("trial %d: Quantile(%g) = %d < previous %d", trial, q, v, prev)
			}
			prev = v
		}
	}
}

// Every quantile is bounded by the observed min and max: the digest
// can be coarse (one power of two) but never invents values outside
// the sample range.
func TestHistogramQuantileBounded(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		h, samples := randomHistogram(r, 1+r.Intn(2000))
		min, max := samples[0], samples[0]
		for _, v := range samples {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
			v := h.Quantile(q)
			if v > max {
				t.Fatalf("trial %d: Quantile(%g) = %d > max %d", trial, q, v, max)
			}
			if v < 0 {
				t.Fatalf("trial %d: Quantile(%g) = %d < 0", trial, q, v)
			}
		}
		// The top quantile must reach the max exactly (the last bucket's
		// upper bound is clamped to the observed max).
		if got := h.Quantile(1); got != max {
			t.Fatalf("trial %d: Quantile(1) = %d, want max %d", trial, got, max)
		}
	}
}

// Summary must agree with the exact accumulators: Count, Sum, Mean,
// Min, Max, and each quantile field with its Quantile call.
func TestHistogramSummaryConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		h, samples := randomHistogram(r, 1+r.Intn(2000))
		var sum int64
		min, max := samples[0], samples[0]
		for _, v := range samples {
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		s := h.Summary()
		if s.Count != int64(len(samples)) {
			t.Fatalf("Count = %d, want %d", s.Count, len(samples))
		}
		if h.Sum() != sum {
			t.Fatalf("Sum = %d, want %d", h.Sum(), sum)
		}
		if want := float64(sum) / float64(len(samples)); s.Mean != want {
			t.Fatalf("Mean = %g, want %g", s.Mean, want)
		}
		if s.Min != min || s.Max != max {
			t.Fatalf("Min/Max = %d/%d, want %d/%d", s.Min, s.Max, min, max)
		}
		for _, c := range []struct {
			field int64
			q     float64
		}{{s.P50, 0.50}, {s.P90, 0.90}, {s.P95, 0.95}, {s.P99, 0.99}, {s.P999, 0.999}} {
			if c.field != h.Quantile(c.q) {
				t.Fatalf("Summary p%g = %d, Quantile = %d", c.q*100, c.field, h.Quantile(c.q))
			}
		}
	}
}

// Buckets must partition the samples: counts sum to Count, and each
// sample lands in the bucket of its bit length.
func TestHistogramBucketsPartition(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		h, _ := randomHistogram(r, 1+r.Intn(500))
		var total int64
		for _, c := range h.Buckets() {
			total += c
		}
		if total != h.Count() {
			t.Fatalf("bucket counts sum to %d, Count = %d", total, h.Count())
		}
	}
	// Boundary values land in the expected buckets: 0 in bucket 0,
	// 2^i-1 and 2^(i-1) in bucket i.
	var h Histogram
	h.Observe(0)
	h.Observe(1)
	h.Observe(7)
	h.Observe(8)
	b := h.Buckets()
	want := []int64{1, 1, 0, 1, 1} // 0 → b0, 1 → b1, 7 → b3, 8 → b4
	if len(b) != len(want) {
		t.Fatalf("buckets = %v, want %v", b, want)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", b, want)
		}
	}
}

// Negative samples clamp to zero rather than corrupting the digest.
func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	s := h.Summary()
	if s.Min != 0 || h.Quantile(1) != 0 || h.Sum() != 0 {
		t.Errorf("negative sample not clamped: %+v sum=%d", s, h.Sum())
	}
}
