package obs

import "testing"

// TestFbtSchemaAppendOnly pins the .fbt wire schema: the flag-bit
// positions and the seed-dictionary kind order are APPEND-ONLY (see
// the comment above the flag constants in fbt.go). Reordering or
// removing an entry silently re-keys every existing recording — old
// traces would decode into the wrong fields without any codec error.
// If this test fails, the only acceptable fix is restoring the old
// positions and appending the new entry at the end (bumping
// TraceVersion if the format genuinely must break).
func TestFbtSchemaAppendOnly(t *testing.T) {
	wantFlags := []struct {
		name string
		got  uint32
		want uint32
	}{
		{"fbtDur", fbtDur, 1 << 0},
		{"fbtCol", fbtCol, 1 << 1},
		{"fbtOp", fbtOp, 1 << 2},
		{"fbtFrom", fbtFrom, 1 << 3},
		{"fbtTo", fbtTo, 1 << 4},
		{"fbtCause", fbtCause, 1 << 5},
		{"fbtCH", fbtCH, 1 << 6},
		{"fbtDI", fbtDI, 1 << 7},
		{"fbtSL", fbtSL, 1 << 8},
		{"fbtRetries", fbtRetries, 1 << 9},
		{"fbtBytes", fbtBytes, 1 << 10},
		{"fbtArbNS", fbtArbNS, 1 << 11},
		{"fbtAddrNS", fbtAddrNS, 1 << 12},
		{"fbtDataNS", fbtDataNS, 1 << 13},
		{"fbtIntvNS", fbtIntvNS, 1 << 14},
		{"fbtMemNS", fbtMemNS, 1 << 15},
		{"fbtRetryNS", fbtRetryNS, 1 << 16},
		{"fbtTxID", fbtTxID, 1 << 17},
		{"fbtCauseID", fbtCauseID, 1 << 18},
		{"fbtProto", fbtProto, 1 << 19},
		{"fbtPendNS", fbtPendNS, 1 << 20},
		{"fbtDeferNS", fbtDeferNS, 1 << 21},
	}
	for _, f := range wantFlags {
		if f.got != f.want {
			t.Errorf("%s = 1<<%d, want 1<<%d — flag bits are append-only",
				f.name, bitPos(f.got), bitPos(f.want))
		}
	}

	wantKinds := []Kind{
		KindTx, KindGrant, KindAbort, KindRecover, KindState,
		KindIntervene, KindUpdate, KindCapture, KindEvict, KindStall,
		KindBlocked, KindMemRead, KindMemWrite,
		KindPend, KindData, KindNack, KindRetryExhausted,
	}
	if len(seedKinds) < len(wantKinds) {
		t.Fatalf("seedKinds shrank to %d entries (want at least %d) — seed dictionary is append-only",
			len(seedKinds), len(wantKinds))
	}
	for i, want := range wantKinds {
		if seedKinds[i] != want {
			t.Errorf("seedKinds[%d] = %q, want %q — existing entries must keep their positions",
				i, seedKinds[i], want)
		}
	}
}

func bitPos(v uint32) int {
	for i := 0; i < 32; i++ {
		if v == 1<<i {
			return i
		}
	}
	return -1
}
