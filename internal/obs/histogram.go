package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
)

// Histogram is a log-bucketed distribution of non-negative int64
// samples: bucket i holds values whose bit length is i, so buckets are
// powers of two and Observe is two instructions of bookkeeping. It
// replaces totals-only views (BusyNanos, StallNanos) with p50/p95/p99.
type Histogram struct {
	counts   [65]int64
	n        int64
	sum      int64
	min, max int64
}

// Observe records one sample (negatives are clamped to 0).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bits.Len64(uint64(v))]++
	h.n++
	h.sum += v
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.n }

// Sum returns the exact sample sum.
func (h *Histogram) Sum() int64 { return h.sum }

// Buckets returns the log-bucket counts up to (and including) the
// highest non-empty bucket: bucket i holds samples of bit length i,
// i.e. values in [2^(i-1), 2^i-1] (bucket 0 holds exactly 0). The
// obshttp registry renders these as a cumulative Prometheus histogram
// with le = 2^i - 1.
func (h *Histogram) Buckets() []int64 {
	top := -1
	for i, c := range h.counts {
		if c != 0 {
			top = i
		}
	}
	return append([]int64(nil), h.counts[:top+1]...)
}

// Mean returns the exact sample mean.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns an upper bound for the q-th quantile (0 ≤ q ≤ 1):
// the top of the bucket containing the q·n-th sample. Resolution is
// one power of two, which is what a log-bucketed latency view gives.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			if i == 0 {
				return 0
			}
			upper := int64(1)<<uint(i) - 1
			if upper > h.max {
				upper = h.max
			}
			return upper
		}
	}
	return h.max
}

// Summary is the fixed-quantile digest of a Histogram. P90 and P999
// bracket the P95/P99 pair the original sinks reported: the saturation
// telemetry (internal/obs/perf) reads tail latency at p999, which a
// log-bucketed histogram resolves as cheaply as the median.
type Summary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Min   int64   `json:"min"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	Max   int64   `json:"max"`
}

// Summary digests the histogram.
func (h *Histogram) Summary() Summary {
	return Summary{
		Count: h.n,
		Mean:  h.Mean(),
		Min:   h.min,
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.max,
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f min=%d p50=%d p90=%d p95=%d p99=%d p999=%d max=%d",
		s.Count, s.Mean, s.Min, s.P50, s.P90, s.P95, s.P99, s.P999, s.Max)
}

// Histogram metric names produced by HistogramSink.
const (
	MetricTxLatency = "bus.tx.latency_ns" // per-transaction bus cost
	MetricTxRetries = "bus.tx.retries"    // BS abort/retry rounds per tx
	MetricStall     = "proc.stall_ns"     // per-bus-op master stall
)

// HistogramSink accumulates latency/stall/retry distributions from the
// event stream. Summaries may be read concurrently with draining.
type HistogramSink struct {
	mu     sync.Mutex
	byName map[string]*Histogram
}

// NewHistogramSink creates an empty histogram sink.
func NewHistogramSink() *HistogramSink {
	return &HistogramSink{byName: make(map[string]*Histogram)}
}

func (s *HistogramSink) hist(name string) *Histogram {
	h, ok := s.byName[name]
	if !ok {
		h = &Histogram{}
		s.byName[name] = h
	}
	return h
}

// Consume implements Sink.
func (s *HistogramSink) Consume(e *Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch e.Kind {
	case KindTx:
		s.hist(MetricTxLatency).Observe(e.Dur)
		s.hist(MetricTxRetries).Observe(int64(e.Retries))
	case KindStall:
		s.hist(MetricStall).Observe(e.Dur)
	}
}

// Flush implements Sink (histograms are pull-only).
func (s *HistogramSink) Flush() error { return nil }

// Summaries digests every metric observed so far.
func (s *HistogramSink) Summaries() map[string]Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Summary, len(s.byName))
	for name, h := range s.byName {
		out[name] = h.Summary()
	}
	return out
}

// Render formats the summaries for terminal output, sorted by name.
func (s *HistogramSink) Render() string {
	sums := s.Summaries()
	names := make([]string, 0, len(sums))
	for n := range sums {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%-20s %s\n", n, sums[n])
	}
	return b.String()
}

// FindHistogram returns the first HistogramSink attached to r, or nil.
func FindHistogram(r *Recorder) *HistogramSink {
	for _, s := range r.Sinks() {
		if h, ok := s.(*HistogramSink); ok {
			return h
		}
	}
	return nil
}
