package obs

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

// fbtSampleEvents exercises every field, including values the varint
// layer must reproduce exactly: negative ids, max-range durations,
// out-of-order sequence numbers (wraparound deltas) and strings outside
// the seed dictionaries.
func fbtSampleEvents() []Event {
	return []Event{
		{Seq: 0, TS: 0, Kind: KindGrant, Bus: 0, Proc: 3, Addr: 0x40, TxID: 1},
		{Seq: 1, TS: 100, Dur: 645, Kind: KindTx, Bus: 0, Proc: 3, Addr: 0x40,
			Col: 7, Op: "W", CH: true, DI: true, SL: true, Retries: 2, Bytes: 32,
			ArbNS: 50, AddrNS: 125, DataNS: 320, IntvNS: 60, MemNS: 140, RetryNS: 250,
			TxID: 1, CauseID: 0},
		{Seq: 2, TS: 745, Kind: KindState, Bus: -1, Proc: 0, Addr: 0x40,
			From: "I", To: "M", Cause: "write-upgrade"},
		{Seq: 3, TS: 745, Dur: 90, Kind: KindBlocked, Bus: 0, Proc: 2, Addr: 0x80, CauseID: 1},
		{Seq: 4, TS: 800, Kind: KindAbort, Bus: 1, Proc: -1, Addr: math.MaxUint64, TxID: 2},
		{Seq: 5, TS: 810, Kind: KindRecover, Bus: 1, Proc: 4, Addr: 0x80, TxID: 2, CauseID: 9},
		// Out-of-order Seq/TS: deltas wrap around and must still decode
		// to the exact values.
		{Seq: 3, TS: -500, Dur: math.MaxInt64, Kind: "custom-kind", Bus: -1, Proc: -1,
			Addr: 1, Op: "A", From: "zz", To: "yy", Cause: "novel"},
		{Seq: math.MaxUint64, TS: math.MinInt64, Dur: -1, Kind: "custom-kind",
			Bus: 255, Proc: 1024, Addr: 0, Retries: -3, Bytes: -64,
			ArbNS: math.MinInt64, RetryNS: math.MaxInt64, TxID: math.MaxUint64, CauseID: math.MaxUint64},
		{Seq: 0, TS: 0, Kind: KindMemWrite, Bus: 0, Proc: 0, Addr: 0xffff, Bytes: 32},
	}
}

func encodeFBT(t testing.TB, meta TraceMeta, events []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := NewRecordSink(&buf, meta)
	for i := range events {
		sink.Consume(&events[i])
	}
	if err := sink.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes()
}

// TestTraceRoundTrip is the golden-path guarantee: record → replay →
// the JSONL re-export is byte-identical to a JSONL export of the live
// stream, i.e. the codec loses nothing.
func TestTraceRoundTrip(t *testing.T) {
	events := fbtSampleEvents()
	meta := TraceMeta{Fingerprint: "test fingerprint seed=1"}
	raw := encodeFBT(t, meta, events)

	var live bytes.Buffer
	liveSink := NewJSONLSink(&live)
	for i := range events {
		liveSink.Consume(&events[i])
	}
	if err := liveSink.Flush(); err != nil {
		t.Fatal(err)
	}

	var replayed bytes.Buffer
	replaySink := NewJSONLSink(&replayed)
	gotMeta, n, err := ReplayTrace(bytes.NewReader(raw), replaySink)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := replaySink.Flush(); err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Errorf("meta = %+v, want %+v", gotMeta, meta)
	}
	if n != int64(len(events)) {
		t.Errorf("replayed %d events, want %d", n, len(events))
	}
	if !bytes.Equal(live.Bytes(), replayed.Bytes()) {
		t.Errorf("JSONL re-export diverged:\nlive:\n%s\nreplayed:\n%s", live.String(), replayed.String())
	}
}

// TestTraceRoundTripStructs compares the decoded events field by field
// (JSONL equality would hide omitempty-invisible fields).
func TestTraceRoundTripStructs(t *testing.T) {
	events := fbtSampleEvents()
	raw := encodeFBT(t, TraceMeta{}, events)
	tr, err := NewTraceReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		var got Event
		if err := tr.Next(&got); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got != events[i] {
			t.Errorf("event %d = %+v, want %+v", i, got, events[i])
		}
	}
	var e Event
	if err := tr.Next(&e); err != io.EOF {
		t.Errorf("after last event: err = %v, want io.EOF", err)
	}
}

// TestTraceDeterministicEncoding: the same event stream encodes to the
// same bytes (the dictionaries are seeded and deterministic), which is
// what lets CI compare two same-seed recordings with cmp.
func TestTraceDeterministicEncoding(t *testing.T) {
	events := fbtSampleEvents()
	a := encodeFBT(t, TraceMeta{Fingerprint: "x"}, events)
	b := encodeFBT(t, TraceMeta{Fingerprint: "x"}, events)
	if !bytes.Equal(a, b) {
		t.Error("identical event streams encoded differently")
	}
}

func TestTraceHeaderErrors(t *testing.T) {
	valid := encodeFBT(t, TraceMeta{Fingerprint: "fp"}, fbtSampleEvents())
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "header"},
		{"bad magic", []byte("NOPE"), "not an .fbt trace"},
		{"truncated magic", []byte("FB"), "header"},
		{"bad version", append([]byte(TraceMagic), 0x7f), "unsupported .fbt schema version"},
		{"truncated fingerprint", append([]byte(TraceMagic), 1, 200), "fingerprint"},
		{"oversized string", append([]byte(TraceMagic), 1, 0xff, 0xff, 0xff, 0x7f), "exceeds limit"},
		{"truncated kind table", valid[:len(TraceMagic)+3], "header"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewTraceReader(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("NewTraceReader accepted corrupt header")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %q, want substring %q", err, tc.want)
			}
		})
	}
}

// TestTraceTruncation: cutting a valid trace anywhere past the header
// must yield a decode error (io.ErrUnexpectedEOF wrapped), never a
// silent clean EOF mid-event and never a panic.
func TestTraceTruncation(t *testing.T) {
	events := fbtSampleEvents()
	raw := encodeFBT(t, TraceMeta{Fingerprint: "fp"}, events)

	// The header length is the length of an empty trace with the same
	// metadata.
	hdr := len(encodeFBT(t, TraceMeta{Fingerprint: "fp"}, nil))

	for cut := hdr + 1; cut < len(raw); cut++ {
		tr, err := NewTraceReader(bytes.NewReader(raw[:cut]))
		if err != nil {
			t.Fatalf("cut %d: header rejected: %v", cut, err)
		}
		var e Event
		var last error
		n := 0
		for {
			if last = tr.Next(&e); last != nil {
				break
			}
			if n++; n > len(events) {
				t.Fatalf("cut %d: decoded more events than recorded", cut)
			}
		}
		if last == io.EOF && n >= len(events) {
			t.Fatalf("cut %d: truncated stream decoded cleanly", cut)
		}
		if last != io.EOF && !errors.Is(last, io.ErrUnexpectedEOF) && !strings.Contains(last.Error(), "fbt event") {
			t.Fatalf("cut %d: unexpected error %v", cut, last)
		}
	}
}

// TestTraceBadRefs: dictionary references beyond the dictionary are
// rejected.
func TestTraceBadRefs(t *testing.T) {
	hdr := encodeFBT(t, TraceMeta{}, nil)
	// kindRef far past the 13-entry seed dictionary.
	bad := append(append([]byte{}, hdr...), 0x40)
	tr, err := NewTraceReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	var e Event
	if err := tr.Next(&e); err == nil || !strings.Contains(err.Error(), "beyond dictionary") {
		t.Errorf("out-of-range kind ref: err = %v, want beyond-dictionary error", err)
	}
}

// FuzzTraceDecode hardens the decoder: arbitrary bytes must produce an
// error or a bounded number of events — never a panic or runaway
// allocation.
func FuzzTraceDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(TraceMagic))
	f.Add(encodeFBT(f, TraceMeta{Fingerprint: "fuzz"}, fbtSampleEvents()))
	f.Add(encodeFBT(f, TraceMeta{}, nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := NewTraceReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var e Event
		for i := 0; i < 1<<16; i++ {
			if err := tr.Next(&e); err != nil {
				return
			}
		}
	})
}
