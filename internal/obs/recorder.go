package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Sink consumes drained events. Consume is always called from a single
// goroutine at a time (the Recorder serialises draining), in emission
// order, so sinks need no internal locking against each other — only
// against their own readers (see HistogramSink, LineAuditSink).
type Sink interface {
	// Consume observes one event. The pointee is only valid for the
	// duration of the call; sinks that retain events must copy.
	Consume(e *Event)
	// Flush finalises buffered output (write files, close arrays).
	Flush() error
}

// SinkFunc adapts a function to a Sink with a no-op Flush.
type SinkFunc func(e *Event)

// Consume implements Sink.
func (f SinkFunc) Consume(e *Event) { f(e) }

// Flush implements Sink.
func (f SinkFunc) Flush() error { return nil }

// DefaultBuffer is the ring capacity used by New. Kept small enough
// that the slot array stays cache-resident: a larger ring makes every
// push a cold-memory write and evicts the simulator's working set,
// which costs more wall-clock than the occasional backpressure yield
// when a burst outruns the drainer.
const DefaultBuffer = 1 << 10

// Recorder accepts events from any goroutine and moves them through a
// lock-free ring into its sinks from a background drain goroutine. A
// nil *Recorder is valid and inert: every method is a no-op, which is
// the branch-cheap fast path the substrates rely on.
type Recorder struct {
	ring  *ring
	clock atomic.Int64
	sinks []Sink

	drainMu sync.Mutex // serialises ring consumption and sink access
	notify  chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup
	closed  atomic.Bool
	dropped atomic.Int64
}

// New creates a recorder with the default ring capacity.
func New(sinks ...Sink) *Recorder { return NewSized(DefaultBuffer, sinks...) }

// NewSized creates a recorder whose ring holds at least buffer events.
func NewSized(buffer int, sinks ...Sink) *Recorder {
	if buffer < 2 {
		buffer = 2
	}
	r := &Recorder{
		ring:   newRing(buffer),
		sinks:  sinks,
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	r.wg.Add(1)
	go r.drainLoop()
	return r
}

// Sinks returns the attached sinks (for summary extraction at the end
// of a run, e.g. FindHistogram).
func (r *Recorder) Sinks() []Sink {
	if r == nil {
		return nil
	}
	return r.sinks
}

// Clock returns the simulated time in nanoseconds: the cumulative bus
// occupancy advanced by the bus as transactions complete.
func (r *Recorder) Clock() int64 {
	if r == nil {
		return 0
	}
	return r.clock.Load()
}

// Advance moves the simulated clock forward by d and returns the clock
// value BEFORE the advance — the begin timestamp of the span that d
// paid for.
func (r *Recorder) Advance(d int64) int64 {
	if r == nil {
		return 0
	}
	return r.clock.Add(d) - d
}

// Emit enqueues one event. Safe from any goroutine. When the ring is
// full, Emit yields until the drainer frees space (events are never
// dropped while the recorder is open, so audit trails stay complete).
// Emits after Close are discarded and counted (Dropped) instead of
// being silently lost.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	if r.closed.Load() {
		// The drainer may already be gone; an event pushed now could
		// sit in the ring forever. Count the discard instead.
		r.dropped.Add(1)
		return
	}
	for !r.ring.push(&e) {
		if r.closed.Load() {
			r.dropped.Add(1)
			return // drainer gone; drop rather than spin forever
		}
		r.wake()
		runtime.Gosched()
	}
	// Wake the drainer only when this event published at the consume
	// position — the empty→non-empty transition. The drainer always
	// drains to empty before parking, so any later event is either
	// covered by this wake or republishes at the head itself once the
	// drainer catches up; waking on every Emit would just burn a
	// channel operation per event.
	if r.ring.head.Load() == e.Seq {
		r.wake()
	}
}

// Dropped returns the number of events discarded because they were
// emitted after Close. A non-zero value means some instrumentation
// site outlived the recorder — surface it rather than hide it.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

func (r *Recorder) wake() {
	select {
	case r.notify <- struct{}{}:
	default:
	}
}

func (r *Recorder) drainLoop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.notify:
			r.drain()
		case <-r.done:
			r.drain()
			return
		}
	}
}

// drain delivers every currently buffered event to the sinks, straight
// from the ring slots (the Sink contract already limits the pointee's
// lifetime to the Consume call, so no defensive copy is needed).
func (r *Recorder) drain() {
	r.drainMu.Lock()
	defer r.drainMu.Unlock()
	for {
		e := r.ring.peek()
		if e == nil {
			return
		}
		for _, s := range r.sinks {
			s.Consume(e)
		}
		r.ring.advance()
	}
}

// Drain delivers every buffered event to the sinks without flushing
// them — use it to read pull-style sinks (histograms) mid-run without
// forcing document-style sinks (the Chrome exporter writes a single
// JSON document on Flush) to finalise their output.
func (r *Recorder) Drain() {
	if r == nil {
		return
	}
	r.drain()
}

// Flush drains the ring and flushes every sink. Call it when the
// system is quiescent (no emitters mid-flight) to get a complete view.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.drain()
	var first error
	for _, s := range r.sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close stops the drain goroutine, drains whatever remains and flushes
// the sinks. The recorder accepts (and discards) Emits afterwards.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	if r.closed.Swap(true) {
		return nil
	}
	close(r.done)
	r.wg.Wait()
	return r.Flush()
}
