package obs

import (
	"container/heap"
	"sort"
	"sync"
)

// Bus-transaction phases, in pipeline order. The bus decomposes every
// completed transaction's time into these (bus.PhaseCosts) and carries
// the breakdown on the KindTx event; this file reconstructs spans from
// that stream and attributes time online.
const (
	PhaseArb          = iota // arbitration wait before the grant
	PhaseAddr                // successful broadcast address handshake
	PhaseData                // data beats (incl. broadcast penalties)
	PhaseIntervention        // cache-to-cache first-word (DI)
	PhaseMemory              // memory first-word
	PhaseRetry               // BS abort/retry overhead
	NumPhases
)

// PhaseNames are the stable exposition labels, indexed by phase.
var PhaseNames = [NumPhases]string{
	"arb", "addr", "data", "intervention", "memory", "retry",
}

// TxSpan is one reconstructed bus transaction with its per-phase time
// decomposition — the "why was this miss slow" unit.
type TxSpan struct {
	Seq     uint64 `json:"seq"`
	TS      int64  `json:"ts"`
	Dur     int64  `json:"dur"`
	Bus     int    `json:"bus"`
	Proc    int    `json:"proc"`
	Col     int    `json:"col"`
	Op      string `json:"op"`
	Addr    uint64 `json:"addr"`
	Retries int    `json:"retries"`
	// Phases holds the per-phase nanoseconds, indexed by Phase*;
	// entries 1..NumPhases-1 sum to Dur, entry PhaseArb is waiting time
	// on top of it.
	Phases [NumPhases]int64 `json:"phases"`
}

// SpanFromEvent reconstructs a TxSpan from a KindTx event; ok is false
// for every other kind.
func SpanFromEvent(e *Event) (TxSpan, bool) {
	if e.Kind != KindTx {
		return TxSpan{}, false
	}
	return TxSpan{
		Seq: e.Seq, TS: e.TS, Dur: e.Dur, Bus: e.Bus, Proc: e.Proc,
		Col: e.Col, Op: e.Op, Addr: e.Addr, Retries: e.Retries,
		Phases: [NumPhases]int64{
			PhaseArb: e.ArbNS, PhaseAddr: e.AddrNS, PhaseData: e.DataNS,
			PhaseIntervention: e.IntvNS, PhaseMemory: e.MemNS, PhaseRetry: e.RetryNS,
		},
	}, true
}

// ProcAttribution is one processor's cumulative stall attribution: how
// much of its bus time went to each phase.
type ProcAttribution struct {
	Proc  int    `json:"proc"`
	Label string `json:"label,omitempty"`
	// Tx counts transactions this processor mastered.
	Tx int64 `json:"tx"`
	// StallNS is the total time attributed (arbitration wait plus bus
	// occupancy of its own transactions).
	StallNS int64 `json:"stall_ns"`
	// Phases splits StallNS by phase.
	Phases [NumPhases]int64 `json:"phases"`
}

// DefaultTopK is the slow-transaction ring capacity of NewAttributionSink.
const DefaultTopK = 16

// AttributionSink maintains the live phase-attribution view of the
// event stream: per-phase latency histograms (globally and per board
// label, e.g. protocol name), per-processor stall attribution, and a
// ring of the top-K slowest transactions with their decomposition.
// All read methods are safe concurrently with draining.
type AttributionSink struct {
	mu     sync.Mutex
	topK   int
	phases [NumPhases]Histogram
	labels map[int]string
	byLbl  map[string]*[NumPhases]Histogram
	procs  map[int]*ProcAttribution
	slow   slowHeap // min-heap by Dur, at most topK spans
}

// NewAttributionSink creates an attribution sink retaining the topK
// slowest transactions (0 = DefaultTopK).
func NewAttributionSink(topK int) *AttributionSink {
	if topK <= 0 {
		topK = DefaultTopK
	}
	return &AttributionSink{
		topK:   topK,
		labels: make(map[int]string),
		byLbl:  make(map[string]*[NumPhases]Histogram),
		procs:  make(map[int]*ProcAttribution),
	}
}

// SetProcLabel names a processor for per-label (per-protocol) phase
// histograms and reports. Call before traffic starts.
func (s *AttributionSink) SetProcLabel(proc int, label string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.labels[proc] = label
}

// Consume implements Sink.
func (s *AttributionSink) Consume(e *Event) {
	span, ok := SpanFromEvent(e)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for ph, v := range span.Phases {
		// Arb, Addr and Data are paid by every transaction, so zero is
		// a real sample ("no wait"); the remaining phases only happened
		// when they cost something — a zero there would skew the
		// distribution with not-applicable entries.
		if ph > PhaseData && v == 0 {
			continue
		}
		s.phases[ph].Observe(v)
		if lbl := s.labels[span.Proc]; lbl != "" {
			hs, ok := s.byLbl[lbl]
			if !ok {
				hs = &[NumPhases]Histogram{}
				s.byLbl[lbl] = hs
			}
			hs[ph].Observe(v)
		}
	}
	pa := s.procs[span.Proc]
	if pa == nil {
		pa = &ProcAttribution{Proc: span.Proc, Label: s.labels[span.Proc]}
		s.procs[span.Proc] = pa
	}
	pa.Tx++
	for ph, v := range span.Phases {
		pa.Phases[ph] += v
		pa.StallNS += v
	}
	if len(s.slow) < s.topK {
		heap.Push(&s.slow, span)
	} else if span.Dur > s.slow[0].Dur {
		s.slow[0] = span
		heap.Fix(&s.slow, 0)
	}
}

// Flush implements Sink (the attribution view is pull-only).
func (s *AttributionSink) Flush() error { return nil }

// PhaseSummaries digests the global per-phase histograms, keyed by
// PhaseNames.
func (s *AttributionSink) PhaseSummaries() map[string]Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return phaseSummaries(&s.phases)
}

func phaseSummaries(hs *[NumPhases]Histogram) map[string]Summary {
	out := make(map[string]Summary, NumPhases)
	for ph := range hs {
		if hs[ph].Count() > 0 {
			out[PhaseNames[ph]] = hs[ph].Summary()
		}
	}
	return out
}

// Slowest returns the retained slowest transactions, slowest first.
func (s *AttributionSink) Slowest() []TxSpan {
	s.mu.Lock()
	out := append([]TxSpan(nil), s.slow...)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Dur > out[j].Dur })
	return out
}

// ArbVsTransfer returns the cumulative arbitration-wait versus
// data-transfer split over all transactions — the decomposition the
// shared-bus literature uses to discriminate service disciplines.
func (s *AttributionSink) ArbVsTransfer() (arbNS, transferNS int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, pa := range s.procs {
		arbNS += pa.Phases[PhaseArb]
		transferNS += pa.Phases[PhaseData] + pa.Phases[PhaseIntervention] + pa.Phases[PhaseMemory]
	}
	return arbNS, transferNS
}

// AttributionReport is the JSON-able snapshot of everything the sink
// tracks.
type AttributionReport struct {
	// Phases digests the per-phase latency distributions over all
	// transactions (keys are PhaseNames; absent = never observed).
	Phases map[string]Summary `json:"phases"`
	// PhasesByLabel repeats the digest per board label (protocol) when
	// labels were set.
	PhasesByLabel map[string]map[string]Summary `json:"phases_by_label,omitempty"`
	// Procs attributes each processor's stall time by phase, in proc
	// order.
	Procs []ProcAttribution `json:"procs"`
	// Slowest lists the retained top-K slowest transactions with their
	// phase decomposition, slowest first.
	Slowest []TxSpan `json:"slowest"`
}

// Report snapshots the current attribution state.
func (s *AttributionSink) Report() AttributionReport {
	s.mu.Lock()
	rep := AttributionReport{Phases: phaseSummaries(&s.phases)}
	if len(s.byLbl) > 0 {
		rep.PhasesByLabel = make(map[string]map[string]Summary, len(s.byLbl))
		for lbl, hs := range s.byLbl {
			rep.PhasesByLabel[lbl] = phaseSummaries(hs)
		}
	}
	for _, pa := range s.procs {
		rep.Procs = append(rep.Procs, *pa)
	}
	rep.Slowest = append([]TxSpan(nil), s.slow...)
	s.mu.Unlock()
	sort.Slice(rep.Procs, func(i, j int) bool { return rep.Procs[i].Proc < rep.Procs[j].Proc })
	sort.Slice(rep.Slowest, func(i, j int) bool { return rep.Slowest[i].Dur > rep.Slowest[j].Dur })
	return rep
}

// FindAttribution returns the first AttributionSink attached to r, or
// nil.
func FindAttribution(r *Recorder) *AttributionSink {
	for _, s := range r.Sinks() {
		if a, ok := s.(*AttributionSink); ok {
			return a
		}
	}
	return nil
}

// slowHeap is a min-heap of spans by duration, so the root is the
// cheapest retained span — the one a slower newcomer evicts.
type slowHeap []TxSpan

func (h slowHeap) Len() int           { return len(h) }
func (h slowHeap) Less(i, j int) bool { return h[i].Dur < h[j].Dur }
func (h slowHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *slowHeap) Push(x any)        { *h = append(*h, x.(TxSpan)) }
func (h *slowHeap) Pop() any          { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }
