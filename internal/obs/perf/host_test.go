package perf

import (
	"runtime"
	"testing"
)

func TestReadHostStatsSane(t *testing.T) {
	s := ReadHostStats()
	if s.GoVersion == "" || s.GOMAXPROCS < 1 || s.NumCPU < 1 || s.Goroutines < 1 {
		t.Errorf("implausible host stats: %+v", s)
	}
	if s.AllocBytes == 0 || s.AllocObjects == 0 {
		t.Errorf("a running test binary has allocated: %+v", s)
	}
}

func TestHostRunDeltaAndNormalisation(t *testing.T) {
	hr := StartHost()
	// Allocate something measurable so the delta is provably positive.
	var sink [][]byte
	for i := 0; i < 1000; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	runtime.KeepAlive(sink)
	r := hr.Stop(1000)
	if r.AllocBytesTotal < 1000*1024 {
		t.Errorf("AllocBytesTotal = %d, want >= %d", r.AllocBytesTotal, 1000*1024)
	}
	if r.AllocBytesPerRef < 1024 {
		t.Errorf("AllocBytesPerRef = %f, want >= 1024", r.AllocBytesPerRef)
	}
	if r.Refs != 1000 || r.WallNS <= 0 || r.RefsPerSec <= 0 {
		t.Errorf("run bookkeeping: %+v", r)
	}
	if r.GoroutinesPeak < 1 {
		t.Errorf("GoroutinesPeak = %d", r.GoroutinesPeak)
	}
}

func TestHostRunZeroRefs(t *testing.T) {
	hr := StartHost()
	r := hr.Stop(0)
	if r.AllocBytesPerRef != 0 || r.AllocObjectsPerRef != 0 || r.RefsPerSec != 0 {
		t.Errorf("zero refs must leave per-ref fields zero: %+v", r)
	}
}
