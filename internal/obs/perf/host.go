package perf

import (
	"runtime"
	"runtime/metrics"
	"time"
)

// HostStats is a point-in-time read of the Go runtime's own cost
// counters — what the *host* pays to run the simulation, as opposed to
// the simulated time every other obs layer explains. Cumulative fields
// (allocations, GC) are process-lifetime totals; diff two reads to cost
// a run.
type HostStats struct {
	// GoVersion, GOMAXPROCS and NumCPU describe the host environment.
	GoVersion  string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"cpus"`
	// Goroutines is the live goroutine count.
	Goroutines int64 `json:"goroutines"`
	// AllocBytes / AllocObjects are cumulative heap allocations.
	AllocBytes   uint64 `json:"alloc_bytes"`
	AllocObjects uint64 `json:"alloc_objects"`
	// HeapLiveBytes is the live heap at the time of the read.
	HeapLiveBytes uint64 `json:"heap_live_bytes"`
	// GCCycles is the cumulative completed GC cycle count.
	GCCycles uint64 `json:"gc_cycles"`
	// GCPauseTotalNS is the cumulative stop-the-world pause time.
	GCPauseTotalNS uint64 `json:"gc_pause_total_ns"`
}

// hostSamples are the runtime/metrics series ReadHostStats pulls.
var hostSamples = []string{
	"/gc/heap/allocs:bytes",
	"/gc/heap/allocs:objects",
	"/gc/heap/objects:objects",
	"/gc/cycles/total:gc-cycles",
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
}

// ReadHostStats samples the runtime. It prefers runtime/metrics and
// falls back to MemStats for series a runtime may not export; the GC
// pause total always comes from MemStats (runtime/metrics only exposes
// pauses as a float histogram).
func ReadHostStats() HostStats {
	s := HostStats{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Goroutines: int64(runtime.NumGoroutine()),
	}
	samples := make([]metrics.Sample, len(hostSamples))
	for i, name := range hostSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)
	read := func(name string) (uint64, bool) {
		for i := range samples {
			if samples[i].Name == name && samples[i].Value.Kind() == metrics.KindUint64 {
				// A zero reading falls through to the MemStats value:
				// metrics.Read has been observed returning unpopulated
				// (all-zero) samples on single-CPU kernels, while
				// ReadMemStats forces a consistent accounting pass.
				v := samples[i].Value.Uint64()
				return v, v != 0
			}
		}
		return 0, false
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if v, ok := read("/gc/heap/allocs:bytes"); ok {
		s.AllocBytes = v
	} else {
		s.AllocBytes = ms.TotalAlloc
	}
	if v, ok := read("/gc/heap/allocs:objects"); ok {
		s.AllocObjects = v
	} else {
		s.AllocObjects = ms.Mallocs
	}
	if v, ok := read("/gc/cycles/total:gc-cycles"); ok {
		s.GCCycles = v
	} else {
		s.GCCycles = uint64(ms.NumGC)
	}
	if v, ok := read("/memory/classes/heap/objects:bytes"); ok {
		s.HeapLiveBytes = v
	} else {
		s.HeapLiveBytes = ms.HeapAlloc
	}
	if v, ok := read("/sched/goroutines:goroutines"); ok {
		s.Goroutines = int64(v)
	}
	s.GCPauseTotalNS = ms.PauseTotalNs
	return s
}

// HostReport is the host cost of one run: the delta between two
// HostStats reads, normalised per simulated reference.
type HostReport struct {
	// WallNS is the wall-clock duration of the run.
	WallNS int64 `json:"wall_ns"`
	// Refs is the simulated references the run retired (the
	// normalisation base; 0 leaves the per-ref fields 0).
	Refs int64 `json:"refs"`
	// AllocBytesTotal / AllocObjectsTotal are heap allocations during
	// the run.
	AllocBytesTotal   uint64 `json:"alloc_bytes_total"`
	AllocObjectsTotal uint64 `json:"alloc_objects_total"`
	// AllocBytesPerRef / AllocObjectsPerRef are the per-reference costs
	// — the numbers the ROADMAP's allocation-free hot-path work aims at.
	AllocBytesPerRef   float64 `json:"alloc_bytes_per_ref"`
	AllocObjectsPerRef float64 `json:"alloc_objects_per_ref"`
	// RefsPerSec is simulated references retired per wall-clock second.
	RefsPerSec float64 `json:"refs_per_sec"`
	// GCCycles and GCPauseTotalNS are the run's garbage-collection bill.
	GCCycles       uint64 `json:"gc_cycles"`
	GCPauseTotalNS uint64 `json:"gc_pause_total_ns"`
	// GoroutinesPeak is the highest goroutine count sampled mid-run
	// (at least the end-of-run count).
	GoroutinesPeak int64 `json:"goroutines_peak"`
	// Host pins the environment the run executed on.
	Host HostStats `json:"host"`
}

// HostRun measures the host cost of a region: Start…Stop bracket the
// run, Sample (optional, from any goroutine schedule) tracks the
// goroutine peak mid-flight.
type HostRun struct {
	start HostStats
	t0    time.Time
	peak  int64
}

// StartHost begins a host-cost measurement.
func StartHost() *HostRun {
	s := ReadHostStats()
	return &HostRun{start: s, t0: time.Now(), peak: s.Goroutines}
}

// Sample updates the goroutine peak; call it periodically during the
// run (fbperf ticks it every few milliseconds).
func (h *HostRun) Sample() {
	if g := int64(runtime.NumGoroutine()); g > h.peak {
		h.peak = g
	}
}

// Stop ends the measurement and reports the delta, normalised over
// refs simulated references.
func (h *HostRun) Stop(refs int64) HostReport {
	end := ReadHostStats()
	if end.Goroutines > h.peak {
		h.peak = end.Goroutines
	}
	r := HostReport{
		WallNS:            time.Since(h.t0).Nanoseconds(),
		Refs:              refs,
		AllocBytesTotal:   end.AllocBytes - h.start.AllocBytes,
		AllocObjectsTotal: end.AllocObjects - h.start.AllocObjects,
		GCCycles:          end.GCCycles - h.start.GCCycles,
		GCPauseTotalNS:    end.GCPauseTotalNS - h.start.GCPauseTotalNS,
		GoroutinesPeak:    h.peak,
		Host:              end,
	}
	if refs > 0 {
		r.AllocBytesPerRef = float64(r.AllocBytesTotal) / float64(refs)
		r.AllocObjectsPerRef = float64(r.AllocObjectsTotal) / float64(refs)
	}
	if r.WallNS > 0 {
		r.RefsPerSec = float64(refs) / (float64(r.WallNS) / 1e9)
	}
	return r
}
