// Package perf is the saturation-telemetry layer of the simulator: a
// Sink that folds the obs event stream into the queueing view the
// shared-bus design lives or dies on. The paper's single bus serialises
// every coherence transaction (§5), so the quantities that predict
// saturation are distributions, not means — how long masters wait for
// the arbiter, how long a granted master holds the bus, how much BS
// retry backoff and memory service cost — plus the arbitration queue
// depth over time per fabric shard.
//
// The sink is stream-driven: it needs no hooks beyond the events the
// bus and engines already emit. Arbitration waits come from KindGrant
// (the concurrent engine measures the wait across Acquire) and
// KindBlocked (the deterministic engine defers boards on its event
// timeline instead); both carry the wait as Dur, so one sink covers
// both engines. Queue depth is reconstructed from the wait intervals
// [TS-Dur, TS]: the depth at a grant is the number of masters whose
// waits overlap its start, which is exactly the arbiter queue the
// Futurebus priority network would be resolving.
//
// Two accumulation windows run side by side: a cumulative one (the
// /perf endpoint and Prometheus histograms) and a per-epoch one reset
// on KindEpoch, so a sweep sharing one recorder across many systems
// still gets per-system quantiles (Metrics.Perf, the fbsweep columns).
package perf

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"futurebus/internal/obs"
)

// Metric names produced by the Sink. Keys of Snapshot.Latency.
const (
	// MetricArbWait is the simulated time a master waited for the
	// arbiter before a grant, over waiting episodes (zero-wait grants
	// are not samples: both engines only report waits they measured,
	// and the interesting saturation signal is the wait when there is
	// one — queue depth carries the how-often).
	MetricArbWait = "perf.arb_wait_ns"
	// MetricTenure is per-transaction bus occupancy — how long a
	// granted master held the shard, including aborted attempts.
	MetricTenure = "perf.bus_tenure_ns"
	// MetricRetry is the BS abort/retry backoff paid by transactions
	// that suffered at least one abort.
	MetricRetry = "perf.retry_backoff_ns"
	// MetricMemSvc is the memory first-word service time of
	// memory-sourced transactions (cache-intervened reads excluded). In
	// split mode the service happens off-bus, reported by KindPend; the
	// metric covers both so atomic and split runs stay comparable.
	MetricMemSvc = "perf.mem_service_ns"
)

// DefaultTimelinePoints bounds the per-shard depth timeline kept for
// the /perf document; older points are dropped FIFO.
const DefaultTimelinePoints = 512

// DepthPoint is one sample of a shard's arbitration queue depth.
type DepthPoint struct {
	// TS is the simulated grant time the depth was sampled at.
	TS int64 `json:"ts"`
	// Depth is the number of masters queued on the shard's arbiter at
	// that moment, including the one just granted.
	Depth int64 `json:"depth"`
}

// QueueStats is the arbitration-queue digest of one fabric shard.
type QueueStats struct {
	// Bus is the shard's ObsID (events' Bus field).
	Bus int `json:"bus"`
	// Waits is the number of waiting episodes sampled.
	Waits int64 `json:"waits"`
	// Peak is the deepest queue observed.
	Peak int64 `json:"peak"`
	// Depth is the distribution of sampled depths.
	Depth obs.Summary `json:"depth"`
	// Timeline is a bounded trail of recent depth samples (cumulative
	// snapshots only; per-epoch snapshots omit it).
	Timeline []DepthPoint `json:"timeline,omitempty"`
}

// Snapshot is a point-in-time digest of the sink — the /perf document
// body and the Metrics.Perf payload.
type Snapshot struct {
	// Events is the number of events folded into this window.
	Events int64 `json:"events"`
	// Latency maps Metric* names to their quantile digests.
	Latency map[string]obs.Summary `json:"latency"`
	// Queue holds per-shard arbitration queue stats, ordered by Bus.
	Queue []QueueStats `json:"queue"`
	// Nacks counts split-mode NACKs (pending table full) in the window.
	Nacks int64 `json:"nacks,omitempty"`
	// WaitingBoards is the number of distinct boards that reported at
	// least one arbitration wait — the population the fairness index is
	// computed over.
	WaitingBoards int `json:"waiting_boards,omitempty"`
	// ArbFairness is the Jain fairness index (Σx)²/(n·Σx²) of per-board
	// cumulative arbitration wait: 1 when every waiting board waited
	// equally, approaching 1/n when one board absorbs all the waiting —
	// the starvation signature of priority arbitration under overload.
	// Zero when no board waited (index undefined).
	ArbFairness float64 `json:"arb_fairness,omitempty"`
}

// PeakQueueDepth returns the deepest arbitration queue across shards.
func (s *Snapshot) PeakQueueDepth() int64 {
	var peak int64
	for _, q := range s.Queue {
		if q.Peak > peak {
			peak = q.Peak
		}
	}
	return peak
}

// Render formats the snapshot for terminal output.
func (s *Snapshot) Render() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Latency))
	for n := range s.Latency {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-22s %s\n", n, s.Latency[n])
	}
	for _, q := range s.Queue {
		fmt.Fprintf(&b, "arb queue bus=%-3d waits=%d peak=%d p50=%d p99=%d\n",
			q.Bus, q.Waits, q.Peak, q.Depth.P50, q.Depth.P99)
	}
	if s.WaitingBoards > 0 {
		fmt.Fprintf(&b, "arb fairness %.3f over %d waiting boards\n", s.ArbFairness, s.WaitingBoards)
	}
	if s.Nacks > 0 {
		fmt.Fprintf(&b, "split nacks %d\n", s.Nacks)
	}
	return b.String()
}

// queueAccum accumulates one shard's depth samples in one window.
type queueAccum struct {
	depth    obs.Histogram
	peak     int64
	timeline []DepthPoint // FIFO ring, nil when the window keeps none
	tlHead   int
	tlFull   bool
}

func (q *queueAccum) observe(ts, depth int64, keepTimeline bool, cap int) {
	q.depth.Observe(depth)
	if depth > q.peak {
		q.peak = depth
	}
	if !keepTimeline {
		return
	}
	if q.timeline == nil {
		q.timeline = make([]DepthPoint, 0, cap)
	}
	p := DepthPoint{TS: ts, Depth: depth}
	if len(q.timeline) < cap {
		q.timeline = append(q.timeline, p)
		return
	}
	q.timeline[q.tlHead] = p
	q.tlHead = (q.tlHead + 1) % cap
	q.tlFull = true
}

func (q *queueAccum) trail() []DepthPoint {
	if q.timeline == nil {
		return nil
	}
	if !q.tlFull {
		return append([]DepthPoint(nil), q.timeline...)
	}
	out := make([]DepthPoint, 0, len(q.timeline))
	out = append(out, q.timeline[q.tlHead:]...)
	return append(out, q.timeline[:q.tlHead]...)
}

// accum is one accumulation window. The four latency histograms are
// fixed fields, not a map: Consume runs on the hot drain path for
// every transaction, and two map lookups per sample per window is
// measurable against the record-only baseline the benchmark gates.
type accum struct {
	events  int64
	arbWait obs.Histogram
	tenure  obs.Histogram
	retry   obs.Histogram
	memSvc  obs.Histogram
	queues  map[int]*queueAccum
	// boardWait is each board's cumulative arbitration wait — the
	// fairness-index input. Small dense population (one entry per
	// board), so a map is off the per-sample hot path concern.
	boardWait map[int]int64
	nacks     int64
}

func newAccum() *accum {
	return &accum{queues: make(map[int]*queueAccum), boardWait: make(map[int]int64)}
}

// jain computes the Jain fairness index over the per-board waits.
func jain(waits map[int]int64) (float64, int) {
	if len(waits) == 0 {
		return 0, 0
	}
	var sum, sumSq float64
	for _, w := range waits {
		v := float64(w)
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 0, 0
	}
	return sum * sum / (float64(len(waits)) * sumSq), len(waits)
}

func (a *accum) queue(bus int) *queueAccum {
	q, ok := a.queues[bus]
	if !ok {
		q = &queueAccum{}
		a.queues[bus] = q
	}
	return q
}

func (a *accum) snapshot(withTimeline bool) *Snapshot {
	s := &Snapshot{
		Events:  a.events,
		Latency: make(map[string]obs.Summary, 4),
	}
	for _, m := range []struct {
		name string
		h    *obs.Histogram
	}{
		{MetricArbWait, &a.arbWait},
		{MetricTenure, &a.tenure},
		{MetricRetry, &a.retry},
		{MetricMemSvc, &a.memSvc},
	} {
		if m.h.Count() > 0 {
			s.Latency[m.name] = m.h.Summary()
		}
	}
	s.Nacks = a.nacks
	s.ArbFairness, s.WaitingBoards = jain(a.boardWait)
	buses := make([]int, 0, len(a.queues))
	for bus := range a.queues {
		buses = append(buses, bus)
	}
	sort.Ints(buses)
	for _, bus := range buses {
		q := a.queues[bus]
		qs := QueueStats{
			Bus:   bus,
			Waits: q.depth.Count(),
			Peak:  q.peak,
			Depth: q.depth.Summary(),
		}
		if withTimeline {
			qs.Timeline = q.trail()
		}
		s.Queue = append(s.Queue, qs)
	}
	return s
}

// Sink folds the event stream into saturation telemetry. Consume runs
// on the Recorder's drain goroutine; Snapshot/EpochSnapshot may be
// called from any goroutine (a mutex separates them).
type Sink struct {
	mu    sync.Mutex
	cum   *accum
	epoch *accum
	// ends holds, per shard, the end times of wait intervals still
	// active at the last processed event — the reconstruction state the
	// depth samples come from. Sorted ascending (grant times are
	// monotone per shard).
	ends map[int][]int64
	// tlCap bounds the cumulative window's per-shard timeline.
	tlCap int
	// onDepth, when non-nil, receives every depth sample (the obshttp
	// wrapper forwards them to registry metrics). Drain goroutine only.
	onDepth func(bus int, depth int64)
	// onLatency, when non-nil, receives every latency sample.
	onLatency func(metric string, v int64)
}

// NewSink creates a sink keeping timelinePoints depth samples per shard
// in the cumulative window (0 = DefaultTimelinePoints).
func NewSink(timelinePoints int) *Sink {
	if timelinePoints <= 0 {
		timelinePoints = DefaultTimelinePoints
	}
	return &Sink{
		cum:   newAccum(),
		epoch: newAccum(),
		ends:  make(map[int][]int64),
		tlCap: timelinePoints,
	}
}

// SetObservers installs per-sample callbacks (registry export). Must be
// set before events flow.
func (s *Sink) SetObservers(onLatency func(metric string, v int64), onDepth func(bus int, depth int64)) {
	s.onLatency, s.onDepth = onLatency, onDepth
}

// Relevant reports whether the sink folds this event kind — callers
// batching upstream can skip the rest early.
func Relevant(k obs.Kind) bool {
	switch k {
	case obs.KindTx, obs.KindGrant, obs.KindBlocked, obs.KindEpoch,
		obs.KindPend, obs.KindNack:
		return true
	}
	return false
}

// Consume implements obs.Sink.
func (s *Sink) Consume(e *obs.Event) {
	if !Relevant(e.Kind) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cum.events++
	s.epoch.events++
	switch e.Kind {
	case obs.KindEpoch:
		// A fresh system was assembled on this stream: reset the
		// per-epoch window and forget wait intervals from the finished
		// system (its masters are gone; their waits must not deepen the
		// next system's queue).
		s.epoch = newAccum()
		for bus := range s.ends {
			s.ends[bus] = s.ends[bus][:0]
		}
	case obs.KindGrant, obs.KindBlocked:
		if e.Dur <= 0 {
			return
		}
		s.observe(MetricArbWait, &s.cum.arbWait, &s.epoch.arbWait, e.Dur)
		if e.Proc >= 0 {
			s.cum.boardWait[e.Proc] += e.Dur
			s.epoch.boardWait[e.Proc] += e.Dur
		}
		s.observeDepth(e.Bus, e.TS, e.Dur)
	case obs.KindPend:
		// Split-mode off-bus memory service (the first-word latency a
		// pending transaction spends in the table).
		if e.Dur > 0 {
			s.observe(MetricMemSvc, &s.cum.memSvc, &s.epoch.memSvc, e.Dur)
		}
	case obs.KindNack:
		s.cum.nacks++
		s.epoch.nacks++
	case obs.KindTx:
		s.observe(MetricTenure, &s.cum.tenure, &s.epoch.tenure, e.Dur)
		if e.RetryNS > 0 {
			s.observe(MetricRetry, &s.cum.retry, &s.epoch.retry, e.RetryNS)
		}
		if e.MemNS > 0 {
			s.observe(MetricMemSvc, &s.cum.memSvc, &s.epoch.memSvc, e.MemNS)
		}
	}
}

func (s *Sink) observe(metric string, cum, epoch *obs.Histogram, v int64) {
	cum.Observe(v)
	epoch.Observe(v)
	if s.onLatency != nil {
		s.onLatency(metric, v)
	}
}

// observeDepth folds one wait interval [ts-dur, ts] into the shard's
// queue reconstruction and samples the depth at its start.
func (s *Sink) observeDepth(bus int, ts, dur int64) {
	start := ts - dur
	ends := s.ends[bus]
	// Evict intervals that ended at or before this wait began; ends is
	// sorted, so the survivors are a suffix.
	keep := sort.Search(len(ends), func(i int) bool { return ends[i] > start })
	if keep > 0 {
		ends = append(ends[:0], ends[keep:]...)
	}
	depth := int64(len(ends)) + 1 // the overlapping waiters plus this one
	// Grant times are monotone per shard, so appending keeps the slice
	// sorted.
	s.ends[bus] = append(ends, ts)
	s.cum.queue(bus).observe(ts, depth, true, s.tlCap)
	s.epoch.queue(bus).observe(ts, depth, false, 0)
	if s.onDepth != nil {
		s.onDepth(bus, depth)
	}
}

// Flush implements obs.Sink (the sink is pull-only).
func (s *Sink) Flush() error { return nil }

// Snapshot digests everything observed since the sink was created,
// including the per-shard depth timelines.
func (s *Sink) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cum.snapshot(true)
}

// EpochSnapshot digests the window since the last KindEpoch marker —
// the current system's telemetry when one recorder spans a sweep.
func (s *Sink) EpochSnapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch.snapshot(false)
}

// FindSink returns the first perf.Sink attached to r directly, or
// through any sink exposing it via a PerfSink() *Sink method (the
// obshttp wrapper does), or nil.
func FindSink(r *obs.Recorder) *Sink {
	for _, s := range r.Sinks() {
		switch v := s.(type) {
		case *Sink:
			return v
		case interface{ PerfSink() *Sink }:
			return v.PerfSink()
		}
	}
	return nil
}
