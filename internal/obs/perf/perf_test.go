package perf

import (
	"testing"

	"futurebus/internal/obs"
)

func grant(bus int, ts, dur int64) *obs.Event {
	return &obs.Event{Kind: obs.KindGrant, Bus: bus, TS: ts, Dur: dur}
}

// The queue reconstruction derives depth from wait-interval overlap:
// the depth at a grant is the number of earlier waits still unfinished
// when this wait began, plus the new waiter itself.
func TestQueueDepthReconstruction(t *testing.T) {
	s := NewSink(0)
	// Three overlapping waits on bus 0: [0,100], [50,150], [120,200] —
	// depths 1 (nothing before), 2 (overlaps the first), 2 (the first
	// ended at 100 ≤ 120, the second is still live).
	s.Consume(grant(0, 100, 100))
	s.Consume(grant(0, 150, 100))
	s.Consume(grant(0, 200, 80))
	// A disjoint wait on bus 1 must not see bus 0's queue.
	s.Consume(grant(1, 500, 10))

	snap := s.Snapshot()
	if len(snap.Queue) != 2 {
		t.Fatalf("queue shards = %d, want 2", len(snap.Queue))
	}
	q0 := snap.Queue[0]
	if q0.Bus != 0 || q0.Waits != 3 || q0.Peak != 2 {
		t.Errorf("bus 0: got bus=%d waits=%d peak=%d, want 0/3/2", q0.Bus, q0.Waits, q0.Peak)
	}
	wantDepths := []int64{1, 2, 2}
	if len(q0.Timeline) != len(wantDepths) {
		t.Fatalf("timeline = %v", q0.Timeline)
	}
	for i, p := range q0.Timeline {
		if p.Depth != wantDepths[i] {
			t.Errorf("timeline[%d].Depth = %d, want %d (%v)", i, p.Depth, wantDepths[i], q0.Timeline)
		}
	}
	q1 := snap.Queue[1]
	if q1.Bus != 1 || q1.Peak != 1 {
		t.Errorf("bus 1: got bus=%d peak=%d, want 1/1", q1.Bus, q1.Peak)
	}
}

// Zero-duration grants are not waiting episodes; they must not pollute
// the wait distribution or the queue reconstruction.
func TestZeroWaitIgnored(t *testing.T) {
	s := NewSink(0)
	s.Consume(grant(0, 100, 0))
	snap := s.Snapshot()
	if snap.Latency[MetricArbWait].Count != 0 || len(snap.Queue) != 0 {
		t.Errorf("zero-dur grant observed: %+v", snap)
	}
}

// KindBlocked (the deterministic engine's wait shape) feeds the same
// distribution as KindGrant, so both engines report symmetric waits.
func TestBlockedCountsAsWait(t *testing.T) {
	s := NewSink(0)
	s.Consume(&obs.Event{Kind: obs.KindBlocked, Bus: 0, TS: 100, Dur: 40})
	snap := s.Snapshot()
	if snap.Latency[MetricArbWait].Count != 1 {
		t.Errorf("blocked event not folded into arb wait: %+v", snap.Latency)
	}
}

func TestLatencyMetricsFromTx(t *testing.T) {
	s := NewSink(0)
	s.Consume(&obs.Event{Kind: obs.KindTx, Bus: 0, TS: 1000, Dur: 300, RetryNS: 50, MemNS: 120})
	s.Consume(&obs.Event{Kind: obs.KindTx, Bus: 0, TS: 2000, Dur: 200})
	snap := s.Snapshot()
	if got := snap.Latency[MetricTenure].Count; got != 2 {
		t.Errorf("tenure count = %d, want 2", got)
	}
	// Retry and memory-service are conditional: only real samples count.
	if got := snap.Latency[MetricRetry].Count; got != 1 {
		t.Errorf("retry count = %d, want 1", got)
	}
	if got := snap.Latency[MetricMemSvc].Count; got != 1 {
		t.Errorf("memsvc count = %d, want 1", got)
	}
	if snap.Events != 2 {
		t.Errorf("events = %d, want 2", snap.Events)
	}
}

// KindEpoch resets the per-epoch window and the wait-interval state,
// but never the cumulative window — a sweep sharing one recorder gets
// per-system quantiles from EpochSnapshot and whole-sweep data from
// Snapshot.
func TestEpochReset(t *testing.T) {
	s := NewSink(0)
	s.Consume(grant(0, 100, 100))
	s.Consume(&obs.Event{Kind: obs.KindTx, Bus: 0, TS: 150, Dur: 50})
	s.Consume(&obs.Event{Kind: obs.KindEpoch})
	if got := s.EpochSnapshot(); len(got.Latency) != 0 || len(got.Queue) != 0 {
		t.Errorf("epoch window not reset: %+v", got)
	}
	// A wait in the new epoch must not stack on the previous system's
	// intervals even if the timestamps overlap.
	s.Consume(grant(0, 150, 100))
	ep := s.EpochSnapshot()
	if len(ep.Queue) != 1 || ep.Queue[0].Peak != 1 {
		t.Errorf("stale intervals leaked across epoch: %+v", ep.Queue)
	}
	cum := s.Snapshot()
	if got := cum.Latency[MetricArbWait].Count; got != 2 {
		t.Errorf("cumulative lost samples across epoch: count = %d, want 2", got)
	}
}

func TestTimelineBounded(t *testing.T) {
	s := NewSink(4)
	for i := int64(0); i < 10; i++ {
		s.Consume(grant(0, i*1000, 1))
	}
	tl := s.Snapshot().Queue[0].Timeline
	if len(tl) != 4 {
		t.Fatalf("timeline length = %d, want 4", len(tl))
	}
	// FIFO: the survivors are the most recent four, oldest first.
	if tl[0].TS != 6000 || tl[3].TS != 9000 {
		t.Errorf("timeline not the most recent window: %v", tl)
	}
}

func TestPeakQueueDepthAcrossShards(t *testing.T) {
	s := NewSink(0)
	s.Consume(grant(0, 100, 100))
	s.Consume(grant(1, 100, 100))
	s.Consume(grant(1, 150, 100))
	if got := s.Snapshot().PeakQueueDepth(); got != 2 {
		t.Errorf("peak across shards = %d, want 2", got)
	}
}

func TestFindSinkDirect(t *testing.T) {
	sink := NewSink(0)
	rec := obs.New(sink)
	defer rec.Close()
	if FindSink(rec) != sink {
		t.Error("FindSink failed to find a directly attached sink")
	}
}

func TestObservers(t *testing.T) {
	s := NewSink(0)
	var lat, dep int
	s.SetObservers(
		func(string, int64) { lat++ },
		func(int, int64) { dep++ },
	)
	s.Consume(grant(0, 100, 100))
	s.Consume(&obs.Event{Kind: obs.KindTx, Bus: 0, TS: 150, Dur: 50, MemNS: 10})
	if lat != 3 { // arb wait + tenure + memsvc
		t.Errorf("latency callbacks = %d, want 3", lat)
	}
	if dep != 1 {
		t.Errorf("depth callbacks = %d, want 1", dep)
	}
}

// The Jain fairness index over per-board arbitration waits: 1.0 when
// every board waits equally, 1/n when one board absorbs all the wait.
func TestArbFairnessIndex(t *testing.T) {
	s := NewSink(0)
	// Two boards, equal waits → index 1.
	s.Consume(&obs.Event{Kind: obs.KindGrant, Bus: 0, Proc: 0, TS: 100, Dur: 50})
	s.Consume(&obs.Event{Kind: obs.KindGrant, Bus: 0, Proc: 1, TS: 200, Dur: 50})
	snap := s.Snapshot()
	if snap.WaitingBoards != 2 || snap.ArbFairness < 0.999 {
		t.Fatalf("equal waits: boards=%d fairness=%.3f, want 2/1.0",
			snap.WaitingBoards, snap.ArbFairness)
	}
	// Board 2 starves: its wait dwarfs the others, the index collapses
	// toward 1/n.
	s.Consume(&obs.Event{Kind: obs.KindBlocked, Bus: 0, Proc: 2, TS: 300, Dur: 1e6})
	snap = s.Snapshot()
	if snap.WaitingBoards != 3 || snap.ArbFairness > 0.5 {
		t.Fatalf("starved board: boards=%d fairness=%.3f, want 3/<0.5",
			snap.WaitingBoards, snap.ArbFairness)
	}
}

// No waits → the index is undefined and reported as 0 with no boards,
// not NaN.
func TestArbFairnessUndefinedWithoutWaits(t *testing.T) {
	s := NewSink(0)
	s.Consume(&obs.Event{Kind: obs.KindTx, Bus: 0, TS: 100, Dur: 10})
	snap := s.Snapshot()
	if snap.WaitingBoards != 0 || snap.ArbFairness != 0 {
		t.Fatalf("got boards=%d fairness=%v, want 0/0", snap.WaitingBoards, snap.ArbFairness)
	}
}

// Split-mode events: KindNack increments the window's NACK counter and
// KindPend's duration folds into the memory-service distribution, both
// respecting the epoch reset.
func TestSplitEventsFolded(t *testing.T) {
	s := NewSink(0)
	if !Relevant(obs.KindNack) || !Relevant(obs.KindPend) {
		t.Fatal("split kinds not relevant to the perf sink")
	}
	s.Consume(&obs.Event{Kind: obs.KindNack, Bus: 0, TS: 100})
	s.Consume(&obs.Event{Kind: obs.KindPend, Bus: 0, TS: 150, Dur: 400})
	snap := s.Snapshot()
	if snap.Nacks != 1 {
		t.Errorf("nacks = %d, want 1", snap.Nacks)
	}
	if got := snap.Latency[MetricMemSvc].Count; got != 1 {
		t.Errorf("pend not folded into mem service: count = %d, want 1", got)
	}
	s.Consume(&obs.Event{Kind: obs.KindEpoch})
	if ep := s.EpochSnapshot(); ep.Nacks != 0 {
		t.Errorf("epoch nacks not reset: %d", ep.Nacks)
	}
	if cum := s.Snapshot(); cum.Nacks != 1 {
		t.Errorf("cumulative nacks lost on epoch: %d", cum.Nacks)
	}
}
