package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ChromeTraceSink exports the event stream in the Chrome trace-event
// JSON format (the "JSON Object Format" with a traceEvents array),
// which Perfetto and chrome://tracing open directly. Layout: one
// process per bus segment, with thread 0 as the bus's transaction
// track and one thread per board; memory gets its own process. Bus
// transactions and stalls are complete ("X") slices, everything else
// instant ("i") events on the responsible board's track.
//
// Events are buffered and written on Flush, sorted by (ts, seq) so the
// output is stable for a deterministic run regardless of drain timing.
type ChromeTraceSink struct {
	w       io.Writer
	events  []Event
	written bool
}

// NewChromeTraceSink creates a sink writing to w on Flush.
func NewChromeTraceSink(w io.Writer) *ChromeTraceSink {
	return &ChromeTraceSink{w: w}
}

// Consume implements Sink.
func (s *ChromeTraceSink) Consume(e *Event) { s.events = append(s.events, *e) }

// traceEvent is one entry of the traceEvents array.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// Track ids within a bus process: thread 0 is the bus itself, thread
// i+1 is board i. Memory events go to their own process.
const (
	busTrack   = 0
	memoryPID  = 9999
	memoryTID  = 0
	defaultPID = 0
)

func us(ns int64) float64 { return float64(ns) / 1e3 }

func (s *ChromeTraceSink) convert(e *Event) (traceEvent, bool) {
	pid := e.Bus
	if pid < 0 {
		pid = defaultPID
	}
	tid := busTrack
	if e.Proc >= 0 {
		tid = e.Proc + 1
	}
	te := traceEvent{TS: us(e.TS), PID: pid, TID: tid}
	addr := fmt.Sprintf("%#x", e.Addr)
	switch e.Kind {
	case KindTx:
		te.Ph = "X"
		te.TID = busTrack // the bus track owns transaction slices
		te.Dur = us(e.Dur)
		te.Name = fmt.Sprintf("col%d %s %s", e.Col, e.Op, addr)
		te.Args = map[string]any{
			"master": e.Proc, "addr": addr, "col": e.Col,
			"ch": e.CH, "di": e.DI, "sl": e.SL,
			"retries": e.Retries, "cost_ns": e.Dur, "bytes": e.Bytes,
		}
	case KindStall:
		te.Ph = "X"
		te.Dur = us(e.Dur)
		te.Name = "stall " + addr
		te.Args = map[string]any{"addr": addr, "stall_ns": e.Dur}
	case KindBlocked:
		te.Ph = "X"
		te.Dur = us(e.Dur)
		te.Name = "blocked " + addr
		te.Args = map[string]any{"addr": addr, "blocked_ns": e.Dur, "behind_tx": e.CauseID}
	case KindState:
		te.Ph = "i"
		te.S = "t"
		te.Name = fmt.Sprintf("%s→%s %s (%s)", e.From, e.To, addr, e.Cause)
		te.Args = map[string]any{"addr": addr, "from": e.From, "to": e.To, "cause": e.Cause}
	case KindAbort, KindRecover, KindIntervene, KindUpdate, KindCapture, KindEvict, KindGrant:
		te.Ph = "i"
		te.S = "t"
		te.Name = string(e.Kind) + " " + addr
		te.Args = map[string]any{"addr": addr}
	case KindMemRead, KindMemWrite:
		te.Ph = "i"
		te.S = "t"
		te.PID = memoryPID
		te.TID = memoryTID
		te.Name = string(e.Kind) + " " + addr
		te.Args = map[string]any{"addr": addr}
	default:
		return traceEvent{}, false
	}
	return te, true
}

// Flush writes the complete trace JSON. The format is a single
// document, so only the first Flush writes; later calls are no-ops
// (use Recorder.Drain, not Flush, to read other sinks mid-run).
func (s *ChromeTraceSink) Flush() error {
	if s.written {
		return nil
	}
	s.written = true
	sort.SliceStable(s.events, func(i, j int) bool {
		if s.events[i].TS != s.events[j].TS {
			return s.events[i].TS < s.events[j].TS
		}
		return s.events[i].Seq < s.events[j].Seq
	})

	type track struct{ pid, tid int }
	seen := make(map[track]bool)
	var meta, out []traceEvent
	addMeta := func(pid, tid int, name string) {
		if seen[track{pid, tid}] {
			return
		}
		seen[track{pid, tid}] = true
		meta = append(meta, traceEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": name},
		})
	}
	for i := range s.events {
		e := &s.events[i]
		te, ok := s.convert(e)
		if !ok {
			continue
		}
		switch {
		case te.PID == memoryPID:
			addMeta(te.PID, te.TID, "memory")
		case te.TID == busTrack:
			addMeta(te.PID, te.TID, fmt.Sprintf("bus %d", te.PID))
		default:
			addMeta(te.PID, te.TID, fmt.Sprintf("board %d", te.TID-1))
		}
		out = append(out, te)
	}
	sort.SliceStable(meta, func(i, j int) bool {
		if meta[i].PID != meta[j].PID {
			return meta[i].PID < meta[j].PID
		}
		return meta[i].TID < meta[j].TID
	})

	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: append(meta, out...), DisplayTimeUnit: "ns"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []traceEvent{}
	}
	enc := json.NewEncoder(s.w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
