package obs

import (
	"fmt"
	"io"
)

// WarnDropped writes a warning to w when the recorder discarded events
// (events emitted after Close — some instrumentation site outlived the
// recorder). Any file sinks attached to the recorder are missing those
// events, so recorded .fbt / JSONL traces are silently truncated and
// downstream analyses (fbcausal, fblens, fbwatch) see an incomplete
// stream. Returns whether a warning was written. Call after
// Recorder.Close; a nil recorder is fine (no warning).
func WarnDropped(w io.Writer, tool string, rec *Recorder) bool {
	if rec == nil {
		return false
	}
	dropped := rec.Dropped()
	if dropped == 0 {
		return false
	}
	fmt.Fprintf(w, "%s: warning: %d events were dropped after the recorder closed — recorded traces are truncated and analyses over them are incomplete\n",
		tool, dropped)
	return true
}
