package watch

import "futurebus/internal/core"

// Legality tables derived from the class definition — Tables 1–2 with
// the relaxations of notes 9–12 plus the §4 adapted actions — reduced
// to the question the event stream can answer: for the cause a cache
// attached to a KindState event, which result states may a copy in the
// given state legally reach? Masks are bitsets indexed by core.State.
// A CH-conditional cell contributes its CH branch to `on` and its no-CH
// branch to `no`; unconditional cells contribute to both, so resolving
// with known CH is strictly tighter than the union.
//
// The tables are intentionally protocol-agnostic: every registered
// protocol is a validated class member (see core.Validate and the
// protocols tests), so deriving legality from the class itself accepts
// all of them — including write-through and non-caching variants — while
// still rejecting transitions no member may perform.

type chMask struct{ on, no uint8 }

func (m chMask) union() uint8 { return m.on | m.no }

// resolve returns the legal-next mask given CH knowledge: known true,
// known false, or unknown (the union of both branches).
func (m chMask) resolve(ch, known bool) uint8 {
	if !known {
		return m.union()
	}
	if ch {
		return m.on
	}
	return m.no
}

func bit(s core.State) uint8 { return 1 << uint8(s) }

func has(mask uint8, s core.State) bool { return mask&bit(s) != 0 }

// letters renders a mask as state letters in the paper's M,O,E,S,I
// order for violation messages ("-" for the empty set).
func letters(mask uint8) string {
	if mask == 0 {
		return "-"
	}
	var b []byte
	for _, s := range core.States {
		if has(mask, s) {
			b = append(b, s.Letter()[0])
		}
	}
	return string(b)
}

var (
	// snoopNext[busEvent][state] unions both CH branches: a snooper
	// resolves its conditional cells on *other*-cache CH, which the
	// event stream does not expose per snooper.
	snoopNext [len(core.BusEvents)][len(core.States)]uint8
	// fillCol5 / fillCol6 are what a miss may install, keyed by the
	// Table 2 column the fill transaction presented (column 5 = read
	// miss, column 6 = read-for-ownership), CH-resolvable.
	fillCol5, fillCol6 chMask
	// upgradeNext[state]: bus-announced local writes (W or address-only
	// invalidate), including the §4 adapted actions.
	upgradeNext [len(core.States)]chMask
	// silentWrite[state]: local writes with no bus transaction.
	silentWrite [len(core.States)]uint8
	// readHitNext[state]: silent local reads (identity in every class
	// cell, so an emitted read-hit transition is always illegal).
	readHitNext [len(core.States)]uint8
	// pushNext[state]: Pass or Flush by the local replacement logic
	// (the cache substrate's "push" cause covers both).
	pushNext [len(core.States)]uint8
	// evictBus / evictSilent split Flush by bus use: a dirty eviction
	// must write back ("evict"), a clean one must not ("evict-clean").
	evictBus, evictSilent [len(core.States)]uint8
)

func init() {
	for _, s := range core.States {
		si := int(s)
		for _, e := range core.BusEvents {
			for _, ent := range core.SnoopClass(s, e) {
				if ent.Action.Abort != nil {
					continue // BS aborts surface as "bs-recovery", not a snoop commit
				}
				n := ent.Action.Next
				snoopNext[int(e)][si] |= bit(n.OnCH) | bit(n.NoCH)
			}
		}

		writes := make([]core.LocalAction, 0, 8)
		for _, ent := range core.LocalClass(s, core.LocalWrite) {
			writes = append(writes, ent.Action)
		}
		writes = append(writes, core.AdaptedLocalChoices(s, core.LocalWrite)...)
		for _, a := range writes {
			switch a.Op {
			case core.BusNone:
				silentWrite[si] |= bit(a.Next.OnCH) | bit(a.Next.NoCH)
			case core.BusWrite, core.BusAddrOnly:
				upgradeNext[si].on |= bit(a.Next.OnCH)
				upgradeNext[si].no |= bit(a.Next.NoCH)
			}
			// BusRead and BusReadThenWrite reach the bus as fills of the
			// Invalid state and are covered by the fill masks below.
		}

		for _, ent := range core.LocalClass(s, core.LocalRead) {
			if ent.Action.Op == core.BusNone {
				readHitNext[si] |= bit(ent.Action.Next.OnCH) | bit(ent.Action.Next.NoCH)
			}
		}

		for _, ev := range []core.LocalEvent{core.Pass, core.Flush} {
			for _, ent := range core.LocalClass(s, ev) {
				a := ent.Action
				m := bit(a.Next.OnCH) | bit(a.Next.NoCH)
				pushNext[si] |= m
				if ev == core.Flush {
					if a.NeedsBus() {
						evictBus[si] |= m
					} else {
						evictSilent[si] |= m
					}
				}
			}
		}
	}

	// Fill masks: every bus-read miss action, split by whether it
	// asserts IM (column 6) or not (column 5). "Read>Write" realises its
	// read through the protocol's read-miss action, so it needs no entry
	// of its own.
	addFill := func(a core.LocalAction) {
		if a.Op != core.BusRead {
			return
		}
		m := &fillCol5
		if a.Assert.Has(core.SigIM) {
			m = &fillCol6
		}
		m.on |= bit(a.Next.OnCH)
		m.no |= bit(a.Next.NoCH)
	}
	for _, ent := range core.LocalClass(core.Invalid, core.LocalRead) {
		addFill(ent.Action)
	}
	for _, ent := range core.LocalClass(core.Invalid, core.LocalWrite) {
		addFill(ent.Action)
	}
}
