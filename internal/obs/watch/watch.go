// Package watch is the runtime invariant monitor: an online
// runtime-verification sink that folds the obs event stream into a
// shadow per-line state machine and checks, as events arrive, the
// paper's §3.1 consistency invariants plus Table 1–2 action legality.
//
// Exhaustive checking (internal/verify) only scales to tiny
// configurations; the end-of-run checker (internal/check) only sees the
// final state. The monitor is the complement: it certifies *executions*
// — live runs, sharded fabrics, or replayed .fbt traces — event by
// event, and when an invariant breaks it emits a structured Violation
// carrying the line, the blamed transaction, the shadow state around
// the transition and a bounded ring of the last events that touched the
// line as causal context.
//
// The monitor relies on the recorder's ordering guarantees: per line,
// snoop-caused state commits precede their KindTx, and the master's own
// fill/upgrade/push state events follow it. It is a single-goroutine
// consumer like coherence.Analyzer; obshttp.WatchSink adapts it for
// concurrent snapshotting.
package watch

import (
	"fmt"
	"sort"
	"strings"

	"futurebus/internal/core"
	"futurebus/internal/obs"
)

// Invariant names one checked property. The names are stable: they are
// metric label values, fbwatch output, and CI grep targets.
type Invariant string

const (
	// InvSingleOwner — §3.1.3: at most one cache may own (M or O) a
	// line; ownership is the responsibility for the line's accuracy.
	InvSingleOwner Invariant = "single-owner"
	// InvExclusivity — §3.1.2: a copy in an exclusive state (M or E)
	// must really be the only cached copy; readers may only coexist
	// with a shareable owner (O) or with each other.
	InvExclusivity Invariant = "real-exclusivity"
	// InvMemoryOwner — §3.1.4: main memory is the default owner, valid
	// exactly when no cache owns the line. Operationally: a read must be
	// served by intervention (DI) iff some other cache owned the line
	// when the transaction started, and a plain write (column 9) must be
	// captured by such an owner.
	InvMemoryOwner Invariant = "memory-valid-iff-no-owner"
	// InvLegalLocal — Table 1 (notes 9–12, §4 adaptations): a
	// processor-side transition outside every permitted local action.
	InvLegalLocal Invariant = "legal-local-action"
	// InvLegalSnoop — Table 2 (notes 9 and 11): a snoop-side transition
	// outside every permitted snoop action for its column.
	InvLegalSnoop Invariant = "legal-snoop-action"
	// InvShadow — trace integrity: a state event whose From does not
	// match the shadow's recorded state for that copy, meaning the
	// stream skipped a transition (truncated or corrupted trace).
	InvShadow Invariant = "shadow-divergence"
	// InvPendingTx — split-mode pending-table legality: every data
	// tenure (KindData) must retire a transaction that actually entered
	// the pending table (KindPend) and is still outstanding, and no
	// transaction may enter the table twice. An interleaving that
	// breaks the pairing means the split bookkeeping double-granted or
	// fabricated a response.
	InvPendingTx Invariant = "split-pending-tx"
	// InvProgress — forward progress: a transaction exhausted its BS
	// retry budget (KindRetryExhausted) — the protocol wedged instead of
	// quiescing.
	InvProgress Invariant = "forward-progress"
)

// Invariants lists every invariant in reporting order.
var Invariants = []Invariant{
	InvSingleOwner, InvExclusivity, InvMemoryOwner,
	InvLegalLocal, InvLegalSnoop, InvShadow,
	InvPendingTx, InvProgress,
}

// Config bounds the monitor's memory.
type Config struct {
	// MaxLines caps tracked (bus, line) shadows; extra lines are
	// counted, not checked. 0 = DefaultMaxLines.
	MaxLines int
	// ContextDepth is the per-line ring of recent events attached to a
	// Violation as causal context. 0 = DefaultContextDepth.
	ContextDepth int
	// MaxViolations caps *stored* Violation records (counters keep
	// counting past it). 0 = DefaultMaxViolations.
	MaxViolations int
}

// Defaults for Config zero values.
const (
	DefaultMaxLines      = 1 << 16
	DefaultContextDepth  = 8
	DefaultMaxViolations = 64

	// maxPending bounds the txid→address-cycle map that lets fill
	// legality resolve CH-conditional cells exactly.
	maxPending = 1 << 12
)

// Violation is one detected invariant breach.
type Violation struct {
	// N is the 1-based detection order across the run.
	N int64 `json:"n"`
	// Invariant names the breached property.
	Invariant Invariant `json:"invariant"`
	// TS is the simulated time of the triggering event.
	TS int64 `json:"ts"`
	// Bus and Addr key the line; Proc is the acting copy's board (the
	// master of the transaction for transaction-level checks).
	Bus  int    `json:"bus"`
	Proc int    `json:"proc"`
	Addr uint64 `json:"addr"`
	// Proto is the governing protocol of the blamed copy (best effort
	// for transaction-level checks, where the event carries none).
	Proto string `json:"proto,omitempty"`
	// TxID blames the causing bus transaction (0 = a silent local
	// transition).
	TxID uint64 `json:"txid,omitempty"`
	// Cause is the triggering state event's cause, if any.
	Cause string `json:"cause,omitempty"`
	// From and To are the shadow state of the acting copy before and
	// after the triggering transition (empty for transaction checks).
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Holders is the per-board shadow after the event ("0:M 2:S").
	Holders string `json:"holders,omitempty"`
	// Detail explains the breach in terms of the paper's rules.
	Detail string `json:"detail"`
	// Context is the bounded ring of the last events touching the line,
	// oldest first, ending with the triggering event.
	Context []obs.Event `json:"context,omitempty"`
}

func (v *Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: line %#x (bus %d) proc %d", v.Invariant, v.Addr, v.Bus, v.Proc)
	if v.From != "" || v.To != "" {
		fmt.Fprintf(&b, " %s→%s", v.From, v.To)
	}
	if v.Cause != "" {
		fmt.Fprintf(&b, " (%s)", v.Cause)
	}
	if v.Proto != "" {
		fmt.Fprintf(&b, " [%s]", v.Proto)
	}
	if v.TxID != 0 {
		fmt.Fprintf(&b, " tx %d", v.TxID)
	}
	fmt.Fprintf(&b, ": %s", v.Detail)
	if v.Holders != "" {
		fmt.Fprintf(&b, " (holders:%s)", v.Holders)
	}
	return b.String()
}

// Count is one (invariant, protocol) violation counter.
type Count struct {
	Invariant Invariant `json:"invariant"`
	Proto     string    `json:"proto"`
	N         int64     `json:"n"`
}

// Report is a snapshot of the monitor for /violations and fbwatch.
type Report struct {
	// Events is every event consumed; States and Txs count the checked
	// kinds.
	Events int64 `json:"events"`
	States int64 `json:"states"`
	Txs    int64 `json:"txs"`
	// Lines is the number of tracked line shadows; TruncatedEvents
	// counts events skipped because MaxLines was hit.
	Lines           int   `json:"lines"`
	TruncatedEvents int64 `json:"truncated_events,omitempty"`
	// Total counts every violation; ByInvariant and Counts break it
	// down. First and Violations are bounded records.
	Total       int64               `json:"total"`
	ByInvariant map[Invariant]int64 `json:"by_invariant,omitempty"`
	Counts      []Count             `json:"counts,omitempty"`
	First       *Violation          `json:"first,omitempty"`
	Violations  []Violation         `json:"violations,omitempty"`
}

type lineKey struct {
	bus  int
	addr uint64
}

type countKey struct {
	inv   Invariant
	proto string
}

type txInfo struct {
	col int
	ch  bool
}

// pendEntry is one slot of the direct-mapped pending-transaction
// cache (txid 0 = empty). A newer transaction that collides simply
// evicts the older slot — the same bounded-memory behaviour as a FIFO
// over a map, without map traffic on the monitor's hottest path.
type pendEntry struct {
	txid uint64
	col  int16
	ch   bool
}

// line is the shadow of one (bus, address) pair: every board's copy
// state, derived counts, the per-transaction owner snapshot, and the
// causal-context ring.
type line struct {
	states              []int8 // per proc; -1 = never seen (treated as I)
	owners, excl, valid int
	// txSnap / ownersAtSnap / ownerAtSnap capture the owner situation
	// when the first event of a transaction touched this line — i.e.
	// before its snoop commits applied — which is what the DI rule of
	// §3.1.4 is stated against.
	txSnap       uint64
	ownersAtSnap int
	ownerAtSnap  int
	ring         []obs.Event
	ringPos      int
	ringFull     bool
}

func (ln *line) stateOf(proc int) int8 {
	if proc < 0 || proc >= len(ln.states) {
		return -1
	}
	return ln.states[proc]
}

func (ln *line) setState(proc int, s core.State) {
	for len(ln.states) <= proc {
		ln.states = append(ln.states, -1)
	}
	old := ln.states[proc]
	if old >= 0 {
		ln.account(core.State(old), -1)
	}
	ln.states[proc] = int8(s)
	ln.account(s, +1)
}

func (ln *line) account(s core.State, d int) {
	if s.Valid() {
		ln.valid += d
	}
	if s.OwnedCopy() {
		ln.owners += d
	}
	if s.ExclusiveCopy() {
		ln.excl += d
	}
}

func (ln *line) snapshot(txid uint64) {
	if ln.txSnap == txid {
		return
	}
	ln.txSnap = txid
	ln.ownersAtSnap = ln.owners
	ln.ownerAtSnap = -1
	if ln.owners > 0 {
		for p, s := range ln.states {
			if s >= 0 && core.State(s).OwnedCopy() {
				ln.ownerAtSnap = p
				break
			}
		}
	}
}

// foreignOwner reports whether, at the transaction snapshot, some cache
// other than master owned the line.
func (ln *line) foreignOwner(master int) bool {
	return ln.ownersAtSnap > 1 || (ln.ownersAtSnap == 1 && ln.ownerAtSnap != master)
}

func (ln *line) remember(e *obs.Event, depth int) {
	if depth <= 0 {
		return
	}
	if ln.ring == nil {
		ln.ring = make([]obs.Event, 0, depth)
	}
	if len(ln.ring) < depth {
		ln.ring = append(ln.ring, *e)
		return
	}
	ln.ring[ln.ringPos] = *e
	ln.ringPos = (ln.ringPos + 1) % depth
	ln.ringFull = true
}

// context returns the remembered events oldest-first.
func (ln *line) context() []obs.Event {
	if len(ln.ring) == 0 {
		return nil
	}
	out := make([]obs.Event, 0, len(ln.ring))
	if ln.ringFull {
		out = append(out, ln.ring[ln.ringPos:]...)
		out = append(out, ln.ring[:ln.ringPos]...)
	} else {
		out = append(out, ln.ring...)
	}
	return out
}

func (ln *line) holders() string {
	var b strings.Builder
	for p, s := range ln.states {
		if s > 0 { // valid copies only (Invalid = 0)
			fmt.Fprintf(&b, " %d:%s", p, core.State(s).Letter())
		}
	}
	return b.String()
}

// Monitor is the runtime-verification sink. It implements obs.Sink and
// must be consumed from a single goroutine (the Recorder's drainer, or
// a replay loop); wrap it in obshttp.WatchSink for concurrent readers.
type Monitor struct {
	cfg Config

	lines    map[lineKey]*line
	lastKey  lineKey
	lastLine *line

	pending []pendEntry // direct-mapped by txid & (maxPending-1)

	// splitPend tracks split-mode transactions currently in a pending
	// table (KindPend seen, KindData not yet), bounded at maxPending.
	// splitDropped flags that the bound evicted entries, so an unknown
	// txid on KindData is excused rather than misreported.
	splitPend    map[uint64]struct{}
	splitDropped bool

	procProto []string // indexed by proc; "" = unknown

	events, states, txs, truncated int64

	total      int64
	counts     map[countKey]int64
	first      *Violation
	violations []Violation
}

// New builds a monitor; zero Config fields take the defaults.
func New(cfg Config) *Monitor {
	if cfg.MaxLines <= 0 {
		cfg.MaxLines = DefaultMaxLines
	}
	if cfg.ContextDepth <= 0 {
		cfg.ContextDepth = DefaultContextDepth
	}
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = DefaultMaxViolations
	}
	return &Monitor{
		cfg:     cfg,
		lines:   make(map[lineKey]*line),
		pending: make([]pendEntry, maxPending),
		counts:  make(map[countKey]int64),
	}
}

// Consume implements obs.Sink.
func (m *Monitor) Consume(e *obs.Event) {
	m.events++
	switch e.Kind {
	case obs.KindState:
		m.consumeState(e)
	case obs.KindTx:
		m.consumeTx(e)
	case obs.KindEpoch:
		m.reset()
	case obs.KindPend:
		m.consumePend(e)
	case obs.KindData:
		m.consumeData(e)
	case obs.KindRetryExhausted:
		ln := m.lookup(e.Bus, e.Addr, true)
		if ln == nil {
			m.truncated++
			return
		}
		ln.remember(e, m.cfg.ContextDepth)
		m.report(InvProgress, e, ln, fmt.Sprintf(
			"transaction gave up after %d BS aborts (ErrTooManyRetries) — recovery pushes never quiesced the line",
			e.Retries))
	case obs.KindNack, obs.KindAbort, obs.KindRecover, obs.KindCapture:
		// Rare recovery-path events are kept as violation context. The
		// chatty per-cycle kinds (blocked/update/intervene/evict) are
		// deliberately not remembered: they restate information already
		// carried by the surrounding state and tx events, and together
		// they are over a third of the stream — dropping them keeps the
		// monitor's share of a single-core run inside the overhead budget.
		if ln := m.lookup(e.Bus, e.Addr, false); ln != nil {
			ln.remember(e, m.cfg.ContextDepth)
		}
	}
}

// Flush implements obs.Sink.
func (m *Monitor) Flush() error { return nil }

// consumePend admits a split transaction into the shadow pending set;
// a duplicate admission means the bus split one address tenure into
// two pending entries.
func (m *Monitor) consumePend(e *obs.Event) {
	ln := m.lookup(e.Bus, e.Addr, true)
	if ln == nil {
		m.truncated++
		return
	}
	ln.remember(e, m.cfg.ContextDepth)
	if e.TxID == 0 {
		return
	}
	if m.splitPend == nil {
		m.splitPend = make(map[uint64]struct{}, 64)
	}
	if _, dup := m.splitPend[e.TxID]; dup {
		m.report(InvPendingTx, e, ln,
			"transaction entered the pending table twice without an intervening data tenure")
		return
	}
	if len(m.splitPend) >= maxPending {
		m.splitDropped = true
		return
	}
	m.splitPend[e.TxID] = struct{}{}
}

// consumeData retires a split transaction from the shadow pending set;
// a data tenure for a transaction that never pended (and could not have
// been evicted by the bound) is a fabricated response.
func (m *Monitor) consumeData(e *obs.Event) {
	ln := m.lookup(e.Bus, e.Addr, true)
	if ln == nil {
		m.truncated++
		return
	}
	ln.remember(e, m.cfg.ContextDepth)
	if e.TxID == 0 {
		return
	}
	if _, ok := m.splitPend[e.TxID]; ok {
		delete(m.splitPend, e.TxID)
		return
	}
	if !m.splitDropped {
		m.report(InvPendingTx, e, ln,
			"data tenure retired a transaction that never entered the pending table")
	}
}

// reset clears the per-line shadow at a system boundary (KindEpoch)
// while keeping cumulative violation counters and records.
func (m *Monitor) reset() {
	// Reset lines in place instead of reallocating the map: sweeps and
	// benchmarks replay the same address set epoch after epoch, so the
	// shadow reaches a steady state with no per-epoch garbage (the
	// context rings and states slices keep their capacity).
	for _, ln := range m.lines {
		ln.states = ln.states[:0]
		ln.owners, ln.excl, ln.valid = 0, 0, 0
		ln.txSnap, ln.ownersAtSnap, ln.ownerAtSnap = 0, 0, -1
		ln.ring = ln.ring[:0]
		ln.ringPos, ln.ringFull = 0, false
	}
	m.lastLine = nil
	clear(m.pending)
	clear(m.splitPend)
	m.splitDropped = false
	clear(m.procProto)
}

func (m *Monitor) lookup(bus int, addr uint64, create bool) *line {
	key := lineKey{bus, addr}
	if m.lastLine != nil && m.lastKey == key {
		return m.lastLine
	}
	ln := m.lines[key]
	if ln == nil {
		if !create {
			return nil
		}
		if len(m.lines) >= m.cfg.MaxLines {
			return nil
		}
		ln = &line{ownerAtSnap: -1}
		m.lines[key] = ln
	}
	m.lastKey, m.lastLine = key, ln
	return ln
}

func (m *Monitor) notePending(txid uint64, col int, ch bool) {
	if txid == 0 {
		return
	}
	m.pending[txid&(maxPending-1)] = pendEntry{txid: txid, col: int16(col), ch: ch}
}

func (m *Monitor) pendingFor(txid uint64) (txInfo, bool) {
	if txid == 0 {
		return txInfo{}, false
	}
	p := m.pending[txid&(maxPending-1)]
	if p.txid != txid {
		return txInfo{}, false
	}
	return txInfo{col: int(p.col), ch: p.ch}, true
}

func (m *Monitor) consumeTx(e *obs.Event) {
	m.txs++
	m.notePending(e.TxID, e.Col, e.CH)
	ln := m.lookup(e.Bus, e.Addr, true)
	if ln == nil {
		m.truncated++
		return
	}
	ln.remember(e, m.cfg.ContextDepth)
	if e.TxID != 0 {
		ln.snapshot(e.TxID)
	}

	// §3.1.4, operationally: memory supplies (and accepts) data exactly
	// when no cache owns the line; an owner must intervene on reads and
	// capture non-broadcast plain writes. Broadcast transfers (SL) and
	// pushes carry their own data path, so only columns 5–7 reads and
	// column 9 writes are constrained.
	foreign := ln.foreignOwner(e.Proc)
	switch {
	case e.Op == "R":
		if e.DI && !foreign {
			m.reportTx(e, ln, "a cache intervened (DI) on a read of a line no other cache owned")
		} else if !e.DI && foreign {
			m.reportTx(e, ln, fmt.Sprintf(
				"memory supplied a read while cache %d owned the line — memory must be invalid while a cache owns (stale data served)", ln.ownerAtSnap))
		}
	case e.Op == "W" && e.Col == 9:
		if e.DI && !foreign {
			m.reportTx(e, ln, "a cache captured (DI) a plain write to a line no other cache owned")
		} else if !e.DI && foreign {
			m.reportTx(e, ln, fmt.Sprintf(
				"cache %d owned the line but did not capture a plain write (column 9) — memory and owner now disagree", ln.ownerAtSnap))
		}
	}
}

func (m *Monitor) consumeState(e *obs.Event) {
	m.states++
	if e.Proto != "" && e.Proc >= 0 {
		for len(m.procProto) <= e.Proc {
			m.procProto = append(m.procProto, "")
		}
		if m.procProto[e.Proc] != e.Proto {
			m.procProto[e.Proc] = e.Proto
		}
	}
	ln := m.lookup(e.Bus, e.Addr, true)
	if ln == nil {
		m.truncated++
		return
	}
	ln.remember(e, m.cfg.ContextDepth)

	from, errF := core.ParseState(e.From)
	to, errT := core.ParseState(e.To)
	if errF != nil || errT != nil {
		m.report(InvLegalLocal, e, ln, fmt.Sprintf("malformed state letters %q→%q", e.From, e.To))
		return
	}

	// Owner snapshot before this transaction's commits apply.
	if e.TxID != 0 {
		ln.snapshot(e.TxID)
	}

	// Trace integrity: the event's From must match the shadow.
	if prev := ln.stateOf(e.Proc); prev >= 0 && core.State(prev) != from {
		m.report(InvShadow, e, ln, fmt.Sprintf(
			"shadow recorded %s for this copy but the event departs from %s — the stream skipped a transition",
			core.State(prev).Letter(), from.Letter()))
	}

	// Action legality (Tables 1–2).
	if inv, detail, ok := m.legal(e, from, to); !ok {
		m.report(inv, e, ln, detail)
	}

	// Apply, then the structural §3.1 invariants.
	ln.setState(e.Proc, to)
	if to.OwnedCopy() && ln.owners > 1 {
		m.report(InvSingleOwner, e, ln, fmt.Sprintf(
			"%d caches own the line after this transition — §3.1.3 allows at most one", ln.owners))
	}
	if to.Valid() {
		exclOthers := ln.excl
		if to.ExclusiveCopy() {
			exclOthers--
		}
		switch {
		case to.ExclusiveCopy() && ln.valid > 1:
			m.report(InvExclusivity, e, ln, fmt.Sprintf(
				"copy became %s (exclusive) while %d cached copies exist — §3.1.2 requires it to be the only one",
				to.Letter(), ln.valid))
		case exclOthers > 0:
			m.report(InvExclusivity, e, ln,
				"copy became valid while another cache holds the line in an exclusive state (M/E)")
		}
	}
}

// snoopLegal checks a snooper-side transition against its Table 2
// column (the snoop-* cause strings name the column consulted).
func snoopLegal(ev core.BusEvent, from, to core.State) (Invariant, string, bool) {
	mask := snoopNext[int(ev)][int(from)]
	if !has(mask, to) {
		return InvLegalSnoop, fmt.Sprintf(
			"Table 2 permits a %s snooper on column %d to reach {%s}, not %s",
			from.Letter(), ev.Column(), letters(mask), to.Letter()), false
	}
	return "", "", true
}

// legal checks one state transition against the class tables. The
// cause dispatch is a single string switch (no map hash) because it
// runs once per state event.
func (m *Monitor) legal(e *obs.Event, from, to core.State) (Invariant, string, bool) {
	switch e.Cause {
	case "snoop-cache-read":
		return snoopLegal(core.BusCacheRead, from, to)
	case "snoop-cache-rfo":
		return snoopLegal(core.BusCacheRFO, from, to)
	case "snoop-read":
		return snoopLegal(core.BusPlainRead, from, to)
	case "snoop-cache-bcast-write":
		return snoopLegal(core.BusCacheBroadcastWrite, from, to)
	case "snoop-write":
		return snoopLegal(core.BusPlainWrite, from, to)
	case "snoop-bcast-write":
		return snoopLegal(core.BusPlainBroadcastWrite, from, to)
	case "fill":
		if from != core.Invalid {
			return InvLegalLocal, "a fill must start from Invalid", false
		}
		mask := fillCol5.union() | fillCol6.union()
		info, pend := m.pendingFor(e.TxID)
		if pend {
			switch info.col {
			case 5:
				mask = fillCol5.resolve(info.ch, true)
			case 6:
				mask = fillCol6.resolve(info.ch, true)
			}
		}
		if !has(mask, to) {
			// The description is only built on the failure path: fills
			// dominate the legal-transition stream and a Sprintf per
			// clean fill is measurable allocator traffic.
			desc := "a miss"
			switch {
			case pend && info.col == 5:
				desc = fmt.Sprintf("a read miss (column 5, CH=%t)", info.ch)
			case pend && info.col == 6:
				desc = fmt.Sprintf("a read-for-ownership (column 6, CH=%t)", info.ch)
			}
			return InvLegalLocal, fmt.Sprintf(
				"Table 1 permits %s to install {%s}, not %s", desc, letters(mask), to.Letter()), false
		}
	case "write-upgrade":
		mask := upgradeNext[int(from)].union()
		if info, ok := m.pendingFor(e.TxID); ok {
			mask = upgradeNext[int(from)].resolve(info.ch, true)
		}
		if !has(mask, to) {
			return InvLegalLocal, fmt.Sprintf(
				"Table 1 permits an announced write from %s to reach {%s}, not %s",
				from.Letter(), letters(mask), to.Letter()), false
		}
	case "silent-write", "write-hit":
		if mask := silentWrite[int(from)]; !has(mask, to) {
			return InvLegalLocal, fmt.Sprintf(
				"Table 1 permits a silent write only from M/E (to {%s}); %s→%s announces nothing on the bus",
				letters(mask), from.Letter(), to.Letter()), false
		}
	case "read-hit":
		if mask := readHitNext[int(from)]; !has(mask, to) {
			return InvLegalLocal, fmt.Sprintf(
				"a read hit must not change the copy's state (%s→%s)", from.Letter(), to.Letter()), false
		}
	case "evict":
		if mask := evictBus[int(from)]; !has(mask, to) {
			return InvLegalLocal, fmt.Sprintf(
				"Table 1's Flush from %s permits {%s}, not %s (a dirty eviction must write back)",
				from.Letter(), letters(mask), to.Letter()), false
		}
	case "evict-clean":
		if mask := evictSilent[int(from)]; !has(mask, to) {
			return InvLegalLocal, fmt.Sprintf(
				"Table 1 has no silent Flush from %s — discarding an owned line loses the only up-to-date copy",
				from.Letter()), false
		}
	case "push":
		if mask := pushNext[int(from)]; !has(mask, to) {
			return InvLegalLocal, fmt.Sprintf(
				"Table 1's Pass/Flush from %s permit {%s}, not %s",
				from.Letter(), letters(mask), to.Letter()), false
		}
	case "bs-recovery":
		if !from.OwnedCopy() {
			return InvLegalSnoop, "only an owner (M/O) may assert BS and recover", false
		}
		if to.OwnedCopy() {
			return InvLegalSnoop, "a BS recovery push must pass ownership back to memory", false
		}
	case "snoop-clean":
		if to.OwnedCopy() {
			return InvLegalSnoop, "after CmdClean no cache may own the line", false
		}
	case "absorb":
		if to != core.Modified {
			return InvLegalLocal, "absorbing a write-back must leave the bridge Modified", false
		}
	case "invalidate-held":
		if to != core.Invalid {
			return InvLegalLocal, "invalidate-held must leave the copy Invalid", false
		}
	default:
		return InvLegalLocal, fmt.Sprintf("unrecognised transition cause %q", e.Cause), false
	}
	return "", "", true
}

func (m *Monitor) protoFor(e *obs.Event) string {
	if e.Proto != "" {
		return e.Proto
	}
	if e.Proc >= 0 && e.Proc < len(m.procProto) && m.procProto[e.Proc] != "" {
		return m.procProto[e.Proc]
	}
	return "unknown"
}

func (m *Monitor) reportTx(e *obs.Event, ln *line, detail string) {
	m.record(Violation{
		Invariant: InvMemoryOwner, TS: e.TS, Bus: e.Bus, Proc: e.Proc,
		Addr: e.Addr, Proto: m.protoFor(e), TxID: e.TxID,
		Holders: ln.holders(), Detail: detail, Context: ln.context(),
	})
}

func (m *Monitor) report(inv Invariant, e *obs.Event, ln *line, detail string) {
	m.record(Violation{
		Invariant: inv, TS: e.TS, Bus: e.Bus, Proc: e.Proc,
		Addr: e.Addr, Proto: m.protoFor(e), TxID: e.TxID, Cause: e.Cause,
		From: e.From, To: e.To,
		Holders: ln.holders(), Detail: detail, Context: ln.context(),
	})
}

func (m *Monitor) record(v Violation) {
	m.total++
	v.N = m.total
	m.counts[countKey{v.Invariant, v.Proto}]++
	if m.first == nil {
		first := v
		m.first = &first
	}
	if len(m.violations) < m.cfg.MaxViolations {
		m.violations = append(m.violations, v)
	}
}

// Total returns the number of violations detected so far.
func (m *Monitor) Total() int64 { return m.total }

// Counts snapshots the per-(invariant, protocol) counters, sorted by
// invariant then protocol.
func (m *Monitor) Counts() []Count {
	out := make([]Count, 0, len(m.counts))
	for k, n := range m.counts {
		out = append(out, Count{Invariant: k.inv, Proto: k.proto, N: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Invariant != out[j].Invariant {
			return out[i].Invariant < out[j].Invariant
		}
		return out[i].Proto < out[j].Proto
	})
	return out
}

// First returns a copy of the first violation (nil if clean).
func (m *Monitor) First() *Violation {
	if m.first == nil {
		return nil
	}
	v := *m.first
	return &v
}

// Violations returns a copy of the stored (bounded) violation records.
func (m *Monitor) Violations() []Violation {
	return append([]Violation(nil), m.violations...)
}

// Report snapshots the monitor.
func (m *Monitor) Report() *Report {
	r := &Report{
		Events: m.events, States: m.states, Txs: m.txs,
		Lines: len(m.lines), TruncatedEvents: m.truncated,
		Total:       m.total,
		ByInvariant: make(map[Invariant]int64),
		Counts:      m.Counts(),
		First:       m.First(),
		Violations:  m.Violations(),
	}
	for k, n := range m.counts {
		r.ByInvariant[k.inv] += n
	}
	return r
}

// Summary renders a one-screen text report: the verdict line, then
// per-invariant counts.
func (r *Report) Summary() string {
	var b strings.Builder
	if r.Total == 0 {
		fmt.Fprintf(&b, "clean: %d events (%d state transitions, %d transactions) across %d lines, 0 violations\n",
			r.Events, r.States, r.Txs, r.Lines)
	} else {
		fmt.Fprintf(&b, "VIOLATIONS: %d across %d events (%d state transitions, %d transactions)\n",
			r.Total, r.Events, r.States, r.Txs)
		for _, inv := range Invariants {
			if n := r.ByInvariant[inv]; n > 0 {
				fmt.Fprintf(&b, "  %-28s %d\n", inv, n)
			}
		}
	}
	if r.TruncatedEvents > 0 {
		fmt.Fprintf(&b, "  (%d events on lines beyond the %d-line cap were not checked)\n",
			r.TruncatedEvents, DefaultMaxLines)
	}
	return b.String()
}
