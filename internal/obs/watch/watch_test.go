package watch

import (
	"strings"
	"testing"

	"futurebus/internal/obs"
)

// rig drives a Monitor with hand-built events, mimicking the emission
// order the substrates guarantee: snoop-caused state commits before
// their KindTx, master-side fill/upgrade/evict states after it.
type rig struct {
	t  *testing.T
	m  *Monitor
	ts int64
}

func newRig(t *testing.T, cfg Config) *rig {
	return &rig{t: t, m: New(cfg)}
}

func (r *rig) tx(proc int, addr uint64, col int, op string, ch, di bool, txid uint64) {
	r.ts++
	r.m.Consume(&obs.Event{
		TS: r.ts, Kind: obs.KindTx, Bus: 0, Proc: proc, Addr: addr,
		Col: col, Op: op, CH: ch, DI: di, TxID: txid,
	})
}

func (r *rig) st(proc int, addr uint64, from, to, cause string, txid uint64) {
	r.ts++
	r.m.Consume(&obs.Event{
		TS: r.ts, Kind: obs.KindState, Bus: 0, Proc: proc, Addr: addr,
		From: from, To: to, Cause: cause, Proto: "moesi", TxID: txid,
	})
}

func (r *rig) wantClean() {
	r.t.Helper()
	if r.m.Total() != 0 {
		r.t.Fatalf("expected clean run, got %d violations; first: %v", r.m.Total(), r.m.First())
	}
}

func (r *rig) wantViolation(inv Invariant) *Violation {
	r.t.Helper()
	rep := r.m.Report()
	if rep.ByInvariant[inv] == 0 {
		r.t.Fatalf("expected a %s violation, got by-invariant %v (first: %v)",
			inv, rep.ByInvariant, rep.First)
	}
	for i := range rep.Violations {
		if rep.Violations[i].Invariant == inv {
			return &rep.Violations[i]
		}
	}
	r.t.Fatalf("%s counted but not stored", inv)
	return nil
}

// TestCleanMOESISequence walks a legal write-miss / read-share /
// upgrade / evict sequence and expects zero violations.
func TestCleanMOESISequence(t *testing.T) {
	r := newRig(t, Config{})
	const a = 0x1000

	// proc 0 write miss: RFO (col 6), nobody holds, install M.
	r.tx(0, a, 6, "R", false, false, 1)
	r.st(0, a, "I", "M", "fill", 1)

	// proc 1 read miss: proc 0 snoops col 5 (M→O, DI), fill installs S.
	r.st(0, a, "M", "O", "snoop-cache-read", 2)
	r.tx(1, a, 5, "R", true, true, 2)
	r.st(1, a, "I", "S", "fill", 2)

	// proc 1 writes: proc 0 snooper invalidates (col 6), address-only
	// upgrade, writer goes S→M.
	r.st(0, a, "O", "I", "snoop-cache-rfo", 3)
	r.tx(1, a, 6, "A", false, true, 3)
	r.st(1, a, "S", "M", "write-upgrade", 3)

	// proc 1 evicts dirty: copy-back (plain write col 9, no captor).
	r.tx(1, a, 9, "W", false, false, 4)
	r.st(1, a, "M", "I", "evict", 4)

	r.wantClean()
	rep := r.m.Report()
	if rep.States != 6 || rep.Txs != 4 {
		t.Fatalf("report counted states=%d txs=%d, want 6/4", rep.States, rep.Txs)
	}
	if !strings.Contains(rep.Summary(), "clean") {
		t.Fatalf("summary should say clean: %q", rep.Summary())
	}
}

func TestDualOwnersCaught(t *testing.T) {
	r := newRig(t, Config{})
	const a = 0x2000
	r.tx(0, a, 6, "R", false, false, 1)
	r.st(0, a, "I", "M", "fill", 1)
	// proc 1 gains M too — no invalidation of proc 0 ever happened.
	r.tx(1, a, 6, "R", false, true, 2)
	r.st(1, a, "I", "M", "fill", 2)

	v := r.wantViolation(InvSingleOwner)
	if v.Proc != 1 || v.Addr != a {
		t.Fatalf("violation blames proc %d addr %#x, want 1/%#x", v.Proc, v.Addr, uint64(a))
	}
	if !strings.Contains(v.Holders, "0:M") || !strings.Contains(v.Holders, "1:M") {
		t.Fatalf("holders should show both owners: %q", v.Holders)
	}
}

func TestStaleReaderCaught(t *testing.T) {
	r := newRig(t, Config{})
	const a = 0x2100
	// proc 0 and proc 1 share, then proc 0 upgrades but proc 1's
	// invalidation was dropped: proc 1 still S next to proc 0's M.
	r.tx(0, a, 5, "R", false, false, 1)
	r.st(0, a, "I", "E", "fill", 1)
	r.st(0, a, "E", "S", "snoop-cache-read", 2)
	r.tx(1, a, 5, "R", true, false, 2)
	r.st(1, a, "I", "S", "fill", 2)
	r.tx(0, a, 6, "A", true, false, 3) // CH asserted: someone kept a copy
	r.st(0, a, "S", "M", "write-upgrade", 3)

	v := r.wantViolation(InvExclusivity)
	if v.Cause != "write-upgrade" {
		t.Fatalf("blamed cause %q, want write-upgrade", v.Cause)
	}
}

func TestIllegalSnoopTransition(t *testing.T) {
	r := newRig(t, Config{})
	const a = 0x2200
	r.tx(0, a, 6, "R", false, false, 1)
	r.st(0, a, "I", "M", "fill", 1)
	// Table 2 says an M snooper on a cache read goes to O — E is a
	// corrupted transition.
	r.st(0, a, "M", "E", "snoop-cache-read", 2)

	v := r.wantViolation(InvLegalSnoop)
	if !strings.Contains(v.Detail, "column 5") {
		t.Fatalf("detail should name the column: %q", v.Detail)
	}
}

func TestMemoryServedStaleData(t *testing.T) {
	r := newRig(t, Config{})
	const a = 0x2300
	r.tx(0, a, 6, "R", false, false, 1)
	r.st(0, a, "I", "M", "fill", 1)
	// proc 1 reads, the owner stays silent: memory (invalid while a
	// cache owns) supplied the data.
	r.tx(1, a, 5, "R", false, false, 2)

	v := r.wantViolation(InvMemoryOwner)
	if v.TxID != 2 || v.Proc != 1 {
		t.Fatalf("violation blames tx %d proc %d, want 2/1", v.TxID, v.Proc)
	}
	if !strings.Contains(v.Detail, "memory") {
		t.Fatalf("detail should mention memory: %q", v.Detail)
	}
}

func TestPhantomIntervention(t *testing.T) {
	r := newRig(t, Config{})
	const a = 0x2350
	// DI on a read of a line nobody owns.
	r.tx(0, a, 5, "R", false, true, 1)
	r.wantViolation(InvMemoryOwner)
}

func TestSilentDirtyEviction(t *testing.T) {
	r := newRig(t, Config{})
	const a = 0x2400
	r.tx(0, a, 6, "R", false, false, 1)
	r.st(0, a, "I", "M", "fill", 1)
	// Dropping an M line without a copy-back loses the only copy.
	r.st(0, a, "M", "I", "evict-clean", 0)

	v := r.wantViolation(InvLegalLocal)
	if !strings.Contains(v.Detail, "Flush") {
		t.Fatalf("detail should cite the Flush rule: %q", v.Detail)
	}
}

func TestShadowDivergence(t *testing.T) {
	r := newRig(t, Config{})
	const a = 0x2500
	r.tx(0, a, 6, "R", false, false, 1)
	r.st(0, a, "I", "M", "fill", 1)
	// The stream claims the copy departs from S — a transition was lost.
	r.st(0, a, "S", "I", "snoop-cache-rfo", 2)
	r.wantViolation(InvShadow)
}

func TestBSRecoveryFromUnownedState(t *testing.T) {
	r := newRig(t, Config{})
	const a = 0x2600
	r.tx(0, a, 5, "R", false, false, 1)
	r.st(0, a, "I", "E", "fill", 1)
	r.st(0, a, "E", "S", "snoop-cache-read", 2)
	r.tx(1, a, 5, "R", true, false, 2)
	r.st(1, a, "I", "S", "fill", 2)
	// Only owners may abort-and-push; an S copy asserting BS is bogus.
	r.st(0, a, "S", "I", "bs-recovery", 3)
	r.wantViolation(InvLegalSnoop)
}

func TestFillExclusiveDespiteSharers(t *testing.T) {
	r := newRig(t, Config{})
	const a = 0x2700
	// CH was asserted on the read miss, yet the fill installs M.
	r.tx(0, a, 5, "R", true, false, 1)
	r.st(0, a, "I", "M", "fill", 1)

	v := r.wantViolation(InvLegalLocal)
	if !strings.Contains(v.Detail, "CH=true") {
		t.Fatalf("detail should show the resolved CH: %q", v.Detail)
	}
}

func TestUnknownCause(t *testing.T) {
	r := newRig(t, Config{})
	r.st(0, 0x2800, "I", "M", "quantum-tunnel", 0)
	v := r.wantViolation(InvLegalLocal)
	if !strings.Contains(v.Detail, "quantum-tunnel") {
		t.Fatalf("detail should quote the cause: %q", v.Detail)
	}
}

func TestContextRingBounded(t *testing.T) {
	r := newRig(t, Config{ContextDepth: 4})
	const a = 0x2900
	r.tx(0, a, 6, "R", false, false, 1)
	r.st(0, a, "I", "M", "fill", 1)
	for i := 0; i < 20; i++ { // legal churn to rotate the ring
		r.st(0, a, "M", "O", "snoop-cache-read", uint64(10+i))
		r.st(0, a, "O", "I", "snoop-cache-rfo", uint64(40+i))
		r.tx(0, a, 6, "R", false, false, uint64(70+i))
		r.st(0, a, "I", "M", "fill", uint64(70+i))
	}
	r.st(0, a, "M", "I", "evict-clean", 0)

	v := r.wantViolation(InvLegalLocal)
	if len(v.Context) != 4 {
		t.Fatalf("context has %d events, want exactly depth 4", len(v.Context))
	}
	last := v.Context[len(v.Context)-1]
	if last.Cause != "evict-clean" {
		t.Fatalf("context should end with the trigger, got cause %q", last.Cause)
	}
	for i := 1; i < len(v.Context); i++ {
		if v.Context[i].TS < v.Context[i-1].TS {
			t.Fatalf("context out of order: %v", v.Context)
		}
	}
}

func TestEpochResetsShadow(t *testing.T) {
	r := newRig(t, Config{})
	const a = 0x3000
	r.tx(0, a, 6, "R", false, false, 1)
	r.st(0, a, "I", "M", "fill", 1)

	// New system on the same recorder: everyone is Invalid again.
	r.m.Consume(&obs.Event{Kind: obs.KindEpoch})

	r.tx(1, a, 6, "R", false, false, 2)
	r.st(1, a, "I", "M", "fill", 2)
	r.wantClean()
	if rep := r.m.Report(); rep.Lines != 1 {
		t.Fatalf("epoch should reset line shadows, got %d lines", rep.Lines)
	}
}

func TestEpochKeepsCounters(t *testing.T) {
	r := newRig(t, Config{})
	r.st(0, 0x3100, "I", "M", "quantum-tunnel", 0)
	r.m.Consume(&obs.Event{Kind: obs.KindEpoch})
	if r.m.Total() != 1 {
		t.Fatalf("epoch must not erase violation counters, total=%d", r.m.Total())
	}
}

func TestViolationStorageBounded(t *testing.T) {
	r := newRig(t, Config{MaxViolations: 3})
	for i := 0; i < 10; i++ {
		r.st(0, uint64(0x4000+i*64), "I", "M", "quantum-tunnel", 0)
	}
	if r.m.Total() != 10 {
		t.Fatalf("counter should keep counting, total=%d", r.m.Total())
	}
	if got := len(r.m.Violations()); got != 3 {
		t.Fatalf("stored %d violations, want cap 3", got)
	}
	if f := r.m.First(); f == nil || f.N != 1 {
		t.Fatalf("first violation latch wrong: %v", f)
	}
}

func TestLineCapTruncates(t *testing.T) {
	r := newRig(t, Config{MaxLines: 2})
	for i := 0; i < 5; i++ {
		r.tx(0, uint64(0x5000+i*64), 6, "R", false, false, uint64(i+1))
		r.st(0, uint64(0x5000+i*64), "I", "M", "fill", uint64(i+1))
	}
	rep := r.m.Report()
	if rep.Lines != 2 {
		t.Fatalf("line cap not applied: %d lines", rep.Lines)
	}
	if rep.TruncatedEvents == 0 {
		t.Fatal("events beyond the cap should be counted as truncated")
	}
	if !strings.Contains(rep.Summary(), "not checked") {
		t.Fatalf("summary should disclose truncation: %q", rep.Summary())
	}
}

func TestCountsLabelledByProto(t *testing.T) {
	r := newRig(t, Config{})
	r.st(0, 0x6000, "I", "M", "quantum-tunnel", 0)
	counts := r.m.Counts()
	if len(counts) != 1 || counts[0].Proto != "moesi" || counts[0].Invariant != InvLegalLocal {
		t.Fatalf("counts = %+v", counts)
	}
	if s := counts[0]; s.N != 1 {
		t.Fatalf("count = %d, want 1", s.N)
	}
}

func TestViolationString(t *testing.T) {
	r := newRig(t, Config{})
	const a = 0x7000
	r.tx(0, a, 6, "R", false, false, 1)
	r.st(0, a, "I", "M", "fill", 1)
	r.st(0, a, "M", "I", "evict-clean", 0)
	s := r.m.First().String()
	for _, want := range []string{"legal-local-action", "0x7000", "M→I", "evict-clean", "moesi"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

// splitEvent feeds one split-phase event (pend/data/nack/exhausted).
func (r *rig) split(kind obs.Kind, proc int, addr uint64, txid uint64, retries int) {
	r.ts++
	r.m.Consume(&obs.Event{
		TS: r.ts, Kind: kind, Bus: 0, Proc: proc, Addr: addr,
		TxID: txid, Retries: retries,
	})
}

// TestSplitPendingLifecycleClean: a legal pend→data pairing (with a
// NACK in between) raises nothing.
func TestSplitPendingLifecycleClean(t *testing.T) {
	r := newRig(t, Config{})
	const a = 0x8000
	r.split(obs.KindPend, 0, a, 1, 0)
	r.split(obs.KindNack, 1, a+1, 2, 0)
	r.split(obs.KindPend, 1, a+1, 2, 0)
	r.split(obs.KindData, 0, a, 1, 0)
	r.split(obs.KindData, 1, a+1, 2, 0)
	r.wantClean()
}

// TestSplitDoublePendCaught: the same transaction entering the pending
// table twice is a split-bookkeeping bug.
func TestSplitDoublePendCaught(t *testing.T) {
	r := newRig(t, Config{})
	const a = 0x8100
	r.split(obs.KindPend, 0, a, 7, 0)
	r.split(obs.KindPend, 0, a, 7, 0)
	v := r.wantViolation(InvPendingTx)
	if v.TxID != 7 {
		t.Fatalf("violation blames tx %d, want 7", v.TxID)
	}
}

// TestSplitPhantomDataCaught: a data tenure for a transaction that
// never entered the pending table is a fabricated response.
func TestSplitPhantomDataCaught(t *testing.T) {
	r := newRig(t, Config{})
	r.split(obs.KindData, 0, 0x8200, 9, 0)
	r.wantViolation(InvPendingTx)
}

// TestSplitPendResetsOnEpoch: a new system boundary clears the shadow
// pending set — a pend left over from the previous epoch must not make
// the next epoch's same-txid pend look like a duplicate.
func TestSplitPendResetsOnEpoch(t *testing.T) {
	r := newRig(t, Config{})
	const a = 0x8300
	r.split(obs.KindPend, 0, a, 3, 0)
	r.m.Consume(&obs.Event{Kind: obs.KindEpoch, Bus: 0, Proc: -1})
	r.split(obs.KindPend, 0, a, 3, 0)
	r.split(obs.KindData, 0, a, 3, 0)
	r.wantClean()
}

// TestRetryExhaustedIsProgressViolation: KindRetryExhausted folds into
// a forward-progress violation carrying the abort count.
func TestRetryExhaustedIsProgressViolation(t *testing.T) {
	r := newRig(t, Config{})
	r.split(obs.KindRetryExhausted, 2, 0x8400, 11, 33)
	v := r.wantViolation(InvProgress)
	if v.Proc != 2 || v.TxID != 11 {
		t.Fatalf("violation blames proc %d tx %d, want 2/11", v.Proc, v.TxID)
	}
	if !strings.Contains(v.Detail, "33") {
		t.Fatalf("detail should carry the abort count: %q", v.Detail)
	}
}
