package causal

import (
	"fmt"
	"io"
	"sort"
)

// Render writes a human-readable report: run totals, the blame table,
// the top critical-path segments by cost, and the per-board table.
// topN bounds the segment listing (0 = 10).
func (an *Analysis) Render(w io.Writer, topN int) {
	if topN <= 0 {
		topN = 10
	}
	fmt.Fprintf(w, "transactions %d  elapsed %dns  bus occupancy %dns  wait %dns  aborts %d\n",
		an.Txs, an.Elapsed, an.TotalCost, an.TotalWait, an.Aborts)
	if an.Truncated > 0 {
		fmt.Fprintf(w, "WARNING: %d transactions past the analyzer limit were discarded\n", an.Truncated)
	}

	total := an.ByCause.Total()
	fmt.Fprintf(w, "\ncost by cause (whole run)\n")
	for i, name := range Causes {
		v := an.ByCause[i]
		if total > 0 {
			fmt.Fprintf(w, "  %-14s %14dns %6.1f%%\n", name, v, 100*float64(v)/float64(total))
		} else {
			fmt.Fprintf(w, "  %-14s %14dns\n", name, v)
		}
	}

	fmt.Fprintf(w, "\ncritical path: %d segments, %dns (%.1f%% of elapsed)\n",
		len(an.Path), an.PathCost, pct(an.PathCost, an.Elapsed))
	pathTotal := an.PathByCause.Total()
	for i, name := range Causes {
		if v := an.PathByCause[i]; v > 0 {
			fmt.Fprintf(w, "  %-14s %14dns %6.1f%%\n", name, v, pct(v, pathTotal))
		}
	}

	// Top segments by cost (occupancy + wait).
	segs := make([]Segment, len(an.Path))
	copy(segs, an.Path)
	sort.SliceStable(segs, func(i, j int) bool {
		return segs[i].Dur+segs[i].Wait > segs[j].Dur+segs[j].Wait
	})
	if len(segs) > topN {
		segs = segs[:topN]
	}
	fmt.Fprintf(w, "\ntop %d critical-path segments\n", len(segs))
	fmt.Fprintf(w, "  %8s %4s %10s %4s %2s %10s %10s %-12s %s\n",
		"txid", "proc", "addr", "col", "op", "cost(ns)", "wait(ns)", "dominant", "via")
	for _, s := range segs {
		fmt.Fprintf(w, "  %8d %4d %#10x %4d %2s %10d %10d %-12s %s\n",
			s.TxID, s.Proc, s.Addr, s.Col, s.Op, s.Dur, s.Wait, s.ByCause.Dominant(), s.Via)
	}

	fmt.Fprintf(w, "\nper-board blame\n")
	fmt.Fprintf(w, "  %4s %8s %12s %12s %8s %-12s\n", "proc", "txs", "cost(ns)", "wait(ns)", "aborts", "dominant")
	for _, b := range an.Boards {
		fmt.Fprintf(w, "  %4d %8d %12d %12d %8d %-12s\n",
			b.Proc, b.Txs, b.Cost, b.Wait, b.Retries, b.ByCause.Dominant())
	}

	// Only labelled traces get the discipline table; recordings made
	// before the epoch marker carried the label render exactly as they
	// always have.
	if len(an.ByDiscipline) > 0 {
		fmt.Fprintf(w, "\narb-wait blame by arbitration discipline\n")
		fmt.Fprintf(w, "  %-10s %8s %14s %14s %7s %8s\n",
			"discipline", "txs", "wait(ns)", "max-wait(ns)", "share", "queued")
		for _, d := range an.ByDiscipline {
			fmt.Fprintf(w, "  %-10s %8d %14d %14d %6.1f%% %8d\n",
				d.Discipline, d.Txs, d.WaitNS, d.MaxWaitNS, 100*d.Share, d.QueuedData)
		}
	}
}

func pct(v, total int64) float64 {
	if total <= 0 {
		return 0
	}
	return 100 * float64(v) / float64(total)
}
