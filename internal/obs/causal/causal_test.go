package causal

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"futurebus/internal/obs"
)

// tx builds a KindTx event with sensible phase fields: addr+data cost,
// plus optional wait and retry overhead.
func tx(seq uint64, ts, dur int64, proc int, txid, causeID uint64) obs.Event {
	return obs.Event{
		Seq: seq, TS: ts, Dur: dur, Kind: obs.KindTx, Proc: proc,
		Addr: 0x40, Col: 6, Op: "R",
		AddrNS: 125, DataNS: dur - 125,
		TxID: txid, CauseID: causeID,
	}
}

// TestAnalyzerBlockingEdge: a grant with non-zero Dur carries the
// blocking transaction; the analysis must attribute the wait to
// arb-wait and put the blocker on the critical path.
func TestAnalyzerBlockingEdge(t *testing.T) {
	events := []obs.Event{
		tx(0, 0, 400, 0, 1, 0),
		{Seq: 1, TS: 400, Dur: 400, Kind: obs.KindGrant, Proc: 1, TxID: 2, CauseID: 1},
		func() obs.Event { e := tx(2, 400, 300, 1, 2, 0); e.ArbNS = 400; return e }(),
	}
	an := AnalyzeEvents(events)
	if an.Txs != 2 {
		t.Fatalf("Txs = %d, want 2", an.Txs)
	}
	if got := an.ByCause[0]; got != 400 {
		t.Errorf("arb-wait = %d, want 400", got)
	}
	if len(an.Path) != 2 {
		t.Fatalf("path length = %d, want 2 (blocker then blocked): %+v", len(an.Path), an.Path)
	}
	if an.Path[0].TxID != 1 || an.Path[1].TxID != 2 {
		t.Errorf("path = %d → %d, want 1 → 2", an.Path[0].TxID, an.Path[1].TxID)
	}
	if an.Path[1].Via != CauseArbWait {
		t.Errorf("edge = %q, want %q", an.Path[1].Via, CauseArbWait)
	}
}

// TestAnalyzerBlockedEvent: the deterministic engine's KindBlocked
// linkage must fold into the board's next transaction.
func TestAnalyzerBlockedEvent(t *testing.T) {
	events := []obs.Event{
		tx(0, 0, 400, 0, 1, 0),
		{Seq: 1, TS: 400, Dur: 250, Kind: obs.KindBlocked, Proc: 1, CauseID: 1},
		tx(2, 400, 300, 1, 2, 0),
	}
	an := AnalyzeEvents(events)
	if got := an.ByCause[0]; got != 250 {
		t.Errorf("arb-wait = %d, want 250", got)
	}
	if len(an.Path) != 2 || an.Path[1].Via != CauseArbWait || an.Path[1].BlockedBy != 1 {
		t.Errorf("path = %+v, want blocked-behind-tx-1 edge", an.Path)
	}
}

// TestAnalyzerRecoveryChain: a BS recovery push (KindTx with CauseID
// naming the aborted transaction) charges its whole cost to bs-retry
// and chains onto the retried transaction's critical path.
func TestAnalyzerRecoveryChain(t *testing.T) {
	events := []obs.Event{
		{Seq: 0, TS: 0, Kind: obs.KindGrant, Proc: 0, TxID: 1},
		{Seq: 1, TS: 0, Kind: obs.KindAbort, Proc: 0, TxID: 1},
		{Seq: 2, TS: 0, Kind: obs.KindRecover, Proc: 2, TxID: 1},
		// The owner's push, nested inside tx 1's attempt loop.
		tx(3, 0, 500, 2, 2, 1),
		// The retried master's completion: retry overhead recorded.
		func() obs.Event {
			e := tx(4, 500, 800, 0, 1, 0)
			e.Retries = 1
			e.RetryNS = 125
			e.DataNS = 800 - 250
			return e
		}(),
	}
	an := AnalyzeEvents(events)
	if an.Aborts != 1 {
		t.Errorf("Aborts = %d, want 1", an.Aborts)
	}
	// bs-retry = whole push (500) + master's wasted address cycles (125).
	if got := an.ByCause[5]; got != 625 {
		t.Errorf("bs-retry = %d, want 625", got)
	}
	if len(an.Path) != 2 || an.Path[0].TxID != 2 || an.Path[1].TxID != 1 {
		t.Fatalf("path = %+v, want push(2) → retried(1)", an.Path)
	}
	if an.Path[1].Via != CauseBSRetry {
		t.Errorf("edge = %q, want %q", an.Path[1].Via, CauseBSRetry)
	}
}

// TestAnalyzerProgramOrder: independent boards chain on program order;
// the path follows the last-finishing board.
func TestAnalyzerProgramOrder(t *testing.T) {
	events := []obs.Event{
		tx(0, 0, 300, 0, 1, 0),
		tx(1, 300, 300, 1, 2, 0),
		tx(2, 600, 400, 0, 3, 0),
	}
	an := AnalyzeEvents(events)
	if len(an.Path) != 2 || an.Path[0].TxID != 1 || an.Path[1].TxID != 3 {
		t.Fatalf("path = %+v, want 1 → 3 (program order on board 0)", an.Path)
	}
	if an.Path[1].Via != "program" {
		t.Errorf("edge = %q, want program", an.Path[1].Via)
	}
}

func TestAnalyzerLimit(t *testing.T) {
	a := Analyzer{Limit: 2}
	for i := uint64(1); i <= 5; i++ {
		e := tx(i, int64(i)*100, 100, 0, i, 0)
		a.Consume(&e)
	}
	an := a.Analyze()
	if an.Txs != 2 || an.Truncated != 3 {
		t.Errorf("Txs = %d Truncated = %d, want 2 and 3", an.Txs, an.Truncated)
	}
}

func TestCanonicalize(t *testing.T) {
	// Two interleavings of the same per-board program: board 0 runs
	// t1,t3; board 1 runs t2. Run B saw board 1 first, with different
	// global seq, timestamps, arb waits and TxIDs.
	runA := []obs.Event{
		{Seq: 0, TS: 0, Kind: obs.KindGrant, Proc: 0, TxID: 1},
		tx(1, 0, 300, 0, 1, 0),
		func() obs.Event { e := tx(2, 300, 200, 1, 2, 0); e.ArbNS = 300; return e }(),
		tx(3, 500, 400, 0, 3, 0),
	}
	runB := []obs.Event{
		tx(10, 0, 200, 1, 7, 0),
		func() obs.Event { e := tx(11, 200, 300, 0, 8, 0); e.ArbNS = 200; return e }(),
		{Seq: 12, TS: 500, Dur: 77, Kind: obs.KindStall, Proc: 0},
		tx(13, 500, 400, 0, 9, 0),
	}
	ca, cb := Canonicalize(runA), Canonicalize(runB)
	if len(ca) != 3 || len(cb) != 3 {
		t.Fatalf("canonical lengths %d, %d; want 3, 3", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Errorf("canonical event %d differs:\nA: %+v\nB: %+v", i, ca[i], cb[i])
		}
	}
	pa, pb := AnalyzeEvents(ca), AnalyzeEvents(cb)
	if len(pa.Path) != len(pb.Path) {
		t.Fatalf("canonical paths differ in length: %d vs %d", len(pa.Path), len(pb.Path))
	}
	for i := range pa.Path {
		if pa.Path[i] != pb.Path[i] {
			t.Errorf("canonical path segment %d differs", i)
		}
	}
}

func TestCanonicalizeRemapsCauseID(t *testing.T) {
	events := []obs.Event{
		tx(5, 0, 300, 0, 42, 0),
		tx(6, 300, 200, 1, 43, 42), // recovery push referencing tx 42
	}
	c := Canonicalize(events)
	if c[0].TxID != 1 || c[1].TxID != 2 {
		t.Fatalf("TxIDs = %d, %d; want dense renumbering 1, 2", c[0].TxID, c[1].TxID)
	}
	if c[1].CauseID != 1 {
		t.Errorf("CauseID = %d, want remapped 1", c[1].CauseID)
	}
}

func TestDiffThresholds(t *testing.T) {
	oldA := AnalyzeEvents([]obs.Event{tx(0, 0, 1000, 0, 1, 0)})
	newA := AnalyzeEvents([]obs.Event{tx(0, 0, 3000, 0, 1, 0)})
	r := Diff(oldA, newA, Thresholds{Rel: 0.10, Abs: 100})
	if r.Regressions == 0 {
		t.Fatal("3× cost growth not flagged as regression")
	}
	// Same analysis diffed against itself: zero regressions.
	if r := Diff(oldA, oldA, DefaultThresholds); r.Regressions != 0 {
		t.Errorf("self-diff reported %d regressions", r.Regressions)
	}
	// Below the absolute floor nothing triggers regardless of ratio.
	small := AnalyzeEvents([]obs.Event{tx(0, 0, 10, 0, 1, 0)})
	big := AnalyzeEvents([]obs.Event{tx(0, 0, 25, 0, 1, 0)})
	if r := Diff(small, big, DefaultThresholds); r.Regressions != 0 {
		t.Errorf("sub-threshold delta reported %d regressions", r.Regressions)
	}
}

func TestDiffRender(t *testing.T) {
	a := AnalyzeEvents([]obs.Event{tx(0, 0, 1000, 0, 1, 0)})
	b := AnalyzeEvents([]obs.Event{tx(0, 0, 5000, 0, 1, 0)})
	var buf bytes.Buffer
	Diff(a, b, DefaultThresholds).Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "bs-retry") {
		t.Errorf("render missing expected content:\n%s", out)
	}
	buf.Reset()
	Diff(a, a, DefaultThresholds).Render(&buf)
	if !strings.Contains(buf.String(), "no regressions") {
		t.Errorf("self-diff render missing 'no regressions':\n%s", buf.String())
	}
}

func TestAnalysisRender(t *testing.T) {
	an := AnalyzeEvents([]obs.Event{
		tx(0, 0, 400, 0, 1, 0),
		{Seq: 1, TS: 400, Dur: 250, Kind: obs.KindBlocked, Proc: 1, CauseID: 1},
		tx(2, 400, 300, 1, 2, 0),
	})
	var buf bytes.Buffer
	an.Render(&buf, 5)
	out := buf.String()
	for _, want := range []string{"cost by cause", "critical path", "per-board blame", CauseArbWait} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCauseVecJSON(t *testing.T) {
	v := CauseVec{100, 0, 200, 0, 0, 300}
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var got CauseVec
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Errorf("round-trip = %v, want %v", got, v)
	}
	if v.Dominant() != CauseBSRetry {
		t.Errorf("Dominant = %q, want %q", v.Dominant(), CauseBSRetry)
	}
}

func TestEmptyAnalysis(t *testing.T) {
	an := AnalyzeEvents(nil)
	if an.Txs != 0 || len(an.Path) != 0 {
		t.Errorf("empty analysis = %+v", an)
	}
	var buf bytes.Buffer
	an.Render(&buf, 3) // must not panic
	if r := Diff(an, an, DefaultThresholds); r.Regressions != 0 {
		t.Errorf("empty self-diff regressions = %d", r.Regressions)
	}
}

// TestDisciplineBlame: epoch markers label the discipline in force;
// waits aggregate under the label active when the transaction ran,
// and split-mode queued data tenures count against it too.
func TestDisciplineBlame(t *testing.T) {
	events := []obs.Event{
		{Seq: 0, Kind: obs.KindEpoch, Proc: -1, Cause: "fcfs"},
		tx(1, 0, 400, 0, 1, 0),
		func() obs.Event { e := tx(2, 400, 300, 1, 2, 0); e.ArbNS = 400; return e }(),
		{Seq: 3, TS: 700, Kind: obs.KindEpoch, Proc: -1, Cause: "rr"},
		func() obs.Event { e := tx(4, 700, 300, 0, 3, 0); e.ArbNS = 150; return e }(),
		{Seq: 5, TS: 1000, Dur: 64, Kind: obs.KindData, Proc: 1, TxID: 4, CauseID: 3},
	}
	an := AnalyzeEvents(events)
	if len(an.ByDiscipline) != 2 {
		t.Fatalf("ByDiscipline = %+v, want 2 rows", an.ByDiscipline)
	}
	// Sorted by wait descending: fcfs (400) before rr (150).
	fcfs, rr := an.ByDiscipline[0], an.ByDiscipline[1]
	if fcfs.Discipline != "fcfs" || fcfs.Txs != 2 || fcfs.WaitNS != 400 || fcfs.MaxWaitNS != 400 {
		t.Errorf("fcfs row = %+v, want txs 2 wait 400 max 400", fcfs)
	}
	if rr.Discipline != "rr" || rr.Txs != 1 || rr.WaitNS != 150 || rr.QueuedData != 1 {
		t.Errorf("rr row = %+v, want txs 1 wait 150 queued 1", rr)
	}
	if got, want := fcfs.Share, 400.0/550.0; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("fcfs share = %v, want %v", got, want)
	}

	var buf bytes.Buffer
	an.Render(&buf, 0)
	out := buf.String()
	if !strings.Contains(out, "arb-wait blame by arbitration discipline") {
		t.Errorf("render missing discipline table:\n%s", out)
	}
	if !strings.Contains(out, "fcfs") || !strings.Contains(out, "rr") {
		t.Errorf("render missing discipline rows:\n%s", out)
	}
}

// TestDisciplineBlameUnlabelled: traces recorded before the epoch
// marker carried a discipline label must analyze and render exactly as
// before — no table, no by_discipline key in the JSON.
func TestDisciplineBlameUnlabelled(t *testing.T) {
	events := []obs.Event{
		{Seq: 0, Kind: obs.KindEpoch, Proc: -1}, // pre-label marker: empty Cause
		tx(1, 0, 400, 0, 1, 0),
		func() obs.Event { e := tx(2, 400, 300, 1, 2, 0); e.ArbNS = 400; return e }(),
	}
	an := AnalyzeEvents(events)
	if len(an.ByDiscipline) != 0 {
		t.Fatalf("ByDiscipline = %+v, want empty on unlabelled trace", an.ByDiscipline)
	}
	var buf bytes.Buffer
	an.Render(&buf, 0)
	if strings.Contains(buf.String(), "discipline") {
		t.Errorf("unlabelled render grew a discipline table:\n%s", buf.String())
	}
	blob, err := json.Marshal(an)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), "by_discipline") {
		t.Errorf("unlabelled analysis JSON carries by_discipline: %s", blob)
	}
}
