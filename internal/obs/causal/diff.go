package causal

import (
	"fmt"
	"io"

	"futurebus/internal/obs/regress"
)

// Thresholds decide when a cost increase counts as a regression. Both
// gates must trip: the relative growth must exceed Rel AND the absolute
// growth must exceed Abs (so tiny baselines don't scream over noise).
// A category absent from the baseline regresses when it appears with
// more than Abs nanoseconds. The decision itself lives in
// internal/obs/regress, shared with every other gate in the tree.
type Thresholds struct {
	Rel float64 `json:"rel"` // e.g. 0.10 = 10%
	Abs int64   `json:"abs"` // nanoseconds
}

// DefaultThresholds is the fbcausal / CI default: 10% and 1µs of
// simulated time.
var DefaultThresholds = Thresholds{Rel: 0.10, Abs: 1000}

// DiffRow compares one metric across two runs.
type DiffRow struct {
	Name       string  `json:"name"`
	Old        int64   `json:"old"`
	New        int64   `json:"new"`
	Delta      int64   `json:"delta"`
	Rel        float64 `json:"rel"` // Delta/Old (0 when Old is 0)
	Regression bool    `json:"regression"`
}

func (t Thresholds) row(name string, oldV, newV int64) DiffRow {
	r := DiffRow{Name: name, Old: oldV, New: newV, Delta: newV - oldV}
	if oldV != 0 {
		r.Rel = float64(r.Delta) / float64(oldV)
	}
	shared := regress.Thresholds{Rel: t.Rel, Abs: float64(t.Abs)}
	r.Regression = shared.Breached(float64(oldV), float64(r.Delta))
	return r
}

// DiffReport is a per-phase / per-cause comparison of two analyses.
type DiffReport struct {
	Thresholds Thresholds `json:"thresholds"`
	// Totals compares elapsed time, total cost, total wait and the
	// critical-path cost; Causes and Phases compare the attribution
	// tables.
	Totals      []DiffRow `json:"totals"`
	Causes      []DiffRow `json:"causes"`
	Phases      []DiffRow `json:"phases"`
	Regressions int       `json:"regressions"`
}

// Diff compares a baseline analysis (old) against a candidate (new).
func Diff(oldA, newA *Analysis, th Thresholds) *DiffReport {
	r := &DiffReport{Thresholds: th}
	add := func(dst *[]DiffRow, row DiffRow) {
		*dst = append(*dst, row)
		if row.Regression {
			r.Regressions++
		}
	}
	add(&r.Totals, th.row("elapsed", oldA.Elapsed, newA.Elapsed))
	add(&r.Totals, th.row("total-cost", oldA.TotalCost, newA.TotalCost))
	add(&r.Totals, th.row("total-wait", oldA.TotalWait, newA.TotalWait))
	add(&r.Totals, th.row("critical-path", oldA.PathCost, newA.PathCost))
	for i, name := range Causes {
		add(&r.Causes, th.row(name, oldA.ByCause[i], newA.ByCause[i]))
	}
	for name := range oldA.ByPhase {
		add(&r.Phases, th.row(name, oldA.ByPhase[name], newA.ByPhase[name]))
	}
	for name := range newA.ByPhase {
		if _, ok := oldA.ByPhase[name]; !ok {
			add(&r.Phases, th.row(name, 0, newA.ByPhase[name]))
		}
	}
	sortRows(r.Phases)
	return r
}

func sortRows(rows []DiffRow) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].Name < rows[j-1].Name; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

// Render writes the report as an aligned text table.
func (r *DiffReport) Render(w io.Writer) {
	fmt.Fprintf(w, "thresholds: rel>%.0f%% and abs>%dns\n", r.Thresholds.Rel*100, r.Thresholds.Abs)
	renderRows(w, "totals", r.Totals)
	renderRows(w, "by cause", r.Causes)
	renderRows(w, "by phase", r.Phases)
	if r.Regressions == 0 {
		fmt.Fprintf(w, "\nno regressions\n")
	} else {
		fmt.Fprintf(w, "\n%d regression(s)\n", r.Regressions)
	}
}

func renderRows(w io.Writer, title string, rows []DiffRow) {
	fmt.Fprintf(w, "\n%s\n", title)
	fmt.Fprintf(w, "  %-14s %14s %14s %+14s %8s\n", "metric", "old(ns)", "new(ns)", "delta", "rel")
	for _, row := range rows {
		mark := ""
		if row.Regression {
			mark = "  << REGRESSION"
		}
		fmt.Fprintf(w, "  %-14s %14d %14d %+14d %7.1f%%%s\n",
			row.Name, row.Old, row.New, row.Delta, row.Rel*100, mark)
	}
}
