// Package causal reconstructs the dependency structure of a recorded
// simulation run and extracts its critical path.
//
// The event stream (live from an obs.Recorder, or replayed from a .fbt
// trace) is folded into one node per bus transaction, joined on the
// arbiter-allocated TxIDs. Three kinds of edges give the DAG:
//
//   - program order: a board's transactions execute in sequence;
//   - blocking mastership: a transaction that waited for the bus
//     (KindGrant with non-zero Dur in the concurrent engine, KindBlocked
//     in the deterministic engine) depends on the transaction that held
//     the bus while it waited;
//   - BS recovery: a Busy-abort forces the owning cache to push its
//     line as a nested transaction before the master retries (§3.2.2),
//     so the retried transaction depends on every recovery push made on
//     its behalf.
//
// Walking the DAG backwards from the last-finishing transaction yields
// the critical path — the chain of dependencies that bounds the run —
// and each node's cost decomposes into blame categories (see Causes)
// mapped from the bus phase model.
package causal

import (
	"encoding/json"
	"sort"

	"futurebus/internal/obs"
)

// Blame categories. The first five mirror the bus phase decomposition
// (bus.PhaseCosts / the Table 2 cost model); bs-retry additionally
// absorbs the whole cost of BS recovery pushes, which the phase view
// accounts as ordinary transactions of the owning board.
const (
	CauseArbWait      = "arb-wait"     // waiting for mastership (not occupancy)
	CauseAddr         = "addr"         // broadcast address handshake
	CauseData         = "data"         // data beats
	CauseIntervention = "intervention" // cache-to-cache first word
	CauseMemory       = "memory"       // memory first word
	CauseBSRetry      = "bs-retry"     // BS aborts: wasted address cycles + recovery pushes
)

// NumCauses is the number of blame categories.
const NumCauses = 6

// Causes lists the blame categories in canonical (render) order.
var Causes = [NumCauses]string{
	CauseArbWait, CauseAddr, CauseData, CauseIntervention, CauseMemory, CauseBSRetry,
}

// CauseVec is a cost vector indexed in Causes order (nanoseconds).
type CauseVec [NumCauses]int64

// Add accumulates another vector.
func (v *CauseVec) Add(o CauseVec) {
	for i := range v {
		v[i] += o[i]
	}
}

// Total sums all categories.
func (v CauseVec) Total() int64 {
	var t int64
	for _, x := range v {
		t += x
	}
	return t
}

// Dominant returns the largest category's name ("" if the vector is
// zero). Ties resolve to the earlier Causes entry.
func (v CauseVec) Dominant() string {
	best, idx := int64(0), -1
	for i, x := range v {
		if x > best {
			best, idx = x, i
		}
	}
	if idx < 0 {
		return ""
	}
	return Causes[idx]
}

// MarshalJSON renders the vector as an object keyed by cause name,
// omitting zero categories.
func (v CauseVec) MarshalJSON() ([]byte, error) {
	m := make(map[string]int64, NumCauses)
	for i, x := range v {
		if x != 0 {
			m[Causes[i]] = x
		}
	}
	return json.Marshal(m)
}

// UnmarshalJSON parses the object form produced by MarshalJSON.
func (v *CauseVec) UnmarshalJSON(data []byte) error {
	var m map[string]int64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*v = CauseVec{}
	for i, name := range Causes {
		v[i] = m[name]
	}
	return nil
}

// TxNode is one reconstructed bus transaction.
type TxNode struct {
	TxID uint64 `json:"txid"`
	Proc int    `json:"proc"`
	Bus  int    `json:"bus"`
	Addr uint64 `json:"addr"`
	Col  int    `json:"col"`
	Op   string `json:"op,omitempty"`
	// Start/End span the transaction's bus occupancy on the recorder's
	// occupancy clock (End - Start == Dur, exclusive of waiting).
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	Dur   int64 `json:"dur"`
	// Wait is time spent waiting for the bus before this mastership:
	// measured arbitration wait (concurrent engine) plus deferred
	// timeline wait (deterministic engine's KindBlocked).
	Wait    int64 `json:"wait,omitempty"`
	Retries int   `json:"retries,omitempty"`
	// BlockedBy is the TxID that occupied the bus while this master
	// waited (0 = none recorded).
	BlockedBy uint64 `json:"blocked_by,omitempty"`
	// RecoveredFor, when non-zero, marks this transaction as a BS
	// recovery push on behalf of the named aborted transaction.
	RecoveredFor uint64 `json:"recovered_for,omitempty"`
	// Phases is the raw bus-phase decomposition in obs.PhaseNames order.
	Phases [obs.NumPhases]int64 `json:"-"`
	// ByCause is the node's blame decomposition: Wait → arb-wait,
	// phases → their categories, and a recovery push's entire Dur →
	// bs-retry (the push only exists because of the abort).
	ByCause CauseVec `json:"by_cause"`
	// Disc is the arbitration discipline in force when this transaction
	// ran (from the enclosing KindEpoch marker; "" on traces recorded
	// before the marker carried it). Aggregated into
	// Analysis.ByDiscipline rather than serialized per node.
	Disc string `json:"-"`
}

// causes derives the blame vector from the node's identity and phases.
func (n *TxNode) causes() CauseVec {
	var v CauseVec
	v[0] = n.Wait
	if n.RecoveredFor != 0 {
		v[5] += n.Dur
		return v
	}
	v[1] = n.Phases[obs.PhaseAddr]
	v[2] = n.Phases[obs.PhaseData]
	v[3] = n.Phases[obs.PhaseIntervention]
	v[4] = n.Phases[obs.PhaseMemory]
	v[5] = n.Phases[obs.PhaseRetry]
	return v
}

// Analyzer is an obs.Sink that folds the event stream into TxNodes.
// Feed it live (Recorder sink) or offline (obs.ReplayTrace), then call
// Analyze. The zero value is ready to use.
type Analyzer struct {
	// Limit bounds the number of transactions retained (0 = DefaultLimit).
	// Past the limit further transactions are counted but not stored.
	Limit int

	txs      []TxNode
	byID     map[uint64]int    // TxID → index in txs
	grants   map[uint64]uint64 // TxID → blocking TxID (from KindGrant)
	blocked  map[int]blockedWait
	aborts   map[uint64]int // TxID → abort count seen
	overflow int64
	// disc is the arbitration discipline named by the most recent
	// KindEpoch marker; queuedData counts split-mode data tenures that
	// queued behind another (KindData with a cause edge), per label.
	disc       string
	queuedData map[string]int
}

type blockedWait struct {
	dur     int64
	blocker uint64
}

// DefaultLimit bounds retained transactions when Analyzer.Limit is 0.
const DefaultLimit = 1 << 20

// Consume implements obs.Sink.
func (a *Analyzer) Consume(e *obs.Event) {
	switch e.Kind {
	case obs.KindEpoch:
		a.disc = e.Cause
	case obs.KindData:
		if e.CauseID != 0 {
			if a.queuedData == nil {
				a.queuedData = make(map[string]int)
			}
			a.queuedData[a.disc]++
		}
	case obs.KindGrant:
		if e.TxID != 0 && e.Dur > 0 && e.CauseID != 0 {
			if a.grants == nil {
				a.grants = make(map[uint64]uint64)
			}
			if len(a.grants) < a.limit() {
				a.grants[e.TxID] = e.CauseID
			}
		}
	case obs.KindBlocked:
		if a.blocked == nil {
			a.blocked = make(map[int]blockedWait)
		}
		w := a.blocked[e.Proc]
		w.dur += e.Dur
		if e.CauseID != 0 {
			w.blocker = e.CauseID
		}
		a.blocked[e.Proc] = w
	case obs.KindAbort:
		if e.TxID != 0 {
			if a.aborts == nil {
				a.aborts = make(map[uint64]int)
			}
			if len(a.aborts) < a.limit() || a.aborts[e.TxID] > 0 {
				a.aborts[e.TxID]++
			}
		}
	case obs.KindTx:
		if len(a.txs) >= a.limit() {
			a.overflow++
			return
		}
		n := TxNode{
			TxID: e.TxID, Proc: e.Proc, Bus: e.Bus, Addr: e.Addr,
			Col: e.Col, Op: e.Op,
			Start: e.TS, End: e.TS + e.Dur, Dur: e.Dur,
			Wait: e.ArbNS, Retries: e.Retries,
			RecoveredFor: e.CauseID,
			Disc:         a.disc,
		}
		n.Phases = [obs.NumPhases]int64{
			e.ArbNS, e.AddrNS, e.DataNS, e.IntvNS, e.MemNS, e.RetryNS,
		}
		if b, ok := a.grants[e.TxID]; ok {
			n.BlockedBy = b
			delete(a.grants, e.TxID)
		}
		if w, ok := a.blocked[e.Proc]; ok {
			n.Wait += w.dur
			if n.BlockedBy == 0 {
				n.BlockedBy = w.blocker
			}
			delete(a.blocked, e.Proc)
		}
		n.ByCause = n.causes()
		if a.byID == nil {
			a.byID = make(map[uint64]int)
		}
		if n.TxID != 0 {
			a.byID[n.TxID] = len(a.txs)
		}
		a.txs = append(a.txs, n)
	}
}

// Flush implements obs.Sink (no buffering).
func (a *Analyzer) Flush() error { return nil }

func (a *Analyzer) limit() int {
	if a.Limit > 0 {
		return a.Limit
	}
	return DefaultLimit
}

// Overflow reports how many transactions were discarded past Limit.
func (a *Analyzer) Overflow() int64 { return a.overflow }

// AnalyzeEvents runs a one-shot analysis over an in-memory event slice.
func AnalyzeEvents(events []obs.Event) *Analysis {
	var a Analyzer
	for i := range events {
		a.Consume(&events[i])
	}
	return a.Analyze()
}

// Segment is one step of the critical path, in execution order.
type Segment struct {
	TxNode
	// Via names the dependency edge that put this node on the path:
	// "start" (first node), "program" (same board's previous
	// transaction), "arb-wait" (blocking mastership) or "bs-retry"
	// (recovery push chain).
	Via string `json:"via"`
}

// BoardBlame aggregates per-board cost attribution.
type BoardBlame struct {
	Proc    int      `json:"proc"`
	Txs     int      `json:"txs"`
	Cost    int64    `json:"cost_ns"` // bus occupancy of this board's transactions
	Wait    int64    `json:"wait_ns"`
	Retries int      `json:"retries"`
	ByCause CauseVec `json:"by_cause"`
}

// DisciplineBlame aggregates arbitration-wait blame under one
// arbitration discipline. A trace can carry several (a sweep records
// one system per discipline on a shared recorder), and the table makes
// their fairness cost directly comparable.
type DisciplineBlame struct {
	Discipline string `json:"discipline"`
	Txs        int    `json:"txs"`
	WaitNS     int64  `json:"wait_ns"`
	MaxWaitNS  int64  `json:"max_wait_ns"`
	// Share is this discipline's fraction of the run's total
	// mastership wait.
	Share float64 `json:"wait_share"`
	// QueuedData counts split-mode data tenures that queued behind
	// another pending response (the pending-wait causal edge) while
	// this discipline was in force.
	QueuedData int `json:"queued_data_tenures,omitempty"`
}

// Analysis is the result of reconstructing one run.
type Analysis struct {
	// Txs counts reconstructed transactions (Truncated more were seen
	// but discarded past the analyzer's limit).
	Txs       int   `json:"txs"`
	Truncated int64 `json:"truncated,omitempty"`
	// Elapsed is the occupancy-clock end of the last transaction;
	// TotalCost the summed bus occupancy; TotalWait the summed
	// mastership waits (waiting overlaps occupancy, so it is reported
	// separately, as in bus.PhaseCosts).
	Elapsed   int64 `json:"elapsed_ns"`
	TotalCost int64 `json:"total_cost_ns"`
	TotalWait int64 `json:"total_wait_ns"`
	Aborts    int   `json:"aborts"`
	// ByCause and ByPhase attribute the whole run's cost: ByPhase is
	// the raw bus-phase view, ByCause reclassifies recovery pushes to
	// bs-retry and includes wait time.
	ByCause CauseVec         `json:"by_cause"`
	ByPhase map[string]int64 `json:"by_phase"`
	Boards  []BoardBlame     `json:"boards"`
	// ByDiscipline attributes mastership waits to the arbitration
	// discipline in force, sorted by wait descending. Empty (and
	// omitted from JSON) on traces whose epoch markers carry no
	// discipline label, so pre-label recordings render unchanged.
	ByDiscipline []DisciplineBlame `json:"by_discipline,omitempty"`
	// Path is the critical path in execution order; PathByCause its
	// blame decomposition; PathCost its summed cost (occupancy + wait).
	Path        []Segment `json:"path"`
	PathCost    int64     `json:"path_cost_ns"`
	PathByCause CauseVec  `json:"path_by_cause"`
}

// Analyze reconstructs the DAG and extracts the critical path from the
// transactions consumed so far. It may be called repeatedly (e.g. from
// a live HTTP endpoint); each call recomputes from the current nodes.
func (a *Analyzer) Analyze() *Analysis {
	an := &Analysis{
		Txs:       len(a.txs),
		Truncated: a.overflow,
		ByPhase:   make(map[string]int64, obs.NumPhases),
	}
	if len(a.txs) == 0 {
		return an
	}

	boards := make(map[int]*BoardBlame)
	discs := make(map[string]*DisciplineBlame)
	// prev[proc] is the index of the board's previous transaction, for
	// program-order edges.
	prev := make(map[int]int)
	prevIdx := make([]int, len(a.txs))
	last := 0
	for i := range a.txs {
		n := &a.txs[i]
		if n.End > an.Elapsed {
			an.Elapsed = n.End
			last = i
		}
		an.TotalCost += n.Dur
		an.TotalWait += n.Wait
		an.Aborts += n.Retries
		an.ByCause.Add(n.ByCause)
		for p := 0; p < obs.NumPhases; p++ {
			an.ByPhase[obs.PhaseNames[p]] += n.Phases[p]
		}
		b := boards[n.Proc]
		if b == nil {
			b = &BoardBlame{Proc: n.Proc}
			boards[n.Proc] = b
		}
		b.Txs++
		b.Cost += n.Dur
		b.Wait += n.Wait
		b.Retries += n.Retries
		b.ByCause.Add(n.ByCause)
		if n.Disc != "" {
			d := discs[n.Disc]
			if d == nil {
				d = &DisciplineBlame{Discipline: n.Disc}
				discs[n.Disc] = d
			}
			d.Txs++
			d.WaitNS += n.Wait
			if n.Wait > d.MaxWaitNS {
				d.MaxWaitNS = n.Wait
			}
		}
		if j, ok := prev[n.Proc]; ok {
			prevIdx[i] = j
		} else {
			prevIdx[i] = -1
		}
		prev[n.Proc] = i
	}
	for _, b := range boards {
		an.Boards = append(an.Boards, *b)
	}
	sort.Slice(an.Boards, func(i, j int) bool { return an.Boards[i].Proc < an.Boards[j].Proc })

	// Fold in split-mode queue pressure and compute wait shares. A
	// label with queued tenures but no retained transactions (all past
	// the limit) still earns a row — the queue pressure happened.
	for label, n := range a.queuedData {
		if label == "" {
			continue
		}
		d := discs[label]
		if d == nil {
			d = &DisciplineBlame{Discipline: label}
			discs[label] = d
		}
		d.QueuedData = n
	}
	for _, d := range discs {
		if an.TotalWait > 0 {
			d.Share = float64(d.WaitNS) / float64(an.TotalWait)
		}
		an.ByDiscipline = append(an.ByDiscipline, *d)
	}
	sort.Slice(an.ByDiscipline, func(i, j int) bool {
		if an.ByDiscipline[i].WaitNS != an.ByDiscipline[j].WaitNS {
			return an.ByDiscipline[i].WaitNS > an.ByDiscipline[j].WaitNS
		}
		return an.ByDiscipline[i].Discipline < an.ByDiscipline[j].Discipline
	})

	an.Path = a.criticalPath(last, prevIdx)
	for _, s := range an.Path {
		an.PathByCause.Add(s.ByCause)
		an.PathCost += s.Dur + s.Wait
	}
	an.PathCost = min64(an.PathCost, an.Elapsed)
	return an
}

// criticalPath walks dependency edges backwards from the last-finishing
// node. At each node the binding predecessor is the dependency that
// finished latest — that is the chain the node actually waited on:
//
//   - the latest recovery push made on this transaction's behalf
//     (bs-retry edge, for aborted-and-retried transactions);
//   - the transaction it was blocked behind (arb-wait edge);
//   - the same board's previous transaction (program-order edge).
//
// Ties prefer the more specific edge (bs-retry over arb-wait over
// program order). The walk is bounded by the node count and only steps
// to strictly earlier-finishing nodes, so malformed traces cannot loop.
func (a *Analyzer) criticalPath(last int, prevIdx []int) []Segment {
	// pushes[txid] = latest-ending recovery push made for txid.
	pushes := make(map[uint64]int)
	for i := range a.txs {
		n := &a.txs[i]
		if n.RecoveredFor == 0 {
			continue
		}
		if j, ok := pushes[n.RecoveredFor]; !ok || n.End > a.txs[j].End {
			pushes[n.RecoveredFor] = i
		}
	}

	var rev []Segment
	cur := last
	for steps := 0; steps <= len(a.txs); steps++ {
		n := &a.txs[cur]
		rev = append(rev, Segment{TxNode: *n})

		next, nextVia := -1, ""
		consider := func(idx int, v string) {
			if idx < 0 || idx == cur {
				return
			}
			c := &a.txs[idx]
			if c.End > n.End || (c.End == n.End && c.Start >= n.Start) {
				return // not strictly earlier: refuse to loop
			}
			if next < 0 || c.End >= a.txs[next].End {
				next, nextVia = idx, v
			}
		}
		// Order encodes tie preference: a later consider call wins End
		// ties, so the more specific edge is tried last.
		consider(prevIdx[cur], "program")
		if n.BlockedBy != 0 {
			if idx, ok := a.byID[n.BlockedBy]; ok {
				consider(idx, CauseArbWait)
			}
		}
		if n.TxID != 0 {
			if idx, ok := pushes[n.TxID]; ok {
				consider(idx, CauseBSRetry)
			}
		}
		if next < 0 {
			break
		}
		// The edge pred→n is n's incoming dependency: label n with it.
		rev[len(rev)-1].Via = nextVia
		cur = next
	}

	// Reverse into execution order; the earliest node has no incoming
	// edge.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	rev[0].Via = "start"
	return rev
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
