package causal

import (
	"sort"

	"futurebus/internal/obs"
)

// Canonicalize rewrites an event stream into a scheduler-independent
// normal form so two recordings of the same logical run compare equal.
//
// The concurrent engine's goroutines race for the FIFO arbiter, so two
// same-seed runs interleave differently: global sequence numbers,
// occupancy timestamps, arbitration waits and TxIDs all differ even
// when every board performed the identical transaction sequence.
// Canonicalize keeps exactly the per-board program-order facts:
//
//   - only KindTx events survive (grants, waits and instants are
//     interleaving artifacts);
//   - events sort by (Proc, Seq) — each board's own emission order is
//     its program order;
//   - timestamps are re-derived as each board's cumulative occupancy,
//     and the arbitration-wait field (pure interleaving) is zeroed;
//   - Seq, TxID are renumbered densely in canonical order, and CauseID
//     is remapped through the same table (unknown references drop to 0).
//
// The result is a valid event stream: feed it to AnalyzeEvents (or any
// sink) to get a canonical Analysis whose critical path is comparable
// across runs.
func Canonicalize(events []obs.Event) []obs.Event {
	out := make([]obs.Event, 0, len(events))
	for i := range events {
		if events[i].Kind == obs.KindTx {
			out = append(out, events[i])
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		return out[i].Seq < out[j].Seq
	})

	remap := make(map[uint64]uint64, len(out))
	for i := range out {
		if out[i].TxID != 0 {
			remap[out[i].TxID] = uint64(i + 1)
		}
	}
	clock := make(map[int]int64)
	for i := range out {
		e := &out[i]
		e.Seq = uint64(i)
		e.TS = clock[e.Proc]
		clock[e.Proc] += e.Dur
		e.ArbNS = 0
		e.TxID = remap[e.TxID]
		e.CauseID = remap[e.CauseID]
	}
	return out
}
