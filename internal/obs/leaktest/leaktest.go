// Package leaktest asserts that a test leaves no goroutines behind —
// the proof that a Recorder's drain goroutine and an HTTP server's
// accept/handler goroutines actually shut down. Call Check at the top
// of a test; at cleanup it diffs the live goroutine multiset against
// the snapshot, retrying briefly so goroutines already unwinding are
// not reported.
package leaktest

import (
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// Check snapshots the interesting goroutines and registers a cleanup
// that fails t if new ones are still alive at the end of the test.
func Check(t testing.TB) {
	t.Helper()
	before := snapshot()
	t.Cleanup(func() {
		// Goroutines that were signalled to stop may still be
		// unwinding; give them a grace period before declaring a leak.
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = leaked[:0]
			for stack, n := range snapshot() {
				for extra := n - before[stack]; extra > 0; extra-- {
					leaked = append(leaked, stack)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		sort.Strings(leaked)
		t.Errorf("leaktest: %d goroutine(s) leaked:\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// snapshot returns the multiset of live goroutine stacks, keyed by the
// trace with the "goroutine N [state]:" header dropped (ids and
// scheduler states are noise; what must return to baseline is the set
// of creation sites and running frames).
func snapshot() map[string]int {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	out := make(map[string]int)
	for _, g := range strings.Split(string(buf), "\n\n") {
		if nl := strings.IndexByte(g, '\n'); nl >= 0 {
			g = g[nl+1:]
		}
		g = strings.TrimRight(g, "\n")
		if boring(g) {
			continue
		}
		out[g]++
	}
	return out
}

// boring reports headerless stacks owned by the runtime or the testing
// harness rather than code under test.
func boring(stack string) bool {
	if strings.TrimSpace(stack) == "" {
		return true
	}
	for _, prefix := range []string{
		"testing.", "runtime.", "os/signal.", "runtime/trace.",
	} {
		if strings.HasPrefix(stack, prefix) {
			return true
		}
	}
	return strings.Contains(stack, "created by runtime.") ||
		strings.Contains(stack, "created by testing.")
}
