package obs

import (
	"runtime"
	"sync"
	"testing"

	"futurebus/internal/obs/leaktest"
)

// txEvent builds a KindTx event with a phase breakdown whose occupancy
// phases sum to dur.
func txEvent(seq uint64, proc int, dur, arb, addr, data, intv, mem, retry int64) *Event {
	return &Event{
		Seq: seq, Kind: KindTx, Proc: proc, Dur: dur, Op: "R", Col: 6,
		ArbNS: arb, AddrNS: addr, DataNS: data, IntvNS: intv, MemNS: mem, RetryNS: retry,
	}
}

// TestSpanFromEvent: only tx events reconstruct, and the phase fields
// land in the right slots.
func TestSpanFromEvent(t *testing.T) {
	if _, ok := SpanFromEvent(&Event{Kind: KindState}); ok {
		t.Error("state event produced a span")
	}
	span, ok := SpanFromEvent(txEvent(7, 3, 645, 50, 125, 320, 0, 200, 0))
	if !ok {
		t.Fatal("tx event did not produce a span")
	}
	if span.Seq != 7 || span.Proc != 3 || span.Dur != 645 {
		t.Errorf("span header: %+v", span)
	}
	want := [NumPhases]int64{PhaseArb: 50, PhaseAddr: 125, PhaseData: 320, PhaseMemory: 200}
	if span.Phases != want {
		t.Errorf("phases = %v, want %v", span.Phases, want)
	}
	var sum int64
	for ph := PhaseAddr; ph < NumPhases; ph++ {
		sum += span.Phases[ph]
	}
	if sum != span.Dur {
		t.Errorf("occupancy phases sum to %d, dur is %d", sum, span.Dur)
	}
}

// TestAttributionSink: histograms, per-proc attribution and the top-K
// ring all see the same stream.
func TestAttributionSink(t *testing.T) {
	a := NewAttributionSink(2)
	a.SetProcLabel(0, "moesi")
	a.SetProcLabel(1, "dragon")
	a.Consume(txEvent(1, 0, 645, 0, 125, 320, 0, 200, 0))
	a.Consume(txEvent(2, 0, 770, 50, 125, 320, 0, 200, 125))
	a.Consume(txEvent(3, 1, 565, 10, 125, 320, 120, 0, 0))
	a.Consume(&Event{Kind: KindStall, Dur: 999}) // ignored

	sums := a.PhaseSummaries()
	if sums["addr"].Count != 3 || sums["addr"].Max != 125 {
		t.Errorf("addr summary: %+v", sums["addr"])
	}
	// Arb is observed for every tx (zero wait is a real sample)...
	if sums["arb"].Count != 3 || sums["arb"].Max != 50 {
		t.Errorf("arb summary: %+v", sums["arb"])
	}
	// ...but intervention/memory/retry only when they happened.
	if sums["intervention"].Count != 1 || sums["memory"].Count != 2 || sums["retry"].Count != 1 {
		t.Errorf("conditional phases: intv=%+v mem=%+v retry=%+v",
			sums["intervention"], sums["memory"], sums["retry"])
	}

	rep := a.Report()
	if len(rep.Procs) != 2 || rep.Procs[0].Proc != 0 || rep.Procs[0].Tx != 2 {
		t.Fatalf("procs: %+v", rep.Procs)
	}
	if rep.Procs[0].Label != "moesi" || rep.Procs[1].Label != "dragon" {
		t.Errorf("labels: %+v", rep.Procs)
	}
	if got := rep.Procs[0].Phases[PhaseRetry]; got != 125 {
		t.Errorf("proc 0 retry attribution = %d", got)
	}
	if rep.PhasesByLabel["dragon"]["intervention"].Count != 1 {
		t.Errorf("per-label histograms: %+v", rep.PhasesByLabel)
	}

	// Top-K keeps the 2 slowest of the 3, slowest first.
	slow := a.Slowest()
	if len(slow) != 2 || slow[0].Dur != 770 || slow[1].Dur != 645 {
		t.Errorf("slowest: %+v", slow)
	}
	if slow[0].Phases[PhaseRetry] != 125 {
		t.Errorf("slow span lost its breakdown: %+v", slow[0])
	}

	arb, transfer := a.ArbVsTransfer()
	if arb != 60 || transfer != 320*3+120+400 {
		t.Errorf("arb/transfer = %d/%d", arb, transfer)
	}
}

// TestAttributionFind: FindAttribution locates the sink on a recorder.
func TestAttributionFind(t *testing.T) {
	leaktest.Check(t)
	a := NewAttributionSink(0)
	rec := New(NewHistogramSink(), a)
	if FindAttribution(rec) != a {
		t.Error("attribution sink not found")
	}
	rec.Emit(*txEvent(1, 0, 645, 0, 125, 320, 0, 200, 0))
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if got := a.PhaseSummaries()["addr"].Count; got != 1 {
		t.Errorf("drained tx count = %d", got)
	}
	if FindAttribution(nil) != nil {
		t.Error("nil recorder has an attribution sink")
	}
}

// TestRecorderDropped: emits after Close are counted, not silently
// lost, and the drain goroutine is provably gone.
func TestRecorderDropped(t *testing.T) {
	leaktest.Check(t)
	var got int
	rec := NewSized(16, SinkFunc(func(*Event) { got++ }))
	rec.Emit(Event{Kind: KindTx})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if rec.Dropped() != 0 {
		t.Errorf("dropped before close = %d", rec.Dropped())
	}
	rec.Emit(Event{Kind: KindTx})
	rec.Emit(Event{Kind: KindStall})
	if rec.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", rec.Dropped())
	}
	if got != 1 {
		t.Errorf("delivered = %d, want 1", got)
	}
	var nilRec *Recorder
	if nilRec.Dropped() != 0 {
		t.Error("nil recorder dropped != 0")
	}
}

// TestRingConcurrentWraparound: many producers against one consumer on
// a tiny ring, forcing constant wraparound; every pushed event is
// popped exactly once with per-producer FIFO order intact. Run with
// -race this doubles as the memory-model check on the Vyukov slots.
func TestRingConcurrentWraparound(t *testing.T) {
	const producers, each = 8, 5000
	r := newRing(8) // tiny: wraps ~producers*each/8 times
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				e := Event{Proc: p, Addr: uint64(i)}
				for !r.push(&e) {
					runtime.Gosched() // full: wait for the consumer
				}
			}
		}(p)
	}

	lastPerProc := make([]int, producers)
	for i := range lastPerProc {
		lastPerProc[i] = -1
	}
	var popped int
	var e Event
	for popped < producers*each {
		if !r.pop(&e) {
			runtime.Gosched()
			continue
		}
		popped++
		if int(e.Addr) != lastPerProc[e.Proc]+1 {
			t.Fatalf("producer %d: got addr %d after %d", e.Proc, e.Addr, lastPerProc[e.Proc])
		}
		lastPerProc[e.Proc] = int(e.Addr)
	}
	wg.Wait()
	if r.pop(&e) {
		t.Error("ring not empty after draining everything")
	}
}
