// Package obs is the unified event-tracing and metrics layer of the
// simulator. Every substrate — the bus, the caches, memory, the
// engines — emits simulation-timestamped structured Events into a
// Recorder, which moves them through a fixed-size lock-free ring buffer
// (safe to feed from the goroutine-per-processor concurrent engine)
// into pluggable Sinks: a Chrome trace-event exporter for Perfetto, a
// JSONL exporter, a per-line audit trail, and log-bucketed latency
// histograms.
//
// The whole layer is optional: a nil *Recorder is a valid recorder
// whose methods are no-ops, and every instrumentation site guards
// event construction behind a single nil check, so an uninstrumented
// run pays one predictable branch per site.
package obs

// Kind names an event type. Kinds are stable strings so JSONL output
// is self-describing and round-trips without a registry.
type Kind string

const (
	// KindTx is a completed (non-aborted) bus transaction. TS is the
	// simulated begin time, Dur the total bus occupancy including
	// aborted attempts; Col, CH/DI/SL and Retries carry the resolved
	// address-cycle outcome.
	KindTx Kind = "tx"
	// KindGrant marks the arbiter granting mastership for a
	// transaction (the begin of its first address cycle).
	KindGrant Kind = "grant"
	// KindAbort is one BS abort of a transaction attempt; Proc is the
	// aborted master.
	KindAbort Kind = "abort"
	// KindRecover is a BS recovery push: Proc is the owner that
	// asserted BS and is pushing the line to memory.
	KindRecover Kind = "recover"
	// KindState is a cache-line state transition: Proc's copy of Addr
	// moved From→To because of Cause.
	KindState Kind = "state"
	// KindIntervene marks an owning cache supplying read data (DI).
	KindIntervene Kind = "intervene"
	// KindUpdate marks a snooper merging a broadcast write (SL).
	KindUpdate Kind = "update"
	// KindCapture marks an owner capturing a non-broadcast write (DI).
	KindCapture Kind = "capture"
	// KindEvict is a dirty eviction: a replacement pushed an owned
	// line back to memory.
	KindEvict Kind = "evict"
	// KindStall is processor-side: Proc stalled Dur simulated ns on a
	// bus operation it issued for Addr.
	KindStall Kind = "stall"
	// KindBlocked is engine-side: Proc's next bus operation was
	// deferred Dur simulated ns because the bus was occupied; CauseID
	// names the occupying transaction. The deterministic engine emits
	// it (its boards wait on the event timeline, never inside the
	// arbiter), mirroring the arbitration wait the concurrent engine
	// measures on KindGrant.
	KindBlocked Kind = "blocked"
	// KindMemRead / KindMemWrite are main-memory line accesses.
	KindMemRead  Kind = "memread"
	KindMemWrite Kind = "memwrite"
	// KindEpoch marks the assembly of a fresh system on the recorder's
	// stream (every cache starts Invalid again). Sweeps reuse one
	// recorder across many systems; stateful consumers — the runtime
	// invariant monitor — reset their per-line shadow on it so state
	// from a finished system is not misread as the next one's.
	KindEpoch Kind = "epoch"
	// KindPend marks a split-mode transaction entering the pending
	// table: its address tenure ended, memory service proceeds off-bus.
	// Dur (and PendNS) is the off-bus first-word latency.
	KindPend Kind = "pend"
	// KindData is a split-mode data tenure: a pending response won
	// arbitration and retired its transfer beats. TxID is the original
	// transaction; CauseID the tenure it queued behind (pending-wait
	// causal edge); Dur (and DeferNS) the beats.
	KindData Kind = "data"
	// KindNack is a split-mode NACK: a transaction found the pending
	// table full and was charged one retry address cycle (Dur) — the
	// split-mode fold of the BS abort.
	KindNack Kind = "nack"
	// KindRetryExhausted marks a transaction failing with
	// ErrTooManyRetries: BS aborts never quiesced. The runtime monitor
	// folds it into a forward-progress violation; Retries carries the
	// abort count.
	KindRetryExhausted Kind = "retry-exhausted"
)

// Event is one structured observation. The zero value of every field
// except Kind is meaningful ("not applicable"), so emitters fill only
// what they know. Addr is a raw line address (bus.Addr widened) to
// keep obs importable from the bus package itself.
type Event struct {
	// Seq is the global emission order, assigned by the Recorder.
	Seq uint64 `json:"seq"`
	// TS is the simulated timestamp in nanoseconds (the Recorder's
	// clock, advanced by bus occupancy).
	TS int64 `json:"ts"`
	// Dur is a duration in simulated nanoseconds for span-like events
	// (tx cost, stall time); 0 for instants.
	Dur int64 `json:"dur,omitempty"`
	// Kind discriminates the event.
	Kind Kind `json:"kind"`
	// Bus identifies the bus segment (0 for a single-bus system; a
	// hierarchy numbers global=0, clusters 1..N; -1 = not applicable).
	Bus int `json:"bus"`
	// Proc is the board / master / snooper id (-1 = not applicable).
	Proc int `json:"proc"`
	// Addr is the line address.
	Addr uint64 `json:"addr"`
	// Col is the Table 2 event column of a bus transaction (-1 = n/a).
	Col int `json:"col,omitempty"`
	// Op is the data phase of a transaction: "R", "W" or "A".
	Op string `json:"op,omitempty"`
	// From and To are state letters for KindState.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Cause says why a state transition happened. Processor-side causes
	// ("read-hit", "silent-write", "write-hit", "write-upgrade", "fill",
	// "evict-clean", "evict", "push", "bs-recovery") name the local
	// action; snoop-side causes name the Table 2 column that was snooped
	// ("snoop-cache-read" col 5, "snoop-cache-rfo" col 6, "snoop-read"
	// col 7, "snoop-cache-bcast-write" col 8, "snoop-write" col 9,
	// "snoop-bcast-write" col 10, plus "snoop-clean" for CmdClean).
	Cause string `json:"cause,omitempty"`
	// Proto names the protocol governing the line on KindState events,
	// so per-protocol transition matrices survive mixed-protocol runs.
	Proto string `json:"proto,omitempty"`
	// CH, DI, SL are the resolved wired-OR response lines of a tx.
	CH bool `json:"ch,omitempty"`
	DI bool `json:"di,omitempty"`
	SL bool `json:"sl,omitempty"`
	// Retries counts BS abort/retry rounds the transaction suffered.
	Retries int `json:"retries,omitempty"`
	// Bytes is the data-phase payload size.
	Bytes int `json:"bytes,omitempty"`
	// ArbNS..RetryNS decompose a KindTx event's time by bus phase:
	// arbitration wait before the grant, successful broadcast address
	// handshake (including the wired-OR penalty), data beats,
	// cache-to-cache intervention first-word, memory first-word, and
	// BS abort/retry overhead. All but ArbNS sum to Dur; ArbNS is
	// waiting, not occupancy (see bus.PhaseCosts). KindGrant events
	// carry the arbitration wait as Dur.
	ArbNS   int64 `json:"arb_ns,omitempty"`
	AddrNS  int64 `json:"addr_ns,omitempty"`
	DataNS  int64 `json:"data_ns,omitempty"`
	IntvNS  int64 `json:"intv_ns,omitempty"`
	MemNS   int64 `json:"mem_ns,omitempty"`
	RetryNS int64 `json:"retry_ns,omitempty"`
	// PendNS and DeferNS are the split-mode off-bus phases of a KindTx
	// (and the Dur of KindPend / KindData events): memory service spent
	// in the pending table and data-tenure beats retired after the
	// address tenure. Neither is part of Dur — the bus was free.
	PendNS  int64 `json:"pend_ns,omitempty"`
	DeferNS int64 `json:"defer_ns,omitempty"`
	// TxID links the grant, abort, recover and tx events of one
	// mastership (0 = unassigned). IDs are allocated by the arbiter, so
	// they are unique and monotonic across every bus sharing it. Cache
	// events caused by a bus transaction — KindState from a snoop or a
	// master's own fill/upgrade/push, KindIntervene, KindUpdate,
	// KindCapture, KindEvict — carry the causing transaction's TxID, so
	// coherence analysis can group a write with its invalidation/update
	// fan-out (processor-side silent transitions keep TxID 0).
	TxID uint64 `json:"txid,omitempty"`
	// CauseID is a causality edge to another transaction's TxID: on
	// the KindTx of a BS recovery push it names the aborted transaction
	// being recovered for (KindRecover marks recovery starting for its
	// own TxID, and carries the enclosing recovery chain's parent, if
	// any, like KindTx); on KindGrant with non-zero Dur and on
	// KindBlocked it names the transaction that held the bus while this
	// master waited (blocking mastership).
	CauseID uint64 `json:"cause_id,omitempty"`
}
