package obs

import (
	"strings"
	"testing"
)

func TestWarnDroppedCleanRecorder(t *testing.T) {
	rec := New(SinkFunc(func(*Event) {}))
	rec.Emit(Event{Kind: KindTx})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if WarnDropped(&buf, "fbsim", rec) {
		t.Fatalf("clean recorder warned: %q", buf.String())
	}
	if buf.Len() != 0 {
		t.Fatalf("clean recorder wrote output: %q", buf.String())
	}
}

func TestWarnDroppedAfterClose(t *testing.T) {
	rec := New(SinkFunc(func(*Event) {}))
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	rec.Emit(Event{Kind: KindTx})
	rec.Emit(Event{Kind: KindState})
	var buf strings.Builder
	if !WarnDropped(&buf, "fbsweep", rec) {
		t.Fatal("dropped events produced no warning")
	}
	out := buf.String()
	for _, want := range []string{"fbsweep", "2 events", "truncated"} {
		if !strings.Contains(out, want) {
			t.Fatalf("warning %q missing %q", out, want)
		}
	}
}

func TestWarnDroppedNilRecorder(t *testing.T) {
	var buf strings.Builder
	if WarnDropped(&buf, "fbsim", nil) {
		t.Fatal("nil recorder warned")
	}
}
