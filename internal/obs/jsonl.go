package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// JSONLSink streams every event as one JSON object per line — the
// machine-readable firehose for offline analysis (jq, pandas, diffing
// two runs). Unlike the Chrome exporter it does not buffer the run:
// events are written as they drain, so it is usable on runs too large
// to hold in memory.
type JSONLSink struct {
	bw  *bufio.Writer
	err error
}

// NewJSONLSink creates a sink writing one event per line to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{bw: bufio.NewWriter(w)}
}

// Consume implements Sink.
func (s *JSONLSink) Consume(e *Event) {
	if s.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		s.err = err
		return
	}
	b = append(b, '\n')
	if _, err := s.bw.Write(b); err != nil {
		s.err = err
	}
}

// Flush implements Sink.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// ReadJSONL parses a JSONL event stream back into events (the reverse
// of JSONLSink, for round-trip tests and offline tools).
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("obs: jsonl line %d: %w", lineNo, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}
