package obs

import (
	"sync/atomic"
)

// ring is a bounded multi-producer single-consumer queue of Events
// (Vyukov's bounded MPMC algorithm, consumed from one goroutine). Each
// slot carries a sequence word: producers claim a position with a CAS
// on tail, write the event, and publish by storing pos+1 into the
// slot; the consumer reads a slot only once its sequence shows the
// publication, so an enqueue-in-progress never tears.
type ring struct {
	mask  uint64
	slots []slot
	tail  atomic.Uint64 // next enqueue position
	head  atomic.Uint64 // next dequeue position (single consumer)
}

type slot struct {
	seq atomic.Uint64
	ev  Event
}

// newRing creates a ring with capacity rounded up to a power of two.
func newRing(capacity int) *ring {
	n := 1
	for n < capacity {
		n <<= 1
	}
	r := &ring{mask: uint64(n - 1), slots: make([]slot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues ev, returning false when the ring is full.
func (r *ring) push(ev *Event) bool {
	for {
		pos := r.tail.Load()
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch d := int64(seq) - int64(pos); {
		case d == 0:
			if r.tail.CompareAndSwap(pos, pos+1) {
				ev.Seq = pos
				s.ev = *ev
				s.seq.Store(pos + 1)
				return true
			}
		case d < 0:
			return false // full: the consumer has not freed this slot
		}
		// d > 0: another producer claimed pos; reload and retry.
	}
}

// pop dequeues into out, returning false when the ring is empty. Only
// one goroutine may call pop at a time.
func (r *ring) pop(out *Event) bool {
	e := r.peek()
	if e == nil {
		return false
	}
	*out = *e
	r.advance()
	return true
}

// peek returns a pointer to the event at the head without freeing its
// slot, or nil when the ring is empty. The pointee stays valid until
// advance; producers cannot reuse the slot before then. Only the
// consumer goroutine may call peek/advance.
func (r *ring) peek() *Event {
	pos := r.head.Load()
	s := &r.slots[pos&r.mask]
	if int64(s.seq.Load())-int64(pos+1) < 0 {
		return nil
	}
	return &s.ev
}

// advance frees the slot returned by the preceding peek.
func (r *ring) advance() {
	pos := r.head.Load()
	s := &r.slots[pos&r.mask]
	s.seq.Store(pos + r.mask + 1)
	r.head.Store(pos + 1)
}
