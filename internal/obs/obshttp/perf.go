package obshttp

import (
	"fmt"
	"sync/atomic"

	"futurebus/internal/obs"
	"futurebus/internal/obs/perf"
)

// Perf metric families exposed on /metrics when a PerfSink is
// attached. All four latency families are native Prometheus histograms
// (cumulative _bucket/_sum/_count over the log buckets); the queue
// families are gauges per fabric shard.
const (
	MetricArbWaitHist = "futurebus_arb_wait_ns"
	MetricTenureHist  = "futurebus_bus_tenure_ns"
	MetricRetryHist   = "futurebus_retry_backoff_ns"
	MetricMemSvcHist  = "futurebus_mem_service_ns"
	MetricQueueDepth  = "futurebus_arb_queue_depth"
	MetricQueuePeak   = "futurebus_arb_queue_peak"
)

// perfHelp maps the perf.Sink metric names to registry families.
var perfFamilies = []struct {
	metric string // perf.Metric* key
	name   string // registry family
	help   string
}{
	{perf.MetricArbWait, MetricArbWaitHist, "Arbitration wait before a grant in simulated ns (waiting episodes only)."},
	{perf.MetricTenure, MetricTenureHist, "Per-transaction bus tenure (occupancy incl. aborted attempts) in simulated ns."},
	{perf.MetricRetry, MetricRetryHist, "BS abort/retry backoff per suffering transaction in simulated ns."},
	{perf.MetricMemSvc, MetricMemSvcHist, "Memory first-word service time of memory-sourced transactions in simulated ns."},
}

// PerfSink adapts perf.Sink for the live service: Consume runs on the
// recorder's drain goroutine and feeds both the saturation sink (the
// /perf document) and the registry's native histogram metrics; depth
// samples additionally maintain per-shard current/peak queue gauges.
// reg may be nil (no metric export — fbsim -perf without -serve, and
// the overhead benchmark).
type PerfSink struct {
	sink  *perf.Sink
	reg   *Registry
	hists map[string]*HistogramMetric
	depth map[int]*depthGauge
}

// depthGauge backs the per-shard queue gauges: written by the drain
// goroutine, read atomically by the scrape handler.
type depthGauge struct{ cur, peak atomic.Int64 }

// NewPerfSink builds a perf sink exporting to reg (nil = none).
func NewPerfSink(reg *Registry) *PerfSink {
	s := &PerfSink{sink: perf.NewSink(0), reg: reg}
	if reg == nil {
		return s
	}
	s.hists = make(map[string]*HistogramMetric, len(perfFamilies))
	for _, f := range perfFamilies {
		s.hists[f.metric] = reg.Histogram(f.name, "", f.help)
	}
	s.depth = make(map[int]*depthGauge)
	s.sink.SetObservers(
		func(metric string, v int64) {
			if h := s.hists[metric]; h != nil {
				h.Observe(v)
			}
		},
		func(bus int, depth int64) {
			d, ok := s.depth[bus]
			if !ok {
				d = &depthGauge{}
				s.depth[bus] = d
				labels := fmt.Sprintf("bus=%q", fmt.Sprint(bus))
				reg.GaugeFunc(MetricQueueDepth, labels,
					"Arbitration queue depth at the most recent grant, per fabric shard.",
					func() float64 { return float64(d.cur.Load()) })
				reg.GaugeFunc(MetricQueuePeak, labels,
					"Deepest arbitration queue observed, per fabric shard.",
					func() float64 { return float64(d.peak.Load()) })
			}
			d.cur.Store(depth)
			if depth > d.peak.Load() {
				d.peak.Store(depth)
			}
		},
	)
	return s
}

// Consume implements obs.Sink.
func (s *PerfSink) Consume(e *obs.Event) { s.sink.Consume(e) }

// Flush implements obs.Sink.
func (s *PerfSink) Flush() error { return nil }

// PerfSink exposes the wrapped saturation sink (perf.FindSink unwraps
// through this, so engines fill Metrics.Perf from a served run too).
func (s *PerfSink) PerfSink() *perf.Sink { return s.sink }

// Snapshot digests the cumulative window (the /perf document).
func (s *PerfSink) Snapshot() *perf.Snapshot { return s.sink.Snapshot() }
