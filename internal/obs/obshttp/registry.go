// Package obshttp is the live-observability service of the simulator:
// a lightweight metrics registry with Prometheus text-format
// exposition, a server-sent-events tail of the obs event stream, and
// an embedded net/http server exposing /metrics, /healthz, /events,
// /slow and /debug/pprof — so a multi-hour sweep can be scraped and
// tailed mid-flight instead of being a black box until it exits.
//
// The package deliberately implements the exposition format itself
// (the text format is a page of code) rather than depending on the
// Prometheus client library: the simulator's metric needs are atomic
// counters, gauge callbacks, and the log-bucketed obs.Histogram
// re-exposed either as a summary (p50/p90/p95/p99/p999 quantiles) or
// as a native cumulative histogram (_bucket/_sum/_count) so scrapers
// can aggregate and compute quantiles server-side.
package obshttp

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"futurebus/internal/obs"
)

// Counter is a monotonically increasing metric, safe from any
// goroutine (the concurrent engine's goroutine-per-board emitters
// update counters through the recorder's drain goroutine, but gauges
// and direct instrumentation may come from anywhere).
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d (negative deltas are a bug; they are
// applied anyway so the inconsistency is visible rather than hidden).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// SummaryMetric wraps an obs.Histogram as a concurrency-safe
// Prometheus summary: quantile series plus _sum and _count.
type SummaryMetric struct {
	mu sync.Mutex
	h  obs.Histogram
}

// Observe records one sample.
func (s *SummaryMetric) Observe(v int64) {
	s.mu.Lock()
	s.h.Observe(v)
	s.mu.Unlock()
}

// Summary digests the distribution.
func (s *SummaryMetric) Summary() obs.Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.h.Summary()
}

// HistogramMetric wraps an obs.Histogram as a native Prometheus
// histogram: cumulative _bucket{le="…"} series plus _sum and _count.
// Unlike SummaryMetric's pre-digested quantiles, the buckets let a
// scraper aggregate across instances and compute any quantile with
// histogram_quantile(). Bucket boundaries are the log buckets of
// obs.Histogram: le = 2^i − 1 for each non-empty power-of-two bucket.
type HistogramMetric struct {
	mu sync.Mutex
	h  obs.Histogram
}

// Observe records one sample.
func (m *HistogramMetric) Observe(v int64) {
	m.mu.Lock()
	m.h.Observe(v)
	m.mu.Unlock()
}

// snapshot copies the bucket counts, sum and count under the lock.
func (m *HistogramMetric) snapshot() (buckets []int64, sum, count int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.h.Buckets(), m.h.Sum(), m.h.Count()
}

// Summary digests the distribution (the /perf text view reuses it).
func (m *HistogramMetric) Summary() obs.Summary {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.h.Summary()
}

// series is one labelled time series within a family.
type series struct {
	labels  string // rendered label set: `phase="arb"` (no braces), "" = unlabelled
	ctr     *Counter
	ctrFunc func() int64
	gauge   func() float64
	sum     *SummaryMetric
	histo   *HistogramMetric
}

// family is one metric name with its TYPE/HELP header and series.
type family struct {
	name string
	typ  string // "counter", "gauge", "summary", "histogram"
	help string
	ser  []*series
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Registration methods are idempotent on
// (name, labels): re-registering returns the existing metric, so
// event-driven sinks can register lazily per label value.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) familyLocked(name, typ, help string) *family {
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, typ: typ, help: help}
		r.fams[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obshttp: metric %s re-registered as %s (was %s)", name, typ, f.typ))
	}
	return f
}

func (f *family) seriesLocked(labels string) (*series, bool) {
	for _, s := range f.ser {
		if s.labels == labels {
			return s, true
		}
	}
	s := &series{labels: labels}
	f.ser = append(f.ser, s)
	return s, false
}

// Counter registers (or finds) a counter. labels is a rendered label
// set like `op="R"` or empty.
func (r *Registry) Counter(name, labels, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.familyLocked(name, "counter", help).seriesLocked(labels)
	if !ok {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// CounterFunc registers a counter whose value is pulled from fn at
// exposition time — for monotonic totals another subsystem already
// tracks (e.g. the Recorder's dropped-event count). fn must be safe to
// call from the HTTP handler goroutine at any moment.
func (r *Registry) CounterFunc(name, labels, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.familyLocked(name, "counter", help).seriesLocked(labels)
	s.ctrFunc = fn
}

// GaugeFunc registers a gauge whose value is pulled from fn at
// exposition time. fn must be safe to call from the HTTP handler
// goroutine at any moment.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.familyLocked(name, "gauge", help).seriesLocked(labels)
	s.gauge = fn
}

// Summary registers (or finds) a summary metric.
func (r *Registry) Summary(name, labels, help string) *SummaryMetric {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.familyLocked(name, "summary", help).seriesLocked(labels)
	if !ok {
		s.sum = &SummaryMetric{}
	}
	return s.sum
}

// Histogram registers (or finds) a native histogram metric.
func (r *Registry) Histogram(name, labels, help string) *HistogramMetric {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.familyLocked(name, "histogram", help).seriesLocked(labels)
	if !ok {
		s.histo = &HistogramMetric{}
	}
	return s.histo
}

// WritePrometheus renders every family in the text exposition format,
// sorted by family name for stable scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		// Take the series snapshot under the registry lock so lazy
		// registrations during rendering cannot tear the slice.
		r.mu.Lock()
		ser := append([]*series(nil), f.ser...)
		r.mu.Unlock()
		for _, s := range ser {
			switch {
			case s.ctr != nil:
				fmt.Fprintf(&b, "%s %d\n", renderName(f.name, s.labels), s.ctr.Value())
			case s.ctrFunc != nil:
				fmt.Fprintf(&b, "%s %d\n", renderName(f.name, s.labels), s.ctrFunc())
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s %s\n", renderName(f.name, s.labels), formatFloat(s.gauge()))
			case s.sum != nil:
				writeSummary(&b, f.name, s.labels, s.sum.Summary())
			case s.histo != nil:
				buckets, sum, count := s.histo.snapshot()
				writeHistogram(&b, f.name, s.labels, buckets, sum, count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one native-histogram series: the cumulative
// _bucket counts with le = 2^i − 1 (the log-bucket upper bounds), the
// mandatory le="+Inf" terminator, then _sum and _count.
func writeHistogram(b *strings.Builder, name, labels string, buckets []int64, sum, count int64) {
	withQ := func(extra string) string {
		if labels == "" {
			return extra
		}
		return labels + "," + extra
	}
	var cum int64
	for i, c := range buckets {
		cum += c
		le := int64(1)<<uint(i) - 1
		fmt.Fprintf(b, "%s %d\n", renderName(name+"_bucket", withQ(fmt.Sprintf("le=%q", fmt.Sprint(le)))), cum)
	}
	fmt.Fprintf(b, "%s %d\n", renderName(name+"_bucket", withQ(`le="+Inf"`)), count)
	fmt.Fprintf(b, "%s %d\n", renderName(name+"_sum", labels), sum)
	fmt.Fprintf(b, "%s %d\n", renderName(name+"_count", labels), count)
}

// writeSummary renders one summary series: the p50/p90/p95/p99/p999
// quantiles (upper bounds of the log buckets) plus _sum and _count.
func writeSummary(b *strings.Builder, name, labels string, s obs.Summary) {
	for _, q := range [...]struct {
		q string
		v int64
	}{{"0.5", s.P50}, {"0.9", s.P90}, {"0.95", s.P95}, {"0.99", s.P99}, {"0.999", s.P999}} {
		ql := fmt.Sprintf("quantile=%q", q.q)
		if labels != "" {
			ql = labels + "," + ql
		}
		fmt.Fprintf(b, "%s %d\n", renderName(name, ql), q.v)
	}
	fmt.Fprintf(b, "%s %s\n", renderName(name+"_sum", labels), formatFloat(s.Mean*float64(s.Count)))
	fmt.Fprintf(b, "%s %d\n", renderName(name+"_count", labels), s.Count)
}

func renderName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// formatFloat renders a float the way Prometheus expects: integers
// without an exponent, NaN/Inf spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
