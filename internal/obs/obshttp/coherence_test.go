package obshttp

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"futurebus/internal/obs"
	"futurebus/internal/obs/coherence"
	"futurebus/internal/obs/leaktest"
)

// TestCoherenceEndpointAndMetrics: /coherence serves the per-protocol
// transition analytics as JSON, and the event-fed registry exposes the
// proto-labelled transition, invalidation, ownership-move and
// read-sourcing families on /metrics.
func TestCoherenceEndpointAndMetrics(t *testing.T) {
	leaktest.Check(t)
	svc := NewService(4)
	rec := obs.New(svc.Sinks()...)
	srv, err := svc.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// One line migrating P0 → P1 under an RFO (snoop invalidation
	// first, then the tx, then the new owner's fill — stream order).
	rec.Emit(obs.Event{Seq: 0, TS: 0, Kind: obs.KindState, Proc: 0, Addr: 0x40,
		From: "I", To: "M", Cause: "fill", Proto: "moesi", TxID: 1})
	rec.Emit(obs.Event{Seq: 1, TS: 0, Dur: 400, Kind: obs.KindTx, Proc: 0, Addr: 0x40,
		Col: 6, Op: "R", TxID: 1})
	rec.Emit(obs.Event{Seq: 2, TS: 500, Kind: obs.KindState, Proc: 0, Addr: 0x40,
		From: "M", To: "I", Cause: "snoop-cache-rfo", Proto: "moesi", TxID: 2})
	rec.Emit(obs.Event{Seq: 3, TS: 500, Dur: 400, Kind: obs.KindTx, Proc: 1, Addr: 0x40,
		Col: 6, Op: "R", DI: true, TxID: 2})
	rec.Emit(obs.Event{Seq: 4, TS: 500, Kind: obs.KindState, Proc: 1, Addr: 0x40,
		From: "I", To: "M", Cause: "fill", Proto: "moesi", TxID: 2})
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	var an coherence.Analysis
	if err := json.Unmarshal([]byte(get("/coherence")), &an); err != nil {
		t.Fatal(err)
	}
	ps := an.Protocols["moesi"]
	if ps == nil {
		t.Fatalf("/coherence missing moesi protocol: %+v", an)
	}
	if ps.Transitions != 3 {
		t.Errorf("/coherence transitions = %d, want 3", ps.Transitions)
	}
	if ps.OwnershipMoves != 1 {
		t.Errorf("/coherence ownership moves = %d, want 1", ps.OwnershipMoves)
	}
	if ps.CacheSourced != 1 || ps.MemSourced != 1 {
		t.Errorf("/coherence sourcing = %d c2c / %d mem, want 1/1", ps.CacheSourced, ps.MemSourced)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		MetricCoherenceTransitions + `{proto="moesi",from="I",to="M"} 2`,
		MetricCoherenceTransitions + `{proto="moesi",from="M",to="I"} 1`,
		MetricCoherenceInvalidations + `{proto="moesi"} 1`,
		MetricCoherenceOwnershipMoves + " 1",
		MetricCoherenceReadSource + `{source="cache"} 1`,
		MetricCoherenceReadSource + `{source="memory"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil && err != http.ErrServerClosed {
		t.Fatal(err)
	}
}
