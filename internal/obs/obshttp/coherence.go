package obshttp

import (
	"sync"

	"futurebus/internal/obs"
	"futurebus/internal/obs/coherence"
)

// coherenceBatch is how many events CoherenceSink buffers before
// folding them into the analyzer. The buffer belongs to the recorder's
// drain goroutine, so Consume stays lock-free on the hot path; the
// mutex is only taken once per batch (and by snapshot readers). Live
// snapshots may therefore lag the stream by up to one batch — call
// Recorder.Flush first when an exact cut matters.
const coherenceBatch = 256

// CoherenceSink adapts coherence.Analyzer (which assumes the recorder's
// single drain goroutine) for concurrent snapshotting from HTTP
// handlers: Consume runs on the drain goroutine, Analyze and Totals on
// any handler goroutine, with a mutex between them. The /coherence
// endpoint snapshots per request, so the simulation never pays for
// report construction.
type CoherenceSink struct {
	// Drain-goroutine-owned batch state, touched without the lock.
	// Events are digested on arrival; kinds the analyzer ignores are
	// not buffered at all — only their count and time horizon carry
	// over, via AddSpan at fold time.
	buf     []coherence.Compact
	events  int64
	spanMax int64

	mu sync.Mutex
	a  coherence.Analyzer
}

// Consume implements obs.Sink.
func (s *CoherenceSink) Consume(e *obs.Event) {
	s.events++
	if ts := e.TS + e.Dur; ts > s.spanMax {
		s.spanMax = ts
	}
	if c, ok := coherence.Digest(e); ok {
		if s.buf == nil {
			s.buf = make([]coherence.Compact, 0, coherenceBatch)
		}
		s.buf = append(s.buf, c)
		if len(s.buf) >= coherenceBatch {
			s.fold()
		}
	}
}

// fold replays the buffered batch into the analyzer under the lock.
// Like Consume it must only run on the drain goroutine.
func (s *CoherenceSink) fold() {
	s.mu.Lock()
	for i := range s.buf {
		s.a.ConsumeCompact(&s.buf[i])
	}
	s.a.AddSpan(s.events, s.spanMax)
	s.mu.Unlock()
	s.buf = s.buf[:0]
	s.events = 0
}

// Flush implements obs.Sink: it folds the partial batch so snapshots
// taken after Recorder.Flush see the complete stream.
func (s *CoherenceSink) Flush() error {
	if len(s.buf) > 0 || s.events > 0 {
		s.fold()
	}
	return nil
}

// Analyze snapshots the coherence aggregates of the run so far.
func (s *CoherenceSink) Analyze() *coherence.Analysis {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.a.Analyze(0)
}

// Totals returns the cheap running totals (for CounterFunc metrics,
// which are pulled on every /metrics scrape).
func (s *CoherenceSink) Totals() coherence.Totals {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.a.Totals()
}
