package obshttp

import (
	"testing"

	"futurebus/internal/obs"
)

// Split-mode stream events surface as their own counter families:
// NACKs (pending table full) and retry exhaustion (ErrTooManyRetries),
// so a scrape distinguishes back-pressure from livelock.
func TestMetricsSinkSplitCounters(t *testing.T) {
	reg := NewRegistry()
	m := newMetricsSink(reg)
	m.Consume(&obs.Event{Kind: obs.KindNack, Bus: 0})
	m.Consume(&obs.Event{Kind: obs.KindNack, Bus: 1})
	m.Consume(&obs.Event{Kind: obs.KindRetryExhausted, Proc: 3})
	if got := reg.Counter(MetricNacks, "", "x").Value(); got != 2 {
		t.Errorf("%s = %d, want 2", MetricNacks, got)
	}
	if got := reg.Counter(MetricRetryExhausted, "", "x").Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricRetryExhausted, got)
	}
}
