package obshttp

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"futurebus/internal/obs"
	"futurebus/internal/obs/perf"
)

// The endpoints table is the single source of truth for the server's
// routes: every advertised endpoint must resolve to a registered
// handler (not the mux's NotFound fallback), so the fbsim/fbsweep
// banner can never advertise a path the server 404s.
func TestEndpointsMatchMux(t *testing.T) {
	srv := NewServer(NewRegistry(), nil, nil)
	mux := srv.http.Handler.(*http.ServeMux)
	for _, e := range Endpoints() {
		req := httptest.NewRequest("GET", e.Path, nil)
		_, pattern := mux.Handler(req)
		if pattern == "" {
			t.Errorf("endpoint %s advertised but not served", e.Path)
		}
		if e.Help == "" {
			t.Errorf("endpoint %s has no help text", e.Path)
		}
	}
	if list := EndpointList(); !strings.Contains(list, "/perf") || !strings.Contains(list, "/violations") {
		t.Errorf("EndpointList missing endpoints: %q", list)
	}
}

// The native histogram exposition: cumulative _bucket counts with
// le = 2^i - 1 bounds, the +Inf terminator, and exact _sum/_count.
func TestWritePrometheusHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_hist", "", "a histogram")
	h.Observe(0) // bucket 0, le="0"
	h.Observe(1) // bucket 1, le="1"
	h.Observe(7) // bucket 3, le="7"
	h.Observe(6) // bucket 3, le="7"

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_hist histogram",
		`test_hist_bucket{le="0"} 1`,
		`test_hist_bucket{le="1"} 2`,
		`test_hist_bucket{le="3"} 2`, // empty bucket still rendered, cumulative
		`test_hist_bucket{le="7"} 4`,
		`test_hist_bucket{le="+Inf"} 4`,
		"test_hist_sum 14",
		"test_hist_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramMetricLabels(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("h", `shard="0"`, "labelled").Observe(3)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`h_bucket{shard="0",le="3"} 1`,
		`h_bucket{shard="0",le="+Inf"} 1`,
		`h_sum{shard="0"} 3`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q in:\n%s", want, b.String())
		}
	}
}

// Observe and exposition race under -race unless the metric locks
// correctly: hammer a summary and a histogram from many goroutines
// while a scraper renders.
func TestMetricsConcurrentObserve(t *testing.T) {
	reg := NewRegistry()
	sum := reg.Summary("race_sum", "", "")
	hist := reg.Histogram("race_hist", "", "")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				sum.Observe(int64(g*1000 + i))
				hist.Observe(int64(i))
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		if err := reg.WritePrometheus(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := hist.Summary().Count; got != 8000 {
		t.Errorf("histogram lost samples: count = %d, want 8000", got)
	}
	if got := sum.Summary().Count; got != 8000 {
		t.Errorf("summary lost samples: count = %d, want 8000", got)
	}
}

// The PerfSink bridges the event stream to both the registry (native
// histograms + queue gauges) and the /perf document.
func TestPerfSinkExportsMetrics(t *testing.T) {
	reg := NewRegistry()
	ps := NewPerfSink(reg)
	ps.Consume(&obs.Event{Kind: obs.KindGrant, Bus: 0, TS: 100, Dur: 100})
	ps.Consume(&obs.Event{Kind: obs.KindGrant, Bus: 0, TS: 150, Dur: 100})
	ps.Consume(&obs.Event{Kind: obs.KindTx, Bus: 0, TS: 200, Dur: 645, RetryNS: 50, MemNS: 200})

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE " + MetricArbWaitHist + " histogram",
		MetricArbWaitHist + "_count 2",
		MetricTenureHist + "_count 1",
		MetricRetryHist + "_count 1",
		MetricMemSvcHist + "_count 1",
		MetricQueueDepth + `{bus="0"} 2`,
		MetricQueuePeak + `{bus="0"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if snap := ps.Snapshot(); snap.PeakQueueDepth() != 2 {
		t.Errorf("snapshot peak = %d, want 2", snap.PeakQueueDepth())
	}
}

// A nil registry (fbsim -perf without -serve, the overhead benchmark)
// still accumulates the snapshot.
func TestPerfSinkNilRegistry(t *testing.T) {
	ps := NewPerfSink(nil)
	ps.Consume(&obs.Event{Kind: obs.KindGrant, Bus: 0, TS: 100, Dur: 50})
	if got := ps.Snapshot().Latency[perf.MetricArbWait].Count; got != 1 {
		t.Errorf("nil-registry sink lost the sample: count = %d", got)
	}
}

// End to end: the service wires the perf sink into the recorder, the
// /perf endpoint serves its JSON document, and /metrics carries the
// native histogram series.
func TestServicePerfEndpoint(t *testing.T) {
	svc := NewService(4)
	rec := obs.New(svc.Sinks()...)
	srv, err := svc.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rec.Emit(obs.Event{Kind: obs.KindGrant, Bus: 0, TS: 100, Dur: 80})
	rec.Emit(obs.Event{Kind: obs.KindTx, Bus: 0, TS: 200, Dur: 645, MemNS: 200})
	rec.Drain()

	resp, err := http.Get(srv.URL() + "/perf")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var snap perf.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/perf not valid JSON: %v\n%s", err, body)
	}
	if snap.Latency[perf.MetricArbWait].Count != 1 || snap.Latency[perf.MetricTenure].Count != 1 {
		t.Errorf("/perf missing telemetry: %s", body)
	}

	// The engines find the sink through the service wrapper.
	if perf.FindSink(rec) == nil {
		t.Error("perf.FindSink failed to unwrap the service's PerfSink")
	}

	mresp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(mbody), MetricArbWaitHist+"_bucket") {
		t.Errorf("/metrics missing %s_bucket series", MetricArbWaitHist)
	}
}
