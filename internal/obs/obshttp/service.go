package obshttp

import (
	"fmt"
	"strings"

	"futurebus/internal/obs"
	"futurebus/internal/obs/watch"
)

// Metric families exposed on /metrics. Kept as constants so the CI
// smoke test and the docs reference the same names the code emits.
const (
	MetricTransactions     = "futurebus_bus_transactions_total"
	MetricAborts           = "futurebus_bus_aborts_total"
	MetricRetries          = "futurebus_bus_retries_total"
	MetricStateTransitions = "futurebus_state_transitions_total"
	MetricEvents           = "futurebus_events_total"
	MetricPhaseLatency     = "futurebus_phase_latency_ns"
	MetricTxLatency        = "futurebus_tx_latency_ns"
	MetricStall            = "futurebus_proc_stall_ns"
	MetricSSEFrames        = "futurebus_sse_frames_total"
	MetricSSEShed          = "futurebus_sse_shed_total"
	MetricNacks            = "futurebus_bus_nacks_total"
	MetricRetryExhausted   = "futurebus_retry_exhausted_total"
	MetricDropped          = "obs_events_dropped_total"

	// Coherence analytics (see internal/obs/coherence and the
	// /coherence endpoint).
	MetricCoherenceTransitions    = "futurebus_coherence_transitions_total"
	MetricCoherenceInvalidations  = "futurebus_coherence_invalidations_total"
	MetricCoherenceOwnershipMoves = "futurebus_coherence_ownership_moves_total"
	MetricCoherenceReadSource     = "futurebus_coherence_read_source_total"

	// Runtime invariant monitor (see internal/obs/watch and the
	// /violations endpoint). The latch gauge goes to 1 at the first
	// violation and stays there, so a single end-of-run scrape (or a CI
	// probe) cannot miss a transient burst.
	MetricInvariantViolations = "futurebus_invariant_violations_total"
	MetricInvariantLatch      = "futurebus_invariant_violation_latch"
)

// Service bundles everything live observability needs: the metrics
// registry, the SSE event stream, the phase-attribution sink, and a
// registry-feeding event sink. Attach Sinks() to the Recorder at
// construction time, then Serve to expose it all over HTTP.
type Service struct {
	Registry  *Registry
	Stream    *EventStream
	Attr      *obs.AttributionSink
	Causal    *CausalSink
	Coherence *CoherenceSink
	// Perf is the saturation-telemetry sink: /perf serves its snapshot
	// and the registry carries its native latency histograms and
	// per-shard queue gauges.
	Perf *PerfSink
	// Watch is the runtime invariant monitor (nil unless the service
	// was built with NewServiceWatched or the caller set one).
	Watch *WatchSink
	// Trend is the rolling-baseline regression source (nil unless
	// EnableTrend attached a run ledger); /trend serves its verdict.
	Trend *TrendSource

	metrics *metricsSink
}

// NewService builds a service with an attribution ring of topK slowest
// transactions (0 = obs.DefaultTopK).
func NewService(topK int) *Service {
	s := &Service{
		Registry:  NewRegistry(),
		Stream:    NewEventStream(),
		Attr:      obs.NewAttributionSink(topK),
		Causal:    &CausalSink{},
		Coherence: &CoherenceSink{},
	}
	s.metrics = newMetricsSink(s.Registry)
	s.Perf = NewPerfSink(s.Registry)
	s.Registry.CounterFunc(MetricCoherenceOwnershipMoves, "",
		"Line ownership migrating directly from one cache to another.", func() int64 {
			return s.Coherence.Totals().OwnershipMoves
		})
	s.Registry.CounterFunc(MetricCoherenceReadSource, `source="cache"`,
		"Completed bus reads by who supplied the line.", func() int64 {
			return s.Coherence.Totals().CacheSourced
		})
	s.Registry.CounterFunc(MetricCoherenceReadSource, `source="memory"`,
		"Completed bus reads by who supplied the line.", func() int64 {
			return s.Coherence.Totals().MemSourced
		})
	s.Registry.GaugeFunc(MetricSSEFrames, "", "Event frames marshalled for SSE subscribers.", func() float64 {
		frames, _ := s.Stream.Stats()
		return float64(frames)
	})
	s.Registry.GaugeFunc(MetricSSEShed, "", "Event frames shed because a subscriber was too slow.", func() float64 {
		_, shed := s.Stream.Stats()
		return float64(shed)
	})
	return s
}

// EnableWatch attaches the runtime invariant monitor to the service:
// Sinks() will include it, /violations serves its report, and the
// registry gains futurebus_invariant_violations_total plus the
// first-violation latch gauge. Call before Sinks()/Serve. Zero cfg
// fields take the monitor's defaults.
func (s *Service) EnableWatch(cfg watch.Config) *WatchSink {
	if s.Watch != nil {
		return s.Watch
	}
	s.Watch = NewWatchSink(cfg, s.Registry)
	s.Registry.GaugeFunc(MetricInvariantLatch, "",
		"1 once any protocol invariant has been violated, else 0 (latched).", func() float64 {
			if s.Watch.Total() > 0 {
				return 1
			}
			return 0
		})
	return s.Watch
}

// Sinks returns the obs.Sinks the service needs attached to the
// Recorder, in the order they should run.
func (s *Service) Sinks() []obs.Sink {
	sinks := []obs.Sink{s.metrics, s.Attr, s.Causal, s.Coherence, s.Perf}
	if s.Watch != nil {
		sinks = append(sinks, s.Watch)
	}
	return append(sinks, s.Stream)
}

// ObserveRecorder exposes the recorder's drop telemetry on /metrics:
// obs_events_dropped_total counts events discarded because they were
// emitted after the recorder closed — an instrumentation site outlived
// the recorder (0 on a healthy run; events are never shed while the
// recorder is open). Safe to call with a nil recorder (the counter
// then reads 0).
func (s *Service) ObserveRecorder(rec *obs.Recorder) {
	s.Registry.CounterFunc(MetricDropped, "",
		"Events discarded because they were emitted after the recorder closed.",
		rec.Dropped)
}

// Serve binds addr and starts the HTTP server over this service's
// registry, stream, attribution and causal sinks.
func (s *Service) Serve(addr string) (*Server, error) {
	srv := NewServer(s.Registry, s.Stream, s.Attr)
	srv.causal = s.Causal
	srv.coherence = s.Coherence
	srv.watch = s.Watch
	srv.perf = s.Perf
	srv.trend = s.Trend
	if err := srv.Listen(addr); err != nil {
		return nil, err
	}
	return srv, nil
}

// metricsSink feeds the registry from the event stream. It runs on the
// Recorder's single drain goroutine, so lazy per-label registration
// has no registration races beyond what Registry already handles.
type metricsSink struct {
	reg    *Registry
	events map[obs.Kind]*Counter
	txOps  map[string]*Counter
	trans  map[[2]string]*Counter
	ctrans map[[3]string]*Counter
	cinv   map[string]*Counter
	aborts *Counter
	retry  *Counter
	nacks  *Counter
	exh    *Counter
	phases [obs.NumPhases]*SummaryMetric
	txLat  *SummaryMetric
	stall  *SummaryMetric
}

func newMetricsSink(reg *Registry) *metricsSink {
	m := &metricsSink{
		reg:    reg,
		events: make(map[obs.Kind]*Counter),
		txOps:  make(map[string]*Counter),
		trans:  make(map[[2]string]*Counter),
		ctrans: make(map[[3]string]*Counter),
		cinv:   make(map[string]*Counter),
		aborts: reg.Counter(MetricAborts, "", "BS aborts of bus transaction attempts."),
		retry:  reg.Counter(MetricRetries, "", "BS abort/retry rounds across all transactions."),
		nacks: reg.Counter(MetricNacks, "",
			"Split-mode NACKs: address tenures bounced because the pending table was full."),
		exh: reg.Counter(MetricRetryExhausted, "",
			"Transactions that gave up after the BS abort/retry bound (ErrTooManyRetries)."),
		txLat: reg.Summary(MetricTxLatency, "", "Per-transaction bus occupancy in simulated ns."),
		stall: reg.Summary(MetricStall, "", "Per-bus-op processor stall in simulated ns."),
	}
	for ph, name := range obs.PhaseNames {
		m.phases[ph] = reg.Summary(MetricPhaseLatency, fmt.Sprintf("phase=%q", name),
			"Per-phase bus transaction latency in simulated ns.")
	}
	return m
}

// Consume implements obs.Sink.
func (m *metricsSink) Consume(e *obs.Event) {
	c, ok := m.events[e.Kind]
	if !ok {
		c = m.reg.Counter(MetricEvents, fmt.Sprintf("kind=%q", e.Kind), "Events by kind.")
		m.events[e.Kind] = c
	}
	c.Inc()

	switch e.Kind {
	case obs.KindTx:
		op := e.Op
		if op == "" {
			op = "A"
		}
		oc, ok := m.txOps[op]
		if !ok {
			oc = m.reg.Counter(MetricTransactions, fmt.Sprintf("op=%q", op),
				"Completed bus transactions by data-phase op.")
			m.txOps[op] = oc
		}
		oc.Inc()
		m.retry.Add(int64(e.Retries))
		m.txLat.Observe(e.Dur)
		if span, ok := obs.SpanFromEvent(e); ok {
			for ph, v := range span.Phases {
				// Same rule as AttributionSink: the always-paid phases
				// count zeros, conditional phases only real samples.
				if ph > obs.PhaseData && v == 0 {
					continue
				}
				m.phases[ph].Observe(v)
			}
		}
	case obs.KindAbort:
		m.aborts.Inc()
	case obs.KindState:
		key := [2]string{e.From, e.To}
		tc, ok := m.trans[key]
		if !ok {
			tc = m.reg.Counter(MetricStateTransitions,
				fmt.Sprintf("from=%q,to=%q", e.From, e.To),
				"Cache-line state transitions.")
			m.trans[key] = tc
		}
		tc.Inc()
		proto := e.Proto
		if proto == "" {
			proto = "unknown"
		}
		ckey := [3]string{proto, e.From, e.To}
		cc, ok := m.ctrans[ckey]
		if !ok {
			cc = m.reg.Counter(MetricCoherenceTransitions,
				fmt.Sprintf("proto=%q,from=%q,to=%q", proto, e.From, e.To),
				"Cache-line state transitions by governing protocol.")
			m.ctrans[ckey] = cc
		}
		cc.Inc()
		if e.To == "I" && strings.HasPrefix(e.Cause, "snoop-") {
			ic, ok := m.cinv[proto]
			if !ok {
				ic = m.reg.Counter(MetricCoherenceInvalidations,
					fmt.Sprintf("proto=%q", proto),
					"Snoop-caused transitions to Invalid by protocol.")
				m.cinv[proto] = ic
			}
			ic.Inc()
		}
	case obs.KindStall:
		m.stall.Observe(e.Dur)
	case obs.KindNack:
		m.nacks.Inc()
	case obs.KindRetryExhausted:
		m.exh.Inc()
	}
}

// Flush implements obs.Sink.
func (m *metricsSink) Flush() error { return nil }
