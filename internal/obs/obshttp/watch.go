package obshttp

import (
	"fmt"
	"sync"

	"futurebus/internal/obs"
	"futurebus/internal/obs/watch"
)

// watchBatch mirrors coherenceBatch: WatchSink buffers events on the
// recorder's drain goroutine and folds them into the monitor once per
// batch, so the hot path stays lock-free and live snapshots lag the
// stream by at most one batch (Recorder.Flush forces an exact cut).
const watchBatch = 256

// WatchSink adapts watch.Monitor (single-goroutine, like
// coherence.Analyzer) for concurrent snapshotting from HTTP handlers:
// Consume runs on the drain goroutine, Report/Total on any handler
// goroutine, with a mutex between them. It also syncs the monitor's
// per-(invariant, proto) counters into the metrics registry after every
// fold, exposing futurebus_invariant_violations_total on /metrics.
type WatchSink struct {
	// Drain-goroutine-owned batch state, touched without the lock.
	buf []obs.Event

	mu  sync.Mutex
	mon *watch.Monitor

	// Metric sync state (drain goroutine only): the registered counter
	// and last pushed value per (invariant, proto) label pair.
	reg    *Registry
	ctrs   map[watchLabel]*Counter
	pushed map[watchLabel]int64
}

type watchLabel struct {
	inv   watch.Invariant
	proto string
}

// NewWatchSink builds a watch sink; zero cfg fields take the monitor's
// defaults. reg may be nil (no metrics export).
func NewWatchSink(cfg watch.Config, reg *Registry) *WatchSink {
	return &WatchSink{
		mon:    watch.New(cfg),
		reg:    reg,
		ctrs:   make(map[watchLabel]*Counter),
		pushed: make(map[watchLabel]int64),
	}
}

// relevant mirrors the kinds the monitor folds or remembers as context;
// everything else is skipped before buffering.
func relevant(k obs.Kind) bool {
	switch k {
	case obs.KindState, obs.KindTx, obs.KindEpoch, obs.KindAbort,
		obs.KindRecover, obs.KindCapture:
		return true
	}
	return false
}

// Consume implements obs.Sink.
func (s *WatchSink) Consume(e *obs.Event) {
	if !relevant(e.Kind) {
		return
	}
	if s.buf == nil {
		s.buf = make([]obs.Event, 0, watchBatch)
	}
	s.buf = append(s.buf, *e)
	if len(s.buf) >= watchBatch {
		s.fold()
	}
}

// fold replays the buffered batch into the monitor under the lock and
// pushes counter deltas to the registry. Drain goroutine only.
func (s *WatchSink) fold() {
	s.mu.Lock()
	for i := range s.buf {
		s.mon.Consume(&s.buf[i])
	}
	var counts []watch.Count
	if s.reg != nil {
		counts = s.mon.Counts()
	}
	s.mu.Unlock()
	s.buf = s.buf[:0]
	for _, c := range counts {
		key := watchLabel{c.Invariant, c.Proto}
		ctr, ok := s.ctrs[key]
		if !ok {
			ctr = s.reg.Counter(MetricInvariantViolations,
				fmt.Sprintf("invariant=%q,proto=%q", c.Invariant, c.Proto),
				"Runtime invariant violations by invariant and protocol.")
			s.ctrs[key] = ctr
		}
		if d := c.N - s.pushed[key]; d > 0 {
			ctr.Add(d)
			s.pushed[key] = c.N
		}
	}
}

// Flush implements obs.Sink: it folds the partial batch so snapshots
// taken after Recorder.Flush see the complete stream.
func (s *WatchSink) Flush() error {
	if len(s.buf) > 0 {
		s.fold()
	}
	return nil
}

// Report snapshots the monitor (the /violations document).
func (s *WatchSink) Report() *watch.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.Report()
}

// Total returns the violations detected so far (cheap; pulled on every
// /metrics scrape by the first-violation latch).
func (s *WatchSink) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.Total()
}

// First returns the first violation, or nil while the run is clean.
func (s *WatchSink) First() *watch.Violation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.First()
}
