package obshttp

import (
	"sync"

	"futurebus/internal/obs"
	"futurebus/internal/obs/causal"
)

// CausalSink makes a causal.Analyzer safe to feed from the Recorder's
// drain goroutine while the /causal HTTP handler snapshots it: Consume
// and Analyze serialize on one mutex. Analysis cost is paid per request
// (the analyzer itself only folds events in-loop), so a heavy run stays
// cheap until somebody actually asks.
type CausalSink struct {
	mu sync.Mutex
	a  causal.Analyzer
}

// Consume implements obs.Sink.
func (c *CausalSink) Consume(e *obs.Event) {
	c.mu.Lock()
	c.a.Consume(e)
	c.mu.Unlock()
}

// Flush implements obs.Sink.
func (c *CausalSink) Flush() error { return nil }

// Analyze snapshots the dependency DAG and critical path reconstructed
// from events consumed so far.
func (c *CausalSink) Analyze() *causal.Analysis {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.a.Analyze()
}
