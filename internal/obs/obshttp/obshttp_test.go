package obshttp

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"futurebus/internal/obs"
	"futurebus/internal/obs/leaktest"
)

// TestRegistryPrometheus: the text exposition has TYPE/HELP headers,
// sorted families, label rendering, and summary quantile series.
func TestRegistryPrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zz_total", "", "last family").Add(3)
	reg.Counter("aa_total", `op="R"`, "first family").Inc()
	reg.Counter("aa_total", `op="W"`, "first family").Add(2)
	reg.GaugeFunc("mid_gauge", "", "a gauge", func() float64 { return 0.5 })
	sum := reg.Summary("lat_ns", `phase="arb"`, "a summary")
	for _, v := range []int64{10, 20, 1000} {
		sum.Observe(v)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# HELP aa_total first family\n# TYPE aa_total counter\n",
		"aa_total{op=\"R\"} 1\n",
		"aa_total{op=\"W\"} 2\n",
		"# TYPE mid_gauge gauge\nmid_gauge 0.5\n",
		"# TYPE zz_total counter\nzz_total 3\n",
		"# TYPE lat_ns summary\n",
		"lat_ns{phase=\"arb\",quantile=\"0.5\"}",
		"lat_ns{phase=\"arb\",quantile=\"0.99\"}",
		"lat_ns_sum{phase=\"arb\"} 1030\n",
		"lat_ns_count{phase=\"arb\"} 3\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	if strings.Index(text, "# TYPE aa_total") > strings.Index(text, "# TYPE zz_total") {
		t.Error("families not sorted by name")
	}
	// Idempotent re-registration returns the same counter.
	reg.Counter("aa_total", `op="R"`, "first family").Inc()
	if got := reg.Counter("aa_total", `op="R"`, "x").Value(); got != 2 {
		t.Errorf("re-registered counter = %d, want 2", got)
	}
}

// TestEventStreamShedding: a subscriber that never drains loses frames
// without blocking the producer, and the loss is counted.
func TestEventStreamShedding(t *testing.T) {
	es := NewEventStream()
	_, _, cancel := es.Subscribe()
	defer cancel()
	total := DefaultSubscriberBuffer + 50
	for i := 0; i < total; i++ {
		es.Consume(&obs.Event{Kind: obs.KindTx, Seq: uint64(i)})
	}
	frames, shed := es.Stats()
	if frames != int64(total) {
		t.Errorf("frames = %d, want %d", frames, total)
	}
	if shed != 50 {
		t.Errorf("shed = %d, want 50", shed)
	}
	// The replay ring holds only the most recent frames.
	_, replay, cancel2 := es.Subscribe()
	defer cancel2()
	if len(replay) != DefaultReplay {
		t.Fatalf("replay depth = %d, want %d", len(replay), DefaultReplay)
	}
	var last obs.Event
	if err := json.Unmarshal(replay[len(replay)-1], &last); err != nil {
		t.Fatal(err)
	}
	if last.Seq != uint64(total-1) {
		t.Errorf("replay tail seq = %d, want %d", last.Seq, total-1)
	}
}

// TestEventStreamCancel: cancel closes the channel exactly once and a
// cancelled subscriber stops receiving.
func TestEventStreamCancel(t *testing.T) {
	es := NewEventStream()
	ch, _, cancel := es.Subscribe()
	cancel()
	cancel() // double-cancel must be safe
	if _, ok := <-ch; ok {
		t.Error("channel still open after cancel")
	}
	es.Consume(&obs.Event{Kind: obs.KindTx}) // must not panic on closed channel
}

// TestServerEndpoints: a real server on an ephemeral port serves
// /metrics, /healthz, /slow and /events, and Close leaves no
// goroutines behind (including the SSE handler we keep open).
func TestServerEndpoints(t *testing.T) {
	leaktest.Check(t)
	svc := NewService(4)
	rec := obs.New(svc.Sinks()...)
	srv, err := svc.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Feed a little traffic through the recorder so every endpoint has
	// something to show.
	rec.Emit(obs.Event{Kind: obs.KindTx, Proc: 0, Op: "R", Dur: 645,
		AddrNS: 125, DataNS: 320, MemNS: 200})
	rec.Emit(obs.Event{Kind: obs.KindTx, Proc: 1, Op: "W", Dur: 565, Retries: 1,
		AddrNS: 125, DataNS: 320, IntvNS: 120})
	rec.Emit(obs.Event{Kind: obs.KindState, Proc: 0, From: "I", To: "E"})
	rec.Emit(obs.Event{Kind: obs.KindAbort, Proc: 1})
	rec.Drain()

	get := func(path string) string {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	if got := get("/healthz"); got != "ok\n" {
		t.Errorf("/healthz = %q", got)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE " + MetricTransactions + " counter",
		MetricTransactions + `{op="R"} 1`,
		MetricTransactions + `{op="W"} 1`,
		MetricStateTransitions + `{from="I",to="E"} 1`,
		MetricAborts + " 1",
		"# TYPE " + MetricPhaseLatency + " summary",
		MetricPhaseLatency + `{phase="addr",quantile="0.5"}`,
		MetricPhaseLatency + `_count{phase="intervention"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var slow []obs.TxSpan
	if err := json.Unmarshal([]byte(get("/slow")), &slow); err != nil {
		t.Fatal(err)
	}
	if len(slow) != 2 || slow[0].Dur != 645 {
		t.Errorf("/slow = %+v", slow)
	}

	// SSE: the replay ring must deliver the already-seen events as
	// data: frames without waiting for new traffic.
	resp, err := http.Get(srv.URL() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("/events content-type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	deadline := time.After(5 * time.Second)
	gotFrame := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "data: ") {
				gotFrame <- strings.TrimPrefix(line, "data: ")
				return
			}
		}
	}()
	select {
	case frame := <-gotFrame:
		var e obs.Event
		if err := json.Unmarshal([]byte(frame), &e); err != nil {
			t.Fatalf("bad SSE frame %q: %v", frame, err)
		}
		if e.Kind == "" {
			t.Errorf("SSE frame missing kind: %q", frame)
		}
	case <-deadline:
		t.Fatal("no SSE frame within deadline")
	}

	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil && err != http.ErrServerClosed {
		t.Fatal(err)
	}
}
