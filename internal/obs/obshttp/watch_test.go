package obshttp

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"futurebus/internal/obs"
	"futurebus/internal/obs/leaktest"
	"futurebus/internal/obs/watch"
)

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestWatchSinkEndpointAndMetrics: a violating stream surfaces on
// /violations, as labelled counters on /metrics, and flips the latch.
func TestWatchSinkEndpointAndMetrics(t *testing.T) {
	leaktest.Check(t)
	svc := NewService(4)
	svc.EnableWatch(watch.Config{})
	rec := obs.New(svc.Sinks()...)
	srv, err := svc.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Latch reads 0 while clean.
	if text := httpGet(t, srv.URL()+"/metrics"); !strings.Contains(text, MetricInvariantLatch+" 0") {
		t.Fatalf("latch should read 0 before any violation:\n%s", text)
	}

	// Two caches fill the same line to M — a single-owner violation.
	rec.Emit(obs.Event{TS: 1, Kind: obs.KindTx, Proc: 0, Addr: 0x40, Col: 6, Op: "R", TxID: 1})
	rec.Emit(obs.Event{TS: 2, Kind: obs.KindState, Proc: 0, Addr: 0x40,
		From: "I", To: "M", Cause: "fill", Proto: "moesi", TxID: 1})
	rec.Emit(obs.Event{TS: 3, Kind: obs.KindTx, Proc: 1, Addr: 0x40, Col: 6, Op: "R", DI: true, TxID: 2})
	rec.Emit(obs.Event{TS: 4, Kind: obs.KindState, Proc: 1, Addr: 0x40,
		From: "I", To: "M", Cause: "fill", Proto: "moesi", TxID: 2})
	rec.Drain()
	if err := rec.Flush(); err != nil { // fold the partial batch
		t.Fatal(err)
	}

	var rep watch.Report
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL()+"/violations")), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Total == 0 || rep.ByInvariant[watch.InvSingleOwner] == 0 {
		t.Fatalf("/violations missing the single-owner violation: %+v", rep)
	}
	if rep.First == nil || rep.First.Proc != 1 {
		t.Fatalf("first-violation latch wrong: %+v", rep.First)
	}

	text := httpGet(t, srv.URL()+"/metrics")
	if !strings.Contains(text, MetricInvariantViolations) ||
		!strings.Contains(text, `invariant="single-owner"`) ||
		!strings.Contains(text, `proto="moesi"`) {
		t.Fatalf("metrics missing labelled violation counter:\n%s", text)
	}
	if !strings.Contains(text, MetricInvariantLatch+" 1") {
		t.Fatalf("latch should read 1 after a violation:\n%s", text)
	}

	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWatchDisabledEndpointEmpty: without EnableWatch the endpoint
// degrades to an empty document, like /causal and /coherence.
func TestWatchDisabledEndpointEmpty(t *testing.T) {
	leaktest.Check(t)
	svc := NewService(4)
	rec := obs.New(svc.Sinks()...)
	defer rec.Close()
	srv, err := svc.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if body := strings.TrimSpace(httpGet(t, srv.URL()+"/violations")); body != "{}" {
		t.Fatalf("/violations without a watch sink = %q, want {}", body)
	}
}

// TestServiceConcurrentScrapeStreamFold hammers /metrics scrapes and an
// SSE subscriber while the recorder's drain goroutine folds
// CoherenceSink and WatchSink batches — the satellite-3 coverage, run
// under -race in CI.
func TestServiceConcurrentScrapeStreamFold(t *testing.T) {
	leaktest.Check(t)
	svc := NewService(4)
	svc.EnableWatch(watch.Config{})
	rec := obs.New(svc.Sinks()...)
	svc.ObserveRecorder(rec)
	srv, err := svc.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Scrapers: /metrics pulls CounterFunc/GaugeFunc (Coherence.Totals,
	// Watch.Total) while folds mutate the analyzers.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL() + "/metrics")
				if err != nil {
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	// Snapshot readers: /violations and /coherence build reports under
	// the sink mutexes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, p := range []string{"/violations", "/coherence"} {
				resp, err := http.Get(srv.URL() + p)
				if err != nil {
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	// SSE subscriber draining live frames.
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(srv.URL() + "/events")
		if err != nil {
			return
		}
		defer resp.Body.Close()
		buf := make([]byte, 4096)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := resp.Body.Read(buf); err != nil {
				return
			}
		}
	}()

	// Emitter: a legal fill/invalidate cycle over many lines, enough
	// volume to force many 256-event folds in both batch sinks.
	for i := 0; i < 20000; i++ {
		addr := uint64(0x1000 + (i%64)*64)
		txid := uint64(i + 1)
		rec.Emit(obs.Event{TS: int64(i), Kind: obs.KindTx, Proc: i % 4, Addr: addr,
			Col: 6, Op: "R", TxID: txid})
		rec.Emit(obs.Event{TS: int64(i), Kind: obs.KindState, Proc: i % 4, Addr: addr,
			From: "I", To: "M", Cause: "fill", Proto: "moesi", TxID: txid})
		rec.Emit(obs.Event{TS: int64(i), Kind: obs.KindState, Proc: i % 4, Addr: addr,
			From: "M", To: "I", Cause: "snoop-cache-rfo", TxID: txid + 1})
	}
	rec.Drain()
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	srv.Close() // unblocks the SSE subscriber
	wg.Wait()

	if n := svc.Watch.Total(); n != 0 {
		t.Fatalf("legal stream produced %d violations; first: %v", n, svc.Watch.First())
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}
