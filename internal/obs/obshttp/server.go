package obshttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"

	"futurebus/internal/obs"
	"futurebus/internal/obs/ledger"
)

// Server is the embedded observability endpoint. It owns its own mux
// (the global http.DefaultServeMux stays untouched so two servers, or
// a test harness, can coexist) and its own listener, so ":0" works and
// Addr() reports the bound port. The route table is Endpoints().
type Server struct {
	reg       *Registry
	stream    *EventStream
	attr      *obs.AttributionSink
	causal    *CausalSink
	coherence *CoherenceSink
	watch     *WatchSink
	perf      *PerfSink
	trend     *TrendSource

	http *http.Server
	ln   net.Listener
	done chan struct{}
	wg   sync.WaitGroup

	closeOnce sync.Once
	closeErr  error
}

// Endpoint is one route of the observability server.
type Endpoint struct {
	Path string
	Help string
}

// endpointTable is the single source of truth for the server's routes:
// NewServer builds its mux from it and EndpointList renders the banner
// fbsim/fbsweep print, so the two cannot drift (TestEndpointsMatchMux
// asserts the mux serves every entry). The extra /debug/pprof/*
// subpaths hang off the /debug/pprof/ prefix and are registered
// alongside it.
var endpointTable = []struct {
	Endpoint
	handler func(*Server) http.HandlerFunc
}{
	{Endpoint{"/metrics", "Prometheus text exposition of the registry"},
		func(s *Server) http.HandlerFunc { return s.handleMetrics }},
	{Endpoint{"/healthz", `liveness ("ok\n", 200)`},
		func(s *Server) http.HandlerFunc { return s.handleHealthz }},
	{Endpoint{"/events", "SSE tail of the obs event stream (shed when slow)"},
		func(s *Server) http.HandlerFunc { return s.handleEvents }},
	{Endpoint{"/slow", "top-K slowest transactions as JSON"},
		func(s *Server) http.HandlerFunc { return s.handleSlow }},
	{Endpoint{"/causal", "critical-path analysis of the run so far as JSON"},
		func(s *Server) http.HandlerFunc { return s.handleCausal }},
	{Endpoint{"/coherence", "per-protocol MOESI transition analytics as JSON"},
		func(s *Server) http.HandlerFunc { return s.handleCoherence }},
	{Endpoint{"/violations", "runtime invariant monitor report as JSON"},
		func(s *Server) http.HandlerFunc { return s.handleViolations }},
	{Endpoint{"/perf", "saturation telemetry (queue depths, latency quantiles) as JSON"},
		func(s *Server) http.HandlerFunc { return s.handlePerf }},
	{Endpoint{"/trend", "rolling-baseline regression verdict vs the run ledger as JSON"},
		func(s *Server) http.HandlerFunc { return s.handleTrend }},
	{Endpoint{"/debug/pprof/", "Go runtime profiles"},
		func(*Server) http.HandlerFunc { return pprof.Index }},
}

// Endpoints returns the server's route table in serving order.
func Endpoints() []Endpoint {
	out := make([]Endpoint, len(endpointTable))
	for i, e := range endpointTable {
		out[i] = e.Endpoint
	}
	return out
}

// EndpointList renders the endpoint paths as one space-separated line;
// the fbsim/fbsweep -serve flag help and startup banner derive from it
// so they always advertise exactly what the mux serves.
func EndpointList() string {
	parts := make([]string, len(endpointTable))
	for i, e := range endpointTable {
		parts[i] = e.Path
	}
	return strings.Join(parts, " ")
}

// NewServer builds a server over the given registry, stream and
// attribution sink; any of them may be nil, in which case the matching
// endpoint degrades gracefully (404 for /events without a stream,
// empty documents otherwise).
func NewServer(reg *Registry, stream *EventStream, attr *obs.AttributionSink) *Server {
	s := &Server{reg: reg, stream: stream, attr: attr, done: make(chan struct{})}
	mux := http.NewServeMux()
	for _, e := range endpointTable {
		mux.HandleFunc(e.Path, e.handler(s))
	}
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.http = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return s
}

// Listen binds addr (e.g. ":9090" or "127.0.0.1:0") and starts serving
// in a background goroutine. Call Close to stop.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// ErrServerClosed is the normal Close path; anything else is a
		// serve failure the caller cannot see, so there is nothing
		// better to do than stop (scrapes will fail loudly).
		_ = s.http.Serve(ln)
	}()
	return nil
}

// Addr returns the bound listen address (valid after Listen).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns "http://host:port" for the bound address.
func (s *Server) URL() string {
	if s.ln == nil {
		return ""
	}
	return "http://" + s.ln.Addr().String()
}

// Close stops the listener, unblocks every /events subscriber, tears
// down open connections and waits for the serve goroutine to exit.
// Safe to call more than once.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.done) // SSE handlers select on this and return
		s.closeErr = s.http.Close()
		s.wg.Wait()
	})
	return s.closeErr
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.reg != nil {
		_ = s.reg.WritePrometheus(w)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleSlow(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.attr == nil {
		fmt.Fprintln(w, "[]")
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.attr.Slowest())
}

// handleCausal snapshots the causal analyzer and returns the full
// analysis — run totals, blame tables, critical path — as JSON. The
// reconstruction runs per request on the handler goroutine, so the
// simulation itself never pays for it.
func (s *Server) handleCausal(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.causal == nil {
		fmt.Fprintln(w, "{}")
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.causal.Analyze())
}

// handleCoherence snapshots the coherence analyzer and returns the
// per-protocol transition matrices, residency, ownership chains and
// fan-out distributions as JSON. Like /causal, the snapshot is built
// per request on the handler goroutine.
func (s *Server) handleCoherence(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.coherence == nil {
		fmt.Fprintln(w, "{}")
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.coherence.Analyze())
}

// handleViolations snapshots the runtime invariant monitor and returns
// its report — totals, per-(invariant, protocol) counts, the latched
// first violation and the bounded violation records with their causal
// context — as JSON. Built per request on the handler goroutine.
func (s *Server) handleViolations(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.watch == nil {
		fmt.Fprintln(w, "{}")
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.watch.Report())
}

// handlePerf snapshots the saturation telemetry — per-shard
// arbitration queue-depth timelines plus log-bucketed latency
// distributions with quantiles — as JSON. Like /causal, the snapshot
// is built per request on the handler goroutine.
func (s *Server) handlePerf(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.perf == nil {
		fmt.Fprintln(w, "{}")
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.perf.Snapshot())
}

// handleTrend judges the live run against the rolling baseline of the
// attached run ledger (see internal/obs/ledger) and returns the gate
// report as JSON. Without a ledger attached the verdict degrades to
// "no-baseline" rather than 404, so probes can always parse the body.
// The gate is recomputed per request on the handler goroutine.
func (s *Server) handleTrend(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if s.trend == nil {
		_ = enc.Encode(ledger.GateReport{Verdict: "no-baseline"})
		return
	}
	_ = enc.Encode(s.trend.Gate())
}

// handleEvents streams the event tail as server-sent events: the
// replay ring first, then live frames until the client disconnects or
// the server closes. A slow client does not stall the simulation —
// frames it cannot drain are shed upstream in EventStream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.stream == nil {
		http.NotFound(w, r)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	ch, replay, cancel := s.stream.Subscribe()
	defer cancel()
	for _, frame := range replay {
		if writeSSE(w, frame) != nil {
			return
		}
	}
	fl.Flush()
	for {
		select {
		case frame, ok := <-ch:
			if !ok {
				return
			}
			if writeSSE(w, frame) != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		}
	}
}

func writeSSE(w http.ResponseWriter, frame []byte) error {
	_, err := fmt.Fprintf(w, "data: %s\n\n", frame)
	return err
}
