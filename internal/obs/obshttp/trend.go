package obshttp

import (
	"futurebus/internal/obs/ledger"
)

// TrendSource judges the live run against the rolling baseline of a
// run ledger (see internal/obs/ledger and cmd/fbtrend). It holds the
// ledger history loaded at enable time — the ledger is append-only and
// the live process never writes it, so one read at startup is the
// whole contract — and builds the candidate record per request from
// the perf sink's current snapshot.
type TrendSource struct {
	perf    *PerfSink
	history []ledger.Record
	label   string
	opts    ledger.GateOpts
}

// NewTrendSource loads the ledger at path and filters it to fbperf
// records with the given label ("" keeps every fbperf record — fine
// when the ledger holds a single battery series). A truncated trailing
// record is tolerated, as everywhere else the ledger is read.
func NewTrendSource(path, label string, perfSink *PerfSink, opts ledger.GateOpts) (*TrendSource, error) {
	recs, _, err := ledger.Read(path)
	if err != nil {
		return nil, err
	}
	return &TrendSource{
		perf:    perfSink,
		history: ledger.Filter(recs, ledger.KindPerf, label),
		label:   label,
		opts:    opts,
	}, nil
}

// Gate snapshots the live perf telemetry and judges it against the
// rolling baseline. The candidate carries the same metric keys the
// fbperf ingester writes (perf.*_ns quantiles, queue depth, fairness),
// so a live verdict and a ledgered one agree on names; host-cost
// metrics only exist in finished fbperf reports and are simply absent
// here.
func (t *TrendSource) Gate() ledger.GateReport {
	cand := ledger.Record{
		Schema:  ledger.Schema,
		Kind:    ledger.KindPerf,
		Label:   t.label,
		Metrics: make(map[string]float64),
	}
	snap := t.perf.Snapshot()
	for name, s := range snap.Latency {
		cand.Metrics[name+".p50"] = float64(s.P50)
		cand.Metrics[name+".p99"] = float64(s.P99)
		cand.Metrics[name+".p999"] = float64(s.P999)
	}
	cand.Metrics["queue.peak_depth"] = float64(snap.PeakQueueDepth())
	if snap.ArbFairness > 0 {
		cand.Metrics["queue.arb_fairness"] = snap.ArbFairness
	}
	return ledger.Gate(t.history, cand, t.opts)
}

// EnableTrend attaches a rolling-baseline trend source to the service:
// /trend serves the live run's gate verdict against the ledger at
// path. Call before Serve. Idempotent — a second call returns the
// first source.
func (s *Service) EnableTrend(path, label string, opts ledger.GateOpts) (*TrendSource, error) {
	if s.Trend != nil {
		return s.Trend, nil
	}
	t, err := NewTrendSource(path, label, s.Perf, opts)
	if err != nil {
		return nil, err
	}
	s.Trend = t
	return t, nil
}
