package obshttp

import (
	"encoding/json"
	"sync"

	"futurebus/internal/obs"
)

// DefaultReplay is how many recent frames a new /events subscriber is
// handed before live frames start — enough for a scrape-and-go client
// (the CI smoke test) to observe traffic deterministically even if it
// attaches between bursts.
const DefaultReplay = 64

// DefaultSubscriberBuffer is the per-subscriber channel depth before
// shedding starts.
const DefaultSubscriberBuffer = 256

// EventStream is a Sink that fans the event stream out to HTTP
// subscribers as pre-marshalled JSON frames. The drain goroutine must
// never block on a slow consumer: sends are non-blocking and frames a
// subscriber cannot keep up with are shed (counted per subscriber and
// globally), mirroring how the JSONL sink handles backpressure by not
// having any.
type EventStream struct {
	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	replay [][]byte // ring of the most recent frames, oldest first
	shed   int64    // frames dropped across all subscribers
	frames int64    // frames marshalled
}

type subscriber struct {
	ch   chan []byte
	shed int64 // frames this subscriber missed
}

// NewEventStream creates a stream with the default replay depth.
func NewEventStream() *EventStream {
	return &EventStream{subs: make(map[*subscriber]struct{})}
}

// Consume implements obs.Sink: marshal once, fan out without blocking.
func (es *EventStream) Consume(e *obs.Event) {
	frame, err := json.Marshal(e)
	if err != nil {
		return // events are plain structs; this cannot happen
	}
	es.mu.Lock()
	es.frames++
	if len(es.replay) == DefaultReplay {
		copy(es.replay, es.replay[1:])
		es.replay[len(es.replay)-1] = frame
	} else {
		es.replay = append(es.replay, frame)
	}
	for s := range es.subs {
		select {
		case s.ch <- frame:
		default:
			s.shed++
			es.shed++
		}
	}
	es.mu.Unlock()
}

// Flush implements obs.Sink.
func (es *EventStream) Flush() error { return nil }

// Subscribe registers a consumer. It returns the frame channel, a
// snapshot of the replay ring (frames that arrived before this
// subscriber), and a cancel function that must be called exactly once;
// after cancel the channel is closed.
func (es *EventStream) Subscribe() (<-chan []byte, [][]byte, func()) {
	s := &subscriber{ch: make(chan []byte, DefaultSubscriberBuffer)}
	es.mu.Lock()
	es.subs[s] = struct{}{}
	replay := append([][]byte(nil), es.replay...)
	es.mu.Unlock()
	cancel := func() {
		es.mu.Lock()
		_, live := es.subs[s]
		delete(es.subs, s)
		es.mu.Unlock()
		if live {
			close(s.ch)
		}
	}
	return s.ch, replay, cancel
}

// Stats reports frames marshalled and frames shed across all
// subscribers since creation.
func (es *EventStream) Stats() (frames, shed int64) {
	es.mu.Lock()
	defer es.mu.Unlock()
	return es.frames, es.shed
}
