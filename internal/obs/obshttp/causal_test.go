package obshttp

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"futurebus/internal/obs"
	"futurebus/internal/obs/causal"
	"futurebus/internal/obs/leaktest"
)

// TestRegistryCounterFunc: pull-style counters render like counters and
// track the underlying value.
func TestRegistryCounterFunc(t *testing.T) {
	reg := NewRegistry()
	var v int64
	reg.CounterFunc("pull_total", "", "a pulled counter", func() int64 { return v })
	v = 7
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{"# TYPE pull_total counter", "pull_total 7\n"} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
}

// TestCausalEndpointAndDroppedMetric: /causal serves the reconstructed
// analysis as JSON and ObserveRecorder exposes the recorder's shed
// counter on /metrics.
func TestCausalEndpointAndDroppedMetric(t *testing.T) {
	leaktest.Check(t)
	svc := NewService(4)
	rec := obs.New(svc.Sinks()...)
	svc.ObserveRecorder(rec)
	srv, err := svc.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// One blocked transaction chain: tx 1, then tx 2 granted after
	// waiting behind it.
	rec.Emit(obs.Event{Seq: 0, TS: 0, Kind: obs.KindGrant, Proc: 0, TxID: 1})
	rec.Emit(obs.Event{Seq: 1, TS: 0, Dur: 400, Kind: obs.KindTx, Proc: 0,
		Op: "R", AddrNS: 125, DataNS: 275, TxID: 1})
	rec.Emit(obs.Event{Seq: 2, TS: 400, Dur: 400, Kind: obs.KindGrant, Proc: 1, TxID: 2, CauseID: 1})
	rec.Emit(obs.Event{Seq: 3, TS: 400, Dur: 300, Kind: obs.KindTx, Proc: 1,
		Op: "W", ArbNS: 400, AddrNS: 125, DataNS: 175, TxID: 2})
	rec.Drain()

	get := func(path string) string {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	var an causal.Analysis
	if err := json.Unmarshal([]byte(get("/causal")), &an); err != nil {
		t.Fatal(err)
	}
	if an.Txs != 2 {
		t.Errorf("/causal Txs = %d, want 2", an.Txs)
	}
	if len(an.Path) != 2 || an.Path[1].Via != causal.CauseArbWait {
		t.Errorf("/causal path = %+v, want blocker → blocked via arb-wait", an.Path)
	}
	if an.TotalWait != 400 {
		t.Errorf("/causal TotalWait = %d, want 400", an.TotalWait)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE " + MetricDropped + " counter",
		MetricDropped + " 0\n",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil && err != http.ErrServerClosed {
		t.Fatal(err)
	}
}
