package obshttp

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"futurebus/internal/obs"
)

// TestRegistryTextEscaping: label values reach the registry
// preformatted with %q, so quotes, backslashes and newlines in
// protocol or cause names must come out as valid Prometheus text
// escapes — one series per line, label value properly quoted.
func TestRegistryTextEscaping(t *testing.T) {
	reg := NewRegistry()
	for _, raw := range []string{`plain`, `quo"te`, `back\slash`, "new\nline"} {
		reg.Counter("esc_total", fmt.Sprintf("proto=%q", raw), "escaping").Inc()
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`esc_total{proto="plain"} 1`,
		`esc_total{proto="quo\"te"} 1`,
		`esc_total{proto="back\\slash"} 1`,
		`esc_total{proto="new\nline"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	// A raw newline inside a series line would corrupt the format:
	// every line must be a header or start with the family name.
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "esc_total{") {
			continue
		}
		t.Errorf("stray exposition line %q — unescaped label bleed", line)
	}
}

// TestRegistryGaugeFormatting: gauge and counter values render the way
// Prometheus parses them — integers without exponents, NaN/±Inf
// spelled out.
func TestRegistryGaugeFormatting(t *testing.T) {
	reg := NewRegistry()
	vals := map[string]float64{
		"int":  42,
		"big":  1e14,
		"frac": 0.125,
		"nan":  math.NaN(),
		"pinf": math.Inf(1),
		"ninf": math.Inf(-1),
	}
	for name, v := range vals {
		v := v
		reg.GaugeFunc("fmt_gauge", fmt.Sprintf("case=%q", name), "formatting", func() float64 { return v })
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`fmt_gauge{case="int"} 42` + "\n",
		`fmt_gauge{case="big"} 100000000000000` + "\n",
		`fmt_gauge{case="frac"} 0.125` + "\n",
		`fmt_gauge{case="nan"} NaN` + "\n",
		`fmt_gauge{case="pinf"} +Inf` + "\n",
		`fmt_gauge{case="ninf"} -Inf` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
}

// TestSSEReplayAfterShed: after a slow subscriber forced shedding, a
// reconnecting subscriber's replay ring must be a coherent snapshot —
// contiguous sequence numbers ending at the newest event, no gaps or
// duplicates inside the window — and live frames must continue exactly
// where the replay left off.
func TestSSEReplayAfterShed(t *testing.T) {
	es := NewEventStream()
	// A subscriber that never drains, to force the shed path.
	_, _, cancelSlow := es.Subscribe()
	defer cancelSlow()
	total := DefaultSubscriberBuffer + 3*DefaultReplay
	for i := 0; i < total; i++ {
		es.Consume(&obs.Event{Kind: obs.KindState, Seq: uint64(i)})
	}
	if _, shed := es.Stats(); shed == 0 {
		t.Fatal("test did not force shedding")
	}

	ch, replay, cancel := es.Subscribe()
	defer cancel()
	if len(replay) != DefaultReplay {
		t.Fatalf("replay depth = %d, want %d", len(replay), DefaultReplay)
	}
	seqs := make([]uint64, len(replay))
	for i, frame := range replay {
		var e obs.Event
		if err := json.Unmarshal(frame, &e); err != nil {
			t.Fatalf("replay frame %d: %v", i, err)
		}
		seqs[i] = e.Seq
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("replay not contiguous at %d: seq %d follows %d", i, seqs[i], seqs[i-1])
		}
	}
	if last := seqs[len(seqs)-1]; last != uint64(total-1) {
		t.Errorf("replay tail seq = %d, want newest event %d", last, total-1)
	}

	// The next live frame continues the snapshot without gap or repeat.
	es.Consume(&obs.Event{Kind: obs.KindState, Seq: uint64(total)})
	select {
	case frame := <-ch:
		var e obs.Event
		if err := json.Unmarshal(frame, &e); err != nil {
			t.Fatal(err)
		}
		if e.Seq != uint64(total) {
			t.Errorf("first live frame seq = %d, want %d", e.Seq, total)
		}
	default:
		t.Fatal("no live frame delivered to fresh subscriber")
	}
}
