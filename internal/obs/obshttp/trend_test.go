package obshttp

import (
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"testing"

	"futurebus/internal/obs"
	"futurebus/internal/obs/ledger"
)

// trendLedger writes a 5-run fbperf ledger whose arb-wait p99 sits at
// p99 ns and returns its path.
func trendLedger(t *testing.T, p99 float64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	for i := 0; i < 5; i++ {
		rec := ledger.Record{
			Schema: ledger.Schema,
			Kind:   ledger.KindPerf,
			Metrics: map[string]float64{
				"perf.arb_wait_ns.p99":  p99,
				"perf.arb_wait_ns.p50":  p99 / 2,
				"perf.arb_wait_ns.p999": p99,
				"queue.peak_depth":      1,
			},
		}
		if err := ledger.Append(path, rec); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

// TestTrendEndpointNoBaseline: without EnableTrend the endpoint still
// answers valid JSON with a "no-baseline" verdict, so probes can parse
// it unconditionally.
func TestTrendEndpointNoBaseline(t *testing.T) {
	svc := NewService(4)
	srv, err := svc.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(srv.URL() + "/trend")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var rep ledger.GateReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("/trend not valid JSON: %v\n%s", err, body)
	}
	if rep.Verdict != "no-baseline" {
		t.Errorf("verdict = %q, want no-baseline", rep.Verdict)
	}
}

// TestTrendEndpointLiveVerdict: the live run is judged against the
// ledger's rolling baseline — clean when it matches the history,
// regressed when the live arb-wait quantiles blow past it.
func TestTrendEndpointLiveVerdict(t *testing.T) {
	const base = 64 // live KindGrant Dur below; ledger baseline matches
	svc := NewService(4)
	if _, err := svc.EnableTrend(trendLedger(t, base), "", ledger.GateOpts{}); err != nil {
		t.Fatal(err)
	}
	rec := obs.New(svc.Sinks()...)
	srv, err := svc.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rec.Emit(obs.Event{Kind: obs.KindGrant, Bus: 0, TS: 100, Dur: base})
	rec.Drain()

	get := func() ledger.GateReport {
		t.Helper()
		resp, err := http.Get(srv.URL() + "/trend")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		var rep ledger.GateReport
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatalf("/trend not valid JSON: %v\n%s", err, body)
		}
		return rep
	}
	if rep := get(); rep.Verdict != "ok" {
		t.Fatalf("matching live run verdict = %q, want ok (%+v)", rep.Verdict, rep)
	}

	// Blow the live arb wait far past the baseline (and the 1µs ns
	// floor); the verdict must flip without restarting the server.
	rec.Emit(obs.Event{Kind: obs.KindGrant, Bus: 0, TS: 200, Dur: 500000})
	rec.Drain()
	rep := get()
	if rep.Verdict != "regressed" {
		t.Fatalf("blown live run verdict = %q, want regressed (%+v)", rep.Verdict, rep)
	}
	found := false
	for _, row := range rep.Rows {
		if row.Key == "perf.arb_wait_ns.p99" && row.Direction == "regressed" {
			found = true
		}
	}
	if !found {
		t.Errorf("p99 row not marked regressed: %+v", rep.Rows)
	}
}

// TestTrendSourceBadLedger: a damaged ledger is a loud setup error,
// not a silently empty baseline.
func TestTrendSourceBadLedger(t *testing.T) {
	svc := NewService(4)
	if _, err := svc.EnableTrend(filepath.Join(t.TempDir(), "missing.jsonl"), "", ledger.GateOpts{}); err == nil {
		t.Error("EnableTrend on a missing ledger should fail")
	}
}
