package ledger

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"futurebus/internal/obs"
	"futurebus/internal/obs/coherence"
)

// Ingest sniffs the report format in data and folds it into ledger
// records: one record per run, except fbsweep docs which yield one
// record per battery table. source is recorded on each record
// (best-effort provenance; pass "" if unknown).
//
// Supported formats:
//
//   - BENCH_*.json (scripts/bench.sh): flat benchmark → metric object
//     with an embedded _meta block;
//   - fbperf run reports: _meta, battery, sim quantiles, host costs;
//   - fbcausal analyze -json: run totals and per-cause blame;
//   - fblens analyze -json: per-protocol coherence rates;
//   - fbsweep -json: the battery document with its report tables.
func Ingest(data []byte, source string) ([]Record, error) {
	data = []byte(strings.TrimSpace(string(data)))
	if len(data) == 0 {
		return nil, fmt.Errorf("ledger: empty report")
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		return nil, fmt.Errorf("ledger: unrecognized report (not a JSON object): %w", err)
	}
	switch {
	case top["reports"] != nil:
		return ingestSweep(data, source)
	case top["battery"] != nil && top["sim"] != nil:
		rec, err := ingestPerf(data, source)
		return wrap(rec, err)
	case top["by_cause"] != nil && top["path_cost_ns"] != nil:
		rec, err := ingestCausal(data, source)
		return wrap(rec, err)
	case top["state_events"] != nil && top["protocols"] != nil:
		rec, err := ingestLens(data, source)
		return wrap(rec, err)
	case hasBenchmarkKey(top): // _meta is optional (pre-provenance BENCH files lack it)
		rec, err := ingestBench(data, source)
		return wrap(rec, err)
	default:
		return nil, fmt.Errorf("ledger: unrecognized report format (no bench/fbperf/fbcausal/fblens/fbsweep markers)")
	}
}

func wrap(rec Record, err error) ([]Record, error) {
	if err != nil {
		return nil, err
	}
	return []Record{rec}, nil
}

func hasBenchmarkKey(top map[string]json.RawMessage) bool {
	for k := range top {
		if strings.HasPrefix(k, "Benchmark") {
			return true
		}
	}
	return false
}

// ingestBench folds a BENCH_*.json document: every benchmark's metric
// pairs become "bench.<name>.<unit>" keys ("runs" is bookkeeping, not
// a metric).
func ingestBench(data []byte, source string) (Record, error) {
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		return Record{}, err
	}
	rec := newRecord(KindBench, "", source)
	if raw, ok := doc["_meta"]; ok {
		if err := json.Unmarshal(raw, &rec.Meta); err != nil {
			return Record{}, fmt.Errorf("ledger: bench _meta: %w", err)
		}
	}
	for name, raw := range doc {
		if !strings.HasPrefix(name, "Benchmark") {
			continue
		}
		var metrics map[string]float64
		if err := json.Unmarshal(raw, &metrics); err != nil {
			return Record{}, fmt.Errorf("ledger: bench entry %s: %w", name, err)
		}
		for unit, v := range metrics {
			if unit == "runs" {
				continue
			}
			rec.Metrics["bench."+name+"."+unit] = v
		}
	}
	if len(rec.Metrics) == 0 {
		return Record{}, fmt.Errorf("ledger: bench document carries no benchmark metrics")
	}
	return rec, nil
}

// perfReport mirrors the fbperf run report shape (cmd/fbperf.Report)
// without importing the main package.
type perfReport struct {
	Meta    Meta   `json:"_meta"`
	Battery string `json:"battery"`
	Engine  string `json:"engine"`
	Procs   int    `json:"procs"`
	Host    struct {
		WallNS             int64   `json:"wall_ns"`
		AllocBytesPerRef   float64 `json:"alloc_bytes_per_ref"`
		AllocObjectsPerRef float64 `json:"alloc_objects_per_ref"`
		RefsPerSec         float64 `json:"refs_per_sec"`
		GCPauseTotalNS     uint64  `json:"gc_pause_total_ns"`
	} `json:"host"`
	Sim *struct {
		Latency map[string]obs.Summary `json:"latency"`
		Queue   []struct {
			Peak int64 `json:"peak"`
		} `json:"queue"`
		Nacks       int64   `json:"nacks"`
		ArbFairness float64 `json:"arb_fairness"`
	} `json:"sim"`
}

// ingestPerf folds an fbperf run report. Metric keys match the rows
// fbperf compare prints (perf.*_ns.p50/.p99/.p999, queue.peak_depth,
// host.*), so the two views of a run agree on names; the battery/
// engine/procs tuple becomes the label separating incomparable series.
func ingestPerf(data []byte, source string) (Record, error) {
	var rep perfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return Record{}, fmt.Errorf("ledger: fbperf report: %w", err)
	}
	if rep.Sim == nil {
		return Record{}, fmt.Errorf("ledger: fbperf report has no sim telemetry")
	}
	rec := newRecord(KindPerf, fmt.Sprintf("%s/%s/p%d", rep.Battery, rep.Engine, rep.Procs), source)
	rec.Meta = rep.Meta
	for name, s := range rep.Sim.Latency {
		rec.Metrics[name+".p50"] = float64(s.P50)
		rec.Metrics[name+".p99"] = float64(s.P99)
		rec.Metrics[name+".p999"] = float64(s.P999)
	}
	var peak int64
	for _, q := range rep.Sim.Queue {
		if q.Peak > peak {
			peak = q.Peak
		}
	}
	rec.Metrics["queue.peak_depth"] = float64(peak)
	if rep.Sim.ArbFairness > 0 {
		rec.Metrics["queue.arb_fairness"] = rep.Sim.ArbFairness
	}
	rec.Metrics["host.alloc_bytes_per_ref"] = rep.Host.AllocBytesPerRef
	rec.Metrics["host.alloc_objects_per_ref"] = rep.Host.AllocObjectsPerRef
	rec.Metrics["host.wall_ns"] = float64(rep.Host.WallNS)
	rec.Metrics["host.gc_pause_total_ns"] = float64(rep.Host.GCPauseTotalNS)
	rec.Metrics["host.refs_per_sec"] = rep.Host.RefsPerSec
	return rec, nil
}

// causalReport mirrors the fbcausal analyze -json shape (totals and
// blame tables; the path itself is not a metric).
type causalReport struct {
	Fingerprint string           `json:"fingerprint"`
	Txs         int64            `json:"txs"`
	ElapsedNS   int64            `json:"elapsed_ns"`
	TotalCostNS int64            `json:"total_cost_ns"`
	TotalWaitNS int64            `json:"total_wait_ns"`
	Aborts      int64            `json:"aborts"`
	ByCause     map[string]int64 `json:"by_cause"`
	ByPhase     map[string]int64 `json:"by_phase"`
	PathCostNS  int64            `json:"path_cost_ns"`
}

// ingestCausal folds an fbcausal analysis: run totals plus the
// per-cause blame vector, labelled by the trace's config fingerprint.
func ingestCausal(data []byte, source string) (Record, error) {
	var rep causalReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return Record{}, fmt.Errorf("ledger: fbcausal report: %w", err)
	}
	rec := newRecord(KindCausal, rep.Fingerprint, source)
	rec.Metrics["causal.txs"] = float64(rep.Txs)
	rec.Metrics["causal.elapsed_ns"] = float64(rep.ElapsedNS)
	rec.Metrics["causal.total_cost_ns"] = float64(rep.TotalCostNS)
	rec.Metrics["causal.total_wait_ns"] = float64(rep.TotalWaitNS)
	rec.Metrics["causal.path_cost_ns"] = float64(rep.PathCostNS)
	rec.Metrics["causal.aborts"] = float64(rep.Aborts)
	for cause, v := range rep.ByCause {
		rec.Metrics["causal.by_cause."+sanitizeKey(cause)+"_ns"] = float64(v)
	}
	return rec, nil
}

// lensReport mirrors the fblens analyze -json shape: the fingerprint
// wrapper around a coherence.Analysis.
type lensReport struct {
	Fingerprint string `json:"fingerprint"`
	coherence.Analysis
}

// ingestLens folds an fblens analysis into the same six per-protocol
// rates fblens diff gates on (coherence.Diff), plus the raw transition
// count for context.
func ingestLens(data []byte, source string) (Record, error) {
	var rep lensReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return Record{}, fmt.Errorf("ledger: fblens report: %w", err)
	}
	rec := newRecord(KindLens, rep.Fingerprint, source)
	for name, p := range rep.Protocols {
		prefix := "lens." + sanitizeKey(name) + "."
		rec.Metrics[prefix+"transitions"] = float64(p.Transitions)
		rec.Metrics[prefix+"inv_per_transition"] = ratio(p.Invalidations, p.Transitions)
		rec.Metrics[prefix+"ownership_moves_per_transition"] = ratio(p.OwnershipMoves, p.Transitions)
		rec.Metrics[prefix+"inv_fanout_mean"] = coherence.FanoutMean(p.InvFanout)
		rec.Metrics[prefix+"upd_fanout_mean"] = coherence.FanoutMean(p.UpdFanout)
		rec.Metrics[prefix+"mem_sourced_share"] = ratio(p.MemSourced, p.CacheSourced+p.MemSourced)
		rec.Metrics[prefix+"cache_sourced_share"] = ratio(p.CacheSourced, p.CacheSourced+p.MemSourced)
	}
	if len(rec.Metrics) == 0 {
		return Record{}, fmt.Errorf("ledger: fblens report carries no protocols")
	}
	return rec, nil
}

// sweepDoc mirrors the fbsweep -json document.
type sweepDoc struct {
	Meta    Meta `json:"_meta"`
	Fbsweep struct {
		Exp    string `json:"exp"`
		Refs   int    `json:"refs"`
		Seed   uint64 `json:"seed"`
		Shards int    `json:"shards"`
	} `json:"fbsweep"`
	Reports []struct {
		ID      string     `json:"id"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	} `json:"reports"`
}

// ingestSweep folds an fbsweep -json battery document: one record per
// report table (label = report ID), each row keyed by its non-numeric
// cells ("sweep.<rowkey>.<column>" = numeric cell). The P1 protocol
// grid and the P11 tenure×discipline grid both flatten this way.
func ingestSweep(data []byte, source string) ([]Record, error) {
	var doc sweepDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("ledger: fbsweep doc: %w", err)
	}
	var recs []Record
	for _, rep := range doc.Reports {
		rec := newRecord(KindSweep, rep.ID, source)
		rec.Meta = doc.Meta
		for ri, row := range rep.Rows {
			var keyParts []string
			type numCell struct {
				col string
				v   float64
			}
			var nums []numCell
			for ci, cell := range row {
				col := fmt.Sprintf("col%d", ci)
				if ci < len(rep.Columns) {
					col = rep.Columns[ci]
				}
				if v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64); err == nil {
					nums = append(nums, numCell{sanitizeKey(col), v})
				} else {
					keyParts = append(keyParts, sanitizeKey(cell))
				}
			}
			rowKey := strings.Join(keyParts, "/")
			if rowKey == "" {
				rowKey = fmt.Sprintf("row%d", ri)
			}
			for _, nc := range nums {
				rec.Metrics["sweep."+rowKey+"."+nc.col] = nc.v
			}
		}
		if len(rec.Metrics) > 0 {
			recs = append(recs, rec)
		}
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("ledger: fbsweep doc carries no numeric cells")
	}
	return recs, nil
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// sanitizeKey folds a free-form cell or column name into the metric-key
// alphabet: "/" (a rate) becomes "_per_" as in bench.sh, and anything
// outside [A-Za-z0-9_.%+-] becomes "_".
func sanitizeKey(s string) string {
	s = strings.ReplaceAll(s, "/", "_per_")
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '_' || r == '.' || r == '%' || r == '+' || r == '-':
			return r
		default:
			return '_'
		}
	}, s)
}

func newRecord(kind, label, source string) Record {
	return Record{
		Schema:  Schema,
		Kind:    kind,
		Label:   label,
		Source:  source,
		Metrics: make(map[string]float64),
	}
}

func sortedKeys(set map[string]bool) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
