package ledger

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleRecord(label string, metrics map[string]float64) Record {
	return Record{
		Schema: Schema,
		Kind:   KindPerf,
		Label:  label,
		Source: "test.json",
		Meta: Meta{
			GitSHA:     "abc1234",
			Go:         "go1.22.0",
			GOMAXPROCS: 8,
			CPUs:       8,
			DateUTC:    "2026-08-08T00:00:00Z",
		},
		Metrics: metrics,
	}
}

// TestLedgerSchemaAppendOnly pins the JSON field names of the ledger
// record, mirroring TestFbtSchemaAppendOnly: the ledger is an
// append-only file format read across many commits, so renaming or
// removing a field silently orphans every existing ledger line. If
// this test fails, the only acceptable fix is restoring the old names
// and ADDING new fields (bumping Schema if a field genuinely must
// change meaning).
func TestLedgerSchemaAppendOnly(t *testing.T) {
	rec := sampleRecord("battery/atomic/p8", map[string]float64{"perf.arb_wait_ns.p99": 4200})
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]json.RawMessage
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"schema", "kind", "label", "source", "_meta", "metrics"} {
		if _, ok := got[field]; !ok {
			t.Errorf("record is missing field %q — ledger field names are append-only", field)
		}
	}
	var meta map[string]json.RawMessage
	if err := json.Unmarshal(got["_meta"], &meta); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"git_sha", "go", "gomaxprocs", "cpus", "date_utc"} {
		if _, ok := meta[field]; !ok {
			t.Errorf("_meta is missing field %q — ledger field names are append-only", field)
		}
	}
	if Schema != 1 {
		t.Errorf("Schema = %d, want 1 — bump only when an existing field changes meaning", Schema)
	}
	for name, kind := range map[string]string{
		"KindBench": KindBench, "KindPerf": KindPerf, "KindCausal": KindCausal,
		"KindLens": KindLens, "KindSweep": KindSweep,
	} {
		want := map[string]string{
			"KindBench": "bench", "KindPerf": "fbperf", "KindCausal": "fbcausal",
			"KindLens": "fblens", "KindSweep": "fbsweep",
		}[name]
		if kind != want {
			t.Errorf("%s = %q, want %q — kind strings are part of the on-disk format", name, kind, want)
		}
	}
}

// TestAppendReadRoundTrip: records survive Append/Read bit-exact, and
// appending again extends the file instead of rewriting it.
func TestAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	r1 := sampleRecord("a", map[string]float64{"perf.arb_wait_ns.p99": 4200, "queue.peak_depth": 3})
	r2 := sampleRecord("a", map[string]float64{"perf.arb_wait_ns.p99": 4300, "queue.peak_depth": 3})
	if err := Append(path, r1); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, r2); err != nil {
		t.Fatal(err)
	}
	recs, dropped, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Errorf("dropped = %d, want 0", dropped)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d records, want 2", len(recs))
	}
	if !reflect.DeepEqual(recs[0], r1) || !reflect.DeepEqual(recs[1], r2) {
		t.Errorf("round-trip mismatch:\n got %+v\n     %+v\nwant %+v\n     %+v", recs[0], recs[1], r1, r2)
	}
}

// TestTruncatedTrailingRecordTolerated: a crashed writer leaves a
// partial last line; the reader must keep everything before it and
// report exactly one dropped record.
func TestTruncatedTrailingRecordTolerated(t *testing.T) {
	r1 := sampleRecord("a", map[string]float64{"m": 1})
	full, err := json.Marshal(r1)
	if err != nil {
		t.Fatal(err)
	}
	line := string(full)
	input := line + "\n" + line[:len(line)/2]
	recs, dropped, err := Decode(strings.NewReader(input))
	if err != nil {
		t.Fatalf("truncated tail must be tolerated, got %v", err)
	}
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	if len(recs) != 1 || !reflect.DeepEqual(recs[0], r1) {
		t.Errorf("history before the truncation lost: got %d records", len(recs))
	}
}

// TestMidFileCorruptionIsAnError: a bad line FOLLOWED by more records
// is damage, not an interrupted append — refusing to guess beats
// silently skipping history.
func TestMidFileCorruptionIsAnError(t *testing.T) {
	r1 := sampleRecord("a", map[string]float64{"m": 1})
	full, err := json.Marshal(r1)
	if err != nil {
		t.Fatal(err)
	}
	line := string(full)
	for _, input := range []string{
		line + "\n{garbage\n" + line + "\n",               // bad then valid
		line + "\n{garbage\n{more garbage\n",              // bad then bad
		line + "\n" + `{"schema":1}` + "\n" + line + "\n", // kind-less then valid
	} {
		if _, _, err := Decode(strings.NewReader(input)); err == nil {
			t.Errorf("mid-file corruption not rejected for input %q", input)
		}
	}
}

// TestBlankLinesIgnored: blank separator lines (hand-edited ledgers)
// are not records and not corruption.
func TestBlankLinesIgnored(t *testing.T) {
	r1 := sampleRecord("a", map[string]float64{"m": 1})
	full, _ := json.Marshal(r1)
	recs, dropped, err := Decode(strings.NewReader("\n" + string(full) + "\n\n" + string(full) + "\n\n"))
	if err != nil || dropped != 0 || len(recs) != 2 {
		t.Errorf("blank lines mishandled: recs=%d dropped=%d err=%v", len(recs), dropped, err)
	}
}

func TestFilterAndKeys(t *testing.T) {
	recs := []Record{
		sampleRecord("a", map[string]float64{"x": 1, "y": 2}),
		sampleRecord("b", map[string]float64{"y": 3, "z": 4}),
		{Schema: Schema, Kind: KindBench, Metrics: map[string]float64{"w": 5}},
	}
	if got := Filter(recs, KindPerf, ""); len(got) != 2 {
		t.Errorf("Filter(kind=fbperf) = %d records, want 2", len(got))
	}
	if got := Filter(recs, KindPerf, "b"); len(got) != 1 || got[0].Label != "b" {
		t.Errorf("Filter(kind=fbperf,label=b) wrong: %+v", got)
	}
	if got := Filter(recs, "", ""); len(got) != 3 {
		t.Errorf("Filter(all) = %d records, want 3", len(got))
	}
	if got := Keys(recs); !reflect.DeepEqual(got, []string{"w", "x", "y", "z"}) {
		t.Errorf("Keys = %v, want [w x y z]", got)
	}
}

func TestSeries(t *testing.T) {
	recs := []Record{
		sampleRecord("a", map[string]float64{"m": 1}),
		sampleRecord("a", map[string]float64{"other": 9}),
		sampleRecord("a", map[string]float64{"m": 2}),
		sampleRecord("a", map[string]float64{"m": 3}),
	}
	if got := Series(recs, "m"); !reflect.DeepEqual(got, []float64{1, 2, 3}) {
		t.Errorf("Series = %v, want [1 2 3]", got)
	}
}

// gateHistory builds n history records of one flat metric value. The
// p99 level is chosen well above the 1µs absolute ns floor so a 20%
// step is a genuine move, not floor-sized wobble.
func gateHistory(n int, v float64) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = sampleRecord("a", map[string]float64{
			"perf.arb_wait_ns.p99":     v,
			"host.alloc_bytes_per_ref": 100,
			"host.wall_ns":             1e9 * float64(1+i%3), // noisy advisory
		})
	}
	return recs
}

// TestGateCleanOnRepeat is the acceptance contract's clean half: a
// candidate identical to a 5-run flat baseline gates ok — including
// wildly noisy advisory metrics, which must never flip the verdict.
func TestGateCleanOnRepeat(t *testing.T) {
	hist := gateHistory(5, 42000)
	cand := sampleRecord("a", map[string]float64{
		"perf.arb_wait_ns.p99":     42000,
		"host.alloc_bytes_per_ref": 100,
		"host.wall_ns":             9e9, // 3-9x the history: advisory, must not gate
	})
	rep := Gate(hist, cand, GateOpts{})
	if rep.Verdict != "ok" {
		t.Fatalf("verdict = %q, want ok (report %+v)", rep.Verdict, rep)
	}
	if rep.Regressions != 0 {
		t.Errorf("regressions = %d, want 0", rep.Regressions)
	}
}

// TestGateCatchesInjectedRegression is the acceptance contract's other
// half: a ≥20% p99 step against a 5-run rolling baseline exits the
// gate regressed, and an allocation step is caught the same way.
func TestGateCatchesInjectedRegression(t *testing.T) {
	hist := gateHistory(5, 42000)
	cand := sampleRecord("a", map[string]float64{
		"perf.arb_wait_ns.p99":     42000 * 1.20,
		"host.alloc_bytes_per_ref": 100 * 1.25,
	})
	rep := Gate(hist, cand, GateOpts{})
	if rep.Verdict != "regressed" {
		t.Fatalf("verdict = %q, want regressed (report %+v)", rep.Verdict, rep)
	}
	if rep.Regressions != 2 {
		t.Errorf("regressions = %d, want 2 (p99 and alloc_bytes)", rep.Regressions)
	}
	for _, row := range rep.Rows {
		if row.Key == "perf.arb_wait_ns.p99" && row.Direction != "regressed" {
			t.Errorf("p99 row direction = %q, want regressed", row.Direction)
		}
	}
}

// TestGateBetterUpMetricImprovement: a big jump in a better-up metric
// (fairness) classifies improved, not regressed.
func TestGateBetterUpMetricImprovement(t *testing.T) {
	hist := make([]Record, 5)
	for i := range hist {
		hist[i] = sampleRecord("a", map[string]float64{"queue.arb_fairness": 0.5})
	}
	cand := sampleRecord("a", map[string]float64{"queue.arb_fairness": 0.9})
	rep := Gate(hist, cand, GateOpts{})
	if rep.Verdict != "ok" || rep.Improvements != 1 {
		t.Errorf("fairness jump: verdict=%q improvements=%d, want ok/1 (%+v)", rep.Verdict, rep.Improvements, rep.Rows)
	}
	// And the bad direction still trips.
	worse := sampleRecord("a", map[string]float64{"queue.arb_fairness": 0.2})
	if rep := Gate(hist, worse, GateOpts{}); rep.Verdict != "regressed" {
		t.Errorf("fairness drop: verdict=%q, want regressed", rep.Verdict)
	}
}

// TestGateNoBaseline: a single prior run is a pairwise diff, not a
// baseline — the gate must refuse a verdict rather than invent one.
func TestGateNoBaseline(t *testing.T) {
	hist := gateHistory(1, 42000)
	cand := sampleRecord("a", map[string]float64{"perf.arb_wait_ns.p99": 9000})
	rep := Gate(hist, cand, GateOpts{})
	if rep.Verdict != "no-baseline" {
		t.Errorf("verdict = %q, want no-baseline", rep.Verdict)
	}
	if rep := Gate(nil, cand, GateOpts{}); rep.Verdict != "no-baseline" {
		t.Errorf("empty history verdict = %q, want no-baseline", rep.Verdict)
	}
}

// TestGateWindowSlides: only the trailing Window runs form the
// baseline, so an old bad era scrolls out of judgment.
func TestGateWindowSlides(t *testing.T) {
	hist := append(gateHistory(10, 90000), gateHistory(5, 42000)...)
	cand := sampleRecord("a", map[string]float64{"perf.arb_wait_ns.p99": 42000})
	rep := Gate(hist, cand, GateOpts{Window: 5})
	if rep.Verdict != "ok" {
		t.Fatalf("verdict = %q, want ok — the 90000ns era must have scrolled out", rep.Verdict)
	}
	for _, row := range rep.Rows {
		if row.Key == "perf.arb_wait_ns.p99" && row.Baseline.Median != 42000 {
			t.Errorf("baseline median = %v, want 42000 (window did not slide)", row.Baseline.Median)
		}
	}
}
