package ledger

import (
	"math"
	"strings"
	"testing"
)

const benchFixture = `{
  "_meta": {"git_sha": "71f4e93", "go": "go1.24.0", "gomaxprocs": 1, "cpus": 1, "date_utc": "2026-08-08T12:25:21Z"},
  "BenchmarkTable1": {"runs": 5, "ns_per_op": 30540, "B_per_op": 14248, "allocs_per_op": 304},
  "BenchmarkP1/moesi": {"runs": 5, "ns_per_op": 4464077, "bytes_per_ref": 5.058}
}`

func TestIngestBench(t *testing.T) {
	recs, err := Ingest([]byte(benchFixture), "BENCH_2026-08-08.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Kind != KindBench {
		t.Errorf("kind = %q, want %q", rec.Kind, KindBench)
	}
	if rec.Meta.GitSHA != "71f4e93" || rec.Meta.Go != "go1.24.0" {
		t.Errorf("meta not copied: %+v", rec.Meta)
	}
	if rec.Source != "BENCH_2026-08-08.json" {
		t.Errorf("source = %q", rec.Source)
	}
	if v := rec.Metrics["bench.BenchmarkTable1.ns_per_op"]; v != 30540 {
		t.Errorf("Table1 ns_per_op = %v, want 30540", v)
	}
	if v := rec.Metrics["bench.BenchmarkP1/moesi.bytes_per_ref"]; v != 5.058 {
		t.Errorf("P1/moesi bytes_per_ref = %v, want 5.058", v)
	}
	if _, ok := rec.Metrics["bench.BenchmarkTable1.runs"]; ok {
		t.Error("'runs' is bookkeeping, not a metric")
	}
}

const perfFixture = `{
  "_meta": {"git_sha": "abc", "go": "fixture", "gomaxprocs": 1, "cpus": 1, "date_utc": "2026-08-08T00:00:00Z"},
  "battery": "fixture", "engine": "det", "procs": 4, "refs": 1000, "seed": 1986,
  "host": {
    "wall_ns": 1000000, "refs": 1000,
    "alloc_bytes_per_ref": 128, "alloc_objects_per_ref": 2,
    "refs_per_sec": 1000000, "gc_pause_total_ns": 50
  },
  "sim": {
    "events": 5000,
    "latency": {
      "perf.arb_wait_ns": {"count": 900, "mean": 1500, "min": 100, "p50": 1200, "p90": 2500, "p95": 3000, "p99": 4200, "p999": 5100, "max": 6000},
      "perf.bus_tenure_ns": {"count": 900, "mean": 700, "min": 200, "p50": 650, "p90": 900, "p95": 1000, "p99": 1200, "p999": 1300, "max": 1400}
    },
    "queue": [{"bus": 0, "waits": 10, "peak": 3, "depth": {}}, {"bus": 1, "waits": 2, "peak": 5, "depth": {}}],
    "arb_fairness": 0.93
  }
}`

func TestIngestPerf(t *testing.T) {
	recs, err := Ingest([]byte(perfFixture), "perf.json")
	if err != nil {
		t.Fatal(err)
	}
	rec := recs[0]
	if rec.Kind != KindPerf {
		t.Errorf("kind = %q, want %q", rec.Kind, KindPerf)
	}
	if rec.Label != "fixture/det/p4" {
		t.Errorf("label = %q, want fixture/det/p4", rec.Label)
	}
	want := map[string]float64{
		"perf.arb_wait_ns.p50":       1200,
		"perf.arb_wait_ns.p99":       4200,
		"perf.arb_wait_ns.p999":      5100,
		"perf.bus_tenure_ns.p99":     1200,
		"queue.peak_depth":           5, // max across buses
		"queue.arb_fairness":         0.93,
		"host.alloc_bytes_per_ref":   128,
		"host.alloc_objects_per_ref": 2,
		"host.wall_ns":               1000000,
	}
	for k, v := range want {
		if got := rec.Metrics[k]; got != v {
			t.Errorf("%s = %v, want %v", k, got, v)
		}
	}
}

const causalFixture = `{
  "fingerprint": "procs=4 protocol=moesi",
  "txs": 900, "elapsed_ns": 2000000, "total_cost_ns": 1500000,
  "total_wait_ns": 400000, "aborts": 3,
  "by_cause": {"arb-wait": 400000, "addr": 90000, "data": 700000, "memory": 310000},
  "by_phase": {"addr": 90000},
  "path_cost_ns": 1900000,
  "boards": []
}`

func TestIngestCausal(t *testing.T) {
	recs, err := Ingest([]byte(causalFixture), "run.json")
	if err != nil {
		t.Fatal(err)
	}
	rec := recs[0]
	if rec.Kind != KindCausal {
		t.Errorf("kind = %q, want %q", rec.Kind, KindCausal)
	}
	if rec.Label != "procs=4 protocol=moesi" {
		t.Errorf("label = %q", rec.Label)
	}
	if v := rec.Metrics["causal.total_wait_ns"]; v != 400000 {
		t.Errorf("total_wait_ns = %v", v)
	}
	if v := rec.Metrics["causal.by_cause.arb-wait_ns"]; v != 400000 {
		t.Errorf("by_cause arb-wait = %v (keys %v)", v, Keys(recs))
	}
	if v := rec.Metrics["causal.path_cost_ns"]; v != 1900000 {
		t.Errorf("path_cost_ns = %v", v)
	}
}

const lensFixture = `{
  "fingerprint": "procs=4 protocol=moesi",
  "events": 6000, "state_events": 4000, "lines": 64, "span_ns": 2000000,
  "protocols": {
    "moesi": {
      "transitions": 4000, "invalidations": 400,
      "inv_fanout": {"1": 300, "2": 50},
      "upd_fanout": {},
      "cache_sourced": 600, "mem_sourced": 200,
      "ownership_moves": 150
    }
  }
}`

func TestIngestLens(t *testing.T) {
	recs, err := Ingest([]byte(lensFixture), "lens.json")
	if err != nil {
		t.Fatal(err)
	}
	rec := recs[0]
	if rec.Kind != KindLens {
		t.Errorf("kind = %q, want %q", rec.Kind, KindLens)
	}
	if v := rec.Metrics["lens.moesi.inv_per_transition"]; v != 0.1 {
		t.Errorf("inv_per_transition = %v, want 0.1", v)
	}
	if v := rec.Metrics["lens.moesi.cache_sourced_share"]; v != 0.75 {
		t.Errorf("cache_sourced_share = %v, want 0.75", v)
	}
	if v := rec.Metrics["lens.moesi.mem_sourced_share"]; v != 0.25 {
		t.Errorf("mem_sourced_share = %v, want 0.25", v)
	}
	// fan-out mean: (1*300 + 2*50) / 350 = 400/350
	if v := rec.Metrics["lens.moesi.inv_fanout_mean"]; math.Abs(v-400.0/350.0) > 1e-12 {
		t.Errorf("inv_fanout_mean = %v, want %v", v, 400.0/350.0)
	}
	if v := rec.Metrics["lens.moesi.transitions"]; v != 4000 {
		t.Errorf("transitions = %v", v)
	}
}

const sweepFixture = `{
  "fbsweep": {"exp": "P1,P11", "refs": 2000, "seed": 1986, "shards": 1},
  "_meta": {"git_sha": "def", "go": "go1.24.0", "gomaxprocs": 8, "cpus": 8, "date_utc": "2026-08-08T00:00:00Z"},
  "reports": [
    {
      "id": "P1", "title": "Protocol comparison",
      "columns": ["protocol", "procs", "miss", "trans/ref", "bytes/ref"],
      "rows": [
        ["moesi", "8", "0.051", "0.18", "5.1"],
        ["write-once", "8", "0.062", "0.25", "7.9"]
      ]
    },
    {
      "id": "P11", "title": "Tenure x discipline",
      "columns": ["tenure", "discipline", "p50arb", "p99arb", "fairness"],
      "rows": [
        ["atomic", "fcfs", "1200", "4100", "0.91"]
      ]
    }
  ]
}`

func TestIngestSweep(t *testing.T) {
	recs, err := Ingest([]byte(sweepFixture), "sweep.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2 (one per report)", len(recs))
	}
	p1 := recs[0]
	if p1.Kind != KindSweep || p1.Label != "P1" {
		t.Errorf("P1 record kind/label = %q/%q", p1.Kind, p1.Label)
	}
	if p1.Meta.GitSHA != "def" {
		t.Errorf("sweep _meta not copied: %+v", p1.Meta)
	}
	// "8" parses as a number, so the row key is the protocol name alone;
	// "trans/ref" sanitizes to trans_per_ref.
	if v := p1.Metrics["sweep.moesi.trans_per_ref"]; v != 0.18 {
		t.Errorf("moesi trans/ref = %v, want 0.18 (keys %v)", v, Keys([]Record{p1}))
	}
	if v := p1.Metrics["sweep.write-once.bytes_per_ref"]; v != 7.9 {
		t.Errorf("write-once bytes/ref = %v, want 7.9", v)
	}
	p11 := recs[1]
	if v := p11.Metrics["sweep.atomic/fcfs.p99arb"]; v != 4100 {
		t.Errorf("atomic/fcfs p99arb = %v, want 4100 (keys %v)", v, Keys([]Record{p11}))
	}
	if v := p11.Metrics["sweep.atomic/fcfs.fairness"]; v != 0.91 {
		t.Errorf("fairness = %v, want 0.91", v)
	}
}

func TestIngestRejectsUnknown(t *testing.T) {
	for _, bad := range []string{
		"", "not json", "[]", `{"random": 1}`, `{"_meta": {}}`,
	} {
		if _, err := Ingest([]byte(bad), "x"); err == nil {
			t.Errorf("Ingest(%q) should fail", bad)
		}
	}
}

// TestIngestGateEndToEnd strings the pieces together the way fbtrend
// does: ingest N fbperf fixtures into a ledger, then gate a clean
// candidate (ok) and a regressed candidate (regressed).
func TestIngestGateEndToEnd(t *testing.T) {
	var history []Record
	for i := 0; i < 5; i++ {
		recs, err := Ingest([]byte(perfFixture), "perf.json")
		if err != nil {
			t.Fatal(err)
		}
		history = append(history, recs...)
	}
	clean, err := Ingest([]byte(perfFixture), "perf.json")
	if err != nil {
		t.Fatal(err)
	}
	if rep := Gate(Filter(history, KindPerf, clean[0].Label), clean[0], GateOpts{}); rep.Verdict != "ok" {
		t.Fatalf("same-fixture candidate verdict = %q, want ok (%+v)", rep.Verdict, rep)
	}
	// 4200 → 8400: past the 10% rel floor and the 1µs ns floor both.
	regressed := []byte(strings.Replace(perfFixture, `"p99": 4200`, `"p99": 8400`, 1))
	bad, err := Ingest(regressed, "perf.json")
	if err != nil {
		t.Fatal(err)
	}
	if rep := Gate(Filter(history, KindPerf, bad[0].Label), bad[0], GateOpts{}); rep.Verdict != "regressed" {
		t.Fatalf("injected +100%% p99 verdict = %q, want regressed", rep.Verdict)
	}
}
