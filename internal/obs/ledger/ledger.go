// Package ledger is the longitudinal run-ledger of the regression
// observatory: an append-only JSONL file with one record per
// benchmark/telemetry run, so regression verdicts can be computed
// against the rolling statistics of many runs instead of one brittle
// baseline file.
//
// Each line is one Record: provenance (_meta, mirroring the block
// scripts/bench.sh embeds in BENCH json), a source kind naming the
// report format it was ingested from, an optional label separating
// incomparable series of the same kind (e.g. fbperf batteries), and a
// flat metric-key → value map. Flatness is the point: every report
// format the tree emits — BENCH_*.json, fbperf run reports, fbcausal
// analyze -json, fblens -json, fbsweep -json battery docs — folds into
// the same shape (see ingest.go), so one gate covers them all.
//
// The file is append-only by construction (Append opens O_APPEND) and
// by contract: records are never rewritten, and the reader tolerates a
// truncated or corrupt trailing record (a crashed writer) without
// losing the history before it. Corruption anywhere else is an error —
// that is damage, not an interrupted append.
package ledger

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Schema is the ledger record schema version. Bump only when an
// existing field changes meaning; adding fields is not a bump (JSON
// readers ignore unknown keys, and old records simply lack the new
// field). TestLedgerSchemaAppendOnly pins the field names.
const Schema = 1

// Source kinds. One per report format the ingesters understand.
const (
	KindBench  = "bench"    // scripts/bench.sh BENCH_*.json
	KindPerf   = "fbperf"   // fbperf run report
	KindCausal = "fbcausal" // fbcausal analyze -json
	KindLens   = "fblens"   // fblens analyze -json
	KindSweep  = "fbsweep"  // fbsweep -json battery doc
)

// Meta pins the environment a run was produced in. Field names match
// the _meta object scripts/bench.sh and fbperf already emit, so
// ingestion is a straight copy.
type Meta struct {
	GitSHA     string `json:"git_sha,omitempty"`
	Go         string `json:"go,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	CPUs       int    `json:"cpus,omitempty"`
	DateUTC    string `json:"date_utc,omitempty"`
}

// Record is one ledger line: one run of one report family.
type Record struct {
	// Schema is the record's schema version (see Schema).
	Schema int `json:"schema"`
	// Kind names the source report format (Kind* constants).
	Kind string `json:"kind"`
	// Label separates incomparable series of the same kind: the fbperf
	// battery/engine/procs tuple, an fbsweep report ID, the fbcausal
	// config fingerprint. Rolling baselines only mix records with equal
	// kind AND label.
	Label string `json:"label,omitempty"`
	// Source is the file the record was ingested from (best-effort).
	Source string `json:"source,omitempty"`
	// Meta is the run's provenance.
	Meta Meta `json:"_meta"`
	// Metrics is the flat metric-key → value map. Keys follow the
	// "family.metric.unit" scheme in the OBSERVABILITY.md glossary.
	Metrics map[string]float64 `json:"metrics"`
}

// Append writes the records to the ledger file, one JSON line each,
// creating it if needed. The file is opened O_APPEND so concurrent
// appenders interleave whole lines, never bytes.
func Append(path string, recs ...Record) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf bytes.Buffer
	for i := range recs {
		line, err := json.Marshal(&recs[i])
		if err != nil {
			return err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		return err
	}
	return f.Close()
}

// Read loads every record from the ledger file, oldest first. A
// truncated or unparseable trailing record is tolerated (dropped = 1):
// an interrupted append must not invalidate the history before it.
// Corruption followed by further valid records is an error.
func Read(path string) (recs []Record, dropped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	recs, dropped, err = Decode(f)
	if err != nil {
		return nil, dropped, fmt.Errorf("%s: %w", path, err)
	}
	return recs, dropped, nil
}

// Decode reads ledger lines from r (see Read for the trailing-record
// tolerance contract).
func Decode(r io.Reader) ([]Record, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var recs []Record
	badLine := 0 // 1-based line number of the first undecodable line
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(text, &rec); err != nil || rec.Kind == "" {
			if badLine != 0 {
				return nil, 0, fmt.Errorf("line %d: undecodable record (and line %d after it) — ledger is damaged mid-file", badLine, line)
			}
			badLine = line
			continue
		}
		if badLine != 0 {
			return nil, 0, fmt.Errorf("line %d: undecodable record followed by valid line %d — ledger is damaged mid-file", badLine, line)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	if badLine != 0 {
		// The bad line was the last one: an interrupted append.
		return recs, 1, nil
	}
	return recs, 0, nil
}

// Filter returns the records matching kind and label, in input order.
// An empty kind or label matches everything on that axis.
func Filter(recs []Record, kind, label string) []Record {
	var out []Record
	for _, r := range recs {
		if kind != "" && r.Kind != kind {
			continue
		}
		if label != "" && r.Label != label {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Keys returns the sorted union of metric keys across the records.
func Keys(recs []Record) []string {
	set := make(map[string]bool)
	for _, r := range recs {
		for k := range r.Metrics {
			set[k] = true
		}
	}
	return sortedKeys(set)
}
