package ledger

import (
	"futurebus/internal/obs/regress"
)

// Series extracts the chronological value series of one metric from
// the records (input order — the ledger is append-only, so input order
// is run order). Records lacking the key are skipped, so a metric that
// appears in only some runs still forms a dense series.
func Series(recs []Record, key string) []float64 {
	var out []float64
	for _, r := range recs {
		if v, ok := r.Metrics[key]; ok {
			out = append(out, v)
		}
	}
	return out
}

// GateOpts parameterize a rolling-baseline gate.
type GateOpts struct {
	// Window is the trailing-run count of the rolling baseline
	// (regress.DefaultWindow when 0). Fewer history runs than Window is
	// fine — the baseline uses what exists — but below MinRuns a metric
	// is not judged at all.
	Window int
	// K is the MAD multiplier of the noise envelope
	// (regress.DefaultK when 0).
	K float64
	// Rel is the relative floor (0.10 when 0); the absolute floor is
	// chosen per metric key by regress.AbsFloor.
	Rel float64
	// MinRuns is the minimum baseline size required to judge a metric
	// (2 when 0): one prior run is a pairwise diff, not a baseline.
	MinRuns int
}

func (o GateOpts) withDefaults() GateOpts {
	if o.Window <= 0 {
		o.Window = regress.DefaultWindow
	}
	if o.K <= 0 {
		o.K = regress.DefaultK
	}
	if o.Rel <= 0 {
		o.Rel = 0.10
	}
	if o.MinRuns <= 0 {
		o.MinRuns = 2
	}
	return o
}

// GateRow is one metric's verdict against its rolling baseline.
type GateRow struct {
	Key      string           `json:"key"`
	Baseline regress.Baseline `json:"baseline"`
	Value    float64          `json:"value"`
	// Direction is the regress.Direction string: "flat", "regressed"
	// or "improved".
	Direction string `json:"direction"`
	// Advisory marks host-load metrics (wall clock, GC) that are
	// reported but never flip the gate.
	Advisory bool `json:"advisory,omitempty"`
	// Skipped is set when the metric had fewer than MinRuns baseline
	// values and was not judged.
	Skipped bool `json:"skipped,omitempty"`
}

// GateReport is the full verdict of one candidate run against the
// rolling baseline of its history.
type GateReport struct {
	Kind  string `json:"kind,omitempty"`
	Label string `json:"label,omitempty"`
	// Runs is the number of history runs the baselines drew from.
	Runs int       `json:"runs"`
	Rows []GateRow `json:"rows"`
	// Regressions / Improvements count non-advisory stepped rows.
	Regressions  int `json:"regressions"`
	Improvements int `json:"improvements"`
	// Verdict is "ok", "regressed", or "no-baseline" (nothing judged).
	Verdict string `json:"verdict"`
}

// Gate judges a candidate run against the rolling baseline of its
// history (oldest first; pre-filter with Filter so kind and label
// match the candidate). Every metric present in the candidate is
// judged against the trailing Window values of that metric in the
// history; advisory metrics are classified but never counted.
func Gate(history []Record, candidate Record, opts GateOpts) GateReport {
	o := opts.withDefaults()
	rep := GateReport{
		Kind:  candidate.Kind,
		Label: candidate.Label,
		Runs:  len(history),
	}
	judged := false
	for _, key := range Keys([]Record{candidate}) {
		v := candidate.Metrics[key]
		row := GateRow{Key: key, Value: v, Advisory: regress.Advisory(key)}
		series := Series(history, key)
		if len(series) > o.Window {
			series = series[len(series)-o.Window:]
		}
		row.Baseline = regress.NewBaseline(series)
		if row.Baseline.N < o.MinRuns {
			row.Skipped = true
			row.Direction = regress.Flat.String()
			rep.Rows = append(rep.Rows, row)
			continue
		}
		th := regress.Thresholds{Rel: o.Rel, Abs: regress.AbsFloor(key)}
		dir := row.Baseline.Classify(v, o.K, th, !regress.BetterUp(key))
		row.Direction = dir.String()
		rep.Rows = append(rep.Rows, row)
		if row.Advisory {
			continue
		}
		judged = true
		switch dir {
		case regress.Regressed:
			rep.Regressions++
		case regress.Improved:
			rep.Improvements++
		}
	}
	switch {
	case !judged:
		rep.Verdict = "no-baseline"
	case rep.Regressions > 0:
		rep.Verdict = "regressed"
	default:
		rep.Verdict = "ok"
	}
	return rep
}
