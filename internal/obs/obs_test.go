package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestRingFIFO: single-producer order is preserved exactly.
func TestRingFIFO(t *testing.T) {
	r := newRing(8)
	for i := 0; i < 5; i++ {
		if !r.push(&Event{TS: int64(i)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	var e Event
	for i := 0; i < 5; i++ {
		if !r.pop(&e) {
			t.Fatalf("pop %d failed", i)
		}
		if e.TS != int64(i) {
			t.Errorf("pop %d: TS=%d", i, e.TS)
		}
	}
	if r.pop(&e) {
		t.Error("pop on empty ring succeeded")
	}
}

// TestRingFull: a full ring rejects pushes instead of overwriting.
func TestRingFull(t *testing.T) {
	r := newRing(4)
	for i := 0; i < 4; i++ {
		if !r.push(&Event{}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.push(&Event{}) {
		t.Error("push on full ring succeeded")
	}
	var e Event
	if !r.pop(&e) {
		t.Fatal("pop failed")
	}
	if !r.push(&Event{}) {
		t.Error("push after pop failed")
	}
}

// TestRecorderConcurrentEmit: many producers, every event arrives
// exactly once, and Seq as seen by the sink is strictly increasing
// (the drain order is the global emission order).
func TestRecorderConcurrentEmit(t *testing.T) {
	const producers, each = 8, 1000
	var mu sync.Mutex
	var got []Event
	rec := NewSized(64, SinkFunc(func(e *Event) {
		mu.Lock()
		got = append(got, *e)
		mu.Unlock()
	}))
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				rec.Emit(Event{Kind: KindTx, Proc: p, Addr: uint64(i)})
			}
		}(p)
	}
	wg.Wait()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != producers*each {
		t.Fatalf("got %d events, want %d", len(got), producers*each)
	}
	perProc := make(map[int]int)
	for i, e := range got {
		if i > 0 && e.Seq <= got[i-1].Seq {
			t.Fatalf("seq not increasing at %d: %d after %d", i, e.Seq, got[i-1].Seq)
		}
		// Each producer's own events must drain in its emission order.
		if int(e.Addr) < perProc[e.Proc] {
			t.Fatalf("producer %d reordered: addr %d after %d", e.Proc, e.Addr, perProc[e.Proc])
		}
		perProc[e.Proc] = int(e.Addr)
	}
}

// TestNilRecorder: the nil fast path is inert and safe.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Emit(Event{Kind: KindTx})
	r.Advance(100)
	if r.Clock() != 0 {
		t.Error("nil clock moved")
	}
	if err := r.Flush(); err != nil {
		t.Error(err)
	}
	if err := r.Close(); err != nil {
		t.Error(err)
	}
	if FindHistogram(r) != nil {
		t.Error("nil recorder has a histogram")
	}
}

// TestRecorderClock: Advance returns the pre-advance value (the begin
// timestamp of the span being paid for).
func TestRecorderClock(t *testing.T) {
	rec := New()
	defer rec.Close()
	if begin := rec.Advance(100); begin != 0 {
		t.Errorf("first Advance returned %d", begin)
	}
	if begin := rec.Advance(50); begin != 100 {
		t.Errorf("second Advance returned %d", begin)
	}
	if rec.Clock() != 150 {
		t.Errorf("clock = %d", rec.Clock())
	}
}

// TestHistogramQuantiles: log-bucket bounds behave as documented.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram not zero")
	}
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Mean() != 50.5 {
		t.Errorf("mean = %f", h.Mean())
	}
	s := h.Summary()
	if s.Min != 1 || s.Max != 100 {
		t.Errorf("min/max = %d/%d", s.Min, s.Max)
	}
	// The median of 1..100 is in the [32,64) bucket: upper bound 63.
	if s.P50 != 63 {
		t.Errorf("p50 = %d", s.P50)
	}
	// p99 lands in the top bucket, clamped to the observed max.
	if s.P99 != 100 {
		t.Errorf("p99 = %d", s.P99)
	}
	h.Observe(-5) // clamps to zero
	if h.Quantile(0) != 0 {
		t.Errorf("q0 = %d", h.Quantile(0))
	}
}

// TestHistogramSink: tx and stall events land in the right metrics.
func TestHistogramSink(t *testing.T) {
	hs := NewHistogramSink()
	hs.Consume(&Event{Kind: KindTx, Dur: 500, Retries: 2})
	hs.Consume(&Event{Kind: KindTx, Dur: 700})
	hs.Consume(&Event{Kind: KindStall, Dur: 900})
	hs.Consume(&Event{Kind: KindState}) // ignored
	sums := hs.Summaries()
	if sums[MetricTxLatency].Count != 2 {
		t.Errorf("tx latency count = %d", sums[MetricTxLatency].Count)
	}
	if sums[MetricTxRetries].Max != 2 {
		t.Errorf("retries max = %d", sums[MetricTxRetries].Max)
	}
	if sums[MetricStall].Count != 1 {
		t.Errorf("stall count = %d", sums[MetricStall].Count)
	}
	if !strings.Contains(hs.Render(), MetricTxLatency) {
		t.Errorf("render missing metric: %q", hs.Render())
	}
}

// TestJSONLRoundTrip: write → read reproduces the events exactly.
func TestJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{Seq: 0, TS: 0, Kind: KindGrant, Bus: 0, Proc: 2, Addr: 0x10},
		{Seq: 1, TS: 10, Dur: 425, Kind: KindTx, Bus: 0, Proc: 2, Addr: 0x10,
			Col: 6, Op: "R", CH: true, DI: true, Retries: 1, Bytes: 32},
		{Seq: 2, TS: 435, Kind: KindState, Bus: 0, Proc: 1, Addr: 0x10,
			From: "M", To: "O", Cause: "snoop"},
		{Seq: 3, TS: 435, Kind: KindMemWrite, Bus: -1, Proc: -1, Addr: 0x20},
	}
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	for i := range in {
		sink.Consume(&in[i])
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip count %d != %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("event %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

// TestLineAudit: history is per-line, bounded, and explainable.
func TestLineAudit(t *testing.T) {
	a := NewLineAuditSink(8)
	for i := 0; i < 20; i++ {
		a.Consume(&Event{Seq: uint64(i), Kind: KindTx, Addr: 0x10, Col: 5, Op: "R"})
	}
	a.Consume(&Event{Kind: KindState, Addr: 0x20, From: "I", To: "M", Cause: "fill"})
	a.Consume(&Event{Kind: KindGrant, Addr: 0x20}) // not audited
	h := a.LineHistory(0x10)
	if len(h) > 8 {
		t.Errorf("history overflow: %d", len(h))
	}
	if h[len(h)-1].Seq != 19 {
		t.Errorf("newest event lost: seq %d", h[len(h)-1].Seq)
	}
	if got := a.LineHistory(0x20); len(got) != 1 {
		t.Errorf("line 0x20 history = %d events", len(got))
	}
	if s := a.Explain(0x20); !strings.Contains(s, "I→M (fill)") {
		t.Errorf("explain = %q", s)
	}
	if len(a.LineHistory(0x99)) != 0 {
		t.Error("phantom history")
	}
}

// TestChromeTraceExport: the exporter produces structurally valid
// trace JSON with metadata, slices and instants on the right tracks.
func TestChromeTraceExport(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeTraceSink(&buf)
	s.Consume(&Event{Seq: 1, TS: 0, Dur: 425, Kind: KindTx, Bus: 0, Proc: 1, Addr: 0x10, Col: 5, Op: "R", Bytes: 32})
	s.Consume(&Event{Seq: 2, TS: 425, Kind: KindState, Bus: 0, Proc: 0, Addr: 0x10, From: "I", To: "S", Cause: "fill"})
	s.Consume(&Event{Seq: 3, TS: 425, Kind: KindMemRead, Bus: -1, Proc: -1, Addr: 0x10})
	s.Consume(&Event{Seq: 4, TS: 425, Dur: 425, Kind: KindStall, Bus: 0, Proc: 1, Addr: 0x10})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var slices, instants, metas int
	for _, te := range doc.TraceEvents {
		for _, k := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := te[k]; !ok {
				t.Fatalf("trace event missing %q: %v", k, te)
			}
		}
		switch te["ph"] {
		case "X":
			slices++
			if _, ok := te["dur"]; !ok {
				t.Errorf("X event without dur: %v", te)
			}
		case "i":
			instants++
		case "M":
			metas++
		}
	}
	if slices != 2 || instants != 2 || metas < 3 {
		t.Errorf("slices=%d instants=%d metas=%d", slices, instants, metas)
	}
}
