package regress

import (
	"math/rand"
	"testing"
)

// TestBreachedParity pins the double-gate semantics the pairwise diffs
// (fbcausal, fblens, fbperf) relied on before the logic moved here:
// both conditions must trip, a zero baseline gates on the absolute
// floor alone, and boundary values do not trip strict comparisons.
func TestBreachedParity(t *testing.T) {
	th := Thresholds{Rel: 0.10, Abs: 1000}
	cases := []struct {
		name       string
		old, delta float64
		want       bool
	}{
		{"both exceeded", 100000, 20000, true},
		{"rel only (abs floor holds)", 5000, 900, false},
		{"abs only (rel holds)", 1e9, 2000, false},
		{"exactly abs", 100000, 1000, false},
		{"exactly rel", 100000, 10000, false},
		{"just past both", 100000, 10001, true},
		{"zero baseline, past abs", 0, 1001, true},
		{"zero baseline, at abs", 0, 1000, false},
		{"improvement", 100000, -20000, false},
	}
	for _, c := range cases {
		if got := th.Breached(c.old, c.delta); got != c.want {
			t.Errorf("%s: Breached(%v, %v) = %v, want %v", c.name, c.old, c.delta, got, c.want)
		}
	}
}

func TestBaselineMedianMAD(t *testing.T) {
	b := NewBaseline([]float64{10, 12, 11, 100, 9})
	if b.Median != 11 {
		t.Errorf("median = %v, want 11", b.Median)
	}
	// deviations: 1, 1, 0, 89, 2 → median 1. The outlier barely moves
	// the scale — the point of MAD over stddev.
	if b.MAD != 1 {
		t.Errorf("MAD = %v, want 1", b.MAD)
	}
	if flat := NewBaseline([]float64{7, 7, 7, 7}); flat.MAD != 0 || flat.Median != 7 {
		t.Errorf("flat series: got median %v MAD %v", flat.Median, flat.MAD)
	}
}

// TestClassifyDirections: a bad-direction step regresses, a
// good-direction step improves, and worseUp=false flips which is which.
func TestClassifyDirections(t *testing.T) {
	b := NewBaseline([]float64{100, 101, 99, 100, 100})
	th := Thresholds{Rel: 0.10, Abs: 1}
	if d := b.Classify(130, DefaultK, th, true); d != Regressed {
		t.Errorf("worse-up increase: %v, want regressed", d)
	}
	if d := b.Classify(70, DefaultK, th, true); d != Improved {
		t.Errorf("worse-up decrease: %v, want improved", d)
	}
	if d := b.Classify(130, DefaultK, th, false); d != Improved {
		t.Errorf("better-up increase: %v, want improved", d)
	}
	if d := b.Classify(70, DefaultK, th, false); d != Regressed {
		t.Errorf("better-up decrease: %v, want regressed", d)
	}
	if d := b.Classify(101, DefaultK, th, true); d != Flat {
		t.Errorf("inside envelope: %v, want flat", d)
	}
}

// TestIdenticalRunsGateClean: the acceptance contract — a candidate
// identical to a dead-flat baseline (same-seed repeat) must never flag,
// even though MAD is 0.
func TestIdenticalRunsGateClean(t *testing.T) {
	b := NewBaseline([]float64{4242, 4242, 4242, 4242, 4242})
	th := Thresholds{Rel: 0.10, Abs: 0}
	if b.Step(4242, DefaultK, th) {
		t.Error("identical candidate flagged as a step")
	}
	if d := b.Classify(4242, DefaultK, th, true); d != Flat {
		t.Errorf("identical candidate classified %v, want flat", d)
	}
}

// TestChangepointInjectedStep is the property the ISSUE names: an
// injected step of ≥20% on an otherwise stable series must be flagged,
// across many random series shapes.
func TestChangepointInjectedStep(t *testing.T) {
	rng := rand.New(rand.NewSource(1986))
	th := Thresholds{Rel: 0.10, Abs: 0}
	for trial := 0; trial < 200; trial++ {
		base := 1000 + rng.Float64()*1e6
		series := make([]float64, 12)
		for i := range series {
			// ±2% run-to-run noise around the level.
			series[i] = base * (1 + (rng.Float64()-0.5)*0.04)
		}
		stepAt := 6 + rng.Intn(5)
		factor := 1.20 + rng.Float64()*0.8 // +20%..+100%
		for i := stepAt; i < len(series); i++ {
			series[i] *= factor
		}
		steps := Changepoints(series, DefaultWindow, DefaultK, th)
		found := false
		for _, s := range steps {
			if s == stepAt {
				found = true
			}
		}
		if !found {
			t.Fatalf("trial %d: %.0f%% step at %d not flagged (steps %v, series %v)",
				trial, (factor-1)*100, stepAt, steps, series)
		}
	}
}

// TestChangepointJitterQuiet is the other half: ±5% jitter around a
// flat level must not flag (the rel floor is 10%, the MAD envelope
// absorbs the rest).
func TestChangepointJitterQuiet(t *testing.T) {
	rng := rand.New(rand.NewSource(824))
	th := Thresholds{Rel: 0.10, Abs: 0}
	for trial := 0; trial < 200; trial++ {
		base := 1000 + rng.Float64()*1e6
		series := make([]float64, 20)
		for i := range series {
			series[i] = base * (1 + (rng.Float64()-0.5)*0.10) // ±5%
		}
		if steps := Changepoints(series, DefaultWindow, DefaultK, th); len(steps) > 0 {
			t.Fatalf("trial %d: jitter-only series flagged at %v (series %v)", trial, steps, series)
		}
	}
}

func TestSlope(t *testing.T) {
	if s := Slope([]float64{1, 2, 3, 4, 5}); s < 0.999 || s > 1.001 {
		t.Errorf("linear series slope = %v, want 1", s)
	}
	if s := Slope([]float64{5, 5, 5, 5}); s != 0 {
		t.Errorf("flat series slope = %v, want 0", s)
	}
	if s := Slope([]float64{3}); s != 0 {
		t.Errorf("single point slope = %v, want 0", s)
	}
}

func TestMetricKeyHeuristics(t *testing.T) {
	if !BetterUp("bench.BenchmarkShardedFabric/shards8.refs_per_simms") {
		t.Error("refs_per_simms should be better-up")
	}
	if BetterUp("perf.arb_wait_ns.p99") {
		t.Error("arb wait should be worse-up")
	}
	if !Advisory("host.wall_ns") || !Advisory("host.gc_pause_total_ns") {
		t.Error("wall-clock metrics should be advisory")
	}
	if Advisory("host.alloc_objects_per_ref") {
		t.Error("allocation counts are deterministic, not advisory")
	}
	if f := AbsFloor("perf.arb_wait_ns.p99"); f != 1000 {
		t.Errorf("ns floor = %v, want 1000", f)
	}
	if f := AbsFloor("host.alloc_objects_per_ref"); f != 0.5 {
		t.Errorf("allocs floor = %v, want 0.5", f)
	}
	if f := AbsFloor("lens.moesi.mem_sourced_share"); f != 0.001 {
		t.Errorf("rate floor = %v, want 0.001", f)
	}
}
