// Package regress is the shared regression-decision layer of the
// observability stack. Every gate in the tree — fbcausal diff, fblens
// diff, fbperf compare, fbtrend gate, the obshttp /trend endpoint —
// answers the same question: did this metric move in its bad direction
// by enough to matter? The answer used to be duplicated per tool; this
// package single-sources it.
//
// Two layers:
//
//   - Thresholds is the rel+abs double gate the pairwise diffs already
//     used: a move only counts when it exceeds BOTH the relative
//     threshold (so large baselines need a proportionally large move)
//     and the absolute floor (so tiny baselines can't scream over
//     noise-sized wobble).
//
//   - Baseline is the rolling-window statistic the longitudinal gates
//     add: a trailing-window median locates the series and the MAD
//     (median absolute deviation) scales its noise, so a verdict is
//     computed against the history of many runs instead of one brittle
//     baseline file. A candidate is a step (changepoint) when it
//     deviates from the rolling median by more than K·MAD AND breaches
//     the rel+abs floors — same-seed repeats of a flat series gate
//     clean, ±noise jitter stays flat, a real 20% step is flagged.
package regress

import (
	"math"
	"sort"
	"strings"
)

// Thresholds is the rel+abs double gate. Both conditions must trip:
// the bad-direction move must exceed Abs absolutely AND Rel relative
// to the baseline value. A zero baseline has no meaningful relative
// change, so only the absolute floor applies there.
type Thresholds struct {
	Rel float64 `json:"rel"` // e.g. 0.10 = 10%
	Abs float64 `json:"abs"` // same unit as the metric
}

// Breached reports whether a bad-direction move of size delta from
// baseline old trips both gates. delta is oriented so that positive
// means "worse" — callers flip the sign for better-up metrics before
// asking.
func (t Thresholds) Breached(old, delta float64) bool {
	if delta <= t.Abs {
		return false
	}
	if old == 0 {
		return true
	}
	return delta > old*t.Rel
}

// Direction classifies a candidate value against a baseline.
type Direction int

const (
	// Flat: inside the noise envelope — no verdict.
	Flat Direction = iota
	// Regressed: a bad-direction step past every gate.
	Regressed
	// Improved: a good-direction step past every gate.
	Improved
)

// String names the direction for reports.
func (d Direction) String() string {
	switch d {
	case Regressed:
		return "regressed"
	case Improved:
		return "improved"
	default:
		return "flat"
	}
}

// DefaultWindow is the trailing-run count of a rolling baseline and
// DefaultK the MAD multiplier of its noise envelope. K·MAD ≈ 4.4σ for
// Gaussian noise at K=3 (MAD ≈ 0.6745σ), comfortably outside run-to-run
// jitter while a genuine 20% step on a stable series clears it easily.
const (
	DefaultWindow = 5
	DefaultK      = 3.0
)

// Baseline is the robust trailing-window statistic of one metric.
type Baseline struct {
	// N is the number of runs the baseline was computed over.
	N int `json:"n"`
	// Median locates the trailing window; MAD (median absolute
	// deviation from that median) scales its run-to-run noise. A
	// dead-flat window has MAD 0 — the rel+abs floors then decide alone.
	Median float64 `json:"median"`
	MAD    float64 `json:"mad"`
}

// NewBaseline digests a trailing window of values (any order).
func NewBaseline(window []float64) Baseline {
	b := Baseline{N: len(window)}
	if len(window) == 0 {
		return b
	}
	b.Median = median(window)
	dev := make([]float64, len(window))
	for i, v := range window {
		dev[i] = math.Abs(v - b.Median)
	}
	b.MAD = median(dev)
	return b
}

// median returns the middle value (mean of the middle two for even
// counts) without mutating the input.
func median(values []float64) float64 {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Step reports whether v is a changepoint against the baseline: it
// must deviate from the rolling median by more than k·MAD AND breach
// the rel+abs floors (either direction).
func (b Baseline) Step(v, k float64, t Thresholds) bool {
	if b.N == 0 {
		return false
	}
	dev := math.Abs(v - b.Median)
	return dev > k*b.MAD && t.Breached(math.Abs(b.Median), dev)
}

// Classify labels candidate v against the baseline: a bad-direction
// step is Regressed, a good-direction step Improved, anything inside
// the noise envelope Flat. worseUp says an increase is the bad
// direction (latencies, allocations, queue depths); false flips it
// (throughput, fairness, cache-sourced share).
func (b Baseline) Classify(v, k float64, t Thresholds, worseUp bool) Direction {
	if !b.Step(v, k, t) {
		return Flat
	}
	up := v > b.Median
	if up == worseUp {
		return Regressed
	}
	return Improved
}

// Changepoints scans a series (oldest first) with a trailing window of
// win values and returns the indices where the value steps away from
// its rolling baseline. The first win values seed the window and are
// never flagged. After a flagged step the window keeps sliding, so the
// runs that follow a step are judged against a window that gradually
// adopts the new level — a single step flags once, not forever.
func Changepoints(series []float64, win int, k float64, t Thresholds) []int {
	if win <= 0 {
		win = DefaultWindow
	}
	var steps []int
	for i := win; i < len(series); i++ {
		b := NewBaseline(series[i-win : i])
		if b.Step(series[i], k, t) {
			steps = append(steps, i)
		}
	}
	return steps
}

// Slope returns the least-squares slope of the series in units per
// run — the long-run drift fbtrend prints alongside changepoints.
func Slope(series []float64) float64 {
	n := float64(len(series))
	if n < 2 {
		return 0
	}
	// x = 0..n-1: mean x = (n-1)/2, Σ(x-mx)² = n(n²-1)/12.
	mx := (n - 1) / 2
	var my float64
	for _, v := range series {
		my += v
	}
	my /= n
	var num float64
	for i, v := range series {
		num += (float64(i) - mx) * (v - my)
	}
	den := n * (n*n - 1) / 12
	if den == 0 {
		return 0
	}
	return num / den
}

// Metric-key heuristics. The ledger flattens every report into
// "family.metric.unit" keys; the gates need to know, per key, which
// direction is bad, whether the metric is wall-clock noise that must
// never gate, and what absolute floor fits its unit. Substring rules
// keep this a single table instead of a per-ingester schema (the keys
// are listed in the OBSERVABILITY.md glossary).

// betterUpMarks are key substrings whose metrics improve when they
// increase: throughput, fairness indices and cache-sourced read share.
var betterUpMarks = []string{
	"refs_per", "fairness", "cache_sourced", "throughput", "hit_rate",
}

// BetterUp reports whether an increase in the named metric is an
// improvement (so a DECREASE is the regression direction).
func BetterUp(key string) bool {
	for _, m := range betterUpMarks {
		if strings.Contains(key, m) {
			return true
		}
	}
	return false
}

// advisoryMarks are key substrings whose metrics depend on host load —
// wall clock, GC pauses, host-side throughput. They are reported but
// never gate, mirroring fbperf compare's advisory rows.
var advisoryMarks = []string{
	"wall_ns", "gc_pause", "refs_per_sec", "wall_clock",
}

// Advisory reports whether the named metric is host-load noise that
// must never flip a gate.
func Advisory(key string) bool {
	for _, m := range advisoryMarks {
		if strings.Contains(key, m) {
			return true
		}
	}
	return false
}

// AbsFloor picks the absolute threshold matching a metric key's unit:
// nanosecond metrics get the 1µs slack fbcausal/fbperf already used,
// allocation counts the fbperf half-object slack (bytes 16×), queue
// depths two slots, and dimensionless rates the fblens 0.001. Unknown
// units get a vanishing floor so the relative gate decides alone.
func AbsFloor(key string) float64 {
	switch {
	case strings.Contains(key, "_ns") || strings.Contains(key, "ns_per_op"):
		return 1000
	case strings.Contains(key, "alloc_bytes") || strings.Contains(key, "B_per_op"):
		return 8
	case strings.Contains(key, "alloc") || strings.Contains(key, "bytes_per"):
		return 0.5
	case strings.Contains(key, "depth") || strings.Contains(key, "peak"):
		return 2
	case strings.Contains(key, "share") || strings.Contains(key, "per_transition") ||
		strings.Contains(key, "fanout") || strings.Contains(key, "fairness") ||
		strings.Contains(key, "per_ref"):
		return 0.001
	default:
		return 1e-9
	}
}
