package bus

import (
	"sync"
	"sync/atomic"
)

// Arbiter grants bus mastership under a pluggable Discipline. A single
// Arbiter may be shared by several buses (Config.Arbiter): in a
// multi-bus hierarchy (the §6 extension, internal/hierarchy), sharing
// one arbiter makes a cluster bridge's nested transactions — a local
// miss fanning out to the global bus, a global invalidation fanning
// into a cluster — trivially deadlock-free, while each bus still
// accounts its own occupancy for the timing model.
//
// The arbiter is also the home of transaction identity: every executed
// transaction draws a TxID here, so IDs are unique and monotonic
// across all buses serialising through the same arbiter — the stable
// edge labels the causal analyzer (internal/obs/causal) joins grant,
// abort, recovery and completion events on.
type Arbiter struct {
	mu arbMutex
	// txSeq allocates transaction ids (first id is 1; 0 = "none").
	txSeq atomic.Uint64
	// txBase/txStride namespace the ids this arbiter allocates. A
	// standalone arbiter uses (0, 1): ids 1, 2, 3, … An interleaved
	// fabric gives shard i of N the pair (i, N), so ids remain unique
	// and monotonic across shards without any cross-shard coordination,
	// and a tx's home shard is recoverable as TxID % N.
	txBase, txStride uint64
	// lastTx is the most recently completed transaction — the one a
	// newly granted master was blocked behind.
	lastTx atomic.Uint64
}

// NewArbiter creates a shareable arbiter granting in FCFS order.
func NewArbiter() *Arbiter { return &Arbiter{} }

// newShardArbiter creates the arbiter for shard i of an n-way
// interleaved fabric: ids are i + n, i + 2n, i + 3n, … — nonzero,
// strictly increasing, disjoint between shards.
func newShardArbiter(i, n int) *Arbiter {
	return &Arbiter{txBase: uint64(i), txStride: uint64(n)}
}

// nextTxID allocates the next transaction id in this arbiter's
// namespace.
func (a *Arbiter) nextTxID() uint64 {
	seq := a.txSeq.Add(1)
	if a.txStride == 0 {
		return seq
	}
	return a.txBase + a.txStride*seq
}

// SetDiscipline installs the grant order. Nil (the default) grants in
// strict arrival order, the pre-Discipline ticket-lock behaviour.
// Configuration time only: it must not race with traffic.
func (a *Arbiter) SetDiscipline(d Discipline) { a.mu.disc = d }

// Discipline returns the installed grant order (nil = FCFS).
func (a *Arbiter) Discipline() Discipline { return a.mu.disc }

// Pending returns the arbitration queue occupancy right now: the
// current bus master plus queued contenders (0 when the bus is idle).
// Safe from any goroutine; the live telemetry gauges poll it at scrape
// time rather than making the hot path publish a sample per grant.
func (a *Arbiter) Pending() int { return a.mu.pending() }

// arbWaiter is one parked contender.
type arbWaiter struct {
	w  Waiter
	ch chan struct{}
}

// arbMutex is the grant machinery: a mutual-exclusion lock whose wake
// order is delegated to a Discipline. With no discipline (or fcfs) it
// is exactly a ticket lock — waiters acquire in strict arrival order,
// which keeps the concurrent engine's interleavings reproducible
// enough to reason about and preserves the pre-refactor semantics.
type arbMutex struct {
	mu     sync.Mutex
	locked bool
	// tickets is the arrival counter; every parked waiter draws one.
	tickets int64
	// disc orders wakeups; nil = arrival order.
	disc    Discipline
	waiters []*arbWaiter
}

// Lock blocks until mastership is granted. board identifies the
// requester to the discipline; internal lockers pass -1.
func (m *arbMutex) Lock(board int) {
	m.mu.Lock()
	if !m.locked && len(m.waiters) == 0 {
		m.locked = true
		if m.disc != nil {
			m.disc.Granted(board)
		}
		m.mu.Unlock()
		return
	}
	w := &arbWaiter{
		w:  Waiter{Board: board, Ticket: m.tickets},
		ch: make(chan struct{}),
	}
	m.tickets++
	m.waiters = append(m.waiters, w)
	m.mu.Unlock()
	<-w.ch
}

// Unlock releases mastership, granting it directly to the waiter the
// discipline ranks first (no barging: a releasing-and-re-acquiring
// master queues behind every current waiter, as in the Futurebus
// fairness mode). Losing waiters age by one skip.
func (m *arbMutex) Unlock() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.waiters) == 0 {
		m.locked = false
		return
	}
	best := 0
	bestKey := m.key(m.waiters[0].w)
	for i := 1; i < len(m.waiters); i++ {
		if k := m.key(m.waiters[i].w); k < bestKey {
			best, bestKey = i, k
		}
	}
	winner := m.waiters[best]
	m.waiters = append(m.waiters[:best], m.waiters[best+1:]...)
	for _, w := range m.waiters {
		w.w.Skips++
	}
	if m.disc != nil {
		m.disc.Granted(winner.w.Board)
	}
	// The lock transfers to the winner without ever being observed free.
	close(winner.ch)
}

func (m *arbMutex) key(w Waiter) int64 {
	if m.disc == nil {
		return w.Ticket
	}
	return m.disc.Key(w)
}

// pending returns the current holder plus queued waiters. A waiter is
// parked only after the caller read its arbitration-wait start clock,
// so pending > 1 proves a contender's wait measurement has begun
// (deterministic test hook).
func (m *arbMutex) pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.waiters)
	if m.locked {
		n++
	}
	return n
}
