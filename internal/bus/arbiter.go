package bus

import (
	"sync"
	"sync/atomic"
)

// Arbiter grants bus mastership in FIFO order. A single Arbiter may be
// shared by several buses (Config.Arbiter): in a multi-bus hierarchy
// (the §6 extension, internal/hierarchy), sharing one arbiter makes a
// cluster bridge's nested transactions — a local miss fanning out to
// the global bus, a global invalidation fanning into a cluster —
// trivially deadlock-free, while each bus still accounts its own
// occupancy for the timing model.
//
// The arbiter is also the home of transaction identity: every executed
// transaction draws a TxID here, so IDs are unique and monotonic
// across all buses serialising through the same arbiter — the stable
// edge labels the causal analyzer (internal/obs/causal) joins grant,
// abort, recovery and completion events on.
type Arbiter struct {
	mu fifoMutex
	// txSeq allocates transaction ids (first id is 1; 0 = "none").
	txSeq atomic.Uint64
	// txBase/txStride namespace the ids this arbiter allocates. A
	// standalone arbiter uses (0, 1): ids 1, 2, 3, … An interleaved
	// fabric gives shard i of N the pair (i, N), so ids remain unique
	// and monotonic across shards without any cross-shard coordination,
	// and a tx's home shard is recoverable as TxID % N.
	txBase, txStride uint64
	// lastTx is the most recently completed transaction — the one a
	// newly granted master was blocked behind.
	lastTx atomic.Uint64
}

// NewArbiter creates a shareable arbiter.
func NewArbiter() *Arbiter { return &Arbiter{} }

// newShardArbiter creates the arbiter for shard i of an n-way
// interleaved fabric: ids are i + n, i + 2n, i + 3n, … — nonzero,
// strictly increasing, disjoint between shards.
func newShardArbiter(i, n int) *Arbiter {
	return &Arbiter{txBase: uint64(i), txStride: uint64(n)}
}

// nextTxID allocates the next transaction id in this arbiter's
// namespace.
func (a *Arbiter) nextTxID() uint64 {
	seq := a.txSeq.Add(1)
	if a.txStride == 0 {
		return seq
	}
	return a.txBase + a.txStride*seq
}

// fifoMutex is a ticket lock: waiters acquire in strict FIFO order.
// The Futurebus arbitrates with a priority scheme; for the simulator a
// fair queue is the behaviour the experiments assume (no board is
// starved), and it makes the concurrent engine's interleavings
// reproducible enough to reason about.
type fifoMutex struct {
	mu      sync.Mutex
	cond    *sync.Cond
	next    uint64
	serving uint64
}

func (f *fifoMutex) Lock() {
	f.mu.Lock()
	if f.cond == nil {
		f.cond = sync.NewCond(&f.mu)
	}
	ticket := f.next
	f.next++
	for ticket != f.serving {
		f.cond.Wait()
	}
	f.mu.Unlock()
}

func (f *fifoMutex) Unlock() {
	f.mu.Lock()
	f.serving++
	if f.cond != nil {
		f.cond.Broadcast()
	}
	f.mu.Unlock()
}

// pending returns tickets issued but not yet released: the current
// holder plus queued waiters. A ticket is only taken after the caller
// read its arbitration-wait start clock, so pending > 1 proves a
// contender's wait measurement has begun (deterministic test hook).
func (f *fifoMutex) pending() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next - f.serving
}

// Pending returns the arbitration queue occupancy right now: the
// current bus master plus queued contenders (0 when the bus is idle).
// Safe from any goroutine; the live telemetry gauges poll it at scrape
// time rather than making the hot path publish a sample per grant.
func (a *Arbiter) Pending() int { return int(a.mu.pending()) }
