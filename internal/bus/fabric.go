package bus

import (
	"fmt"
	"sync"

	"futurebus/internal/obs"
)

// Fabric is the interconnect as its masters see it: the caller-facing
// surface of Bus, factored out so a system can run on a single bus or
// on an address-interleaved multi-bus backplane without the cache,
// checker or engine layers caring which.
//
// The consistency argument (§3.1) only ever reasons about one line at
// a time: every invariant is "for each line addressed by the system".
// Serialising transactions per line is therefore as strong as
// serialising them globally, so a fabric may partition the address
// space into shards — HomeShard(addr) names the shard that serialises
// a line — and run the shards in parallel. Bus-tenure sequences
// (Acquire … ExecuteHeld … Release) are keyed by address: the tenure
// holds only the home shard, and every held transaction must target a
// line homed on it.
type Fabric interface {
	// Attach registers a snooping unit on every shard (a line lives on
	// exactly one shard, so snooping all shards is exactly snooping
	// every line once). Configuration time only.
	Attach(s Snooper)
	// Execute runs one transaction on the home shard of tx.Addr.
	Execute(tx *Transaction) (Result, error)
	// Acquire blocks until the home shard of addr grants mastership to
	// master (the requesting board's id; internal callers pass -1 — the
	// shard arbiter's Discipline orders contenders by it).
	Acquire(addr Addr, master int)
	// Release returns mastership of addr's home shard.
	Release(addr Addr)
	// ExecuteHeld runs a transaction under an Acquire'd tenure; tx.Addr
	// must be homed on the held shard.
	ExecuteHeld(tx *Transaction) (Result, error)
	// LineSize is the system-wide line size in bytes.
	LineSize() int
	// Timing is the per-transaction cost model (identical across shards).
	Timing() Timing
	// Stats is a snapshot of the counters, summed over shards.
	Stats() Stats
	// Recorder is the observability recorder shared by every shard (nil
	// when tracing is off).
	Recorder() *obs.Recorder
	// SetTrace installs a transaction observer across all shards.
	// Must be set before traffic starts.
	SetTrace(fn func(tx *Transaction, r *Result))
	// Shards is the number of independent serialisation domains.
	Shards() int
	// Granularity is the interleave granularity in lines: lines
	// [k·G, (k+1)·G) share a home shard.
	Granularity() int
	// HomeShard maps a line to the shard that serialises it.
	HomeShard(addr Addr) int
	// SegmentID is the ObsID stamped on events about addr's home shard.
	SegmentID(addr Addr) int
	// Shard exposes the underlying Bus for shard i (escape hatch for
	// engines and tests that need per-shard state such as LastTxID).
	Shard(i int) *Bus
	// DrainPending force-retires every split-mode pending transaction
	// on every shard (no-op in atomic mode). Engines call it at
	// quiesce so deferred data tenures are fully accounted.
	DrainPending()
}

// Compile-time checks: both fabric implementations satisfy the
// interface.
var (
	_ Fabric = (*Bus)(nil)
	_ Fabric = (*Interleaved)(nil)
)

// InterleavedConfig parameterises an Interleaved fabric. The embedded
// Config applies to every shard; Config.Arbiter must be nil (each
// shard owns its arbiter — that independence is the whole point) and
// Config.ObsID is the id of shard 0, with shard i emitting as
// ObsID + i.
type InterleavedConfig struct {
	Config
	// Shards is the number of independent buses (≥ 1).
	Shards int
	// Granularity is the interleave granularity in lines; consecutive
	// runs of G lines share a home shard. Zero means 1 (pure line
	// interleave). Systems with sector caches set G to the sector size
	// so a whole sector is homed on one shard.
	Granularity int
}

// Interleaved is an address-interleaved multi-bus backplane: N
// independent Futurebus segments, each with its own FIFO arbiter,
// occupancy accounting and memory shard. A line's transactions all
// serialise through its home shard — HomeShard(addr) = (addr/G) mod N
// — so per-line ordering (all §3.1 needs) is preserved while
// unrelated lines proceed in parallel.
type Interleaved struct {
	shards []*Bus
	gran   uint64
	// traceMu serialises a SetTrace observer shared across shards,
	// which otherwise would be called concurrently.
	traceMu sync.Mutex
}

// NewInterleaved creates an interleaved fabric over the given memory
// shards, one per bus. len(mems) must equal cfg.Shards.
func NewInterleaved(mems []MemoryPort, cfg InterleavedConfig) *Interleaved {
	if cfg.Shards < 1 {
		panic("bus: interleaved fabric needs at least 1 shard")
	}
	if len(mems) != cfg.Shards {
		panic(fmt.Sprintf("bus: %d memory shards for %d bus shards", len(mems), cfg.Shards))
	}
	if cfg.Arbiter != nil {
		panic("bus: interleaved shards serialise independently; Config.Arbiter must be nil")
	}
	if cfg.Granularity <= 0 {
		cfg.Granularity = 1
	}
	f := &Interleaved{gran: uint64(cfg.Granularity)}
	for i := 0; i < cfg.Shards; i++ {
		sc := cfg.Config
		sc.Arbiter = newShardArbiter(i, cfg.Shards)
		sc.ObsID = cfg.ObsID + i
		f.shards = append(f.shards, New(mems[i], sc))
	}
	return f
}

// HomeShard maps a line address to its serialising shard.
func (f *Interleaved) HomeShard(addr Addr) int {
	return int((uint64(addr) / f.gran) % uint64(len(f.shards)))
}

// home returns addr's shard bus.
func (f *Interleaved) home(addr Addr) *Bus { return f.shards[f.HomeShard(addr)] }

// Attach registers the snooper on every shard, in shard order, so all
// shards share one attach ordering (their concurrent snoop sweeps then
// acquire directory locks in a single global order).
func (f *Interleaved) Attach(s Snooper) {
	for _, b := range f.shards {
		b.Attach(s)
	}
}

// Execute routes the transaction to its home shard.
func (f *Interleaved) Execute(tx *Transaction) (Result, error) { return f.home(tx.Addr).Execute(tx) }

// Acquire blocks until addr's home shard grants mastership to master.
func (f *Interleaved) Acquire(addr Addr, master int) { f.home(addr).Acquire(addr, master) }

// Release returns mastership of addr's home shard.
func (f *Interleaved) Release(addr Addr) { f.home(addr).Release(addr) }

// ExecuteHeld runs a transaction on its home shard, which the caller
// must have Acquired (enforced only by discipline, as on a single
// bus).
func (f *Interleaved) ExecuteHeld(tx *Transaction) (Result, error) {
	return f.home(tx.Addr).ExecuteHeld(tx)
}

// LineSize returns the system-wide line size in bytes.
func (f *Interleaved) LineSize() int { return f.shards[0].LineSize() }

// Timing returns the cost model (identical on every shard).
func (f *Interleaved) Timing() Timing { return f.shards[0].Timing() }

// Recorder returns the observability recorder shared by the shards.
func (f *Interleaved) Recorder() *obs.Recorder { return f.shards[0].Recorder() }

// Stats sums the counters over all shards.
func (f *Interleaved) Stats() Stats {
	var total Stats
	for _, b := range f.shards {
		total.Add(b.Stats())
	}
	return total
}

// SetTrace installs one observer across every shard; shards may
// complete transactions concurrently, so calls are serialised through
// an internal mutex. Must be set before traffic starts.
func (f *Interleaved) SetTrace(fn func(tx *Transaction, r *Result)) {
	for _, b := range f.shards {
		if fn == nil {
			b.SetTrace(nil)
			continue
		}
		b.SetTrace(func(tx *Transaction, r *Result) {
			f.traceMu.Lock()
			defer f.traceMu.Unlock()
			fn(tx, r)
		})
	}
}

// Shards reports the shard count.
func (f *Interleaved) Shards() int { return len(f.shards) }

// Granularity returns the interleave granularity in lines.
func (f *Interleaved) Granularity() int { return int(f.gran) }

// SegmentID returns the ObsID of addr's home shard.
func (f *Interleaved) SegmentID(addr Addr) int { return f.home(addr).ObsID() }

// Shard returns the underlying Bus for shard i.
func (f *Interleaved) Shard(i int) *Bus { return f.shards[i] }

// DrainPending force-retires split-mode pending transactions on every
// shard.
func (f *Interleaved) DrainPending() {
	for _, b := range f.shards {
		b.DrainPending()
	}
}
