// Package bus simulates the IEEE Futurebus (P896) facilities the MOESI
// class of consistency protocols relies on (§2 of the paper):
//
//   - broadcast address cycles: every attached unit observes every
//     address and must acknowledge it before the cycle completes, which
//     gives any snooping cache time to signal an exception;
//   - open-collector wired-OR response lines (CH, DI, SL, BS), resolved
//     per transaction, including the per-snooper "other units' CH" view
//     a listening owner needs to resolve CH-conditional transitions;
//   - multi-party data transfers: an intervening owner (DI) preempts
//     memory, broadcast writes update memory and every connecting (SL)
//     slave;
//   - the BS (busy) abort: a transaction is aborted, the asserting owner
//     pushes its line to memory, and the original master retries —
//     the paper's adaptation for Write-Once, Illinois and Firefly;
//   - a timing model charging each transaction the address handshake
//     (including the 25 ns wired-OR glitch-filter penalty of §2.2),
//     first-word latency and per-word transfer cycles.
//
// The Bus is the serialisation point of the system: transactions execute
// one at a time under a FIFO arbiter, which is what makes the
// goroutine-per-processor engine race-free.
package bus

import (
	"encoding/binary"
	"errors"
	"fmt"

	"futurebus/internal/core"
	"futurebus/internal/obs"
)

// Addr identifies a line of the shared address space. The bus moves
// whole lines; a standard system-wide line size is assumed throughout,
// as required by §5.1 of the paper.
type Addr uint64

// SnoopResponse is what a snooping unit proposes during the address
// cycle of a transaction it did not issue.
type SnoopResponse struct {
	// Action is the protocol action chosen for this (state, bus event)
	// cell; its signal assertions drive the wired-OR lines.
	Action core.SnoopAction
	// Line, when the action asserts DI on a read, carries the owner's
	// copy of the line so the bus can source data from it.
	Line []byte
	// State is the directory state the action was chosen from; the
	// paranoid bus mode (Config.Paranoid) validates Action against the
	// class for this state.
	State core.State
	// Hit records whether the snooper held the line at all (for stats).
	Hit bool
}

// Snooper is a unit that monitors broadcast address cycles (a cache).
//
// The address cycle of a real Futurebus transaction holds every unit's
// directory until the cycle completes (AI* stays low, §2.1); the
// interface mirrors that: Query must leave the snooper's internal lock
// held, and exactly one of Commit (apply the action and unlock) or
// Cancel (the transaction was aborted by BS; unlock without applying)
// follows. This pins each snooper's state between decision and effect,
// so a processor-side silent transition (such as E→M on a local write)
// cannot slip between the two.
//
// In Commit, otherCH is the wired-OR of CH over all *other* units,
// which resolves CH-conditional result states; write payloads (full
// line or partial word) are read from the transaction itself.
type Snooper interface {
	SnooperID() int
	Query(tx *Transaction) SnoopResponse
	Commit(tx *Transaction, resp SnoopResponse, otherCH bool)
	Cancel(tx *Transaction, resp SnoopResponse)
}

// Aborter is implemented by snoopers whose protocol asserts BS. Recover
// performs the recovery push (write the line back, enter the recovery
// state) using nested transactions on b before the aborted master
// retries.
type Aborter interface {
	Snooper
	Recover(b *Bus, aborted *Transaction, resp SnoopResponse) error
}

// MemoryPort is the main-memory module attached to the bus. Memory is
// the default owner of all data (§3.1.3) but keeps no consistency
// state: caches track the validity of memory's copy for it.
type MemoryPort interface {
	// ReadLine returns memory's copy of the line.
	ReadLine(addr Addr) []byte
	// WriteLine updates memory's copy.
	WriteLine(addr Addr, data []byte)
}

// Result is what the master observes at the end of a transaction.
type Result struct {
	// CH is the wired-OR of the cache-hit line over all snoopers: some
	// other cache holds (and will retain) the line. Resolves the
	// master's CH-conditional result states (CH:S/E, CH:O/M).
	CH bool
	// DI reports that an owning cache intervened.
	DI bool
	// SL reports that at least one slave (cache or memory) connected.
	SL bool
	// Data is the line read (for BusRead) — from the intervening owner
	// if DI, else from memory.
	Data []byte
	// Retries counts BS abort/retry rounds the transaction suffered
	// (split-mode NACKs count here too).
	Retries int
	// Cost is the bus time consumed under this tenure, in nanoseconds,
	// including aborted attempts and recovery pushes. In split mode the
	// off-bus memory service and the deferred data tenure are excluded —
	// see Phases.Pend, Phases.Deferred and StallCost.
	Cost int64
	// Phases attributes the transaction's time to bus phases:
	// Phases.Occupancy() == Cost, and Phases.Arb carries the simulated
	// arbitration wait before the grant (not part of Cost).
	Phases PhaseCosts
	// Posted reports a split-mode write the bus accepted into the
	// pending table: the master is done at the end of the address
	// tenure and does not wait for the memory service.
	Posted bool
	// TxID is the arbiter-allocated id of the transaction, matching the
	// TxID on its grant/abort/tx events, so the master can tag its own
	// follow-on state changes with the cause.
	TxID uint64
}

// StallCost is the simulated time the master stalls on this
// transaction. In atomic mode it equals Cost. In split mode a posted
// write completes at the end of the address tenure (Cost alone), while
// a read's master additionally waits out the off-bus memory service
// and the deferred data tenure that delivers its fill — time the bus,
// but not the requester, is free during.
func (r *Result) StallCost() int64 {
	if r.Posted {
		return r.Cost
	}
	return r.Cost + r.Phases.Pend + r.Phases.Deferred
}

// ErrTooManyRetries is returned when BS aborts do not quiesce; a correct
// protocol mix needs at most a few retries, so this indicates a broken
// protocol implementation.
var ErrTooManyRetries = errors.New("bus: transaction aborted too many times")

// maxRetries bounds BS abort/retry rounds per transaction.
const maxRetries = 8

// Config parameterises a Bus.
type Config struct {
	// LineSize is the system-wide line size in bytes (§5.1). Every
	// attached cache must use it; Attach rejects mismatches.
	LineSize int
	// Timing is the transaction cost model; zero value = DefaultTiming.
	Timing Timing
	// Arbiter, when non-nil, is shared with other buses: all of them
	// serialise together (see Arbiter). Nil gives the bus its own.
	Arbiter *Arbiter
	// Tenure selects the bus-tenure policy: nil (or AtomicTenure) holds
	// the master through address + data + memory service, the paper's
	// electrical model; SplitTenure decouples the data phase into
	// pending-table entries and later data tenures.
	Tenure TenurePolicy
	// Discipline, when non-nil, builds this bus's arbitration grant
	// order (fcfs / rr / priority / bounded); nil grants in strict
	// arrival order. A factory because stateful disciplines need one
	// instance per shard arbiter.
	Discipline DisciplineFactory
	// Paranoid validates every snoop response against the class at the
	// moment it is asserted (core.CheckSnoopAction): an out-of-class
	// action fails the transaction immediately instead of corrupting
	// state to be found later by a checker. Costs one class lookup per
	// snoop response.
	Paranoid bool
	// Handshake, when non-nil, derives the address-cycle cost from an
	// electrical-level simulation of the Figure 1/2 broadcast
	// handshake over the configured board timings, instead of the flat
	// Timing.AddressCycle: the cycle completes when the SLOWEST board
	// releases AI* plus the wired-OR glitch filter (§2.2). Slower
	// boards on the bus make every address cycle slower for everyone —
	// the price of "broadcast operations are guaranteed to work".
	Handshake *HandshakeConfig
	// Obs, when non-nil, receives structured events for every
	// transaction, abort, recovery push and grant; attached caches
	// inherit it (via Bus.Recorder) for state-transition and stall
	// events. Nil disables all instrumentation at one branch per site.
	Obs *obs.Recorder
	// ObsID names this bus segment in emitted events (a hierarchy
	// numbers global=0, clusters 1..N).
	ObsID int
}

// DefaultLineSize is the line size used when Config.LineSize is zero.
const DefaultLineSize = 32

// Bus is a simulated Futurebus segment.
type Bus struct {
	cfg      Config
	memory   MemoryPort
	snoopers []Snooper
	arb      *Arbiter
	stats    Stats
	// trace, when non-nil, receives every executed transaction.
	trace func(tx *Transaction, r *Result)
	depth int // nested-transaction depth (recovery pushes)
	// arbWait is the simulated time the current mastership spent
	// waiting for the grant, measured against the recorder's occupancy
	// clock in Acquire/Execute and consumed by the first transaction
	// executed under the grant. Guarded by the arbiter lock.
	arbWait int64
	// arbBlocker is the transaction that completed most recently when
	// the current mastership was granted — the blocking mastership a
	// non-zero arbWait is attributed to. Guarded by the arbiter lock.
	arbBlocker uint64
	// causeTx, when non-zero, is the aborted transaction a nested BS
	// recovery push is running for; its id is stamped as CauseID on the
	// recovery's own transaction events. Guarded by the arbiter lock.
	causeTx uint64
	// tenure is the tenure policy (never nil); split caches whether it
	// can defer at all, so the atomic fast path pays one bool test.
	tenure TenurePolicy
	split  bool
	// pendTable is the split-mode pending-transaction table: address
	// tenures that ended with their data phase still owed. Bounded by
	// tenure.TableSize(); guarded by the arbiter lock.
	pendTable []pendEntry
}

// New creates a bus with the given memory module.
func New(memory MemoryPort, cfg Config) *Bus {
	if cfg.LineSize == 0 {
		cfg.LineSize = DefaultLineSize
	}
	if cfg.Timing == (Timing{}) {
		cfg.Timing = DefaultTiming()
	}
	if cfg.Handshake != nil {
		// The simulated handshake's completion time already includes
		// the glitch filter; AddressCycleCost adds WiredORPenalty, so
		// subtract it here to charge exactly the simulated figure.
		tr := SimulateBroadcastHandshake(*cfg.Handshake)
		cfg.Timing.AddressCycle = tr.Complete - cfg.Timing.WiredORPenalty
	}
	arb := cfg.Arbiter
	if arb == nil {
		arb = NewArbiter()
	}
	if cfg.Discipline != nil && arb.Discipline() == nil {
		arb.SetDiscipline(cfg.Discipline())
	}
	tenure := cfg.Tenure
	if tenure == nil {
		tenure = AtomicTenure()
	}
	return &Bus{
		cfg: cfg, memory: memory, arb: arb,
		tenure: tenure, split: tenure.TableSize() > 0,
	}
}

// Tenure returns the tenure policy in effect.
func (b *Bus) Tenure() TenurePolicy { return b.tenure }

// LineSize returns the system-wide line size in bytes.
func (b *Bus) LineSize() int { return b.cfg.LineSize }

// Timing returns the cost model in use.
func (b *Bus) Timing() Timing { return b.cfg.Timing }

// Recorder returns the observability recorder (nil when tracing is
// off). Attached units emit their own events through it, so wiring a
// recorder into the bus instruments the whole segment.
func (b *Bus) Recorder() *obs.Recorder { return b.cfg.Obs }

// ObsID returns this bus segment's id in emitted events.
func (b *Bus) ObsID() int { return b.cfg.ObsID }

// Shards reports the number of independent shards: a single Bus is a
// one-shard fabric.
func (b *Bus) Shards() int { return 1 }

// Granularity returns the interleave granularity in lines (1 for a
// single bus: every line is homed here).
func (b *Bus) Granularity() int { return 1 }

// HomeShard returns the shard serialising the line (always 0 here).
func (b *Bus) HomeShard(Addr) int { return 0 }

// SegmentID returns the ObsID of the shard owning the line, for event
// attribution; on a single bus that is the bus's own ObsID.
func (b *Bus) SegmentID(Addr) int { return b.cfg.ObsID }

// Shard returns the underlying Bus for shard i (itself).
func (b *Bus) Shard(i int) *Bus {
	if i != 0 {
		panic(fmt.Sprintf("bus: shard %d of a single bus", i))
	}
	return b
}

// Attach registers a snooping unit. Units attach at configuration time,
// before traffic starts; Attach is not safe concurrently with Execute.
func (b *Bus) Attach(s Snooper) {
	for _, old := range b.snoopers {
		if old.SnooperID() == s.SnooperID() {
			panic(fmt.Sprintf("bus: duplicate snooper id %d", s.SnooperID()))
		}
	}
	b.snoopers = append(b.snoopers, s)
}

// SetTrace installs a transaction observer (used by cmd/fbtrace and
// tests). Must be set before traffic starts.
func (b *Bus) SetTrace(fn func(tx *Transaction, r *Result)) { b.trace = fn }

// Stats returns a snapshot of the accumulated counters.
func (b *Bus) Stats() Stats {
	b.arb.mu.Lock(-1)
	defer b.arb.mu.Unlock()
	return b.stats
}

// BusyNanos returns the shard's occupancy clock — total bus-occupied
// time so far, including split-mode data tenures. The deterministic
// engine samples it around an access to learn how much bus time the
// access actually held (in split mode that is less than the master's
// stall).
func (b *Bus) BusyNanos() int64 {
	b.arb.mu.Lock(-1)
	defer b.arb.mu.Unlock()
	return b.stats.BusyNanos
}

// Execute runs one transaction to completion: broadcast address cycle,
// snoop responses, BS abort/recovery/retry, data routing, and commit.
// It blocks until the arbiter grants the bus. Masters must not call
// Execute while holding any lock a snooper's Query/Commit needs.
func (b *Bus) Execute(tx *Transaction) (Result, error) {
	b.Acquire(tx.Addr, tx.MasterID)
	defer b.Release(tx.Addr)
	return b.executeLocked(tx)
}

// Acquire requests bus mastership from the arbiter and blocks until
// granted under the configured Discipline. A cache client acquires the
// bus, re-examines its own directory (the state may have changed while
// it waited), and only then issues transactions with ExecuteHeld — the
// same look-up-again-after-arbitration a hardware cache controller
// performs.
//
// The address selects which fabric shard to hold; a single Bus is one
// shard, so it ignores the argument. master is the requesting board's
// id (the discipline's input; internal callers pass -1). Every
// ExecuteHeld issued under the grant must target the same shard (the
// same home line group).
//
// In split mode a fresh grant first retires any pending responses
// whose memory service has completed — responses win arbitration over
// the next requester, each taking a short data tenure.
//
// When observability is on, the occupancy-clock advance across the
// wait is recorded as the arbitration-wait phase of the first
// transaction executed under this grant.
func (b *Bus) Acquire(addr Addr, master int) {
	if rec := b.cfg.Obs; rec != nil {
		t0 := rec.Clock()
		b.arb.mu.Lock(master)
		b.arbWait = rec.Clock() - t0
		b.arbBlocker = b.arb.lastTx.Load()
	} else {
		b.arb.mu.Lock(master)
	}
	if b.split {
		for b.drainOneLocked(false) {
		}
	}
}

// LastTxID returns the id of the most recently completed transaction
// on this bus's arbiter (0 before any transaction). The deterministic
// engine reads it between transactions to attribute its timeline-level
// bus waits (KindBlocked) to the occupying transaction.
func (b *Bus) LastTxID() uint64 { return b.arb.lastTx.Load() }

// ArbQueueDepth returns the instantaneous arbitration queue occupancy
// of this bus's arbiter — the current master plus queued contenders, 0
// when idle. Safe from any goroutine; the live gauges
// (futurebus_arb_queue_depth) poll it at scrape time.
func (b *Bus) ArbQueueDepth() int { return b.arb.Pending() }

// Release returns bus mastership. The address must be the one passed
// to the matching Acquire (ignored on a single bus).
func (b *Bus) Release(Addr) {
	b.arbWait = 0
	b.arb.mu.Unlock()
}

// DrainPending force-retires every split-mode pending transaction:
// each outstanding response takes its data tenure now, in table order.
// Engines call it at quiesce so the occupancy clock and event stream
// account every deferred beat; a no-op in atomic mode.
func (b *Bus) DrainPending() {
	if !b.split {
		return
	}
	b.arb.mu.Lock(-1)
	defer b.arb.mu.Unlock()
	for b.drainOneLocked(true) {
	}
}

// drainOneLocked retires the oldest pending entry if its off-bus
// memory service has completed on the occupancy clock (or
// unconditionally when forced), charging its data-tenure beats to the
// shard. Caller holds the arbiter lock.
func (b *Bus) drainOneLocked(force bool) bool {
	if len(b.pendTable) == 0 {
		return false
	}
	e := b.pendTable[0]
	if !force && e.readyAt > b.stats.BusyNanos {
		return false
	}
	copy(b.pendTable, b.pendTable[1:])
	b.pendTable = b.pendTable[:len(b.pendTable)-1]
	b.stats.BusyNanos += e.beats
	b.stats.DataTenures++
	if rec := b.cfg.Obs; rec != nil {
		// The data tenure occupies [begin, begin+beats); CauseID links
		// the pending-wait edge to the tenure it queued behind.
		begin := rec.Advance(e.beats)
		rec.Emit(obs.Event{
			TS: begin, Dur: e.beats, Kind: obs.KindData, Bus: b.cfg.ObsID,
			Proc: e.master, Addr: uint64(e.addr), DeferNS: e.beats,
			TxID: e.txid, CauseID: b.arb.lastTx.Load(),
		})
	}
	return true
}

// deferDataLocked moves a completed attempt's data phase into the
// pending table. If the table is full, the transaction is NACKed
// first — the split-mode fold of the BS abort: the oldest response is
// force-drained to make room and the master is charged one retry
// address cycle. Caller holds the arbiter lock; r's cost fields are
// adjusted before Stats.record sees them.
func (b *Bus) deferDataLocked(tx *Transaction, r *Result, txid uint64) {
	if len(b.pendTable) >= b.tenure.TableSize() {
		b.drainOneLocked(true)
		addrCost := b.cfg.Timing.AddressCycleCost()
		r.Retries++
		r.Cost += addrCost
		r.Phases.Retry += addrCost
		b.stats.Nacks++
		if rec := b.cfg.Obs; rec != nil {
			rec.Emit(obs.Event{
				TS: rec.Clock(), Dur: addrCost, Kind: obs.KindNack, Bus: b.cfg.ObsID,
				Proc: tx.MasterID, Addr: uint64(tx.Addr), Col: tx.Event().Column(),
				TxID: txid,
			})
		}
	}
	// Memory starts serving as the address tenure ends: ready when the
	// occupancy clock (advanced by r.Cost when this tx is recorded)
	// passes the off-bus first-word latency.
	b.pendTable = append(b.pendTable, pendEntry{
		txid: txid, master: tx.MasterID, addr: tx.Addr,
		beats:   r.Phases.Deferred,
		readyAt: b.stats.BusyNanos + r.Cost + r.Phases.Pend,
	})
	if rec := b.cfg.Obs; rec != nil {
		rec.Emit(obs.Event{
			TS: rec.Clock(), Dur: r.Phases.Pend, Kind: obs.KindPend, Bus: b.cfg.ObsID,
			Proc: tx.MasterID, Addr: uint64(tx.Addr), Op: opLetter(tx.Op),
			PendNS: r.Phases.Pend, TxID: txid,
		})
	}
}

// ExecuteHeld runs a transaction on an already-Acquired bus. It is also
// how a BS recovery push runs nested inside an aborted transaction.
func (b *Bus) ExecuteHeld(tx *Transaction) (Result, error) {
	return b.executeLocked(tx)
}

func (b *Bus) executeLocked(tx *Transaction) (Result, error) {
	if err := tx.check(b.cfg.LineSize); err != nil {
		return Result{}, err
	}
	// The first transaction of a mastership absorbs the arbitration
	// wait; nested recovery pushes and follow-on held transactions ran
	// without re-arbitrating.
	arbWait := b.arbWait
	b.arbWait = 0
	// Every transaction gets a stable id; a non-zero causeTx marks this
	// as a BS recovery push and names the aborted transaction it is
	// recovering for. The id is stamped on the transaction itself so
	// snoopers see it in Query/Commit/Recover.
	txid := b.arb.nextTxID()
	tx.txid = txid
	causeID := b.causeTx
	if rec := b.cfg.Obs; rec != nil {
		var blocker uint64
		if arbWait > 0 {
			blocker = b.arbBlocker
		}
		rec.Emit(obs.Event{
			TS: rec.Clock(), Dur: arbWait, Kind: obs.KindGrant, Bus: b.cfg.ObsID,
			Proc: tx.MasterID, Addr: uint64(tx.Addr), Col: tx.Event().Column(),
			TxID: txid, CauseID: blocker,
		})
	}
	var res Result
	res.Phases.Arb = arbWait
	for attempt := 0; ; attempt++ {
		if attempt > maxRetries {
			// Surface the wedged transaction structurally before failing:
			// a counter (futurebus_retry_exhausted_total) and an event the
			// runtime monitor folds into a forward-progress violation.
			b.stats.RetryExhausted++
			if rec := b.cfg.Obs; rec != nil {
				rec.Emit(obs.Event{
					TS: rec.Clock(), Kind: obs.KindRetryExhausted, Bus: b.cfg.ObsID,
					Proc: tx.MasterID, Addr: uint64(tx.Addr), Col: tx.Event().Column(),
					Retries: res.Retries, TxID: txid, CauseID: causeID,
				})
			}
			return res, fmt.Errorf("%w: %s", ErrTooManyRetries, tx)
		}
		// Broadcast address cycle: every unit sees the address and
		// proposes a response (§2.1). Query must be side-effect free.
		responses := make([]SnoopResponse, len(b.snoopers))
		busy := false
		paranoidErr := ""
		for i, s := range b.snoopers {
			if s.SnooperID() == tx.MasterID {
				continue
			}
			responses[i] = s.Query(tx)
			if responses[i].Action.Abort != nil {
				busy = true
			}
			if b.cfg.Paranoid && responses[i].Hit && tx.Cmd == CmdNone && paranoidErr == "" {
				verdict, reason := core.CheckSnoopAction(responses[i].State, tx.Event(), responses[i].Action)
				if verdict == core.NotInClass {
					paranoidErr = fmt.Sprintf("bus: snooper %d asserted out-of-class action %s from state %s on col %d (%s) for %s",
						s.SnooperID(), responses[i].Action, responses[i].State.Letter(), tx.Event().Column(), reason, tx)
				}
			}
		}
		if paranoidErr != "" {
			// Release every directory before failing.
			for i, s := range b.snoopers {
				if s.SnooperID() == tx.MasterID {
					continue
				}
				s.Cancel(tx, responses[i])
			}
			return res, errors.New(paranoidErr)
		}
		// Every address cycle pays the full broadcast handshake; aborted
		// attempts charge it to the retry phase, the successful one to
		// the address phase.
		addrCost := b.cfg.Timing.AddressCycleCost()
		res.Cost += addrCost

		if busy {
			res.Phases.Retry += addrCost
			// BS: abort this attempt. Release every unit's directory
			// first (Cancel), then each asserter pushes its line to
			// memory as a nested transaction, and the master retries
			// (§3.2.2, §4.3–4.5).
			res.Retries++
			b.stats.Aborts++
			if rec := b.cfg.Obs; rec != nil {
				rec.Emit(obs.Event{
					TS: rec.Clock(), Kind: obs.KindAbort, Bus: b.cfg.ObsID,
					Proc: tx.MasterID, Addr: uint64(tx.Addr), Col: tx.Event().Column(),
					TxID: txid,
				})
			}
			for i, s := range b.snoopers {
				if s.SnooperID() == tx.MasterID {
					continue
				}
				s.Cancel(tx, responses[i])
			}
			for i, s := range b.snoopers {
				if responses[i].Action.Abort == nil {
					continue
				}
				a, ok := s.(Aborter)
				if !ok {
					return res, fmt.Errorf("bus: snooper %d asserted BS without implementing Aborter", s.SnooperID())
				}
				if rec := b.cfg.Obs; rec != nil {
					rec.Emit(obs.Event{
						TS: rec.Clock(), Kind: obs.KindRecover, Bus: b.cfg.ObsID,
						Proc: s.SnooperID(), Addr: uint64(tx.Addr),
						TxID: txid, CauseID: causeID,
					})
				}
				b.depth++
				prevCause := b.causeTx
				b.causeTx = txid
				err := a.Recover(b, tx, responses[i])
				b.causeTx = prevCause
				b.depth--
				if err != nil {
					return res, fmt.Errorf("bus: BS recovery by snooper %d: %w", s.SnooperID(), err)
				}
			}
			continue
		}

		r, err := b.completeAttempt(tx, responses)
		if err != nil {
			return res, err
		}
		r.Retries = res.Retries
		r.Cost += res.Cost
		r.TxID = txid
		// completeAttempt filled the data-phase breakdown; graft the
		// attempt-loop phases (arbitration, address, retry) onto it.
		r.Phases.Arb = res.Phases.Arb
		r.Phases.Addr = addrCost
		r.Phases.Retry = res.Phases.Retry
		if r.Phases.Deferred > 0 {
			// Split mode: park the data phase in the pending table (NACK
			// first if it is full) before the stats see the final cost.
			b.deferDataLocked(tx, &r, txid)
		}
		b.stats.record(tx, &r, b.cfg.LineSize)
		b.arb.lastTx.Store(txid)
		if rec := b.cfg.Obs; rec != nil {
			// The recorder's clock is cumulative bus occupancy; this
			// transaction's slice spans [begin, begin+Cost).
			begin := rec.Advance(r.Cost)
			rec.Emit(obs.Event{
				TS: begin, Dur: r.Cost, Kind: obs.KindTx, Bus: b.cfg.ObsID,
				Proc: tx.MasterID, Addr: uint64(tx.Addr),
				Col: tx.Event().Column(), Op: opLetter(tx.Op),
				CH: r.CH, DI: r.DI, SL: r.SL,
				Retries: r.Retries, Bytes: txBytes(tx, b.cfg.LineSize),
				ArbNS: r.Phases.Arb, AddrNS: r.Phases.Addr,
				DataNS: r.Phases.Data, IntvNS: r.Phases.Intervention,
				MemNS: r.Phases.Memory, RetryNS: r.Phases.Retry,
				PendNS: r.Phases.Pend, DeferNS: r.Phases.Deferred,
				TxID: txid, CauseID: causeID,
			})
		}
		if b.trace != nil {
			b.trace(tx, &r)
		}
		return r, nil
	}
}

// completeAttempt finishes a non-aborted transaction: resolves the
// wired-OR response lines, routes data, and commits every snooper.
func (b *Bus) completeAttempt(tx *Transaction, responses []SnoopResponse) (Result, error) {
	var res Result
	diCount := 0
	var diLine []byte
	for i, s := range b.snoopers {
		if s.SnooperID() == tx.MasterID {
			continue
		}
		a := responses[i].Action
		if a.AssertCH {
			res.CH = true
		}
		if a.AssertSL {
			res.SL = true
		}
		if a.AssertDI {
			res.DI = true
			diCount++
			diLine = responses[i].Line
		}
	}
	// Ownership is unique (§3.1.3): two simultaneous DI assertions mean
	// two owners, a broken system. Release every directory before
	// failing — Query holds each snooper's shard lock until Commit or
	// Cancel, and leaking them would turn a reportable protocol bug
	// into a whole-machine deadlock.
	if diCount > 1 {
		for i, s := range b.snoopers {
			if s.SnooperID() == tx.MasterID {
				continue
			}
			s.Cancel(tx, responses[i])
		}
		return res, fmt.Errorf("bus: %d units asserted DI for %s — duplicate owners", diCount, tx)
	}

	// Commit phase BEFORE the data phase: commits never need routed
	// data (an intervening owner's line was captured at Query, write
	// payloads ride the transaction), and releasing every directory
	// first lets the memory port itself issue nested transactions — a
	// multi-bus bridge serving this address from another bus
	// (internal/hierarchy) must be able to snoop the caches this
	// transaction just queried.
	//
	// Each snooper resolves CH-conditional states against the CH of
	// the *other* units (§3.2.2 — the listener does not assert, so the
	// wired-OR it observes is exactly the others').
	for i, s := range b.snoopers {
		if s.SnooperID() == tx.MasterID {
			continue
		}
		otherCH := false
		for j, s2 := range b.snoopers {
			if j == i || s2.SnooperID() == tx.MasterID {
				continue
			}
			if responses[j].Action.AssertCH {
				otherCH = true
				break
			}
		}
		s.Commit(tx, responses[i], otherCH)
		if responses[i].Action.AssertSL && tx.Op == core.BusWrite {
			b.stats.Updates++
		}
	}

	// Data routing.
	switch tx.Op {
	case core.BusRead:
		if res.DI {
			if diLine == nil {
				return res, fmt.Errorf("bus: DI asserted on read without supplying data: %s", tx)
			}
			res.Data = append([]byte(nil), diLine...)
			b.stats.Interventions++
		} else {
			res.Data = append([]byte(nil), b.memory.ReadLine(tx.Addr)...)
			res.SL = true // memory connects as the responding slave
		}
	case core.BusWrite:
		// A broadcast write reaches memory and every SL slave. A
		// non-broadcast write is captured by the owner (DI preempts
		// memory); only if no owner exists does memory take it.
		if tx.Signals.Has(core.SigBC) || !res.DI {
			if tx.Partial != nil {
				line := b.memory.ReadLine(tx.Addr)
				binary.LittleEndian.PutUint32(line[tx.Partial.Word*4:], tx.Partial.Val)
				b.memory.WriteLine(tx.Addr, line)
			} else {
				b.memory.WriteLine(tx.Addr, tx.Data)
			}
			res.SL = true
		}
		if res.DI {
			b.stats.Interventions++
		}
	case core.BusAddrOnly:
		// No data phase.
	default:
		return res, fmt.Errorf("bus: unsupported op %v in %s", tx.Op, tx)
	}

	beats, firstWord, fromOwner := b.cfg.Timing.DataPhaseParts(tx, &res, b.cfg.LineSize)
	if b.split && b.depth == 0 && !fromOwner && b.tenure.Deferrable(tx, &res) {
		// Split tenure: the grant ends with the address handshake. The
		// first-word latency is served off-bus (Pend) and the transfer
		// beats ride a later data tenure (Deferred); neither occupies
		// this tenure, so Cost (== Phases.Occupancy) excludes both.
		// Nested recovery pushes (depth > 0) and owner interventions
		// stay atomic — their data resolves during the snooped tenure.
		res.Phases.Pend = firstWord
		res.Phases.Deferred = beats
		res.Posted = tx.Op == core.BusWrite
		return res, nil
	}
	res.Phases.Data = beats
	if fromOwner {
		res.Phases.Intervention = firstWord
	} else {
		res.Phases.Memory = firstWord
	}
	res.Cost += beats + firstWord
	return res, nil
}
