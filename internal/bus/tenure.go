package bus

import (
	"fmt"

	"futurebus/internal/core"
)

// TenurePolicy decides how much of a transaction a bus tenure covers.
//
// The paper's §5 bus (AtomicTenure) holds the master through the whole
// address + data sequence: memory's first-word latency is spent with
// the bus idle but granted, which is what saturates first under heavy
// traffic. SplitTenure decouples the phases: the address tenure ends
// after the broadcast handshake, memory service proceeds off-bus while
// other masters use the bus, and the response later arbitrates for a
// short data tenure of its own. In-flight requests live in a bounded
// per-shard pending-transaction table; when the table is full the bus
// NACKs the requester — the split-mode fold of the BS abort — charging
// it one retry address cycle while the oldest response is force-drained
// to make room, so progress is guaranteed.
//
// Only the timing model splits: data still moves under the address
// tenure, so every per-line ordering and coherence invariant (§3.1)
// holds exactly as in atomic mode. What changes is accounting — bus
// occupancy (Result.Cost) excludes the off-bus service and deferred
// beats, which show up as PhaseCosts.Pend / PhaseCosts.Deferred and in
// the master's Result.StallCost.
type TenurePolicy interface {
	// Name identifies the policy ("atomic", "split") in reports.
	Name() string
	// Deferrable reports whether a completed attempt's data phase may be
	// decoupled from its address tenure. Called with the resolved
	// wired-OR result, under the shard's arbiter lock.
	Deferrable(tx *Transaction, r *Result) bool
	// TableSize bounds the per-shard pending-transaction table; 0 means
	// the policy never defers (atomic mode).
	TableSize() int
}

// DefaultPendingTable is the split-mode pending-transaction table size
// used when none is configured — small, like the request queues of
// real split-transaction backplanes, so the NACK path is reachable.
const DefaultPendingTable = 8

// atomicTenure is the classic single-grant tenure.
type atomicTenure struct{}

// AtomicTenure returns the default policy: one grant covers address,
// data and memory service, exactly the paper's electrical model.
func AtomicTenure() TenurePolicy { return atomicTenure{} }

func (atomicTenure) Name() string                          { return "atomic" }
func (atomicTenure) Deferrable(*Transaction, *Result) bool { return false }
func (atomicTenure) TableSize() int                        { return 0 }

// splitTenure is the split-transaction policy.
type splitTenure struct{ table int }

// SplitTenure returns a split-transaction policy with the given
// pending-table bound per shard (0 = DefaultPendingTable).
func SplitTenure(table int) TenurePolicy {
	if table <= 0 {
		table = DefaultPendingTable
	}
	return splitTenure{table: table}
}

func (splitTenure) Name() string { return "split" }

// Deferrable: whole-line transfers serviced by memory split; everything
// that must resolve during the address tenure stays atomic — address-
// only cycles have no data phase, partial (single-word) writes and
// broadcast updates complete in one beat anyway, and an intervening
// owner (DI) supplies cache-to-cache during the tenure it snooped.
func (splitTenure) Deferrable(tx *Transaction, r *Result) bool {
	if tx.Op == core.BusAddrOnly || tx.Partial != nil {
		return false
	}
	if tx.Signals.Has(core.SigBC) {
		return false
	}
	switch tx.Op {
	case core.BusRead:
		return !r.DI
	case core.BusWrite:
		return !r.DI
	}
	return false
}

func (s splitTenure) TableSize() int { return s.table }

// NewTenure resolves a tenure-mode name ("", "atomic", "split") to a
// policy; table bounds the split pending table (0 = default).
func NewTenure(name string, table int) (TenurePolicy, error) {
	switch name {
	case "", "atomic":
		return AtomicTenure(), nil
	case "split":
		return SplitTenure(table), nil
	}
	return nil, fmt.Errorf("bus: unknown tenure mode %q (have atomic, split)", name)
}

// pendEntry is one in-flight split transaction: its address tenure is
// over, memory service completes (off-bus) at readyAt on the shard's
// occupancy clock, and the response still owes beats of data tenure.
type pendEntry struct {
	txid   uint64
	master int
	addr   Addr
	// beats is the data-phase transfer time owed by the data tenure.
	beats int64
	// readyAt is the shard occupancy-clock (Stats.BusyNanos) value at
	// which the off-bus memory service is complete and the response may
	// win a data tenure.
	readyAt int64
}
