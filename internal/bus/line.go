package bus

import (
	"fmt"
	"sort"
	"strings"
)

// WiredORLine models one open-collector, passively terminated backplane
// signal (§2.2): any driver can pull the line low ("a child's foot on
// the garden hose stops the flow"), and the line floats high only when
// every driver has released it. Asserted == electrically low.
type WiredORLine struct {
	name    string
	drivers map[int]bool
}

// NewWiredORLine creates a released (high) line.
func NewWiredORLine(name string) *WiredORLine {
	return &WiredORLine{name: name, drivers: make(map[int]bool)}
}

// Name returns the signal name (by Futurebus convention, asserted-low
// signals carry a trailing "*", e.g. "AS*").
func (l *WiredORLine) Name() string { return l.name }

// Assert turns on the open-collector driver of the given unit.
func (l *WiredORLine) Assert(unit int) { l.drivers[unit] = true }

// Release turns the unit's driver off. Releasing a line still held by
// another driver produces the wired-OR glitch of §2.2; the glitch is
// filtered (see Handshake), so the logical level here is clean.
func (l *WiredORLine) Release(unit int) { delete(l.drivers, unit) }

// Asserted reports whether any driver holds the line low.
func (l *WiredORLine) Asserted() bool { return len(l.drivers) > 0 }

// Drivers returns the units currently driving the line, sorted.
func (l *WiredORLine) Drivers() []int {
	out := make([]int, 0, len(l.drivers))
	for u := range l.drivers {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

func (l *WiredORLine) String() string {
	level := "high"
	if l.Asserted() {
		level = "low"
	}
	var ds []string
	for _, d := range l.Drivers() {
		ds = append(ds, fmt.Sprintf("%d", d))
	}
	return fmt.Sprintf("%s=%s[%s]", l.name, level, strings.Join(ds, ","))
}
