package bus

import (
	"testing"

	"futurebus/internal/core"
)

// TestStatsRecord: record classifies each transaction by data phase and
// Table 2 column, and accumulates bytes and busy time.
func TestStatsRecord(t *testing.T) {
	var s Stats
	const lineSize = 16

	read := &Transaction{MasterID: 0, Op: core.BusRead, Addr: 1}
	s.record(read, &Result{Cost: 100}, lineSize)
	partial := &Transaction{MasterID: 0, Op: core.BusWrite, Addr: 2, Partial: &PartialWrite{Word: 0, Val: 7}}
	s.record(partial, &Result{Cost: 50}, lineSize)
	full := &Transaction{MasterID: 0, Op: core.BusWrite, Addr: 3, Data: make([]byte, lineSize)}
	s.record(full, &Result{Cost: 50}, lineSize)
	addrOnly := &Transaction{MasterID: 0, Op: core.BusAddrOnly, Addr: 4, Signals: core.SigCA | core.SigIM}
	s.record(addrOnly, &Result{Cost: 25}, lineSize)

	if s.Transactions != 4 {
		t.Errorf("transactions = %d, want 4", s.Transactions)
	}
	if s.Reads != 1 || s.Writes != 2 || s.AddrOnly != 1 {
		t.Errorf("split = R%d/W%d/A%d, want 1/2/1", s.Reads, s.Writes, s.AddrOnly)
	}
	// Read moves a line, partial write one word, full write a line,
	// address-only nothing.
	if want := int64(lineSize + 4 + lineSize); s.BytesTransferred != want {
		t.Errorf("bytes = %d, want %d", s.BytesTransferred, want)
	}
	if s.BusyNanos != 225 {
		t.Errorf("busy = %d, want 225", s.BusyNanos)
	}
	var byEvent int64
	for _, n := range s.ByEvent {
		byEvent += n
	}
	if byEvent != 4 {
		t.Errorf("ByEvent total = %d, want 4", byEvent)
	}
}

// TestStatsAdd: Add accumulates every field, including the per-column
// array.
func TestStatsAdd(t *testing.T) {
	a := Stats{
		Transactions: 10, Reads: 5, Writes: 3, AddrOnly: 2,
		Interventions: 1, Updates: 2, Aborts: 3,
		BytesTransferred: 100, BusyNanos: 1000,
	}
	a.ByEvent[0] = 4
	a.ByEvent[5] = 6
	b := Stats{
		Transactions: 1, Reads: 1,
		Interventions: 1, BytesTransferred: 16, BusyNanos: 50,
	}
	b.ByEvent[5] = 1

	a.Add(b)
	if a.Transactions != 11 || a.Reads != 6 || a.Writes != 3 || a.AddrOnly != 2 {
		t.Errorf("after Add: %+v", a)
	}
	if a.Interventions != 2 || a.Updates != 2 || a.Aborts != 3 {
		t.Errorf("after Add: %+v", a)
	}
	if a.BytesTransferred != 116 || a.BusyNanos != 1050 {
		t.Errorf("after Add: %+v", a)
	}
	if a.ByEvent[0] != 4 || a.ByEvent[5] != 7 {
		t.Errorf("ByEvent after Add: %v", a.ByEvent)
	}
}

// TestTxBytes: payload accounting per op.
func TestTxBytes(t *testing.T) {
	const lineSize = 32
	cases := []struct {
		tx   Transaction
		want int
	}{
		{Transaction{Op: core.BusRead}, lineSize},
		{Transaction{Op: core.BusWrite, Partial: &PartialWrite{}}, 4},
		{Transaction{Op: core.BusWrite}, lineSize},
		{Transaction{Op: core.BusAddrOnly}, 0},
	}
	for _, c := range cases {
		if got := txBytes(&c.tx, lineSize); got != c.want {
			t.Errorf("txBytes(%v) = %d, want %d", c.tx.Op, got, c.want)
		}
	}
}
