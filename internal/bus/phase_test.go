package bus

import (
	"runtime"
	"testing"

	"futurebus/internal/core"
	"futurebus/internal/obs"
)

// TestPhaseDecompositionRead: a memory-served read decomposes into one
// address cycle, the data beats and the memory first-word, and the
// parts sum back to the cost.
func TestPhaseDecompositionRead(t *testing.T) {
	mem := newFakeMemory(16)
	b := New(mem, Config{LineSize: 16})
	ti := b.Timing()

	res, err := b.Execute(&Transaction{MasterID: 0, Signals: core.SigCA, Op: core.BusRead, Addr: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Phases
	if p.Occupancy() != res.Cost {
		t.Errorf("phases sum to %d, cost is %d (%+v)", p.Occupancy(), res.Cost, p)
	}
	if p.Addr != ti.AddressCycleCost() {
		t.Errorf("addr phase = %d, want %d", p.Addr, ti.AddressCycleCost())
	}
	words := int64(16 / ti.WordBytes)
	if p.Data != words*ti.DataPerWord {
		t.Errorf("data phase = %d, want %d", p.Data, words*ti.DataPerWord)
	}
	if p.Memory != ti.MemoryFirstWord || p.Intervention != 0 {
		t.Errorf("memory/intervention = %d/%d", p.Memory, p.Intervention)
	}
	if p.Retry != 0 || p.Arb != 0 {
		t.Errorf("retry/arb = %d/%d", p.Retry, p.Arb)
	}
}

// TestPhaseDecompositionIntervention: a DI owner shifts the first-word
// latency from the memory phase to the intervention phase.
func TestPhaseDecompositionIntervention(t *testing.T) {
	b := New(newFakeMemory(16), Config{LineSize: 16})
	b.Attach(&fakeSnooper{id: 1, resp: respond("O,CH,DI", lineOf(16, 0xBEEF))})

	res, err := b.Execute(&Transaction{MasterID: 0, Signals: core.SigCA, Op: core.BusRead, Addr: 7})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Phases
	if p.Intervention != b.Timing().InterventionFirstWord || p.Memory != 0 {
		t.Errorf("intervention/memory = %d/%d", p.Intervention, p.Memory)
	}
	if p.Occupancy() != res.Cost {
		t.Errorf("phases sum to %d, cost is %d", p.Occupancy(), res.Cost)
	}
}

// TestPhaseDecompositionRetry: a BS abort charges the aborted address
// cycle to the retry phase, and the tx event carries the breakdown.
func TestPhaseDecompositionRetry(t *testing.T) {
	var events []obs.Event
	rec := obs.New(obs.SinkFunc(func(e *obs.Event) {
		if e.Kind == obs.KindTx {
			events = append(events, *e)
		}
	}))
	mem := newFakeMemory(16)
	b := New(mem, Config{LineSize: 16, Obs: rec})
	owner := &abortingSnooper{fakeSnooper: fakeSnooper{id: 1}, data: lineOf(16, 0xCAFE)}
	b.Attach(owner)

	res, err := b.Execute(&Transaction{MasterID: 0, Signals: core.SigCA, Op: core.BusRead, Addr: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	p := res.Phases
	if p.Retry != b.Timing().AddressCycleCost() {
		t.Errorf("retry phase = %d, want one address cycle (%d)", p.Retry, b.Timing().AddressCycleCost())
	}
	if p.Occupancy() != res.Cost {
		t.Errorf("phases sum to %d, cost is %d", p.Occupancy(), res.Cost)
	}
	// Two tx events drained: the nested recovery push, then the retried
	// master transaction with the retry overhead attributed.
	if len(events) != 2 {
		t.Fatalf("tx events = %d", len(events))
	}
	last := events[len(events)-1]
	if last.RetryNS != p.Retry || last.AddrNS != p.Addr || last.MemNS != p.Memory {
		t.Errorf("event phases %+v != result phases %+v", last, p)
	}
	if last.AddrNS+last.DataNS+last.IntvNS+last.MemNS+last.RetryNS != last.Dur {
		t.Errorf("event phases do not sum to Dur: %+v", last)
	}
}

// TestArbitrationWait: a master that contends for a held bus while the
// holder's transaction advances the occupancy clock sees exactly that
// advance as its arbitration-wait phase. Deterministic: the contender
// is provably queued (pending ticket) before the holder runs its
// transaction, and its wait-start clock was read before it took the
// ticket.
func TestArbitrationWait(t *testing.T) {
	var spans []obs.Event
	rec := obs.New(obs.SinkFunc(func(e *obs.Event) {
		if e.Kind == obs.KindTx {
			spans = append(spans, *e)
		}
	}))
	b := New(newFakeMemory(16), Config{LineSize: 16, Obs: rec})

	b.Acquire(5, -1) // hold the bus before the contender arrives
	done := make(chan Result, 1)
	go func() {
		res, err := b.Execute(&Transaction{MasterID: 1, Signals: core.SigCA, Op: core.BusRead, Addr: 3})
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	for b.arb.mu.pending() < 2 {
		runtime.Gosched()
	}

	held, err := b.ExecuteHeld(&Transaction{MasterID: 0, Signals: core.SigCA, Op: core.BusRead, Addr: 5})
	if err != nil {
		t.Fatal(err)
	}
	if held.Phases.Arb != 0 {
		t.Errorf("holder arb = %d, want 0", held.Phases.Arb)
	}
	b.Release(5)

	res := <-done
	if res.Phases.Arb != held.Cost {
		t.Errorf("contender arb = %d, want the holder's occupancy %d", res.Phases.Arb, held.Cost)
	}
	if res.Phases.Occupancy() != res.Cost {
		t.Errorf("phases sum to %d, cost is %d", res.Phases.Occupancy(), res.Cost)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[1].ArbNS != held.Cost {
		t.Errorf("events: want 2 with contender ArbNS=%d, got %+v", held.Cost, spans)
	}
	// A fresh mastership must not inherit the old wait.
	clean, err := b.Execute(&Transaction{MasterID: 0, Signals: core.SigCA, Op: core.BusRead, Addr: 9})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Phases.Arb != 0 {
		t.Errorf("uncontended arb = %d, want 0", clean.Phases.Arb)
	}
}

// TestDataPhasePartsMatchCost: the decomposition and the legacy total
// agree on every op shape.
func TestDataPhasePartsMatchCost(t *testing.T) {
	ti := DefaultTiming()
	cases := []struct {
		tx Transaction
		r  Result
	}{
		{Transaction{Op: core.BusRead}, Result{}},
		{Transaction{Op: core.BusRead}, Result{DI: true}},
		{Transaction{Op: core.BusWrite}, Result{}},
		{Transaction{Op: core.BusWrite, Signals: core.SigBC}, Result{DI: true}},
		{Transaction{Op: core.BusWrite, Partial: &PartialWrite{}}, Result{DI: true}},
		{Transaction{Op: core.BusAddrOnly}, Result{}},
	}
	for i, c := range cases {
		beats, firstWord, _ := ti.DataPhaseParts(&c.tx, &c.r, 32)
		if got := ti.DataPhaseCost(&c.tx, &c.r, 32); beats+firstWord != got {
			t.Errorf("case %d: parts %d+%d != cost %d", i, beats, firstWord, got)
		}
	}
}
