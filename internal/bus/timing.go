package bus

import "futurebus/internal/core"

// Timing is the transaction cost model, in nanoseconds. The absolute
// values are representative of the paper's era (1986 backplane, DRAM
// main memory, SRAM cache arrays); the experiments depend only on their
// ratios. §5.2 notes the preferred protocol choice is sensitive to
// exactly these relative costs, which is why they are configurable.
type Timing struct {
	// AddressCycle is the broadcast address handshake: master drives
	// the address and AS*, all units acknowledge (AK*), and the cycle
	// completes when the wired-OR AI* rises (§2.1–2.2).
	AddressCycle int64
	// WiredORPenalty is the asymmetric inertial-delay filter cost that
	// makes broadcast handshaking 25 ns slower than single-slave
	// transactions (§2.2). Charged on every address cycle (addresses
	// are always broadcast) and again on multi-party data phases.
	WiredORPenalty int64
	// DataPerWord is the per-word transfer cost of the data phase
	// between two parties.
	DataPerWord int64
	// MemoryFirstWord is the first-word access latency of main memory.
	MemoryFirstWord int64
	// InterventionFirstWord is the first-word latency when an owning
	// cache intervenes (DI) — a cache array is faster than DRAM.
	InterventionFirstWord int64
	// WordBytes is the bus width in bytes.
	WordBytes int
}

// DefaultTiming returns the cost model used by the experiments.
func DefaultTiming() Timing {
	return Timing{
		AddressCycle:          100,
		WiredORPenalty:        25,
		DataPerWord:           40,
		MemoryFirstWord:       200,
		InterventionFirstWord: 120,
		WordBytes:             4,
	}
}

// AddressCycleCost is the cost of one broadcast address cycle. Every
// Futurebus address cycle is broadcast, so the wired-OR penalty always
// applies (§2.3a).
func (t Timing) AddressCycleCost() int64 {
	return t.AddressCycle + t.WiredORPenalty
}

// DataPhaseCost is the cost of the data phase of a completed
// transaction: the transfer beats plus the responder's first-word
// latency. See DataPhaseParts for the decomposition.
func (t Timing) DataPhaseCost(tx *Transaction, r *Result, lineSize int) int64 {
	beats, firstWord, _ := t.DataPhaseParts(tx, r, lineSize)
	return beats + firstWord
}

// DataPhaseParts decomposes the data-phase cost of a completed
// transaction into the transfer beats (per-word cycles, plus the
// wired-OR penalty on multi-party data cycles) and the responder's
// first-word latency; fromOwner reports whether that latency was paid
// by an intervening cache (DI) rather than main memory. The sum of the
// parts is exactly DataPhaseCost.
func (t Timing) DataPhaseParts(tx *Transaction, r *Result, lineSize int) (beats, firstWord int64, fromOwner bool) {
	if tx.Op == core.BusAddrOnly {
		return 0, 0, false
	}
	words := int64((lineSize + t.WordBytes - 1) / t.WordBytes)
	if tx.Partial != nil {
		words = 1
	}
	beats = words * t.DataPerWord
	switch tx.Op {
	case core.BusRead:
		fromOwner = r.DI
	case core.BusWrite:
		// Writes complete when the slowest participant accepts; memory
		// participates unless preempted by DI.
		fromOwner = r.DI && !tx.Signals.Has(core.SigBC)
	}
	if fromOwner {
		firstWord = t.InterventionFirstWord
	} else {
		firstWord = t.MemoryFirstWord
	}
	// Multi-party transfers (broadcast writes, connected SL slaves)
	// pay the wired-OR handshake on data cycles too (§2.3b: only
	// participating units monitor data cycles, so two-party transfers
	// run at full speed).
	if tx.Signals.Has(core.SigBC) {
		beats += t.WiredORPenalty * words
	}
	return beats, firstWord, fromOwner
}
