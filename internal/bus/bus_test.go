package bus

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"futurebus/internal/core"
)

// fakeMemory is a minimal MemoryPort for bus-level tests.
type fakeMemory struct {
	lineSize int
	lines    map[Addr][]byte
	reads    int
	writes   int
}

func newFakeMemory(lineSize int) *fakeMemory {
	return &fakeMemory{lineSize: lineSize, lines: map[Addr][]byte{}}
}

func (m *fakeMemory) ReadLine(addr Addr) []byte {
	m.reads++
	if l, ok := m.lines[addr]; ok {
		return append([]byte(nil), l...)
	}
	return make([]byte, m.lineSize)
}

func (m *fakeMemory) WriteLine(addr Addr, data []byte) {
	m.writes++
	m.lines[addr] = append([]byte(nil), data...)
}

// fakeSnooper scripts one snooper's responses and records the bus's
// calls against the Query→Commit/Cancel contract.
type fakeSnooper struct {
	id      int
	resp    func(tx *Transaction) SnoopResponse
	locked  bool
	commits []struct {
		otherCH bool
		action  core.SnoopAction
	}
	cancels int
}

func (f *fakeSnooper) SnooperID() int { return f.id }

func (f *fakeSnooper) Query(tx *Transaction) SnoopResponse {
	if f.locked {
		panic("Query while already locked")
	}
	f.locked = true
	if f.resp == nil {
		return SnoopResponse{}
	}
	return f.resp(tx)
}

func (f *fakeSnooper) Commit(tx *Transaction, resp SnoopResponse, otherCH bool) {
	if !f.locked {
		panic("Commit without Query")
	}
	f.locked = false
	f.commits = append(f.commits, struct {
		otherCH bool
		action  core.SnoopAction
	}{otherCH, resp.Action})
}

func (f *fakeSnooper) Cancel(tx *Transaction, resp SnoopResponse) {
	if !f.locked {
		panic("Cancel without Query")
	}
	f.locked = false
	f.cancels++
}

// respond builds a static response function.
func respond(action string, line []byte) func(*Transaction) SnoopResponse {
	a, err := core.ParseSnoopAction(action)
	if err != nil {
		panic(err)
	}
	return func(*Transaction) SnoopResponse {
		return SnoopResponse{Action: a, Line: line, Hit: true}
	}
}

func lineOf(lineSize int, first uint32) []byte {
	l := make([]byte, lineSize)
	binary.LittleEndian.PutUint32(l, first)
	return l
}

// TestReadFromMemory: no DI — memory supplies, SL reflects its
// participation.
func TestReadFromMemory(t *testing.T) {
	mem := newFakeMemory(16)
	mem.WriteLine(1, lineOf(16, 0x1234))
	mem.writes = 0
	b := New(mem, Config{LineSize: 16})
	s := &fakeSnooper{id: 1}
	b.Attach(s)

	res, err := b.Execute(&Transaction{MasterID: 0, Signals: core.SigCA, Op: core.BusRead, Addr: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DI || res.CH {
		t.Errorf("unexpected responses: %+v", res)
	}
	if !res.SL {
		t.Error("memory did not connect")
	}
	if binary.LittleEndian.Uint32(res.Data) != 0x1234 {
		t.Errorf("data = %x", res.Data)
	}
	if mem.reads != 1 {
		t.Errorf("memory reads = %d", mem.reads)
	}
}

// TestInterventionPreemptsMemory: a DI owner supplies the data; memory
// is not read (§3.2.2: DI "will preempt a response from memory").
func TestInterventionPreemptsMemory(t *testing.T) {
	mem := newFakeMemory(16)
	b := New(mem, Config{LineSize: 16})
	owner := &fakeSnooper{id: 1, resp: respond("O,CH,DI", lineOf(16, 0xBEEF))}
	b.Attach(owner)

	res, err := b.Execute(&Transaction{MasterID: 0, Signals: core.SigCA, Op: core.BusRead, Addr: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DI || !res.CH {
		t.Errorf("responses: %+v", res)
	}
	if binary.LittleEndian.Uint32(res.Data) != 0xBEEF {
		t.Errorf("data = %x (memory supplied?)", res.Data)
	}
	if mem.reads != 0 {
		t.Error("memory was read despite intervention")
	}
	if b.Stats().Interventions != 1 {
		t.Errorf("interventions = %d", b.Stats().Interventions)
	}
}

// TestDuplicateOwnersRejected: two DI assertions mean two owners — the
// bus reports the broken system instead of picking one.
func TestDuplicateOwnersRejected(t *testing.T) {
	mem := newFakeMemory(16)
	b := New(mem, Config{LineSize: 16})
	b.Attach(&fakeSnooper{id: 1, resp: respond("O,CH,DI", lineOf(16, 1))})
	b.Attach(&fakeSnooper{id: 2, resp: respond("O,CH,DI", lineOf(16, 2))})

	_, err := b.Execute(&Transaction{MasterID: 0, Signals: core.SigCA, Op: core.BusRead, Addr: 7})
	if err == nil || !strings.Contains(err.Error(), "duplicate owners") {
		t.Fatalf("err = %v", err)
	}
}

// TestNonBroadcastWriteCapturedByOwner: column 9 — the owner captures,
// memory is preempted.
func TestNonBroadcastWriteCapturedByOwner(t *testing.T) {
	mem := newFakeMemory(16)
	b := New(mem, Config{LineSize: 16})
	owner := &fakeSnooper{id: 1, resp: respond("M,CH?,DI", nil)}
	b.Attach(owner)

	_, err := b.Execute(&Transaction{
		MasterID: 0, Signals: core.SigIM, Op: core.BusWrite, Addr: 3,
		Partial: &PartialWrite{Word: 1, Val: 0xAA},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mem.writes != 0 {
		t.Error("memory updated despite DI capture")
	}
}

// TestBroadcastWriteReachesMemoryAndSlaves: column 10 — memory merges
// the word and SL slaves connect even with an owner present.
func TestBroadcastWriteReachesMemoryAndSlaves(t *testing.T) {
	mem := newFakeMemory(16)
	mem.WriteLine(3, lineOf(16, 0x11))
	mem.writes = 0
	b := New(mem, Config{LineSize: 16})
	sharer := &fakeSnooper{id: 1, resp: respond("S,CH,SL", nil)}
	b.Attach(sharer)

	res, err := b.Execute(&Transaction{
		MasterID: 0, Signals: core.SigIM | core.SigBC, Op: core.BusWrite, Addr: 3,
		Partial: &PartialWrite{Word: 1, Val: 0xAB},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.SL {
		t.Error("no SL")
	}
	if mem.writes != 1 {
		t.Errorf("memory writes = %d", mem.writes)
	}
	got := mem.lines[3]
	if binary.LittleEndian.Uint32(got) != 0x11 || binary.LittleEndian.Uint32(got[4:]) != 0xAB {
		t.Errorf("memory merged wrong: %x", got)
	}
	if b.Stats().Updates != 1 {
		t.Errorf("updates = %d", b.Stats().Updates)
	}
}

// TestFullLineWriteBack: a push stores the whole line in memory.
func TestFullLineWriteBack(t *testing.T) {
	mem := newFakeMemory(16)
	b := New(mem, Config{LineSize: 16})
	data := lineOf(16, 0xF00D)
	if _, err := b.Execute(&Transaction{MasterID: 0, Op: core.BusWrite, Addr: 9, Data: data}); err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint32(mem.lines[9]) != 0xF00D {
		t.Errorf("memory = %x", mem.lines[9])
	}
}

// TestOtherCHExcludesSelf: each snooper's otherCH is the OR over the
// OTHER units — the listening-owner mechanism of §3.2.2.
func TestOtherCHExcludesSelf(t *testing.T) {
	mem := newFakeMemory(16)
	b := New(mem, Config{LineSize: 16})
	// Snooper 1 asserts CH; snooper 2 does not.
	s1 := &fakeSnooper{id: 1, resp: respond("S,CH", nil)}
	s2 := &fakeSnooper{id: 2, resp: respond("CH:O/M,DI", lineOf(16, 5))}
	b.Attach(s1)
	b.Attach(s2)

	res, err := b.Execute(&Transaction{MasterID: 0, Op: core.BusRead, Addr: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CH {
		t.Error("master did not observe CH")
	}
	// s1 asserted the only CH: its own view must be false; s2's true.
	if s1.commits[0].otherCH {
		t.Error("s1 observed its own CH")
	}
	if !s2.commits[0].otherCH {
		t.Error("s2 missed s1's CH")
	}
}

// TestMasterExcludedFromSnoop: the master's own snooper is not queried.
func TestMasterExcludedFromSnoop(t *testing.T) {
	mem := newFakeMemory(16)
	b := New(mem, Config{LineSize: 16})
	self := &fakeSnooper{id: 0, resp: respond("O,CH,DI", lineOf(16, 1))}
	b.Attach(self)
	res, err := b.Execute(&Transaction{MasterID: 0, Op: core.BusRead, Addr: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.CH || res.DI {
		t.Error("master snooped itself")
	}
	if len(self.commits) != 0 {
		t.Error("master's snooper was committed")
	}
}

// abortingSnooper asserts BS once, pushes during recovery, then
// responds normally.
type abortingSnooper struct {
	fakeSnooper
	pushed bool
	data   []byte
}

func (a *abortingSnooper) Query(tx *Transaction) SnoopResponse {
	if a.locked {
		panic("Query while locked")
	}
	a.locked = true
	if !a.pushed {
		act, _ := core.ParseSnoopAction("BS;S,CA,W")
		return SnoopResponse{Action: act, State: core.Modified, Hit: true}
	}
	act, _ := core.ParseSnoopAction("S,CH")
	return SnoopResponse{Action: act, State: core.Shared, Hit: true}
}

func (a *abortingSnooper) Recover(b *Bus, aborted *Transaction, resp SnoopResponse) error {
	a.pushed = true
	_, err := b.ExecuteHeld(&Transaction{
		MasterID: a.id, Signals: resp.Action.Abort.Assert,
		Op: core.BusWrite, Addr: aborted.Addr, Data: a.data,
	})
	return err
}

// TestAbortPushRetry: the BS flow of §4.3–4.5 — abort, recovery push
// updates memory, retry succeeds and now reads the pushed data from
// memory.
func TestAbortPushRetry(t *testing.T) {
	mem := newFakeMemory(16)
	b := New(mem, Config{LineSize: 16})
	owner := &abortingSnooper{fakeSnooper: fakeSnooper{id: 1}, data: lineOf(16, 0xCAFE)}
	bystander := &fakeSnooper{id: 2}
	b.Attach(owner)
	b.Attach(bystander)

	res, err := b.Execute(&Transaction{MasterID: 0, Signals: core.SigCA, Op: core.BusRead, Addr: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 1 {
		t.Errorf("retries = %d", res.Retries)
	}
	if binary.LittleEndian.Uint32(res.Data) != 0xCAFE {
		t.Errorf("retried read got %x", res.Data)
	}
	if mem.writes != 1 {
		t.Errorf("memory writes = %d (push missing?)", mem.writes)
	}
	if b.Stats().Aborts != 1 {
		t.Errorf("aborts = %d", b.Stats().Aborts)
	}
	// The bystander was cancelled once (aborted attempt), then
	// committed twice: once for the recovery push, once for the retry.
	if bystander.cancels != 1 {
		t.Errorf("bystander cancels = %d", bystander.cancels)
	}
	if len(bystander.commits) != 2 {
		t.Errorf("bystander commits = %d", len(bystander.commits))
	}
	// Cost accumulated across attempts: three address cycles (abort,
	// push, retry) plus two data phases.
	if res.Cost <= b.Timing().AddressCycleCost()*3 {
		t.Errorf("cost %d does not include retries", res.Cost)
	}
}

// foreverBusy aborts every attempt without making progress.
type foreverBusy struct{ fakeSnooper }

func (f *foreverBusy) Query(tx *Transaction) SnoopResponse {
	f.locked = true
	act, _ := core.ParseSnoopAction("BS;S,CA,W")
	return SnoopResponse{Action: act, Hit: true}
}

func (f *foreverBusy) Recover(b *Bus, aborted *Transaction, resp SnoopResponse) error {
	return nil // never actually pushes
}

// TestTooManyRetries: a livelocking BS asserter is detected.
func TestTooManyRetries(t *testing.T) {
	b := New(newFakeMemory(16), Config{LineSize: 16})
	b.Attach(&foreverBusy{fakeSnooper{id: 1}})
	_, err := b.Execute(&Transaction{MasterID: 0, Op: core.BusRead, Addr: 1})
	if !errors.Is(err, ErrTooManyRetries) {
		t.Fatalf("err = %v", err)
	}
}

// TestTransactionValidation: the §5.1 standard-line-size rule and
// signal hygiene are enforced.
func TestTransactionValidation(t *testing.T) {
	b := New(newFakeMemory(32), Config{LineSize: 32})
	cases := []*Transaction{
		{MasterID: 0, Op: core.BusWrite, Addr: 1, Data: make([]byte, 16)},                           // wrong size
		{MasterID: 0, Op: core.BusRead, Addr: 1, Data: make([]byte, 32)},                            // read with data
		{MasterID: 0, Op: core.BusAddrOnly, Addr: 1, Partial: &PartialWrite{}},                      // addr-only with data
		{MasterID: 0, Op: core.BusWrite, Addr: 1, Data: make([]byte, 32), Partial: &PartialWrite{}}, // both payloads
		{MasterID: 0, Op: core.BusWrite, Addr: 1, Partial: &PartialWrite{Word: 8}},                  // word out of line
		{MasterID: 0, Op: core.BusRead, Addr: 1, Signals: core.SigCH},                               // response signal from master
		{MasterID: 0, Op: core.BusReadThenWrite, Addr: 1},                                           // composite op
	}
	for i, tx := range cases {
		if _, err := b.Execute(tx); err == nil {
			t.Errorf("case %d accepted: %s", i, tx)
		}
	}
}

// TestDuplicateSnooperPanics: two boards with one id is a wiring error.
func TestDuplicateSnooperPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate id accepted")
		}
	}()
	b := New(newFakeMemory(16), Config{LineSize: 16})
	b.Attach(&fakeSnooper{id: 1})
	b.Attach(&fakeSnooper{id: 1})
}

// TestTraceHook: the observer sees every completed transaction.
func TestTraceHook(t *testing.T) {
	b := New(newFakeMemory(16), Config{LineSize: 16})
	var seen int
	b.SetTrace(func(tx *Transaction, r *Result) { seen++ })
	for i := 0; i < 3; i++ {
		if _, err := b.Execute(&Transaction{MasterID: 0, Op: core.BusRead, Addr: Addr(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if seen != 3 {
		t.Errorf("trace saw %d transactions", seen)
	}
}

// TestEventClassification: transactions report their Table 2 column.
func TestEventClassification(t *testing.T) {
	tx := &Transaction{Signals: core.SigCA | core.SigIM}
	if tx.Event() != core.BusCacheRFO {
		t.Errorf("event = %v", tx.Event())
	}
}
