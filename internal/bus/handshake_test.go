package bus

import (
	"strings"
	"testing"
	"testing/quick"

	"futurebus/internal/core"
)

// TestParallelProtocolSequence is experiment F2: the event ordering of
// Figure 2 — address before AS*, AK* falls with the first slave, AI*
// rises only after the last slave plus the filter, and only then may
// the master remove the address.
func TestParallelProtocolSequence(t *testing.T) {
	tr := SimulateBroadcastHandshake(DefaultHandshakeConfig())

	idx := func(line string, kind EdgeKind) int {
		for i, e := range tr.Events {
			if e.Line == line && e.Kind == kind {
				return i
			}
		}
		t.Fatalf("no %s %s event", line, kind)
		return -1
	}
	addrOn := idx("ADDR", EdgeAssert)
	asOn := idx("AS*", EdgeAssert)
	akOn := idx("AK*", EdgeAssert)
	aiHigh := idx("AI*", EdgeHigh)
	addrOff := idx("ADDR", EdgeHigh)

	if !(addrOn < asOn && asOn < akOn && akOn < aiHigh && aiHigh <= addrOff) {
		t.Fatalf("protocol order violated: %v", tr.Events)
	}
	if tr.Events[addrOff].Time < tr.Events[aiHigh].Time {
		t.Error("master removed the address before AI* rose")
	}
}

// TestBroadcastHandshakeOrdering is experiment F1: wired-OR timing —
// the cycle completes at the SLOWEST slave's release plus the glitch
// filter, and AK* falls at the FASTEST slave's ack.
func TestBroadcastHandshakeOrdering(t *testing.T) {
	cfg := HandshakeConfig{
		AddressSetup: 10,
		GlitchFilter: 25,
		Slaves: []SlaveTiming{
			{AckDelay: 9, ProcessTime: 30},
			{AckDelay: 2, ProcessTime: 120}, // slowest board
			{AckDelay: 5, ProcessTime: 55},
		},
	}
	tr := SimulateBroadcastHandshake(cfg)
	if want := int64(10 + 2); tr.FirstAck != want {
		t.Errorf("AK* fell at %d, want %d (fastest ack)", tr.FirstAck, want)
	}
	if want := int64(10 + 120); tr.LastRelease != want {
		t.Errorf("last AI* release at %d, want %d (slowest board)", tr.LastRelease, want)
	}
	if want := tr.LastRelease + 25; tr.Complete != want {
		t.Errorf("cycle complete at %d, want %d (+glitch filter)", tr.Complete, want)
	}
}

// TestHandshakePenaltyProperty: for any board mix, completion time is
// exactly max(process) + setup + filter — "no matter how new or old,
// fast or slow, a particular board may be" (§2.2), the slowest sets the
// pace and nobody is left behind.
func TestHandshakePenaltyProperty(t *testing.T) {
	f := func(procTimes []uint8) bool {
		if len(procTimes) == 0 {
			return true
		}
		cfg := HandshakeConfig{AddressSetup: 10, GlitchFilter: 25}
		var slowest int64
		for i, p := range procTimes {
			pt := int64(p) + 1
			cfg.Slaves = append(cfg.Slaves, SlaveTiming{AckDelay: int64(i%7) + 1, ProcessTime: pt})
			if pt > slowest {
				slowest = pt
			}
		}
		tr := SimulateBroadcastHandshake(cfg)
		return tr.Complete == 10+slowest+25
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestHandshakeEventsSorted: the trace is time-ordered.
func TestHandshakeEventsSorted(t *testing.T) {
	tr := SimulateBroadcastHandshake(DefaultHandshakeConfig())
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Time < tr.Events[i-1].Time {
			t.Fatalf("events out of order at %d: %v", i, tr.Events)
		}
	}
}

// TestHandshakeRender: the human-readable trace mentions the filter.
func TestHandshakeRender(t *testing.T) {
	out := SimulateBroadcastHandshake(DefaultHandshakeConfig()).Render()
	for _, want := range []string{"AS*", "AK*", "AI*", "wired-OR filter"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace lacks %q:\n%s", want, out)
		}
	}
}

// TestHandshakeDrivenTiming: with Config.Handshake set, every address
// cycle costs exactly the simulated handshake completion time — adding
// a slow board to the bus slows every transaction for everyone (§2.2).
func TestHandshakeDrivenTiming(t *testing.T) {
	run := func(slowest int64) int64 {
		cfg := DefaultHandshakeConfig()
		cfg.Slaves = append(cfg.Slaves, SlaveTiming{AckDelay: 5, ProcessTime: slowest})
		mem := newFakeMemory(16)
		b := New(mem, Config{LineSize: 16, Handshake: &cfg})
		res, err := b.Execute(&Transaction{MasterID: 0, Signals: core.SigCA | core.SigIM, Op: core.BusAddrOnly, Addr: 1})
		if err != nil {
			t.Fatal(err)
		}
		wantAddr := SimulateBroadcastHandshake(cfg).Complete
		if res.Cost != wantAddr {
			t.Fatalf("address-only cost %d, simulated handshake %d", res.Cost, wantAddr)
		}
		return res.Cost
	}
	fast := run(90)
	slow := run(400)
	if slow-fast != 310 {
		t.Errorf("slow board added %dns per cycle, want 310", slow-fast)
	}
}
