package bus

import (
	"runtime"
	"testing"

	"futurebus/internal/core"
)

// TestAddressCycleIncludesBroadcastPenalty: every Futurebus address
// cycle is broadcast (§2.3a), so the 25 ns wired-OR penalty always
// applies.
func TestAddressCycleIncludesBroadcastPenalty(t *testing.T) {
	tm := DefaultTiming()
	if got := tm.AddressCycleCost(); got != tm.AddressCycle+tm.WiredORPenalty {
		t.Errorf("address cycle cost = %d", got)
	}
}

// TestDataPhaseCosts pins the relative costs the protocol preferences
// depend on (§5.2): intervention beats memory, broadcast pays the
// wired-OR penalty per word, partial writes move one word.
func TestDataPhaseCosts(t *testing.T) {
	tm := DefaultTiming()
	const lineSize = 32
	words := int64(lineSize / tm.WordBytes)

	memRead := tm.DataPhaseCost(&Transaction{Op: core.BusRead}, &Result{}, lineSize)
	diRead := tm.DataPhaseCost(&Transaction{Op: core.BusRead}, &Result{DI: true}, lineSize)
	if memRead != tm.MemoryFirstWord+words*tm.DataPerWord {
		t.Errorf("memory read cost = %d", memRead)
	}
	if diRead >= memRead {
		t.Errorf("intervention (%d) not faster than memory (%d)", diRead, memRead)
	}

	addrOnly := tm.DataPhaseCost(&Transaction{Op: core.BusAddrOnly}, &Result{}, lineSize)
	if addrOnly != 0 {
		t.Errorf("address-only data cost = %d", addrOnly)
	}

	partial := tm.DataPhaseCost(&Transaction{
		Op: core.BusWrite, Signals: core.SigIM,
		Partial: &PartialWrite{},
	}, &Result{}, lineSize)
	full := tm.DataPhaseCost(&Transaction{Op: core.BusWrite, Data: make([]byte, lineSize)}, &Result{}, lineSize)
	if partial >= full {
		t.Errorf("partial write (%d) not cheaper than full line (%d)", partial, full)
	}

	bc := tm.DataPhaseCost(&Transaction{
		Op: core.BusWrite, Signals: core.SigIM | core.SigBC,
		Partial: &PartialWrite{},
	}, &Result{SL: true}, lineSize)
	if bc != partial+tm.WiredORPenalty {
		t.Errorf("broadcast word cost = %d, want %d (+penalty)", bc, partial+tm.WiredORPenalty)
	}

	captured := tm.DataPhaseCost(&Transaction{
		Op: core.BusWrite, Signals: core.SigIM, Partial: &PartialWrite{},
	}, &Result{DI: true}, lineSize)
	if captured >= partial {
		t.Errorf("DI capture (%d) not faster than memory write (%d)", captured, partial)
	}
}

// TestStatsRecordAndAdd covers the counters the experiments report.
func TestStatsRecordAndAdd(t *testing.T) {
	var s Stats
	s.record(&Transaction{Op: core.BusRead, Signals: core.SigCA}, &Result{Cost: 100}, 32)
	s.record(&Transaction{Op: core.BusWrite, Signals: core.SigIM, Partial: &PartialWrite{}}, &Result{Cost: 50}, 32)
	s.record(&Transaction{Op: core.BusWrite, Data: make([]byte, 32)}, &Result{Cost: 70}, 32)
	s.record(&Transaction{Op: core.BusAddrOnly, Signals: core.SigCA | core.SigIM}, &Result{Cost: 10}, 32)

	if s.Transactions != 4 || s.Reads != 1 || s.Writes != 2 || s.AddrOnly != 1 {
		t.Errorf("counters: %+v", s)
	}
	if s.BytesTransferred != 32+4+32 {
		t.Errorf("bytes = %d", s.BytesTransferred)
	}
	if s.BusyNanos != 230 {
		t.Errorf("busy = %d", s.BusyNanos)
	}
	if s.ByEvent[core.BusCacheRead] != 1 || s.ByEvent[core.BusCacheRFO] != 1 {
		t.Errorf("by-event: %v", s.ByEvent)
	}

	var sum Stats
	sum.Add(s)
	sum.Add(s)
	if sum.Transactions != 8 || sum.BytesTransferred != 2*s.BytesTransferred {
		t.Errorf("Add: %+v", sum)
	}
	if got := s.String(); got == "" {
		t.Error("empty stats string")
	}
}

// TestFIFOMutexOrder: with no discipline installed the arbiter grants
// strictly in arrival order (the pre-Discipline ticket-lock contract).
func TestFIFOMutexOrder(t *testing.T) {
	var m arbMutex
	m.Lock(-1)
	order := make(chan int, 2)
	ready := make(chan struct{}, 2)
	go func() {
		ready <- struct{}{}
		m.Lock(1)
		order <- 1
		m.Unlock()
	}()
	<-ready
	// Wait until the first contender is parked with its ticket.
	for !waitersParked(&m, 1) {
		runtime.Gosched()
	}
	go func() {
		ready <- struct{}{}
		m.Lock(2)
		order <- 2
		m.Unlock()
	}()
	<-ready
	for !waitersParked(&m, 2) {
		runtime.Gosched()
	}
	m.Unlock()
	first, second := <-order, <-order
	if first != 1 || second != 2 {
		t.Errorf("grant order %d,%d", first, second)
	}
}

func waitersParked(m *arbMutex, n int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.waiters) >= n
}
