package bus

import (
	"fmt"
	"strings"

	"futurebus/internal/core"
)

// Stats accumulates per-bus counters. All fields are totals since the
// bus was created; they are updated under the bus arbiter, so a
// snapshot taken via Bus.Stats is consistent.
type Stats struct {
	// Transactions counts completed (non-aborted) transactions.
	Transactions int64
	// ByEvent counts completed transactions per Table 2 column.
	ByEvent [6]int64
	// Reads, Writes, AddrOnly split completed transactions by data
	// phase.
	Reads, Writes, AddrOnly int64
	// Interventions counts transactions where an owner preempted
	// memory (DI).
	Interventions int64
	// Updates counts snooper copies refreshed by connecting (SL) on a
	// write.
	Updates int64
	// Aborts counts BS aborts (each forces a recovery push + retry).
	Aborts int64
	// Nacks counts split-mode NACKs: a transaction found the pending
	// table full and paid a retry address cycle (the split-mode fold of
	// the BS abort).
	Nacks int64
	// DataTenures counts split-mode data tenures retired: deferred
	// responses that re-arbitrated and moved their beats.
	DataTenures int64
	// RetryExhausted counts transactions that aborted more times than
	// maxRetries allows and failed with ErrTooManyRetries — a wedged
	// protocol, surfaced as futurebus_retry_exhausted_total.
	RetryExhausted int64
	// BytesTransferred counts data-phase bytes.
	BytesTransferred int64
	// BusyNanos is total bus-occupied time under the Timing model,
	// including split-mode data tenures and NACK cycles.
	BusyNanos int64
}

func (s *Stats) record(tx *Transaction, r *Result, lineSize int) {
	s.Transactions++
	s.ByEvent[tx.Event()]++
	switch tx.Op {
	case core.BusRead:
		s.Reads++
	case core.BusWrite:
		s.Writes++
	case core.BusAddrOnly:
		s.AddrOnly++
	}
	s.BytesTransferred += int64(txBytes(tx, lineSize))
	s.BusyNanos += r.Cost
}

// txBytes is the data-phase payload size of a transaction: a read
// moves a line, a partial write one word, an address-only cycle
// nothing. Shared by Stats and the obs event emission.
func txBytes(tx *Transaction, lineSize int) int {
	switch tx.Op {
	case core.BusRead:
		return lineSize
	case core.BusWrite:
		if tx.Partial != nil {
			return 4
		}
		return lineSize
	}
	return 0
}

// opLetter abbreviates the data phase for event streams.
func opLetter(op core.BusOp) string {
	switch op {
	case core.BusRead:
		return "R"
	case core.BusWrite:
		return "W"
	default:
		return "A"
	}
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Transactions += other.Transactions
	for i := range s.ByEvent {
		s.ByEvent[i] += other.ByEvent[i]
	}
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.AddrOnly += other.AddrOnly
	s.Interventions += other.Interventions
	s.Updates += other.Updates
	s.Aborts += other.Aborts
	s.Nacks += other.Nacks
	s.DataTenures += other.DataTenures
	s.RetryExhausted += other.RetryExhausted
	s.BytesTransferred += other.BytesTransferred
	s.BusyNanos += other.BusyNanos
}

func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "transactions=%d (R=%d W=%d addr=%d)", s.Transactions, s.Reads, s.Writes, s.AddrOnly)
	fmt.Fprintf(&b, " interventions=%d updates=%d aborts=%d", s.Interventions, s.Updates, s.Aborts)
	if s.Nacks > 0 || s.DataTenures > 0 {
		fmt.Fprintf(&b, " nacks=%d dataTenures=%d", s.Nacks, s.DataTenures)
	}
	if s.RetryExhausted > 0 {
		fmt.Fprintf(&b, " retryExhausted=%d", s.RetryExhausted)
	}
	fmt.Fprintf(&b, " bytes=%d busy=%dns", s.BytesTransferred, s.BusyNanos)
	return b.String()
}
