package bus

import (
	"fmt"
	"sort"
)

// Waiter describes one queued bus requester as a Discipline sees it.
type Waiter struct {
	// Board is the requesting board's bus id. Internal bookkeeping
	// lockers (stats snapshots, drains) pass -1 and are ordered by
	// arrival like FCFS traffic.
	Board int
	// Ticket is the waiter's arrival order: the arbiter hands out
	// strictly increasing tickets, so comparing tickets compares
	// request times.
	Ticket int64
	// Skips counts grant rounds this waiter has already lost — the
	// aging input a bounded-latency discipline promotes on.
	Skips int
}

// Discipline is the arbiter's grant order, extracted from the grant
// machinery so the Futurebus's two §2 arbitration modes — the priority
// scheme (each board competes with its slot number) and the fairness
// mode (a granted board re-queues behind every current requester) —
// and synthetic disciplines (FCFS, bounded-latency) are interchangeable
// per shard.
//
// The arbiter grants the waiter with the smallest Key. Key is consulted
// once per waiter per grant round, under the arbiter's internal lock,
// so implementations may keep state but must not block.
type Discipline interface {
	// Name identifies the discipline in reports and sweeps.
	Name() string
	// Key orders the queue: smallest key is granted next. Ties are
	// impossible when the key embeds the ticket, which every shipped
	// discipline does.
	Key(w Waiter) int64
	// Granted informs the discipline of the winning board (negative for
	// internal lockers, which stateful disciplines should ignore).
	Granted(board int)
}

// DisciplineFactory builds one Discipline instance. A factory rather
// than an instance because stateful disciplines (round-robin) need a
// private instance per shard arbiter.
type DisciplineFactory func() Discipline

// prioShift packs (class, ticket) into one int64 key: class in the high
// bits, arrival ticket in the low 40. 2^40 tickets is far beyond any
// simulated run.
const prioShift = 40

// agedKey is the promotion offset a bounded-latency discipline applies:
// any promoted waiter outranks every unpromoted one, and promoted
// waiters drain among themselves in arrival order.
const agedKey = int64(1) << 50

// fcfs grants in strict arrival order — the pre-refactor ticket-lock
// behaviour and the default.
type fcfs struct{}

func (fcfs) Name() string       { return "fcfs" }
func (fcfs) Key(w Waiter) int64 { return w.Ticket }
func (fcfs) Granted(int)        {}

// priority models the Futurebus §2 competition-number arbitration: the
// lowest slot number wins every round, regardless of how long others
// have waited. Under sustained overload from a low-numbered board this
// starves the rest — which is exactly what the starvation tests
// demonstrate.
type priority struct{}

func (priority) Name() string { return "priority" }
func (priority) Key(w Waiter) int64 {
	b := w.Board
	if b < 0 {
		b = 0
	}
	return int64(b)<<prioShift | w.Ticket
}
func (priority) Granted(int) {}

// rr models the Futurebus fairness mode as round-robin: the board
// cyclically next after the last grant winner wins, so under any
// overload every requester is granted within one rotation of the
// board set.
type rr struct {
	last int
}

// rrRing bounds the cyclic distance; board ids are dense and small.
const rrRing = 1 << 20

func (*rr) Name() string { return "rr" }
func (d *rr) Key(w Waiter) int64 {
	b := w.Board
	if b < 0 {
		// Internal lockers take the slot right after the last winner so
		// they drain promptly without perturbing the rotation.
		b = d.last
	}
	dist := (b - d.last - 1) % rrRing
	if dist < 0 {
		dist += rrRing
	}
	return int64(dist)<<prioShift | w.Ticket
}
func (d *rr) Granted(board int) {
	if board >= 0 {
		d.last = board
	}
}

// bounded is priority arbitration with aging: a waiter that has lost
// Bound grant rounds is promoted ahead of all unpromoted traffic and
// drains FIFO among the promoted. Any request is therefore granted
// within Bound + (queued promoted waiters) rounds — a provable latency
// bound on top of a QoS class order.
type bounded struct {
	Bound int
}

// DefaultAgingBound is the skip count at which the bounded-latency
// discipline promotes a waiter.
const DefaultAgingBound = 4

func (d *bounded) Name() string { return fmt.Sprintf("bounded(%d)", d.Bound) }
func (d *bounded) Key(w Waiter) int64 {
	if w.Skips >= d.Bound {
		return w.Ticket - agedKey
	}
	return priority{}.Key(w)
}
func (*bounded) Granted(int) {}

// disciplines is the registry behind NewDiscipline.
var disciplines = map[string]DisciplineFactory{
	"fcfs":     func() Discipline { return fcfs{} },
	"priority": func() Discipline { return priority{} },
	"rr":       func() Discipline { return &rr{last: -1} },
	"bounded":  func() Discipline { return &bounded{Bound: DefaultAgingBound} },
}

// NewDiscipline resolves a discipline name ("fcfs", "rr", "priority",
// "bounded") to its factory. The empty name means fcfs.
func NewDiscipline(name string) (DisciplineFactory, error) {
	if name == "" {
		name = "fcfs"
	}
	f, ok := disciplines[name]
	if !ok {
		return nil, fmt.Errorf("bus: unknown arbitration discipline %q (have %v)", name, DisciplineNames())
	}
	return f, nil
}

// DisciplineNames lists the registered disciplines, sorted.
func DisciplineNames() []string {
	names := make([]string, 0, len(disciplines))
	for n := range disciplines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
