package bus

import (
	"strings"
	"testing"

	"futurebus/internal/core"
)

// TestParanoidAcceptsClassActions: legal responses pass unmolested.
func TestParanoidAcceptsClassActions(t *testing.T) {
	mem := newFakeMemory(16)
	b := New(mem, Config{LineSize: 16, Paranoid: true})
	owner := &fakeSnooper{id: 1, resp: func(tx *Transaction) SnoopResponse {
		a, _ := core.ParseSnoopAction("O,CH,DI")
		return SnoopResponse{Action: a, Line: lineOf(16, 1), State: core.Modified, Hit: true}
	}}
	b.Attach(owner)
	if _, err := b.Execute(&Transaction{MasterID: 0, Signals: core.SigCA, Op: core.BusRead, Addr: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestParanoidRejectsOutOfClass: an illegal response fails the
// transaction immediately, with directories released (the snooper is
// Cancelled, not left locked).
func TestParanoidRejectsOutOfClass(t *testing.T) {
	mem := newFakeMemory(16)
	b := New(mem, Config{LineSize: 16, Paranoid: true})
	evil := &fakeSnooper{id: 1, resp: func(tx *Transaction) SnoopResponse {
		// Keeping an S copy across a column 6 invalidate is the classic
		// protocol bug.
		a, _ := core.ParseSnoopAction("S,CH")
		return SnoopResponse{Action: a, State: core.Shared, Hit: true}
	}}
	b.Attach(evil)
	_, err := b.Execute(&Transaction{MasterID: 0, Signals: core.SigCA | core.SigIM, Op: core.BusAddrOnly, Addr: 1})
	if err == nil || !strings.Contains(err.Error(), "out-of-class") {
		t.Fatalf("err = %v", err)
	}
	if evil.cancels != 1 {
		t.Errorf("snooper not cancelled: %d", evil.cancels)
	}
	if evil.locked {
		t.Error("snooper left locked")
	}
	// The bus remains usable afterwards... with the evil snooper gone
	// silent.
	evil.resp = nil
	if _, err := b.Execute(&Transaction{MasterID: 0, Op: core.BusRead, Addr: 2}); err != nil {
		t.Fatalf("bus wedged after paranoid failure: %v", err)
	}
}

// TestParanoidAllowsBS: the BS extension is in the extended class, not
// rejected.
func TestParanoidAllowsBS(t *testing.T) {
	mem := newFakeMemory(16)
	b := New(mem, Config{LineSize: 16, Paranoid: true})
	owner := &abortingSnooper{fakeSnooper: fakeSnooper{id: 1}, data: lineOf(16, 9)}
	b.Attach(owner)
	res, err := b.Execute(&Transaction{MasterID: 0, Signals: core.SigCA, Op: core.BusRead, Addr: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 1 {
		t.Errorf("retries = %d", res.Retries)
	}
}

// TestParanoidSkipsCleanCommands: CmdClean responses are a documented
// extension outside the printed class.
func TestParanoidSkipsCleanCommands(t *testing.T) {
	mem := newFakeMemory(16)
	b := New(mem, Config{LineSize: 16, Paranoid: true})
	holder := &fakeSnooper{id: 1, resp: func(tx *Transaction) SnoopResponse {
		a, _ := core.ParseSnoopAction("S,CH")
		return SnoopResponse{Action: a, State: core.Shared, Hit: true}
	}}
	b.Attach(holder)
	if _, err := b.Execute(&Transaction{MasterID: 0, Cmd: CmdClean, Op: core.BusAddrOnly, Addr: 1}); err != nil {
		t.Fatal(err)
	}
}
