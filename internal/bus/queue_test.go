package bus

import (
	"runtime"
	"sync"
	"testing"
)

// ArbQueueDepth exposes the arbiter's live ticket occupancy — the
// current master plus queued contenders — for the telemetry gauges.
func TestArbQueueDepth(t *testing.T) {
	b := New(newFakeMemory(16), Config{LineSize: 16})
	if got := b.ArbQueueDepth(); got != 0 {
		t.Fatalf("idle bus depth = %d, want 0", got)
	}

	b.Acquire(0, -1)
	if got := b.ArbQueueDepth(); got != 1 {
		t.Errorf("held bus depth = %d, want 1", got)
	}

	// Queue a contender; it blocks in Acquire until we release, so its
	// ticket must be visible while we still hold the bus. The ticket is
	// taken inside Acquire, so poll until it lands.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		b.Acquire(0, -1)
		b.Release(0)
	}()
	for b.ArbQueueDepth() != 2 {
		runtime.Gosched()
	}

	b.Release(0)
	wg.Wait()
	if got := b.ArbQueueDepth(); got != 0 {
		t.Errorf("drained bus depth = %d, want 0", got)
	}
}

// A shared arbiter reports the queue across every bus serialising
// through it.
func TestArbQueueDepthSharedArbiter(t *testing.T) {
	arb := NewArbiter()
	b1 := New(newFakeMemory(16), Config{LineSize: 16, Arbiter: arb})
	b2 := New(newFakeMemory(16), Config{LineSize: 16, Arbiter: arb})
	b1.Acquire(0, -1)
	if got := b2.ArbQueueDepth(); got != 1 {
		t.Errorf("sibling bus depth = %d, want 1 (shared arbiter)", got)
	}
	b1.Release(0)
}
