package bus

// PhaseCosts decomposes one transaction's simulated time by bus phase,
// in nanoseconds — the paper's Table 2 costs broken down to where the
// time actually went. Addr+Data+Intervention+Memory+Retry always equals
// Result.Cost; Arb is waiting time (the bus was occupied by others), so
// it is attributed to the master but not counted as bus occupancy.
type PhaseCosts struct {
	// Arb is the simulated time the master waited for the arbiter's
	// grant while earlier transactions occupied the bus. It is measured
	// against the recorder's occupancy clock, so it is zero when
	// observability is off or the bus was idle.
	Arb int64 `json:"arb"`
	// Addr is the successful broadcast address handshake, including the
	// 25 ns wired-OR glitch-filter penalty (§2.2).
	Addr int64 `json:"addr"`
	// Data is the transfer beats of the data phase: per-word cycles
	// plus the wired-OR penalty on multi-party (broadcast) data cycles.
	Data int64 `json:"data"`
	// Intervention is the first-word latency paid when an owning cache
	// preempted memory (DI) — the cache-to-cache supply path.
	Intervention int64 `json:"intervention"`
	// Memory is the first-word latency paid when main memory responded
	// (reads it served, writes it accepted).
	Memory int64 `json:"memory"`
	// Retry is the BS abort/retry overhead: the address cycles of every
	// aborted attempt. The owner's recovery pushes run as nested
	// transactions and are accounted (and emitted) as their own
	// transactions, charged to the recovering owner.
	Retry int64 `json:"retry"`
}

// Occupancy is the bus-occupied portion of the breakdown — everything
// except the arbitration wait. It equals Result.Cost.
func (p PhaseCosts) Occupancy() int64 {
	return p.Addr + p.Data + p.Intervention + p.Memory + p.Retry
}

// Transfer is the data-movement portion: beats plus whichever
// first-word latency applied.
func (p PhaseCosts) Transfer() int64 {
	return p.Data + p.Intervention + p.Memory
}
