package bus

// PhaseCosts decomposes one transaction's simulated time by bus phase,
// in nanoseconds — the paper's Table 2 costs broken down to where the
// time actually went. Addr+Data+Intervention+Memory+Retry always equals
// Result.Cost; Arb is waiting time (the bus was occupied by others), so
// it is attributed to the master but not counted as bus occupancy.
type PhaseCosts struct {
	// Arb is the simulated time the master waited for the arbiter's
	// grant while earlier transactions occupied the bus. It is measured
	// against the recorder's occupancy clock, so it is zero when
	// observability is off or the bus was idle.
	Arb int64 `json:"arb"`
	// Addr is the successful broadcast address handshake, including the
	// 25 ns wired-OR glitch-filter penalty (§2.2).
	Addr int64 `json:"addr"`
	// Data is the transfer beats of the data phase: per-word cycles
	// plus the wired-OR penalty on multi-party (broadcast) data cycles.
	Data int64 `json:"data"`
	// Intervention is the first-word latency paid when an owning cache
	// preempted memory (DI) — the cache-to-cache supply path.
	Intervention int64 `json:"intervention"`
	// Memory is the first-word latency paid when main memory responded
	// (reads it served, writes it accepted).
	Memory int64 `json:"memory"`
	// Retry is the BS abort/retry overhead: the address cycles of every
	// aborted attempt. The owner's recovery pushes run as nested
	// transactions and are accounted (and emitted) as their own
	// transactions, charged to the recovering owner. In split mode a
	// NACK (pending table full) charges its extra address cycle here
	// too — the NACK is the split-mode fold of the BS abort.
	Retry int64 `json:"retry"`
	// Pend is the off-bus memory service of a split transaction: the
	// first-word latency spent in the pending-transaction table while
	// other masters use the bus. Zero in atomic mode. Not bus occupancy.
	Pend int64 `json:"pend,omitempty"`
	// Deferred is the data-phase transfer time a split transaction
	// retires in a later data tenure of its own. It is charged to the
	// shard's occupancy clock when that tenure runs (KindData), so it is
	// excluded here from Occupancy to keep Occupancy() == Result.Cost.
	Deferred int64 `json:"deferred,omitempty"`
}

// Occupancy is the bus-occupied portion of the breakdown during the
// address tenure — everything except the arbitration wait and the
// split-mode off-bus phases. It equals Result.Cost.
func (p PhaseCosts) Occupancy() int64 {
	return p.Addr + p.Data + p.Intervention + p.Memory + p.Retry
}

// Transfer is the data-movement portion: beats plus whichever
// first-word latency applied, including a split transaction's deferred
// beats and off-bus service.
func (p PhaseCosts) Transfer() int64 {
	return p.Data + p.Intervention + p.Memory + p.Pend + p.Deferred
}
