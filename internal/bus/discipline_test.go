package bus

import (
	"testing"
)

// roundSim replays the arbiter's grant loop synchronously: the same
// argmin selection and skip aging as arbMutex.Unlock, minus the
// goroutines, so grant-latency bounds are provable per round instead of
// probed with sleeps.
type roundSim struct {
	disc    Discipline
	tickets int64
	waiters []Waiter
	arrived map[int64]int // ticket → round enqueued
	round   int
}

func newRoundSim(d Discipline) *roundSim {
	return &roundSim{disc: d, arrived: map[int64]int{}}
}

func (s *roundSim) enqueue(board int) {
	s.waiters = append(s.waiters, Waiter{Board: board, Ticket: s.tickets})
	s.arrived[s.tickets] = s.round
	s.tickets++
}

// grant runs one grant round and returns the winning board and how many
// rounds its request waited.
func (s *roundSim) grant() (board, waitedRounds int) {
	if len(s.waiters) == 0 {
		panic("grant with empty queue")
	}
	best := 0
	for i := 1; i < len(s.waiters); i++ {
		if s.disc.Key(s.waiters[i]) < s.disc.Key(s.waiters[best]) {
			best = i
		}
	}
	w := s.waiters[best]
	s.waiters = append(s.waiters[:best], s.waiters[best+1:]...)
	for i := range s.waiters {
		s.waiters[i].Skips++
	}
	s.disc.Granted(w.Board)
	s.round++
	return w.Board, s.round - s.arrived[w.Ticket]
}

func mustDisc(t *testing.T, name string) Discipline {
	t.Helper()
	f, err := NewDiscipline(name)
	if err != nil {
		t.Fatal(err)
	}
	return f()
}

// overload drives nBoards contenders for `rounds` grant rounds with
// board 0 re-requesting immediately after every one of its grants — the
// one-board-overload pattern — and returns each board's grant count and
// the worst wait (in rounds) any granted request saw.
func overload(d Discipline, nBoards, rounds int) (grants map[int]int, maxWait int) {
	s := newRoundSim(d)
	for b := 0; b < nBoards; b++ {
		s.enqueue(b)
	}
	grants = map[int]int{}
	for r := 0; r < rounds; r++ {
		b, waited := s.grant()
		grants[b]++
		if waited > maxWait {
			maxWait = waited
		}
		if b == 0 {
			s.enqueue(0) // the overload board never stops asking
		}
	}
	return grants, maxWait
}

// TestRRGrantBound: under one-board overload, round-robin grants every
// requester within one rotation of the board set — the provable bound
// the Futurebus fairness mode promises.
func TestRRGrantBound(t *testing.T) {
	const n = 8
	grants, maxWait := overload(mustDisc(t, "rr"), n, 200)
	if maxWait > n {
		t.Fatalf("rr wait bound broken: a request waited %d rounds with %d boards", maxWait, n)
	}
	for b := 1; b < n; b++ {
		if grants[b] == 0 {
			t.Fatalf("rr starved board %d over 200 rounds: %v", b, grants)
		}
	}
}

// TestPriorityStarvation: the Futurebus competition-number mode grants
// the lowest slot every round, so a flooding board 0 starves every
// other requester indefinitely — the §2 trade the fairness mode exists
// to fix.
func TestPriorityStarvation(t *testing.T) {
	grants, _ := overload(mustDisc(t, "priority"), 8, 200)
	if grants[0] != 200 {
		t.Fatalf("priority did not serve the flooding board every round: %v", grants)
	}
	for b := 1; b < 8; b++ {
		if grants[b] != 0 {
			t.Fatalf("board %d was granted under a board-0 flood: %v", b, grants)
		}
	}
}

// TestBoundedPromotionBound: the aging discipline is priority plus a
// skip cap — under the same board-0 flood, every waiter is promoted
// after Bound lost rounds and drains FIFO, so no granted request ever
// waits more than Bound + (queue length) rounds.
func TestBoundedPromotionBound(t *testing.T) {
	const n = 8
	grants, maxWait := overload(mustDisc(t, "bounded"), n, 200)
	if limit := DefaultAgingBound + n; maxWait > limit {
		t.Fatalf("bounded wait %d rounds exceeds Bound+queue = %d", maxWait, limit)
	}
	for b := 1; b < n; b++ {
		if grants[b] == 0 {
			t.Fatalf("bounded starved board %d: %v", b, grants)
		}
	}
}

// TestFCFSUnboundedTail: FCFS has no per-board bound — a request
// arriving behind a k-deep backlog waits k rounds, so the tail grows
// with the backlog, not the board count. Round-robin under the same
// arrival pattern grants the latecomer within one rotation.
func TestFCFSUnboundedTail(t *testing.T) {
	tail := func(d Discipline, backlog int) int {
		s := newRoundSim(d)
		for i := 0; i < backlog; i++ {
			s.enqueue(0)
		}
		s.enqueue(1) // the latecomer behind the burst
		for {
			b, waited := s.grant()
			if b == 1 {
				return waited
			}
		}
	}
	prev := 0
	for _, backlog := range []int{4, 16, 64} {
		w := tail(mustDisc(t, "fcfs"), backlog)
		if w != backlog+1 {
			t.Fatalf("fcfs latecomer behind %d-deep backlog waited %d rounds, want %d", backlog, w, backlog+1)
		}
		if w <= prev {
			t.Fatalf("fcfs tail did not grow with backlog: %d then %d", prev, w)
		}
		prev = w
		if rw := tail(mustDisc(t, "rr"), backlog); rw > 2 {
			t.Fatalf("rr latecomer behind %d-deep backlog waited %d rounds, want ≤2", backlog, rw)
		}
	}
}

// TestArbMutexHonoursDiscipline: the real grant machinery — parked
// goroutines woken by Unlock — releases waiters in the discipline's
// order, not arrival order.
func TestArbMutexHonoursDiscipline(t *testing.T) {
	for _, tc := range []struct {
		disc string
		want []int
	}{
		{"fcfs", []int{2, 1, 3}},     // arrival order
		{"priority", []int{1, 2, 3}}, // slot order
		{"rr", []int{1, 2, 3}},       // rotation after holder 0
	} {
		m := &arbMutex{disc: mustDisc(t, tc.disc)}
		m.Lock(0) // holder; rr rotation starts after board 0
		order := make(chan int, 3)
		for _, b := range []int{2, 1, 3} {
			b := b
			go func() {
				m.Lock(b)
				order <- b
				m.Unlock()
			}()
			// Park deterministically: each waiter must be queued before
			// the next arrives, or arrival tickets are racy.
			waitParked(m, b)
		}
		m.Unlock()
		var got []int
		for i := 0; i < 3; i++ {
			got = append(got, <-order)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%s: grant order %v, want %v", tc.disc, got, tc.want)
			}
		}
	}
}

// waitParked spins until a waiter for the given board is in the queue.
func waitParked(m *arbMutex, board int) {
	for {
		m.mu.Lock()
		for _, w := range m.waiters {
			if w.w.Board == board {
				m.mu.Unlock()
				return
			}
		}
		m.mu.Unlock()
	}
}

// TestDisciplineRegistry: the name registry resolves every shipped
// discipline, defaults the empty name to fcfs, and rejects strangers.
func TestDisciplineRegistry(t *testing.T) {
	want := []string{"bounded", "fcfs", "priority", "rr"}
	got := DisciplineNames()
	if len(got) != len(want) {
		t.Fatalf("DisciplineNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DisciplineNames() = %v, want %v", got, want)
		}
	}
	f, err := NewDiscipline("")
	if err != nil || f().Name() != "fcfs" {
		t.Fatalf("empty discipline name: %v, %v", f, err)
	}
	if _, err := NewDiscipline("lottery"); err == nil {
		t.Fatal("unknown discipline accepted")
	}
}
