package bus

import (
	"errors"
	"testing"

	"futurebus/internal/core"
	"futurebus/internal/obs"
	"futurebus/internal/obs/watch"
)

// wedgedSnooper asserts BS on every query but its recovery push is a
// no-op — the line never quiesces, so the master's retries can never
// succeed. This is the fault ErrTooManyRetries exists to bound.
type wedgedSnooper struct {
	fakeSnooper
	recoveries int
	calm       bool
}

func (w *wedgedSnooper) Query(tx *Transaction) SnoopResponse {
	w.locked = true
	if w.calm {
		return SnoopResponse{}
	}
	act, _ := core.ParseSnoopAction("BS;S,CA,W")
	return SnoopResponse{Action: act, State: core.Modified, Hit: true}
}

func (w *wedgedSnooper) Recover(b *Bus, aborted *Transaction, resp SnoopResponse) error {
	w.recoveries++
	return nil
}

// TestRetryExhaustionSurfaced: a wedged abort loop must fail with
// ErrTooManyRetries AND leave a structural trail — the
// Stats.RetryExhausted counter (the futurebus_retry_exhausted_total
// scrape source), a KindRetryExhausted event, and a forward-progress
// violation from the runtime invariant monitor watching the stream.
func TestRetryExhaustionSurfaced(t *testing.T) {
	mon := watch.New(watch.Config{})
	rec := obs.New(mon)
	mem := newFakeMemory(16)
	b := New(mem, Config{LineSize: 16, Obs: rec})
	wedged := &wedgedSnooper{fakeSnooper: fakeSnooper{id: 1}}
	b.Attach(wedged)

	_, err := b.Execute(&Transaction{MasterID: 0, Signals: core.SigCA, Op: core.BusRead, Addr: 7})
	if !errors.Is(err, ErrTooManyRetries) {
		t.Fatalf("err = %v, want ErrTooManyRetries", err)
	}
	if wedged.recoveries <= maxRetries {
		t.Errorf("recoveries = %d, want > %d (one per abort round)", wedged.recoveries, maxRetries)
	}
	st := b.Stats()
	if st.RetryExhausted != 1 {
		t.Errorf("Stats.RetryExhausted = %d, want 1", st.RetryExhausted)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	rep := mon.Report()
	if rep.Total == 0 {
		t.Fatal("invariant monitor saw no violation in a wedged retry loop")
	}
	found := false
	for i := range rep.Violations {
		if rep.Violations[i].Invariant == watch.InvProgress {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %s violation reported: %s", watch.InvProgress, rep.Summary())
	}

	// The bus must stay usable after the wedged transaction failed.
	wedged.calm = true
	if _, err := b.Execute(&Transaction{MasterID: 0, Op: core.BusRead, Addr: 8}); err != nil {
		t.Fatalf("bus wedged after retry exhaustion: %v", err)
	}
}
