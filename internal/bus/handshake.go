package bus

import (
	"fmt"
	"sort"
	"strings"
)

// This file reproduces Figures 1 and 2 of the paper: the broadcast
// handshake on open-collector lines, and the Futurebus parallel
// (address) protocol. The simulation is event-driven at nanosecond
// granularity and models the asymmetric inertial-delay (low-pass)
// filter that deterministically removes wired-OR glitches, at the cost
// of the 25 ns broadcast penalty (§2.2, [Gust83]).

// EdgeKind distinguishes what happened on a line at an event.
type EdgeKind uint8

const (
	// EdgeAssert: a driver pulled the line low (the wired-OR line
	// falls if it was high).
	EdgeAssert EdgeKind = iota
	// EdgeRelease: a driver let go; the line stays low if any other
	// driver still holds it (the wired-OR glitch is filtered away).
	EdgeRelease
	// EdgeHigh: the filtered wired-OR line is observed high — every
	// driver has released it.
	EdgeHigh
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeAssert:
		return "fall"
	case EdgeRelease:
		return "release"
	case EdgeHigh:
		return "rise"
	}
	return fmt.Sprintf("EdgeKind(%d)", uint8(k))
}

// HandshakeEvent is one event in the handshake trace.
type HandshakeEvent struct {
	// Time in nanoseconds from the start of the cycle.
	Time int64
	// Line is the signal name ("AS*", "AK*", "AI*", "ADDR").
	Line string
	// Kind says what happened.
	Kind EdgeKind
	// Unit is the module responsible (-1 for a wired-OR resolution
	// involving all drivers, e.g. the final rise of AI*).
	Unit int
	// Note is a human-readable annotation for the trace output.
	Note string
}

func (e HandshakeEvent) String() string {
	who := "wired-OR"
	if e.Unit >= 0 {
		who = fmt.Sprintf("unit %d", e.Unit)
	}
	return fmt.Sprintf("t=%4dns %-5s %-7s (%s) %s", e.Time, e.Line, e.Kind, who, e.Note)
}

// SlaveTiming describes one responding module's speed.
type SlaveTiming struct {
	// AckDelay: time from seeing AS* fall to asserting AK*.
	AckDelay int64
	// ProcessTime: time from seeing AS* fall until the module is done
	// with the address (e.g. its cache directory lookup completes) and
	// releases AI*.
	ProcessTime int64
}

// HandshakeConfig parameterises a broadcast address cycle.
type HandshakeConfig struct {
	// AddressSetup: master drives the address this long before AS*.
	AddressSetup int64
	// GlitchFilter is the inertial delay that masks wired-OR glitches;
	// the observed rise of a wired-OR line lags the last release by
	// this much. The paper's figure is 25 ns.
	GlitchFilter int64
	// Slaves lists every responding module. A broadcast cycle does not
	// complete until the slowest has released AI* — "no matter how new
	// or old, fast or slow, a particular board may be" (§2.2).
	Slaves []SlaveTiming
}

// DefaultHandshakeConfig returns a three-slave configuration with
// heterogeneous board speeds, as in Figure 1's discussion.
func DefaultHandshakeConfig() HandshakeConfig {
	return HandshakeConfig{
		AddressSetup: 10,
		GlitchFilter: 25,
		Slaves: []SlaveTiming{
			{AckDelay: 5, ProcessTime: 40},
			{AckDelay: 8, ProcessTime: 90},
			{AckDelay: 6, ProcessTime: 60},
		},
	}
}

// HandshakeTrace is the result of simulating one broadcast address
// cycle.
type HandshakeTrace struct {
	Events []HandshakeEvent
	// Complete is when the master may remove the address: the filtered
	// rise of AI* (all slaves done).
	Complete int64
	// FirstAck is when AK* fell (the first slave acknowledged).
	FirstAck int64
	// LastRelease is when the final slave released AI*, before the
	// glitch filter.
	LastRelease int64
}

// SimulateBroadcastHandshake runs the Figure 1/2 protocol:
//
//  1. The master drives the address, then asserts AS*.
//  2. Every slave asserts AK* as soon as it sees AS* (the wired-OR AK*
//     falls with the FIRST assertion — "if you need to know when the
//     first module reaches a particular state, have it pull the signal
//     low").
//  3. Every slave holds AI* asserted from power-on; each releases AI*
//     only when it is finished with the address. The wired-OR AI* rises
//     with the LAST release ("drive low, float high"), plus the glitch
//     filter delay.
//  4. Only after AI* rises may the master remove the address.
func SimulateBroadcastHandshake(cfg HandshakeConfig) HandshakeTrace {
	const master = 0
	var tr HandshakeTrace
	add := func(e HandshakeEvent) { tr.Events = append(tr.Events, e) }

	ai := NewWiredORLine("AI*")
	ak := NewWiredORLine("AK*")
	// AI* is held asserted by all slaves before the cycle begins.
	for i := range cfg.Slaves {
		ai.Assert(i + 1)
	}

	add(HandshakeEvent{Time: 0, Line: "ADDR", Kind: EdgeAssert, Unit: master, Note: "master drives address"})
	asTime := cfg.AddressSetup
	add(HandshakeEvent{Time: asTime, Line: "AS*", Kind: EdgeAssert, Unit: master, Note: "address strobe"})

	// AK*: all slaves assert, and the wired-OR line falls with the
	// FIRST assertion — slaves may ack in any order, the observable
	// edge is the earliest.
	firstAck := asTime + cfg.Slaves[0].AckDelay
	firstUnit := 1
	for i, s := range cfg.Slaves {
		ak.Assert(i + 1)
		if t := asTime + s.AckDelay; t < firstAck {
			firstAck, firstUnit = t, i+1
		}
	}
	add(HandshakeEvent{Time: firstAck, Line: "AK*", Kind: EdgeAssert, Unit: firstUnit, Note: "first acknowledge pulls AK* low"})
	tr.FirstAck = firstAck

	// AI*: each slave releases when done; the line rises after the last
	// release plus the glitch-filter delay. Intermediate releases cause
	// wired-OR glitches that the filter removes.
	type rel struct {
		t    int64
		unit int
	}
	rels := make([]rel, len(cfg.Slaves))
	for i, s := range cfg.Slaves {
		rels[i] = rel{t: asTime + s.ProcessTime, unit: i + 1}
	}
	sort.Slice(rels, func(i, j int) bool { return rels[i].t < rels[j].t })
	for i, r := range rels {
		ai.Release(r.unit)
		note := "releases AI* (wired-OR glitch filtered)"
		if i == len(rels)-1 {
			note = "last release; AI* may rise"
		}
		add(HandshakeEvent{Time: r.t, Line: "AI*", Kind: EdgeRelease, Unit: r.unit, Note: note})
	}
	tr.LastRelease = rels[len(rels)-1].t
	if ai.Asserted() {
		panic("bus: AI* still driven after all releases")
	}
	rise := tr.LastRelease + cfg.GlitchFilter
	add(HandshakeEvent{Time: rise, Line: "AI*", Kind: EdgeHigh, Unit: -1, Note: "AI* observed high after inertial delay"})
	add(HandshakeEvent{Time: rise, Line: "ADDR", Kind: EdgeHigh, Unit: master, Note: "master may remove address"})
	tr.Complete = rise

	sort.SliceStable(tr.Events, func(i, j int) bool { return tr.Events[i].Time < tr.Events[j].Time })
	return tr
}

// Render formats the trace for terminal output (cmd/fbtrace).
func (tr HandshakeTrace) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Broadcast address handshake (Figures 1-2)\n")
	for _, e := range tr.Events {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	fmt.Fprintf(&b, "cycle complete at t=%dns (last slave done t=%dns + %dns wired-OR filter)\n",
		tr.Complete, tr.LastRelease, tr.Complete-tr.LastRelease)
	return b.String()
}
