package bus

import (
	"fmt"

	"futurebus/internal/core"
)

// Command is an extended bus command carried by an address cycle. The
// paper leaves this mechanism as future work ("Proper mechanisms must
// also be defined for issuing commands across the bus to cause other
// caches to become consistent with main memory", §6); the
// implementation here composes it entirely from existing facilities.
type Command uint8

const (
	// CmdNone — an ordinary transaction.
	CmdNone Command = iota
	// CmdClean — "make this line consistent with main memory". An
	// owning cache responds by aborting (BS), pushing the line, and
	// keeping an unowned copy; the command's retry then completes with
	// no owner left, so memory holds the image. Non-owning holders
	// keep their copies. This is exactly the §4 abort-push-retry
	// machinery applied to a synchronisation command.
	CmdClean
)

// Transaction is one Futurebus transaction: a broadcast address cycle
// carrying the master's intention signals (CA, IM, BC — §3.2.1),
// followed by an optional data phase.
type Transaction struct {
	// MasterID identifies the issuing unit; it does not snoop itself.
	MasterID int
	// Cmd marks extended command cycles (CmdNone for ordinary
	// transactions).
	Cmd Command
	// Signals is the master triple (CA, IM, BC). Together with Op it
	// determines the Table 2 column every snooper consults.
	Signals core.Signal
	// Op is the data phase: BusRead, BusWrite or BusAddrOnly.
	// (BusReadThenWrite is a client-side composite of two
	// transactions, never issued directly.)
	Op core.BusOp
	// Addr is the line address.
	Addr Addr
	// Data is the payload of a full-line write (a write-back or BS
	// recovery push). Exactly one of Data and Partial is set on a
	// write.
	Data []byte
	// Partial is the payload of a single-word write: the broadcast
	// word of an update protocol, a write-through store, or an
	// uncached store. Participants (memory, a capturing owner,
	// connecting SL slaves) merge the word into their own copies.
	Partial *PartialWrite

	// txid is the arbiter-allocated transaction id, stamped by the bus
	// at the start of execution so snoopers can tag the events their
	// Commit/Recover emits with the causing transaction.
	txid uint64
}

// TxID returns the arbiter-allocated transaction id (0 before the bus
// has begun executing the transaction). Snoopers read it during the
// address cycle to attribute their state changes.
func (tx *Transaction) TxID() uint64 { return tx.txid }

// PartialWrite is a single 32-bit store within a line.
type PartialWrite struct {
	// Word is the word index within the line.
	Word int
	// Val is the stored value.
	Val uint32
}

// Event returns the Table 2 column snoopers consult for this
// transaction, classified from the master signal triple.
func (tx *Transaction) Event() core.BusEvent {
	return core.ClassifyBusEvent(tx.Signals)
}

func (tx *Transaction) check(lineSize int) error {
	switch tx.Op {
	case core.BusRead, core.BusAddrOnly:
		if tx.Data != nil || tx.Partial != nil {
			return fmt.Errorf("bus: %s carries data", tx)
		}
	case core.BusWrite:
		switch {
		case tx.Data != nil && tx.Partial != nil:
			return fmt.Errorf("bus: %s carries both full-line and partial data", tx)
		case tx.Partial != nil:
			if tx.Partial.Word < 0 || (tx.Partial.Word+1)*4 > lineSize {
				return fmt.Errorf("bus: partial write word %d outside %d-byte line", tx.Partial.Word, lineSize)
			}
		case len(tx.Data) != lineSize:
			return fmt.Errorf("bus: write of %d bytes, system line size is %d (§5.1 requires a standard line size)", len(tx.Data), lineSize)
		}
	default:
		return fmt.Errorf("bus: invalid op in %s", tx)
	}
	if tx.Signals&^core.MasterSignals != 0 {
		return fmt.Errorf("bus: master asserted response signals in %s", tx)
	}
	return nil
}

func (tx *Transaction) String() string {
	sig := tx.Signals.String()
	if sig == "" {
		sig = "~CA,~IM,~BC"
	}
	op := tx.Op.String()
	if op == "" {
		op = "addr"
	}
	return fmt.Sprintf("tx{master=%d %s %s addr=%#x}", tx.MasterID, sig, op, uint64(tx.Addr))
}
