package bus

import (
	"testing"
	"testing/quick"
)

// TestWiredORSemantics: "drive low, float high" — the line is low while
// any driver holds it and rises only when all have released (§2.2).
func TestWiredORSemantics(t *testing.T) {
	l := NewWiredORLine("AI*")
	if l.Asserted() {
		t.Fatal("fresh line is asserted")
	}
	l.Assert(1)
	l.Assert(2)
	l.Assert(3)
	if !l.Asserted() {
		t.Fatal("driven line not asserted")
	}
	l.Release(2)
	if !l.Asserted() {
		t.Fatal("line rose with drivers still on (the garden hose leaks)")
	}
	l.Release(1)
	l.Release(3)
	if l.Asserted() {
		t.Fatal("line still low after all releases")
	}
}

// TestWiredORIdempotence: double assert/release behave like sets.
func TestWiredORIdempotence(t *testing.T) {
	l := NewWiredORLine("X*")
	l.Assert(7)
	l.Assert(7)
	l.Release(7)
	if l.Asserted() {
		t.Error("double assert needs double release")
	}
	l.Release(7) // releasing a released driver is harmless
	if l.Asserted() {
		t.Error("spurious assertion")
	}
}

// TestWiredORDrivers: Drivers reports sorted holders and the String is
// stable.
func TestWiredORDrivers(t *testing.T) {
	l := NewWiredORLine("AK*")
	l.Assert(5)
	l.Assert(1)
	l.Assert(3)
	d := l.Drivers()
	if len(d) != 3 || d[0] != 1 || d[1] != 3 || d[2] != 5 {
		t.Errorf("drivers = %v", d)
	}
	if got := l.String(); got != "AK*=low[1,3,5]" {
		t.Errorf("String = %q", got)
	}
	l.Release(1)
	l.Release(3)
	l.Release(5)
	if got := l.String(); got != "AK*=high[]" {
		t.Errorf("String = %q", got)
	}
}

// TestWiredORProperty: after any sequence of asserts and releases, the
// line is asserted iff the driver set is non-empty.
func TestWiredORProperty(t *testing.T) {
	f := func(ops []int16) bool {
		l := NewWiredORLine("P*")
		want := map[int]bool{}
		for _, op := range ops {
			unit := int(op) % 8
			if unit < 0 {
				unit = -unit
			}
			if op >= 0 {
				l.Assert(unit)
				want[unit] = true
			} else {
				l.Release(unit)
				delete(want, unit)
			}
		}
		return l.Asserted() == (len(want) > 0) && len(l.Drivers()) == len(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
