package protocols

import "futurebus/internal/core"

// FireflyTable returns the Firefly protocol as adapted to the Futurebus
// in Table 7 (the DEC SRC Firefly, defined only in [Arch85]). The
// original updates memory whenever an intervening cache provides data;
// here that becomes a BS abort + push, after which the old owner holds
// E and the retried read finds memory valid, leaving both caches in S
// (§4.5). Firefly is update-based: writes to shared lines broadcast and
// nobody is invalidated.
func FireflyTable() *core.Table { return core.PaperTable7() }

// Firefly returns the adapted Firefly protocol extended to the full
// event set.
func Firefly() core.Policy {
	t := Extend(core.PaperTable7(), StyleUpdate)
	t.Name = "Firefly"
	return NewPreferred("Firefly", core.CopyBack, mustInClass(t, core.CopyBack))
}
