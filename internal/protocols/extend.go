package protocols

import (
	"fmt"

	"futurebus/internal/core"
)

// Style biases how an extended protocol treats broadcast writes it did
// not originally define (columns 8 and 10): invalidate-based protocols
// discard their copies where the class permits, update-based protocols
// connect and refresh them. All other cells keep the class preference
// order — an owner always intervenes or captures, holders always answer
// reads with CH.
type Style uint8

const (
	// StyleInvalidate discards copies on foreign broadcast writes.
	StyleInvalidate Style = iota
	// StyleUpdate connects (SL) and refreshes copies.
	StyleUpdate
)

func (s Style) String() string {
	if s == StyleUpdate {
		return "update"
	}
	return "invalidate"
}

// Extend completes a partial protocol table (the paper's Tables 3–7
// define only the columns their own algorithm generates) to the full
// event set of a mixed Futurebus, by filling every undefined cell with
// a class action:
//
//   - only actions whose result states stay within the protocol's own
//     state set are considered (Berkeley never enters E, Illinois never
//     enters O);
//   - cells the class itself leaves undefined (M/E on column 8, Pass of
//     a clean line) stay undefined;
//   - on broadcast-write columns the Style picks between update and
//     invalidate where the class offers both.
//
// The result is a class member by construction (modulo any BS cells the
// original table already contained), which Validate confirms.
func Extend(t *core.Table, style Style) *core.Table {
	out := core.NewTable(t.Name, t.States, core.LocalEvents[:], core.BusEvents[:])
	allowed := make(map[core.State]bool, len(t.States)+1)
	allowed[core.Invalid] = true
	for _, s := range t.States {
		allowed[s] = true
	}
	within := func(c core.CondState) bool { return allowed[c.OnCH] && allowed[c.NoCH] }

	for _, s := range t.States {
		for _, e := range core.LocalEvents {
			if alts := existingLocal(t, s, e); alts != nil {
				out.SetLocal(s, e, alts...)
				continue
			}
			for _, ent := range core.LocalClass(s, e) {
				if ent.Variant&core.CopyBack == 0 {
					continue
				}
				if ent.Action.Op != core.BusReadThenWrite && !within(ent.Action.Next) {
					continue
				}
				out.SetLocal(s, e, ent.Action)
				break
			}
		}
		for _, e := range core.BusEvents {
			if alts := existingSnoop(t, s, e); alts != nil {
				out.SetSnoop(s, e, alts...)
				continue
			}
			var candidates []core.SnoopAction
			for _, ent := range core.SnoopClass(s, e) {
				if within(ent.Action.Next) {
					candidates = append(candidates, ent.Action)
				}
			}
			if len(candidates) == 0 {
				continue // class "—": stays undefined
			}
			if style == StyleInvalidate && broadcastWriteColumn(e) {
				// Prefer discarding over connecting where permitted.
				for i, a := range candidates {
					if !a.Next.Conditional() && a.Next.NoCH == core.Invalid {
						candidates[0], candidates[i] = candidates[i], candidates[0]
						break
					}
				}
			}
			out.SetSnoop(s, e, candidates[0])
		}
	}
	return out
}

func broadcastWriteColumn(e core.BusEvent) bool {
	return e == core.BusCacheBroadcastWrite || e == core.BusPlainBroadcastWrite
}

func existingLocal(t *core.Table, s core.State, e core.LocalEvent) []core.LocalAction {
	for _, have := range t.LocalEvents {
		if have == e {
			return t.Local(s, e)
		}
	}
	return nil
}

func existingSnoop(t *core.Table, s core.State, e core.BusEvent) []core.SnoopAction {
	for _, have := range t.BusEvents {
		if have == e {
			return t.Snoop(s, e)
		}
	}
	return nil
}

// mustInClass panics unless the table validates as a class member (with
// or without the BS extension). Protocol constructors call it so a
// typo in a table is caught at init time.
func mustInClass(t *core.Table, variant core.Variant) *core.Table {
	rep := core.Validate(t, variant)
	if rep.Verdict == core.NotInClass {
		panic(fmt.Sprintf("protocols: %s is not a class member:\n%s", t.Name, rep))
	}
	return t
}
