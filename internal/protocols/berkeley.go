package protocols

import "futurebus/internal/core"

// BerkeleyTable returns the Berkeley protocol exactly as the paper
// defines it in Table 3 (the SPUR consistency scheme [Katz85], with CH
// generated for class compatibility). Its states map into M, O, S and
// I; there is no E state. The Futurebus facilities are sufficient to
// implement it unmodified — it is a class member (§4.1).
func BerkeleyTable() *core.Table { return core.PaperTable3() }

// Berkeley returns the Berkeley protocol extended to the full Futurebus
// event set (invalidate style) and wrapped in a preferred-choice
// policy.
func Berkeley() core.Policy {
	t := Extend(core.PaperTable3(), StyleInvalidate)
	t.Name = "Berkeley"
	return NewPreferred("Berkeley", core.CopyBack, mustInClass(t, core.CopyBack))
}
