package protocols

import "futurebus/internal/core"

// WriteOnceTable returns the Write-Once protocol as adapted to the
// Futurebus in Table 5 ([Good83], the first bus consistency protocol).
// The original requires memory to be updated while an intervening cache
// supplies data, which the Futurebus cannot do; intervention is
// replaced by a BS abort followed by an immediate push, after which the
// restarted transaction is served by memory (§4.3). The protocol
// therefore needs the BS extension.
func WriteOnceTable() *core.Table { return core.PaperTable5() }

// WriteOnce returns the adapted Write-Once protocol extended to the
// full event set. Its signature move survives: the FIRST write to an S
// line is written through (E,CA,IM,W — invalidating other copies and
// updating memory at once), and only the second write dirties the line.
func WriteOnce() core.Policy {
	t := Extend(core.PaperTable5(), StyleInvalidate)
	t.Name = "Write-Once"
	return NewPreferred("Write-Once", core.CopyBack, mustInClass(t, core.CopyBack))
}
