package protocols

import (
	"sync"

	"futurebus/internal/core"
)

// This file implements the dynamic choosers of §3.4: "As an extreme
// case, it would introduce no errors if a board were to select an
// action at each instant from the available set using a random number
// generator or a selection algorithm such as round robin." Both pick a
// fresh legal action from the full class on every event; the
// consistency experiments (P4) run them against the invariant checker.

// classTable materialises the full class (copy-back entries, all
// alternatives in class order) as a Table, for validation and display.
func classTable(name string) *core.Table {
	t := core.FullMOESITable(name)
	for _, s := range core.States {
		for _, e := range core.LocalEvents {
			t.SetLocal(s, e, core.LocalChoicesFor(s, e, core.CopyBack)...)
		}
		for _, e := range core.BusEvents {
			t.SetSnoop(s, e, core.SnoopChoices(s, e)...)
		}
	}
	return t
}

// splitmix64 is a tiny deterministic PRNG (no global state, no seeding
// from time) so dynamic policies are reproducible.
type splitmix64 struct{ state uint64 }

func (r *splitmix64) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitmix64) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Random picks a uniformly random legal class action for every event.
type Random struct {
	name string
	mu   sync.Mutex
	rng  splitmix64
}

// NewRandom creates a random-choice policy with a deterministic seed.
func NewRandom(seed uint64) *Random {
	return &Random{name: "random", rng: splitmix64{state: seed}}
}

// Name implements core.Policy.
func (p *Random) Name() string { return p.name }

// Variant implements core.Policy.
func (p *Random) Variant() core.Variant { return core.CopyBack }

// Table implements core.Policy: the full class, since any entry may be
// chosen.
func (p *Random) Table() *core.Table { return classTable("random (full class)") }

// ChooseLocal implements core.Policy.
func (p *Random) ChooseLocal(s core.State, e core.LocalEvent) (core.LocalAction, bool) {
	alts := core.LocalChoicesFor(s, e, core.CopyBack)
	if len(alts) == 0 {
		return core.LocalAction{}, false
	}
	p.mu.Lock()
	i := p.rng.intn(len(alts))
	p.mu.Unlock()
	return alts[i], true
}

// ChooseSnoop implements core.Policy.
func (p *Random) ChooseSnoop(s core.State, e core.BusEvent) (core.SnoopAction, bool) {
	alts := core.SnoopChoices(s, e)
	if len(alts) == 0 {
		return core.SnoopAction{}, false
	}
	p.mu.Lock()
	i := p.rng.intn(len(alts))
	p.mu.Unlock()
	return alts[i], true
}

var _ core.Policy = (*Random)(nil)

// RoundRobin cycles through the legal class actions of each cell in
// order, one step per event.
type RoundRobin struct {
	mu    sync.Mutex
	local [5][4]int
	snoop [5][6]int
}

// NewRoundRobin creates a round-robin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements core.Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// Variant implements core.Policy.
func (p *RoundRobin) Variant() core.Variant { return core.CopyBack }

// Table implements core.Policy.
func (p *RoundRobin) Table() *core.Table { return classTable("round-robin (full class)") }

// ChooseLocal implements core.Policy.
func (p *RoundRobin) ChooseLocal(s core.State, e core.LocalEvent) (core.LocalAction, bool) {
	alts := core.LocalChoicesFor(s, e, core.CopyBack)
	if len(alts) == 0 {
		return core.LocalAction{}, false
	}
	p.mu.Lock()
	i := p.local[s][e] % len(alts)
	p.local[s][e]++
	p.mu.Unlock()
	return alts[i], true
}

// ChooseSnoop implements core.Policy.
func (p *RoundRobin) ChooseSnoop(s core.State, e core.BusEvent) (core.SnoopAction, bool) {
	alts := core.SnoopChoices(s, e)
	if len(alts) == 0 {
		return core.SnoopAction{}, false
	}
	p.mu.Lock()
	i := p.snoop[s][e] % len(alts)
	p.snoop[s][e]++
	p.mu.Unlock()
	return alts[i], true
}

var _ core.Policy = (*RoundRobin)(nil)
