package protocols

import (
	"testing"

	"futurebus/internal/core"
)

// TestRegistryVerdicts pins the §4 compatibility analysis for every
// registered protocol, as used in simulation (extended tables).
func TestRegistryVerdicts(t *testing.T) {
	want := map[string]core.Membership{
		"moesi":                   core.InClass,
		"moesi-invalidate":        core.InClass,
		"moesi-update":            core.InClass,
		"moesi-adaptive":          core.InClass,
		"berkeley":                core.InClass,
		"dragon":                  core.InClass,
		"random":                  core.InClass,
		"round-robin":             core.InClass,
		"write-through":           core.InClass,
		"write-through-broadcast": core.InClass,
		"illinois":                core.RequiresBS,
		"synapse":                 core.RequiresBS,
		"write-once":              core.RequiresAdaptation,
		"firefly":                 core.RequiresAdaptation,
	}
	names := Names()
	if len(names) != len(want) {
		t.Errorf("registry has %d protocols, want %d: %v", len(names), len(want), names)
	}
	for name, verdict := range want {
		p, err := New(name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		rep := core.Validate(p.Table(), p.Variant())
		if rep.Verdict != verdict {
			t.Errorf("%s: verdict %s, want %s\n%s", name, rep.Verdict, verdict, rep)
		}
	}
	if _, err := New("nonsense"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

// TestPureOnly: only the §4-adapted protocols are restricted to
// protocol-pure systems.
func TestPureOnly(t *testing.T) {
	for name, want := range map[string]bool{
		"moesi": false, "berkeley": false, "dragon": false,
		"illinois": false, "write-once": true, "firefly": true,
	} {
		if got := PureOnly(name); got != want {
			t.Errorf("PureOnly(%s) = %t", name, got)
		}
	}
}

// TestExtendPreservesOriginalCells: Extend never touches a cell the
// paper defines (this is what makes the T3–T7 regeneration meaningful).
func TestExtendPreservesOriginalCells(t *testing.T) {
	for _, paper := range []*core.Table{
		core.PaperTable3(), core.PaperTable4(), core.PaperTable5(),
		core.PaperTable6(), core.PaperTable7(),
	} {
		for _, style := range []Style{StyleInvalidate, StyleUpdate} {
			full := Extend(paper, style)
			if diffs := full.Diff(paper); len(diffs) != 0 {
				t.Errorf("Extend(%s, %s) changed paper cells: %v", paper.Name, style, diffs)
			}
		}
	}
}

// TestExtendFillsEverything: the extended tables define every local
// event and bus column the class defines for their states.
func TestExtendFillsEverything(t *testing.T) {
	for _, paper := range []*core.Table{
		core.PaperTable3(), core.PaperTable4(), core.PaperTable5(),
		core.PaperTable6(), core.PaperTable7(),
	} {
		full := Extend(paper, StyleInvalidate)
		for _, s := range paper.States {
			for _, e := range core.LocalEvents {
				classHas := len(core.LocalClass(s, e)) > 0
				if classHas && len(full.Local(s, e)) == 0 {
					// Acceptable only if every class action leaves the
					// protocol's state set.
					if anyWithin(s, e, paper) {
						t.Errorf("%s: (%s,%s) unfilled", paper.Name, s.Letter(), e)
					}
				}
			}
			for _, e := range core.BusEvents {
				if len(core.SnoopClass(s, e)) > 0 && len(full.Snoop(s, e)) == 0 {
					t.Errorf("%s: (%s,col %d) unfilled", paper.Name, s.Letter(), e.Column())
				}
			}
		}
	}
}

func anyWithin(s core.State, e core.LocalEvent, paper *core.Table) bool {
	allowed := map[core.State]bool{core.Invalid: true}
	for _, st := range paper.States {
		allowed[st] = true
	}
	for _, ent := range core.LocalClass(s, e) {
		if ent.Variant&core.CopyBack == 0 {
			continue
		}
		a := ent.Action
		if a.Op == core.BusReadThenWrite || (allowed[a.Next.OnCH] && allowed[a.Next.NoCH]) {
			return true
		}
	}
	return false
}

// TestExtendRespectsStateSets: extension never introduces a state the
// protocol does not define.
func TestExtendRespectsStateSets(t *testing.T) {
	for _, paper := range []*core.Table{core.PaperTable3(), core.PaperTable5(), core.PaperTable6()} {
		full := Extend(paper, StyleInvalidate)
		allowed := map[core.State]bool{core.Invalid: true}
		for _, s := range paper.States {
			allowed[s] = true
		}
		for _, s := range full.ReachableStates() {
			if !allowed[s] {
				t.Errorf("%s extended reaches %s", paper.Name, s)
			}
		}
	}
}

// TestExtendStyle: invalidate style discards on foreign broadcast
// writes, update style connects.
func TestExtendStyle(t *testing.T) {
	inv := Extend(core.PaperTable3(), StyleInvalidate)
	if a, ok := inv.PreferredSnoop(core.Shared, core.BusPlainBroadcastWrite); !ok || a.Next.NoCH != core.Invalid {
		t.Errorf("invalidate-style col 10 S: %v", a)
	}
	upd := Extend(core.PaperTable3(), StyleUpdate)
	if a, ok := upd.PreferredSnoop(core.Shared, core.BusPlainBroadcastWrite); !ok || !a.AssertSL {
		t.Errorf("update-style col 10 S: %v", a)
	}
	// Owners must update on column 10 regardless of style.
	if a, ok := inv.PreferredSnoop(core.Modified, core.BusPlainBroadcastWrite); !ok || !a.AssertSL {
		t.Errorf("invalidate-style col 10 M: %v", a)
	}
}

// TestDynamicPoliciesStayLegal: every choice Random and RoundRobin ever
// make is a class member — checked over thousands of draws.
func TestDynamicPoliciesStayLegal(t *testing.T) {
	for _, p := range []core.Policy{NewRandom(7), NewRoundRobin()} {
		for draw := 0; draw < 2000; draw++ {
			for _, s := range core.States {
				for _, e := range core.LocalEvents {
					a, ok := p.ChooseLocal(s, e)
					if !ok {
						continue
					}
					if !inLocalClass(s, e, a) {
						t.Fatalf("%s chose illegal local action %s at (%s,%s)", p.Name(), a, s.Letter(), e)
					}
				}
				for _, e := range core.BusEvents {
					a, ok := p.ChooseSnoop(s, e)
					if !ok {
						continue
					}
					if !inSnoopClass(s, e, a) {
						t.Fatalf("%s chose illegal snoop action %s at (%s,col %d)", p.Name(), a, s.Letter(), e.Column())
					}
				}
			}
		}
	}
}

func inLocalClass(s core.State, e core.LocalEvent, a core.LocalAction) bool {
	for _, c := range core.LocalChoicesFor(s, e, core.CopyBack) {
		if c.String() == a.String() {
			return true
		}
	}
	return false
}

func inSnoopClass(s core.State, e core.BusEvent, a core.SnoopAction) bool {
	for _, c := range core.SnoopChoices(s, e) {
		if c.String() == a.String() {
			return true
		}
	}
	return false
}

// TestRoundRobinCycles: the round-robin policy walks the alternatives
// in order and wraps.
func TestRoundRobinCycles(t *testing.T) {
	p := NewRoundRobin()
	alts := core.LocalChoicesFor(core.Shared, core.LocalWrite, core.CopyBack)
	if len(alts) < 2 {
		t.Fatalf("S write has %d alternatives", len(alts))
	}
	for round := 0; round < 2; round++ {
		for i := range alts {
			a, ok := p.ChooseLocal(core.Shared, core.LocalWrite)
			if !ok || a.String() != alts[i].String() {
				t.Fatalf("round %d draw %d: got %s, want %s", round, i, a, alts[i])
			}
		}
	}
}

// TestRandomDeterminism: the same seed gives the same choice sequence.
func TestRandomDeterminism(t *testing.T) {
	a, b := NewRandom(42), NewRandom(42)
	for i := 0; i < 200; i++ {
		x, _ := a.ChooseLocal(core.Invalid, core.LocalWrite)
		y, _ := b.ChooseLocal(core.Invalid, core.LocalWrite)
		if x.String() != y.String() {
			t.Fatalf("draw %d diverged: %s vs %s", i, x, y)
		}
	}
}

// TestAdaptiveChoices: recency drives the update/discard split on
// broadcast columns only.
func TestAdaptiveChoices(t *testing.T) {
	p := NewAdaptive()
	recent, ok := p.ChooseSnoopRecency(core.Shared, core.BusCacheBroadcastWrite, true)
	if !ok || !recent.AssertSL {
		t.Errorf("recent line not updated: %v", recent)
	}
	stale, ok := p.ChooseSnoopRecency(core.Shared, core.BusCacheBroadcastWrite, false)
	if !ok || stale.Next.NoCH != core.Invalid {
		t.Errorf("stale line not discarded: %v", stale)
	}
	// Owners on column 10 have no discard option.
	owner, ok := p.ChooseSnoopRecency(core.Modified, core.BusPlainBroadcastWrite, false)
	if !ok || !owner.AssertSL {
		t.Errorf("stale owner must still update: %v", owner)
	}
	// Non-broadcast columns ignore recency.
	a1, _ := p.ChooseSnoopRecency(core.Shared, core.BusCacheRead, true)
	a2, _ := p.ChooseSnoopRecency(core.Shared, core.BusCacheRead, false)
	if a1.String() != a2.String() {
		t.Error("recency leaked into column 5")
	}
}

// TestPreferredPolicyAccessors: name/variant/table plumbing.
func TestPreferredPolicyAccessors(t *testing.T) {
	p := MOESI()
	if p.Name() != "MOESI" || p.Variant() != core.CopyBack {
		t.Errorf("accessors: %s %v", p.Name(), p.Variant())
	}
	if _, ok := p.ChooseLocal(core.Exclusive, core.Pass); ok {
		t.Error("E Pass should be undefined")
	}
	if a, ok := p.ChooseSnoop(core.Modified, core.BusCacheRead); !ok || a.String() != "O,CH,DI" {
		t.Errorf("M col 5 = %v, %t", a, ok)
	}
}

// TestWriteThroughNames: config shapes the registry names and table.
func TestWriteThroughNames(t *testing.T) {
	p := WriteThrough(WriteThroughConfig{Broadcast: true, Allocate: true})
	if p.Name() != "write-through-broadcast-allocate" {
		t.Errorf("name = %s", p.Name())
	}
	if a, ok := p.ChooseLocal(core.Invalid, core.LocalWrite); !ok || a.Op != core.BusReadThenWrite {
		t.Errorf("allocating write miss = %v", a)
	}
}

// TestNonCachingTable: the ** rows validate under the NonCaching
// variant.
func TestNonCachingTable(t *testing.T) {
	for _, broadcast := range []bool{false, true} {
		tbl := NonCachingTable(broadcast)
		rep := core.Validate(tbl, core.NonCaching)
		if rep.Verdict != core.InClass {
			t.Errorf("non-caching (broadcast=%t): %s", broadcast, rep)
		}
	}
}

// TestFreshPolicyInstances: the registry returns independent dynamic
// policies (shared RNG state across boards would be a subtle bug).
func TestFreshPolicyInstances(t *testing.T) {
	a, _ := New("round-robin")
	b, _ := New("round-robin")
	a.ChooseLocal(core.Shared, core.LocalWrite) // advance a only
	x, _ := a.ChooseLocal(core.Shared, core.LocalWrite)
	y, _ := b.ChooseLocal(core.Shared, core.LocalWrite)
	if x.String() == y.String() {
		t.Error("registry shares round-robin state between instances")
	}
}
