package protocols

import "futurebus/internal/core"

// WriteThroughConfig selects the optional behaviours Table 1 offers a
// write-through cache.
type WriteThroughConfig struct {
	// Broadcast: writes assert BC (column 10 — holders may update
	// themselves) instead of plain IM writes (column 9 — holders must
	// invalidate).
	Broadcast bool
	// Allocate: write misses load the line first ("Read>Write",
	// Table 1's starred alternative) instead of writing past the cache.
	Allocate bool
}

// WriteThrough returns a write-through cache policy (the "*" rows of
// Table 1). Its two states are V (valid) and I; §3.3 equates V with S —
// a write-through cache is not capable of ownership, so it can never
// intervene and must invalidate on any non-broadcast write it snoops
// (§3.3 point 8).
func WriteThrough(cfg WriteThroughConfig) core.Policy {
	name := "write-through"
	writeHit, writeMiss := "S,IM,W", "I,IM,W"
	if cfg.Broadcast {
		name += "-broadcast"
		writeHit, writeMiss = "S,IM,BC,W", "I,IM,BC,W"
	}
	if cfg.Allocate {
		name += "-allocate"
		writeMiss = "Read>Write"
	}
	snoopWrite := "I"
	if cfg.Broadcast {
		// An update-style WT cache keeps its copy live on broadcast
		// writes; the class permits either.
		snoopWrite = "S,CH,SL"
	}
	states := []core.State{core.Shared, core.Invalid}
	t := core.TableFromCells(name, states, core.LocalEvents[:], core.BusEvents[:],
		[][]string{
			{"S", writeHit, "-", "I"},
			{"S,CA,R", writeMiss, "-", "-"},
		},
		[][]string{
			{"S,CH", "I", "S,CH", snoopWrite, "I", snoopWrite},
			{"I", "I", "I", "I", "I", "I"},
		})
	return NewPreferred(name, core.WriteThrough, mustInClass(t, core.WriteThrough))
}

// NonCaching returns the "**" rows of Table 1 as a policy. Dedicated
// uncached masters (cache.Uncached) hard-code the same two actions; the
// policy form exists for §3.4's selective use — marking an address
// region of a CACHED board uncacheable (cache.Region): reads fetch
// without retaining, writes go past the cache.
func NonCaching(broadcast bool) core.Policy {
	t := NonCachingTable(broadcast)
	return NewPreferred(t.Name, core.NonCaching, t)
}

// NonCachingTable returns the "**" rows of Table 1: the behaviour of a
// processor without a cache. It is used for class validation and table
// regeneration; actual uncached masters (cache.Uncached) hard-code the
// same two actions and never snoop.
func NonCachingTable(broadcast bool) *core.Table {
	write := "I,IM,W"
	name := "non-caching"
	if broadcast {
		write = "I,IM,BC,W"
		name = "non-caching-broadcast"
	}
	states := []core.State{core.Invalid}
	return core.TableFromCells(name, states, core.LocalEvents[:], nil,
		[][]string{{"I,R", write, "-", "-"}},
		[][]string{{}})
}
