package protocols

import "futurebus/internal/core"

// IllinoisTable returns the Illinois protocol as adapted to the
// Futurebus in Table 6 ([Papa84]). Two features of the original cannot
// be implemented exactly: memory cannot be updated during a dirty
// cache-to-cache transfer (replaced by BS abort, push, restart), and
// all-caches-respond-with-priority selection is not permitted (only the
// unique owner or memory responds). The S state here does NOT imply
// consistency with memory, unlike the original (§4.4).
func IllinoisTable() *core.Table { return core.PaperTable6() }

// Illinois returns the adapted Illinois protocol extended to the full
// event set.
func Illinois() core.Policy {
	t := Extend(core.PaperTable6(), StyleInvalidate)
	t.Name = "Illinois"
	return NewPreferred("Illinois", core.CopyBack, mustInClass(t, core.CopyBack))
}
