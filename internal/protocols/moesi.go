package protocols

import "futurebus/internal/core"

// moesiSnoopCells is the full Table 2 with the preferred (first)
// alternative in each cell; shared by every MOESI variant — the
// variants differ only in their local write behaviour.
func moesiSnoopCells(style Style) [][]string {
	deal := func(update, invalidate string) string {
		if style == StyleUpdate {
			return update
		}
		return invalidate
	}
	return [][]string{
		// col5        col6    col7          col8                         col9         col10
		{"O,CH,DI", "I,DI", "M,CH?,DI", "-", "M,CH?,DI", "M,CH?,SL"},
		{"O,CH,DI", "I,DI", "CH:O/M,DI", deal("S,CH,SL", "I"), "O,CH?,DI", "O,CH,SL"},
		{"S,CH", "I", "E,CH?", "-", "I", deal("E,CH?,SL", "I")},
		{"S,CH", "I", "S,CH", deal("S,CH,SL", "I"), "I", deal("S,CH,SL", "I")},
		{"I", "I", "I", "I", "I", "I"},
	}
}

func moesiTable(name string, writeO, writeS, writeI string, style Style) *core.Table {
	states := core.States[:]
	return core.TableFromCells(name, states, core.LocalEvents[:], core.BusEvents[:],
		[][]string{
			{"M", "M", "E,CA,BC?,W", "I,BC?,W"},
			{"O", writeO, "CH:S/E,CA,BC?,W", "I,BC?,W"},
			{"E", "M", "-", "I"},
			{"S", writeS, "-", "I"},
			{"CH:S/E,CA,R", writeI, "-", "-"},
		},
		moesiSnoopCells(style))
}

// MOESI returns the paper's preferred protocol: the first entry of
// every cell of Tables 1 and 2. Writes to shared lines broadcast the
// modification (the observation from [Arch85] that §5.2 endorses:
// "it was desirable to broadcast writes to other caches rather than to
// invalidate them"); write misses fetch with intent to modify.
func MOESI() core.Policy {
	t := mustInClass(moesiTable("MOESI",
		"CH:O/M,CA,IM,BC,W", "CH:O/M,CA,IM,BC,W", "M,CA,IM,R", StyleUpdate), core.CopyBack)
	return NewPreferred("MOESI", core.CopyBack, t)
}

// MOESIInvalidate returns the invalidation-based member of the class:
// writes to shared lines invalidate the other copies with an
// address-only transaction (Table 1's second alternative, "M,CA,IM"),
// like Berkeley but keeping the E state.
func MOESIInvalidate() core.Policy {
	t := mustInClass(moesiTable("MOESI-invalidate",
		"M,CA,IM", "M,CA,IM", "M,CA,IM,R", StyleInvalidate), core.CopyBack)
	return NewPreferred("MOESI-invalidate", core.CopyBack, t)
}

// MOESIUpdate returns the fully update-based member: like the preferred
// protocol, but write misses load the line first and then broadcast
// ("Read>Write"), keeping every sharer's copy live — Dragon's
// behaviour expressed over the full class.
func MOESIUpdate() core.Policy {
	t := mustInClass(moesiTable("MOESI-update",
		"CH:O/M,CA,IM,BC,W", "CH:O/M,CA,IM,BC,W", "Read>Write", StyleUpdate), core.CopyBack)
	return NewPreferred("MOESI-update", core.CopyBack, t)
}
