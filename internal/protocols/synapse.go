package protocols

import "futurebus/internal/core"

// Synapse returns the consistency scheme of the Synapse N+1 ([Fran84],
// cited in the paper's introduction), expressed on the Futurebus. The
// paper does not tabulate it, so this is this repository's §4-style
// adaptation, built the same way the paper adapts Illinois:
//
//   - three states (M, S, I — Synapse's "valid" maps to S like the
//     write-through V, §3.3), no cache-to-cache transfer at all: a
//     dirty owner never intervenes; it asserts BS, pushes the line to
//     memory and INVALIDATES itself ("BS;I,W" — unlike
//     Illinois/Write-Once it keeps nothing), and the retried access is
//     served by memory;
//   - writes to shared lines take ownership with an address-only
//     invalidate (the historical machine re-read the line through its
//     read-invalidate ownership request; the address-only upgrade is
//     the class-legal equivalent — see TestSynapseRefetchVariant for
//     the refetch form, which the model checker also proves safe);
//   - write misses are read-for-modify.
//
// Like Illinois, the result needs the BS extension but no §4 adapted
// local actions, so it mixes safely with any class member.
func Synapse() core.Policy {
	states := []core.State{core.Modified, core.Shared, core.Invalid}
	locals := []core.LocalEvent{core.LocalRead, core.LocalWrite}
	buses := []core.BusEvent{core.BusCacheRead, core.BusCacheRFO}
	t := core.TableFromCells("Synapse", states, locals, buses,
		[][]string{
			{"M", "M"},
			{"S", "M,CA,IM"},
			{"S,CA,R", "M,CA,IM,R"},
		},
		[][]string{
			{"BS;I,W", "BS;I,W"},
			{"S,CH", "I"},
			{"I", "I"},
		})
	full := Extend(t, StyleInvalidate)
	full.Name = "Synapse"
	return NewPreferred("Synapse", core.CopyBack, mustInClass(full, core.CopyBack))
}

// SynapseRefetchTable is the historically faithful write-hit behaviour:
// the Synapse machine did not trust its shared copy and re-read the
// line with its read-invalidate ownership request ("M,CA,IM,R" from S).
// That action is not printed in Table 1 — it is strictly more
// conservative than the address-only upgrade (it refetches through
// column 6, where any owner supplies the current line and every copy
// dies) — so it validates as NotInClass under the letter of the paper
// while the model checker proves it safe (see the verify tests). It is
// exposed for that analysis, not registered for simulation.
func SynapseRefetchTable() *core.Table {
	states := []core.State{core.Modified, core.Shared, core.Invalid}
	locals := []core.LocalEvent{core.LocalRead, core.LocalWrite}
	buses := []core.BusEvent{core.BusCacheRead, core.BusCacheRFO}
	t := core.TableFromCells("Synapse (refetch)", states, locals, buses,
		[][]string{
			{"M", "M"},
			{"S", "M,CA,IM,R"},
			{"S,CA,R", "M,CA,IM,R"},
		},
		[][]string{
			{"BS;I,W", "BS;I,W"},
			{"S,CH", "I"},
			{"I", "I"},
		})
	full := Extend(t, StyleInvalidate)
	full.Name = "Synapse (refetch)"
	return full
}
