package protocols

import "futurebus/internal/core"

// DragonTable returns the Dragon protocol exactly as the paper defines
// it in Table 4 (the Xerox PARC Dragon [McCr84], via [Arch85]). It is
// implementable almost exactly on the Futurebus; the one difference is
// that Futurebus broadcast writes also update main memory, an extra
// update that causes no incompatibility (§4.2). It is a class member.
func DragonTable() *core.Table { return core.PaperTable4() }

// Dragon returns the Dragon protocol extended to the full Futurebus
// event set (update style) and wrapped in a preferred-choice policy.
func Dragon() core.Policy {
	t := Extend(core.PaperTable4(), StyleUpdate)
	t.Name = "Dragon"
	return NewPreferred("Dragon", core.CopyBack, mustInClass(t, core.CopyBack))
}
