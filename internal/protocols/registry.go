package protocols

import (
	"fmt"
	"sort"

	"futurebus/internal/core"
)

// Factory creates a fresh policy instance. Dynamic policies (random,
// round-robin) carry per-instance state, so every cache gets its own.
type Factory func() core.Policy

// registry maps protocol names to factories for the command-line tools
// and the experiment harness.
var registry = map[string]Factory{
	"moesi":            MOESI,
	"moesi-invalidate": MOESIInvalidate,
	"moesi-update":     MOESIUpdate,
	"moesi-adaptive":   func() core.Policy { return NewAdaptive() },
	"berkeley":         Berkeley,
	"dragon":           Dragon,
	"write-once":       WriteOnce,
	"illinois":         Illinois,
	"synapse":          Synapse,
	"firefly":          Firefly,
	"write-through": func() core.Policy {
		return WriteThrough(WriteThroughConfig{})
	},
	"write-through-broadcast": func() core.Policy {
		return WriteThrough(WriteThroughConfig{Broadcast: true})
	},
	"random":      func() core.Policy { return NewRandom(0xf0f0f0f0) },
	"round-robin": func() core.Policy { return NewRoundRobin() },
}

// New creates a policy by registry name.
func New(name string) (core.Policy, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("protocols: unknown protocol %q (known: %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registered protocol names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// PureOnly reports whether the named protocol uses §4 adapted actions
// and must therefore run in a protocol-pure system (never share a bus
// with O-capable boards). See core.RequiresAdaptation.
func PureOnly(name string) bool {
	p, err := New(name)
	if err != nil {
		return false
	}
	return core.Validate(p.Table(), p.Variant()).Verdict == core.RequiresAdaptation
}
