package protocols

import "futurebus/internal/core"

// Adaptive is the §5.2 refinement of the preferred MOESI protocol: on a
// snooped broadcast write, a copy that is recently used in its set is
// updated (it will probably be referenced again), while a copy nearing
// replacement is discarded (updating it would waste a transfer on a
// dying line). All other cells follow the preferred table. Compare with
// the related idea in [Puza83].
type Adaptive struct {
	*Preferred
}

// NewAdaptive creates the recency-adaptive MOESI policy.
func NewAdaptive() *Adaptive {
	t := moesiTable("MOESI-adaptive",
		"CH:O/M,CA,IM,BC,W", "CH:O/M,CA,IM,BC,W", "M,CA,IM,R", StyleUpdate)
	// Carry both class alternatives in the broadcast-write cells so the
	// recency hook can pick between update and discard.
	both := func(s core.State, e core.BusEvent, cell string) {
		alts, err := core.ParseSnoopCell(cell)
		if err != nil {
			panic(err)
		}
		t.SetSnoop(s, e, alts...)
	}
	both(core.Owned, core.BusCacheBroadcastWrite, "S,CH,SL or I")
	both(core.Shared, core.BusCacheBroadcastWrite, "S,CH,SL or I")
	both(core.Exclusive, core.BusPlainBroadcastWrite, "E,CH?,SL or I")
	both(core.Shared, core.BusPlainBroadcastWrite, "S,CH,SL or I")
	return &Adaptive{Preferred: NewPreferred("MOESI-adaptive", core.CopyBack, mustInClass(t, core.CopyBack))}
}

// ChooseSnoopRecency implements core.RecencyAware: on broadcast writes
// (columns 8 and 10) choose update for recently used lines and
// invalidate for lines nearing replacement, wherever the class offers
// the choice.
func (p *Adaptive) ChooseSnoopRecency(s core.State, e core.BusEvent, recentlyUsed bool) (core.SnoopAction, bool) {
	alts := p.Table().Snoop(s, e)
	if len(alts) == 0 {
		return core.SnoopAction{}, false
	}
	if e != core.BusCacheBroadcastWrite && e != core.BusPlainBroadcastWrite {
		return alts[0], true
	}
	// Owners (M, O on column 10) have no invalidate option; for the
	// rest, pick by recency.
	var update, invalidate *core.SnoopAction
	for i := range alts {
		a := alts[i]
		switch {
		case a.AssertSL:
			if update == nil {
				update = &alts[i]
			}
		case !a.Next.Conditional() && a.Next.NoCH == core.Invalid:
			if invalidate == nil {
				invalidate = &alts[i]
			}
		}
	}
	// The adaptive table prefers update; fall back to the class's
	// second alternative (I) for stale lines.
	if !recentlyUsed && invalidate != nil {
		return *invalidate, true
	}
	if update != nil {
		return *update, true
	}
	return alts[0], true
}

var _ core.RecencyAware = (*Adaptive)(nil)
