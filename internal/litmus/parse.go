package litmus

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads a litmus script. The grammar is line-oriented:
//
//	name: <free text>
//	boards: <protocol>[, <protocol>…]        # ".s4" suffix = sector cache
//	linesize: <bytes>                        # optional, default 32
//	addr <Name> = <line address>
//	proc <PName>:
//	  write <Line>[<word>] <value>
//	  read  <Line>[<word>] -> <reg>
//	  fetchadd <Line>[<word>] <delta> -> <reg>
//	  flush <Line>
//	  pass <Line>
//	schedules: <n>                           # optional, default 32
//	assert <always|sometimes|never> <operand> <==|!=> <operand>
//	assert consistent
//
// Operands: a register (bare or P-qualified), `final mem
// <Line>[<word>]`, or an integer literal. '#' starts a comment.
func Parse(r io.Reader) (*Test, error) {
	t := &Test{
		Addrs:     map[string]uint64{},
		Sector:    map[int]int{},
		Schedules: 32,
		LineSize:  32,
	}
	var cur *Program
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		indented := strings.HasPrefix(line, " ") || strings.HasPrefix(line, "\t")
		if err := t.parseLine(trimmed, indented, &cur); err != nil {
			return nil, fmt.Errorf("litmus line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Late-resolve bare register names in assertions.
	for i := range t.Assertions {
		a := &t.Assertions[i]
		if a.Consistent {
			continue
		}
		ops := []*Operand{&a.Cond.Left, &a.Cond.Right}
		if a.Premise != nil {
			ops = append(ops, &a.Premise.Left, &a.Premise.Right)
		}
		for _, op := range ops {
			if op.Reg == "" {
				continue
			}
			full, err := t.resolveReg(op.Reg)
			if err != nil {
				return nil, fmt.Errorf("litmus: %s: %w", a.Src, err)
			}
			op.Reg = full
		}
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ParseString parses a script held in a string.
func ParseString(s string) (*Test, error) { return Parse(strings.NewReader(s)) }

func (t *Test) parseLine(line string, indented bool, cur **Program) error {
	if indented && *cur != nil {
		op, err := parseOp(line)
		if err != nil {
			return err
		}
		(*cur).Ops = append((*cur).Ops, op)
		return nil
	}
	*cur = nil
	switch {
	case strings.HasPrefix(line, "name:"):
		t.Name = strings.TrimSpace(strings.TrimPrefix(line, "name:"))
	case strings.HasPrefix(line, "boards:"):
		for i, b := range strings.Split(strings.TrimPrefix(line, "boards:"), ",") {
			name := strings.TrimSpace(b)
			if base, subs, ok := strings.Cut(name, ".s"); ok {
				n, err := strconv.Atoi(subs)
				if err != nil {
					return fmt.Errorf("bad sector suffix in %q", name)
				}
				name = base
				t.Sector[i] = n
			}
			t.Boards = append(t.Boards, name)
		}
	case strings.HasPrefix(line, "linesize:"):
		n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "linesize:")))
		if err != nil {
			return err
		}
		t.LineSize = n
	case strings.HasPrefix(line, "schedules:"):
		n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "schedules:")))
		if err != nil {
			return err
		}
		t.Schedules = n
	case strings.HasPrefix(line, "addr "):
		rest := strings.TrimPrefix(line, "addr ")
		name, val, ok := strings.Cut(rest, "=")
		if !ok {
			return fmt.Errorf("malformed addr declaration %q", line)
		}
		addr, err := strconv.ParseUint(strings.TrimSpace(val), 0, 64)
		if err != nil {
			return err
		}
		t.Addrs[strings.TrimSpace(name)] = addr
	case strings.HasPrefix(line, "proc "):
		name := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(line, "proc ")), ":")
		t.Programs = append(t.Programs, Program{Name: name})
		*cur = &t.Programs[len(t.Programs)-1]
	case strings.HasPrefix(line, "assert "):
		a, err := t.parseAssert(strings.TrimPrefix(line, "assert "))
		if err != nil {
			return err
		}
		a.Src = line
		t.Assertions = append(t.Assertions, a)
	default:
		return fmt.Errorf("unrecognised line %q", line)
	}
	return nil
}

// parseLoc parses "Line[word]".
func parseLoc(s string) (string, int, error) {
	name, rest, ok := strings.Cut(s, "[")
	if !ok || !strings.HasSuffix(rest, "]") {
		return "", 0, fmt.Errorf("malformed location %q (want Line[word])", s)
	}
	w, err := strconv.Atoi(strings.TrimSuffix(rest, "]"))
	if err != nil {
		return "", 0, err
	}
	return name, w, nil
}

func parseOp(line string) (Op, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Op{}, fmt.Errorf("empty op")
	}
	switch fields[0] {
	case "write":
		if len(fields) != 3 {
			return Op{}, fmt.Errorf("write wants: write Line[word] value")
		}
		line, w, err := parseLoc(fields[1])
		if err != nil {
			return Op{}, err
		}
		v, err := strconv.ParseUint(fields[2], 0, 32)
		if err != nil {
			return Op{}, err
		}
		return Op{Write: true, Line: line, Word: w, Value: uint32(v)}, nil
	case "read":
		if len(fields) != 4 || fields[2] != "->" {
			return Op{}, fmt.Errorf("read wants: read Line[word] -> reg")
		}
		line, w, err := parseLoc(fields[1])
		if err != nil {
			return Op{}, err
		}
		return Op{Line: line, Word: w, Reg: fields[3]}, nil
	case "fetchadd":
		if len(fields) != 5 || fields[3] != "->" {
			return Op{}, fmt.Errorf("fetchadd wants: fetchadd Line[word] delta -> reg")
		}
		line, w, err := parseLoc(fields[1])
		if err != nil {
			return Op{}, err
		}
		v, err := strconv.ParseUint(fields[2], 0, 32)
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: "fetchadd", Line: line, Word: w, Value: uint32(v), Reg: fields[4]}, nil
	case "flush", "pass":
		if len(fields) != 2 {
			return Op{}, fmt.Errorf("%s wants a line name", fields[0])
		}
		return Op{Kind: fields[0], Line: fields[1]}, nil
	}
	return Op{}, fmt.Errorf("unknown op %q", fields[0])
}

func (t *Test) parseAssert(rest string) (Assertion, error) {
	rest = strings.TrimSpace(rest)
	if rest == "consistent" {
		return Assertion{Consistent: true}, nil
	}
	kindStr, cond, ok := strings.Cut(rest, " ")
	if !ok {
		return Assertion{}, fmt.Errorf("malformed assertion %q", rest)
	}
	var kind AssertKind
	switch kindStr {
	case "always":
		kind = Always
	case "sometimes":
		kind = Sometimes
	case "never":
		kind = Never
	default:
		return Assertion{}, fmt.Errorf("unknown quantifier %q", kindStr)
	}
	a := Assertion{Kind: kind}
	cond = strings.TrimSpace(cond)
	if rest, ok := strings.CutPrefix(cond, "if "); ok {
		premiseStr, condStr, found := strings.Cut(rest, " then ")
		if !found {
			return Assertion{}, fmt.Errorf("implication %q needs 'then'", cond)
		}
		premise, err := parseComparison(premiseStr)
		if err != nil {
			return Assertion{}, err
		}
		a.Premise = &premise
		cond = condStr
	}
	c, err := parseComparison(cond)
	if err != nil {
		return Assertion{}, err
	}
	a.Cond = c
	if a.Premise != nil && a.Kind == Never {
		// A vacuously-true implication satisfies "never"'s inner
		// condition in every schedule where the premise is false, which
		// is certainly not what the author meant.
		return Assertion{}, fmt.Errorf("'never if P then C' is a footgun (vacuous truth); write 'always if P then <negation of C>'")
	}
	return a, nil
}

func parseComparison(cond string) (Comparison, error) {
	eq := true
	lhs, rhs, ok := strings.Cut(cond, "==")
	if !ok {
		lhs, rhs, ok = strings.Cut(cond, "!=")
		eq = false
	}
	if !ok {
		return Comparison{}, fmt.Errorf("comparison %q needs == or !=", cond)
	}
	left, err := parseOperand(strings.TrimSpace(lhs))
	if err != nil {
		return Comparison{}, err
	}
	right, err := parseOperand(strings.TrimSpace(rhs))
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{Left: left, Eq: eq, Right: right}, nil
}

func parseOperand(s string) (Operand, error) {
	if rest, ok := strings.CutPrefix(s, "final mem "); ok {
		line, w, err := parseLoc(strings.TrimSpace(rest))
		if err != nil {
			return Operand{}, err
		}
		return Operand{Mem: true, Line: line, Word: w}, nil
	}
	if v, err := strconv.ParseUint(s, 0, 32); err == nil {
		return Operand{Lit: uint32(v)}, nil
	}
	if s == "" {
		return Operand{}, fmt.Errorf("empty operand")
	}
	return Operand{Reg: s}, nil
}
