package litmus

import (
	"fmt"
	"strings"
	"sync"

	"futurebus/internal/bus"
	"futurebus/internal/core"
	"futurebus/internal/obs"
	"futurebus/internal/obs/watch"
	"futurebus/internal/sim"
	"futurebus/internal/workload"
)

// Result is the outcome of running a test over all its schedules.
type Result struct {
	Test      *Test
	Schedules int
	// Failures lists every assertion breach, with the schedule that
	// produced it where applicable.
	Failures []string
	// Witness maps "sometimes" assertions to a schedule that satisfied
	// them (diagnostics).
	Witness map[string]int
}

// Ok reports whether every assertion held.
func (r *Result) Ok() bool { return len(r.Failures) == 0 }

func (r *Result) String() string {
	if r.Ok() {
		return fmt.Sprintf("%s: PASS (%d schedules)", r.Test.Name, r.Schedules)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: FAIL (%d schedules)", r.Test.Name, r.Schedules)
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "\n  %s", f)
	}
	return b.String()
}

// Run executes the test: the two sequential extremes plus
// Test.Schedules seeded random interleavings, each on a fresh system,
// and evaluates the assertions over all outcomes.
func Run(t *Test) (*Result, error) {
	res := &Result{Test: t, Witness: map[string]int{}}
	sometimesSeen := map[int]bool{}

	schedules := t.Schedules + 2
	res.Schedules = schedules
	for sched := 0; sched < schedules; sched++ {
		regs, mem, consistentErr, err := runOnce(t, sched)
		if err != nil {
			return nil, err
		}
		for ai, a := range t.Assertions {
			if a.Consistent {
				if consistentErr != nil {
					res.Failures = append(res.Failures,
						fmt.Sprintf("schedule %d: consistency violated: %v", sched, consistentErr))
				}
				continue
			}
			holds := evalAssertion(t, a, regs, mem)
			switch a.Kind {
			case Always:
				if !holds {
					res.Failures = append(res.Failures,
						fmt.Sprintf("schedule %d: %q does not hold (%s)", sched, a.Src, describeEnv(a, regs, mem)))
				}
			case Never:
				if holds {
					res.Failures = append(res.Failures,
						fmt.Sprintf("schedule %d: %q holds but must never (%s)", sched, a.Src, describeEnv(a, regs, mem)))
				}
			case Sometimes:
				if holds && !sometimesSeen[ai] {
					sometimesSeen[ai] = true
					res.Witness[a.Src] = sched
				}
			}
		}
	}
	for ai, a := range t.Assertions {
		if !a.Consistent && a.Kind == Sometimes && !sometimesSeen[ai] {
			res.Failures = append(res.Failures,
				fmt.Sprintf("%q never held over %d schedules", a.Src, schedules))
		}
	}
	return res, nil
}

// runOnce executes one schedule and returns the register file, the
// final memory view of the declared lines, and the consistency verdict.
func runOnce(t *Test, sched int) (map[string]uint32, map[string]map[int]uint32, error, error) {
	boards := make([]sim.BoardSpec, len(t.Boards))
	for i, name := range t.Boards {
		boards[i] = sim.BoardSpec{Protocol: name, SectorSubs: t.Sector[i]}
	}
	var mon *watch.Monitor
	var rec *obs.Recorder
	if t.Watch {
		mon = watch.New(watch.Config{})
		rec = obs.New(mon)
	}
	sys, err := sim.New(sim.Config{
		LineSize:   t.LineSize,
		Boards:     boards,
		Shadow:     true,
		Paranoid:   true,
		Shards:     t.Shards,
		Tenure:     t.Tenure,
		Discipline: t.Discipline,
		Obs:        rec,
	})
	if err != nil {
		return nil, nil, nil, err
	}

	// Build the interleaving: schedule 0 runs programs in order,
	// schedule 1 in reverse, the rest draw the next program at random.
	var order []int
	remaining := make([]int, len(t.Programs))
	total := 0
	for i, p := range t.Programs {
		remaining[i] = len(p.Ops)
		total += len(p.Ops)
	}
	rng := workload.NewRNG(uint64(sched)*0x9e3779b9 + 7)
	pick := func() int {
		switch sched {
		case 0:
			for i, r := range remaining {
				if r > 0 {
					return i
				}
			}
		case 1:
			for i := len(remaining) - 1; i >= 0; i-- {
				if remaining[i] > 0 {
					return i
				}
			}
		}
		for {
			i := rng.Intn(len(remaining))
			if remaining[i] > 0 {
				return i
			}
		}
	}
	for len(order) < total {
		i := pick()
		order = append(order, i)
		remaining[i]--
	}

	regs := map[string]uint32{}
	pcs := make([]int, len(t.Programs))
	for _, pi := range order {
		p := &t.Programs[pi]
		op := p.Ops[pcs[pi]]
		pcs[pi]++
		board := sys.Boards[pi]
		addr := bus.Addr(t.Addrs[op.Line])
		switch op.Kind {
		case "flush", "pass":
			c, ok := board.(interface {
				Flush(bus.Addr) error
				Pass(bus.Addr) error
			})
			if !ok {
				return nil, nil, nil, fmt.Errorf("litmus %s: board %d cannot %s", t.Name, pi, op.Kind)
			}
			if op.Kind == "flush" {
				err = c.Flush(addr)
			} else {
				err = c.Pass(addr)
			}
		case "fetchadd":
			c, ok := board.(interface {
				FetchAdd(bus.Addr, int, uint32) (uint32, error)
			})
			if !ok {
				return nil, nil, nil, fmt.Errorf("litmus %s: board %d cannot fetchadd", t.Name, pi)
			}
			var old uint32
			old, err = c.FetchAdd(addr, op.Word, op.Value)
			regs[p.Name+"."+op.Reg] = old
		default:
			if op.Write {
				err = board.Write(addr, op.Word, op.Value)
			} else {
				var v uint32
				v, err = board.Read(addr, op.Word)
				regs[p.Name+"."+op.Reg] = v
			}
		}
		if err != nil {
			return nil, nil, nil, fmt.Errorf("litmus %s schedule %d: %s %s: %w", t.Name, sched, p.Name, op, err)
		}
	}

	// Final memory view: flush every board's copies so memory holds the
	// image, then read the declared lines.
	memView := map[string]map[int]uint32{}
	for name, lineAddr := range t.Addrs {
		// A clean command forces any owner to push without disturbing
		// copies.
		if err := cleanAll(sys, bus.Addr(lineAddr)); err != nil {
			return nil, nil, nil, err
		}
		words := map[int]uint32{}
		line := sys.Memory.Peek(bus.Addr(lineAddr))
		for w := 0; w*4 < len(line); w++ {
			words[w] = uint32(line[w*4]) | uint32(line[w*4+1])<<8 |
				uint32(line[w*4+2])<<16 | uint32(line[w*4+3])<<24
		}
		memView[name] = words
	}

	if rec != nil {
		if err := rec.Close(); err != nil {
			return nil, nil, nil, err
		}
		if rep := mon.Report(); rep.Total != 0 {
			return nil, nil, nil, fmt.Errorf("litmus %s schedule %d: invariant monitor: %s",
				t.Name, sched, rep.Summary())
		}
	}
	return regs, memView, sys.Checker().MustPass(), nil
}

// cleanAll issues CmdClean from a controller id: any owner pushes the
// line so memory holds the image, copies survive.
func cleanAll(sys *sim.System, addr bus.Addr) error {
	_, err := sys.Bus.Execute(&bus.Transaction{
		MasterID: 1 << 20,
		Cmd:      bus.CmdClean,
		Op:       core.BusAddrOnly,
		Addr:     addr,
	})
	return err
}

func evalOperand(t *Test, o Operand, regs map[string]uint32, mem map[string]map[int]uint32) uint32 {
	switch {
	case o.Reg != "":
		return regs[o.Reg]
	case o.Mem:
		return mem[o.Line][o.Word]
	default:
		return o.Lit
	}
}

func evalComparison(t *Test, c Comparison, regs map[string]uint32, mem map[string]map[int]uint32) bool {
	l := evalOperand(t, c.Left, regs, mem)
	r := evalOperand(t, c.Right, regs, mem)
	if c.Eq {
		return l == r
	}
	return l != r
}

func evalAssertion(t *Test, a Assertion, regs map[string]uint32, mem map[string]map[int]uint32) bool {
	if a.Premise != nil && !evalComparison(t, *a.Premise, regs, mem) {
		return true // implication with a false premise holds vacuously
	}
	return evalComparison(t, a.Cond, regs, mem)
}

func describeEnv(a Assertion, regs map[string]uint32, mem map[string]map[int]uint32) string {
	var parts []string
	operands := []Operand{a.Cond.Left, a.Cond.Right}
	if a.Premise != nil {
		operands = append(operands, a.Premise.Left, a.Premise.Right)
	}
	for _, o := range operands {
		switch {
		case o.Reg != "":
			parts = append(parts, fmt.Sprintf("%s=%d", o.Reg, regs[o.Reg]))
		case o.Mem:
			parts = append(parts, fmt.Sprintf("mem %s[%d]=%d", o.Line, o.Word, mem[o.Line][o.Word]))
		}
	}
	return strings.Join(parts, ", ")
}

// RunParallel executes the programs as real goroutines (no scripted
// interleaving) `rounds` times: scheduling comes from the Go runtime,
// so under `go test -race` this doubles as a race hunt through the
// litmus scenarios. Only schedule-independent assertions are checked
// ("always" implications, "never", and per-round consistency);
// "sometimes" needs controlled schedules and is skipped.
func RunParallel(t *Test, rounds int) (*Result, error) {
	res := &Result{Test: t, Schedules: rounds, Witness: map[string]int{}}
	for round := 0; round < rounds; round++ {
		regs, mem, consistentErr, err := runParallelOnce(t, round)
		if err != nil {
			return nil, err
		}
		for _, a := range t.Assertions {
			if a.Consistent {
				if consistentErr != nil {
					res.Failures = append(res.Failures,
						fmt.Sprintf("round %d: consistency violated: %v", round, consistentErr))
				}
				continue
			}
			if a.Kind == Sometimes {
				continue
			}
			holds := evalAssertion(t, a, regs, mem)
			if a.Kind == Always && !holds {
				res.Failures = append(res.Failures,
					fmt.Sprintf("round %d: %q does not hold (%s)", round, a.Src, describeEnv(a, regs, mem)))
			}
			if a.Kind == Never && holds {
				res.Failures = append(res.Failures,
					fmt.Sprintf("round %d: %q holds but must never (%s)", round, a.Src, describeEnv(a, regs, mem)))
			}
		}
	}
	return res, nil
}

func runParallelOnce(t *Test, round int) (map[string]uint32, map[string]map[int]uint32, error, error) {
	boards := make([]sim.BoardSpec, len(t.Boards))
	for i, name := range t.Boards {
		boards[i] = sim.BoardSpec{Protocol: name, SectorSubs: t.Sector[i]}
	}
	var mon *watch.Monitor
	var rec *obs.Recorder
	if t.Watch {
		mon = watch.New(watch.Config{})
		rec = obs.New(mon)
	}
	sys, err := sim.New(sim.Config{
		LineSize:   t.LineSize,
		Boards:     boards,
		Shadow:     true,
		Shards:     t.Shards,
		Tenure:     t.Tenure,
		Discipline: t.Discipline,
		Obs:        rec,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	type regWrite struct {
		name string
		val  uint32
	}
	results := make(chan regWrite, 64)
	errs := make([]error, len(t.Programs))
	var wg sync.WaitGroup
	for pi := range t.Programs {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			p := &t.Programs[pi]
			board := sys.Boards[pi]
			for _, op := range p.Ops {
				addr := bus.Addr(t.Addrs[op.Line])
				var err error
				switch op.Kind {
				case "flush", "pass":
					c, ok := board.(interface {
						Flush(bus.Addr) error
						Pass(bus.Addr) error
					})
					if !ok {
						err = fmt.Errorf("board %d cannot %s", pi, op.Kind)
					} else if op.Kind == "flush" {
						err = c.Flush(addr)
					} else {
						err = c.Pass(addr)
					}
				case "fetchadd":
					c, ok := board.(interface {
						FetchAdd(bus.Addr, int, uint32) (uint32, error)
					})
					if !ok {
						err = fmt.Errorf("board %d cannot fetchadd", pi)
					} else {
						var old uint32
						old, err = c.FetchAdd(addr, op.Word, op.Value)
						results <- regWrite{p.Name + "." + op.Reg, old}
					}
				default:
					if op.Write {
						err = board.Write(addr, op.Word, op.Value)
					} else {
						var v uint32
						v, err = board.Read(addr, op.Word)
						results <- regWrite{p.Name + "." + op.Reg, v}
					}
				}
				if err != nil {
					errs[pi] = err
					return
				}
			}
		}(pi)
	}
	wg.Wait()
	close(results)
	for _, err := range errs {
		if err != nil {
			return nil, nil, nil, err
		}
	}
	regs := map[string]uint32{}
	for rw := range results {
		regs[rw.name] = rw.val
	}

	memView := map[string]map[int]uint32{}
	for name, lineAddr := range t.Addrs {
		if err := cleanAll(sys, bus.Addr(lineAddr)); err != nil {
			return nil, nil, nil, err
		}
		words := map[int]uint32{}
		line := sys.Memory.Peek(bus.Addr(lineAddr))
		for w := 0; w*4 < len(line); w++ {
			words[w] = uint32(line[w*4]) | uint32(line[w*4+1])<<8 |
				uint32(line[w*4+2])<<16 | uint32(line[w*4+3])<<24
		}
		memView[name] = words
	}
	if rec != nil {
		if err := rec.Close(); err != nil {
			return nil, nil, nil, err
		}
		if rep := mon.Report(); rep.Total != 0 {
			return nil, nil, nil, fmt.Errorf("litmus %s round %d: invariant monitor: %s",
				t.Name, round, rep.Summary())
		}
	}
	return regs, memView, sys.Checker().MustPass(), nil
}
