package litmus

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `
name: sample
boards: moesi, dragon
addr X = 0x10
addr Y = 0x20

proc P0:
  write X[0] 1
  read  Y[0] -> a
proc P1:
  write Y[0] 2
  read  X[0] -> b

schedules: 8
assert always if b == 1 then b != 2
assert sometimes b == 1
assert never final mem X[0] == 7
assert consistent
`

// TestParseSample: structure, register resolution, implication.
func TestParseSample(t *testing.T) {
	tst, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if tst.Name != "sample" || len(tst.Boards) != 2 || len(tst.Programs) != 2 {
		t.Fatalf("parsed %+v", tst)
	}
	if tst.Addrs["X"] != 0x10 || tst.Addrs["Y"] != 0x20 {
		t.Errorf("addrs %v", tst.Addrs)
	}
	if got := tst.Programs[0].Ops[0].String(); got != "write X[0] 1" {
		t.Errorf("op renders %q", got)
	}
	if len(tst.Assertions) != 4 {
		t.Fatalf("assertions %d", len(tst.Assertions))
	}
	impl := tst.Assertions[0]
	if impl.Premise == nil || impl.Premise.Left.Reg != "P1.b" {
		t.Errorf("implication premise %+v", impl.Premise)
	}
	if tst.Assertions[1].Cond.Left.Reg != "P1.b" {
		t.Errorf("bare register not resolved: %+v", tst.Assertions[1].Cond.Left)
	}
	if !tst.Assertions[3].Consistent {
		t.Error("consistent assertion lost")
	}
}

// TestParseErrors: each malformed construct is rejected with a line
// number.
func TestParseErrors(t *testing.T) {
	cases := []string{
		"nonsense line\n",
		"boards: moesi\nproc P0:\n  write X[0] 1\n",                                             // undeclared line
		"boards: moesi\naddr X = 0x1\nproc P0:\n  write X 1\n",                                  // bad location
		"boards: moesi\naddr X = 0x1\nproc P0:\n  read X[0] -> a\nassert always q == 1\n",       // unknown register
		"boards: moesi\naddr X = 0x1\nproc P0:\n  frobnicate X\n",                               // unknown op
		"boards: moesi\naddr X = 0x1\nproc P0:\n  read X[0] -> a\nassert maybe a == 1\n",        // unknown quantifier
		"boards: moesi\naddr X = 0x1\nproc P0:\n  read X[0] -> a\nassert always a = 1\n",        // bad comparison
		"addr X = 0x1\nproc P0:\n  read X[0] -> a\nproc P1:\n  read X[0] -> b\nboards: moesi\n", // more programs than boards
		"boards: moesi.sx\naddr X = 0x1\nproc P0:\n  read X[0] -> a\n",                          // bad sector suffix
	}
	for i, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("case %d accepted:\n%s", i, src)
		}
	}
}

// TestAmbiguousRegister: two programs with the same bare register name
// must be qualified.
func TestAmbiguousRegister(t *testing.T) {
	src := `
boards: moesi, moesi
addr X = 0x1
proc P0:
  read X[0] -> a
proc P1:
  read X[0] -> a
assert always a == 0
`
	if _, err := ParseString(src); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous register accepted: %v", err)
	}
	src = strings.Replace(src, "assert always a == 0", "assert always P0.a == P1.a", 1)
	if _, err := ParseString(src); err != nil {
		t.Errorf("qualified register rejected: %v", err)
	}
}

// TestRunSample: the sample passes, and the witness map is filled.
func TestRunSample(t *testing.T) {
	tst, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tst)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("sample failed:\n%s", res)
	}
	if res.Schedules != 10 {
		t.Errorf("schedules = %d", res.Schedules)
	}
}

// TestAssertionFailureModes: always/never/sometimes violations are each
// reported with usable messages.
func TestAssertionFailureModes(t *testing.T) {
	base := `
boards: moesi, moesi
addr X = 0x10
proc P0:
  write X[0] 1
proc P1:
  read X[0] -> r
schedules: 6
`
	cases := []struct {
		assert string
		want   string
	}{
		{"assert always r == 99", "does not hold"},
		{"assert never final mem X[0] == 1", "must never"},
		{"assert sometimes r == 42", "never held"},
	}
	for _, c := range cases {
		tst, err := ParseString(base + c.assert + "\n")
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(tst)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ok() {
			t.Errorf("%q passed, should fail", c.assert)
			continue
		}
		if !strings.Contains(res.String(), c.want) {
			t.Errorf("%q failure message %q lacks %q", c.assert, res.String(), c.want)
		}
	}
}

// TestShippedLitmusFiles: every .litmus file in the repository passes.
func TestShippedLitmusFiles(t *testing.T) {
	files, err := filepath.Glob("../../litmus/*.litmus")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("expected shipped litmus files, found %v", files)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			tst, err := Parse(f)
			if err != nil {
				t.Fatal(err)
			}
			// Keep unit-test time bounded.
			if tst.Schedules > 24 {
				tst.Schedules = 24
			}
			res, err := Run(tst)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Ok() {
				t.Fatalf("%s", res)
			}
		})
	}
}

// TestShippedLitmusFilesSharded: the shipped suite again, on a 2-shard
// interleaved backplane. Outcomes must match the single-bus runs —
// every assertion observes per-line order only, and the fabric
// serialises each line on its home shard.
func TestShippedLitmusFilesSharded(t *testing.T) {
	files, err := filepath.Glob("../../litmus/*.litmus")
	if err != nil || len(files) == 0 {
		t.Fatalf("glob: %v %v", files, err)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			tst, err := Parse(f)
			if err != nil {
				t.Fatal(err)
			}
			tst.Shards = 2
			// Same cap as the single-bus run: "sometimes" assertions
			// need the same schedule pool to be satisfiable.
			if tst.Schedules > 24 {
				tst.Schedules = 24
			}
			res, err := Run(tst)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Ok() {
				t.Fatalf("%s", res)
			}
		})
	}
}

// TestFetchAddAtomicity: the canonical increment test inline, with
// sector boards mixed in.
func TestFetchAddAtomicity(t *testing.T) {
	src := `
name: inline fetchadd
boards: moesi.s4, illinois
addr C = 0x8
proc P0:
  fetchadd C[0] 1 -> a
proc P1:
  fetchadd C[0] 1 -> b
schedules: 12
assert always final mem C[0] == 2
assert never a == b
assert consistent
`
	tst, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tst)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("%s", res)
	}
}

// TestRunParallel: the shipped tests also hold under real goroutine
// scheduling (run with -race); "sometimes" assertions are skipped by
// design.
func TestRunParallel(t *testing.T) {
	files, err := filepath.Glob("../../litmus/*.litmus")
	if err != nil || len(files) == 0 {
		t.Fatalf("glob: %v %v", files, err)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			tst, err := Parse(f)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunParallel(tst, 8)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Ok() {
				t.Fatalf("%s", res)
			}
		})
	}
}
