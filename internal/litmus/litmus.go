// Package litmus runs directed coherence tests — litmus tests — against
// the simulated Futurebus. A test is a small script: a set of boards, a
// few named lines, one straight-line program per processor, and
// assertions evaluated over many interleavings:
//
//	name: store buffering is impossible on one location
//	boards: moesi, dragon
//	addr X = 0x10
//
//	proc P0:
//	  write X[0] 1
//	  read  X[0] -> a
//	proc P1:
//	  write X[0] 2
//	  read  X[0] -> b
//
//	schedules: 64
//	assert always a != 0
//	assert sometimes b == 1
//	assert never final mem X[0] == 0
//	assert consistent
//
// Every schedule interleaves the programs differently (two sequential
// extremes plus seeded random interleavings), runs on a fresh system,
// records the registers, and optionally checks the full §3.1 invariant
// suite. `always` must hold in every schedule, `sometimes` in at least
// one, `never` in none — the standard litmus vocabulary.
//
// Coherence (per-location ordering) is exactly what the MOESI class
// guarantees, so single-location tests must behave sequentially;
// multi-location tests document what a snooping bus does and does not
// order.
package litmus

import (
	"fmt"
	"strings"
)

// Op is one program step.
type Op struct {
	// Write: store Value to Line[Word]. Otherwise a load into Reg.
	Write bool
	Line  string
	Word  int
	Value uint32
	Reg   string
	// Kind selects special steps: "", "flush", "pass", "fetchadd".
	Kind string
}

func (o Op) String() string {
	switch o.Kind {
	case "flush":
		return fmt.Sprintf("flush %s", o.Line)
	case "pass":
		return fmt.Sprintf("pass %s", o.Line)
	case "fetchadd":
		return fmt.Sprintf("fetchadd %s[%d] %d -> %s", o.Line, o.Word, o.Value, o.Reg)
	}
	if o.Write {
		return fmt.Sprintf("write %s[%d] %d", o.Line, o.Word, o.Value)
	}
	return fmt.Sprintf("read %s[%d] -> %s", o.Line, o.Word, o.Reg)
}

// Program is one processor's straight-line op sequence.
type Program struct {
	Name string
	Ops  []Op
}

// AssertKind is the quantifier of an assertion over schedules.
type AssertKind uint8

const (
	// Always: the condition holds in every schedule.
	Always AssertKind = iota
	// Sometimes: the condition holds in at least one schedule.
	Sometimes
	// Never: the condition holds in no schedule.
	Never
)

func (k AssertKind) String() string {
	switch k {
	case Always:
		return "always"
	case Sometimes:
		return "sometimes"
	case Never:
		return "never"
	}
	return fmt.Sprintf("AssertKind(%d)", uint8(k))
}

// Operand is one side of an assertion comparison: a register, a final
// memory word, or a literal.
type Operand struct {
	// Reg, when non-empty, names a register ("P0.a" or a bare register
	// name unique across programs).
	Reg string
	// Mem, when true, reads the final memory image of Line[Word].
	Mem  bool
	Line string
	Word int
	// Lit is the literal value (when Reg == "" and !Mem).
	Lit uint32
}

// Comparison is one predicate over registers, final memory and
// literals.
type Comparison struct {
	Left Operand
	// Eq: "==" when true, "!=" otherwise.
	Eq    bool
	Right Operand
}

// Assertion is one condition checked across schedules.
type Assertion struct {
	Kind AssertKind
	// Consistent, when true, ignores the comparison and instead
	// requires the §3.1 invariant checker to pass (it is checked per
	// schedule and must ALWAYS hold; Kind is ignored).
	Consistent bool
	// Premise, when non-nil, makes the assertion an implication:
	// "if premise then cond" ("assert always if f == 1 then d == 42").
	Premise *Comparison
	Cond    Comparison
	// Src is the source line, for messages.
	Src string
}

// Test is a parsed litmus test.
type Test struct {
	Name   string
	Boards []string
	// Sector maps a board index to a sub-sector count (0 = plain).
	Sector map[int]int
	// Addrs maps line names to line addresses.
	Addrs    map[string]uint64
	Programs []Program
	// Schedules is the number of random interleavings (in addition to
	// the sequential extremes).
	Schedules  int
	Assertions []Assertion
	// LineSize in bytes (default 32).
	LineSize int
	// Shards runs the test on an N-shard interleaved fabric (0/1 =
	// single bus). Litmus outcomes must not depend on it: the fabric
	// serialises per line, which is all the assertions ever observe.
	Shards int
	// Tenure and Discipline select the bus tenure policy ("" or
	// "atomic", "split") and arbitration discipline ("" or "fcfs",
	// "rr", "priority", "bounded") for every system the test builds.
	// Litmus outcomes must not depend on either — they change timing,
	// never the memory image. Set by the harness (fblitmus
	// -bus/-discipline), not a file directive.
	Tenure     string
	Discipline string
	// Watch attaches the runtime invariant monitor to every schedule;
	// any violation fails the run outright (the simulator, not the
	// test, is broken).
	Watch bool
}

// registers returns every register name a test assigns.
func (t *Test) registers() map[string]bool {
	out := map[string]bool{}
	for _, p := range t.Programs {
		for _, op := range p.Ops {
			if op.Reg != "" {
				out[p.Name+"."+op.Reg] = true
			}
		}
	}
	return out
}

// validate cross-checks references.
func (t *Test) validate() error {
	if len(t.Programs) == 0 {
		return fmt.Errorf("litmus %s: no programs", t.Name)
	}
	if len(t.Boards) < len(t.Programs) {
		return fmt.Errorf("litmus %s: %d programs but %d boards", t.Name, len(t.Programs), len(t.Boards))
	}
	regs := t.registers()
	for _, p := range t.Programs {
		for _, op := range p.Ops {
			if _, ok := t.Addrs[op.Line]; !ok {
				return fmt.Errorf("litmus %s: %s uses undeclared line %q", t.Name, p.Name, op.Line)
			}
		}
	}
	for _, a := range t.Assertions {
		if a.Consistent {
			continue
		}
		operands := []Operand{a.Cond.Left, a.Cond.Right}
		if a.Premise != nil {
			operands = append(operands, a.Premise.Left, a.Premise.Right)
		}
		for _, o := range operands {
			if o.Reg != "" && !regs[o.Reg] {
				return fmt.Errorf("litmus %s: assertion %q uses unknown register %q", t.Name, a.Src, o.Reg)
			}
			if o.Mem {
				if _, ok := t.Addrs[o.Line]; !ok {
					return fmt.Errorf("litmus %s: assertion %q uses undeclared line %q", t.Name, a.Src, o.Line)
				}
			}
		}
	}
	return nil
}

// resolveReg finds the full register name for a possibly-bare name.
func (t *Test) resolveReg(name string) (string, error) {
	if strings.Contains(name, ".") {
		return name, nil
	}
	var matches []string
	for reg := range t.registers() {
		if strings.HasSuffix(reg, "."+name) {
			matches = append(matches, reg)
		}
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return "", fmt.Errorf("unknown register %q", name)
	default:
		return "", fmt.Errorf("register %q is ambiguous (%v); qualify as P<i>.%s", name, matches, name)
	}
}
