package cache

import (
	"testing"

	"futurebus/internal/bus"
	"futurebus/internal/core"
	"futurebus/internal/memory"
	"futurebus/internal/protocols"
)

// TestMOESIWalk drives one line through all five states exactly as §3.3
// describes, checking state and data at every step (the programmatic
// version of examples/quickstart).
func TestMOESIWalk(t *testing.T) {
	_, mem, cs := rig(t, 2, protocols.MOESI, smallCfg())
	c0, c1 := cs[0], cs[1]
	const line = bus.Addr(0x100)

	// 1. Read miss, nobody else holds it: CH stays low → E.
	mustRead(t, c0, line, 0)
	if c0.State(line) != core.Exclusive {
		t.Fatalf("after lone read: %s", c0.State(line))
	}

	// 2. Silent E→M write; memory untouched.
	mustWrite(t, c0, line, 0, 0xA1)
	if c0.State(line) != core.Modified {
		t.Fatalf("after silent write: %s", c0.State(line))
	}
	if mem.Peek(line)[0] == 0xA1 {
		t.Fatal("silent write reached memory")
	}

	// 3. Second cache reads: owner intervenes, M→O, reader gets S and
	// the dirty data.
	if v := mustRead(t, c1, line, 0); v != 0xA1 {
		t.Fatalf("intervened read got %#x", v)
	}
	if c0.State(line) != core.Owned || c1.State(line) != core.Shared {
		t.Fatalf("after intervened read: %s / %s", c0.State(line), c1.State(line))
	}

	// 4. Sharer writes with broadcast: old owner updates and yields,
	// writer takes ownership (CH:O/M with CH asserted → O).
	mustWrite(t, c1, line, 1, 0xB2)
	if c1.State(line) != core.Owned {
		t.Fatalf("writer state: %s", c1.State(line))
	}
	if c0.State(line) != core.Shared {
		t.Fatalf("old owner state: %s", c0.State(line))
	}
	if v := mustRead(t, c0, line, 1); v != 0xB2 {
		t.Fatalf("update lost: %#x", v)
	}

	// 5. Owner flushes: memory gets both words, sharer survives in S.
	if err := c1.Flush(line); err != nil {
		t.Fatal(err)
	}
	if c1.Contains(line) {
		t.Fatal("flush kept the line")
	}
	if c0.State(line) != core.Shared {
		t.Fatalf("bystander state after flush: %s", c0.State(line))
	}
	m := mem.Peek(line)
	if m[0] != 0xA1 || m[4] != 0xB2 {
		t.Fatalf("memory after flush: %x", m[:8])
	}
}

// TestReadMissGetsSharedWhenHeld: CH resolves the S/E pair.
func TestReadMissGetsSharedWhenHeld(t *testing.T) {
	_, _, cs := rig(t, 2, protocols.MOESI, smallCfg())
	mustRead(t, cs[0], 5, 0)
	mustRead(t, cs[1], 5, 0)
	if cs[1].State(5) != core.Shared {
		t.Errorf("second reader got %s", cs[1].State(5))
	}
	if cs[0].State(5) != core.Shared {
		t.Errorf("first reader now %s", cs[0].State(5))
	}
}

// TestInvalidateUpgrade: the invalidate variant's shared write is an
// address-only transaction that kills the other copies (column 6).
func TestInvalidateUpgrade(t *testing.T) {
	b, _, cs := rig(t, 2, protocols.MOESIInvalidate, smallCfg())
	c0, c1 := cs[0], cs[1]
	mustRead(t, c0, 3, 0)
	mustRead(t, c1, 3, 0)
	before := b.Stats()
	mustWrite(t, c0, 3, 0, 7)
	after := b.Stats()
	if after.AddrOnly != before.AddrOnly+1 {
		t.Errorf("upgrade used %d addr-only transactions", after.AddrOnly-before.AddrOnly)
	}
	if c0.State(3) != core.Modified {
		t.Errorf("writer state %s", c0.State(3))
	}
	if c1.Contains(3) {
		t.Error("other copy survived an invalidate")
	}
	if st := c1.Stats(); st.InvalidationsReceived != 1 {
		t.Errorf("invalidations = %d", st.InvalidationsReceived)
	}
}

// TestRFOWriteMiss: a write miss with CA,IM,R fetches and invalidates in
// one transaction, entering M; an M owner elsewhere supplies the data
// and dies (column 6: I,DI).
func TestRFOWriteMiss(t *testing.T) {
	b, _, cs := rig(t, 2, protocols.MOESI, smallCfg())
	c0, c1 := cs[0], cs[1]
	mustWrite(t, c0, 9, 0, 0x11) // c0: E→M via miss+silent
	before := b.Stats()
	mustWrite(t, c1, 9, 1, 0x22) // RFO: c0 supplies + invalidates
	after := b.Stats()
	if after.Transactions != before.Transactions+1 {
		t.Errorf("write miss used %d transactions, want 1", after.Transactions-before.Transactions)
	}
	if c1.State(9) != core.Modified {
		t.Errorf("writer state %s", c1.State(9))
	}
	if c0.Contains(9) {
		t.Error("old owner survived RFO")
	}
	// Both words live in the new owner.
	if v := mustRead(t, c1, 9, 0); v != 0x11 {
		t.Errorf("RFO lost old data: %#x", v)
	}
	if st := c0.Stats(); st.InterventionsSupplied != 1 {
		t.Errorf("old owner interventions = %d", st.InterventionsSupplied)
	}
}

// TestReadThenWrite: Dragon's write miss is two transactions — a read
// (entering S/E) followed by the write-hit action.
func TestReadThenWrite(t *testing.T) {
	b, _, cs := rig(t, 2, protocols.Dragon, smallCfg())
	c0, c1 := cs[0], cs[1]
	mustRead(t, c0, 4, 0)
	before := b.Stats()
	mustWrite(t, c1, 4, 0, 0x77) // miss: Read>Write
	after := b.Stats()
	if got := after.Transactions - before.Transactions; got != 2 {
		t.Errorf("Read>Write used %d transactions", got)
	}
	// Dragon keeps the sharer alive via broadcast; both copies match.
	if v := mustRead(t, c0, 4, 0); v != 0x77 {
		t.Errorf("sharer has %#x", v)
	}
	if c1.State(4) != core.Owned {
		t.Errorf("writer state %s", c1.State(4))
	}
}

// TestReadThenWriteAloneGoesModified: with no sharers, the read loads E
// and the write is silent — still two… actually one transaction total.
func TestReadThenWriteAloneGoesModified(t *testing.T) {
	b, _, cs := rig(t, 1, protocols.Dragon, smallCfg())
	before := b.Stats()
	mustWrite(t, cs[0], 6, 0, 1)
	after := b.Stats()
	if got := after.Transactions - before.Transactions; got != 1 {
		t.Errorf("lone Read>Write used %d transactions, want 1 (E write is silent)", got)
	}
	if cs[0].State(6) != core.Modified {
		t.Errorf("state %s", cs[0].State(6))
	}
}

// TestPassKeepsCopy: Pass pushes ownership back to memory but retains
// the line (M → E, Table 1 note 3).
func TestPassKeepsCopy(t *testing.T) {
	_, mem, cs := rig(t, 1, protocols.MOESI, smallCfg())
	c := cs[0]
	mustWrite(t, c, 2, 0, 0x5A)
	if err := c.Pass(2); err != nil {
		t.Fatal(err)
	}
	if c.State(2) != core.Exclusive {
		t.Errorf("after pass: %s", c.State(2))
	}
	if mem.Peek(2)[0] != 0x5A {
		t.Error("pass did not update memory")
	}
	// Pass of an unowned line is a no-op.
	if err := c.Pass(2); err != nil {
		t.Fatal(err)
	}
	if c.State(2) != core.Exclusive {
		t.Errorf("no-op pass changed state to %s", c.State(2))
	}
}

// TestPassFromOwnedKeepsSharers: an O pass resolves CH:S/E — with a
// sharer asserting CH the pusher stays S.
func TestPassFromOwnedKeepsSharers(t *testing.T) {
	_, _, cs := rig(t, 2, protocols.MOESI, smallCfg())
	c0, c1 := cs[0], cs[1]
	mustWrite(t, c0, 2, 0, 1)
	mustRead(t, c1, 2, 0) // c0: M→O
	if c0.State(2) != core.Owned {
		t.Fatalf("setup state %s", c0.State(2))
	}
	if err := c0.Pass(2); err != nil {
		t.Fatal(err)
	}
	if c0.State(2) != core.Shared {
		t.Errorf("pusher state %s, want S (CH asserted by sharer)", c0.State(2))
	}
	if c1.State(2) != core.Shared {
		t.Errorf("sharer state %s", c1.State(2))
	}
}

// TestFlushCleanLineSilent: flushing an S line drops it without a bus
// transaction.
func TestFlushCleanLineSilent(t *testing.T) {
	b, _, cs := rig(t, 2, protocols.MOESI, smallCfg())
	mustRead(t, cs[0], 1, 0)
	mustRead(t, cs[1], 1, 0)
	before := b.Stats()
	if err := cs[1].Flush(1); err != nil {
		t.Fatal(err)
	}
	if cs[1].Contains(1) {
		t.Error("flush kept clean line")
	}
	if after := b.Stats(); after.Transactions != before.Transactions {
		t.Error("clean flush used the bus")
	}
	// Flushing an absent line is a no-op.
	if err := cs[1].Flush(1); err != nil {
		t.Fatal(err)
	}
}

// TestWriteThroughBehaviour: V≡S; every write goes to the bus; no
// ownership ever.
func TestWriteThroughBehaviour(t *testing.T) {
	wt := func() core.Policy { return protocols.WriteThrough(protocols.WriteThroughConfig{}) }
	b, mem, cs := rig(t, 1, wt, smallCfg())
	c := cs[0]
	mustRead(t, c, 5, 0)
	if c.State(5) != core.Shared {
		t.Errorf("WT read miss state %s, want S (V)", c.State(5))
	}
	before := b.Stats()
	mustWrite(t, c, 5, 0, 0xAA) // write hit: still writes through
	mustWrite(t, c, 5, 0, 0xBB)
	after := b.Stats()
	if got := after.Writes - before.Writes; got != 2 {
		t.Errorf("WT write hits produced %d bus writes, want 2", got)
	}
	if c.State(5) != core.Shared {
		t.Errorf("WT state after writes %s", c.State(5))
	}
	if mem.Peek(5)[0] != 0xBB {
		t.Error("write-through did not reach memory")
	}
	// Write miss: no allocation.
	mustWrite(t, c, 6, 0, 0xCC)
	if c.Contains(6) {
		t.Error("non-allocating WT cache allocated on a write miss")
	}
	if mem.Peek(6)[0] != 0xCC {
		t.Error("WT write miss lost")
	}
}

// TestWriteThroughAllocate: the starred Read>Write alternative loads
// the line on a write miss.
func TestWriteThroughAllocate(t *testing.T) {
	wt := func() core.Policy {
		return protocols.WriteThrough(protocols.WriteThroughConfig{Allocate: true})
	}
	_, _, cs := rig(t, 1, wt, smallCfg())
	mustWrite(t, cs[0], 6, 0, 0xCC)
	if cs[0].State(6) != core.Shared {
		t.Errorf("allocating WT write miss: %s", cs[0].State(6))
	}
	if v := mustRead(t, cs[0], 6, 0); v != 0xCC {
		t.Errorf("allocated line has %#x", v)
	}
}

// TestWriteThroughInvalidatesCopyBack: a WT write past the cache is
// column 9 — a copy-back sharer must invalidate, an owner captures.
func TestWriteThroughVsOwner(t *testing.T) {
	mem := rigMixed(t)
	moesi := mem.caches[0]
	wt := mem.caches[1]
	// MOESI cache owns the line dirty.
	mustWrite(t, moesi, 7, 0, 0x11)
	// WT cache writes the same line (miss, write past): the owner
	// captures (column 9, M,CH?,DI) and memory is preempted.
	mustWrite(t, wt, 7, 1, 0x22)
	if moesi.State(7) != core.Modified {
		t.Errorf("owner state %s", moesi.State(7))
	}
	if v := mustRead(t, moesi, 7, 1); v != 0x22 {
		t.Errorf("owner missed the captured write: %#x", v)
	}
	if mem.mem.Peek(7)[4] == 0x22 {
		t.Error("memory took a write the owner captured")
	}
	if st := moesi.Stats(); st.WritesCaptured != 1 {
		t.Errorf("captures = %d", st.WritesCaptured)
	}
}

type mixedRig struct {
	bus    *bus.Bus
	mem    *memory.Memory
	caches []*Cache
}

func rigMixed(t *testing.T) *mixedRig {
	t.Helper()
	mem := memory.New(testLineSize)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	c0 := New(0, b, protocols.MOESI(), smallCfg())
	c1 := New(1, b, protocols.WriteThrough(protocols.WriteThroughConfig{}), smallCfg())
	return &mixedRig{bus: b, mem: mem, caches: []*Cache{c0, c1}}
}

// TestOnWriteHook: the golden-image hook observes every applied write
// with its word and value.
func TestOnWriteHook(t *testing.T) {
	type rec struct {
		addr bus.Addr
		word int
		val  uint32
	}
	var got []rec
	cfg := smallCfg()
	cfg.OnWrite = func(a bus.Addr, w int, v uint32) { got = append(got, rec{a, w, v}) }
	mem := memory.New(testLineSize)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	c := New(0, b, protocols.MOESI(), cfg)
	mustWrite(t, c, 1, 0, 10) // miss → RFO → M
	mustWrite(t, c, 1, 1, 11) // silent
	want := []rec{{1, 0, 10}, {1, 1, 11}}
	if len(got) != len(want) {
		t.Fatalf("hook saw %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("hook[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestStatsAccounting: the processor-side counters add up.
func TestStatsAccounting(t *testing.T) {
	_, _, cs := rig(t, 2, protocols.MOESI, smallCfg())
	c0, c1 := cs[0], cs[1]
	mustRead(t, c0, 1, 0)     // read miss
	mustRead(t, c0, 1, 1)     // read hit
	mustWrite(t, c0, 1, 0, 5) // silent write hit (E→M)
	mustRead(t, c1, 1, 0)     // c0: M→O
	mustWrite(t, c0, 1, 0, 6) // write hit needing bus (O)
	st := c0.Stats()
	if st.Reads != 2 || st.ReadHits != 1 || st.ReadMisses != 1 {
		t.Errorf("read stats: %+v", st)
	}
	if st.Writes != 2 || st.WriteHits != 2 || st.WriteUpgrades != 1 {
		t.Errorf("write stats: %+v", st)
	}
	if st.StallNanos == 0 {
		t.Error("no stall time recorded")
	}
}

// TestFlushAll empties the cache and lands every dirty line in memory.
func TestFlushAll(t *testing.T) {
	_, mem, cs := rig(t, 2, protocols.MOESI, smallCfg())
	c := cs[0]
	for i := 0; i < 6; i++ {
		mustWrite(t, c, bus.Addr(i), 0, uint32(0x30+i))
	}
	mustRead(t, cs[1], 2, 0) // one line shared: c holds O
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if c.Contains(bus.Addr(i)) {
			t.Fatalf("line %d survived FlushAll", i)
		}
		if mem.Peek(bus.Addr(i))[0] != byte(0x30+i) {
			t.Fatalf("line %d not written back", i)
		}
	}
	// The sharer's copy survives (flush is column 7 to it).
	if !cs[1].Contains(2) {
		t.Error("sharer lost its copy on a foreign flush")
	}
	census := c.StateCensus()
	if len(census) != 0 {
		t.Errorf("census after FlushAll: %v", census)
	}
}
