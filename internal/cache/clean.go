package cache

import (
	"futurebus/internal/bus"
	"futurebus/internal/core"
)

// CleanLine issues the CmdClean command cycle (the §6 "commands across
// the bus" extension): after it completes, no cache owns the line and
// main memory holds the current data. Holders keep unowned copies, so
// the command is purely a write-back, not an invalidation — the
// mechanism a system controller uses before handing a buffer to a
// device that does not snoop the Futurebus.
//
// masterID must not collide with any attached snooper's id (a snooper
// never observes its own transactions); use a dedicated controller id.
func CleanLine(b bus.Fabric, masterID int, addr bus.Addr) error {
	_, err := b.Execute(&bus.Transaction{
		MasterID: masterID,
		Cmd:      bus.CmdClean,
		Op:       core.BusAddrOnly,
		Addr:     addr,
	})
	return err
}

// Clean issues CmdClean from this uncached master: any dirty cached
// copy of the line is pushed to memory before Clean returns.
func (u *Uncached) Clean(addr bus.Addr) error {
	return CleanLine(u.bus, u.id, addr)
}
