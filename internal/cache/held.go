package cache

import (
	"fmt"

	"futurebus/internal/bus"
	"futurebus/internal/core"
)

// Bus-held line operations for multi-bus bridges (internal/hierarchy).
// All of these require the caller to hold the bus (a shared Arbiter in
// a hierarchy), because they are invoked from inside other
// transactions — a cluster miss being served by the bridge's memory
// port, or a write-back being absorbed mid-transaction.

// FetchLineHeld ensures the line is present (performing a normal
// read-miss fill if not) and returns a copy of its data. The bus must
// be held by the caller.
func (c *Cache) FetchLineHeld(addr bus.Addr) ([]byte, error) {
	sh := c.shard(addr)
	sh.mu.Lock()
	if l := c.lookup(addr); l != nil {
		data := append([]byte(nil), l.data...)
		c.touch(sh, l)
		sh.mu.Unlock()
		return data, nil
	}
	sh.mu.Unlock()
	data, _, err := c.fillLine(addr, core.LocalRead)
	return data, err
}

// AbsorbLineHeld makes this cache the Modified owner of the line with
// the given contents: the Table 1 invalidate-style write sequence
// ("M,CA,IM" upgrade on a shared hit, "M,CA,IM,R" read-for-modify on a
// miss, silent on M/E), followed by a full-line overwrite. A bridge
// uses it to take ownership of a write-back arriving from its cluster.
// The bus must be held by the caller. The OnWrite hook is NOT invoked:
// absorption relays data already recorded by the original writer.
func (c *Cache) AbsorbLineHeld(addr bus.Addr, data []byte) error {
	if len(data) != c.bus.LineSize() {
		return fmt.Errorf("cache %d: absorb of %d bytes, line size %d", c.id, len(data), c.bus.LineSize())
	}
	sh := c.shard(addr)
	sh.mu.Lock()
	l := c.lookup(addr)
	if l != nil && l.state.MayModifySilently() {
		copy(l.data, data)
		c.setState(sh, l, core.Modified, "absorb")
		c.touch(sh, l)
		sh.mu.Unlock()
		return nil
	}
	var upgrade *bus.Transaction
	if l != nil {
		// Shared hit: address-only invalidate (column 6), then own it.
		upgrade = &bus.Transaction{
			MasterID: c.id,
			Signals:  core.SigCA | core.SigIM,
			Op:       core.BusAddrOnly,
			Addr:     addr,
		}
	}
	sh.mu.Unlock()

	if upgrade != nil {
		if _, err := c.bus.ExecuteHeld(upgrade); err != nil {
			return err
		}
	} else {
		// Miss: read-for-modify fill.
		rfo, err := core.ParseLocalAction("M,CA,IM,R")
		if err != nil {
			return err
		}
		if _, _, err := c.fillLineWith(addr, rfo); err != nil {
			return err
		}
	}

	sh.mu.Lock()
	defer sh.mu.Unlock()
	l = c.lookup(addr)
	if l == nil {
		return fmt.Errorf("cache %d: absorbed line %#x vanished", c.id, uint64(addr))
	}
	copy(l.data, data)
	c.setState(sh, l, core.Modified, "absorb")
	c.touch(sh, l)
	return nil
}

// InvalidateHeld drops the line without any bus traffic (note 11: any
// bus-event transition may be weakened to I). A bridge uses it when a
// foreign transaction has already superseded the line globally. The
// caller must hold the bus.
func (c *Cache) InvalidateHeld(addr bus.Addr) {
	sh := c.shard(addr)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if l := c.lookup(addr); l != nil {
		c.setState(sh, l, core.Invalid, "invalidate-held")
	}
}
